// Experiment F10 [R] — incident detection quality vs budget K.
//
// The application the paper's introduction leads with: spotting abnormal
// slowdowns in real time from only K observed roads. The OnlineTrafficMonitor
// flags roads whose estimated deviation collapses; this harness scores its
// flags against the simulator's ground truth (roads that truly ran >= 35%
// below their norm) across the test day, sweeping K. Expected shape:
// precision stays high at all K (alerts are debounced), recall grows with K.

#include <set>

#include "bench_util.h"
#include "core/monitor.h"

namespace trendspeed {
namespace {

void Run() {
  auto ds = bench::MakeCity("CityA");
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  Evaluator eval(&*ds);

  // Ground truth: roads that were truly deeply congested at some test slot.
  std::set<RoadId> truly_congested;
  for (uint64_t slot : eval.TestSlots(2)) {
    for (RoadId r = 0; r < ds->net.num_roads(); ++r) {
      double hist = ds->history.HistoricalMeanOr(
          r, slot, ds->net.road(r).free_flow_kmh);
      if (ds->truth.at(slot, r) < hist * 0.65) truly_congested.insert(r);
    }
  }

  bench::PrintTitle("F10 incident detection vs budget K (CityA)");
  bench::Table t({"K", "flagged", "correct", "precision", "recall"}, 12);
  t.PrintHeader();
  for (size_t k : {10u, 20u, 40u, 80u, 160u}) {
    auto seeds = est.SelectSeeds(k, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    MonitorOptions mopts;
    mopts.alert_deviation = -0.35;
    OnlineTrafficMonitor monitor(&est, mopts);
    Rng rng(7);
    std::set<RoadId> flagged;
    for (uint64_t slot : eval.TestSlots(2)) {
      auto obs = eval.ObserveSeeds(slot, seeds->seeds, 1.5, &rng);
      auto report = monitor.Process(slot, obs);
      TS_CHECK(report.ok());
      for (const TrafficAlert& a : report->new_alerts) {
        if (a.raised) flagged.insert(a.road);
      }
    }
    size_t hits = 0;
    for (RoadId r : flagged) {
      if (truly_congested.count(r)) ++hits;
    }
    double precision =
        flagged.empty() ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(flagged.size());
    double recall = truly_congested.empty()
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(truly_congested.size());
    t.Row({std::to_string(k), std::to_string(flagged.size()),
           std::to_string(hits), bench::FmtPct(precision),
           bench::FmtPct(recall)});
  }
  std::printf("(ground truth: %zu roads ran >=35%% below norm today)\n",
              truly_congested.size());
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
