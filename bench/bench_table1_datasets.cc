// Experiment T1 — "Table 1: dataset statistics".
//
// The paper opens its evaluation with the two datasets' sizes (roads,
// records, coverage). This binary prints the same inventory for the
// synthetic CityA / CityB substitutes, plus the correlation-graph statistics
// the offline phase mines from them.

#include "bench_util.h"

namespace trendspeed {
namespace {

void DescribeDataset(const std::string& name) {
  auto ds = bench::MakeCity(name);
  PipelineConfig config;
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  auto classes = ds->net.CountByClass();
  const CorrelationGraph& graph = est.correlation_graph();

  bench::Table t({"metric", "value"}, 34);
  bench::PrintTitle("T1 dataset statistics: " + name);
  t.PrintHeader();
  t.Row({"road segments", std::to_string(ds->net.num_roads())});
  t.Row({"intersections", std::to_string(ds->net.num_nodes())});
  t.Row({"  highway segments", std::to_string(classes[0])});
  t.Row({"  arterial segments", std::to_string(classes[1])});
  t.Row({"  local segments", std::to_string(classes[2])});
  t.Row({"history days", std::to_string(ds->history_days)});
  t.Row({"test days", std::to_string(ds->test_days)});
  t.Row({"time slots (10 min)", std::to_string(ds->num_slots())});
  t.Row({"probe speed records", std::to_string(ds->history.TotalObservations())});
  t.Row({"(road,slot) coverage",
         bench::FmtPct(ds->history.CoverageFraction())});
  t.Row({"roads never observed",
         bench::FmtPct(ds->history.UnobservedRoadFraction())});
  t.Row({"correlation edges", std::to_string(graph.num_edges())});
  t.Row({"avg correlation degree", bench::Fmt(graph.average_degree())});
  t.Row({"isolated roads", std::to_string(graph.CountIsolated())});
  t.Row({"road-level speed models",
         std::to_string(est.speed_model().num_road_models())});
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::DescribeDataset("CityA");
  trendspeed::DescribeDataset("CityB");
  return 0;
}
