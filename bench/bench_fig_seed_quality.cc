// Experiment F6 — "seed-selection quality": estimation error of the full
// pipeline when seeds come from each selection strategy.
//
// Expected shape (paper): the influence-greedy family (greedy == lazy
// greedy, stochastic close behind) yields the lowest error at every K;
// structural heuristics (degree, PageRank) land in between; random and pure
// spread (k-center) trail. Differences shrink as K grows (diminishing
// returns once most of the graph is covered).

#include "bench_util.h"

namespace trendspeed {
namespace {

void Run() {
  auto ds = bench::MakeCity("CityA");
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  auto suite = BuildMethodSuite(*ds, est, /*include_matrix_completion=*/false);
  TS_CHECK(suite.ok());
  const MethodAdapter& ours = suite->methods[0];  // TrendSpeed
  Evaluator eval(&*ds);
  EvalOptions opts = bench::DefaultEval(/*stride=*/6);

  const SeedStrategy strategies[] = {
      SeedStrategy::kGreedy,        SeedStrategy::kLazyGreedy,
      SeedStrategy::kStochasticGreedy, SeedStrategy::kTopDegree,
      SeedStrategy::kTopVariance,   SeedStrategy::kPageRank,
      SeedStrategy::kKCenter,       SeedStrategy::kRandom,
  };

  bench::PrintTitle("F6 estimation error by seed strategy (CityA)");
  bench::Table t({"K", "strategy", "objective", "MAPE", "MAE"}, 18);
  t.PrintHeader();
  for (size_t k : {10u, 20u, 40u, 80u}) {
    for (SeedStrategy strategy : strategies) {
      auto seeds = est.SelectSeeds(k, strategy, /*rng_seed=*/5);
      TS_CHECK(seeds.ok());
      auto r = eval.Run(ours, seeds->seeds, opts);
      TS_CHECK(r.ok());
      t.Row({std::to_string(k), SeedStrategyName(strategy),
             bench::Fmt(seeds->objective, 1), bench::FmtPct(r->metrics.mape),
             bench::Fmt(r->metrics.mae)});
    }
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
