// Observability overhead bench: proves the detached-registry contract.
//
// Three measurement groups, emitted as JSON on stdout (saved as
// BENCH_observability_overhead.json):
//
//   * ops_ns    — nanoseconds per primitive record operation, null handles
//                 (detached) vs live handles (attached). The null costs are
//                 what every record site pays when no registry is attached.
//   * bp        — BP inference timed detached vs attached. The detached
//                 overhead cannot be measured against un-instrumented code
//                 (it no longer exists), so it is *derived*: record sites
//                 per run x null-op cost / detached run time. The
//                 acceptance gate is <= 2%.
//   * serving   — ServingSession::Ingest over a trained tiny-city
//                 estimator, same treatment.
//   * flight_replay — an 8-shard grid-city serving window replayed through
//                 IngestFrontEnd with a FlightRecorder attached. Validates
//                 the recorder's accounting against reality: the per-slot
//                 critical-path decomposition (queue wait + admission +
//                 BP + exchange + publish) must sum to within 5% of the
//                 measured end-to-end slot latency (asserted; skipped under
//                 --smoke, where per-slot work is too small for stage
//                 timings to dominate fixed overhead).
//
// Correctness is asserted inline: attached and detached BP runs must
// produce bitwise-identical marginals.
//
// Flags:
//   --smoke             tiny instance, used by the `perf`-labelled CTest
//                       smoke entry.
//   --trace-out <path>  also write the replay's Chrome trace JSON (load
//                       in chrome://tracing or ui.perfetto.dev).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_hardware.h"
#include "core/ingest.h"
#include "core/serving.h"
#include "io/dataset.h"
#include "obs/catalog.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct OverheadConfig {
  size_t rows = 230;
  size_t cols = 220;  // 50600 segments
  uint32_t bp_iters = 10;
  int bp_reps = 5;
  size_t op_iters = 20'000'000;
  size_t ingests = 200;
  // Flight-replay instance: a grid city big enough that the BP solve
  // dominates per-slot latency, so the critical-path decomposition can be
  // checked against the measured wall clock.
  size_t replay_grid = 28;       // 28x28 intersections, ~3k road segments
  uint32_t replay_bp_iters = 60;
  size_t replay_seeds = 24;
  size_t replay_slots = 6;
  bool check_replay_coverage = true;
  const char* trace_out = nullptr;
};

BpGraph MakeGridBpGraph(const OverheadConfig& cfg, std::vector<double>* pot) {
  size_t n = cfg.rows * cfg.cols;
  PairwiseMrf mrf(n);
  Rng rng(2026);
  for (size_t r = 0; r < cfg.rows; ++r) {
    for (size_t c = 0; c < cfg.cols; ++c) {
      size_t v = r * cfg.cols + c;
      double same = rng.Uniform(0.55, 0.95);
      double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
      if (c + 1 < cfg.cols) mrf.AddEdge(v, v + 1, compat);
      if (r + 1 < cfg.rows) mrf.AddEdge(v, v + cfg.cols, compat);
    }
  }
  pot->resize(2 * n);
  for (size_t v = 0; v < n; ++v) {
    double p = rng.Uniform(0.05, 0.95);
    (*pot)[2 * v] = 1.0 - p;
    (*pot)[2 * v + 1] = p;
  }
  return BpGraph::FromMrf(mrf);
}

template <typename Fn>
double BestMillis(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// ns per op over `iters` iterations of `fn`. Handles are read through
/// volatile pointers at the call sites so the loop body cannot be hoisted
/// or elided.
template <typename Fn>
double NanosPerOp(size_t iters, const Fn& fn) {
  WallTimer timer;
  for (size_t i = 0; i < iters; ++i) fn();
  return timer.ElapsedMillis() * 1e6 / static_cast<double>(iters);
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

int Run(const OverheadConfig& cfg) {
  std::printf("{\n");
  std::printf("  \"bench\": \"observability_overhead\",\n");
  PrintHardwareStamp();
  std::printf("  \"hardware_concurrency\": %zu,\n", EffectiveThreads(0));

  // --- primitive op costs -------------------------------------------------
  obs::MetricsRegistry reg;
  obs::Counter* live_counter = reg.GetCounter(obs::kBpRunsTotal);
  obs::Gauge* live_gauge = reg.GetGauge(obs::kPoolQueueDepth);
  obs::Histogram* live_hist = reg.GetHistogram(obs::kBpResidual);
  obs::TraceRecorder recorder(1024);

  obs::Counter* volatile vc_null = nullptr;
  obs::Counter* volatile vc_live = live_counter;
  obs::Gauge* volatile vg_live = live_gauge;
  obs::Histogram* volatile vh_null = nullptr;
  obs::Histogram* volatile vh_live = live_hist;
  obs::TraceRecorder* volatile vr_null = nullptr;
  obs::TraceRecorder* volatile vr_live = &recorder;

  size_t iters = cfg.op_iters;
  double null_counter_ns = NanosPerOp(iters, [&] { obs::Add(vc_null); });
  double counter_ns = NanosPerOp(iters, [&] { obs::Add(vc_live); });
  double null_hist_ns = NanosPerOp(iters, [&] { obs::Observe(vh_null, 0.5); });
  double hist_ns = NanosPerOp(iters, [&] { obs::Observe(vh_live, 1e-4); });
  double gauge_ns = NanosPerOp(iters, [&] { obs::Set(vg_live, 3.0); });
  size_t span_iters = iters / 100;
  double null_span_ns = NanosPerOp(span_iters, [&] {
    obs::ScopedSpan span(vr_null, "bench/op");
  });
  double span_ns = NanosPerOp(span_iters, [&] {
    obs::ScopedSpan span(vr_live, "bench/op");
  });
  double clock_ns = NanosPerOp(span_iters, [&] { obs::MonotonicNanos(); });

  std::printf("  \"ops_ns\": {\n");
  std::printf("    \"null_counter_add\": %.3f,\n", null_counter_ns);
  std::printf("    \"counter_add\": %.3f,\n", counter_ns);
  std::printf("    \"null_histogram_observe\": %.3f,\n", null_hist_ns);
  std::printf("    \"histogram_observe\": %.3f,\n", hist_ns);
  std::printf("    \"gauge_set\": %.3f,\n", gauge_ns);
  std::printf("    \"null_span\": %.3f,\n", null_span_ns);
  std::printf("    \"span\": %.3f,\n", span_ns);
  std::printf("    \"monotonic_nanos\": %.3f\n", clock_ns);
  std::printf("  },\n");

  // --- BP hot path --------------------------------------------------------
  std::vector<double> pot;
  BpGraph graph = MakeGridBpGraph(cfg, &pot);
  size_t n = graph.num_vars;
  BpOptions bp;
  bp.max_iters = cfg.bp_iters;
  bp.tol = 0.0;  // never converge early: identical work in both regimes

  BpResult detached_result, attached_result;
  double bp_detached_ms = BestMillis(cfg.bp_reps, [&] {
    detached_result = InferMarginalsBpFlat(graph, pot, bp);
  });
  bp.metrics = &reg;
  obs::TraceRecorder bp_trace(1024);
  bp.trace = &bp_trace;
  double bp_attached_ms = BestMillis(cfg.bp_reps, [&] {
    attached_result = InferMarginalsBpFlat(graph, pot, bp);
  });
  TS_CHECK_LT(MaxAbsDiff(detached_result.p_up, attached_result.p_up), 1e-12);

  // Record sites a detached run touches: per iteration two counter adds and
  // one histogram observe, plus two counters and one histogram per run, six
  // null registrations, and one null span.
  double bp_sites =
      3.0 * cfg.bp_iters + 3.0 + 6.0 /* registrations */ + 1.0 /* span */;
  double bp_detached_pct =
      bp_sites * null_counter_ns / (bp_detached_ms * 1e6) * 100.0;
  double bp_attached_pct =
      (bp_attached_ms - bp_detached_ms) / bp_detached_ms * 100.0;
  std::printf("  \"bp\": {\n");
  std::printf("    \"segments\": %zu,\n", n);
  std::printf("    \"iterations\": %u,\n", cfg.bp_iters);
  std::printf("    \"detached_ms\": %.3f,\n", bp_detached_ms);
  std::printf("    \"attached_ms\": %.3f,\n", bp_attached_ms);
  std::printf("    \"attached_overhead_pct\": %.3f,\n", bp_attached_pct);
  std::printf("    \"record_sites_per_run\": %.0f,\n", bp_sites);
  std::printf("    \"derived_detached_overhead_pct\": %.6f\n",
              bp_detached_pct);
  std::printf("  },\n");
  TS_CHECK_LT(bp_detached_pct, 2.0);

  // --- serving hot path ---------------------------------------------------
  auto ds = BuildTinyCity();
  TS_CHECK(ds.ok()) << ds.status().ToString();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds->net, &ds->history, config);
  TS_CHECK(est.ok()) << est.status().ToString();
  auto seeds = est->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());

  auto make_obs = [&](uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : seeds->seeds) {
      out.push_back({r, std::max(1.0, ds->truth.at(slot, r))});
    }
    return out;
  };
  auto run_ingests = [&](ServingSession* session) {
    for (size_t i = 0; i < cfg.ingests; ++i) {
      auto report = session->Ingest(i, make_obs(i % ds->num_slots()));
      TS_CHECK(report.ok()) << report.status().ToString();
    }
  };

  ServingOptions detached_opts;
  auto detached_session = ServingSession::Create(&est.value(), detached_opts);
  TS_CHECK(detached_session.ok());
  WallTimer timer;
  run_ingests(&detached_session.value());
  double serving_detached_ms =
      timer.ElapsedMillis() / static_cast<double>(cfg.ingests);

  // Attached session: fresh registry + trace so handles are live. The
  // estimator itself stays detached — this isolates the serving layer's own
  // instrumentation, the quantity the <= 2% gate covers.
  obs::MetricsRegistry serving_reg;
  obs::TraceRecorder serving_trace(1024);
  ServingOptions attached_opts;
  attached_opts.observability.metrics = &serving_reg;
  attached_opts.observability.trace = &serving_trace;
  auto attached_session = ServingSession::Create(&est.value(), attached_opts);
  TS_CHECK(attached_session.ok());
  timer.Restart();
  run_ingests(&attached_session.value());
  double serving_attached_ms =
      timer.ElapsedMillis() / static_cast<double>(cfg.ingests);

  // Detached Ingest sites: one counter + staleness gauge per slot, the
  // latency scope (histogram + slow counter), one null trace span, and the
  // flight/SLO instrumentation added since — the wrapper's null-recorder
  // check + null-SLO check, plus four null FlightSpans (admission,
  // estimate envelope, bp_solve, publish) at two predicted branches each
  // (ctor + dtor, obs/flight.h). Registrations in the constructor amortize
  // to ~0 over the run.
  double serving_sites = 15.0;
  double serving_detached_pct =
      serving_sites * null_counter_ns / (serving_detached_ms * 1e6) * 100.0;
  double serving_attached_pct =
      (serving_attached_ms - serving_detached_ms) / serving_detached_ms *
      100.0;
  std::printf("  \"serving\": {\n");
  std::printf("    \"ingests\": %zu,\n", cfg.ingests);
  std::printf("    \"detached_ms_per_ingest\": %.3f,\n", serving_detached_ms);
  std::printf("    \"attached_ms_per_ingest\": %.3f,\n", serving_attached_ms);
  std::printf("    \"attached_overhead_pct\": %.3f,\n", serving_attached_pct);
  std::printf("    \"record_sites_per_ingest\": %.0f,\n", serving_sites);
  std::printf("    \"derived_detached_overhead_pct\": %.6f\n",
              serving_detached_pct);
  std::printf("  },\n");
  TS_CHECK_LT(serving_detached_pct, 2.0);
  TS_CHECK_EQ(
      serving_reg.GetCounter(obs::kServingSlotsEstimatedTotal)->Value(),
      static_cast<uint64_t>(cfg.ingests));

  // --- flight replay: recorder accounting vs the wall clock ---------------
  // An 8-shard grid city replayed through the real front-end. Every slot's
  // measured latency (Offer..Flush on this thread) is compared against the
  // recorder's critical-path decomposition; with the BP solve forced to
  // dominate (tol = 0, fixed iteration budget), the attributed stages must
  // recover the measured time to within 5%.
  GridNetworkOptions grid;
  grid.rows = cfg.replay_grid;
  grid.cols = cfg.replay_grid;
  grid.arterial_every = 5;
  DatasetOptions ds_opts;
  ds_opts.history_days = 8;
  ds_opts.test_days = 1;
  ds_opts.use_probe_fleet = false;  // idealized collector: fast to build
  auto net = MakeGridNetwork(grid);
  TS_CHECK(net.ok()) << net.status().ToString();
  auto replay_ds = BuildDataset("ReplayCity", std::move(net.value()), ds_opts);
  TS_CHECK(replay_ds.ok()) << replay_ds.status().ToString();

  PipelineConfig replay_config;
  replay_config.corr.min_co_observed = 8;
  replay_config.sharding.num_shards = 8;
  replay_config.sharding.max_exchange_rounds = 2;
  replay_config.trend.bp.tol = 0.0;  // never converge early
  replay_config.trend.bp.max_iters = cfg.replay_bp_iters;
  auto replay_est = TrafficSpeedEstimator::Train(
      &replay_ds->net, &replay_ds->history, replay_config);
  TS_CHECK(replay_est.ok()) << replay_est.status().ToString();
  auto replay_seeds =
      replay_est->SelectSeeds(cfg.replay_seeds, SeedStrategy::kLazyGreedy);
  TS_CHECK(replay_seeds.ok());

  obs::SetFlightThreadLabel("serving");
  obs::FlightRecorder flight;
  ServingOptions replay_opts;
  replay_opts.ingest_queue.capacity = 1024;
  replay_opts.publish_snapshots = true;
  replay_opts.observability.flight = &flight;
  auto replay_session =
      ServingSession::Create(&replay_est.value(), replay_opts);
  TS_CHECK(replay_session.ok()) << replay_session.status().ToString();
  auto fe = IngestFrontEnd::Create(&replay_session.value());
  TS_CHECK(fe.ok()) << fe.status().ToString();

  double measured_ms = 0.0;
  for (uint64_t slot = 0; slot < cfg.replay_slots; ++slot) {
    WallTimer slot_timer;
    for (RoadId r : replay_seeds->seeds) {
      TS_CHECK((*fe)->Offer(
          slot, {r, std::max(1.0, replay_ds->truth.at(slot, r))}));
    }
    auto report = (*fe)->Flush();
    TS_CHECK(report.ok()) << report.status().ToString();
    measured_ms += slot_timer.ElapsedMillis();
  }

  // Sum the per-slot decompositions over the whole window.
  uint64_t attributed_ns = 0, total_ns = 0;
  size_t flight_events = 0;
  for (uint64_t slot = 0; slot < cfg.replay_slots; ++slot) {
    obs::SlotCriticalPath path =
        obs::ComputeSlotCriticalPath(flight.CollectSlot(slot), slot);
    attributed_ns += path.queue_wait_ns + path.admission_ns + path.bp_ns +
                     path.exchange_ns + path.publish_ns;
    total_ns += path.total_ns;
    flight_events += path.events;
  }
  double attributed_ms = static_cast<double>(attributed_ns) / 1e6;
  double coverage = attributed_ms / measured_ms;
  std::printf("  \"flight_replay\": {\n");
  std::printf("    \"segments\": %zu,\n", replay_ds->net.num_roads());
  std::printf("    \"shards\": %u,\n", replay_config.sharding.num_shards);
  std::printf("    \"slots\": %zu,\n", cfg.replay_slots);
  std::printf("    \"flight_events\": %zu,\n", flight_events);
  std::printf("    \"measured_ms\": %.3f,\n", measured_ms);
  std::printf("    \"attributed_ms\": %.3f,\n", attributed_ms);
  std::printf("    \"recorder_total_ms\": %.3f,\n",
              static_cast<double>(total_ns) / 1e6);
  std::printf("    \"critical_path_coverage\": %.4f\n", coverage);
  std::printf("  }\n}\n");
  TS_CHECK_EQ(flight.dropped(), 0u);
  if (cfg.check_replay_coverage) {
    TS_CHECK_GT(coverage, 0.95);
    TS_CHECK_LT(coverage, 1.05);
  }
  if (cfg.trace_out != nullptr) {
    std::string json = obs::ToChromeTraceJson(flight);
    FILE* f = std::fopen(cfg.trace_out, "w");
    TS_CHECK(f != nullptr) << "cannot open " << cfg.trace_out;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu-byte Chrome trace to %s\n", json.size(),
                 cfg.trace_out);
  }
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::OverheadConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.rows = 60;
      cfg.cols = 60;
      cfg.bp_iters = 4;
      cfg.bp_reps = 2;
      cfg.op_iters = 2'000'000;
      cfg.ingests = 20;
      cfg.replay_grid = 12;
      cfg.replay_bp_iters = 8;
      cfg.replay_seeds = 8;
      cfg.replay_slots = 2;
      // Slots this small are fixed-overhead-bound; the 5% coverage gate
      // only holds once the BP solve dominates (see bench_sharded_engine's
      // check_latency for the same reasoning).
      cfg.check_replay_coverage = false;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
