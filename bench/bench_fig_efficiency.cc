// Experiment F5 — "online inference efficiency vs network size".
//
// The paper claims ~2 orders of magnitude faster inference than the
// global-optimization baselines. This harness scales a grid city from a few
// hundred to several thousand road segments (idealized probe history keeps
// setup fast) and times one full estimation per method. Expected shape:
// TrendSpeed grows ~linearly in V+E and stays 1-2 orders of magnitude below
// LabelProp (whole-graph iterative solver); kNN degrades with K * network
// size (per-seed BFS); MatrixCompletion is in between.

#include "baseline/global_lsq.h"
#include "baseline/knn.h"
#include "baseline/label_propagation.h"
#include "baseline/matrix_completion.h"
#include "bench_util.h"
#include "roadnet/generators.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct Timed {
  double ms = 0.0;
};

double TimeMethod(const EstimateFn& fn, const std::vector<uint64_t>& slots,
                  const Evaluator& eval, const std::vector<RoadId>& seeds) {
  Rng rng(7);
  WallTimer timer;
  double total = 0.0;
  for (uint64_t slot : slots) {
    auto obs = eval.ObserveSeeds(slot, seeds, 1.5, &rng);
    timer.Restart();
    auto out = fn(slot, obs);
    total += timer.ElapsedMillis();
    TS_CHECK(out.ok());
  }
  return total / static_cast<double>(slots.size());
}

void Run() {
  bench::PrintTitle("F5 online inference latency vs network size (ms/slot)");
  bench::Table t({"roads", "TrendSpeed", "kNN", "LabelProp", "LSQ-CG",
                  "LSQ-direct", "MatrixComp", "direct/ours"},
                 13);
  t.PrintHeader();
  for (size_t m : {8u, 14u, 22u, 32u, 44u}) {
    GridNetworkOptions gopts;
    gopts.rows = m;
    gopts.cols = m;
    gopts.arterial_every = 4;
    DatasetOptions dopts;
    dopts.history_days = 7;
    dopts.test_days = 1;
    dopts.use_probe_fleet = false;  // idealized history: isolate online cost
    dopts.idealized_coverage = 0.3;
    auto net = MakeGridNetwork(gopts);
    TS_CHECK(net.ok());
    auto ds = BuildDataset("grid", std::move(net).value(), dopts);
    TS_CHECK(ds.ok()) << ds.status().ToString();
    TrafficSpeedEstimator est = bench::TrainDefault(*ds);
    size_t k = std::max<size_t>(10, ds->net.num_roads() / 25);
    auto seeds = est.SelectSeeds(k, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    Evaluator eval(&*ds);
    std::vector<uint64_t> slots = eval.TestSlots(/*stride=*/16);

    KnnEstimator knn(&ds->net, &ds->history);
    LabelPropagationEstimator lp(&ds->net, &ds->history);
    GlobalLsqEstimator lsq(&ds->net, &ds->history);
    auto mc = MatrixCompletionEstimator::Train(&ds->net, &ds->history);
    TS_CHECK(mc.ok());

    double ours = TimeMethod(
        [&](uint64_t slot, const std::vector<SeedSpeed>& obs)
            -> Result<std::vector<double>> {
          TS_ASSIGN_OR_RETURN(TrafficSpeedEstimator::Output out,
                              est.Estimate(slot, obs));
          return std::move(out.speeds.speed_kmh);
        },
        slots, eval, seeds->seeds);
    double t_knn = TimeMethod(
        [&](uint64_t slot, const std::vector<SeedSpeed>& obs) {
          return knn.Estimate(slot, obs);
        },
        slots, eval, seeds->seeds);
    double t_lp = TimeMethod(
        [&](uint64_t slot, const std::vector<SeedSpeed>& obs) {
          return lp.Estimate(slot, obs);
        },
        slots, eval, seeds->seeds);
    double t_lsq = TimeMethod(
        [&](uint64_t slot, const std::vector<SeedSpeed>& obs) {
          return lsq.Estimate(slot, obs);
        },
        slots, eval, seeds->seeds);
    // Direct dense solve is O(n^3) per slot; time a single slot and only up
    // to a network size where that stays sane.
    double t_direct = -1.0;
    if (ds->net.num_roads() <= 2200) {
      GlobalLsqOptions direct_opts;
      direct_opts.use_direct_solver = true;
      GlobalLsqEstimator direct(&ds->net, &ds->history, direct_opts);
      std::vector<uint64_t> one_slot = {slots[0]};
      t_direct = TimeMethod(
          [&](uint64_t slot, const std::vector<SeedSpeed>& obs) {
            return direct.Estimate(slot, obs);
          },
          one_slot, eval, seeds->seeds);
    }
    double t_mc = TimeMethod(
        [&](uint64_t slot, const std::vector<SeedSpeed>& obs) {
          return mc->Estimate(slot, obs);
        },
        slots, eval, seeds->seeds);
    t.Row({std::to_string(ds->net.num_roads()), bench::Fmt(ours, 3),
           bench::Fmt(t_knn, 3), bench::Fmt(t_lp, 3), bench::Fmt(t_lsq, 3),
           t_direct >= 0.0 ? bench::Fmt(t_direct, 1) : "-",
           bench::Fmt(t_mc, 3),
           t_direct >= 0.0 ? bench::Fmt(t_direct / ours, 0) + "x" : "-"});
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
