// Ingest front-end throughput bench, emitted as JSON on stdout (saved as
// BENCH_ingest_throughput.json).
//
// Four measurement groups:
//
//   * queue    — raw MpscBoundedQueue push+pop throughput, single producer
//                and multi-producer (the lock-free floor everything else
//                sits on).
//   * serving  — the full front-end loop over a trained tiny-city
//                estimator: Offer per observation, Flush per slot, seqlock
//                snapshot publishing on, a concurrent reader hammering
//                Read. Reports observations/sec admitted end to end plus
//                p99 ingest latency (trendspeed_serving_ingest_latency_ms)
//                and p99 snapshot read latency
//                (trendspeed_snapshot_read_latency_us), both read from the
//                session's own histograms rather than re-instrumented.
//   * wire     — obs_wire encode/decode throughput for the 8-byte binary
//                observation records.
//
// Percentiles come from histogram buckets, so they are upper bounds at
// bucket resolution — the same resolution an operator gets from the scrape.
//
// Flags:
//   --smoke   tiny instance, used by the `perf`-labelled CTest smoke entry.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_hardware.h"
#include "core/ingest.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "io/dataset.h"
#include "io/obs_wire.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/mpsc_queue.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct ThroughputConfig {
  size_t queue_items = 2'000'000;
  size_t queue_capacity = 4096;
  size_t serving_slots = 300;
  size_t wire_batches = 2000;
  size_t wire_obs_per_batch = 256;
};

/// Smallest bucket upper bound covering the q-quantile; falls back to the
/// last finite bound for the +Inf bucket. NaN when the histogram is empty.
double HistogramPercentile(const obs::Histogram& h, double q) {
  uint64_t total = 0;
  for (size_t i = 0; i <= h.num_buckets(); ++i) total += h.bucket_count(i);
  if (total == 0) return std::nan("");
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    cumulative += h.bucket_count(i);
    if (cumulative >= target) return h.bound(i);
  }
  return h.bound(h.num_buckets() - 1);  // landed in +Inf
}

double QueueMopsSingleProducer(const ThroughputConfig& cfg) {
  MpscBoundedQueue<QueuedObservation> q(cfg.queue_capacity);
  WallTimer timer;
  size_t popped = 0;
  QueuedObservation item;
  for (size_t i = 0; i < cfg.queue_items; ++i) {
    while (!q.TryPush(QueuedObservation{i, SeedSpeed{0, 50.0}})) {
      while (q.TryPop(&item)) ++popped;
    }
  }
  while (q.TryPop(&item)) ++popped;
  double secs = timer.ElapsedSeconds();
  TS_CHECK_EQ(popped, cfg.queue_items);
  return static_cast<double>(cfg.queue_items) / secs / 1e6;
}

double QueueMopsMultiProducer(const ThroughputConfig& cfg, int producers) {
  MpscBoundedQueue<QueuedObservation> q(cfg.queue_capacity);
  const size_t per_producer = cfg.queue_items / producers;
  const size_t total = per_producer * producers;
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = 0; i < per_producer; ++i) {
        while (!q.TryPush(QueuedObservation{
            i, SeedSpeed{static_cast<RoadId>(p), 50.0}})) {
          std::this_thread::yield();
        }
      }
    });
  }
  size_t popped = 0;
  QueuedObservation item;
  while (popped < total) {
    if (q.TryPop(&item)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : threads) t.join();
  double secs = timer.ElapsedSeconds();
  return static_cast<double>(total) / secs / 1e6;
}

int Run(const ThroughputConfig& cfg) {
  std::printf("{\n");
  std::printf("  \"bench\": \"ingest_throughput\",\n");
  PrintHardwareStamp();

  // --- raw queue ----------------------------------------------------------
  const int producers =
      std::max(1, std::min(4, static_cast<int>(BenchUsableCpus())));
  double spsc_mops = QueueMopsSingleProducer(cfg);
  double mpsc_mops = QueueMopsMultiProducer(cfg, producers);
  std::printf("  \"queue\": {\n");
  std::printf("    \"capacity\": %zu,\n", cfg.queue_capacity);
  std::printf("    \"items\": %zu,\n", cfg.queue_items);
  std::printf("    \"spsc_mops\": %.2f,\n", spsc_mops);
  std::printf("    \"mpsc_producers\": %d,\n", producers);
  std::printf("    \"mpsc_mops\": %.2f\n", mpsc_mops);
  std::printf("  },\n");

  // --- serving front-end end to end ---------------------------------------
  auto ds = BuildTinyCity();
  TS_CHECK(ds.ok()) << ds.status().ToString();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds->net, &ds->history, config);
  TS_CHECK(est.ok()) << est.status().ToString();
  auto seeds = est->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());

  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.observability.metrics = &reg;
  opts.publish_snapshots = true;
  opts.ingest_queue.capacity = cfg.queue_capacity;
  auto session = ServingSession::Create(&est.value(), opts);
  TS_CHECK(session.ok());
  auto fe = IngestFrontEnd::Create(&session.value());
  TS_CHECK(fe.ok()) << fe.status().ToString();

  std::atomic<bool> serving_done{false};
  std::atomic<uint64_t> snapshot_reads{0};
  std::thread reader([&] {
    const SpeedSnapshotPublisher* pub = session->snapshot_publisher();
    SpeedSnapshot snap;
    // One extra pass after `serving_done`: on a single-CPU host the serving
    // loop can finish before this thread is first scheduled, and the stamp
    // must still report at least one measured read.
    bool last_pass = false;
    while (!last_pass) {
      last_pass = serving_done.load(std::memory_order_acquire);
      if (pub->Read(&snap)) {
        snapshot_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  size_t offered = 0;
  WallTimer timer;
  for (size_t slot = 0; slot < cfg.serving_slots; ++slot) {
    for (RoadId r : seeds->seeds) {
      double v =
          std::max(1.0, ds->truth.at(slot % ds->num_slots(), r));
      while (!(*fe)->Offer(slot, SeedSpeed{r, v})) {
        (*fe)->Drain();
      }
      ++offered;
    }
    auto report = (*fe)->Flush();
    TS_CHECK(report.ok()) << report.status().ToString();
  }
  double serving_secs = timer.ElapsedSeconds();
  serving_done.store(true, std::memory_order_release);
  reader.join();

  obs::Histogram* ingest_ms = reg.GetHistogram(obs::kServingIngestLatencyMs);
  obs::Histogram* read_us = reg.GetHistogram(obs::kSnapshotReadLatencyUs);
  IngestStats ist = (*fe)->stats();
  TS_CHECK_EQ(ist.enqueued, static_cast<uint64_t>(offered));
  TS_CHECK_EQ(ist.flushed_slots, static_cast<uint64_t>(cfg.serving_slots));
  std::printf("  \"serving\": {\n");
  std::printf("    \"slots\": %zu,\n", cfg.serving_slots);
  std::printf("    \"obs_per_slot\": %zu,\n", seeds->seeds.size());
  std::printf("    \"obs_per_sec\": %.0f,\n",
              static_cast<double>(offered) / serving_secs);
  std::printf("    \"slots_per_sec\": %.1f,\n",
              static_cast<double>(cfg.serving_slots) / serving_secs);
  // Empty histograms yield NaN; spell it as a quoted string so the file
  // stays parseable JSON (same convention as the obs JSON exporter).
  auto print_json_num = [](const char* key, double v) {
    if (std::isfinite(v)) {
      std::printf("    \"%s\": %.3f,\n", key, v);
    } else {
      std::printf("    \"%s\": \"NaN\",\n", key);
    }
  };
  print_json_num("p50_ingest_ms", HistogramPercentile(*ingest_ms, 0.50));
  print_json_num("p99_ingest_ms", HistogramPercentile(*ingest_ms, 0.99));
  std::printf("    \"snapshot_reads\": %llu,\n",
              static_cast<unsigned long long>(snapshot_reads.load()));
  print_json_num("p99_snapshot_read_us", HistogramPercentile(*read_us, 0.99));
  std::printf("    \"snapshot_read_retries\": %llu\n",
              static_cast<unsigned long long>(
                  reg.GetCounter(obs::kSnapshotReadRetriesTotal)->Value()));
  std::printf("  },\n");

  // --- binary wire format -------------------------------------------------
  std::vector<ObservationBatch> log;
  log.reserve(cfg.wire_batches);
  for (size_t b = 0; b < cfg.wire_batches; ++b) {
    ObservationBatch batch;
    batch.slot = b;
    batch.observations.reserve(cfg.wire_obs_per_batch);
    for (size_t i = 0; i < cfg.wire_obs_per_batch; ++i) {
      batch.observations.push_back(
          SeedSpeed{static_cast<RoadId>(i), 30.0 + (i % 70)});
    }
    log.push_back(std::move(batch));
  }
  const size_t wire_obs = cfg.wire_batches * cfg.wire_obs_per_batch;
  timer.Restart();
  std::string bytes = EncodeObservationLog(log);
  double encode_secs = timer.ElapsedSeconds();
  timer.Restart();
  auto decoded = DecodeObservationLog(bytes);
  double decode_secs = timer.ElapsedSeconds();
  TS_CHECK(decoded.ok());
  TS_CHECK_EQ(decoded->size(), cfg.wire_batches);
  std::printf("  \"wire\": {\n");
  std::printf("    \"batches\": %zu,\n", cfg.wire_batches);
  std::printf("    \"observations\": %zu,\n", wire_obs);
  std::printf("    \"bytes\": %zu,\n", bytes.size());
  std::printf("    \"encode_mobs_per_sec\": %.2f,\n",
              static_cast<double>(wire_obs) / encode_secs / 1e6);
  std::printf("    \"decode_mobs_per_sec\": %.2f\n",
              static_cast<double>(wire_obs) / decode_secs / 1e6);
  std::printf("  }\n}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::ThroughputConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.queue_items = 100'000;
      cfg.queue_capacity = 256;
      cfg.serving_slots = 10;
      cfg.wire_batches = 50;
      cfg.wire_obs_per_batch = 64;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
