// Experiment M1 — google-benchmark microbenchmarks of the hot kernels:
// one BP sweep, one Gibbs sweep, greedy marginal-gain evaluation, full
// propagation pass, map-matching a fix, and a simulator step.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "probe/map_matching.h"
#include "roadnet/generators.h"
#include "seed/greedy.h"
#include "seed/lazy_greedy.h"
#include "trend/belief_propagation.h"
#include "trend/gibbs.h"
#include "trend/trend_model.h"
#include "traffic/simulator.h"

namespace trendspeed {
namespace {

// Shared fixture state built once (google-benchmark may run each benchmark
// many times; keep setup out of the loops).
struct Fixture {
  std::unique_ptr<Dataset> ds;
  std::unique_ptr<TrafficSpeedEstimator> est;
  std::vector<SeedSpeed> seeds;
  uint64_t slot = 0;

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->ds = bench::MakeCity("CityA");
      fx->est = std::make_unique<TrafficSpeedEstimator>(
          bench::TrainDefault(*fx->ds));
      auto selected = fx->est->SelectSeeds(40, SeedStrategy::kLazyGreedy);
      TS_CHECK(selected.ok());
      fx->slot = fx->ds->first_test_slot();
      for (RoadId r : selected->seeds) {
        fx->seeds.push_back(SeedSpeed{r, fx->ds->truth.at(fx->slot, r)});
      }
      return fx;
    }();
    return *f;
  }
};

void BM_FullEstimate(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto out = f.est->Estimate(f.slot, f.seeds);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.ds->net.num_roads()));
}
BENCHMARK(BM_FullEstimate);

void BM_BpInference(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  PairwiseMrf mrf = PairwiseMrf::FromCorrelationGraph(f.est->correlation_graph());
  for (size_t v = 0; v < mrf.num_vars(); ++v) mrf.SetPriorUp(v, 0.55);
  for (const SeedSpeed& s : f.seeds) mrf.Clamp(s.road, 1);
  for (auto _ : state) {
    BpResult r = InferMarginalsBp(mrf);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mrf.num_edges()));
}
BENCHMARK(BM_BpInference);

void BM_GibbsInference(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  PairwiseMrf mrf = PairwiseMrf::FromCorrelationGraph(f.est->correlation_graph());
  for (size_t v = 0; v < mrf.num_vars(); ++v) mrf.SetPriorUp(v, 0.55);
  for (const SeedSpeed& s : f.seeds) mrf.Clamp(s.road, 1);
  GibbsOptions opts;
  opts.burn_in_sweeps = 20;
  opts.sample_sweeps = 80;
  for (auto _ : state) {
    GibbsResult r = InferMarginalsGibbs(mrf, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GibbsInference);

void BM_GreedyGainEval(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  ObjectiveState obj(&f.est->influence());
  obj.Add(0);
  RoadId j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.GainOf(j));
    j = (j + 1) % static_cast<RoadId>(f.est->influence().num_roads());
  }
}
BENCHMARK(BM_GreedyGainEval);

void BM_SeedSelectLazyK40(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto r = SelectSeedsLazyGreedy(f.est->influence(), 40);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SeedSelectLazyK40);

void BM_SimulatorStep(benchmark::State& state) {
  auto net = MakeGridNetwork({});
  TS_CHECK(net.ok());
  TrafficOptions opts;
  TrafficSimulator sim(&*net, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Step());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(net->num_roads()));
}
BENCHMARK(BM_SimulatorStep);

void BM_MapMatchFix(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  SegmentIndex index(&f.ds->net);
  std::vector<GpsPoint> pts(2);
  Node mid = f.ds->net.Midpoint(3);
  pts[0].x = mid.x - 20;
  pts[0].y = mid.y;
  pts[1].x = mid.x;
  pts[1].y = mid.y + 5;
  pts[1].t_seconds = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchTrace(index, pts));
  }
}
BENCHMARK(BM_MapMatchFix);

}  // namespace
}  // namespace trendspeed

BENCHMARK_MAIN();
