// Sharded metropolitan BP engine bench: a multi-district graph past 100k
// segments, flat (unsharded) BP vs the ShardedBpEngine at 2/4/8 shards
// over a replayed serving window with slot-to-slot potential drift.
//
// The engine's latency claim (docs/sharding.md) is *per-slot latency
// bounded by the largest shard* plus cheap boundary-exchange rounds: each
// exchange round solves every shard concurrently, so with one core per
// shard the critical path is max(shard sweep time) x rounds, not the
// whole-city sweep. This container is pinned to one CPU, so wall-clock
// time cannot show the concurrency win (scaling_valid in the hardware
// stamp says whether it could here); what the bench measures instead is
// scheduling-independent and stronger:
//
//   * largest_sweep_ms — the summed per-slot critical path (the slowest
//     shard's solve time each round), i.e. the latency an adequately
//     provisioned deployment would see;
//   * sum_sweep_ms — total solve work across shards, showing the halo
//     exchange adds only a few percent over the flat sweep;
//   * max_abs_diff_vs_flat — inline correctness: sharded marginals must
//     track the converged flat run within 10x BpOptions::tol (asserted).
//
// Emits machine-readable JSON on stdout for BENCH_sharded_engine.json.
//
// Flags:
//   --smoke   tiny instance + fewer slots; used by the `perf`-labelled
//             CTest smoke entry.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_hardware.h"
#include "shard/sharded_bp.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct ShardBenchConfig {
  size_t districts = 8;
  size_t rows = 115;
  size_t cols = 115;  // 8 x 115 x 115 = 105,800 segments
  /// Arterial links between each pair of adjacent districts.
  size_t cross_links = 24;
  size_t slots = 8;
  double changed_frac = 0.01;
  /// The critical-path-beats-flat assertion only holds once shards are big
  /// enough that solve time dominates per-round bookkeeping; the smoke
  /// instance (~2k segments) is below that and skips it.
  bool check_latency = true;
};

// D grid districts in a chain, joined by sparse arterial links — the
// multi-district topology the partitioner is built for: dense inside a
// district, a thin cut between districts.
BpGraph MakeMetroGraph(const ShardBenchConfig& cfg) {
  size_t per = cfg.rows * cfg.cols;
  size_t n = cfg.districts * per;
  PairwiseMrf mrf(n);
  Rng rng(2026);
  for (size_t d = 0; d < cfg.districts; ++d) {
    size_t base = d * per;
    for (size_t r = 0; r < cfg.rows; ++r) {
      for (size_t c = 0; c < cfg.cols; ++c) {
        size_t v = base + r * cfg.cols + c;
        double same = rng.Uniform(0.55, 0.7);
        double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
        if (c + 1 < cfg.cols) mrf.AddEdge(v, v + 1, compat);
        if (r + 1 < cfg.rows) mrf.AddEdge(v, v + cfg.cols, compat);
      }
    }
    if (d + 1 < cfg.districts) {
      for (size_t k = 0; k < cfg.cross_links; ++k) {
        size_t u = base + rng.NextIndex(per);
        size_t w = base + per + rng.NextIndex(per);
        double same = rng.Uniform(0.55, 0.65);
        double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
        mrf.AddEdge(u, w, compat);
      }
    }
  }
  return BpGraph::FromMrf(mrf);
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

struct ShardColumn {
  uint32_t shards = 0;
  double cut_fraction = 0.0;
  size_t largest_shard_vars = 0;
  double total_ms = 0.0;         // wall clock on this machine
  double largest_sweep_ms = 0.0; // summed per-slot critical paths
  double sum_sweep_ms = 0.0;     // total solve work across shards
  double mean_rounds = 0.0;
  double max_diff = 0.0;
};

int Run(const ShardBenchConfig& cfg) {
  size_t n = cfg.districts * cfg.rows * cfg.cols;
  BpGraph graph = MakeMetroGraph(cfg);
  BpOptions bp;
  bp.max_iters = 200;  // the flat baseline must converge (asserted below)

  // Slot-0 potentials plus per-slot drift, as in bench_warm_start.
  Rng rng(4077);
  std::vector<double> p_up(n);
  std::vector<std::vector<double>> slot_pot;
  {
    std::vector<double> pot(2 * n);
    for (size_t v = 0; v < n; ++v) {
      p_up[v] = rng.Uniform(0.05, 0.95);
      pot[2 * v] = 1.0 - p_up[v];
      pot[2 * v + 1] = p_up[v];
    }
    size_t changed =
        static_cast<size_t>(static_cast<double>(n) * cfg.changed_frac);
    for (size_t slot = 0; slot < cfg.slots; ++slot) {
      if (slot > 0) {
        for (size_t k = 0; k < changed; ++k) {
          size_t v = rng.NextIndex(n);
          double p = p_up[v] + rng.Uniform(-0.15, 0.15);
          p_up[v] = std::min(0.95, std::max(0.05, p));
          pot[2 * v] = 1.0 - p_up[v];
          pot[2 * v + 1] = p_up[v];
        }
      }
      slot_pot.push_back(pot);
    }
  }

  // Flat baseline replay (cold each slot: the latency reference).
  double flat_ms = 0.0;
  std::vector<std::vector<double>> flat_p_up;
  for (size_t slot = 0; slot < cfg.slots; ++slot) {
    WallTimer t;
    BpResult flat = InferMarginalsBpFlat(graph, slot_pot[slot], bp);
    flat_ms += t.ElapsedMillis();
    TS_CHECK(flat.converged) << "flat baseline must converge at slot " << slot;
    flat_p_up.push_back(std::move(flat.p_up));
  }

  std::vector<ShardColumn> columns;
  for (uint32_t shards : {2u, 4u, 8u}) {
    ShardingOptions so;
    so.num_shards = shards;
    so.max_exchange_rounds = 16;
    auto engine = ShardedBpEngine::Build(graph, so);
    TS_CHECK(engine.ok()) << engine.status().ToString();

    ShardColumn col;
    col.shards = shards;
    col.cut_fraction = engine->plan().CutEdgeFraction();
    col.largest_shard_vars = engine->plan().LargestShard();
    std::vector<BpState> states;  // warm across slots, as serving runs it
    uint64_t rounds = 0;
    for (size_t slot = 0; slot < cfg.slots; ++slot) {
      WallTimer t;
      ShardedBpResult r = engine->Infer(slot_pot[slot], bp, &states);
      col.total_ms += t.ElapsedMillis();
      TS_CHECK(r.converged) << shards << " shards, slot " << slot;
      rounds += r.exchange_rounds;
      col.largest_sweep_ms += r.LargestShardSweepMs();
      for (double ms : r.shard_sweep_ms) col.sum_sweep_ms += ms;
      double diff = MaxAbsDiff(r.p_up, flat_p_up[slot]);
      col.max_diff = std::max(col.max_diff, diff);
      TS_CHECK_LE(diff, 10.0 * bp.tol)
          << shards << " shards drifted at slot " << slot;
    }
    col.mean_rounds =
        static_cast<double>(rounds) / static_cast<double>(cfg.slots);
    // The latency claim, measured scheduling-independently: the summed
    // per-slot critical path (largest shard per round) must undercut the
    // flat whole-city replay.
    if (cfg.check_latency) {
      TS_CHECK_LT(col.largest_sweep_ms, flat_ms)
          << shards << " shards: critical path did not beat the flat sweep";
    }
    columns.push_back(col);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"sharded_engine\",\n");
  PrintHardwareStamp();
  std::printf("  \"segments\": %zu,\n", n);
  std::printf("  \"districts\": %zu,\n", cfg.districts);
  std::printf("  \"cross_links_per_cut\": %zu,\n", cfg.cross_links);
  std::printf("  \"slots\": %zu,\n", cfg.slots);
  std::printf("  \"tol\": %.1g,\n", bp.tol);
  std::printf("  \"flat\": {\"ms\": %.3f},\n", flat_ms);
  std::printf("  \"sharded\": [\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    const ShardColumn& c = columns[i];
    std::printf("    {\"shards\": %u, \"cut_edge_fraction\": %.5f, "
                "\"largest_shard_vars\": %zu, \"total_ms\": %.3f, "
                "\"largest_sweep_ms\": %.3f, \"sum_sweep_ms\": %.3f, "
                "\"mean_exchange_rounds\": %.2f, "
                "\"max_abs_diff_vs_flat\": %.3g}%s\n",
                c.shards, c.cut_fraction, c.largest_shard_vars, c.total_ms,
                c.largest_sweep_ms, c.sum_sweep_ms, c.mean_rounds, c.max_diff,
                i + 1 < columns.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::ShardBenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.districts = 4;
      cfg.rows = 24;
      cfg.cols = 24;
      cfg.cross_links = 6;
      cfg.slots = 3;
      cfg.check_latency = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
