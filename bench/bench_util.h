// Shared plumbing for the experiment-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md section 5 and EXPERIMENTS.md) and prints it as a fixed-width
// table. Datasets are built deterministically, so output is reproducible
// run to run (modulo wall-clock timing columns).

#ifndef TRENDSPEED_BENCH_BENCH_UTIL_H_
#define TRENDSPEED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "io/dataset.h"
#include "util/logging.h"

namespace trendspeed {
namespace bench {

/// Standard evaluation datasets for the benches: full probe-fleet pipeline,
/// 14 history days + 2 test days.
inline std::unique_ptr<Dataset> MakeCity(const std::string& which) {
  DatasetOptions opts;
  opts.history_days = 14;
  opts.test_days = 2;
  opts.use_probe_fleet = true;
  opts.fleet.trips_per_slot = 15;
  auto ds = which == "CityA" ? BuildCityA(opts) : BuildCityB(opts);
  TS_CHECK(ds.ok()) << ds.status().ToString();
  return std::make_unique<Dataset>(std::move(ds).value());
}

inline TrafficSpeedEstimator TrainDefault(const Dataset& ds,
                                          PipelineConfig config = {}) {
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  TS_CHECK(est.ok()) << est.status().ToString();
  return std::move(est).value();
}

/// Default evaluation options shared by the benches.
inline EvalOptions DefaultEval(uint32_t stride = 4) {
  EvalOptions opts;
  opts.slot_stride = stride;
  return opts;
}

// ---------------------------------------------------------------------------
// Fixed-width table printing.
// ---------------------------------------------------------------------------

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> header, int col_width = 12)
      : header_(std::move(header)), width_(col_width) {}

  void PrintHeader() const {
    for (const auto& h : header_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    PrintRule(header_.size() * static_cast<size_t>(width_));
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> header_;
  int width_;
};

inline std::string Fmt(double v, int prec = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string FmtPct(double v, int prec = 1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v * 100.0);
  return buf;
}

}  // namespace bench
}  // namespace trendspeed

#endif  // TRENDSPEED_BENCH_BENCH_UTIL_H_
