// Experiments F2 + F3 — "speed estimation accuracy vs crowdsourcing budget
// K", one series per method, on both datasets.
//
// This is the paper's headline accuracy figure: the two-step trend+speed
// model (TrendSpeed) against the baseline families, sweeping K. Expected
// shape (paper): TrendSpeed dominates at every K, with the gap vs the best
// baseline on the order of tens of percent; all methods improve with K;
// HistoricalMean is flat (it ignores seeds).

#include "bench_util.h"

namespace trendspeed {
namespace {

void RunCity(const std::string& name) {
  auto ds = bench::MakeCity(name);
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  auto suite = BuildMethodSuite(*ds, est, /*include_matrix_completion=*/true);
  TS_CHECK(suite.ok()) << suite.status().ToString();
  Evaluator eval(&*ds);
  EvalOptions opts = bench::DefaultEval();

  bench::PrintTitle("F2/F3 speed-estimation error vs budget K: " + name);
  bench::Table t({"K", "method", "MAE", "MAPE", "RMSE", "err-rate"}, 18);
  t.PrintHeader();
  for (size_t k : {10u, 20u, 40u, 80u, 160u}) {
    if (k >= ds->net.num_roads()) continue;
    auto seeds = est.SelectSeeds(k, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    for (const MethodAdapter& method : suite->methods) {
      auto r = eval.Run(method, seeds->seeds, opts);
      TS_CHECK(r.ok()) << method.name << ": " << r.status().ToString();
      t.Row({std::to_string(k), method.name, bench::Fmt(r->metrics.mae),
             bench::FmtPct(r->metrics.mape), bench::Fmt(r->metrics.rmse),
             bench::FmtPct(r->metrics.error_rate)});
    }
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::RunCity("CityA");
  trendspeed::RunCity("CityB");
  return 0;
}
