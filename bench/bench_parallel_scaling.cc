// Parallel-runtime scaling bench: BP inference and greedy seed selection
// on a >= 50k-segment synthetic network, timed at 1/2/4/8 threads.
//
// Unlike the table/figure benches this one emits machine-readable JSON on
// stdout so BENCH_*.json trajectories can accumulate across machines and
// revisions. Correctness is asserted inline: every thread count must produce
// the single-thread marginals (bitwise, reported as max |diff|) and the
// single-thread seed sets (exactly).
//
// Flags:
//   --smoke   tiny instance + fewer thread counts; seconds instead of
//             minutes, used by the `perf`-labelled CTest smoke entry.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_hardware.h"
#include "seed/greedy.h"
#include "seed/lazy_greedy.h"
#include "seed/objective.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct ScalingConfig {
  size_t rows = 230;
  size_t cols = 220;  // 50600 segments
  uint32_t bp_iters = 10;
  size_t greedy_k = 64;
  size_t lazy_k = 256;
  size_t cover_size = 24;
  int reps = 3;
  std::vector<uint32_t> threads = {1, 2, 4, 8};
};

// Grid-structured associative MRF: the shape correlation mining produces
// (sparse, locally coupled), at a size the paper's city networks reach.
BpGraph MakeGridBpGraph(const ScalingConfig& cfg, std::vector<double>* pot) {
  size_t n = cfg.rows * cfg.cols;
  PairwiseMrf mrf(n);
  Rng rng(2026);
  for (size_t r = 0; r < cfg.rows; ++r) {
    for (size_t c = 0; c < cfg.cols; ++c) {
      size_t v = r * cfg.cols + c;
      double same = rng.Uniform(0.55, 0.95);
      double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
      if (c + 1 < cfg.cols) mrf.AddEdge(v, v + 1, compat);
      if (r + 1 < cfg.rows) mrf.AddEdge(v, v + cfg.cols, compat);
    }
  }
  pot->resize(2 * n);
  for (size_t v = 0; v < n; ++v) {
    double p = rng.Uniform(0.05, 0.95);
    (*pot)[2 * v] = 1.0 - p;
    (*pot)[2 * v + 1] = p;
  }
  return BpGraph::FromMrf(mrf);
}

// Synthetic influence model: each road covers `cover_size` random roads
// (plus itself at full strength), random variability weights.
InfluenceModel MakeInfluence(const ScalingConfig& cfg) {
  size_t n = cfg.rows * cfg.cols;
  Rng rng(4077);
  std::vector<std::vector<CoverEntry>> covers(n);
  std::vector<double> sigma(n);
  for (size_t j = 0; j < n; ++j) {
    sigma[j] = rng.Uniform(0.05, 1.0);
    auto& cover = covers[j];
    cover.reserve(cfg.cover_size + 1);
    cover.push_back(CoverEntry{static_cast<RoadId>(j), 1.0f});
    for (size_t t = 0; t < cfg.cover_size; ++t) {
      cover.push_back(
          CoverEntry{static_cast<RoadId>(rng.NextIndex(n)),
                     static_cast<float>(rng.Uniform(0.05, 0.9))});
    }
  }
  return InfluenceModel::FromCoverLists(n, std::move(covers),
                                        std::move(sigma));
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

template <typename Fn>
double BestMillis(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void PrintThreadRow(bool first, uint32_t threads, double ms, double base_ms,
                    double work_items, const char* extra_key,
                    double extra_value) {
  std::printf("%s\n      {\"threads\": %u, \"ms\": %.3f, "
              "\"items_per_sec\": %.0f, \"speedup_vs_1\": %.3f, "
              "\"%s\": %.3g}",
              first ? "" : ",", threads, ms, work_items / (ms / 1e3),
              base_ms / ms, extra_key, extra_value);
}

int Run(const ScalingConfig& cfg) {
  size_t n = cfg.rows * cfg.cols;

  std::printf("{\n");
  std::printf("  \"bench\": \"parallel_scaling\",\n");
  PrintHardwareStamp();
  std::printf("  \"hardware_concurrency\": %zu,\n", EffectiveThreads(0));
  std::printf("  \"segments\": %zu,\n", n);

  // --- BP inference -------------------------------------------------------
  std::vector<double> pot;
  BpGraph graph = MakeGridBpGraph(cfg, &pot);
  BpOptions bp;
  bp.max_iters = cfg.bp_iters;
  bp.tol = 0.0;  // never converge early: every config does identical work
  std::vector<double> serial_marginals;
  std::printf("  \"bp\": {\n    \"iterations\": %u,\n    \"runs\": [",
              cfg.bp_iters);
  double bp_base_ms = 0.0;
  for (size_t i = 0; i < cfg.threads.size(); ++i) {
    bp.num_threads = cfg.threads[i];
    BpResult result;
    double ms = BestMillis(cfg.reps,
                           [&] { result = InferMarginalsBpFlat(graph, pot, bp); });
    TS_CHECK_EQ(result.iterations, cfg.bp_iters);
    if (i == 0) {
      bp_base_ms = ms;
      serial_marginals = result.p_up;
    }
    double diff = MaxAbsDiff(serial_marginals, result.p_up);
    TS_CHECK_LT(diff, 1e-9);
    PrintThreadRow(i == 0, cfg.threads[i], ms, bp_base_ms,
                   static_cast<double>(n) * cfg.bp_iters,
                   "max_abs_diff_vs_1thread", diff);
  }
  std::printf("\n    ]\n  },\n");

  // --- Seed selection -----------------------------------------------------
  InfluenceModel influence = MakeInfluence(cfg);
  struct Algo {
    const char* name;
    size_t k;
    Result<SeedSelectionResult> (*run)(const InfluenceModel&, size_t,
                                       const SeedSelectionOptions&);
  };
  const Algo algos[] = {
      {"greedy", cfg.greedy_k, SelectSeedsGreedy},
      {"lazy_greedy", cfg.lazy_k, SelectSeedsLazyGreedy},
  };
  for (size_t a = 0; a < 2; ++a) {
    const Algo& algo = algos[a];
    std::printf("  \"%s\": {\n    \"k\": %zu,\n    \"runs\": [", algo.name,
                algo.k);
    std::vector<RoadId> serial_seeds;
    double base_ms = 0.0;
    for (size_t i = 0; i < cfg.threads.size(); ++i) {
      SeedSelectionOptions opts;
      opts.num_threads = cfg.threads[i];
      Result<SeedSelectionResult> result = SeedSelectionResult{};
      double ms =
          BestMillis(cfg.reps, [&] { result = algo.run(influence, algo.k, opts); });
      TS_CHECK(result.ok()) << result.status().ToString();
      if (i == 0) {
        base_ms = ms;
        serial_seeds = result->seeds;
      }
      TS_CHECK(result->seeds == serial_seeds)
          << algo.name << " seed set changed at " << cfg.threads[i]
          << " threads";
      PrintThreadRow(i == 0, cfg.threads[i], ms, base_ms,
                     static_cast<double>(algo.k) * n, "gain_evaluations",
                     static_cast<double>(result->gain_evaluations));
    }
    std::printf("\n    ]\n  }%s\n", a == 0 ? "," : "");
  }
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::ScalingConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.rows = 80;
      cfg.cols = 80;
      cfg.bp_iters = 4;
      cfg.greedy_k = 8;
      cfg.lazy_k = 32;
      cfg.reps = 1;
      cfg.threads = {1, 2};
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
