// Warm-start BP replay bench: a multi-slot serving day on a grid MRF,
// cold-started vs warm-started inference.
//
// Each slot perturbs a small fraction of the node potentials (the
// steady-state shape of adjacent time slots: most of the city does not
// change in five minutes) and runs BP twice — once cold (the stateless
// schedule) and once seeded from the previous slot's fixed point through a
// persistent BpState. Emits machine-readable JSON on stdout so
// BENCH_warm_start.json trajectories can accumulate across machines and
// revisions. Correctness is asserted inline: warm marginals must track the
// cold ones within 10x BpOptions::tol on every slot, and the warm replay
// must save at least 30% of the cold replay's total sweeps.
//
// Flags:
//   --smoke   tiny instance + fewer slots; used by the `perf`-labelled
//             CTest smoke entry.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_hardware.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct WarmBenchConfig {
  size_t rows = 120;
  size_t cols = 120;  // 14400 segments
  size_t slots = 48;  // four replayed hours at 5-minute slots
  /// Fraction of variables whose potential is resampled each slot.
  double changed_frac = 0.01;
};

BpGraph MakeGridBpGraph(const WarmBenchConfig& cfg) {
  size_t n = cfg.rows * cfg.cols;
  PairwiseMrf mrf(n);
  Rng rng(2026);
  for (size_t r = 0; r < cfg.rows; ++r) {
    for (size_t c = 0; c < cfg.cols; ++c) {
      size_t v = r * cfg.cols + c;
      // Moderate associative couplings: strong enough to propagate trends,
      // weak enough that loopy BP reaches its fixed point (the cold column
      // must converge for the closeness claim to be well-defined).
      double same = rng.Uniform(0.55, 0.7);
      double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
      if (c + 1 < cfg.cols) mrf.AddEdge(v, v + 1, compat);
      if (r + 1 < cfg.rows) mrf.AddEdge(v, v + cfg.cols, compat);
    }
  }
  return BpGraph::FromMrf(mrf);
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

int Run(const WarmBenchConfig& cfg) {
  size_t n = cfg.rows * cfg.cols;
  BpGraph graph = MakeGridBpGraph(cfg);
  // Production damping/tol, but a sweep budget that lets the cold schedule
  // converge: the 10x-tol closeness claim (and a meaningful sweeps-saved
  // number) is only defined against a converged cold run — the truncated
  // default (max_iters 6) stops wherever its budget ran out.
  BpOptions bp;
  bp.max_iters = 200;

  // Slot 0 potentials; later slots drift `changed_frac` of them by a
  // bounded step — the steady-state shape of adjacent slots (congestion
  // onsets move a neighbourhood's trend odds, they do not resample the
  // whole city).
  Rng rng(4077);
  std::vector<double> p_up(n);
  std::vector<double> pot(2 * n);
  for (size_t v = 0; v < n; ++v) {
    p_up[v] = rng.Uniform(0.05, 0.95);
    pot[2 * v] = 1.0 - p_up[v];
    pot[2 * v + 1] = p_up[v];
  }
  size_t changed_per_slot =
      static_cast<size_t>(static_cast<double>(n) * cfg.changed_frac);

  BpState state;
  uint64_t cold_sweeps = 0, warm_sweeps = 0;
  uint64_t cold_updates = 0, warm_updates = 0;
  double cold_ms = 0.0, warm_ms = 0.0;
  double max_diff = 0.0;
  size_t active_sum = 0;

  for (size_t slot = 0; slot < cfg.slots; ++slot) {
    if (slot > 0) {
      for (size_t k = 0; k < changed_per_slot; ++k) {
        size_t v = rng.NextIndex(n);
        double p = p_up[v] + rng.Uniform(-0.15, 0.15);
        p_up[v] = std::min(0.95, std::max(0.05, p));
        pot[2 * v] = 1.0 - p_up[v];
        pot[2 * v + 1] = p_up[v];
      }
    }
    WallTimer cold_timer;
    BpResult cold = InferMarginalsBpFlat(graph, pot, bp);
    cold_ms += cold_timer.ElapsedMillis();
    WallTimer warm_timer;
    BpResult warm = InferMarginalsBpFlat(graph, pot, bp, &state);
    warm_ms += warm_timer.ElapsedMillis();

    TS_CHECK(cold.converged) << "slot " << slot
                             << ": raise max_iters, cold must converge";
    cold_sweeps += cold.iterations;
    warm_sweeps += warm.iterations;
    cold_updates += cold.message_updates;
    warm_updates += warm.message_updates;
    if (warm.warm) active_sum += warm.active_vars;
    double diff = MaxAbsDiff(cold.p_up, warm.p_up);
    if (diff > max_diff) max_diff = diff;
    // Slot 0 runs cold in both columns (the state is freshly seeded).
    TS_CHECK_EQ(warm.warm, slot > 0);
    TS_CHECK_LE(diff, 10.0 * bp.tol)
        << "slot " << slot << " warm marginals drifted";
  }

  double sweep_reduction =
      1.0 - static_cast<double>(warm_sweeps) / static_cast<double>(cold_sweeps);
  double update_reduction = 1.0 - static_cast<double>(warm_updates) /
                                      static_cast<double>(cold_updates);
  TS_CHECK_GE(sweep_reduction, 0.30)
      << "warm replay must save >= 30% of the cold replay's sweeps";

  std::printf("{\n");
  std::printf("  \"bench\": \"warm_start\",\n");
  PrintHardwareStamp();
  std::printf("  \"segments\": %zu,\n", n);
  std::printf("  \"slots\": %zu,\n", cfg.slots);
  std::printf("  \"changed_per_slot\": %zu,\n", changed_per_slot);
  std::printf("  \"cold\": {\"sweeps\": %llu, \"message_updates\": %llu, "
              "\"ms\": %.3f},\n",
              static_cast<unsigned long long>(cold_sweeps),
              static_cast<unsigned long long>(cold_updates), cold_ms);
  std::printf("  \"warm\": {\"sweeps\": %llu, \"message_updates\": %llu, "
              "\"ms\": %.3f},\n",
              static_cast<unsigned long long>(warm_sweeps),
              static_cast<unsigned long long>(warm_updates), warm_ms);
  std::printf("  \"sweep_reduction\": %.4f,\n", sweep_reduction);
  std::printf("  \"message_update_reduction\": %.4f,\n", update_reduction);
  std::printf("  \"mean_active_vars\": %.1f,\n",
              cfg.slots > 1
                  ? static_cast<double>(active_sum) /
                        static_cast<double>(cfg.slots - 1)
                  : 0.0);
  std::printf("  \"max_abs_diff_vs_cold\": %.3g,\n", max_diff);
  std::printf("  \"tol\": %.1g\n", bp.tol);
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::WarmBenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.rows = 40;
      cfg.cols = 40;
      cfg.slots = 12;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
