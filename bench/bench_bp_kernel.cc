// BP message-update kernel bench: scalar oracle vs the vectorized SoA
// kernel (trend/bp_kernel.h) on a 100k+ segment grid MRF, single thread.
//
// Emits machine-readable JSON on stdout (committed as BENCH_bp_kernel.json)
// with the uniform hardware stamp, so the headline speedup is always read
// together with the ISA and CPU count it was measured on. Correctness is
// asserted inline: both kernels run the identical fixed sweep schedule
// (tol 0, so convergence never shortens a run) and the marginals must agree
// within the kernel's documented tolerance contract.
//
// The warm_drift section measures the warm-start density crossover: a state
// is cold-seeded, a fraction of the potentials drifts, and the row records
// which schedule the SIMD-resolved warm run actually took (sparse scalar
// active-set vs dense vectorized sweeps) plus its wall time — the numbers
// behind the kBpWarmDenseCrossover constant in docs/performance.md.
//
// Flags:
//   --smoke   tiny instance + 1 rep; used by the `perf`-labelled CTest
//             smoke entry.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_hardware.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "trend/belief_propagation.h"
#include "trend/bp_kernel.h"
#include "trend/factor_graph.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct KernelBenchConfig {
  size_t rows = 320;
  size_t cols = 320;  // 102400 segments
  /// Fixed sweep count for the throughput sections. Large enough that the
  /// per-run setup (plane allocation, seed fill, beliefs pass) amortizes
  /// and the number approximates steady-state sweep throughput, while
  /// still being an honest end-to-end InferMarginalsBpFlat measurement.
  uint32_t bp_iters = 50;
  /// Sweep budget for the warm_drift section — production-shaped (warm
  /// serving runs are tightly budgeted and stop on tol), not the
  /// throughput section's long schedule.
  uint32_t warm_iters = 10;
  int reps = 5;
  std::vector<double> drift_fracs = {0.01, 0.05, 0.15, 0.5};
  /// Secondary single-thread section on a grid whose working set fits L2,
  /// where the kernel is compute- rather than bandwidth-bound. 0 = skip.
  size_t l2_rows = 120;
  size_t l2_cols = 120;
  uint32_t l2_iters = 100;
};

BpGraph MakeGridBpGraph(size_t rows, size_t cols, std::vector<double>* pot) {
  size_t n = rows * cols;
  PairwiseMrf mrf(n);
  Rng rng(2026);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      size_t v = r * cols + c;
      double same = rng.Uniform(0.55, 0.95);
      double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
      if (c + 1 < cols) mrf.AddEdge(v, v + 1, compat);
      if (r + 1 < rows) mrf.AddEdge(v, v + cols, compat);
    }
  }
  pot->resize(2 * n);
  for (size_t v = 0; v < n; ++v) {
    double p = rng.Uniform(0.05, 0.95);
    (*pot)[2 * v] = 1.0 - p;
    (*pot)[2 * v + 1] = p;
  }
  return BpGraph::FromMrf(mrf);
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

template <typename Fn>
double BestMillis(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Single-core streaming bandwidth (GB/s) over a footprint comparable to
/// the sweep's resident working set, via a read-read-write triad. This is
/// the kernel's speed-of-light: one message update must move ~28 bytes
/// through the same level of the hierarchy (see traffic accounting below),
/// so updates/sec cannot exceed bandwidth / 28 no matter the ALU width.
double MeasureStreamBandwidthGBs(size_t footprint_bytes, int reps) {
  size_t n = footprint_bytes / (3 * sizeof(float));
  AlignedVector<float> a(n), b(n), c(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<float>(i % 7);
    c[i] = static_cast<float>(i % 5) * 0.25f;
  }
  double best = 0.0;
  float sink = 0.0f;
  for (int r = 0; r < reps + 1; ++r) {  // first pass warms the pages
    WallTimer timer;
    for (size_t i = 0; i < n; ++i) a[i] = b[i] + 0.5f * c[i];
    double ms = timer.ElapsedMillis();
    sink += a[n / 2];
    if (r == 0) continue;
    if (r == 1 || ms < best) best = ms;
  }
  TS_CHECK(sink >= 0.0f || sink < 0.0f);  // defeat dead-store elimination
  // Streams per element: b + c reads, a write-allocate + writeback.
  double bytes = 4.0 * static_cast<double>(n) * sizeof(float);
  return bytes / (best / 1e3) / 1e9;
}

/// Per-update memory traffic of the vectorized sweep, in bytes: gather
/// index (4) + gathered incoming message (4) + three compat planes (12) +
/// write-allocate and writeback of the out-message plane (4 + 4). The old
/// message re-read hits the just-gathered plane in cache and is not
/// counted. The single-message-plane and 3-plane-compat layout choices in
/// bp_kernel.h exist to make this number small.
constexpr double kSweepBytesPerUpdate = 28.0;

struct SingleThreadResult {
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double diff = 0.0;
  bool simd = false;
};

/// Runs the fixed-schedule scalar-vs-SIMD comparison (tol 0 pins both
/// kernels to exactly `iters` full sweeps) and prints one JSON section.
SingleThreadResult RunSingleThreadSection(const char* key, const BpGraph& g,
                                          const std::vector<double>& pot,
                                          uint32_t iters, int reps) {
  size_t n = g.num_vars;
  size_t dir_edges = g.off[n];
  BpOptions bp;
  bp.max_iters = iters;
  bp.tol = 0.0;
  bp.num_threads = 1;
  double work = static_cast<double>(dir_edges) * iters;

  SingleThreadResult out;
  bp.kernel = BpKernel::kScalar;
  BpResult scalar;
  out.scalar_ms =
      BestMillis(reps, [&] { scalar = InferMarginalsBpFlat(g, pot, bp); });
  TS_CHECK_EQ(scalar.iterations, iters);
  std::printf("  \"%s\": {\n", key);
  std::printf("    \"segments\": %zu,\n", n);
  std::printf("    \"iterations\": %u,\n", iters);
  std::printf("    \"scalar\": {\"ms\": %.3f, \"msg_updates_per_sec\": %.3g},",
              out.scalar_ms, work / (out.scalar_ms / 1e3));

  out.simd = BpSimdKernelAvailable();
  if (out.simd) {
    bp.kernel = BpKernel::kSimd;
    BpResult vec;
    out.simd_ms =
        BestMillis(reps, [&] { vec = InferMarginalsBpFlat(g, pot, bp); });
    TS_CHECK_EQ(vec.iterations, iters);
    out.diff = MaxAbsDiff(scalar.p_up, vec.p_up);
    // Float reassociation drift grows with the fixed-schedule length: the
    // documented 1e-3 contract (docs/performance.md) holds at production
    // budgets; this 50-sweep tol=0 stress run sits just under it (~9e-4),
    // so the inline guard allows 2x headroom before declaring divergence.
    TS_CHECK_LT(out.diff, 2e-3) << "SIMD marginals drifted off the oracle";
    std::printf("\n    \"simd\": {\"ms\": %.3f, \"msg_updates_per_sec\": "
                "%.3g},\n",
                out.simd_ms, work / (out.simd_ms / 1e3));
    std::printf("    \"speedup\": %.2f,\n", out.scalar_ms / out.simd_ms);
    std::printf("    \"max_abs_diff_vs_scalar\": %.3g\n", out.diff);
  } else {
    std::printf("\n    \"simd\": null\n");
  }
  std::printf("  },\n");
  return out;
}

int Run(const KernelBenchConfig& cfg) {
  size_t n = cfg.rows * cfg.cols;
  std::vector<double> pot;
  BpGraph graph = MakeGridBpGraph(cfg.rows, cfg.cols, &pot);
  size_t dir_edges = graph.off[n];

  std::printf("{\n");
  std::printf("  \"bench\": \"bp_kernel\",\n");
  PrintHardwareStamp();
  std::printf("  \"segments\": %zu,\n", n);
  std::printf("  \"directed_edges\": %zu,\n", dir_edges);

  // --- single-thread cold throughput --------------------------------------
  SingleThreadResult st = RunSingleThreadSection(
      "single_thread", graph, pot, cfg.bp_iters, cfg.reps);

  // --- memory roofline ----------------------------------------------------
  // At 100k+ segments the sweep's planes spill past L2 and the kernel is
  // memory-bandwidth-bound: the JSON records the machine's own streaming
  // bandwidth at the sweep's footprint, the kernel's bytes-per-update, and
  // what fraction of that hard ceiling the measured throughput reaches —
  // so the headline speedup can be judged against what the memory system
  // permits rather than an arbitrary target (docs/performance.md).
  if (st.simd) {
    size_t footprint =
        dir_edges * (3 * sizeof(float) + sizeof(uint32_t));  // msg+compat+rev
    double gbs = MeasureStreamBandwidthGBs(footprint, cfg.reps);
    double ceiling = gbs * 1e9 / kSweepBytesPerUpdate;
    double measured =
        static_cast<double>(dir_edges) * cfg.bp_iters / (st.simd_ms / 1e3);
    std::printf("  \"roofline\": {\n");
    std::printf("    \"stream_bandwidth_gb_per_sec\": %.2f,\n", gbs);
    std::printf("    \"sweep_bytes_per_update\": %.0f,\n",
                kSweepBytesPerUpdate);
    std::printf("    \"bandwidth_bound_updates_per_sec\": %.3g,\n", ceiling);
    std::printf("    \"simd_fraction_of_roofline\": %.2f\n",
                measured / ceiling);
    std::printf("  },\n");
  }

  // --- L2-resident compute-bound section ----------------------------------
  // Same protocol on a grid whose planes fit in L2, where bandwidth no
  // longer caps the kernel and the speedup reflects ALU efficiency.
  if (cfg.l2_rows > 0) {
    std::vector<double> l2_pot;
    BpGraph l2_graph = MakeGridBpGraph(cfg.l2_rows, cfg.l2_cols, &l2_pot);
    RunSingleThreadSection("l2_resident", l2_graph, l2_pot, cfg.l2_iters,
                           cfg.reps);
  }

  // --- warm-start density crossover ---------------------------------------
  std::printf("  \"dense_crossover\": %.2f,\n", kBpWarmDenseCrossover);
  std::printf("  \"warm_drift\": [");
  Rng rng(4077);
  BpOptions bp;
  bp.max_iters = cfg.warm_iters;
  bp.num_threads = 1;
  bp.tol = 1e-4;  // realistic warm serving runs converge, not exhaust
  bp.kernel = st.simd ? BpKernel::kSimd : BpKernel::kScalar;
  for (size_t i = 0; i < cfg.drift_fracs.size(); ++i) {
    double frac = cfg.drift_fracs[i];
    obs::MetricsRegistry reg;
    bp.metrics = &reg;
    BpState state;
    InferMarginalsBpFlat(graph, pot, bp, &state);
    std::vector<double> drifted = pot;
    size_t changed = static_cast<size_t>(static_cast<double>(n) * frac);
    for (size_t k = 0; k < changed; ++k) {
      size_t v = rng.NextIndex(n);
      double p = std::min(0.95, std::max(0.05, drifted[2 * v + 1] +
                                                   rng.Uniform(-0.2, 0.2)));
      drifted[2 * v] = 1.0 - p;
      drifted[2 * v + 1] = p;
    }
    BpResult warm;
    double ms = BestMillis(
        cfg.reps, [&] {
          BpState run_state = state;  // each rep warms from the same seed
          warm = InferMarginalsBpFlat(graph, drifted, bp, &run_state);
        });
    bool dense =
        reg.GetCounter(obs::kBpKernelWarmDenseTotal)->Value() > 0;
    std::printf("%s\n    {\"drift_frac\": %.2f, \"active_vars\": %zu, "
                "\"active_density\": %.4f, \"dense_path\": %s, \"ms\": %.3f}",
                i == 0 ? "" : ",", frac, warm.active_vars,
                static_cast<double>(warm.active_vars) /
                    static_cast<double>(n),
                dense ? "true" : "false", ms);
    bp.metrics = nullptr;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::KernelBenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.rows = 60;
      cfg.cols = 60;
      cfg.bp_iters = 4;
      cfg.reps = 1;
      cfg.drift_fracs = {0.01, 0.5};
      cfg.l2_rows = 0;  // the main grid already fits in cache
      cfg.l2_cols = 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
