// Experiment F8 [R] — offline (training) cost vs network size.
//
// The paper's split: a heavy offline phase (correlation mining, model
// fitting, influence precomputation, seed selection) amortized across a
// lightweight online phase. This harness scales the network and times each
// offline stage, single-threaded and with all cores, demonstrating the
// data-parallel training path.

#include "bench_util.h"
#include "roadnet/generators.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

void Run() {
  bench::PrintTitle("F8 offline training cost vs network size (seconds)");
  bench::Table t({"roads", "mine-1t", "mine-Nt", "fit-1t", "fit-Nt",
                  "influence", "select-K", "total-Nt"},
                 12);
  t.PrintHeader();
  for (size_t m : {12u, 20u, 32u}) {
    GridNetworkOptions gopts;
    gopts.rows = m;
    gopts.cols = m;
    gopts.arterial_every = 4;
    DatasetOptions dopts;
    dopts.history_days = 7;
    dopts.test_days = 1;
    dopts.use_probe_fleet = false;
    auto net = MakeGridNetwork(gopts);
    TS_CHECK(net.ok());
    auto ds = BuildDataset("grid", std::move(net).value(), dopts);
    TS_CHECK(ds.ok());

    auto time_mine = [&](uint32_t threads) {
      CorrelationGraphOptions copts;
      copts.num_threads = threads;
      WallTimer timer;
      auto graph = CorrelationGraph::Build(ds->net, ds->history, copts);
      TS_CHECK(graph.ok());
      return timer.ElapsedSeconds();
    };
    double mine1 = time_mine(1);
    double minen = time_mine(0);

    CorrelationGraphOptions copts;
    auto graph = CorrelationGraph::Build(ds->net, ds->history, copts);
    TS_CHECK(graph.ok());
    WallTimer timer;
    InfluenceOptions iopts;
    auto influence = InfluenceModel::Build(*graph, ds->history, iopts);
    TS_CHECK(influence.ok());
    double infl_s = timer.ElapsedSeconds();

    auto time_fit = [&](uint32_t threads) {
      HierarchicalModelOptions hopts;
      hopts.num_threads = threads;
      WallTimer fit_timer;
      auto model = HierarchicalSpeedModel::Train(ds->net, ds->history, *graph,
                                                 *influence, hopts);
      TS_CHECK(model.ok());
      return fit_timer.ElapsedSeconds();
    };
    double fit1 = time_fit(1);
    double fitn = time_fit(0);

    timer.Restart();
    TrafficSpeedEstimator est = bench::TrainDefault(*ds);
    auto seeds =
        est.SelectSeeds(ds->net.num_roads() / 20, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    double select_s = timer.ElapsedSeconds();

    t.Row({std::to_string(ds->net.num_roads()), bench::Fmt(mine1, 3),
           bench::Fmt(minen, 3), bench::Fmt(fit1, 3), bench::Fmt(fitn, 3),
           bench::Fmt(infl_s, 3), bench::Fmt(select_s, 3),
           bench::Fmt(minen + fitn + infl_s, 3)});
  }
  std::printf("(threads available: %zu)\n", EffectiveThreads(0));
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
