// Read-side product layer bench, emitted as JSON on stdout (saved as
// BENCH_product_read.json).
//
// Three measurement groups:
//
//   * writer_baseline     — seqlock publish latency with zero readers: the
//                           floor the product layer must not move.
//   * writer_with_readers — the same publish loop while N reader threads
//                           fold profiles and answer cached route ETAs at
//                           full speed. The bench ASSERTS the writer's
//                           median publish latency is unchanged within a
//                           generous noise bound — the "products never
//                           block the writer" claim as a number, not a
//                           comment.
//   * product_read        — single-reader ETA latency split by cache hit
//                           vs miss (median/p99 over per-query timers) and
//                           profile fold throughput.
//
// Flags:
//   --smoke   tiny instance, used by the `perf`-labelled CTest smoke entry.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_hardware.h"
#include "core/routing.h"
#include "core/snapshot.h"
#include "product/profile.h"
#include "product/route_eta.h"
#include "roadnet/generators.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct ProductBenchConfig {
  size_t grid_rows = 16;
  size_t grid_cols = 16;
  uint64_t publishes = 20'000;
  size_t eta_queries = 20'000;
  int readers = 3;
};

RoadNetwork BenchGrid(const ProductBenchConfig& cfg) {
  GridNetworkOptions opts;
  opts.rows = cfg.grid_rows;
  opts.cols = cfg.grid_cols;
  opts.arterial_every = 4;
  auto net = MakeGridNetwork(opts);
  TS_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

ProductOptions BenchProductOptions() {
  ProductOptions opts;
  opts.enabled = true;
  opts.profile_buckets_per_day = 24;
  opts.profile_min_samples = 2;
  opts.blend_full_stale_slots = 4;
  opts.eta_cache_capacity = 1024;
  return opts;
}

double PercentileUs(std::vector<double>* us, double q) {
  if (us->empty()) return std::nan("");
  std::sort(us->begin(), us->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(us->size() - 1));
  return (*us)[idx];
}

/// NaN is not valid JSON — quote it, like the other bench emitters do.
void PrintJsonNum(const char* key, double v, bool trailing_comma) {
  if (std::isnan(v)) {
    std::printf("    \"%s\": \"nan\"%s\n", key, trailing_comma ? "," : "");
  } else {
    std::printf("    \"%s\": %.3f%s\n", key, v, trailing_comma ? "," : "");
  }
}

/// One timed publish loop; returns the per-publish latencies in us.
std::vector<double> TimedPublishes(SpeedSnapshotPublisher* pub,
                                   const RoadNetwork& net, uint64_t count) {
  std::vector<double> speeds(net.num_roads()), devs(net.num_roads(), 0.0);
  std::vector<double> lat_us;
  lat_us.reserve(count);
  WallTimer timer;
  for (uint64_t v = 1; v <= count; ++v) {
    for (size_t r = 0; r < speeds.size(); ++r) {
      speeds[r] = 20.0 + static_cast<double>((v + r) % 50);
    }
    timer.Restart();
    pub->Publish(v, speeds, devs, static_cast<uint32_t>(v % 7 == 3), 40.0);
    lat_us.push_back(timer.ElapsedSeconds() * 1e6);
  }
  return lat_us;
}

int Run(const ProductBenchConfig& cfg) {
  std::printf("{\n");
  std::printf("  \"bench\": \"product_read\",\n");
  PrintHardwareStamp();

  const RoadNetwork net = BenchGrid(cfg);
  const ProductOptions popts = BenchProductOptions();

  // --- writer baseline: no readers ----------------------------------------
  double base_p50, base_p99;
  {
    SpeedSnapshotPublisher pub(net.num_roads());
    std::vector<double> lat = TimedPublishes(&pub, net, cfg.publishes);
    base_p50 = PercentileUs(&lat, 0.50);
    base_p99 = PercentileUs(&lat, 0.99);
  }
  std::printf("  \"writer_baseline\": {\n");
  std::printf("    \"publishes\": %llu,\n",
              static_cast<unsigned long long>(cfg.publishes));
  std::printf("    \"roads\": %zu,\n", net.num_roads());
  std::printf("    \"p50_publish_us\": %.3f,\n", base_p50);
  std::printf("    \"p99_publish_us\": %.3f\n", base_p99);
  std::printf("  },\n");

  // --- writer with folding/routing readers attached -----------------------
  double load_p50, load_p99;
  uint64_t reader_etas = 0, reader_folds = 0;
  {
    SpeedSnapshotPublisher pub(net.num_roads());
    std::atomic<bool> done{false};
    std::atomic<uint64_t> etas{0};
    std::atomic<uint64_t> folds{0};
    std::vector<std::thread> readers;
    readers.reserve(cfg.readers);
    for (int t = 0; t < cfg.readers; ++t) {
      readers.emplace_back([&, t] {
        auto profile = SpeedProfileStore::Create(net.num_roads(), 144, popts);
        TS_CHECK(profile.ok());
        auto cache = RouteEtaCache::Create(net, popts, &*profile);
        TS_CHECK(cache.ok());
        Rng rng(42 + static_cast<uint64_t>(t));
        SpeedSnapshot snap;
        while (!done.load(std::memory_order_acquire)) {
          if (!pub.Read(&snap)) continue;
          profile->Fold(snap);
          NodeId from = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
          NodeId to = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
          if (cache->Eta(snap, from, to).ok()) {
            etas.fetch_add(1, std::memory_order_relaxed);
          }
        }
        folds.fetch_add(profile->folds(), std::memory_order_relaxed);
      });
    }
    std::vector<double> lat = TimedPublishes(&pub, net, cfg.publishes);
    done.store(true, std::memory_order_release);
    for (std::thread& th : readers) th.join();
    load_p50 = PercentileUs(&lat, 0.50);
    load_p99 = PercentileUs(&lat, 0.99);
    reader_etas = etas.load();
    reader_folds = folds.load();
  }
  std::printf("  \"writer_with_readers\": {\n");
  std::printf("    \"readers\": %d,\n", cfg.readers);
  std::printf("    \"p50_publish_us\": %.3f,\n", load_p50);
  std::printf("    \"p99_publish_us\": %.3f,\n", load_p99);
  std::printf("    \"reader_etas\": %llu,\n",
              static_cast<unsigned long long>(reader_etas));
  std::printf("    \"reader_folds\": %llu,\n",
              static_cast<unsigned long long>(reader_folds));
  std::printf("    \"p50_ratio_vs_baseline\": %.2f\n",
              load_p50 / base_p50);
  std::printf("  },\n");

  // The load-bearing assertion: attaching folding/routing readers must not
  // move the writer's median publish latency beyond scheduling noise. The
  // bound is deliberately generous (8x or +25us absolute) so an
  // oversubscribed single-CPU CI host doesn't flake, while an actual
  // reader->writer block (a lock on the publish path) — which would show
  // up as orders of magnitude, not single digits — still fails loudly.
  TS_CHECK(load_p50 <= std::max(8.0 * base_p50, base_p50 + 25.0))
      << "writer median publish latency moved from " << base_p50
      << "us to " << load_p50 << "us with readers attached";

  // --- single-reader ETA latency, hit vs miss -----------------------------
  {
    SpeedSnapshotPublisher pub(net.num_roads());
    std::vector<double> speeds(net.num_roads(), 45.0);
    std::vector<double> devs(net.num_roads(), 0.0);
    pub.Publish(1, speeds, devs, 0, 45.0);

    auto profile = SpeedProfileStore::Create(net.num_roads(), 144, popts);
    TS_CHECK(profile.ok());
    auto cache = RouteEtaCache::Create(net, popts, &*profile);
    TS_CHECK(cache.ok());
    SpeedSnapshot snap;
    TS_CHECK(pub.Read(&snap));
    profile->Fold(snap);

    Rng rng(7);
    std::vector<double> hit_us, miss_us;
    hit_us.reserve(cfg.eta_queries);
    miss_us.reserve(cfg.eta_queries);
    WallTimer timer;
    WallTimer fold_timer;
    for (size_t q = 0; q < cfg.eta_queries; ++q) {
      NodeId from = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
      NodeId to = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
      timer.Restart();
      auto eta = cache->Eta(snap, from, to);
      double us = timer.ElapsedSeconds() * 1e6;
      if (!eta.ok()) continue;
      (eta->cache_hit ? hit_us : miss_us).push_back(us);
    }
    // Fold throughput: re-fold a rotating fresh field.
    const uint64_t fold_rounds = std::max<uint64_t>(64, cfg.publishes / 8);
    fold_timer.Restart();
    for (uint64_t v = 0; v < fold_rounds; ++v) {
      snap.version = 2 + v;
      snap.slot = v;
      snap.stale = false;
      snap.stale_slots = 0;
      TS_CHECK(profile->Fold(snap));
    }
    double folds_per_sec =
        static_cast<double>(fold_rounds) / fold_timer.ElapsedSeconds();

    const size_t hits = hit_us.size(), misses = miss_us.size();
    std::printf("  \"product_read\": {\n");
    std::printf("    \"eta_queries\": %zu,\n", cfg.eta_queries);
    std::printf("    \"cache_hits\": %zu,\n", hits);
    std::printf("    \"cache_misses\": %zu,\n", misses);
    PrintJsonNum("p50_hit_us", PercentileUs(&hit_us, 0.50), true);
    PrintJsonNum("p99_hit_us", PercentileUs(&hit_us, 0.99), true);
    PrintJsonNum("p50_miss_us", PercentileUs(&miss_us, 0.50), true);
    PrintJsonNum("p99_miss_us", PercentileUs(&miss_us, 0.99), true);
    std::printf("    \"profile_folds_per_sec\": %.0f\n", folds_per_sec);
    std::printf("  }\n");
  }
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace trendspeed

int main(int argc, char** argv) {
  trendspeed::ProductBenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.grid_rows = 4;
      cfg.grid_cols = 4;
      // Not a multiple-of-7 offset that lands the final publish on the
      // stale cadence: on a single-CPU host the readers' one guaranteed
      // read is the quiescent last pass, which must be foldable.
      cfg.publishes = 512;
      cfg.eta_queries = 500;
      cfg.readers = 2;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return trendspeed::Run(cfg);
}
