// Experiment F7 — "seed-selection efficiency": selection wall time and
// marginal-gain evaluation counts for the greedy family, vs K and vs
// network size.
//
// Expected shape (paper): plain greedy scales as K * n evaluations; CELF
// (lazy greedy) returns the identical set with 1-2 orders of magnitude
// fewer evaluations; stochastic greedy's evaluation count is ~independent
// of K.

#include "bench_util.h"
#include "roadnet/generators.h"
#include "seed/greedy.h"
#include "seed/lazy_greedy.h"
#include "seed/stochastic_greedy.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

struct Run {
  const char* name;
  Result<SeedSelectionResult> (*run)(const InfluenceModel&, size_t);
};

Result<SeedSelectionResult> RunStochastic(const InfluenceModel& m, size_t k) {
  return SelectSeedsStochasticGreedy(m, k);
}

void SweepK(const InfluenceModel& influence) {
  bench::PrintTitle("F7a seed-selection cost vs K (CityA influence model)");
  bench::Table t({"K", "algorithm", "objective", "gain-evals", "ms"}, 14);
  t.PrintHeader();
  const Run runs[] = {
      {"greedy", SelectSeedsGreedy},
      {"lazy", SelectSeedsLazyGreedy},
      {"stochastic", RunStochastic},
  };
  for (size_t k : {10u, 40u, 160u, 320u}) {
    if (k >= influence.num_roads()) continue;
    for (const Run& r : runs) {
      WallTimer timer;
      auto result = r.run(influence, k);
      double ms = timer.ElapsedMillis();
      TS_CHECK(result.ok());
      t.Row({std::to_string(k), r.name, bench::Fmt(result->objective, 1),
             std::to_string(result->gain_evaluations), bench::Fmt(ms, 2)});
    }
  }
}

void SweepN() {
  bench::PrintTitle("F7b lazy-greedy cost vs network size (K = n/20)");
  bench::Table t({"roads", "gain-evals(greedy)", "gain-evals(lazy)",
                  "speedup", "ms(lazy)"},
                 20);
  t.PrintHeader();
  for (size_t m : {10u, 20u, 30u, 40u}) {
    GridNetworkOptions gopts;
    gopts.rows = m;
    gopts.cols = m;
    DatasetOptions dopts;
    dopts.history_days = 7;
    dopts.test_days = 1;
    dopts.use_probe_fleet = false;
    auto net = MakeGridNetwork(gopts);
    TS_CHECK(net.ok());
    auto ds = BuildDataset("grid", std::move(net).value(), dopts);
    TS_CHECK(ds.ok());
    TrafficSpeedEstimator est = bench::TrainDefault(*ds);
    size_t k = std::max<size_t>(4, ds->net.num_roads() / 20);
    auto greedy = SelectSeedsGreedy(est.influence(), k);
    WallTimer timer;
    auto lazy = SelectSeedsLazyGreedy(est.influence(), k);
    double ms = timer.ElapsedMillis();
    TS_CHECK(greedy.ok());
    TS_CHECK(lazy.ok());
    TS_CHECK_EQ(greedy->objective, lazy->objective);
    t.Row({std::to_string(ds->net.num_roads()),
           std::to_string(greedy->gain_evaluations),
           std::to_string(lazy->gain_evaluations),
           bench::Fmt(static_cast<double>(greedy->gain_evaluations) /
                          static_cast<double>(lazy->gain_evaluations),
                      1) +
               "x",
           bench::Fmt(ms, 2)});
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  auto ds = trendspeed::bench::MakeCity("CityA");
  trendspeed::TrafficSpeedEstimator est = trendspeed::bench::TrainDefault(*ds);
  trendspeed::SweepK(est.influence());
  trendspeed::SweepN();
  return 0;
}
