// Hardware stamp for the machine-readable BENCH_*.json emitters.
//
// Committed bench JSONs accumulate across machines and revisions, so every
// number needs enough provenance to be interpretable later: the thread-count
// rows of a scaling bench mean nothing without knowing how many CPUs the
// run actually had, and kernel-throughput rows mean nothing without the ISA
// and compiler. PrintHardwareStamp() emits one uniform "hardware" object:
//
//   "hardware": {
//     "hardware_concurrency": 8,
//     "arch": "x86_64",
//     "simd_kernel": "avx2",
//     "simd_available": true,
//     "compiler": "gcc 11.4.0",
//     "scaling_valid": true
//   }
//
// scaling_valid is false when the run saw <= 2 CPUs: with one or two cores
// the multi-thread rows measure scheduler time-slicing, not scaling, and
// downstream tooling must not read speedup_vs_1 from such a file.

#ifndef TRENDSPEED_BENCH_BENCH_HARDWARE_H_
#define TRENDSPEED_BENCH_BENCH_HARDWARE_H_

#include <cstdio>
#include <thread>

#include "trend/bp_kernel.h"

namespace trendspeed {

inline const char* BenchArchName() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  return "aarch64";
#else
  return "unknown";
#endif
}

inline const char* BenchCompilerName() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// Emits the `"hardware": {...}` stamp at two-space indent, followed by a
/// comma and newline — callers drop it right after their opening brace.
inline void PrintHardwareStamp() {
  unsigned cpus = std::thread::hardware_concurrency();
  std::printf("  \"hardware\": {\n");
  std::printf("    \"hardware_concurrency\": %u,\n", cpus);
  std::printf("    \"arch\": \"%s\",\n", BenchArchName());
  std::printf("    \"simd_kernel\": \"%s\",\n", BpSimdArchName());
  std::printf("    \"simd_available\": %s,\n",
              BpSimdKernelAvailable() ? "true" : "false");
  std::printf("    \"compiler\": \"%s\",\n", BenchCompilerName());
  std::printf("    \"scaling_valid\": %s\n", cpus > 2 ? "true" : "false");
  std::printf("  },\n");
}

}  // namespace trendspeed

#endif  // TRENDSPEED_BENCH_BENCH_HARDWARE_H_
