// Hardware stamp for the machine-readable BENCH_*.json emitters.
//
// Committed bench JSONs accumulate across machines and revisions, so every
// number needs enough provenance to be interpretable later: the thread-count
// rows of a scaling bench mean nothing without knowing how many CPUs the
// run actually had, and kernel-throughput rows mean nothing without the ISA
// and compiler. PrintHardwareStamp() emits one uniform "hardware" object:
//
//   "hardware": {
//     "hardware_concurrency": 8,
//     "usable_cpus": 4,
//     "arch": "x86_64",
//     "simd_kernel": "avx2",
//     "simd_available": true,
//     "compiler": "gcc 11.4.0",
//     "scaling_valid": true
//   }
//
// hardware_concurrency is what the standard library reports for the whole
// machine; usable_cpus is the CPUs this process may actually run on (its
// affinity mask, which is how cgroup cpusets in CI runners and containers
// constrain a run). They differ exactly when the bench is boxed in, so both
// are stamped. scaling_valid is computed from usable_cpus and is false when
// the run had <= 2 of them: with one or two cores the multi-thread rows
// measure scheduler time-slicing, not scaling, and downstream tooling must
// not read speedup_vs_1 from such a file. (Before usable_cpus existed, a
// 64-core host pinned to 2 CPUs stamped scaling_valid=true — the bug
// bench_hardware_test.cc pins itself down to reproduce.)

#ifndef TRENDSPEED_BENCH_BENCH_HARDWARE_H_
#define TRENDSPEED_BENCH_BENCH_HARDWARE_H_

#include <cstdio>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "trend/bp_kernel.h"

namespace trendspeed {

inline const char* BenchArchName() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  return "aarch64";
#else
  return "unknown";
#endif
}

inline const char* BenchCompilerName() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// CPUs this process may run on right now: the scheduling affinity mask,
/// which reflects cgroup cpuset limits, taskset pinning, and container CPU
/// boxes that std::thread::hardware_concurrency() (whole-machine) does not.
/// Falls back to hardware_concurrency where affinity is unavailable; never
/// returns 0.
inline unsigned BenchUsableCpus() {
  unsigned fallback = std::thread::hardware_concurrency();
  if (fallback == 0) fallback = 1;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    int n = CPU_COUNT(&mask);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  return fallback;
}

/// The rule downstream tooling relies on: speedup_vs_1 rows are only
/// meaningful when the run could actually run threads in parallel.
inline bool BenchScalingValid(unsigned usable_cpus) { return usable_cpus > 2; }

/// Emits the `"hardware": {...}` stamp at two-space indent, followed by a
/// comma and newline — callers drop it right after their opening brace.
inline void PrintHardwareStamp() {
  unsigned cpus = std::thread::hardware_concurrency();
  unsigned usable = BenchUsableCpus();
  std::printf("  \"hardware\": {\n");
  std::printf("    \"hardware_concurrency\": %u,\n", cpus);
  std::printf("    \"usable_cpus\": %u,\n", usable);
  std::printf("    \"arch\": \"%s\",\n", BenchArchName());
  std::printf("    \"simd_kernel\": \"%s\",\n", BpSimdArchName());
  std::printf("    \"simd_available\": %s,\n",
              BpSimdKernelAvailable() ? "true" : "false");
  std::printf("    \"compiler\": \"%s\",\n", BenchCompilerName());
  std::printf("    \"scaling_valid\": %s\n",
              BenchScalingValid(usable) ? "true" : "false");
  std::printf("  },\n");
}

}  // namespace trendspeed

#endif  // TRENDSPEED_BENCH_BENCH_HARDWARE_H_
