// Experiment F1 — "trend inference accuracy vs budget K", one series per
// inference engine.
//
// Step 1 in isolation: how often the inferred up/down trend of a non-seed
// road matches the true trend. Engines: loopy BP (production), Gibbs
// sampling, ICM, and the no-graph prior-only ablation. Expected shape:
// graph-based engines beat the prior everywhere and improve with K; BP and
// Gibbs track each other; ICM slightly behind; the prior is flat.

#include "bench_util.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

void Run() {
  auto ds = bench::MakeCity("CityA");
  struct Engine {
    const char* name;
    TrendEngine engine;
  };
  const Engine engines[] = {
      {"BP", TrendEngine::kBeliefPropagation},
      {"Gibbs", TrendEngine::kGibbs},
      {"ICM", TrendEngine::kIcm},
      {"PriorOnly", TrendEngine::kPriorOnly},
  };

  bench::PrintTitle("F1 trend-inference accuracy vs budget K (CityA)");
  bench::Table t({"K", "engine", "trend-acc", "ms/slot"}, 14);
  t.PrintHeader();
  for (size_t k : {10u, 20u, 40u, 80u, 160u}) {
    for (const Engine& e : engines) {
      PipelineConfig config;
      config.trend.engine = e.engine;
      TrafficSpeedEstimator est = bench::TrainDefault(*ds, config);
      auto seeds = est.SelectSeeds(k, SeedStrategy::kLazyGreedy);
      TS_CHECK(seeds.ok());
      Evaluator eval(&*ds);
      EvalOptions opts = bench::DefaultEval(/*stride=*/6);
      WallTimer timer;
      auto acc = eval.RunTrendAccuracy(est, seeds->seeds, opts);
      double seconds = timer.ElapsedSeconds();
      TS_CHECK(acc.ok());
      size_t slots = eval.TestSlots(opts.slot_stride).size();
      t.Row({std::to_string(k), e.name, bench::FmtPct(*acc),
             bench::Fmt(seconds * 1e3 / slots, 2)});
    }
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
