// Experiment F4 — "estimation error by time of day" at a fixed budget.
//
// The paper slices accuracy by hour: errors peak in the rush hours (when
// deviations from the historical norm are largest) and the gap between the
// trend-aware method and HistoricalMean is widest exactly there.

#include <map>

#include "bench_util.h"

namespace trendspeed {
namespace {

void Run() {
  auto ds = bench::MakeCity("CityA");
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  auto suite = BuildMethodSuite(*ds, est, /*include_matrix_completion=*/false);
  TS_CHECK(suite.ok());
  const size_t kBudget = 40;
  auto seeds = est.SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());
  std::vector<bool> is_seed(ds->net.num_roads(), false);
  for (RoadId r : seeds->seeds) is_seed[r] = true;

  Evaluator eval(&*ds);
  SlotClock clock{ds->truth.slots_per_day};
  Rng rng(99);

  // hour -> per-method (abs pct error sum, count).
  struct Cell {
    double mape_sum = 0.0;
    size_t n = 0;
  };
  std::map<std::string, std::vector<Cell>> by_method;
  for (const MethodAdapter& m : suite->methods) {
    by_method[m.name].resize(24);
  }

  for (uint64_t slot : eval.TestSlots(/*stride=*/2)) {
    int hour = static_cast<int>(clock.HourOfDay(slot));
    auto obs = eval.ObserveSeeds(slot, seeds->seeds, 1.5, &rng);
    for (const MethodAdapter& m : suite->methods) {
      auto out = m.estimate(slot, obs);
      TS_CHECK(out.ok()) << m.name;
      Cell& cell = by_method[m.name][hour];
      for (RoadId r = 0; r < ds->net.num_roads(); ++r) {
        if (is_seed[r]) continue;
        double truth = ds->truth.at(slot, r);
        if (truth <= 0.0) continue;
        cell.mape_sum += std::fabs((*out)[r] - truth) / truth;
        ++cell.n;
      }
    }
  }

  bench::PrintTitle("F4 MAPE by hour of day (CityA, K=40)");
  std::vector<std::string> header = {"hour"};
  for (const MethodAdapter& m : suite->methods) header.push_back(m.name);
  bench::Table t(header, 16);
  t.PrintHeader();
  for (int hour = 0; hour < 24; ++hour) {
    std::vector<std::string> row = {std::to_string(hour)};
    for (const MethodAdapter& m : suite->methods) {
      const Cell& cell = by_method[m.name][hour];
      row.push_back(cell.n > 0 ? bench::FmtPct(cell.mape_sum / cell.n) : "-");
    }
    t.Row(row);
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
