// Experiment T2 — "empirical approximation ratio of greedy seed selection".
//
// The seed-selection objective is NP-hard to maximize; greedy carries the
// (1 - 1/e) ~ 0.632 guarantee. This harness measures the *empirical* ratio
// greedy/optimal on exactly solvable instances: random weighted-cover
// instances plus sub-instances sampled from the CityA influence model.
// Expected shape (paper): empirical ratios far above the worst-case bound,
// typically > 0.95.

#include <algorithm>

#include "bench_util.h"
#include "seed/exact.h"
#include "seed/greedy.h"
#include "util/random.h"

namespace trendspeed {
namespace {

InfluenceModel RandomInstance(size_t n, Rng* rng) {
  std::vector<std::vector<CoverEntry>> covers(n);
  std::vector<double> sigma(n);
  for (size_t i = 0; i < n; ++i) {
    sigma[i] = rng->Uniform(0.05, 3.0);
    covers[i].push_back(CoverEntry{static_cast<RoadId>(i), 1.0f});
    size_t extra = rng->NextIndex(6);
    for (size_t e = 0; e < extra; ++e) {
      covers[i].push_back(
          CoverEntry{static_cast<RoadId>(rng->NextIndex(n)),
                     static_cast<float>(rng->Uniform(0.02, 0.98))});
    }
  }
  return InfluenceModel::FromCoverLists(n, std::move(covers),
                                        std::move(sigma));
}

/// Random sub-instance of a real influence model: sample m roads, restrict
/// cover lists and reindex.
InfluenceModel SubInstance(const InfluenceModel& full, size_t m, Rng* rng) {
  std::vector<size_t> picked =
      rng->SampleWithoutReplacement(full.num_roads(), m);
  std::sort(picked.begin(), picked.end());
  std::vector<uint32_t> remap(full.num_roads(), UINT32_MAX);
  for (size_t i = 0; i < m; ++i) remap[picked[i]] = static_cast<uint32_t>(i);
  std::vector<std::vector<CoverEntry>> covers(m);
  std::vector<double> sigma(m);
  for (size_t i = 0; i < m; ++i) {
    sigma[i] = full.sigma(static_cast<RoadId>(picked[i]));
    for (const CoverEntry& c : full.CoverList(static_cast<RoadId>(picked[i]))) {
      if (remap[c.road] != UINT32_MAX) {
        covers[i].push_back(CoverEntry{remap[c.road], c.influence});
      }
    }
  }
  return InfluenceModel::FromCoverLists(m, std::move(covers),
                                        std::move(sigma));
}

struct RatioStats {
  double min = 1.0;
  double sum = 0.0;
  size_t n = 0;
  size_t optimal_hits = 0;

  void Add(double greedy, double exact) {
    double ratio = exact > 0.0 ? greedy / exact : 1.0;
    min = std::min(min, ratio);
    sum += ratio;
    ++n;
    if (ratio > 1.0 - 1e-9) ++optimal_hits;
  }
};

void Run() {
  auto ds = bench::MakeCity("CityA");
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);

  bench::PrintTitle("T2 empirical approximation ratio: greedy vs exact");
  bench::Table t({"instances", "n", "K", "avg-ratio", "min-ratio",
                  "exact-found", "bound"},
                 14);
  t.PrintHeader();
  Rng rng(2024);
  for (size_t n : {12u, 16u}) {
    for (size_t k : {3u, 5u}) {
      RatioStats synth, real;
      const int kTrials = 12;
      for (int trial = 0; trial < kTrials; ++trial) {
        InfluenceModel synth_model = RandomInstance(n, &rng);
        auto ge = SelectSeedsGreedy(synth_model, k);
        auto ex = SelectSeedsExact(synth_model, k);
        TS_CHECK(ge.ok());
        TS_CHECK(ex.ok());
        synth.Add(ge->objective, ex->objective);

        InfluenceModel real_model = SubInstance(est.influence(), n, &rng);
        auto ge2 = SelectSeedsGreedy(real_model, k);
        auto ex2 = SelectSeedsExact(real_model, k);
        TS_CHECK(ge2.ok());
        TS_CHECK(ex2.ok());
        real.Add(ge2->objective, ex2->objective);
      }
      t.Row({"synthetic x" + std::to_string(kTrials), std::to_string(n),
             std::to_string(k), bench::Fmt(synth.sum / synth.n, 4),
             bench::Fmt(synth.min, 4),
             std::to_string(synth.optimal_hits) + "/" +
                 std::to_string(synth.n),
             "0.632"});
      t.Row({"CityA-sub x" + std::to_string(kTrials), std::to_string(n),
             std::to_string(k), bench::Fmt(real.sum / real.n, 4),
             bench::Fmt(real.min, 4),
             std::to_string(real.optimal_hits) + "/" + std::to_string(real.n),
             "0.632"});
    }
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
