// Experiments A1-A3 — ablations of the design choices DESIGN.md calls out.
//
// A1: correlation-graph mining knobs (same-trend threshold theta, candidate
//     hop horizon h) — graph density vs estimation accuracy.
// A2: history length — how many days of probe data the offline phase needs.
// A3: model components — full pipeline vs prior-only trends (no graph
//     inference) vs no-hierarchy (class/global regressions only) vs
//     flat-global; isolates the contribution of each step.

#include "bench_util.h"
#include "crowd/campaign.h"
#include "seed/adaptive.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

constexpr size_t kBudget = 40;

double Mape(const Dataset& ds, const PipelineConfig& config,
            uint32_t stride = 6) {
  TrafficSpeedEstimator est = bench::TrainDefault(ds, config);
  auto seeds = est.SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());
  auto suite = BuildMethodSuite(ds, est, false);
  TS_CHECK(suite.ok());
  Evaluator eval(&ds);
  auto r = eval.Run(suite->methods[0], seeds->seeds, bench::DefaultEval(stride));
  TS_CHECK(r.ok());
  return r->metrics.mape;
}

void A1(const Dataset& ds) {
  bench::PrintTitle("A1 correlation-mining knobs (CityA, K=40)");
  bench::Table t({"theta", "hops", "corr-edges", "isolated", "MAPE"}, 13);
  t.PrintHeader();
  for (double theta : {0.55, 0.62, 0.70, 0.80}) {
    for (uint32_t hops : {1u, 2u, 3u}) {
      PipelineConfig config;
      config.corr.min_same_prob = theta;
      config.corr.max_hops = hops;
      auto graph =
          CorrelationGraph::Build(ds.net, ds.history, config.corr);
      TS_CHECK(graph.ok());
      t.Row({bench::Fmt(theta), std::to_string(hops),
             std::to_string(graph->num_edges()),
             std::to_string(graph->CountIsolated()),
             bench::FmtPct(Mape(ds, config, 8))});
    }
  }
}

void A2() {
  bench::PrintTitle("A2 history length (CityA, K=40)");
  bench::Table t({"history-days", "records", "MAPE"}, 15);
  t.PrintHeader();
  for (uint32_t days : {3u, 7u, 14u, 21u}) {
    DatasetOptions opts;
    opts.history_days = days;
    opts.test_days = 2;
    opts.use_probe_fleet = true;
    opts.fleet.trips_per_slot = 15;
    auto ds = BuildCityA(opts);
    TS_CHECK(ds.ok());
    t.Row({std::to_string(days),
           std::to_string(ds->history.TotalObservations()),
           bench::FmtPct(Mape(*ds, {}, 8))});
  }
}

void A3(const Dataset& ds) {
  bench::PrintTitle("A3 model-component ablation (CityA, K=40)");
  bench::Table t({"variant", "MAPE"}, 44);
  t.PrintHeader();

  PipelineConfig full;
  t.Row({"full (evidence + BP + hierarchy)", bench::FmtPct(Mape(ds, full))});

  PipelineConfig no_mp = full;
  no_mp.trend.engine = TrendEngine::kPriorOnly;
  t.Row({"  - message passing (potentials only)",
         bench::FmtPct(Mape(ds, no_mp))});

  PipelineConfig no_ev = full;
  no_ev.use_trend_evidence = false;
  no_ev.trend.bp.max_iters = 40;  // without evidence BP must carry the load
  t.Row({"  - deviation evidence (BP only)", bench::FmtPct(Mape(ds, no_ev))});

  PipelineConfig no_step1 = full;
  no_step1.use_trend_evidence = false;
  no_step1.trend.engine = TrendEngine::kPriorOnly;
  t.Row({"  - Step 1 entirely (historical prior)",
         bench::FmtPct(Mape(ds, no_step1))});

  PipelineConfig layered = full;
  layered.propagation.mode = AggregationMode::kLayered;
  t.Row({"layered cascade instead of influence",
         bench::FmtPct(Mape(ds, layered))});

  PipelineConfig no_road = full;
  no_road.speed.min_road_samples = 1u << 20;  // road level untrainable
  t.Row({"no road-level models (class+global)",
         bench::FmtPct(Mape(ds, no_road))});

  PipelineConfig flat = no_road;
  flat.speed.min_class_samples = 1u << 20;  // class level untrainable too
  t.Row({"global model only (flat)", bench::FmtPct(Mape(ds, flat))});

  PipelineConfig icm = full;
  icm.trend.engine = TrendEngine::kIcm;
  t.Row({"ICM trends instead of BP", bench::FmtPct(Mape(ds, icm))});

  PipelineConfig gibbs = full;
  gibbs.trend.engine = TrendEngine::kGibbs;
  t.Row({"Gibbs trends instead of BP", bench::FmtPct(Mape(ds, gibbs))});
}

// A4: crowdsourcing quality — workers per seed x aggregation method. Both
// the raw seed-observation error and the downstream estimation error.
void A4(const Dataset& ds) {
  TrafficSpeedEstimator est = bench::TrainDefault(ds);
  auto seeds = est.SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());
  std::vector<bool> is_seed(ds.net.num_roads(), false);
  for (RoadId r : seeds->seeds) is_seed[r] = true;

  WorkerPool::Options popts;
  popts.num_workers = 500;
  popts.bias_spread_kmh = 2.5;
  popts.noise_min_kmh = 2.0;
  popts.noise_max_kmh = 8.0;
  popts.max_outlier_prob = 0.08;
  WorkerPool pool(popts);

  Evaluator eval(&ds);
  bench::PrintTitle("A4 crowdsourcing quality (CityA, K=40)");
  bench::Table t({"workers/seed", "aggregation", "obs-MAE", "est-MAPE",
                  "answers"},
                 15);
  t.PrintHeader();
  for (uint32_t workers : {1u, 3u, 5u}) {
    for (AggregationMethod method :
         {AggregationMethod::kMean, AggregationMethod::kMedian,
          AggregationMethod::kTrimmedMean,
          AggregationMethod::kReliabilityWeighted}) {
      if (workers == 1 && method != AggregationMethod::kMean) continue;
      CampaignOptions copts;
      copts.workers_per_seed = workers;
      copts.aggregation = method;
      CrowdCampaign campaign(&pool, copts);
      OnlineStats obs_err;
      std::vector<double> predicted, truth;
      for (uint64_t slot : eval.TestSlots(8)) {
        auto obs = campaign.Collect(seeds->seeds, ds.truth.speeds[slot]);
        TS_CHECK(obs.ok());
        for (const SeedSpeed& s : *obs) {
          obs_err.Add(std::fabs(s.speed_kmh - ds.truth.at(slot, s.road)));
        }
        auto out = est.Estimate(slot, *obs);
        TS_CHECK(out.ok());
        for (RoadId r = 0; r < ds.net.num_roads(); ++r) {
          if (is_seed[r]) continue;
          predicted.push_back(out->speeds.speed_kmh[r]);
          truth.push_back(ds.truth.at(slot, r));
        }
      }
      SpeedMetrics metrics = ComputeSpeedMetrics(predicted, truth);
      t.Row({std::to_string(workers), AggregationMethodName(method),
             bench::Fmt(obs_err.mean()), bench::FmtPct(metrics.mape),
             std::to_string(campaign.answers_spent())});
    }
  }
}

// A5: adaptive (per-period) seed sets vs one static set at equal budget.
void A5(const Dataset& ds) {
  TrafficSpeedEstimator est = bench::TrainDefault(ds);
  auto static_seeds = est.SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  TS_CHECK(static_seeds.ok());
  AdaptivePlanOptions aopts;
  auto plan = AdaptiveSeedPlan::Build(est.correlation_graph(), ds.history,
                                      kBudget, aopts);
  TS_CHECK(plan.ok());

  Evaluator eval(&ds);
  Rng rng(123);
  auto run = [&](auto seeds_for_slot) {
    std::vector<double> predicted, truth;
    for (uint64_t slot : eval.TestSlots(6)) {
      const std::vector<RoadId>& roads = seeds_for_slot(slot);
      std::vector<bool> is_seed(ds.net.num_roads(), false);
      for (RoadId r : roads) is_seed[r] = true;
      auto obs = eval.ObserveSeeds(slot, roads, 1.5, &rng);
      auto out = est.Estimate(slot, obs);
      TS_CHECK(out.ok());
      for (RoadId r = 0; r < ds.net.num_roads(); ++r) {
        if (is_seed[r]) continue;
        predicted.push_back(out->speeds.speed_kmh[r]);
        truth.push_back(ds.truth.at(slot, r));
      }
    }
    return ComputeSpeedMetrics(predicted, truth);
  };
  SpeedMetrics stat = run([&](uint64_t) -> const std::vector<RoadId>& {
    return static_seeds->seeds;
  });
  SpeedMetrics adap = run([&](uint64_t slot) -> const std::vector<RoadId>& {
    return plan->SeedsFor(slot);
  });
  bench::PrintTitle("A5 static vs time-adaptive seed sets (CityA, K=40)");
  bench::Table t({"plan", "MAPE", "MAE", "periods"}, 16);
  t.PrintHeader();
  t.Row({"static", bench::FmtPct(stat.mape), bench::Fmt(stat.mae), "1"});
  t.Row({"adaptive", bench::FmtPct(adap.mape), bench::Fmt(adap.mae),
         std::to_string(plan->num_periods())});
}

}  // namespace
}  // namespace trendspeed

int main() {
  auto ds = trendspeed::bench::MakeCity("CityA");
  trendspeed::A1(*ds);
  trendspeed::A2();
  trendspeed::A3(*ds);
  trendspeed::A4(*ds);
  trendspeed::A5(*ds);
  return 0;
}
