// Experiment F9 [R] — "error rate vs tolerance tau".
//
// The paper's error-rate metric counts estimates whose relative error
// exceeds a tolerance tau. This harness sweeps tau, showing the full error
// distribution per method rather than one operating point: the curve of the
// winning method sits below the others across the whole range, not just at
// tau = 20%.

#include "bench_util.h"

namespace trendspeed {
namespace {

void Run() {
  auto ds = bench::MakeCity("CityA");
  TrafficSpeedEstimator est = bench::TrainDefault(*ds);
  auto suite = BuildMethodSuite(*ds, est, /*include_matrix_completion=*/true);
  TS_CHECK(suite.ok());
  const size_t kBudget = 40;
  auto seeds = est.SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  TS_CHECK(seeds.ok());
  std::vector<bool> is_seed(ds->net.num_roads(), false);
  for (RoadId r : seeds->seeds) is_seed[r] = true;

  // Collect the relative errors per method once.
  Evaluator eval(&*ds);
  Rng rng(99);
  std::vector<std::vector<double>> rel_errors(suite->methods.size());
  for (uint64_t slot : eval.TestSlots(/*stride=*/6)) {
    auto obs = eval.ObserveSeeds(slot, seeds->seeds, 1.5, &rng);
    for (size_t m = 0; m < suite->methods.size(); ++m) {
      auto out = suite->methods[m].estimate(slot, obs);
      TS_CHECK(out.ok());
      for (RoadId r = 0; r < ds->net.num_roads(); ++r) {
        if (is_seed[r]) continue;
        double truth = ds->truth.at(slot, r);
        if (truth <= 0.0) continue;
        rel_errors[m].push_back(std::fabs((*out)[r] - truth) / truth);
      }
    }
  }

  bench::PrintTitle("F9 error rate vs tolerance tau (CityA, K=40)");
  std::vector<std::string> header = {"tau"};
  for (const MethodAdapter& m : suite->methods) header.push_back(m.name);
  bench::Table t(header, 18);
  t.PrintHeader();
  for (double tau : {0.05, 0.10, 0.15, 0.20, 0.30, 0.50}) {
    std::vector<std::string> row = {bench::FmtPct(tau, 0)};
    for (size_t m = 0; m < suite->methods.size(); ++m) {
      size_t over = 0;
      for (double e : rel_errors[m]) {
        if (e > tau) ++over;
      }
      row.push_back(bench::FmtPct(
          static_cast<double>(over) /
          static_cast<double>(rel_errors[m].size())));
    }
    t.Row(row);
  }
}

}  // namespace
}  // namespace trendspeed

int main() {
  trendspeed::Run();
  return 0;
}
