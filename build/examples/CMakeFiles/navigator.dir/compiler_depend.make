# Empty compiler generated dependencies file for navigator.
# This may be replaced when dependencies are built.
