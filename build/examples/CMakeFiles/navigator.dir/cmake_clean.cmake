file(REMOVE_RECURSE
  "CMakeFiles/navigator.dir/navigator.cpp.o"
  "CMakeFiles/navigator.dir/navigator.cpp.o.d"
  "navigator"
  "navigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
