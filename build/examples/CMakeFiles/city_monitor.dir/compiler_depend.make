# Empty compiler generated dependencies file for city_monitor.
# This may be replaced when dependencies are built.
