file(REMOVE_RECURSE
  "CMakeFiles/city_monitor.dir/city_monitor.cpp.o"
  "CMakeFiles/city_monitor.dir/city_monitor.cpp.o.d"
  "city_monitor"
  "city_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
