file(REMOVE_RECURSE
  "CMakeFiles/data_pipeline.dir/data_pipeline.cpp.o"
  "CMakeFiles/data_pipeline.dir/data_pipeline.cpp.o.d"
  "data_pipeline"
  "data_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
