file(REMOVE_RECURSE
  "libts_baseline.a"
)
