
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/global_lsq.cc" "src/CMakeFiles/ts_baseline.dir/baseline/global_lsq.cc.o" "gcc" "src/CMakeFiles/ts_baseline.dir/baseline/global_lsq.cc.o.d"
  "/root/repo/src/baseline/historical_mean.cc" "src/CMakeFiles/ts_baseline.dir/baseline/historical_mean.cc.o" "gcc" "src/CMakeFiles/ts_baseline.dir/baseline/historical_mean.cc.o.d"
  "/root/repo/src/baseline/knn.cc" "src/CMakeFiles/ts_baseline.dir/baseline/knn.cc.o" "gcc" "src/CMakeFiles/ts_baseline.dir/baseline/knn.cc.o.d"
  "/root/repo/src/baseline/label_propagation.cc" "src/CMakeFiles/ts_baseline.dir/baseline/label_propagation.cc.o" "gcc" "src/CMakeFiles/ts_baseline.dir/baseline/label_propagation.cc.o.d"
  "/root/repo/src/baseline/matrix_completion.cc" "src/CMakeFiles/ts_baseline.dir/baseline/matrix_completion.cc.o" "gcc" "src/CMakeFiles/ts_baseline.dir/baseline/matrix_completion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_corr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
