# Empty dependencies file for ts_baseline.
# This may be replaced when dependencies are built.
