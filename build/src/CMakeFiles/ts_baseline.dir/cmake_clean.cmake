file(REMOVE_RECURSE
  "CMakeFiles/ts_baseline.dir/baseline/global_lsq.cc.o"
  "CMakeFiles/ts_baseline.dir/baseline/global_lsq.cc.o.d"
  "CMakeFiles/ts_baseline.dir/baseline/historical_mean.cc.o"
  "CMakeFiles/ts_baseline.dir/baseline/historical_mean.cc.o.d"
  "CMakeFiles/ts_baseline.dir/baseline/knn.cc.o"
  "CMakeFiles/ts_baseline.dir/baseline/knn.cc.o.d"
  "CMakeFiles/ts_baseline.dir/baseline/label_propagation.cc.o"
  "CMakeFiles/ts_baseline.dir/baseline/label_propagation.cc.o.d"
  "CMakeFiles/ts_baseline.dir/baseline/matrix_completion.cc.o"
  "CMakeFiles/ts_baseline.dir/baseline/matrix_completion.cc.o.d"
  "libts_baseline.a"
  "libts_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
