file(REMOVE_RECURSE
  "CMakeFiles/ts_traffic.dir/traffic/disturbance.cc.o"
  "CMakeFiles/ts_traffic.dir/traffic/disturbance.cc.o.d"
  "CMakeFiles/ts_traffic.dir/traffic/incidents.cc.o"
  "CMakeFiles/ts_traffic.dir/traffic/incidents.cc.o.d"
  "CMakeFiles/ts_traffic.dir/traffic/profiles.cc.o"
  "CMakeFiles/ts_traffic.dir/traffic/profiles.cc.o.d"
  "CMakeFiles/ts_traffic.dir/traffic/simulator.cc.o"
  "CMakeFiles/ts_traffic.dir/traffic/simulator.cc.o.d"
  "libts_traffic.a"
  "libts_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
