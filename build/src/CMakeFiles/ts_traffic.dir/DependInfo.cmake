
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/disturbance.cc" "src/CMakeFiles/ts_traffic.dir/traffic/disturbance.cc.o" "gcc" "src/CMakeFiles/ts_traffic.dir/traffic/disturbance.cc.o.d"
  "/root/repo/src/traffic/incidents.cc" "src/CMakeFiles/ts_traffic.dir/traffic/incidents.cc.o" "gcc" "src/CMakeFiles/ts_traffic.dir/traffic/incidents.cc.o.d"
  "/root/repo/src/traffic/profiles.cc" "src/CMakeFiles/ts_traffic.dir/traffic/profiles.cc.o" "gcc" "src/CMakeFiles/ts_traffic.dir/traffic/profiles.cc.o.d"
  "/root/repo/src/traffic/simulator.cc" "src/CMakeFiles/ts_traffic.dir/traffic/simulator.cc.o" "gcc" "src/CMakeFiles/ts_traffic.dir/traffic/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
