file(REMOVE_RECURSE
  "libts_traffic.a"
)
