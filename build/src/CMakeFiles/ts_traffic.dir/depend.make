# Empty dependencies file for ts_traffic.
# This may be replaced when dependencies are built.
