file(REMOVE_RECURSE
  "CMakeFiles/ts_trend.dir/trend/belief_propagation.cc.o"
  "CMakeFiles/ts_trend.dir/trend/belief_propagation.cc.o.d"
  "CMakeFiles/ts_trend.dir/trend/exact.cc.o"
  "CMakeFiles/ts_trend.dir/trend/exact.cc.o.d"
  "CMakeFiles/ts_trend.dir/trend/factor_graph.cc.o"
  "CMakeFiles/ts_trend.dir/trend/factor_graph.cc.o.d"
  "CMakeFiles/ts_trend.dir/trend/gibbs.cc.o"
  "CMakeFiles/ts_trend.dir/trend/gibbs.cc.o.d"
  "CMakeFiles/ts_trend.dir/trend/icm.cc.o"
  "CMakeFiles/ts_trend.dir/trend/icm.cc.o.d"
  "CMakeFiles/ts_trend.dir/trend/trend_model.cc.o"
  "CMakeFiles/ts_trend.dir/trend/trend_model.cc.o.d"
  "libts_trend.a"
  "libts_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
