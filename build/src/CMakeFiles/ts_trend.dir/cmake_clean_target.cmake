file(REMOVE_RECURSE
  "libts_trend.a"
)
