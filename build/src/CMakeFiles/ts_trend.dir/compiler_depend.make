# Empty compiler generated dependencies file for ts_trend.
# This may be replaced when dependencies are built.
