file(REMOVE_RECURSE
  "libts_roadnet.a"
)
