# Empty compiler generated dependencies file for ts_roadnet.
# This may be replaced when dependencies are built.
