
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/generators.cc" "src/CMakeFiles/ts_roadnet.dir/roadnet/generators.cc.o" "gcc" "src/CMakeFiles/ts_roadnet.dir/roadnet/generators.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "src/CMakeFiles/ts_roadnet.dir/roadnet/road_network.cc.o" "gcc" "src/CMakeFiles/ts_roadnet.dir/roadnet/road_network.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/CMakeFiles/ts_roadnet.dir/roadnet/shortest_path.cc.o" "gcc" "src/CMakeFiles/ts_roadnet.dir/roadnet/shortest_path.cc.o.d"
  "/root/repo/src/roadnet/stats.cc" "src/CMakeFiles/ts_roadnet.dir/roadnet/stats.cc.o" "gcc" "src/CMakeFiles/ts_roadnet.dir/roadnet/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
