file(REMOVE_RECURSE
  "CMakeFiles/ts_roadnet.dir/roadnet/generators.cc.o"
  "CMakeFiles/ts_roadnet.dir/roadnet/generators.cc.o.d"
  "CMakeFiles/ts_roadnet.dir/roadnet/road_network.cc.o"
  "CMakeFiles/ts_roadnet.dir/roadnet/road_network.cc.o.d"
  "CMakeFiles/ts_roadnet.dir/roadnet/shortest_path.cc.o"
  "CMakeFiles/ts_roadnet.dir/roadnet/shortest_path.cc.o.d"
  "CMakeFiles/ts_roadnet.dir/roadnet/stats.cc.o"
  "CMakeFiles/ts_roadnet.dir/roadnet/stats.cc.o.d"
  "libts_roadnet.a"
  "libts_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
