
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seed/adaptive.cc" "src/CMakeFiles/ts_seed.dir/seed/adaptive.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/adaptive.cc.o.d"
  "/root/repo/src/seed/exact.cc" "src/CMakeFiles/ts_seed.dir/seed/exact.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/exact.cc.o.d"
  "/root/repo/src/seed/greedy.cc" "src/CMakeFiles/ts_seed.dir/seed/greedy.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/greedy.cc.o.d"
  "/root/repo/src/seed/heuristics.cc" "src/CMakeFiles/ts_seed.dir/seed/heuristics.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/heuristics.cc.o.d"
  "/root/repo/src/seed/lazy_greedy.cc" "src/CMakeFiles/ts_seed.dir/seed/lazy_greedy.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/lazy_greedy.cc.o.d"
  "/root/repo/src/seed/objective.cc" "src/CMakeFiles/ts_seed.dir/seed/objective.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/objective.cc.o.d"
  "/root/repo/src/seed/stochastic_greedy.cc" "src/CMakeFiles/ts_seed.dir/seed/stochastic_greedy.cc.o" "gcc" "src/CMakeFiles/ts_seed.dir/seed/stochastic_greedy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_corr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
