file(REMOVE_RECURSE
  "libts_seed.a"
)
