# Empty compiler generated dependencies file for ts_seed.
# This may be replaced when dependencies are built.
