file(REMOVE_RECURSE
  "CMakeFiles/ts_seed.dir/seed/adaptive.cc.o"
  "CMakeFiles/ts_seed.dir/seed/adaptive.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/exact.cc.o"
  "CMakeFiles/ts_seed.dir/seed/exact.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/greedy.cc.o"
  "CMakeFiles/ts_seed.dir/seed/greedy.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/heuristics.cc.o"
  "CMakeFiles/ts_seed.dir/seed/heuristics.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/lazy_greedy.cc.o"
  "CMakeFiles/ts_seed.dir/seed/lazy_greedy.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/objective.cc.o"
  "CMakeFiles/ts_seed.dir/seed/objective.cc.o.d"
  "CMakeFiles/ts_seed.dir/seed/stochastic_greedy.cc.o"
  "CMakeFiles/ts_seed.dir/seed/stochastic_greedy.cc.o.d"
  "libts_seed.a"
  "libts_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
