file(REMOVE_RECURSE
  "libts_util.a"
)
