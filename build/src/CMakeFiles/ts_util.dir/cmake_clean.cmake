file(REMOVE_RECURSE
  "CMakeFiles/ts_util.dir/util/csv.cc.o"
  "CMakeFiles/ts_util.dir/util/csv.cc.o.d"
  "CMakeFiles/ts_util.dir/util/logging.cc.o"
  "CMakeFiles/ts_util.dir/util/logging.cc.o.d"
  "CMakeFiles/ts_util.dir/util/matrix.cc.o"
  "CMakeFiles/ts_util.dir/util/matrix.cc.o.d"
  "CMakeFiles/ts_util.dir/util/parallel.cc.o"
  "CMakeFiles/ts_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/ts_util.dir/util/stats.cc.o"
  "CMakeFiles/ts_util.dir/util/stats.cc.o.d"
  "CMakeFiles/ts_util.dir/util/status.cc.o"
  "CMakeFiles/ts_util.dir/util/status.cc.o.d"
  "libts_util.a"
  "libts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
