file(REMOVE_RECURSE
  "libts_speed.a"
)
