# Empty dependencies file for ts_speed.
# This may be replaced when dependencies are built.
