file(REMOVE_RECURSE
  "CMakeFiles/ts_speed.dir/speed/hierarchical_model.cc.o"
  "CMakeFiles/ts_speed.dir/speed/hierarchical_model.cc.o.d"
  "CMakeFiles/ts_speed.dir/speed/linear_model.cc.o"
  "CMakeFiles/ts_speed.dir/speed/linear_model.cc.o.d"
  "CMakeFiles/ts_speed.dir/speed/propagation.cc.o"
  "CMakeFiles/ts_speed.dir/speed/propagation.cc.o.d"
  "libts_speed.a"
  "libts_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
