file(REMOVE_RECURSE
  "libts_crowd.a"
)
