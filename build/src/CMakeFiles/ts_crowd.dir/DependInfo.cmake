
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/aggregate.cc" "src/CMakeFiles/ts_crowd.dir/crowd/aggregate.cc.o" "gcc" "src/CMakeFiles/ts_crowd.dir/crowd/aggregate.cc.o.d"
  "/root/repo/src/crowd/allocation.cc" "src/CMakeFiles/ts_crowd.dir/crowd/allocation.cc.o" "gcc" "src/CMakeFiles/ts_crowd.dir/crowd/allocation.cc.o.d"
  "/root/repo/src/crowd/campaign.cc" "src/CMakeFiles/ts_crowd.dir/crowd/campaign.cc.o" "gcc" "src/CMakeFiles/ts_crowd.dir/crowd/campaign.cc.o.d"
  "/root/repo/src/crowd/worker.cc" "src/CMakeFiles/ts_crowd.dir/crowd/worker.cc.o" "gcc" "src/CMakeFiles/ts_crowd.dir/crowd/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_speed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_trend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_seed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_corr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
