# Empty dependencies file for ts_crowd.
# This may be replaced when dependencies are built.
