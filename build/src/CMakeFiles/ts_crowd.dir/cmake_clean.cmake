file(REMOVE_RECURSE
  "CMakeFiles/ts_crowd.dir/crowd/aggregate.cc.o"
  "CMakeFiles/ts_crowd.dir/crowd/aggregate.cc.o.d"
  "CMakeFiles/ts_crowd.dir/crowd/allocation.cc.o"
  "CMakeFiles/ts_crowd.dir/crowd/allocation.cc.o.d"
  "CMakeFiles/ts_crowd.dir/crowd/campaign.cc.o"
  "CMakeFiles/ts_crowd.dir/crowd/campaign.cc.o.d"
  "CMakeFiles/ts_crowd.dir/crowd/worker.cc.o"
  "CMakeFiles/ts_crowd.dir/crowd/worker.cc.o.d"
  "libts_crowd.a"
  "libts_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
