# Empty compiler generated dependencies file for ts_io.
# This may be replaced when dependencies are built.
