file(REMOVE_RECURSE
  "libts_io.a"
)
