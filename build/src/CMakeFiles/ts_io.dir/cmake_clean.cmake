file(REMOVE_RECURSE
  "CMakeFiles/ts_io.dir/io/dataset.cc.o"
  "CMakeFiles/ts_io.dir/io/dataset.cc.o.d"
  "CMakeFiles/ts_io.dir/io/serialize.cc.o"
  "CMakeFiles/ts_io.dir/io/serialize.cc.o.d"
  "libts_io.a"
  "libts_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
