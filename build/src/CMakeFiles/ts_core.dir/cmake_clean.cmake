file(REMOVE_RECURSE
  "CMakeFiles/ts_core.dir/core/config.cc.o"
  "CMakeFiles/ts_core.dir/core/config.cc.o.d"
  "CMakeFiles/ts_core.dir/core/estimator.cc.o"
  "CMakeFiles/ts_core.dir/core/estimator.cc.o.d"
  "CMakeFiles/ts_core.dir/core/evaluator.cc.o"
  "CMakeFiles/ts_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/ts_core.dir/core/model_io.cc.o"
  "CMakeFiles/ts_core.dir/core/model_io.cc.o.d"
  "CMakeFiles/ts_core.dir/core/monitor.cc.o"
  "CMakeFiles/ts_core.dir/core/monitor.cc.o.d"
  "CMakeFiles/ts_core.dir/core/routing.cc.o"
  "CMakeFiles/ts_core.dir/core/routing.cc.o.d"
  "libts_core.a"
  "libts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
