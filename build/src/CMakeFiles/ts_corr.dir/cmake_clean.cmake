file(REMOVE_RECURSE
  "CMakeFiles/ts_corr.dir/corr/correlation_graph.cc.o"
  "CMakeFiles/ts_corr.dir/corr/correlation_graph.cc.o.d"
  "CMakeFiles/ts_corr.dir/corr/cotrend.cc.o"
  "CMakeFiles/ts_corr.dir/corr/cotrend.cc.o.d"
  "libts_corr.a"
  "libts_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
