file(REMOVE_RECURSE
  "libts_corr.a"
)
