# Empty compiler generated dependencies file for ts_corr.
# This may be replaced when dependencies are built.
