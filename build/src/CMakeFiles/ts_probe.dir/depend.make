# Empty dependencies file for ts_probe.
# This may be replaced when dependencies are built.
