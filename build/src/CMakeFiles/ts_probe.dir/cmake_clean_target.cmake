file(REMOVE_RECURSE
  "libts_probe.a"
)
