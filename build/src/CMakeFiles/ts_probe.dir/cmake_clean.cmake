file(REMOVE_RECURSE
  "CMakeFiles/ts_probe.dir/probe/gps.cc.o"
  "CMakeFiles/ts_probe.dir/probe/gps.cc.o.d"
  "CMakeFiles/ts_probe.dir/probe/history.cc.o"
  "CMakeFiles/ts_probe.dir/probe/history.cc.o.d"
  "CMakeFiles/ts_probe.dir/probe/hmm_matching.cc.o"
  "CMakeFiles/ts_probe.dir/probe/hmm_matching.cc.o.d"
  "CMakeFiles/ts_probe.dir/probe/map_matching.cc.o"
  "CMakeFiles/ts_probe.dir/probe/map_matching.cc.o.d"
  "CMakeFiles/ts_probe.dir/probe/trips.cc.o"
  "CMakeFiles/ts_probe.dir/probe/trips.cc.o.d"
  "libts_probe.a"
  "libts_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
