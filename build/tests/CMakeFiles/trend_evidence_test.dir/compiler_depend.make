# Empty compiler generated dependencies file for trend_evidence_test.
# This may be replaced when dependencies are built.
