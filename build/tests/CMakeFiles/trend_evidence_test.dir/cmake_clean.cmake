file(REMOVE_RECURSE
  "CMakeFiles/trend_evidence_test.dir/trend_evidence_test.cc.o"
  "CMakeFiles/trend_evidence_test.dir/trend_evidence_test.cc.o.d"
  "trend_evidence_test"
  "trend_evidence_test.pdb"
  "trend_evidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_evidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
