# Empty dependencies file for baseline_global_lsq_test.
# This may be replaced when dependencies are built.
