file(REMOVE_RECURSE
  "CMakeFiles/baseline_global_lsq_test.dir/baseline_global_lsq_test.cc.o"
  "CMakeFiles/baseline_global_lsq_test.dir/baseline_global_lsq_test.cc.o.d"
  "baseline_global_lsq_test"
  "baseline_global_lsq_test.pdb"
  "baseline_global_lsq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_global_lsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
