file(REMOVE_RECURSE
  "CMakeFiles/adaptive_seed_test.dir/adaptive_seed_test.cc.o"
  "CMakeFiles/adaptive_seed_test.dir/adaptive_seed_test.cc.o.d"
  "adaptive_seed_test"
  "adaptive_seed_test.pdb"
  "adaptive_seed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_seed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
