# Empty dependencies file for adaptive_seed_test.
# This may be replaced when dependencies are built.
