# Empty compiler generated dependencies file for hmm_matching_test.
# This may be replaced when dependencies are built.
