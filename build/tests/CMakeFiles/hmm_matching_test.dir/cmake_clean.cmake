file(REMOVE_RECURSE
  "CMakeFiles/hmm_matching_test.dir/hmm_matching_test.cc.o"
  "CMakeFiles/hmm_matching_test.dir/hmm_matching_test.cc.o.d"
  "hmm_matching_test"
  "hmm_matching_test.pdb"
  "hmm_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
