file(REMOVE_RECURSE
  "CMakeFiles/corr_test.dir/corr_test.cc.o"
  "CMakeFiles/corr_test.dir/corr_test.cc.o.d"
  "corr_test"
  "corr_test.pdb"
  "corr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
