# Empty compiler generated dependencies file for corr_test.
# This may be replaced when dependencies are built.
