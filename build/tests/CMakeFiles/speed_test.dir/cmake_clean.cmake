file(REMOVE_RECURSE
  "CMakeFiles/speed_test.dir/speed_test.cc.o"
  "CMakeFiles/speed_test.dir/speed_test.cc.o.d"
  "speed_test"
  "speed_test.pdb"
  "speed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
