# Empty compiler generated dependencies file for speed_test.
# This may be replaced when dependencies are built.
