file(REMOVE_RECURSE
  "CMakeFiles/speed_model_v2_test.dir/speed_model_v2_test.cc.o"
  "CMakeFiles/speed_model_v2_test.dir/speed_model_v2_test.cc.o.d"
  "speed_model_v2_test"
  "speed_model_v2_test.pdb"
  "speed_model_v2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_model_v2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
