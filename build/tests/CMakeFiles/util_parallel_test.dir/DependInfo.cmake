
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_parallel_test.cc" "tests/CMakeFiles/util_parallel_test.dir/util_parallel_test.cc.o" "gcc" "tests/CMakeFiles/util_parallel_test.dir/util_parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_speed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_trend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_seed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_corr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
