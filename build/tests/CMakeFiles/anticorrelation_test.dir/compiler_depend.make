# Empty compiler generated dependencies file for anticorrelation_test.
# This may be replaced when dependencies are built.
