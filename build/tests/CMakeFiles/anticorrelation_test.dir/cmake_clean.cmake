file(REMOVE_RECURSE
  "CMakeFiles/anticorrelation_test.dir/anticorrelation_test.cc.o"
  "CMakeFiles/anticorrelation_test.dir/anticorrelation_test.cc.o.d"
  "anticorrelation_test"
  "anticorrelation_test.pdb"
  "anticorrelation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anticorrelation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
