file(REMOVE_RECURSE
  "../bench/bench_fig_error_tolerance"
  "../bench/bench_fig_error_tolerance.pdb"
  "CMakeFiles/bench_fig_error_tolerance.dir/bench_fig_error_tolerance.cc.o"
  "CMakeFiles/bench_fig_error_tolerance.dir/bench_fig_error_tolerance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_error_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
