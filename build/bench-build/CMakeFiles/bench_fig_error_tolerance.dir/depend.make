# Empty dependencies file for bench_fig_error_tolerance.
# This may be replaced when dependencies are built.
