# Empty compiler generated dependencies file for bench_table2_approx_ratio.
# This may be replaced when dependencies are built.
