file(REMOVE_RECURSE
  "../bench/bench_table2_approx_ratio"
  "../bench/bench_table2_approx_ratio.pdb"
  "CMakeFiles/bench_table2_approx_ratio.dir/bench_table2_approx_ratio.cc.o"
  "CMakeFiles/bench_table2_approx_ratio.dir/bench_table2_approx_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_approx_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
