# Empty compiler generated dependencies file for bench_fig_accuracy_vs_k.
# This may be replaced when dependencies are built.
