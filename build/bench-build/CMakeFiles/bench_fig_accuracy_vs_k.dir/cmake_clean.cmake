file(REMOVE_RECURSE
  "../bench/bench_fig_accuracy_vs_k"
  "../bench/bench_fig_accuracy_vs_k.pdb"
  "CMakeFiles/bench_fig_accuracy_vs_k.dir/bench_fig_accuracy_vs_k.cc.o"
  "CMakeFiles/bench_fig_accuracy_vs_k.dir/bench_fig_accuracy_vs_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_accuracy_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
