file(REMOVE_RECURSE
  "../bench/bench_offline_cost"
  "../bench/bench_offline_cost.pdb"
  "CMakeFiles/bench_offline_cost.dir/bench_offline_cost.cc.o"
  "CMakeFiles/bench_offline_cost.dir/bench_offline_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
