# Empty dependencies file for bench_offline_cost.
# This may be replaced when dependencies are built.
