# Empty dependencies file for bench_fig_trend_accuracy.
# This may be replaced when dependencies are built.
