file(REMOVE_RECURSE
  "../bench/bench_fig_time_of_day"
  "../bench/bench_fig_time_of_day.pdb"
  "CMakeFiles/bench_fig_time_of_day.dir/bench_fig_time_of_day.cc.o"
  "CMakeFiles/bench_fig_time_of_day.dir/bench_fig_time_of_day.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_time_of_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
