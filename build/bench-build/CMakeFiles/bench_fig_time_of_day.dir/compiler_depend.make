# Empty compiler generated dependencies file for bench_fig_time_of_day.
# This may be replaced when dependencies are built.
