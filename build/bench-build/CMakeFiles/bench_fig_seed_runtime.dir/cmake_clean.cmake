file(REMOVE_RECURSE
  "../bench/bench_fig_seed_runtime"
  "../bench/bench_fig_seed_runtime.pdb"
  "CMakeFiles/bench_fig_seed_runtime.dir/bench_fig_seed_runtime.cc.o"
  "CMakeFiles/bench_fig_seed_runtime.dir/bench_fig_seed_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_seed_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
