# Empty dependencies file for bench_fig_seed_runtime.
# This may be replaced when dependencies are built.
