# Empty compiler generated dependencies file for bench_fig_incident_detection.
# This may be replaced when dependencies are built.
