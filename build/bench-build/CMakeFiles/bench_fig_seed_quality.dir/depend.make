# Empty dependencies file for bench_fig_seed_quality.
# This may be replaced when dependencies are built.
