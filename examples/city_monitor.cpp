// City monitor: a real-time traffic dashboard over a simulated day, built
// from the library's production pieces:
//
//   WorkerPool + CrowdCampaign   — crowdsourced speed reports for the K
//                                  seed roads (3 workers each, median
//                                  aggregation, online quality control)
//   TrafficSpeedEstimator        — the two-step trend+speed inference
//   ServingSession               — hardened ingestion: validation, dedup,
//                                  carry-forward, hysteresis alerts
//                                  (docs/serving.md)
//   IngestFrontEnd               — the lock-free MPSC write path: crowd
//                                  answers are Offer()ed one by one (as a
//                                  fleet of reporter threads would) and
//                                  Flush() hands the slot batch to the
//                                  session at the slot boundary
//   MetricsRegistry/TraceRecorder — every stage records into one registry
//                                  (docs/observability.md)
//
// At the end the alerts are scored against the simulator's ground truth and
// the registry is dumped in Prometheus text format — exactly what a real
// deployment would serve from its /metrics endpoint.
//
// Build & run:  ./build/examples/city_monitor

#include <cstdio>
#include <set>

#include "core/ingest.h"
#include "core/serving.h"
#include "crowd/campaign.h"
#include "io/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace trendspeed;

int main() {
  // A congested ring-radial city with 14 days of probe history.
  DatasetOptions opts;
  opts.history_days = 14;
  opts.test_days = 1;
  opts.use_probe_fleet = true;
  opts.fleet.trips_per_slot = 15;
  auto dataset = BuildCityA(opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // One registry + trace recorder observe the whole run: training, seed
  // selection, every online estimate, and the serving layer.
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace(256);
  PipelineConfig config;
  config.observability.metrics = &registry;
  config.observability.trace = &trace;
  auto estimator =
      TrafficSpeedEstimator::Train(&dataset->net, &dataset->history, config);
  if (!estimator.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 estimator.status().ToString().c_str());
    return 1;
  }
  const size_t kBudget = 40;
  auto seeds = estimator->SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  if (!seeds.ok()) return 1;

  // Crowd: 500 workers of mixed quality; 3 asked per seed road per slot.
  WorkerPool::Options pool_opts;
  pool_opts.num_workers = 500;
  pool_opts.bias_spread_kmh = 2.5;
  pool_opts.noise_max_kmh = 7.0;
  pool_opts.max_outlier_prob = 0.06;
  WorkerPool pool(pool_opts);
  CampaignOptions campaign_opts;
  campaign_opts.workers_per_seed = 3;
  campaign_opts.aggregation = AggregationMethod::kMedian;
  CrowdCampaign campaign(&pool, campaign_opts);

  ServingOptions serving_opts;
  serving_opts.monitor.alert_deviation = -0.35;
  // Crowd answers are median-aggregated but still untrusted: drop (and
  // count) any malformed report instead of failing the slot.
  serving_opts.validation = ValidationPolicy::kFilter;
  serving_opts.observability.metrics = &registry;
  serving_opts.observability.trace = &trace;
  // Observations reach the session through the bounded lock-free queue, the
  // same write path a many-reporter deployment uses (core/ingest.h).
  serving_opts.ingest_queue.capacity = 1024;
  auto session = ServingSession::Create(&*estimator, serving_opts);
  if (!session.ok()) {
    std::fprintf(stderr, "serving: %s\n", session.status().ToString().c_str());
    return 1;
  }
  auto frontend = IngestFrontEnd::Create(&*session);
  if (!frontend.ok()) {
    std::fprintf(stderr, "ingest: %s\n", frontend.status().ToString().c_str());
    return 1;
  }

  std::printf("monitoring %zu roads | %zu seeds | %zu crowd workers\n\n",
              dataset->net.num_roads(), seeds->seeds.size(), pool.size());
  std::printf("%-7s%-10s%-12s%-10s%-24s\n", "time", "avg-kmh", "congested",
              "alerts", "events");

  SlotClock clock{dataset->truth.slots_per_day};
  std::set<RoadId> flagged_any;
  std::set<RoadId> truly_congested;
  uint64_t start = dataset->first_test_slot();
  for (uint64_t slot = start; slot < dataset->num_slots(); slot += 2) {
    auto answers = campaign.Collect(seeds->seeds, dataset->truth.speeds[slot]);
    if (!answers.ok()) return 1;
    // Reporters push one observation at a time; a full queue is drained
    // inline (a deployment's consumer thread does this continuously).
    for (const SeedSpeed& obs : *answers) {
      while (!(*frontend)->Offer(slot, obs)) (*frontend)->Drain();
    }
    auto report = (*frontend)->Flush();
    if (!report.ok()) {
      // Graceful degradation: the session stays usable; skip this slot.
      std::fprintf(stderr, "slot %llu not served: %s\n",
                   static_cast<unsigned long long>(slot),
                   report.status().ToString().c_str());
      continue;
    }
    for (const TrafficAlert& a : report->monitor.new_alerts) {
      if (a.raised) flagged_any.insert(a.road);
    }
    // Ground-truth congestion for final scoring.
    for (RoadId r = 0; r < dataset->net.num_roads(); ++r) {
      double hist = dataset->history.HistoricalMeanOr(
          r, slot, dataset->net.road(r).free_flow_kmh);
      if (dataset->truth.at(slot, r) < hist * 0.65) truly_congested.insert(r);
    }
    // Hourly dashboard line.
    if (clock.SlotOfDay(slot) % 6 == 0) {
      std::string events;
      for (const TrafficAlert& a : report->monitor.new_alerts) {
        events += (a.raised ? "+" : "-") + std::to_string(a.road) + " ";
        if (events.size() > 20) break;
      }
      std::printf("%02d:00  %-10.1f%-12zu%-10zu%-24s\n",
                  static_cast<int>(clock.HourOfDay(slot)),
                  report->monitor.mean_speed_kmh,
                  report->monitor.congested_roads,
                  session->ActiveAlerts().size(), events.c_str());
    }
  }

  size_t hits = 0;
  for (RoadId r : flagged_any) {
    if (truly_congested.count(r)) ++hits;
  }
  const ServingStats& stats = session->stats();
  std::printf("\nslots served: %llu fresh, %llu carried forward, "
              "%llu observations filtered, %llu deduplicated\n",
              static_cast<unsigned long long>(stats.slots_estimated),
              static_cast<unsigned long long>(stats.slots_carried_forward),
              static_cast<unsigned long long>(stats.observations_filtered),
              static_cast<unsigned long long>(stats.observations_deduplicated));
  std::printf("crowd answers purchased: %llu\n",
              static_cast<unsigned long long>(campaign.answers_spent()));
  IngestStats ingest = (*frontend)->stats();
  std::printf("ingest queue: %llu observations enqueued, %llu slot batches "
              "flushed, %llu backpressure drops, %llu stragglers\n",
              static_cast<unsigned long long>(ingest.enqueued),
              static_cast<unsigned long long>(ingest.flushed_slots),
              static_cast<unsigned long long>(ingest.rejected_backpressure),
              static_cast<unsigned long long>(ingest.stragglers));
  std::printf("roads that truly dropped >35%% below norm today: %zu\n",
              truly_congested.size());
  std::printf("monitor flagged %zu roads, %zu correctly"
              " (precision %.0f%%, recall %.0f%%)\n",
              flagged_any.size(), hits,
              flagged_any.empty() ? 0.0 : 100.0 * hits / flagged_any.size(),
              truly_congested.empty()
                  ? 0.0
                  : 100.0 * hits / truly_congested.size());

  // Scrape-ready view of the same run. A deployment serves this string from
  // an HTTP /metrics endpoint; trace.ToJson() holds the last spans.
  std::printf("\n--- /metrics (Prometheus text format) ---\n%s",
              registry.ToPrometheus().c_str());
  std::printf("--- trace: %llu spans recorded, last %zu retained ---\n",
              static_cast<unsigned long long>(trace.total_recorded()),
              trace.Events().size());
  return 0;
}
