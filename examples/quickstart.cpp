// Quickstart: the five-minute tour of the trendspeed public API.
//
//   1. Get a road network and historical speed data (here: simulated).
//   2. Train a TrafficSpeedEstimator offline.
//   3. Pick K seed roads to crowdsource.
//   4. Each time slot: feed the K observed speeds, get all-road estimates.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "io/dataset.h"
#include "util/stats.h"

using namespace trendspeed;

int main() {
  // 1. A small simulated city with 10 days of probe history + 1 test day.
  //    (With real data you would load a network and speed records instead —
  //    see examples/data_pipeline.cpp.)
  auto dataset = BuildTinyCity();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %zu roads, %zu intersections\n",
              dataset->net.num_roads(), dataset->net.num_nodes());
  std::printf("history: %llu probe records, %.1f%% (road,slot) coverage\n",
              static_cast<unsigned long long>(
                  dataset->history.TotalObservations()),
              100.0 * dataset->history.CoverageFraction());

  // 2. Offline training: correlation mining + hierarchical speed model +
  //    influence precomputation.
  PipelineConfig config;  // defaults are sensible; see core/config.h
  auto estimator =
      TrafficSpeedEstimator::Train(&dataset->net, &dataset->history, config);
  if (!estimator.ok()) {
    std::fprintf(stderr, "train: %s\n", estimator.status().ToString().c_str());
    return 1;
  }
  std::printf("trained: %zu correlation edges, %zu road-level models\n",
              estimator->correlation_graph().num_edges(),
              estimator->speed_model().num_road_models());

  // 3. Choose a crowdsourcing budget and select the seed roads.
  const size_t kBudget = 8;
  auto seeds = estimator->SelectSeeds(kBudget, SeedStrategy::kLazyGreedy);
  if (!seeds.ok()) {
    std::fprintf(stderr, "seeds: %s\n", seeds.status().ToString().c_str());
    return 1;
  }
  std::printf("selected %zu seeds (objective %.2f): ", seeds->seeds.size(),
              seeds->objective);
  for (RoadId r : seeds->seeds) std::printf("%u ", r);
  std::printf("\n");

  // 4. Online estimation over the held-out test day, scored vs ground truth.
  Evaluator eval(&*dataset);
  Rng rng(1);
  std::vector<double> predicted, truth;
  for (uint64_t slot : eval.TestSlots(/*stride=*/6)) {
    // "Crowdsourced" observations = true speeds + worker noise.
    std::vector<SeedSpeed> obs =
        eval.ObserveSeeds(slot, seeds->seeds, /*noise_kmh=*/1.5, &rng);
    auto out = estimator->Estimate(slot, obs);
    if (!out.ok()) {
      std::fprintf(stderr, "estimate: %s\n", out.status().ToString().c_str());
      return 1;
    }
    for (RoadId r = 0; r < dataset->net.num_roads(); ++r) {
      predicted.push_back(out->speeds.speed_kmh[r]);
      truth.push_back(dataset->truth.at(slot, r));
    }
  }
  SpeedMetrics metrics = ComputeSpeedMetrics(predicted, truth);
  std::printf("test-day accuracy (all roads): %s\n",
              metrics.ToString().c_str());
  std::printf("done.\n");
  return 0;
}
