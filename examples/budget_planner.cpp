// Budget planner: how many crowdsourced roads does a target accuracy cost?
//
// A deployment question the paper's K-sweep answers implicitly: sweep the
// budget, measure accuracy on a validation day, and report the smallest K
// meeting a MAPE target — for the influence-greedy selector and for the
// random-selection strawman (showing how much budget good selection saves).
//
// Build & run:  ./build/examples/budget_planner

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "io/dataset.h"

using namespace trendspeed;

namespace {

constexpr double kTargetMape = 0.12;  // 12%

double MeasureMape(const Dataset& ds, const TrafficSpeedEstimator& est,
                   const std::vector<RoadId>& seeds) {
  Evaluator eval(&ds);
  EvalOptions opts;
  opts.slot_stride = 6;
  MethodAdapter ours{
      "TrendSpeed",
      [&est](uint64_t slot, const std::vector<SeedSpeed>& obs)
          -> Result<std::vector<double>> {
        auto out = est.Estimate(slot, obs);
        if (!out.ok()) return out.status();
        return std::move(out).value().speeds.speed_kmh;
      }};
  auto r = eval.Run(ours, seeds, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "eval: %s\n", r.status().ToString().c_str());
    return 1.0;
  }
  return r->metrics.mape;
}

}  // namespace

int main() {
  DatasetOptions opts;
  opts.history_days = 14;
  opts.test_days = 2;
  opts.use_probe_fleet = true;
  opts.fleet.trips_per_slot = 15;
  auto dataset = BuildCityB(opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto estimator =
      TrafficSpeedEstimator::Train(&dataset->net, &dataset->history, {});
  if (!estimator.ok()) return 1;

  std::printf("planning crowdsourcing budget for %zu roads"
              " (target MAPE <= %.0f%%)\n\n",
              dataset->net.num_roads(), kTargetMape * 100.0);
  std::printf("%-8s%-18s%-18s\n", "K", "greedy MAPE", "random MAPE");

  size_t greedy_k = 0, random_k = 0;
  for (size_t k : {5u, 10u, 20u, 40u, 80u, 160u}) {
    if (k >= dataset->net.num_roads()) break;
    auto greedy = estimator->SelectSeeds(k, SeedStrategy::kLazyGreedy);
    auto random = estimator->SelectSeeds(k, SeedStrategy::kRandom, 42);
    if (!greedy.ok() || !random.ok()) return 1;
    double gm = MeasureMape(*dataset, *estimator, greedy->seeds);
    double rm = MeasureMape(*dataset, *estimator, random->seeds);
    std::printf("%-8zu%-18.1f%-18.1f\n", k, gm * 100.0, rm * 100.0);
    if (greedy_k == 0 && gm <= kTargetMape) greedy_k = k;
    if (random_k == 0 && rm <= kTargetMape) random_k = k;
  }

  std::printf("\n");
  if (greedy_k > 0) {
    std::printf("recommendation: crowdsource K = %zu roads"
                " (influence-greedy selection)\n",
                greedy_k);
    if (random_k > greedy_k) {
      std::printf("random selection would need K = %zu for the same target"
                  " — greedy saves %.0f%% of the budget\n",
                  random_k, 100.0 * (1.0 - static_cast<double>(greedy_k) /
                                               static_cast<double>(random_k)));
    } else if (random_k == 0) {
      std::printf("random selection never reached the target in this sweep\n");
    }
  } else {
    std::printf("target not reached within the sweep; raise the budget or"
                " relax the target\n");
  }
  return 0;
}
