// Navigator: does better speed estimation buy better routes?
//
// For a fixed origin/destination across a rush-hour afternoon, three
// navigators pick routes each slot:
//   static    — assumes free-flow speeds (no live data),
//   estimated — uses the K-seed TrendSpeed estimates,
//   oracle    — sees the true speeds (upper bound).
// Every chosen route is then scored by its ACTUAL travel time under the
// true speeds. The estimated navigator should recover most of the oracle's
// advantage over the static one.
//
// The estimated navigator consumes speeds the way a real routing tier
// would: observations go into a ServingSession, and the router reads the
// served field back through the read-side product layer — a CityProducts
// stack (docs/products.md) polling the session's seqlock SpeedSnapshot and
// answering fastest-route queries through the version-invalidated ETA
// cache. Every answer carries the snapshot's staleness stamp, so an aged
// estimate can never be served as a fresh route (docs/serving.md).
//
// Build & run:  ./build/examples/navigator

#include <cstdio>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "core/routing.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "io/dataset.h"
#include "product/products.h"

using namespace trendspeed;

int main() {
  DatasetOptions opts;
  opts.history_days = 14;
  opts.test_days = 1;
  opts.use_probe_fleet = true;
  opts.fleet.trips_per_slot = 15;
  auto dataset = BuildCityA(opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto estimator =
      TrafficSpeedEstimator::Train(&dataset->net, &dataset->history, {});
  if (!estimator.ok()) return 1;
  auto seeds = estimator->SelectSeeds(40, SeedStrategy::kLazyGreedy);
  if (!seeds.ok()) return 1;

  // Serve estimates through the hardened session and publish each served
  // slot as a snapshot; the routing loop below reads only through the
  // product layer built on that snapshot path.
  ServingOptions serving_opts;
  serving_opts.publish_snapshots = true;
  serving_opts.products.enabled = true;
  auto session = ServingSession::Create(&*estimator, serving_opts);
  if (!session.ok()) {
    std::fprintf(stderr, "serving: %s\n", session.status().ToString().c_str());
    return 1;
  }

  const RoadNetwork& net = dataset->net;
  auto products =
      CityProducts::ForSession(net, *session, dataset->truth.slots_per_day);
  if (!products.ok()) {
    std::fprintf(stderr, "products: %s\n",
                 products.status().ToString().c_str());
    return 1;
  }
  // A panel of random cross-town trips; per-trip routing noise washes out
  // and the systematic value of live information remains.
  Rng od_rng(11);
  std::vector<std::pair<NodeId, NodeId>> trips_od;
  while (trips_od.size() < 30) {
    NodeId a = static_cast<NodeId>(od_rng.NextIndex(net.num_nodes()));
    NodeId b = static_cast<NodeId>(od_rng.NextIndex(net.num_nodes()));
    if (a != b) trips_od.emplace_back(a, b);
  }

  Evaluator eval(&*dataset);
  SlotClock clock{dataset->truth.slots_per_day};
  Rng rng(5);
  double total_static = 0.0, total_est = 0.0, total_oracle = 0.0;
  size_t trips = 0, reroutes = 0;
  size_t bad_static = 0, bad_est = 0;  // >10% slower than the oracle route
  size_t stale_served = 0;             // ETAs answered off a stale snapshot

  for (uint64_t slot : eval.TestSlots(/*stride=*/6)) {
    double hour = clock.HourOfDay(slot);
    if (hour < 15.0 || hour >= 20.0) continue;  // PM peak window
    const std::vector<double>& truth = dataset->truth.speeds[slot];
    auto obs = eval.ObserveSeeds(slot, seeds->seeds, 1.5, &rng);
    if (!session->Ingest(slot, obs).ok()) return 1;
    // The navigator sees only the published snapshot — the same consistent
    // (slot, speeds) view any concurrent reader thread would get — folded
    // into the product layer's time-of-day profile as it goes.
    if (!products->Poll() || products->last_snapshot().slot != slot) return 1;
    // The "no live data" navigator still knows the time-of-day norm: it
    // routes on historical means, the strongest static baseline.
    std::vector<double> hist(net.num_roads());
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      hist[r] = dataset->history.HistoricalMeanOr(r, slot,
                                                  net.road(r).free_flow_kmh);
    }
    for (auto [from, to] : trips_od) {
      auto static_route = FastestRoute(net, hist, from, to);
      // The live navigator asks the ETA cache: bitwise the same route as an
      // uncached FastestRoute over the snapshot, plus the staleness stamp
      // and provenance a serving tier needs (and cache hits for repeats
      // within a slot).
      auto est_eta = products->Eta(from, to);
      auto oracle_route = FastestRoute(net, truth, from, to);
      if (!static_route.ok() || !est_eta.ok() || !oracle_route.ok()) {
        continue;  // disconnected pair
      }
      if (est_eta->route.stale) ++stale_served;
      // All three routes scored under TRUE conditions.
      auto t_static = PathTravelTime(net, truth, static_route->roads);
      auto t_est = PathTravelTime(net, truth, est_eta->route.roads);
      auto t_oracle = PathTravelTime(net, truth, oracle_route->roads);
      if (!t_static.ok() || !t_est.ok() || !t_oracle.ok()) continue;
      total_static += *t_static;
      total_est += *t_est;
      total_oracle += *t_oracle;
      ++trips;
      if (est_eta->route.roads != static_route->roads) ++reroutes;
      if (*t_static > 1.10 * *t_oracle) ++bad_static;
      if (*t_est > 1.10 * *t_oracle) ++bad_est;
    }
  }
  if (trips == 0) {
    std::fprintf(stderr, "no trips evaluated\n");
    return 1;
  }
  double saved = total_static - total_est;
  double headroom = total_static - total_oracle;
  std::printf("across %zu PM-peak departures (%zu rerouted by live data):\n",
              trips, reroutes);
  std::printf("  historical-mean navigator : %.1f min total, %zu bad routes"
              " (>10%% over oracle)\n",
              total_static / 60.0, bad_static);
  std::printf("  TrendSpeed (K=40)         : %.1f min total, %zu bad routes"
              " — saves %.1f min\n",
              total_est / 60.0, bad_est, saved / 60.0);
  std::printf("  oracle                    : %.1f min total\n",
              total_oracle / 60.0);
  if (headroom > 1e-9) {
    std::printf("  -> live estimation recovers %.0f%% of the oracle's"
                " possible savings\n",
                100.0 * saved / headroom);
  } else {
    std::printf("  -> historical routing was already optimal today\n");
  }
  const RouteEtaCache::Stats& cache = products->eta_cache().stats();
  std::printf("  ETA cache: %llu hits / %llu misses, %llu invalidations;"
              " %zu stale-flagged answers\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.invalidations),
              stale_served);
  return 0;
}
