// Offline/online deployment split.
//
// A production deployment trains the model once in a batch job, writes the
// model file, and ships it to the online estimation service, which attaches
// it to the (lightweight) network + history handles. This example performs
// the full round trip in one process and verifies the shipped model behaves
// identically — then runs a time-adaptive seed plan on top of it.
//
// Build & run:  ./build/examples/offline_online [model-path]

#include <cstdio>
#include <string>

#include "core/evaluator.h"
#include "core/model_io.h"
#include "io/dataset.h"
#include "seed/adaptive.h"
#include "util/timer.h"

using namespace trendspeed;

int main(int argc, char** argv) {
  std::string path =
      argc > 1 ? argv[1] : "/tmp/trendspeed_cityb_model.bin";

  // ---- Offline batch job -------------------------------------------------
  DatasetOptions opts;
  opts.history_days = 14;
  opts.test_days = 1;
  opts.use_probe_fleet = true;
  opts.fleet.trips_per_slot = 15;
  auto dataset = BuildCityB(opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  auto trained =
      TrafficSpeedEstimator::Train(&dataset->net, &dataset->history, {});
  if (!trained.ok()) return 1;
  double train_s = timer.ElapsedSeconds();
  Status saved = SaveTrainedModel(*trained, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("offline: trained in %.2fs, model written to %s\n", train_s,
              path.c_str());

  // ---- Online service ----------------------------------------------------
  timer.Restart();
  auto estimator = LoadTrainedModel(&dataset->net, &dataset->history, path);
  if (!estimator.ok()) {
    std::fprintf(stderr, "load: %s\n", estimator.status().ToString().c_str());
    return 1;
  }
  std::printf("online: model attached in %.1fms (%zu correlation edges, "
              "%zu road models)\n",
              timer.ElapsedMillis(), estimator->correlation_graph().num_edges(),
              estimator->speed_model().num_road_models());

  // Time-adaptive seed plan: different seeds for different day periods.
  AdaptivePlanOptions aopts;
  auto plan = AdaptiveSeedPlan::Build(estimator->correlation_graph(),
                                      dataset->history, 24, aopts);
  if (!plan.ok()) return 1;
  std::printf("adaptive plan: %zu periods, overlap(am-rush, night) = %.0f%%\n",
              plan->num_periods(),
              100.0 * plan->OverlapFraction(0, plan->num_periods() - 1));

  // One day of online estimation with the shipped model.
  Rng rng(3);
  Evaluator eval(&*dataset);
  std::vector<double> predicted, truth;
  timer.Restart();
  size_t slots = 0;
  for (uint64_t slot : eval.TestSlots(/*stride=*/3)) {
    const std::vector<RoadId>& seeds = plan->SeedsFor(slot);
    auto obs = eval.ObserveSeeds(slot, seeds, 1.5, &rng);
    auto out = estimator->Estimate(slot, obs);
    if (!out.ok()) return 1;
    ++slots;
    for (RoadId r = 0; r < dataset->net.num_roads(); ++r) {
      predicted.push_back(out->speeds.speed_kmh[r]);
      truth.push_back(dataset->truth.at(slot, r));
    }
  }
  double ms_per_slot = timer.ElapsedMillis() / static_cast<double>(slots);
  SpeedMetrics metrics = ComputeSpeedMetrics(predicted, truth);
  std::printf("online day: %zu slots at %.2f ms/slot — %s\n", slots,
              ms_per_slot, metrics.ToString().c_str());
  std::printf("round trip OK\n");
  return 0;
}
