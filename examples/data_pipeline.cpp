// Data pipeline: how to feed your own data into the library.
//
// The interchange format is plain CSV: a node table + road table for the
// map, and (road, slot, speed) records for historical observations. This
// example writes a dataset out, reads it back as an independent deployment
// would, trains from the files, and verifies the round trip end to end.
// It also demonstrates the raw GPS path: noisy fixes -> map matching ->
// speed records.
//
// Build & run:  ./build/examples/data_pipeline [output-dir]

#include <cstdio>
#include <string>

#include "core/estimator.h"
#include "io/dataset.h"
#include "io/serialize.h"
#include "probe/map_matching.h"

using namespace trendspeed;

namespace {

Status RunPipeline(const std::string& dir) {
  // --- Producer side: export a simulated city as CSV. -------------------
  auto dataset = BuildTinyCity();
  TS_RETURN_NOT_OK(dataset.status());
  std::printf("exporting %s to %s/ ...\n", dataset->name.c_str(),
              dir.c_str());
  TS_RETURN_NOT_OK(
      WriteCsvFile(dir + "/nodes.csv", NetworkNodesToCsv(dataset->net)));
  TS_RETURN_NOT_OK(
      WriteCsvFile(dir + "/roads.csv", NetworkRoadsToCsv(dataset->net)));
  std::vector<RawRecord> records;
  for (RoadId r = 0; r < dataset->net.num_roads(); ++r) {
    for (uint64_t s = 0; s < dataset->history.num_slots(); ++s) {
      if (dataset->history.HasObservation(r, s)) {
        records.push_back({r, s, dataset->history.Observation(r, s)});
      }
    }
  }
  TS_RETURN_NOT_OK(WriteCsvFile(dir + "/records.csv", RecordsToCsv(records)));
  std::printf("wrote %zu speed records\n", records.size());

  // --- Consumer side: load everything back from disk. -------------------
  TS_ASSIGN_OR_RETURN(CsvTable nodes, ReadCsvFile(dir + "/nodes.csv"));
  TS_ASSIGN_OR_RETURN(CsvTable roads, ReadCsvFile(dir + "/roads.csv"));
  TS_ASSIGN_OR_RETURN(RoadNetwork net, NetworkFromCsv(nodes, roads));
  TS_ASSIGN_OR_RETURN(CsvTable rec_csv, ReadCsvFile(dir + "/records.csv"));
  TS_ASSIGN_OR_RETURN(std::vector<RawRecord> loaded, RecordsFromCsv(rec_csv));
  TS_ASSIGN_OR_RETURN(
      HistoricalDb db,
      HistoryFromRecords(loaded, net.num_roads(),
                         dataset->history.num_slots(), 144));
  std::printf("reloaded network (%zu roads) and %zu records\n",
              net.num_roads(), loaded.size());

  // Train from the file-based copies.
  TS_ASSIGN_OR_RETURN(TrafficSpeedEstimator est,
                      TrafficSpeedEstimator::Train(&net, &db, {}));
  TS_ASSIGN_OR_RETURN(SeedSelectionResult seeds,
                      est.SelectSeeds(6, SeedStrategy::kLazyGreedy));
  std::printf("trained from CSV: %zu correlation edges, seeds:",
              est.correlation_graph().num_edges());
  for (RoadId r : seeds.seeds) std::printf(" %u", r);
  std::printf("\n");

  // --- Bonus: raw GPS ingestion. ----------------------------------------
  // If your data is raw GPS fixes rather than per-road speeds, run them
  // through the map matcher first:
  SegmentIndex index(&net);
  std::vector<GpsPoint> fixes;
  Node mid = net.Midpoint(0);
  for (int i = 0; i < 4; ++i) {
    GpsPoint p;
    const Road& r0 = net.road(0);
    double frac = 0.1 + 0.2 * i;
    p.x = net.node(r0.from).x +
          frac * (net.node(r0.to).x - net.node(r0.from).x) + 3.0;
    p.y = net.node(r0.from).y +
          frac * (net.node(r0.to).y - net.node(r0.from).y) - 2.0;
    p.t_seconds = 12.0 * i;
    fixes.push_back(p);
  }
  (void)mid;
  std::vector<RoadId> matched = MatchTrace(index, fixes);
  std::vector<SpeedObservation> speeds = ExtractSpeeds(fixes, matched);
  std::printf("map-matched a 4-fix trace: %zu speed observation(s)",
              speeds.size());
  if (!speeds.empty()) {
    std::printf(" — road %u at %.1f km/h", speeds[0].road,
                speeds[0].speed_kmh);
  }
  std::printf("\npipeline round trip OK\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/trendspeed_example";
  std::string mkdir = "mkdir -p " + dir;
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  Status s = RunPipeline(dir);
  if (!s.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
