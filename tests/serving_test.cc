#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/serving.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  /// Truthful observations for the shared seed set at `slot`.
  std::vector<SeedSpeed> CleanObs(uint64_t slot, double factor = 1.0) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r) * factor)});
    }
    return out;
  }

  ServingSession Session(const ServingOptions& opts = {}) {
    auto session = ServingSession::Create(estimator_, opts);
    TS_CHECK(session.ok()) << session.status().ToString();
    return std::move(session).value();
  }

  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* ServingTest::estimator_ = nullptr;
std::vector<RoadId>* ServingTest::seeds_ = nullptr;

TEST_F(ServingTest, CreateValidatesArguments) {
  EXPECT_FALSE(ServingSession::Create(nullptr).ok());
  ServingOptions opts;
  opts.monitor.ewma_alpha = 0.0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts = ServingOptions{};
  opts.monitor.congested_deviation = 0.0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts = ServingOptions{};
  opts.monitor.alert_deviation = opts.monitor.clear_deviation;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts = ServingOptions{};
  opts.monitor.alert_after_slots = 0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts = ServingOptions{};
  opts.max_speed_kmh = 0.0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts.max_speed_kmh = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
}

TEST_F(ServingTest, ServesCleanSlots) {
  ServingSession session = Session();
  uint64_t start = ds().first_test_slot();
  for (uint64_t slot = start; slot < start + 3; ++slot) {
    auto report = session.Ingest(slot, CleanObs(slot));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->slot, slot);
    EXPECT_FALSE(report->stale);
    EXPECT_FALSE(report->duplicate);
    EXPECT_EQ(report->observations_used, seeds_->size());
    EXPECT_EQ(report->observations_dropped, 0u);
    EXPECT_GT(report->monitor.mean_speed_kmh, 0.0);
  }
  EXPECT_EQ(session.stats().slots_estimated, 3u);
  EXPECT_EQ(session.stats().rejected_batches, 0u);
}

TEST_F(ServingTest, StrictValidationRejectsMalformedBatches) {
  ServingSession session = Session();
  uint64_t slot = ds().first_test_slot();

  auto bad = CleanObs(slot);
  bad[0].speed_kmh = std::numeric_limits<double>::quiet_NaN();
  auto r = session.Ingest(slot, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  bad = CleanObs(slot);
  bad[1].speed_kmh = -5.0;
  EXPECT_FALSE(session.Ingest(slot, bad).ok());

  bad = CleanObs(slot);
  bad[2].speed_kmh = 1.0e6;  // > max_speed_kmh
  EXPECT_FALSE(session.Ingest(slot, bad).ok());

  bad = CleanObs(slot);
  bad[0].road = static_cast<RoadId>(ds().net.num_roads());
  EXPECT_FALSE(session.Ingest(slot, bad).ok());

  EXPECT_EQ(session.stats().rejected_batches, 4u);
  // The slot was never consumed: a corrected batch is still accepted.
  auto ok = session.Ingest(slot, CleanObs(slot));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok->stale);
}

TEST_F(ServingTest, FilterValidationDropsAndCounts) {
  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  ServingSession session = Session(opts);
  uint64_t slot = ds().first_test_slot();

  auto obs = CleanObs(slot);
  obs[0].speed_kmh = std::numeric_limits<double>::quiet_NaN();
  obs[1].speed_kmh = -3.0;
  auto report = session.Ingest(slot, obs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->observations_used, obs.size() - 2);
  EXPECT_EQ(report->observations_dropped, 2u);
  EXPECT_EQ(session.stats().observations_filtered, 2u);
  EXPECT_EQ(session.stats().observations_deduplicated, 0u);
}

// Regression: filtered and deduplicated observations used to share one
// conflated `observations_dropped` counter, making data-quality alerting
// impossible. Each kind must land in its own ServingStats field.
TEST_F(ServingTest, FilteredAndDeduplicatedCountedSeparately) {
  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  opts.dedup = DedupPolicy::kMean;
  ServingSession session = Session(opts);
  uint64_t slot = ds().first_test_slot();

  auto obs = CleanObs(slot);
  obs.push_back({obs[0].road, obs[0].speed_kmh});  // duplicate road
  obs.push_back({obs[1].road, -3.0});              // malformed -> filtered
  auto report = session.Ingest(slot, obs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(session.stats().observations_filtered, 1u);
  EXPECT_EQ(session.stats().observations_deduplicated, 1u);
  // The per-slot report still shows the combined removals.
  EXPECT_EQ(report->observations_dropped, 2u);
}

TEST_F(ServingTest, DedupPoliciesResolveDuplicateRoads) {
  uint64_t slot = ds().first_test_slot();
  RoadId road = (*seeds_)[0];

  // Reference sessions fed a single observation of 30, 50, and 40 km/h.
  auto single = [&](double speed) {
    ServingSession s = Session();
    auto r = s.Ingest(slot, {{road, speed}});
    TS_CHECK(r.ok()) << r.status().ToString();
    return r->monitor.estimate.speeds.speed_kmh;
  };
  std::vector<double> ref_first = single(30.0);
  std::vector<double> ref_last = single(50.0);
  std::vector<double> ref_mean = single(40.0);

  auto dup = [&](DedupPolicy policy) {
    ServingOptions opts;
    opts.dedup = policy;
    ServingSession s = Session(opts);
    return s.Ingest(slot, {{road, 30.0}, {road, 50.0}});
  };

  auto mean = dup(DedupPolicy::kMean);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean->observations_used, 1u);
  EXPECT_EQ(mean->observations_dropped, 1u);
  EXPECT_EQ(mean->monitor.estimate.speeds.speed_kmh, ref_mean);
  {
    ServingOptions o;
    o.dedup = DedupPolicy::kMean;
    ServingSession s = Session(o);
    auto r = s.Ingest(slot, {{road, 30.0}, {road, 50.0}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(s.stats().observations_deduplicated, 1u);
    EXPECT_EQ(s.stats().observations_filtered, 0u);
  }

  auto first = dup(DedupPolicy::kKeepFirst);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->monitor.estimate.speeds.speed_kmh, ref_first);

  auto last = dup(DedupPolicy::kKeepLast);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->monitor.estimate.speeds.speed_kmh, ref_last);

  auto reject = dup(DedupPolicy::kReject);
  EXPECT_FALSE(reject.ok());
  EXPECT_EQ(reject.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServingTest, DuplicateSlotIsIdempotent) {
  ServingSession session = Session();
  uint64_t slot = ds().first_test_slot();
  auto fresh = session.Ingest(slot, CleanObs(slot));
  ASSERT_TRUE(fresh.ok());

  // Re-delivery — even with different (here: absurd) payload — returns the
  // cached report and mutates nothing.
  auto replay = session.Ingest(slot, CleanObs(slot, 0.1));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->duplicate);
  EXPECT_EQ(replay->monitor.estimate.speeds.speed_kmh,
            fresh->monitor.estimate.speeds.speed_kmh);
  EXPECT_EQ(session.stats().duplicate_slots, 1u);
  EXPECT_EQ(session.stats().slots_estimated, 1u);

  auto next = session.Ingest(slot + 1, CleanObs(slot + 1));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
}

TEST_F(ServingTest, OutOfOrderSlotRejectedGracefully) {
  ServingSession session = Session();
  uint64_t start = ds().first_test_slot();
  ASSERT_TRUE(session.Ingest(start + 3, CleanObs(start + 3)).ok());
  auto late = session.Ingest(start + 1, CleanObs(start + 1));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.stats().out_of_order_slots, 1u);
  // Session keeps serving.
  EXPECT_TRUE(session.Ingest(start + 4, CleanObs(start + 4)).ok());
}

TEST_F(ServingTest, EmptySlotCarriesForwardLastGoodEstimate) {
  ServingSession session = Session();
  uint64_t start = ds().first_test_slot();
  auto fresh = session.Ingest(start, CleanObs(start));
  ASSERT_TRUE(fresh.ok());

  auto stale1 = session.Ingest(start + 1, {});
  ASSERT_TRUE(stale1.ok()) << stale1.status().ToString();
  EXPECT_TRUE(stale1->stale);
  EXPECT_EQ(stale1->stale_slots, 1u);
  EXPECT_EQ(stale1->slot, start + 1);
  EXPECT_TRUE(stale1->monitor.new_alerts.empty());
  EXPECT_EQ(stale1->monitor.estimate.speeds.speed_kmh,
            fresh->monitor.estimate.speeds.speed_kmh);

  auto stale2 = session.Ingest(start + 2, {});
  ASSERT_TRUE(stale2.ok());
  EXPECT_EQ(stale2->stale_slots, 2u);
  EXPECT_EQ(session.stats().slots_carried_forward, 2u);

  // Fresh data ends the staleness streak.
  auto recovered = session.Ingest(start + 3, CleanObs(start + 3));
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->stale);
  EXPECT_EQ(recovered->stale_slots, 0u);
}

TEST_F(ServingTest, NoCarryForwardBeforeFirstEstimate) {
  ServingSession session = Session();
  auto r = session.Ingest(ds().first_test_slot(), {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(session.has_estimate());
}

TEST_F(ServingTest, StalenessLimitStopsCarryForward) {
  ServingOptions opts;
  opts.max_stale_slots = 2;
  ServingSession session = Session(opts);
  uint64_t start = ds().first_test_slot();
  ASSERT_TRUE(session.Ingest(start, CleanObs(start)).ok());
  ASSERT_TRUE(session.Ingest(start + 1, {}).ok());
  ASSERT_TRUE(session.Ingest(start + 2, {}).ok());
  auto over = session.Ingest(start + 3, {});
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kFailedPrecondition);
  // A fresh batch still recovers the session.
  auto recovered = session.Ingest(start + 4, CleanObs(start + 4));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->stale);
}

TEST_F(ServingTest, CarryForwardDisabledWithZeroLimit) {
  ServingOptions opts;
  opts.max_stale_slots = 0;
  ServingSession session = Session(opts);
  uint64_t start = ds().first_test_slot();
  ASSERT_TRUE(session.Ingest(start, CleanObs(start)).ok());
  EXPECT_FALSE(session.Ingest(start + 1, {}).ok());
}

}  // namespace
}  // namespace trendspeed
