#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "probe/gps.h"
#include "probe/history.h"
#include "probe/map_matching.h"
#include "probe/trips.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"
#include "traffic/simulator.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

using testing_util::PathNetwork;
using testing_util::SmallGrid;

TEST(TripGeneratorTest, ProducesRoutableTrips) {
  RoadNetwork net = SmallGrid();
  TripGenerator gen(&net, {});
  for (int i = 0; i < 50; ++i) {
    auto trip = gen.Next();
    ASSERT_TRUE(trip.ok());
    EXPECT_NE(trip->origin, trip->destination);
    ASSERT_FALSE(trip->roads.empty());
    // Path is contiguous and connects the endpoints.
    EXPECT_EQ(net.road(trip->roads.front()).from, trip->origin);
    EXPECT_EQ(net.road(trip->roads.back()).to, trip->destination);
    for (size_t k = 1; k < trip->roads.size(); ++k) {
      EXPECT_EQ(net.road(trip->roads[k - 1]).to,
                net.road(trip->roads[k]).from);
    }
  }
}

TEST(TripGeneratorTest, HotspotBiasSkewsEndpoints) {
  RoadNetwork net = SmallGrid();
  TripGeneratorOptions opts;
  opts.num_hotspots = 2;
  opts.hotspot_bias = 0.9;
  TripGenerator gen(&net, opts);
  ASSERT_EQ(gen.hotspots().size(), 2u);
  std::set<NodeId> hotspots(gen.hotspots().begin(), gen.hotspots().end());
  int hot_endpoints = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    auto trip = gen.Next();
    ASSERT_TRUE(trip.ok());
    total += 2;
    if (hotspots.count(trip->origin)) ++hot_endpoints;
    if (hotspots.count(trip->destination)) ++hot_endpoints;
  }
  // With bias 0.9 toward 2 of 16 nodes, hot endpoints dominate.
  EXPECT_GT(hot_endpoints, total / 2);
}

TEST(GpsTest, EmitsFixesAlongPath) {
  RoadNetwork net = PathNetwork();
  TripPlan trip;
  trip.origin = 0;
  trip.destination = 2;
  trip.roads = {0, 2};  // A->B, B->C
  std::vector<double> speeds(net.num_roads(), 36.0);  // 10 m/s
  GpsOptions opts;
  opts.sample_interval_s = 10.0;
  opts.position_noise_m = 0.0;
  Rng rng(3);
  GpsTrace trace = DriveTrip(net, trip, speeds, opts, 600.0, 1, &rng);
  // 1000 m at 10 m/s = 100 s -> fixes at t=0,10,...,90 (10 fixes).
  ASSERT_EQ(trace.points.size(), 10u);
  EXPECT_DOUBLE_EQ(trace.points[0].x, 0.0);
  EXPECT_NEAR(trace.points[5].x, 500.0, 1e-9);
  EXPECT_EQ(trace.true_roads[0], 0u);
  EXPECT_EQ(trace.true_roads[9], 2u);
  // Noiseless fixes advance by speed * interval.
  for (size_t i = 1; i < trace.points.size(); ++i) {
    EXPECT_NEAR(trace.points[i].x - trace.points[i - 1].x, 100.0, 1e-9);
  }
}

TEST(GpsTest, TruncatesAtMaxDuration) {
  RoadNetwork net = PathNetwork();
  TripPlan trip;
  trip.roads = {0, 2};
  std::vector<double> speeds(net.num_roads(), 36.0);
  GpsOptions opts;
  opts.sample_interval_s = 10.0;
  Rng rng(4);
  GpsTrace trace = DriveTrip(net, trip, speeds, opts, 35.0, 1, &rng);
  for (const GpsPoint& p : trace.points) EXPECT_LE(p.t_seconds, 35.0);
}

TEST(SegmentIndexTest, CandidatesContainTrueRoad) {
  RoadNetwork net = SmallGrid();
  SegmentIndex index(&net, 200.0, 60.0);
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    Node mid = net.Midpoint(r);
    auto cands = index.Candidates(mid.x + 5.0, mid.y + 5.0);
    EXPECT_TRUE(std::find(cands.begin(), cands.end(), r) != cands.end())
        << "road " << r << " missing from its own candidates";
  }
}

TEST(SegmentIndexTest, DistanceToSegment) {
  RoadNetwork net = PathNetwork();
  SegmentIndex index(&net);
  // Road 0 spans (0,0)-(500,0): perpendicular distance.
  EXPECT_NEAR(index.DistanceTo(0, 250.0, 40.0), 40.0, 1e-9);
  // Beyond the endpoint: distance to the endpoint itself.
  EXPECT_NEAR(index.DistanceTo(0, 530.0, 40.0), 50.0, 1e-9);
}

TEST(SegmentIndexTest, OffNetworkPointHasNoCandidates) {
  RoadNetwork net = SmallGrid();
  SegmentIndex index(&net, 200.0, 50.0);
  auto cands = index.Candidates(-5000.0, -5000.0);
  EXPECT_TRUE(cands.empty());
}

TEST(MapMatchingTest, RecoversTrueRoadsOnModerateNoise) {
  RoadNetwork net = SmallGrid();
  TripGenerator gen(&net, {});
  SegmentIndex index(&net);
  std::vector<double> speeds(net.num_roads(), 40.0);
  GpsOptions opts;
  opts.sample_interval_s = 15.0;
  opts.position_noise_m = 10.0;
  Rng rng(6);
  size_t total = 0, correct = 0;
  for (int t = 0; t < 30; ++t) {
    auto trip = gen.Next();
    ASSERT_TRUE(trip.ok());
    GpsTrace trace = DriveTrip(net, *trip, speeds, opts, 600.0, t, &rng);
    auto matched = MatchTrace(index, trace.points);
    for (size_t i = 0; i < matched.size(); ++i) {
      ++total;
      if (matched[i] == trace.true_roads[i]) ++correct;
    }
  }
  ASSERT_GT(total, 100u);
  // Heading-aware matching should recover the majority of fixes, including
  // the direction disambiguation of two-way streets.
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST(ExtractSpeedsTest, ComputesRunSpeeds) {
  std::vector<GpsPoint> pts(4);
  // 3 fixes on road 7 moving 100 m / 10 s, then 1 on road 9.
  for (int i = 0; i < 3; ++i) {
    pts[i].x = 100.0 * i;
    pts[i].t_seconds = 10.0 * i;
  }
  pts[3].x = 400.0;
  pts[3].t_seconds = 30.0;
  std::vector<RoadId> matched = {7, 7, 7, 9};
  auto obs = ExtractSpeeds(pts, matched);
  ASSERT_EQ(obs.size(), 1u);  // road 9 has a single fix -> no speed
  EXPECT_EQ(obs[0].road, 7u);
  EXPECT_NEAR(obs[0].speed_kmh, 36.0, 1e-9);
}

TEST(ExtractSpeedsTest, DiscardsImplausibleAndUnmatched) {
  std::vector<GpsPoint> pts(4);
  for (int i = 0; i < 4; ++i) {
    pts[i].x = 2000.0 * i;  // 2 km per 10 s = 720 km/h
    pts[i].t_seconds = 10.0 * i;
  }
  std::vector<RoadId> matched = {1, 1, kInvalidRoad, kInvalidRoad};
  EXPECT_TRUE(ExtractSpeeds(pts, matched, 130.0).empty());
}

TEST(HistoricalDbTest, BucketMeansAndFallbacks) {
  RoadNetwork net = PathNetwork();
  HistoricalDb::Builder builder(net.num_roads(), 144 * 7, 144);
  // Road 0: 50 km/h every Monday-slot-10 equivalent... use weekday slots.
  for (int day = 0; day < 5; ++day) {
    builder.Add(0, day * 144 + 10, 50.0);
  }
  HistoricalDb db = builder.Finish();
  // Bucket (weekday, slot 10) has 5 samples -> bucket mean.
  EXPECT_NEAR(db.HistoricalMeanOr(0, 10, 99.0), 50.0, 1e-6);
  // Same slot on Saturday (weekend bucket, no data) -> road mean.
  EXPECT_NEAR(db.HistoricalMeanOr(0, 5 * 144 + 10, 99.0), 50.0, 1e-6);
  // Road 1 has nothing -> fallback.
  EXPECT_DOUBLE_EQ(db.HistoricalMeanOr(1, 10, 99.0), 99.0);
  EXPECT_TRUE(db.HasHistory(0));
  EXPECT_FALSE(db.HasHistory(1));
}

TEST(HistoricalDbTest, MultipleObservationsAveraged) {
  HistoricalDb::Builder builder(1, 10, 144);
  builder.Add(0, 3, 40.0);
  builder.Add(0, 3, 60.0);
  HistoricalDb db = builder.Finish();
  ASSERT_TRUE(db.HasObservation(0, 3));
  EXPECT_NEAR(db.Observation(0, 3), 50.0, 1e-6);
  EXPECT_FALSE(db.HasObservation(0, 4));
  EXPECT_EQ(db.TotalObservations(), 1u);
}

TEST(HistoricalDbTest, TrendAndDeviation) {
  RoadNetwork net = PathNetwork();
  HistoricalDb db = testing_util::AlternatingHistory(net, 288, 144, 0.2);
  // Bucket mean at any slot mixes the +swing and -swing days... slots
  // alternate within a day, so bucket (slot parity) is consistent: slot 0
  // always +20%. Deviation of the bucket mean vs itself is ~0.
  double mean0 = db.HistoricalMeanOr(0, 0, 1.0);
  EXPECT_GT(mean0, 0.0);
  EXPECT_EQ(db.TrendOf(0, 0, mean0 + 1.0, 1.0), +1);
  EXPECT_EQ(db.TrendOf(0, 0, mean0 - 1.0, 1.0), -1);
  EXPECT_NEAR(db.DeviationOf(0, 0, mean0 * 1.1), 0.1, 1e-6);
}

TEST(HistoricalDbTest, TrendUpProbabilitySmoothing) {
  HistoricalDb::Builder builder(1, 4, 144);
  HistoricalDb db = builder.Finish();
  // No data: Laplace smoothing gives exactly 0.5.
  EXPECT_DOUBLE_EQ(db.TrendUpProbability(0, 0), 0.5);
}

TEST(HistoricalDbTest, TrendUpProbabilityEmptyBucketZeroPseudo) {
  HistoricalDb::Builder builder(1, 4, 144);
  HistoricalDb db = builder.Finish();
  // Empty bucket and pseudo = 0 used to divide 0/0; the uninformed prior
  // must come back, not NaN.
  double p = db.TrendUpProbability(0, 0, /*pseudo=*/0.0);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_DOUBLE_EQ(p, 0.5);
}

TEST(HistoricalDbTest, SaturatedCellMeanIsUnbiased) {
  HistoricalDb::Builder builder(1, 1, 144);
  // Saturate the uint16 observation counter at exactly 40 km/h...
  for (int i = 0; i < 65535; ++i) builder.Add(0, 0, 40.0);
  // ...then keep hammering the cell with much faster reports. The counter
  // can no longer advance, so these must not accumulate into the sum
  // either — the pre-fix code inflated the mean here.
  for (int i = 0; i < 1000; ++i) builder.Add(0, 0, 90.0);
  HistoricalDb db = builder.Finish();
  EXPECT_NEAR(db.Observation(0, 0), 40.0, 0.01);
}

TEST(HistoricalDbTest, CoverageStats) {
  HistoricalDb::Builder builder(2, 10, 144);
  for (uint64_t s = 0; s < 10; ++s) builder.Add(0, s, 30.0);
  HistoricalDb db = builder.Finish();
  EXPECT_DOUBLE_EQ(db.CoverageFraction(), 0.5);
  EXPECT_DOUBLE_EQ(db.UnobservedRoadFraction(), 0.5);
  EXPECT_EQ(db.CoverageCount(0), 10u);
  EXPECT_EQ(db.CoverageCount(1), 0u);
}

TEST(CollectProbeHistoryTest, EndToEndPipelinePopulatesDb) {
  RoadNetwork net = SmallGrid();
  TrafficOptions topts;
  auto field = GenerateSpeedField(net, topts, 2);
  ASSERT_TRUE(field.ok());
  ProbeFleetOptions fleet;
  fleet.trips_per_slot = 5;
  auto db = CollectProbeHistory(net, *field, fleet);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db->TotalObservations(), 100u);
  EXPECT_GT(db->CoverageFraction(), 0.01);
  // Observed speeds should be within the physical range of the simulator.
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    for (uint64_t s = 0; s < db->num_slots(); ++s) {
      if (db->HasObservation(r, s)) {
        EXPECT_GT(db->Observation(r, s), 0.0);
        EXPECT_LT(db->Observation(r, s), 140.0);
      }
    }
  }
}

TEST(CollectProbeHistoryTest, ObservedSpeedsTrackTruth) {
  RoadNetwork net = SmallGrid();
  TrafficOptions topts;
  topts.incidents.rate_per_slot = 0.0;
  auto field = GenerateSpeedField(net, topts, 2);
  ASSERT_TRUE(field.ok());
  ProbeFleetOptions fleet;
  fleet.trips_per_slot = 10;
  fleet.gps.position_noise_m = 5.0;
  auto db = CollectProbeHistory(net, *field, fleet);
  ASSERT_TRUE(db.ok());
  OnlineStats rel_err;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    for (uint64_t s = 0; s < db->num_slots(); ++s) {
      if (!db->HasObservation(r, s)) continue;
      double truth = field->at(s, r);
      rel_err.Add(std::fabs(db->Observation(r, s) - truth) / truth);
    }
  }
  ASSERT_GT(rel_err.count(), 50u);
  // Map-matched probe speeds are noisy but should track truth broadly.
  EXPECT_LT(rel_err.mean(), 0.35);
}

TEST(CollectIdealizedHistoryTest, CoverageIsSkewed) {
  RoadNetwork net = SmallGrid();
  TrafficOptions topts;
  auto field = GenerateSpeedField(net, topts, 3);
  ASSERT_TRUE(field.ok());
  auto db = CollectIdealizedHistory(net, *field, 0.3, 2.0, 42);
  ASSERT_TRUE(db.ok());
  // Coverage counts should vary strongly across roads (exponential skew).
  OnlineStats counts;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    counts.Add(static_cast<double>(db->CoverageCount(r)));
  }
  EXPECT_GT(counts.max(), 2.0 * counts.mean());
  EXPECT_FALSE(CollectIdealizedHistory(net, *field, 0.0, 2.0, 1).ok());
}

}  // namespace
}  // namespace trendspeed
