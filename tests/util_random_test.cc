#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace trendspeed {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 7.0, 0.05 * kDraws / 7.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  double sum = 0.0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextPoisson(3.5);
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 5 + rng.NextIndex(50);
    size_t k = 1 + rng.NextIndex(n);
    auto sample = rng.SampleWithoutReplacement(n, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t idx : sample) EXPECT_LT(idx, n);
  }
  // k == n returns a permutation.
  auto all = rng.SampleWithoutReplacement(10, 10);
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
}

TEST(RngTest, SampleWithoutReplacementCoversUniformly) {
  Rng rng(29);
  std::vector<int> hits(10, 0);
  for (int t = 0; t < 10000; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) ++hits[idx];
  }
  for (int h : hits) EXPECT_NEAR(h, 3000, 250);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.Fork();
  // The child must differ from a fresh copy of the parent's continuation.
  Rng b(123);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextU32() == a.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(37);
  int heads = 0;
  for (int i = 0; i < 50000; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 50000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace trendspeed
