// Keeps docs/observability.md and the metric catalog (obs/catalog.h) in
// lockstep, in both directions:
//
//   * every metric name in AllMetricDefs() must be documented, and
//   * every `trendspeed_*` name the doc mentions must exist in the catalog
//     (after stripping the _bucket/_sum/_count suffixes Prometheus
//     histogram examples legitimately carry).
//
// The doc path comes from the TRENDSPEED_SOURCE_DIR compile definition set
// in tests/CMakeLists.txt, so the test runs from any build directory.

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/catalog.h"

namespace trendspeed {
namespace {

std::string ReadDoc() {
  const std::string path =
      std::string(TRENDSPEED_SOURCE_DIR) + "/docs/observability.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// All maximal [a-z0-9_] tokens starting with "trendspeed_". Tokens ending
/// in '_' are wildcard shorthand ("the trendspeed_pool_* series"), not
/// metric names, and are skipped.
std::set<std::string> ExtractMetricTokens(const std::string& text) {
  std::set<std::string> out;
  const std::string prefix = "trendspeed_";
  size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    size_t end = pos;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_')) {
      ++end;
    }
    std::string token = text.substr(pos, end - pos);
    if (!token.empty() && token.back() != '_') out.insert(token);
    pos = end;
  }
  return out;
}

std::set<std::string> CatalogNames() {
  std::set<std::string> out;
  for (const obs::MetricDef* def : obs::AllMetricDefs()) {
    out.insert(def->name);
  }
  return out;
}

bool StripSuffix(std::string* s, const std::string& suffix) {
  if (s->size() > suffix.size() &&
      s->compare(s->size() - suffix.size(), suffix.size(), suffix) == 0) {
    s->resize(s->size() - suffix.size());
    return true;
  }
  return false;
}

TEST(MetricsDocsTest, EveryCatalogMetricIsDocumented) {
  const std::string doc = ReadDoc();
  ASSERT_FALSE(doc.empty());
  const std::set<std::string> documented = ExtractMetricTokens(doc);
  for (const std::string& name : CatalogNames()) {
    EXPECT_TRUE(documented.count(name))
        << "metric " << name
        << " is in obs/catalog.h but missing from docs/observability.md";
  }
}

TEST(MetricsDocsTest, EveryDocumentedMetricExistsInCatalog) {
  const std::set<std::string> catalog = CatalogNames();
  for (std::string token : ExtractMetricTokens(ReadDoc())) {
    if (catalog.count(token)) continue;
    // Prometheus expansion suffixes in examples refer to a base histogram.
    std::string base = token;
    if (StripSuffix(&base, "_bucket") || StripSuffix(&base, "_sum") ||
        StripSuffix(&base, "_count")) {
      if (catalog.count(base)) continue;
    }
    ADD_FAILURE() << "docs/observability.md mentions " << token
                  << " which is not in obs/catalog.h";
  }
}

TEST(MetricsDocsTest, CatalogNamesFollowConventions) {
  for (const obs::MetricDef* def : obs::AllMetricDefs()) {
    const std::string name = def->name;
    EXPECT_EQ(name.rfind("trendspeed_", 0), 0u) << name;
    if (def->type == obs::MetricType::kCounter) {
      EXPECT_EQ(name.substr(name.size() - 6), "_total")
          << "counter " << name << " should end in _total";
    } else {
      EXPECT_EQ(name.find("_total"), std::string::npos)
          << "non-counter " << name << " must not end in _total";
    }
    if (def->type == obs::MetricType::kHistogram) {
      EXPECT_GT(def->num_buckets, 0u) << name;
      for (size_t i = 1; i < def->num_buckets; ++i) {
        EXPECT_LT(def->bucket_bounds[i - 1], def->bucket_bounds[i]) << name;
      }
    }
  }
}

}  // namespace
}  // namespace trendspeed
