#include "util/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace trendspeed {
namespace {

TEST(MatrixTest, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(m.MaxAbsDiff(t.Transpose()), 0.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, GramMatchesExplicitProduct) {
  Matrix x = Matrix::FromRows({{1, 2, 0}, {0, 1, 1}, {2, 0, 1}, {1, 1, 1}});
  Matrix expected = x.Transpose().Multiply(x);
  EXPECT_LT(x.Gram().MaxAbsDiff(expected), 1e-12);
}

TEST(MatrixTest, TimesAndTransposeTimes) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  std::vector<double> v = m.Times({1.0, -1.0});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[2], -1.0);
  std::vector<double> w = m.TransposeTimes({1.0, 0.0, 1.0});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[1], 8.0);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  auto x = CholeskySolve(a, {1.0, 2.0});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4 * (*x)[0] + (*x)[1], 1.0, 1e-12);
  EXPECT_NEAR((*x)[0] + 3 * (*x)[1], 2.0, 1e-12);
}

TEST(CholeskySolveTest, RejectsNonSpd) {
  Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  auto x = CholeskySolve(a, {1.0, 1.0});
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskySolveTest, RejectsShapeMismatch) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  EXPECT_EQ(CholeskySolve(a, {1.0}).status().code(),
            StatusCode::kInvalidArgument);
  Matrix rect(2, 3);
  EXPECT_EQ(CholeskySolve(rect, {1.0, 1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GaussianSolveTest, SolvesGeneralSystem) {
  Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  auto x = GaussianSolve(a, {-8.0, 0.0, 3.0});
  ASSERT_TRUE(x.ok());
  std::vector<double> b = a.Times(*x);
  EXPECT_NEAR(b[0], -8.0, 1e-10);
  EXPECT_NEAR(b[1], 0.0, 1e-10);
  EXPECT_NEAR(b[2], 3.0, 1e-10);
}

TEST(GaussianSolveTest, RejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_EQ(GaussianSolve(a, {1.0, 2.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RidgeRegressionTest, RecoversExactLine) {
  // y = 3 + 2x, no noise, tiny lambda.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    double x = i * 0.5;
    rows.push_back({1.0, x});
    y.push_back(3.0 + 2.0 * x);
  }
  auto w = RidgeRegression(Matrix::FromRows(rows), y, 1e-9);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 3.0, 1e-5);
  EXPECT_NEAR((*w)[1], 2.0, 1e-5);
}

TEST(RidgeRegressionTest, NoisyRecoveryWithinTolerance) {
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(-2.0, 2.0);
    rows.push_back({1.0, x});
    y.push_back(1.0 - 0.7 * x + rng.Gaussian(0.0, 0.05));
  }
  auto w = RidgeRegression(Matrix::FromRows(rows), y, 0.1);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 1.0, 0.05);
  EXPECT_NEAR((*w)[1], -0.7, 0.05);
}

TEST(RidgeRegressionTest, ShrinksTowardZeroWithLargeLambda) {
  std::vector<std::vector<double>> rows = {{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  std::vector<double> y = {10.0, 20.0, 30.0};
  auto small = RidgeRegression(Matrix::FromRows(rows), y, 1e-6);
  auto large = RidgeRegression(Matrix::FromRows(rows), y, 1e6);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(std::fabs((*small)[1]), std::fabs((*large)[1]));
  EXPECT_NEAR((*large)[1], 0.0, 1e-3);
}

TEST(RidgeRegressionTest, HandlesCollinearWithRegularization) {
  // Second column duplicates the first: OLS is ill-posed, ridge is fine.
  std::vector<std::vector<double>> rows = {{1, 1}, {2, 2}, {3, 3}};
  std::vector<double> y = {2, 4, 6};
  auto w = RidgeRegression(Matrix::FromRows(rows), y, 0.5);
  ASSERT_TRUE(w.ok());
  // Symmetric solution splits the weight.
  EXPECT_NEAR((*w)[0], (*w)[1], 1e-9);
}

TEST(RidgeRegressionTest, RejectsBadInput) {
  Matrix x = Matrix::FromRows({{1.0}});
  EXPECT_EQ(RidgeRegression(x, {1.0, 2.0}, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RidgeRegression(x, {1.0}, -1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RidgeRegression(Matrix(), {}, 0.1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskySolveTest, RandomSpdSystemsSolve) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.NextIndex(6);
    Matrix x(n + 3, n);
    for (size_t i = 0; i < n + 3; ++i)
      for (size_t j = 0; j < n; ++j) x(i, j) = rng.Gaussian(0.0, 1.0);
    Matrix a = x.Gram();
    for (size_t i = 0; i < n; ++i) a(i, i) += 0.5;  // ensure PD
    std::vector<double> b(n);
    for (auto& v : b) v = rng.Gaussian(0.0, 1.0);
    auto sol = CholeskySolve(a, b);
    ASSERT_TRUE(sol.ok());
    std::vector<double> back = a.Times(*sol);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
  }
}

}  // namespace
}  // namespace trendspeed
