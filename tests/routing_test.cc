#include <cmath>

#include <gtest/gtest.h>

#include "core/routing.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::PathNetwork;
using testing_util::SmallGrid;

std::vector<double> FreeFlow(const RoadNetwork& net) {
  std::vector<double> speeds(net.num_roads());
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    speeds[r] = net.road(r).free_flow_kmh;
  }
  return speeds;
}

TEST(PathTravelTimeTest, SumsSegmentTimes) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 36.0);  // 10 m/s
  auto t = PathTravelTime(net, speeds, {0, 2});  // 1000 m total
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 100.0, 1e-9);
}

TEST(PathTravelTimeTest, ValidatesPath) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 36.0);
  EXPECT_FALSE(PathTravelTime(net, speeds, {}).ok());
  EXPECT_FALSE(PathTravelTime(net, speeds, {0, 3}).ok());  // not contiguous
  EXPECT_FALSE(PathTravelTime(net, speeds, {99}).ok());
  speeds[0] = 0.0;
  EXPECT_FALSE(PathTravelTime(net, speeds, {0, 2}).ok());
  EXPECT_FALSE(PathTravelTime(net, {1.0}, {0}).ok());  // size mismatch
}

TEST(FastestRouteTest, MatchesFreeFlowPathfinding) {
  RoadNetwork net = SmallGrid();
  auto route = FastestRoute(net, FreeFlow(net), 0, 15);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route->roads.empty());
  EXPECT_GT(route->travel_seconds, 0.0);
  EXPECT_GT(route->length_m, 0.0);
  // Verify the reported time is consistent with PathTravelTime.
  auto t = PathTravelTime(net, FreeFlow(net), route->roads);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, route->travel_seconds, 1e-9);
  // Endpoints connect.
  EXPECT_EQ(net.road(route->roads.front()).from, 0u);
  EXPECT_EQ(net.road(route->roads.back()).to, 15u);
}

TEST(FastestRouteTest, ReroutesAroundCongestion) {
  // Two routes A->C: direct fast road vs detour. Congest the direct road
  // and the router must switch.
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(1000, 0);
  NodeId via = b.AddNode(500, 200);
  RoadId direct = b.AddRoad(a, c, RoadClass::kArterial, 60.0);
  RoadId leg1 = b.AddRoad(a, via, RoadClass::kLocal, 40.0);
  RoadId leg2 = b.AddRoad(via, c, RoadClass::kLocal, 40.0);
  auto net = b.Finish();
  ASSERT_TRUE(net.ok());
  std::vector<double> speeds = {60.0, 40.0, 40.0};
  auto clear_route = FastestRoute(*net, speeds, a, c);
  ASSERT_TRUE(clear_route.ok());
  EXPECT_EQ(clear_route->roads, std::vector<RoadId>{direct});
  speeds[direct] = 5.0;  // jammed
  auto jam_route = FastestRoute(*net, speeds, a, c);
  ASSERT_TRUE(jam_route.ok());
  EXPECT_EQ(jam_route->roads, (std::vector<RoadId>{leg1, leg2}));
}

TEST(FastestRouteTest, ImpassableRoadsAreSkipped) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 40.0);
  speeds[0] = 0.0;  // A->B closed; no other way from node 0 to node 2
  auto route = FastestRoute(net, speeds, 0, 2);
  EXPECT_EQ(route.status().code(), StatusCode::kNotFound);
}

TEST(FastestRouteTest, ValidatesInput) {
  RoadNetwork net = PathNetwork();
  EXPECT_FALSE(FastestRoute(net, {1.0}, 0, 2).ok());
  EXPECT_FALSE(FastestRoute(net, FreeFlow(net), 0, 99).ok());
}

TEST(CongestionRatioTest, OneUnderFreeFlowAndAboveUnderJam) {
  RoadNetwork net = SmallGrid();
  auto clear = CongestionRatio(net, FreeFlow(net), 0, 15);
  ASSERT_TRUE(clear.ok());
  EXPECT_NEAR(*clear, 1.0, 1e-9);
  std::vector<double> jammed = FreeFlow(net);
  for (double& v : jammed) v *= 0.5;
  auto jam = CongestionRatio(net, jammed, 0, 15);
  ASSERT_TRUE(jam.ok());
  EXPECT_NEAR(*jam, 2.0, 1e-9);
}

}  // namespace
}  // namespace trendspeed
