#include <cmath>

#include <gtest/gtest.h>

#include "core/routing.h"
#include "core/snapshot.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::PathNetwork;
using testing_util::SmallGrid;

std::vector<double> FreeFlow(const RoadNetwork& net) {
  std::vector<double> speeds(net.num_roads());
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    speeds[r] = net.road(r).free_flow_kmh;
  }
  return speeds;
}

TEST(PathTravelTimeTest, SumsSegmentTimes) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 36.0);  // 10 m/s
  auto t = PathTravelTime(net, speeds, {0, 2});  // 1000 m total
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 100.0, 1e-9);
}

TEST(PathTravelTimeTest, ValidatesPath) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 36.0);
  EXPECT_FALSE(PathTravelTime(net, speeds, {}).ok());
  EXPECT_FALSE(PathTravelTime(net, speeds, {0, 3}).ok());  // not contiguous
  EXPECT_FALSE(PathTravelTime(net, speeds, {99}).ok());
  speeds[0] = 0.0;
  EXPECT_FALSE(PathTravelTime(net, speeds, {0, 2}).ok());
  // size mismatch (explicit vector: braces would be ambiguous against the
  // SpeedSnapshot overload)
  EXPECT_FALSE(PathTravelTime(net, std::vector<double>{1.0}, {0}).ok());
}

TEST(FastestRouteTest, MatchesFreeFlowPathfinding) {
  RoadNetwork net = SmallGrid();
  auto route = FastestRoute(net, FreeFlow(net), 0, 15);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route->roads.empty());
  EXPECT_GT(route->travel_seconds, 0.0);
  EXPECT_GT(route->length_m, 0.0);
  // Verify the reported time is consistent with PathTravelTime.
  auto t = PathTravelTime(net, FreeFlow(net), route->roads);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, route->travel_seconds, 1e-9);
  // Endpoints connect.
  EXPECT_EQ(net.road(route->roads.front()).from, 0u);
  EXPECT_EQ(net.road(route->roads.back()).to, 15u);
}

TEST(FastestRouteTest, ReroutesAroundCongestion) {
  // Two routes A->C: direct fast road vs detour. Congest the direct road
  // and the router must switch.
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(1000, 0);
  NodeId via = b.AddNode(500, 200);
  RoadId direct = b.AddRoad(a, c, RoadClass::kArterial, 60.0);
  RoadId leg1 = b.AddRoad(a, via, RoadClass::kLocal, 40.0);
  RoadId leg2 = b.AddRoad(via, c, RoadClass::kLocal, 40.0);
  auto net = b.Finish();
  ASSERT_TRUE(net.ok());
  std::vector<double> speeds = {60.0, 40.0, 40.0};
  auto clear_route = FastestRoute(*net, speeds, a, c);
  ASSERT_TRUE(clear_route.ok());
  EXPECT_EQ(clear_route->roads, std::vector<RoadId>{direct});
  speeds[direct] = 5.0;  // jammed
  auto jam_route = FastestRoute(*net, speeds, a, c);
  ASSERT_TRUE(jam_route.ok());
  EXPECT_EQ(jam_route->roads, (std::vector<RoadId>{leg1, leg2}));
}

TEST(FastestRouteTest, ImpassableRoadsAreSkipped) {
  RoadNetwork net = PathNetwork();
  std::vector<double> speeds(net.num_roads(), 40.0);
  speeds[0] = 0.0;  // A->B closed; no other way from node 0 to node 2
  auto route = FastestRoute(net, speeds, 0, 2);
  EXPECT_EQ(route.status().code(), StatusCode::kNotFound);
}

TEST(FastestRouteTest, ValidatesInput) {
  RoadNetwork net = PathNetwork();
  EXPECT_FALSE(FastestRoute(net, std::vector<double>{1.0}, 0, 2).ok());
  EXPECT_FALSE(FastestRoute(net, FreeFlow(net), 0, 99).ok());
}

TEST(CongestionRatioTest, OneUnderFreeFlowAndAboveUnderJam) {
  RoadNetwork net = SmallGrid();
  auto clear = CongestionRatio(net, FreeFlow(net), 0, 15);
  ASSERT_TRUE(clear.ok());
  EXPECT_NEAR(*clear, 1.0, 1e-9);
  std::vector<double> jammed = FreeFlow(net);
  for (double& v : jammed) v *= 0.5;
  auto jam = CongestionRatio(net, jammed, 0, 15);
  ASSERT_TRUE(jam.ok());
  EXPECT_NEAR(*jam, 2.0, 1e-9);
}

// Regression for the degenerate-query bug: from == to used to reach the
// 0/0 congestion ratio and fail with Internal (and callers that divided
// anyway got NaN). An empty trip is defined: ratio 1.0, never congested.
TEST(CongestionRatioTest, SameEndpointIsDefinedAsOne) {
  RoadNetwork net = SmallGrid();
  auto ratio = CongestionRatio(net, FreeFlow(net), 7, 7);
  ASSERT_TRUE(ratio.ok()) << ratio.status().ToString();
  EXPECT_DOUBLE_EQ(*ratio, 1.0);
  EXPECT_TRUE(std::isfinite(*ratio));
}

TEST(FastestRouteTest, SameEndpointIsEmptyRoute) {
  RoadNetwork net = SmallGrid();
  auto route = FastestRoute(net, FreeFlow(net), 3, 3);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->roads.empty());
  EXPECT_EQ(route->travel_seconds, 0.0);
  EXPECT_EQ(route->length_m, 0.0);
}

// ---------------------------------------------------------------------------
// Snapshot-aware overloads: staleness provenance must survive routing.
// ---------------------------------------------------------------------------

SpeedSnapshot GridSnapshot(const RoadNetwork& net, uint64_t slot,
                           uint64_t version, uint32_t stale_slots) {
  SpeedSnapshot snap;
  snap.slot = slot;
  snap.version = version;
  snap.stale_slots = stale_slots;
  snap.stale = stale_slots > 0;
  snap.speed_kmh = FreeFlow(net);
  snap.deviation.assign(net.num_roads(), 0.0);
  snap.mean_speed_kmh = 50.0;
  return snap;
}

// Regression for the staleness-blind-routing bug: routing on
// snap.speed_kmh through the plain overloads silently discarded
// stale/stale_slots, so an ETA priced on a 40-minute-old carried-forward
// field was indistinguishable from a fresh one. The snapshot overloads
// must stamp the provenance into every result. (This test fails against
// the pre-fix API by not compiling at all — the overloads did not exist —
// and the product layer builds its unflagged-stale-ETA guarantee on it.)
TEST(SnapshotRoutingTest, FastestRoutePropagatesStaleness) {
  RoadNetwork net = SmallGrid();
  SpeedSnapshot fresh = GridSnapshot(net, 10, 3, 0);
  auto fresh_route = FastestRoute(net, fresh, 0, 15);
  ASSERT_TRUE(fresh_route.ok());
  EXPECT_FALSE(fresh_route->stale);
  EXPECT_EQ(fresh_route->stale_slots, 0u);
  EXPECT_EQ(fresh_route->slot, 10u);

  SpeedSnapshot stale = GridSnapshot(net, 14, 7, 4);
  auto stale_route = FastestRoute(net, stale, 0, 15);
  ASSERT_TRUE(stale_route.ok());
  EXPECT_TRUE(stale_route->stale);
  EXPECT_EQ(stale_route->stale_slots, 4u);
  EXPECT_EQ(stale_route->slot, 14u);
  // The route itself is the same as the plain overload's — provenance is
  // a stamp, not a different algorithm.
  auto plain = FastestRoute(net, stale.speed_kmh, 0, 15);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(stale_route->roads, plain->roads);
  EXPECT_EQ(stale_route->travel_seconds, plain->travel_seconds);
}

TEST(SnapshotRoutingTest, PathTravelTimePropagatesStaleness) {
  RoadNetwork net = PathNetwork();
  SpeedSnapshot stale;
  stale.slot = 99;
  stale.version = 5;
  stale.stale = true;
  stale.stale_slots = 2;
  stale.speed_kmh.assign(net.num_roads(), 36.0);
  stale.deviation.assign(net.num_roads(), 0.0);
  auto eta = PathTravelTime(net, stale, {0, 2});
  ASSERT_TRUE(eta.ok());
  EXPECT_NEAR(eta->travel_seconds, 100.0, 1e-9);
  EXPECT_TRUE(eta->stale);
  EXPECT_EQ(eta->stale_slots, 2u);
  EXPECT_EQ(eta->slot, 99u);
  // Validation still applies through the snapshot overload.
  EXPECT_FALSE(PathTravelTime(net, stale, {}).ok());
}

TEST(SnapshotRoutingTest, CongestionRatioPropagatesStaleness) {
  RoadNetwork net = SmallGrid();
  SpeedSnapshot stale = GridSnapshot(net, 21, 9, 6);
  for (double& v : stale.speed_kmh) v *= 0.5;
  auto result = CongestionRatio(net, stale, 0, 15);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ratio, 2.0, 1e-9);
  EXPECT_TRUE(result->stale);
  EXPECT_EQ(result->stale_slots, 6u);
  EXPECT_EQ(result->slot, 21u);
  // Degenerate + stale composes: defined ratio, provenance intact.
  auto degenerate = CongestionRatio(net, stale, 4, 4);
  ASSERT_TRUE(degenerate.ok());
  EXPECT_DOUBLE_EQ(degenerate->ratio, 1.0);
  EXPECT_TRUE(degenerate->stale);
}

}  // namespace
}  // namespace trendspeed
