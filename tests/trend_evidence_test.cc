// Tests for soft deviation evidence in the trend MRF and the flattened BP
// fast path.

#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "test_util.h"
#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "trend/trend_model.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

TEST(BpFlatTest, MatchesWrapperOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    PairwiseMrf mrf(12);
    for (size_t v = 0; v < 12; ++v) mrf.SetPriorUp(v, rng.Uniform(0.2, 0.8));
    for (size_t u = 0; u < 12; ++u) {
      for (size_t v = u + 1; v < 12; ++v) {
        if (!rng.NextBool(0.25)) continue;
        double s = rng.Uniform(1.2, 2.5);
        double compat[2][2] = {{s, 1.0 / s}, {1.0 / s, s}};
        mrf.AddEdge(u, v, compat);
      }
    }
    mrf.Clamp(0, 1);
    // The wrapper builds the flat graph internally; verify an explicitly
    // built flat graph + potentials produce the same marginals.
    BpGraph graph = BpGraph::FromMrf(mrf);
    std::vector<double> pot(24);
    for (size_t v = 0; v < 12; ++v) {
      pot[2 * v] = mrf.EffectivePotential(v, 0);
      pot[2 * v + 1] = mrf.EffectivePotential(v, 1);
    }
    BpResult a = InferMarginalsBp(mrf);
    BpResult b = InferMarginalsBpFlat(graph, pot);
    ASSERT_EQ(a.p_up.size(), b.p_up.size());
    for (size_t v = 0; v < 12; ++v) {
      EXPECT_NEAR(a.p_up[v], b.p_up[v], 1e-12);
    }
  }
}

TEST(BpFlatTest, HardPotentialsActAsClamps) {
  PairwiseMrf mrf(3);
  double compat[2][2] = {{2.0, 0.5}, {0.5, 2.0}};
  mrf.AddEdge(0, 1, compat);
  mrf.AddEdge(1, 2, compat);
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot = {0.0, 1.0, 0.5, 0.5, 0.5, 0.5};  // var 0 hard up
  BpResult r = InferMarginalsBpFlat(graph, pot);
  EXPECT_DOUBLE_EQ(r.p_up[0], 1.0);
  EXPECT_GT(r.p_up[1], 0.5);
  EXPECT_GT(r.p_up[2], 0.5);
}

class EvidenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = AlternatingHistory(net_);
    CorrelationGraphOptions copts;
    copts.min_co_observed = 10;
    auto graph = CorrelationGraph::Build(net_, db_, copts);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CorrelationGraph>(std::move(graph).value());
  }

  RoadNetwork net_;
  HistoricalDb db_;
  std::unique_ptr<CorrelationGraph> graph_;
};

TEST_F(EvidenceTest, PositiveEvidencePushesTrendUp) {
  TrendModel model(&*graph_, &db_, {});
  std::vector<double> evidence(net_.num_roads(), 3.0);  // strong "up"
  auto with = model.Infer(3, {}, &evidence);
  auto without = model.Infer(3, {});
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    EXPECT_GT(with->p_up[r], without->p_up[r]) << "road " << r;
    EXPECT_GT(with->p_up[r], 0.5);
  }
}

TEST_F(EvidenceTest, EvidenceIsClampedToSaneOdds) {
  // Potentials-only engine exposes the node beliefs directly: even infinite
  // evidence log-odds must be clamped before entering the potential.
  TrendModelOptions topts;
  topts.engine = TrendEngine::kPriorOnly;
  TrendModel model(&*graph_, &db_, topts);
  std::vector<double> extreme(net_.num_roads(), 1e9);
  auto est = model.Infer(3, {}, &extreme);
  ASSERT_TRUE(est.ok());
  for (double p : est->p_up) {
    EXPECT_LE(p, 0.981);  // soft evidence never reaches certainty
  }
}

TEST_F(EvidenceTest, EvidenceIgnoredOnSeeds) {
  TrendModel model(&*graph_, &db_, {});
  std::vector<double> evidence(net_.num_roads(), 4.0);  // says "up"
  auto est = model.Infer(3, {{0, -1}}, &evidence);  // seed says "down"
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], -1);
  EXPECT_DOUBLE_EQ(est->p_up[0], 0.0);
}

TEST_F(EvidenceTest, RejectsWrongSizeEvidence) {
  TrendModel model(&*graph_, &db_, {});
  std::vector<double> bad(3, 0.0);
  EXPECT_FALSE(model.Infer(3, {}, &bad).ok());
}

TEST_F(EvidenceTest, PriorOnlyEngineUsesEvidence) {
  TrendModelOptions topts;
  topts.engine = TrendEngine::kPriorOnly;
  TrendModel model(&*graph_, &db_, topts);
  std::vector<double> evidence(net_.num_roads(), 0.0);
  evidence[5] = -3.0;
  auto est = model.Infer(2, {}, &evidence);
  ASSERT_TRUE(est.ok());
  // Slot 2 is an "up"-leaning slot; the strong negative evidence overrides.
  EXPECT_EQ(est->trend[5], -1);
}

TEST_F(EvidenceTest, TemperedEdgesWeakerThanFull) {
  TrendModelOptions strong;
  strong.edge_compat_power = 1.0;
  TrendModelOptions weak;
  weak.edge_compat_power = 0.1;
  TrendModel m_strong(&*graph_, &db_, strong);
  TrendModel m_weak(&*graph_, &db_, weak);
  auto s = m_strong.Infer(3, {{0, -1}});
  auto w = m_weak.Infer(3, {{0, -1}});
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(w.ok());
  // Stronger couplings pull neighbours further toward the seed's state.
  double pull_strong = 0.0, pull_weak = 0.0;
  for (const CorrEdge& e : graph_->Neighbors(0)) {
    pull_strong += 0.5 - s->p_up[e.neighbor];
    pull_weak += 0.5 - w->p_up[e.neighbor];
  }
  EXPECT_GT(pull_strong, pull_weak);
}

}  // namespace
}  // namespace trendspeed
