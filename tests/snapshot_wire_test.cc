// Tests for the framed snapshot transport (io/snapshot_wire.h): round-trip
// fidelity (modulo the documented f32 payload quantization), the derived
// stale flag, strict decode failures, and the log container.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "io/snapshot_wire.h"

namespace trendspeed {
namespace {

SpeedSnapshot MakeSnapshot(uint64_t slot, uint64_t version,
                           uint32_t stale_slots, size_t roads) {
  SpeedSnapshot snap;
  snap.slot = slot;
  snap.version = version;
  snap.stale_slots = stale_slots;
  snap.stale = stale_slots > 0;
  snap.mean_speed_kmh = 42.125;  // f64 on the wire: exact
  for (size_t i = 0; i < roads; ++i) {
    // f32-exact values so EXPECT_EQ round-trips bitwise.
    snap.speed_kmh.push_back(30.0 + 0.5 * static_cast<double>(i));
    snap.deviation.push_back(-0.25 * static_cast<double>(i));
  }
  return snap;
}

TEST(SnapshotWireTest, RoundTripsAllFields) {
  SpeedSnapshot snap = MakeSnapshot(17, 9, 3, 5);
  auto decoded = DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->slot, 17u);
  EXPECT_EQ(decoded->version, 9u);
  EXPECT_EQ(decoded->stale_slots, 3u);
  EXPECT_TRUE(decoded->stale);  // derived from stale_slots, not encoded
  EXPECT_DOUBLE_EQ(decoded->mean_speed_kmh, 42.125);
  EXPECT_EQ(decoded->speed_kmh, snap.speed_kmh);
  EXPECT_EQ(decoded->deviation, snap.deviation);
}

TEST(SnapshotWireTest, StaleFlagCannotContradictStaleSlots) {
  // Even if the in-memory struct lies (stale=true, stale_slots=0), the wire
  // carries only stale_slots and the decode re-derives the flag.
  SpeedSnapshot snap = MakeSnapshot(1, 1, 0, 2);
  snap.stale = true;  // inconsistent by hand
  auto decoded = DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->stale);
  EXPECT_EQ(decoded->stale_slots, 0u);
}

TEST(SnapshotWireTest, EmptyFieldRoundTrips) {
  SpeedSnapshot snap = MakeSnapshot(0, 1, 0, 0);
  auto decoded = DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->speed_kmh.empty());
  EXPECT_TRUE(decoded->deviation.empty());
}

TEST(SnapshotWireTest, QuantizesPayloadToF32) {
  SpeedSnapshot snap = MakeSnapshot(1, 1, 0, 1);
  snap.speed_kmh[0] = 33.333333333333336;  // not f32-representable
  auto decoded = DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap));
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->speed_kmh[0],
                   static_cast<double>(static_cast<float>(33.333333333333336)));
}

TEST(SnapshotWireTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeSpeedSnapshot(std::string()).ok());
  EXPECT_FALSE(DecodeSpeedSnapshot(std::string("not a frame")).ok());
  // Wrong tag (an observation-wire or random header).
  std::string wrong = EncodeSpeedSnapshot(MakeSnapshot(1, 1, 0, 2));
  wrong[0] = 'X';
  EXPECT_FALSE(DecodeSpeedSnapshot(wrong).ok());
}

TEST(SnapshotWireTest, RejectsTruncationAtEveryPrefix) {
  std::string bytes = EncodeSpeedSnapshot(MakeSnapshot(5, 2, 1, 3));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeSpeedSnapshot(bytes.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  ASSERT_TRUE(DecodeSpeedSnapshot(bytes).ok());
}

TEST(SnapshotWireTest, RejectsTrailingGarbage) {
  std::string bytes = EncodeSpeedSnapshot(MakeSnapshot(5, 2, 1, 3));
  EXPECT_FALSE(DecodeSpeedSnapshot(bytes + "x").ok());
}

TEST(SnapshotWireTest, RejectsAbsurdRoadCountBeforeAllocating) {
  // Patch a frame to claim 2^60 roads with no payload: the decoder must
  // fail on the count-vs-remaining check, not attempt the allocation.
  SpeedSnapshot empty = MakeSnapshot(1, 1, 0, 0);
  std::string valid = EncodeSpeedSnapshot(empty);
  // Patch the trailing u64 road count (last 8 bytes of the empty frame).
  std::string bytes = valid;
  uint64_t absurd = 1ull << 60;
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] =
        static_cast<char>((absurd >> (8 * i)) & 0xff);
  }
  EXPECT_FALSE(DecodeSpeedSnapshot(bytes).ok());
}

TEST(SnapshotWireTest, RejectsNonFiniteCells) {
  SpeedSnapshot snap = MakeSnapshot(1, 1, 0, 2);
  snap.speed_kmh[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap)).ok());
  snap = MakeSnapshot(1, 1, 0, 2);
  snap.mean_speed_kmh = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(DecodeSpeedSnapshot(EncodeSpeedSnapshot(snap)).ok());
}

TEST(SnapshotWireTest, LogRoundTripsAndStreams) {
  std::vector<SpeedSnapshot> log;
  for (uint64_t v = 1; v <= 4; ++v) {
    log.push_back(MakeSnapshot(v * 10, v, static_cast<uint32_t>(v % 2), 3));
  }
  std::string bytes = EncodeSnapshotLog(log);
  auto decoded = DecodeSnapshotLog(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*decoded)[i].slot, log[i].slot);
    EXPECT_EQ((*decoded)[i].version, log[i].version);
    EXPECT_EQ((*decoded)[i].speed_kmh, log[i].speed_kmh);
  }
  EXPECT_FALSE(DecodeSnapshotLog(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(DecodeSnapshotLog(bytes + "z").ok());
  // An empty log is a valid (if boring) artifact.
  auto empty = DecodeSnapshotLog(EncodeSnapshotLog({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(SnapshotWireTest, StreamingDecodeReadsConsecutiveFrames) {
  BinaryWriter w;
  AppendSpeedSnapshot(MakeSnapshot(1, 1, 0, 2), &w);
  AppendSpeedSnapshot(MakeSnapshot(2, 2, 1, 2), &w);
  BinaryReader r(w.buffer());
  auto first = DecodeSpeedSnapshot(&r);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->version, 1u);
  auto second = DecodeSpeedSnapshot(&r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->version, 2u);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace trendspeed
