// Regression tests for the bench hardware stamp (bench/bench_hardware.h).
// The committed BENCH_*.json files are only interpretable if the stamp is
// truthful about the CPUs the run could actually use — not what the whole
// machine has.

#include <gtest/gtest.h>

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_hardware.h"

namespace trendspeed {
namespace {

TEST(BenchHardwareTest, UsableCpusIsPositive) {
  EXPECT_GE(BenchUsableCpus(), 1u);
}

TEST(BenchHardwareTest, ScalingValidRequiresMoreThanTwoCpus) {
  EXPECT_FALSE(BenchScalingValid(0));
  EXPECT_FALSE(BenchScalingValid(1));
  EXPECT_FALSE(BenchScalingValid(2));
  EXPECT_TRUE(BenchScalingValid(3));
  EXPECT_TRUE(BenchScalingValid(64));
}

#if defined(__linux__)
// The bug this file exists for: the stamp used to read only
// hardware_concurrency, so a many-core host whose cgroup cpuset (or
// taskset) boxed the bench into 1-2 CPUs still stamped scaling_valid=true
// and its speedup rows were read as real scaling data. Pin this process to
// a single CPU and require the affinity-aware reading.
TEST(BenchHardwareTest, CpusetLimitIsObserved) {
  cpu_set_t original;
  CPU_ZERO(&original);
  ASSERT_EQ(sched_getaffinity(0, sizeof(original), &original), 0);

  cpu_set_t one;
  CPU_ZERO(&one);
  int first = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &original)) {
      first = c;
      break;
    }
  }
  ASSERT_GE(first, 0);
  CPU_SET(first, &one);
  ASSERT_EQ(sched_setaffinity(0, sizeof(one), &one), 0);

  unsigned usable = BenchUsableCpus();
  bool valid = BenchScalingValid(usable);

  // Restore before asserting so a failure can't leave the test binary (and
  // every later suite in this process) pinned to one core.
  ASSERT_EQ(sched_setaffinity(0, sizeof(original), &original), 0);

  EXPECT_EQ(usable, 1u);
  EXPECT_FALSE(valid)
      << "a run pinned to one CPU must never stamp scaling_valid=true "
         "(hardware_concurrency=" << std::thread::hardware_concurrency()
      << ")";
}
#endif  // defined(__linux__)

}  // namespace
}  // namespace trendspeed
