// Fault-injection harness for the hardened serving path: replays a clean
// scenario through ServingSession under injected stream faults (dropped,
// duplicated, reordered, emptied deliveries; corrupted speeds) and asserts
// the session never crashes, never serves a NaN/negative speed, rejects
// malformed input only via Status, and re-converges to the fault-free
// estimates once the faults stop.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/serving.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::FaultPlan;
using testing_util::FaultyObservationSource;
using testing_util::SharedTinyDataset;

using Delivery = FaultyObservationSource::Delivery;

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  /// Clean delivery schedule: truthful seed observations for `count` slots.
  std::vector<Delivery> CleanSchedule(uint64_t start, size_t count) {
    std::vector<Delivery> out;
    for (uint64_t slot = start; slot < start + count; ++slot) {
      Delivery d;
      d.slot = slot;
      for (RoadId r : *seeds_) {
        d.observations.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
      }
      out.push_back(d);
    }
    return out;
  }

  /// Runs a schedule through a session; every served report must be sane.
  /// Every Ingest error must be a graceful Status (the session keeps
  /// serving afterwards — reaching the end of the loop proves no abort).
  void Replay(ServingSession* session, const std::vector<Delivery>& schedule) {
    for (const Delivery& d : schedule) {
      auto report = session->Ingest(d.slot, d.observations);
      if (!report.ok()) {
        StatusCode code = report.status().code();
        EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kFailedPrecondition)
            << report.status().ToString();
        continue;
      }
      EXPECT_TRUE(std::isfinite(report->monitor.mean_speed_kmh));
      EXPECT_GT(report->monitor.mean_speed_kmh, 0.0);
      for (double v : report->monitor.estimate.speeds.speed_kmh) {
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GE(v, 0.0);
      }
      for (double p : report->monitor.estimate.trends.p_up) {
        ASSERT_TRUE(std::isfinite(p));
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 1.0);
      }
    }
  }

  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* FaultInjectionTest::estimator_ = nullptr;
std::vector<RoadId>* FaultInjectionTest::seeds_ = nullptr;

// The headline scenario: a heavy fault mix on the first stretch of the day,
// then a clean tail. The session must survive the faults, serve only sane
// numbers throughout, and end up within tolerance of a fault-free replay.
TEST_F(FaultInjectionTest, SurvivesFaultBurstAndReconverges) {
  const uint64_t start = ds().first_test_slot();
  const size_t kFaulty = 14;
  const size_t kCleanTail = 6;
  auto schedule = CleanSchedule(start, kFaulty + kCleanTail);

  // Fault-free baseline.
  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  auto baseline = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(baseline.ok());
  Replay(&*baseline, schedule);
  ASSERT_TRUE(baseline->has_estimate());
  ASSERT_EQ(baseline->last_report().slot, start + kFaulty + kCleanTail - 1);

  // Faulted run: every fault class at once on the first kFaulty slots.
  FaultPlan plan;
  plan.drop_prob = 0.2;
  plan.duplicate_prob = 0.3;
  plan.empty_prob = 0.2;
  plan.corrupt_prob = 0.25;
  plan.reorder_window = 3;
  plan.seed = 20260805;
  FaultyObservationSource source(plan);
  std::vector<Delivery> faulty(schedule.begin(), schedule.begin() + kFaulty);
  faulty = source.Corrupt(faulty);
  faulty.insert(faulty.end(), schedule.begin() + kFaulty, schedule.end());

  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  Replay(&*session, faulty);

  // The clean tail was served fresh, so the final estimates must match the
  // fault-free replay (the estimator is per-slot; only monitor smoothing
  // carries state, which the tolerance covers).
  ASSERT_TRUE(session->has_estimate());
  const auto& got = session->last_report();
  const auto& want = baseline->last_report();
  ASSERT_EQ(got.slot, want.slot);
  EXPECT_FALSE(got.stale);
  const auto& got_speeds = got.monitor.estimate.speeds.speed_kmh;
  const auto& want_speeds = want.monitor.estimate.speeds.speed_kmh;
  ASSERT_EQ(got_speeds.size(), want_speeds.size());
  for (size_t r = 0; r < got_speeds.size(); ++r) {
    EXPECT_NEAR(got_speeds[r], want_speeds[r], 1e-6) << "road " << r;
  }

  // Every injected fault class actually exercised a degradation path.
  const ServingStats& stats = session->stats();
  EXPECT_GT(stats.slots_estimated, 0u);
  EXPECT_GT(stats.duplicate_slots + stats.out_of_order_slots, 0u);
  EXPECT_GT(stats.observations_filtered + stats.observations_deduplicated, 0u);
  EXPECT_GT(stats.slots_carried_forward, 0u);
  EXPECT_EQ(stats.estimation_failures, 0u);
}

// Strict mode: corrupted batches are rejected via Status — never an abort,
// never a served estimate built from garbage — and the slot survives for a
// corrected re-send.
TEST_F(FaultInjectionTest, StrictModeRejectsEveryCorruptedBatch) {
  const uint64_t start = ds().first_test_slot();
  auto schedule = CleanSchedule(start, 8);

  FaultPlan plan;
  plan.corrupt_prob = 1.0;  // every observation corrupted
  FaultyObservationSource source(plan);
  auto corrupted = source.Corrupt(schedule);
  ASSERT_EQ(corrupted.size(), schedule.size());

  auto session = ServingSession::Create(estimator_);
  ASSERT_TRUE(session.ok());
  for (size_t i = 0; i < corrupted.size(); ++i) {
    auto bad = session->Ingest(corrupted[i].slot, corrupted[i].observations);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    // The corrected batch for the same slot is accepted.
    auto good = session->Ingest(schedule[i].slot, schedule[i].observations);
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_FALSE(good->stale);
  }
  EXPECT_EQ(session->stats().rejected_batches, corrupted.size());
  EXPECT_EQ(session->stats().slots_estimated, schedule.size());
}

// A total outage (every batch empty) degrades through carry-forward into
// FailedPrecondition once the staleness budget is spent — and recovers the
// moment real data returns.
TEST_F(FaultInjectionTest, OutageDegradesThenRecovers) {
  const uint64_t start = ds().first_test_slot();
  ServingOptions opts;
  opts.max_stale_slots = 3;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());

  auto schedule = CleanSchedule(start, 12);
  ASSERT_TRUE(
      session->Ingest(schedule[0].slot, schedule[0].observations).ok());

  size_t carried = 0, refused = 0;
  for (size_t i = 1; i < 8; ++i) {
    auto r = session->Ingest(schedule[i].slot, {});
    if (r.ok()) {
      EXPECT_TRUE(r->stale);
      ++carried;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
      ++refused;
    }
  }
  EXPECT_EQ(carried, 3u);
  EXPECT_EQ(refused, 4u);

  auto recovered = session->Ingest(schedule[8].slot, schedule[8].observations);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->stale);
  EXPECT_EQ(recovered->stale_slots, 0u);
}

// Warm-started inference must stay an approximation of the cold path, not a
// different answer: replaying a day through a warm session tracks a cold
// session within a few multiples of the BP convergence tolerance.
TEST_F(FaultInjectionTest, WarmSessionTracksColdSessionOverReplayedDay) {
  const uint64_t start = ds().first_test_slot();
  auto schedule = CleanSchedule(start, 20);

  // The 10x-tol bound is stated against a *converged* cold schedule; the
  // truncated production default (max_iters 6) can stop ~1e-3 short of the
  // fixed point, which would swamp the warm-start error. Train a pipeline
  // whose sweep budget lets BP converge.
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  config.trend.bp.max_iters = 24;
  auto est = TrafficSpeedEstimator::Train(&ds().net, &ds().history, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();

  ServingOptions cold_opts;
  cold_opts.validation = ValidationPolicy::kFilter;
  ServingOptions warm_opts = cold_opts;
  warm_opts.warm_start = true;

  auto cold = ServingSession::Create(&*est, cold_opts);
  auto warm = ServingSession::Create(&*est, warm_opts);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());

  // 10x the BP tol — the documented warm-start error bound.
  const double kTol = 10.0 * config.trend.bp.tol;
  for (const Delivery& d : schedule) {
    auto c = cold->Ingest(d.slot, d.observations);
    auto w = warm->Ingest(d.slot, d.observations);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    const auto& cp = c->monitor.estimate.trends.p_up;
    const auto& wp = w->monitor.estimate.trends.p_up;
    ASSERT_EQ(cp.size(), wp.size());
    for (size_t r = 0; r < cp.size(); ++r) {
      EXPECT_NEAR(wp[r], cp[r], kTol) << "slot " << d.slot << " road " << r;
    }
  }
  EXPECT_EQ(warm->stats().slots_estimated, schedule.size());
}

// Carry-forward breaks slot continuity, so the warm state must be dropped:
// the next fresh slot runs cold and its estimate is bitwise identical to a
// stateless one-shot Estimate.
TEST_F(FaultInjectionTest, WarmStateResetsAfterCarryForward) {
  const uint64_t start = ds().first_test_slot();
  auto schedule = CleanSchedule(start, 4);
  ServingOptions opts;
  opts.warm_start = true;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(
      session->Ingest(schedule[0].slot, schedule[0].observations).ok());
  ASSERT_TRUE(
      session->Ingest(schedule[1].slot, schedule[1].observations).ok());
  auto stale = session->Ingest(schedule[2].slot, {});  // carry-forward
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->stale);

  auto fresh = session->Ingest(schedule[3].slot, schedule[3].observations);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto oneshot = estimator_->Estimate(schedule[3].slot,
                                      schedule[3].observations);
  ASSERT_TRUE(oneshot.ok());
  // Bitwise: the invalidated state forces the full cold schedule.
  EXPECT_EQ(fresh->monitor.estimate.trends.p_up, oneshot->trends.p_up);
}

// Idempotent duplicate-slot re-delivery must not touch the warm state:
// subsequent estimates are bitwise identical to a session that never saw
// the duplicate.
TEST_F(FaultInjectionTest, DuplicateSlotReplayLeavesWarmStateUntouched) {
  const uint64_t start = ds().first_test_slot();
  auto schedule = CleanSchedule(start, 3);
  ServingOptions opts;
  opts.warm_start = true;

  auto with_dup = ServingSession::Create(estimator_, opts);
  auto without = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(with_dup.ok());
  ASSERT_TRUE(without.ok());

  for (const Delivery& d : schedule) {
    auto a = with_dup->Ingest(d.slot, d.observations);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    if (d.slot == schedule[1].slot) {
      auto dup = with_dup->Ingest(d.slot, d.observations);
      ASSERT_TRUE(dup.ok());
      EXPECT_TRUE(dup->duplicate);
    }
    auto b = without->Ingest(d.slot, d.observations);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->monitor.estimate.trends.p_up,
              b->monitor.estimate.trends.p_up)
        << "slot " << d.slot;
  }
  EXPECT_EQ(with_dup->stats().duplicate_slots, 1u);
}

}  // namespace
}  // namespace trendspeed
