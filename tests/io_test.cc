#include <cmath>

#include <gtest/gtest.h>

#include "io/dataset.h"
#include "io/serialize.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SmallGrid;

TEST(SerializeTest, NetworkRoundTrip) {
  RoadNetwork net = SmallGrid();
  CsvTable nodes = NetworkNodesToCsv(net);
  CsvTable roads = NetworkRoadsToCsv(net);
  auto back = NetworkFromCsv(nodes, roads);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_nodes(), net.num_nodes());
  ASSERT_EQ(back->num_roads(), net.num_roads());
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    EXPECT_NEAR(back->node(i).x, net.node(i).x, 1e-3);
    EXPECT_NEAR(back->node(i).y, net.node(i).y, 1e-3);
  }
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    EXPECT_EQ(back->road(r).from, net.road(r).from);
    EXPECT_EQ(back->road(r).to, net.road(r).to);
    EXPECT_EQ(back->road(r).road_class, net.road(r).road_class);
    EXPECT_NEAR(back->road(r).free_flow_kmh, net.road(r).free_flow_kmh, 1e-3);
  }
}

TEST(SerializeTest, NetworkFromCsvRejectsGarbage) {
  CsvTable nodes;
  nodes.header = {"id", "x", "y"};
  nodes.rows = {{"0", "abc", "0"}};
  CsvTable roads;
  roads.header = {"id", "from", "to", "class", "free_flow_kmh"};
  EXPECT_FALSE(NetworkFromCsv(nodes, roads).ok());
  nodes.rows = {{"0", "0", "0"}, {"1", "1", "1"}};
  roads.rows = {{"0", "0", "7", "local", "40"}};
  EXPECT_FALSE(NetworkFromCsv(nodes, roads).ok());  // missing node
  roads.rows = {{"0", "0", "1", "superhighway", "40"}};
  EXPECT_FALSE(NetworkFromCsv(nodes, roads).ok());  // bad class
}

TEST(SerializeTest, SpeedFieldRoundTrip) {
  RoadNetwork net = SmallGrid();
  TrafficOptions opts;
  auto field = GenerateSpeedField(net, opts, 1);
  ASSERT_TRUE(field.ok());
  CsvTable csv = SpeedFieldToCsv(*field);
  auto back = SpeedFieldFromCsv(csv, net.num_roads(), opts.slots_per_day);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_slots(), field->num_slots());
  for (uint64_t s = 0; s < field->num_slots(); s += 13) {
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      EXPECT_NEAR(back->at(s, r), field->at(s, r),
                  1e-4 * field->at(s, r) + 1e-6);
    }
  }
}

TEST(SerializeTest, SpeedFieldFromCsvRejectsGapsAndDuplicates) {
  CsvTable t;
  t.header = {"slot", "road", "speed_kmh"};
  // Complete 2-slot x 2-road table parses.
  t.rows = {{"0", "0", "30"}, {"0", "1", "33"},
            {"1", "0", "31"}, {"1", "1", "32"}};
  auto ok = SpeedFieldFromCsv(t, 2, 144);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NEAR(ok->at(1, 1), 32.0, 1e-9);

  // Missing cell (1, 1): used to come back as a silent 0 km/h.
  t.rows = {{"0", "0", "30"}, {"0", "1", "33"}, {"1", "0", "31"}};
  EXPECT_FALSE(SpeedFieldFromCsv(t, 2, 144).ok());

  // Duplicate (slot, road) row.
  t.rows = {{"0", "0", "30"}, {"0", "1", "33"},
            {"1", "0", "31"}, {"1", "1", "32"}, {"1", "1", "99"}};
  EXPECT_FALSE(SpeedFieldFromCsv(t, 2, 144).ok());

  // Non-finite speed.
  t.rows = {{"0", "0", "nan"}, {"0", "1", "33"}};
  EXPECT_FALSE(SpeedFieldFromCsv(t, 2, 144).ok());

  // Empty table.
  t.rows.clear();
  EXPECT_FALSE(SpeedFieldFromCsv(t, 2, 144).ok());
}

TEST(SerializeTest, RecordsRoundTripAndHistoryRebuild) {
  std::vector<RawRecord> records = {
      {0, 3, 42.5}, {1, 3, 30.0}, {0, 4, 40.0}, {0, 3, 43.5}};
  CsvTable csv = RecordsToCsv(records);
  auto back = RecordsFromCsv(csv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 4u);
  EXPECT_EQ((*back)[0].road, 0u);
  EXPECT_NEAR((*back)[0].speed_kmh, 42.5, 1e-9);
  auto db = HistoryFromRecords(*back, 2, 10, 144);
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(db->Observation(0, 3), 43.0, 1e-5);  // averaged duplicates
  EXPECT_NEAR(db->Observation(1, 3), 30.0, 1e-5);
  EXPECT_FALSE(db->HasObservation(1, 4));
}

TEST(SerializeTest, HistoryFromRecordsValidates) {
  EXPECT_FALSE(HistoryFromRecords({{5, 0, 10.0}}, 2, 10, 144).ok());
  EXPECT_FALSE(HistoryFromRecords({{0, 50, 10.0}}, 2, 10, 144).ok());
  EXPECT_FALSE(HistoryFromRecords({{0, 0, -1.0}}, 2, 10, 144).ok());
}

TEST(DatasetTest, TinyCityIsWellFormed) {
  const Dataset& ds = testing_util::SharedTinyDataset();
  EXPECT_EQ(ds.name, "TinyCity");
  EXPECT_GT(ds.net.num_roads(), 10u);
  EXPECT_EQ(ds.truth.num_roads(), ds.net.num_roads());
  EXPECT_EQ(ds.num_slots(),
            (ds.history_days + ds.test_days) * uint64_t{144});
  EXPECT_EQ(ds.history.num_slots(), ds.history_days * uint64_t{144});
  EXPECT_EQ(ds.first_test_slot(), ds.history_days * uint64_t{144});
  EXPECT_GT(ds.history.CoverageFraction(), 0.02);
}

TEST(DatasetTest, RejectsZeroDays) {
  DatasetOptions opts;
  opts.history_days = 0;
  EXPECT_FALSE(BuildTinyCity(opts).ok());
}

TEST(DatasetTest, HistoryMeansTrackTruthMeans) {
  const Dataset& ds = testing_util::SharedTinyDataset();
  // For a well-covered road, the historical bucket mean should be within a
  // reasonable band of the true average for that bucket.
  RoadId best = 0;
  for (RoadId r = 0; r < ds.net.num_roads(); ++r) {
    if (ds.history.CoverageCount(r) > ds.history.CoverageCount(best)) best = r;
  }
  ASSERT_GT(ds.history.CoverageCount(best), 100u);
  uint64_t slot = 8 * 6;  // 08:00 on day 0 (Monday)
  double hist = ds.history.HistoricalMeanOr(best, slot,
                                            ds.net.road(best).free_flow_kmh);
  // True mean over the same weekday bucket within history days.
  double sum = 0.0;
  int n = 0;
  SlotClock clock{144};
  for (uint32_t day = 0; day < ds.history_days; ++day) {
    uint64_t s = day * 144ull + slot % 144;
    if (clock.IsWeekend(s)) continue;
    sum += ds.truth.at(s, best);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(hist, sum / n, 0.25 * sum / n);
}

TEST(DatasetTest, CityBuildersProduceDistinctTopologies) {
  DatasetOptions opts;
  opts.history_days = 2;
  opts.test_days = 1;
  opts.use_probe_fleet = false;
  auto a = BuildCityA(opts);
  auto b = BuildCityB(opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->name, "CityA");
  EXPECT_EQ(b->name, "CityB");
  EXPECT_NE(a->net.num_roads(), b->net.num_roads());
  // CityA has highways (ring roads); CityB does not.
  EXPECT_GT(a->net.CountByClass()[static_cast<size_t>(RoadClass::kHighway)],
            0u);
  EXPECT_EQ(b->net.CountByClass()[static_cast<size_t>(RoadClass::kHighway)],
            0u);
}

}  // namespace
}  // namespace trendspeed
