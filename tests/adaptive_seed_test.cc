#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "roadnet/stats.h"
#include "seed/adaptive.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::SmallGrid;

/// History where roads 0..(n/2) are volatile only at night and the rest
/// only by day — maximally different period sigmas.
HistoricalDb DayNightHistory(const RoadNetwork& net) {
  Rng rng(77);
  HistoricalDb::Builder builder(net.num_roads(), 1008, 144);
  SlotClock clock{144};
  for (uint64_t slot = 0; slot < 1008; ++slot) {
    bool day = clock.HourOfDay(slot) >= 6.0 && clock.HourOfDay(slot) < 18.0;
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      bool volatile_by_day = r >= net.num_roads() / 2;
      double base = net.road(r).free_flow_kmh * 0.8;
      double swing = (day == volatile_by_day) ? 0.3 : 0.01;
      double factor = testing_util::AlternatingUp(slot) ? 1.0 + swing
                                                        : 1.0 - swing;
      builder.Add(r, slot, base * factor);
    }
  }
  return builder.Finish();
}

class AdaptiveSeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = DayNightHistory(net_);
    CorrelationGraphOptions copts;
    copts.min_co_observed = 10;
    auto graph = CorrelationGraph::Build(net_, db_, copts);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CorrelationGraph>(std::move(graph).value());
  }

  RoadNetwork net_;
  HistoricalDb db_;
  std::unique_ptr<CorrelationGraph> graph_;
};

TEST_F(AdaptiveSeedTest, PeriodSigmaSeparatesDayAndNight) {
  std::vector<double> day = PeriodSigma(db_, 6.0, 18.0);
  std::vector<double> night = PeriodSigma(db_, 18.0, 6.0);  // wraps midnight
  RoadId night_road = 0;
  RoadId day_road = static_cast<RoadId>(net_.num_roads() - 1);
  EXPECT_GT(night[night_road], 5.0 * std::max(1e-9, day[night_road]));
  EXPECT_GT(day[day_road], 5.0 * std::max(1e-9, night[day_road]));
}

TEST_F(AdaptiveSeedTest, PlanSelectsDifferentSeedsPerPeriod) {
  AdaptivePlanOptions opts;
  opts.period_boundaries_h = {6.0, 18.0};  // day / night
  auto plan = AdaptiveSeedPlan::Build(*graph_, db_, 6, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_periods(), 2u);
  // Day seeds should concentrate on the volatile-by-day half, night seeds
  // on the other half.
  RoadId half = static_cast<RoadId>(net_.num_roads() / 2);
  size_t day_in_day_half = 0, night_in_night_half = 0;
  for (RoadId r : plan->seeds_of_period(0)) {  // [6, 18): day
    if (r >= half) ++day_in_day_half;
  }
  for (RoadId r : plan->seeds_of_period(1)) {  // [18, 6): night
    if (r < half) ++night_in_night_half;
  }
  EXPECT_GE(day_in_day_half, 4u);
  EXPECT_GE(night_in_night_half, 4u);
  EXPECT_LT(plan->OverlapFraction(0, 1), 0.5);
}

TEST_F(AdaptiveSeedTest, PeriodOfRespectsBoundariesAndWrap) {
  AdaptivePlanOptions opts;
  opts.period_boundaries_h = {6.0, 10.0, 16.0, 20.0};
  auto plan = AdaptiveSeedPlan::Build(*graph_, db_, 3, opts);
  ASSERT_TRUE(plan.ok());
  SlotClock clock{144};
  auto slot_at_hour = [&](double h) {
    return static_cast<uint64_t>(h / 24.0 * 144.0);
  };
  EXPECT_EQ(plan->PeriodOf(slot_at_hour(7.0)), 0u);
  EXPECT_EQ(plan->PeriodOf(slot_at_hour(11.0)), 1u);
  EXPECT_EQ(plan->PeriodOf(slot_at_hour(17.0)), 2u);
  EXPECT_EQ(plan->PeriodOf(slot_at_hour(22.0)), 3u);  // wrapping period
  EXPECT_EQ(plan->PeriodOf(slot_at_hour(2.0)), 3u);   // after midnight
  (void)clock;
}

TEST_F(AdaptiveSeedTest, SeedsForReturnsActivePeriodSet) {
  AdaptivePlanOptions opts;
  opts.period_boundaries_h = {6.0, 18.0};
  auto plan = AdaptiveSeedPlan::Build(*graph_, db_, 5, opts);
  ASSERT_TRUE(plan.ok());
  uint64_t noon = 72;       // 12:00 day 0
  uint64_t midnight = 0;    // 00:00 day 0
  EXPECT_EQ(plan->SeedsFor(noon), plan->seeds_of_period(0));
  EXPECT_EQ(plan->SeedsFor(midnight), plan->seeds_of_period(1));
}

TEST_F(AdaptiveSeedTest, ValidatesOptions) {
  AdaptivePlanOptions one;
  one.period_boundaries_h = {6.0};
  EXPECT_FALSE(AdaptiveSeedPlan::Build(*graph_, db_, 3, one).ok());
  AdaptivePlanOptions unsorted;
  unsorted.period_boundaries_h = {18.0, 6.0};
  EXPECT_FALSE(AdaptiveSeedPlan::Build(*graph_, db_, 3, unsorted).ok());
  AdaptivePlanOptions out_of_range;
  out_of_range.period_boundaries_h = {6.0, 25.0};
  EXPECT_FALSE(AdaptiveSeedPlan::Build(*graph_, db_, 3, out_of_range).ok());
}

TEST(NetworkStatsTest, ComputesSaneNumbers) {
  RoadNetwork net = SmallGrid();
  NetworkStats stats = ComputeNetworkStats(net);
  EXPECT_EQ(stats.num_roads, net.num_roads());
  EXPECT_EQ(stats.num_nodes, net.num_nodes());
  EXPECT_GT(stats.total_length_km, 0.0);
  EXPECT_GT(stats.avg_degree, 1.0);
  EXPECT_GE(stats.max_degree, static_cast<size_t>(stats.avg_degree));
  EXPECT_TRUE(stats.connected);
  EXPECT_GT(stats.diameter_lower_bound, 2u);
  EXPECT_EQ(stats.roads_by_class[0] + stats.roads_by_class[1] +
                stats.roads_by_class[2],
            net.num_roads());
}

}  // namespace
}  // namespace trendspeed
