// Tests for the slot-causal flight recorder (obs/flight.h): stage naming,
// per-thread ring recording and seqlock collection, overflow accounting,
// the detached FlightSpan no-op contract, critical-path attribution, and
// the TSan torture proof (N writer threads + a live collector, plus a
// sharded BP solve recording shard spans while a collector loops). Run
// under TRENDSPEED_SANITIZE=thread for the full data-race proof.

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "shard/sharded_bp.h"
#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {
namespace {

uint64_t g_fake_now = 0;
uint64_t FakeClock() { return g_fake_now; }

TEST(FlightStageTest, NamesAreStable) {
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kQueueWait),
               "queue_wait");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kIngest), "ingest");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kAdmission),
               "admission");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kEstimate), "estimate");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kBpSolve), "bp_solve");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kShardSolve),
               "shard_solve");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kExchange), "exchange");
  EXPECT_STREQ(obs::FlightStageName(obs::FlightStage::kPublish), "publish");
}

TEST(FlightRecorderTest, RecordsAndCollectsInStartOrder) {
  obs::FlightRecorder rec(/*events_per_thread=*/64);
  rec.Record(7, obs::FlightStage::kAdmission, /*start_ns=*/200,
             /*duration_ns=*/10, obs::kNoShard, /*path_seq=*/2);
  rec.Record(7, obs::FlightStage::kQueueWait, /*start_ns=*/100,
             /*duration_ns=*/100, obs::kNoShard, /*path_seq=*/1);
  rec.Record(8, obs::FlightStage::kQueueWait, /*start_ns=*/300,
             /*duration_ns=*/5);
  std::vector<obs::FlightEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start_ns regardless of record order.
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[0].stage, obs::FlightStage::kQueueWait);
  EXPECT_EQ(events[0].path_seq, 1u);
  EXPECT_EQ(events[1].start_ns, 200u);
  EXPECT_EQ(events[2].slot, 8u);
  EXPECT_EQ(events[2].path_seq, 0u);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.num_threads(), 1u);

  std::vector<obs::FlightEvent> slot7 = rec.CollectSlot(7);
  ASSERT_EQ(slot7.size(), 2u);
  EXPECT_EQ(slot7[0].slot, 7u);
  EXPECT_EQ(slot7[1].slot, 7u);
}

TEST(FlightRecorderTest, RingOverflowCountsDrops) {
  obs::FlightRecorder rec(/*events_per_thread=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Record(1, obs::FlightStage::kIngest, i, 1);
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);  // 20 written, ring keeps 8
  std::vector<obs::FlightEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 8u);
  // The retained cells are the most recent 8 records.
  EXPECT_EQ(events.front().start_ns, 12u);
  EXPECT_EQ(events.back().start_ns, 19u);
}

TEST(FlightRecorderTest, MetricsMirrorRecorderActivity) {
  obs::MetricsRegistry reg;
  obs::FlightRecorder rec(/*events_per_thread=*/8);
  rec.AttachMetrics(&reg);
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Record(1, obs::FlightStage::kIngest, i, 1);
  }
  EXPECT_EQ(reg.GetCounter(obs::kFlightEventsRecordedTotal)->Value(), 10u);
  EXPECT_EQ(reg.GetCounter(obs::kFlightEventsDroppedTotal)->Value(), 2u);
  EXPECT_EQ(reg.GetGauge(obs::kFlightThreads)->Value(), 1.0);
}

TEST(FlightRecorderTest, ThreadLabelsDefaultAndOverride) {
  obs::FlightRecorder rec;
  rec.Record(1, obs::FlightStage::kIngest, 1, 1);
  std::thread t([&] {
    obs::SetFlightThreadLabel("drainer");
    rec.Record(1, obs::FlightStage::kPublish, 2, 1);
    obs::SetFlightThreadLabel("");
  });
  t.join();
  std::vector<std::pair<uint32_t, std::string>> labels = rec.ThreadLabels();
  ASSERT_EQ(labels.size(), 2u);
  bool saw_default = false;
  bool saw_named = false;
  for (const auto& l : labels) {
    if (l.second == "drainer") saw_named = true;
    if (l.second == "thread-" + std::to_string(l.first)) saw_default = true;
  }
  EXPECT_TRUE(saw_named);
  EXPECT_TRUE(saw_default);
}

TEST(FlightSpanTest, DetachedSpanTouchesNothing) {
  obs::SlotTraceContext ctx;
  ctx.slot = 9;
  ctx.stage_seq = 3;
  // Null recorder: no clock read, no context mutation — the detached
  // pipeline's state stays bitwise identical.
  {
    obs::FlightSpan span(nullptr, 9, obs::FlightStage::kAdmission,
                         obs::kNoShard, &ctx);
  }
  EXPECT_EQ(ctx.stage_seq, 3u);
}

TEST(FlightSpanTest, AttachedSpanRecordsWithCausalSequence) {
  obs::SetMonotonicClockForTest(&FakeClock);
  g_fake_now = 1'000;
  obs::FlightRecorder rec;
  obs::SlotTraceContext ctx;
  ctx.slot = 5;
  {
    obs::FlightSpan span(&rec, 5, obs::FlightStage::kAdmission, obs::kNoShard,
                         &ctx);
    g_fake_now += 250;
  }
  {
    obs::FlightSpan span(&rec, 5, obs::FlightStage::kPublish, obs::kNoShard,
                         &ctx);
    g_fake_now += 50;
  }
  obs::SetMonotonicClockForTest(nullptr);
  EXPECT_EQ(ctx.stage_seq, 2u);
  std::vector<obs::FlightEvent> events = rec.CollectSlot(5);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, obs::FlightStage::kAdmission);
  EXPECT_EQ(events[0].start_ns, 1'000u);
  EXPECT_EQ(events[0].duration_ns, 250u);
  EXPECT_EQ(events[0].path_seq, 1u);
  EXPECT_EQ(events[1].stage, obs::FlightStage::kPublish);
  EXPECT_EQ(events[1].path_seq, 2u);
}

// ---------------------------------------------------------------------------
// Critical-path attribution.
// ---------------------------------------------------------------------------

std::vector<obs::FlightEvent> SyntheticSlotTimeline(uint64_t slot) {
  auto ev = [slot](obs::FlightStage stage, uint64_t start, uint64_t dur,
                   uint32_t shard, uint32_t seq) {
    obs::FlightEvent e;
    e.slot = slot;
    e.stage = stage;
    e.start_ns = start;
    e.duration_ns = dur;
    e.shard = shard;
    e.path_seq = seq;
    return e;
  };
  // queue_wait 1000ns, then a 5000ns ingest envelope containing admission
  // (700), estimate envelope (3800) with bp (2000) + exchange (500), and
  // publish (300). Unattributed envelope remainder: 5000 - 3500 = 1500.
  return {
      ev(obs::FlightStage::kQueueWait, 0, 1000, obs::kNoShard, 1),
      ev(obs::FlightStage::kIngest, 1000, 5000, obs::kNoShard, 7),
      ev(obs::FlightStage::kAdmission, 1100, 700, obs::kNoShard, 2),
      ev(obs::FlightStage::kEstimate, 1900, 3800, obs::kNoShard, 3),
      ev(obs::FlightStage::kBpSolve, 2000, 2000, obs::kNoShard, 4),
      ev(obs::FlightStage::kShardSolve, 2000, 1900, /*shard=*/0, 0),
      ev(obs::FlightStage::kShardSolve, 2050, 1800, /*shard=*/1, 0),
      ev(obs::FlightStage::kExchange, 4000, 500, obs::kNoShard, 5),
      ev(obs::FlightStage::kPublish, 5600, 300, obs::kNoShard, 6),
  };
}

TEST(CriticalPathTest, DecompositionSumsAndExcludesEnvelopes) {
  std::vector<obs::FlightEvent> events = SyntheticSlotTimeline(42);
  obs::SlotCriticalPath cp = obs::ComputeSlotCriticalPath(events, 42);
  EXPECT_EQ(cp.slot, 42u);
  EXPECT_EQ(cp.events, events.size());
  EXPECT_EQ(cp.total_ns, 6000u);  // queue_wait + ingest envelope
  EXPECT_EQ(cp.queue_wait_ns, 1000u);
  EXPECT_EQ(cp.admission_ns, 700u);
  EXPECT_EQ(cp.bp_ns, 2000u);  // barriered region, NOT the shard spans
  EXPECT_EQ(cp.exchange_ns, 500u);
  EXPECT_EQ(cp.publish_ns, 300u);
  EXPECT_EQ(cp.other_ns, 1500u);
  // The named stages plus `other` tile the whole timeline.
  EXPECT_EQ(cp.queue_wait_ns + cp.admission_ns + cp.bp_ns + cp.exchange_ns +
                cp.publish_ns + cp.other_ns,
            cp.total_ns);
  EXPECT_NEAR(cp.AttributedFraction(), 4500.0 / 6000.0, 1e-12);
}

TEST(CriticalPathTest, OtherSlotsAreIgnoredAndEmptyIsZero) {
  std::vector<obs::FlightEvent> events = SyntheticSlotTimeline(42);
  obs::SlotCriticalPath cp = obs::ComputeSlotCriticalPath(events, 99);
  EXPECT_EQ(cp.total_ns, 0u);
  EXPECT_EQ(cp.events, 0u);
  EXPECT_DOUBLE_EQ(cp.AttributedFraction(), 1.0);
}

// ---------------------------------------------------------------------------
// TSan torture: concurrent writers + live collector.
// ---------------------------------------------------------------------------

TEST(FlightTortureTest, ConcurrentWritersAndCollectorAreRaceFree) {
  obs::FlightRecorder rec(/*events_per_thread=*/256);
  constexpr int kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 20'000;
  std::atomic<bool> writing{true};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        rec.Record(/*slot=*/i % 17,
                   static_cast<obs::FlightStage>(i % obs::kNumFlightStages),
                   /*start_ns=*/i * 10 + w, /*duration_ns=*/i % 97,
                   /*shard=*/static_cast<uint32_t>(w), /*path_seq=*/0);
      }
    });
  }
  // Live collector: every returned event must be internally consistent —
  // the seqlock either yields a whole cell or skips it, never a torn mix.
  uint64_t collections = 0;
  while (writing.load(std::memory_order_acquire)) {
    std::vector<obs::FlightEvent> events = rec.Collect();
    for (const obs::FlightEvent& e : events) {
      ASSERT_LT(e.slot, 17u);
      ASSERT_LT(static_cast<size_t>(e.stage), obs::kNumFlightStages);
      ASSERT_LT(e.shard, static_cast<uint32_t>(kWriters));
      ASSERT_EQ(e.duration_ns, (e.start_ns - e.shard) / 10 % 97);
    }
    ++collections;
    if (rec.total_recorded() >= kWriters * kEventsPerWriter) {
      writing.store(false, std::memory_order_release);
    }
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GE(collections, 1u);
  EXPECT_EQ(rec.total_recorded(), kWriters * kEventsPerWriter);
  EXPECT_EQ(rec.num_threads(), static_cast<size_t>(kWriters));
  // Conservation: retained + dropped = recorded.
  EXPECT_EQ(rec.Collect().size() + rec.dropped(), rec.total_recorded());
}

TEST(FlightTortureTest, CollectorRunsDuringActiveShardedSolves) {
  // Ring graph split into 4 shards, solved repeatedly with a FlightSink
  // attached while a collector thread merges the rings: the real
  // integration shape (pool workers writing shard_solve spans, caller
  // writing bp_solve/exchange, collector reading concurrently).
  PairwiseMrf mrf(240);
  double compat[2][2] = {{1.3, 0.7}, {0.7, 1.3}};
  for (size_t v = 0; v < 240; ++v) mrf.AddEdge(v, (v + 1) % 240, compat);
  ShardingOptions sopts;
  sopts.num_shards = 4;
  auto engine = ShardedBpEngine::Build(BpGraph::FromMrf(mrf), sopts);
  ASSERT_TRUE(engine.ok());
  std::vector<double> pot(2 * 240);
  Rng rng(7);
  for (size_t v = 0; v < 240; ++v) {
    double p = 0.1 + 0.8 * rng.NextDouble();
    pot[2 * v] = 1.0 - p;
    pot[2 * v + 1] = p;
  }
  obs::FlightRecorder rec(/*events_per_thread=*/4096);
  std::atomic<bool> solving{true};
  std::thread collector([&] {
    while (solving.load(std::memory_order_acquire)) {
      for (const obs::FlightEvent& e : rec.Collect()) {
        ASSERT_LT(static_cast<size_t>(e.stage), obs::kNumFlightStages);
      }
      std::this_thread::yield();
    }
  });
  BpOptions bp;
  bp.max_iters = 30;
  for (uint64_t slot = 0; slot < 20; ++slot) {
    obs::SlotTraceContext ctx;
    ctx.slot = slot;
    obs::FlightSink sink{&rec, slot, &ctx};
    ShardedBpResult r = engine->Infer(pot, bp, nullptr, sink);
    ASSERT_EQ(r.p_up.size(), 240u);
  }
  solving.store(false, std::memory_order_release);
  collector.join();

  // Every solve recorded at least one bp_solve span and one shard_solve
  // span per shard per round.
  std::vector<obs::FlightEvent> events = rec.CollectSlot(3);
  size_t bp_spans = 0;
  std::set<uint32_t> shards_seen;
  for (const obs::FlightEvent& e : events) {
    if (e.stage == obs::FlightStage::kBpSolve) {
      ++bp_spans;
      EXPECT_GT(e.path_seq, 0u);  // on the causal backbone
    }
    if (e.stage == obs::FlightStage::kShardSolve) {
      EXPECT_EQ(e.path_seq, 0u);  // concurrent, off-path
      shards_seen.insert(e.shard);
    }
  }
  EXPECT_GE(bp_spans, 1u);
  EXPECT_EQ(shards_seen.size(), 4u);
}

}  // namespace
}  // namespace trendspeed
