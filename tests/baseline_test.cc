#include <cmath>

#include <gtest/gtest.h>

#include "baseline/historical_mean.h"
#include "baseline/knn.h"
#include "baseline/label_propagation.h"
#include "baseline/matrix_completion.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = AlternatingHistory(net_, 1008, 144, 0.25);
  }

  RoadNetwork net_;
  HistoricalDb db_;
};

TEST_F(BaselineTest, HistoricalMeanReturnsBucketMeans) {
  HistoricalMeanEstimator est(&net_, &db_);
  auto out = est.Estimate(/*slot=*/4, {});
  ASSERT_TRUE(out.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    EXPECT_NEAR((*out)[r], db_.HistoricalMeanOr(r, 4, 0.0), 1e-9);
  }
}

TEST_F(BaselineTest, HistoricalMeanReportsSeedsVerbatim) {
  HistoricalMeanEstimator est(&net_, &db_);
  auto out = est.Estimate(4, {{3, 77.0}});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[3], 77.0);
  EXPECT_FALSE(est.Estimate(4, {{9999, 10.0}}).ok());
}

TEST_F(BaselineTest, KnnInterpolatesSeedDeviation) {
  KnnEstimator est(&net_, &db_);
  // One seed at 30% below its historical mean: nearby roads should come out
  // below their own means too.
  double hist0 = db_.HistoricalMeanOr(0, 4, net_.road(0).free_flow_kmh);
  auto out = est.Estimate(4, {{0, hist0 * 0.7}});
  ASSERT_TRUE(out.ok());
  auto dist = RoadHopDistances(net_, 0, 3);
  size_t checked = 0;
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    if (dist[r] == kUnreachable || dist[r] > 2) continue;
    double hist = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
    EXPECT_LT((*out)[r], hist) << "road " << r;
    ++checked;
  }
  EXPECT_GT(checked, 3u);
}

TEST_F(BaselineTest, KnnFallsBackToHistBeyondHorizon) {
  KnnOptions opts;
  opts.max_hops = 1;
  KnnEstimator est(&net_, &db_, opts);
  auto out = est.Estimate(4, {{0, 10.0}});
  ASSERT_TRUE(out.ok());
  auto dist = RoadHopDistances(net_, 0, 1000);
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    if (dist[r] > 1) {
      double hist = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
      EXPECT_NEAR((*out)[r], hist, 1e-9);
    }
  }
}

TEST_F(BaselineTest, LabelPropagationSpreadsDeviationEverywhere) {
  LabelPropagationEstimator est(&net_, &db_);
  double hist0 = db_.HistoricalMeanOr(0, 4, net_.road(0).free_flow_kmh);
  auto out = est.Estimate(4, {{0, hist0 * 0.6}});
  ASSERT_TRUE(out.ok());
  EXPECT_GT(est.last_iterations(), 5u);
  // Every connected road should be pulled below its historical mean.
  size_t below = 0;
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    double hist = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
    if ((*out)[r] < hist - 1e-9) ++below;
  }
  EXPECT_GT(below, net_.num_roads() / 2);
}

TEST_F(BaselineTest, LabelPropagationNoSeedsIsHistoricalMean) {
  LabelPropagationEstimator est(&net_, &db_);
  auto out = est.Estimate(4, {});
  ASSERT_TRUE(out.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    double hist = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
    EXPECT_NEAR((*out)[r], hist, 1e-6);
  }
}

TEST_F(BaselineTest, MatrixCompletionFitsAlternatingPattern) {
  auto est = MatrixCompletionEstimator::Train(&net_, &db_, {});
  ASSERT_TRUE(est.ok());
  // The alternating deviation matrix is rank-1; ALS must fit it nearly
  // exactly.
  EXPECT_LT(est->train_rmse(), 0.05);
  // With seeds indicating "down", all roads should be estimated down.
  uint64_t slot = 5;  // odd slot: truth is down
  std::vector<SeedSpeed> seeds;
  for (RoadId r : {0u, 5u, 9u}) {
    double hist = db_.HistoricalMeanOr(r, slot, net_.road(r).free_flow_kmh);
    seeds.push_back({r, hist * 0.8});
  }
  auto out = est->Estimate(slot, seeds);
  ASSERT_TRUE(out.ok());
  size_t below = 0;
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    double hist = db_.HistoricalMeanOr(r, slot, net_.road(r).free_flow_kmh);
    if ((*out)[r] < hist) ++below;
  }
  EXPECT_GT(below, net_.num_roads() * 3 / 4);
}

TEST_F(BaselineTest, MatrixCompletionRejectsBadConfig) {
  MatrixCompletionOptions opts;
  opts.rank = 0;
  EXPECT_FALSE(MatrixCompletionEstimator::Train(&net_, &db_, opts).ok());
  EXPECT_FALSE(MatrixCompletionEstimator::Train(nullptr, &db_, {}).ok());
}

TEST_F(BaselineTest, AllBaselinesProducePhysicalSpeeds) {
  auto mc = MatrixCompletionEstimator::Train(&net_, &db_, {});
  ASSERT_TRUE(mc.ok());
  KnnEstimator knn(&net_, &db_);
  LabelPropagationEstimator lp(&net_, &db_);
  HistoricalMeanEstimator hist(&net_, &db_);
  std::vector<SeedSpeed> seeds = {{0, 25.0}, {7, 50.0}};
  auto check = [&](Result<std::vector<double>> out) {
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (double v : *out) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 150.0);
    }
  };
  for (uint64_t slot : {0u, 17u, 500u}) {
    check(hist.Estimate(slot, seeds));
    check(knn.Estimate(slot, seeds));
    check(lp.Estimate(slot, seeds));
    check(mc->Estimate(slot, seeds));
  }
}

}  // namespace
}  // namespace trendspeed
