// MultiCityServer (core/multi_city.h): N independent per-city sessions in
// one process. Pins the header's central claim — interleaving Ingest calls
// across cities is equivalent to running each city in its own standalone
// ServingSession — plus spec validation, name routing, the summed
// TotalStats view, and the shared-registry deployment shape where several
// cities export into one scrape endpoint.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/multi_city.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

// Two "cities" over the shared tiny dataset: same road network, different
// serving/estimation configurations (one flat, one sharded) — exactly the
// mixed fleet the sharded engine targets.
class MultiCityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto flat = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(flat.ok()) << flat.status().ToString();
    flat_ = new TrafficSpeedEstimator(std::move(flat).value());

    config.sharding.num_shards = 2;
    auto sharded = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(sharded.ok()) << sharded.status().ToString();
    sharded_ = new TrafficSpeedEstimator(std::move(sharded).value());

    auto seeds = flat_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> Obs(uint64_t slot, double factor) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r) * factor)});
    }
    return out;
  }

  static TrafficSpeedEstimator* flat_;
  static TrafficSpeedEstimator* sharded_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* MultiCityTest::flat_ = nullptr;
TrafficSpeedEstimator* MultiCityTest::sharded_ = nullptr;
std::vector<RoadId>* MultiCityTest::seeds_ = nullptr;

TEST_F(MultiCityTest, CreateValidatesSpecs) {
  EXPECT_FALSE(MultiCityServer::Create({}).ok());
  EXPECT_FALSE(
      MultiCityServer::Create({{"", flat_, ServingOptions{}}}).ok());
  EXPECT_FALSE(
      MultiCityServer::Create({{"a", nullptr, ServingOptions{}}}).ok());
  EXPECT_FALSE(MultiCityServer::Create({{"a", flat_, ServingOptions{}},
                                        {"a", sharded_, ServingOptions{}}})
                   .ok());
  // Bad per-city serving knobs fail Create, not the first Ingest.
  ServingOptions bad;
  bad.max_speed_kmh = -1.0;
  EXPECT_FALSE(MultiCityServer::Create({{"a", flat_, bad}}).ok());
}

TEST_F(MultiCityTest, RoutesByNameAndIndex) {
  auto server = MultiCityServer::Create(
      {{"porto", flat_, ServingOptions{}}, {"beijing", sharded_, {}}});
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server->num_cities(), 2u);
  EXPECT_EQ(server->name(0), "porto");
  EXPECT_EQ(server->Find("beijing"), 1u);
  EXPECT_EQ(server->Find("lisbon"), MultiCityServer::kNotFound);

  uint64_t slot = ds().first_test_slot();
  EXPECT_TRUE(server->Ingest("porto", slot, Obs(slot, 1.0)).ok());
  EXPECT_FALSE(server->Ingest("lisbon", slot, Obs(slot, 1.0)).ok());
  EXPECT_FALSE(server->Ingest(7, slot, Obs(slot, 1.0)).ok());
  EXPECT_TRUE(server->session(0).has_estimate());
  EXPECT_FALSE(server->session(1).has_estimate());
}

TEST_F(MultiCityTest, InterleavedIngestMatchesStandaloneSessions) {
  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  auto server = MultiCityServer::Create(
      {{"flat", flat_, opts}, {"sharded", sharded_, opts}});
  auto solo_flat = ServingSession::Create(flat_, opts);
  auto solo_sharded = ServingSession::Create(sharded_, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(solo_flat.ok());
  ASSERT_TRUE(solo_sharded.ok());

  uint64_t base = ds().first_test_slot();
  // Interleave the two cities' streams, including a degraded (empty) slot
  // for one city only — per-city carry-forward must not leak across.
  for (uint64_t s = 0; s < 5; ++s) {
    uint64_t slot = base + s;
    double factor = 0.9 + 0.05 * static_cast<double>(s % 3);
    std::vector<SeedSpeed> obs = Obs(slot, factor);
    std::vector<SeedSpeed> empty;
    bool degrade_flat = (s == 2);

    auto a = server->Ingest("flat", slot, degrade_flat ? empty : obs);
    auto b = server->Ingest("sharded", slot, obs);
    auto ra = solo_flat->Ingest(slot, degrade_flat ? empty : obs);
    auto rb = solo_sharded->Ingest(slot, obs);
    ASSERT_EQ(a.ok(), ra.ok()) << "slot " << slot;
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(rb.ok());
    if (a.ok()) {
      EXPECT_EQ(a->stale, ra->stale);
      EXPECT_EQ(a->observations_used, ra->observations_used);
      EXPECT_EQ(a->monitor.estimate.speeds.speed_kmh,
                ra->monitor.estimate.speeds.speed_kmh)
          << "slot " << slot;
    }
    EXPECT_EQ(b->monitor.estimate.speeds.speed_kmh,
              rb->monitor.estimate.speeds.speed_kmh)
        << "slot " << slot;
  }

  // Per-city counters match the standalone runs field by field.
  ServingStats sa = server->session(0).stats();
  ServingStats ra = solo_flat->stats();
  EXPECT_EQ(sa.slots_estimated, ra.slots_estimated);
  EXPECT_EQ(sa.slots_carried_forward, ra.slots_carried_forward);
  ServingStats sb = server->session(1).stats();
  ServingStats rb = solo_sharded->stats();
  EXPECT_EQ(sb.slots_estimated, rb.slots_estimated);
  EXPECT_EQ(sb.slots_carried_forward, 0u);
}

TEST_F(MultiCityTest, TotalStatsSumsCities) {
  auto server = MultiCityServer::Create(
      {{"a", flat_, ServingOptions{}}, {"b", sharded_, {}}});
  ASSERT_TRUE(server.ok());
  uint64_t slot = ds().first_test_slot();
  ASSERT_TRUE(server->Ingest("a", slot, Obs(slot, 1.0)).ok());
  ASSERT_TRUE(server->Ingest("a", slot + 1, Obs(slot + 1, 1.0)).ok());
  ASSERT_TRUE(server->Ingest("b", slot, Obs(slot, 1.0)).ok());
  // A stale arrival for city b only.
  EXPECT_FALSE(server->Ingest("b", slot - 1, Obs(slot, 1.0)).ok());

  ServingStats total = server->TotalStats();
  EXPECT_EQ(total.slots_estimated, 3u);
  EXPECT_EQ(total.out_of_order_slots, 1u);
  EXPECT_EQ(server->session(0).stats().out_of_order_slots, 0u);
  EXPECT_EQ(server->session(1).stats().out_of_order_slots, 1u);
}

TEST_F(MultiCityTest, CitiesShareOneMetricsRegistry) {
  obs::MetricsRegistry registry;
  ServingOptions opts;
  opts.observability.metrics = &registry;
  auto server = MultiCityServer::Create(
      {{"a", flat_, opts}, {"b", sharded_, opts}});
  ASSERT_TRUE(server.ok());
  uint64_t slot = ds().first_test_slot();
  ASSERT_TRUE(server->Ingest("a", slot, Obs(slot, 1.0)).ok());
  ASSERT_TRUE(server->Ingest("b", slot, Obs(slot, 1.0)).ok());
  ASSERT_TRUE(server->Ingest("b", slot + 1, Obs(slot + 1, 1.0)).ok());
  // One scrape endpoint sees the whole fleet: the shared counter holds the
  // cross-city sum, matching TotalStats.
  obs::Counter* estimated =
      registry.GetCounter(obs::kServingSlotsEstimatedTotal);
  ASSERT_NE(estimated, nullptr);
  EXPECT_EQ(estimated->Value(), server->TotalStats().slots_estimated);
  EXPECT_EQ(estimated->Value(), 3u);
}

}  // namespace
}  // namespace trendspeed
