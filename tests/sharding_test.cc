// Unit suite for the shard layer (shard/sharding.h, shard/sharded_bp.h):
// ShardingOptions validation, ShardPlan structure (the total-function
// ownership invariant, component preservation, balance, refinement), the
// engine's halo construction, and the boundary-road dedup-attribution
// regression — an observation for a road whose correlation neighbours span
// two shards must land in exactly one owner shard, neither dropped nor
// double-counted under kFilter validation + dedup.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/serving.h"
#include "shard/sharded_bp.h"
#include "shard/sharding.h"
#include "test_util.h"
#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

ShardingOptions Opts(uint32_t shards) {
  ShardingOptions o;
  o.num_shards = shards;
  return o;
}

// Ring of `n` vars with unit-ish associative compat; plus `extra` chords.
BpGraph RingGraph(size_t n, size_t extra = 0, uint64_t seed = 1) {
  PairwiseMrf mrf(n);
  double compat[2][2] = {{1.3, 0.7}, {0.7, 1.3}};
  for (size_t v = 0; v < n; ++v) {
    mrf.AddEdge(v, (v + 1) % n, compat);
  }
  Rng rng(seed);
  for (size_t e = 0; e < extra; ++e) {
    size_t u = rng.NextBounded(static_cast<uint32_t>(n));
    size_t w = rng.NextBounded(static_cast<uint32_t>(n));
    if (u != w && (u + 1) % n != w && (w + 1) % n != u) {
      mrf.AddEdge(u, w, compat);
    }
  }
  return BpGraph::FromMrf(mrf);
}

TEST(ShardingOptionsTest, ValidatesKnobs) {
  EXPECT_TRUE(ShardingOptions{}.Validate().ok());
  EXPECT_TRUE(Opts(8).Validate().ok());

  ShardingOptions o = Opts(2);
  o.num_shards = 100000;
  EXPECT_FALSE(o.Validate().ok());

  o = Opts(2);
  o.max_exchange_rounds = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.num_shards = 0;  // rounds knob is irrelevant while sharding is off
  EXPECT_TRUE(o.Validate().ok());

  o = Opts(2);
  o.exchange_tol = -1.0;
  EXPECT_FALSE(o.Validate().ok());
  o.exchange_tol = std::nan("");
  EXPECT_FALSE(o.Validate().ok());

  o = Opts(2);
  o.balance_slack = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o.balance_slack = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o.balance_slack = std::nan("");
  EXPECT_FALSE(o.Validate().ok());

  o = Opts(2);
  o.refine_passes = 1000;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ShardingOptionsTest, EnabledThreshold) {
  EXPECT_FALSE(Opts(0).enabled());
  EXPECT_FALSE(Opts(1).enabled());
  EXPECT_TRUE(Opts(2).enabled());
}

TEST(ShardPlanTest, TotalFunctionOnRandomGraphs) {
  Rng rng(2026);
  for (int iter = 0; iter < 40; ++iter) {
    size_t n = 1 + rng.NextBounded(300);
    BpGraph g = RingGraph(n, rng.NextBounded(100), 17 + iter);
    for (uint32_t shards : {2u, 3u, 8u}) {
      ShardPlan plan = ShardPlan::Build(g, Opts(shards));
      ASSERT_TRUE(plan.Validate(n).ok())
          << "n=" << n << " shards=" << shards;
      // Every variable owned exactly once is the invariant that later
      // makes per-road observation attribution unambiguous.
      size_t total = 0;
      for (const auto& m : plan.members) total += m.size();
      EXPECT_EQ(total, n);
    }
  }
}

TEST(ShardPlanTest, RespectsBalanceCap) {
  BpGraph g = RingGraph(400);
  ShardingOptions o = Opts(4);
  o.balance_slack = 0.2;
  ShardPlan plan = ShardPlan::Build(g, o);
  size_t ideal = 100;
  size_t cap = static_cast<size_t>(
      std::ceil(static_cast<double>(ideal) * (1.0 + o.balance_slack)));
  EXPECT_LE(plan.LargestShard(), cap);
  EXPECT_EQ(plan.num_shards, 4u);
}

TEST(ShardPlanTest, DisconnectedComponentsStayWhole) {
  // Four disjoint 25-var rings across 4 shards: the component split should
  // produce zero cut edges — each ring fits a shard whole.
  PairwiseMrf mrf(100);
  double compat[2][2] = {{1.2, 0.8}, {0.8, 1.2}};
  for (size_t c = 0; c < 4; ++c) {
    for (size_t v = 0; v < 25; ++v) {
      mrf.AddEdge(25 * c + v, 25 * c + (v + 1) % 25, compat);
    }
  }
  ShardPlan plan = ShardPlan::Build(BpGraph::FromMrf(mrf), Opts(4));
  ASSERT_TRUE(plan.Validate(100).ok());
  EXPECT_EQ(plan.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(plan.CutEdgeFraction(), 0.0);
  for (const auto& m : plan.members) {
    // Each shard holds whole rings (multiples of 25).
    EXPECT_EQ(m.size() % 25, 0u);
  }
}

TEST(ShardPlanTest, RefinementDoesNotIncreaseCut) {
  BpGraph g = RingGraph(500, 200, 5);
  ShardingOptions none = Opts(4);
  none.refine_passes = 0;
  ShardingOptions refined = Opts(4);
  refined.refine_passes = 4;
  size_t cut_before = ShardPlan::Build(g, none).cut_edges;
  size_t cut_after = ShardPlan::Build(g, refined).cut_edges;
  EXPECT_LE(cut_after, cut_before);
}

TEST(ShardPlanTest, DeterministicAcrossCalls) {
  BpGraph g = RingGraph(256, 64, 9);
  ShardPlan a = ShardPlan::Build(g, Opts(8));
  ShardPlan b = ShardPlan::Build(g, Opts(8));
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(ShardPlanTest, HandlesEmptyAndTinyGraphs) {
  PairwiseMrf empty(0);
  ShardPlan plan = ShardPlan::Build(BpGraph::FromMrf(empty), Opts(4));
  EXPECT_TRUE(plan.Validate(0).ok());
  EXPECT_EQ(plan.cut_edges, 0u);

  // Fewer variables than shards: the count clamps, nothing is dropped.
  PairwiseMrf two(2);
  double compat[2][2] = {{1.1, 0.9}, {0.9, 1.1}};
  two.AddEdge(0, 1, compat);
  ShardPlan tiny = ShardPlan::Build(BpGraph::FromMrf(two), Opts(8));
  EXPECT_EQ(tiny.num_shards, 2u);
  EXPECT_TRUE(tiny.Validate(2).ok());
}

TEST(ShardPlanTest, CorrelationGraphOverloadMatchesBpGraphTopology) {
  const Dataset& ds = SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok());
  const CorrelationGraph& cg = est->correlation_graph();
  ShardPlan from_corr = ShardPlan::Build(cg, Opts(4));
  ShardPlan from_bp = ShardPlan::Build(est->trend_model().bp_graph(), Opts(4));
  // Identical topology => identical partition and statistics.
  EXPECT_EQ(from_corr.shard_of, from_bp.shard_of);
  EXPECT_EQ(from_corr.cut_edges, from_bp.cut_edges);
  EXPECT_EQ(from_corr.total_edges, cg.num_edges());
}

TEST(ShardedBpEngineTest, BuildRejectsDisabledOptions) {
  BpGraph g = RingGraph(16);
  EXPECT_FALSE(ShardedBpEngine::Build(g, Opts(0)).ok());
  EXPECT_FALSE(ShardedBpEngine::Build(g, Opts(1)).ok());
  ShardingOptions bad = Opts(2);
  bad.balance_slack = 2.0;
  EXPECT_FALSE(ShardedBpEngine::Build(g, bad).ok());
}

TEST(ShardedBpEngineTest, GhostsMatchCutEdges) {
  BpGraph g = RingGraph(120, 30, 3);
  auto engine = ShardedBpEngine::Build(g, Opts(4));
  ASSERT_TRUE(engine.ok());
  // One ghost per directed cut edge: summed over shards that is exactly
  // twice the undirected cut, and owned locals partition the graph.
  size_t ghosts = 0;
  size_t owned = 0;
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    ghosts += engine->shard_ghosts(s);
    owned += engine->shard_owned(s);
    EXPECT_EQ(engine->shard_graph(s).num_vars,
              engine->shard_owned(s) + engine->shard_ghosts(s));
  }
  EXPECT_EQ(owned, g.num_vars);
  EXPECT_EQ(ghosts, 2 * engine->plan().cut_edges);
}

TEST(ShardedBpEngineTest, NoCutEdgesConvergesInOneRound) {
  // Disconnected components, zero halo: the exchange loop must exit after
  // a single round with converged = true.
  PairwiseMrf mrf(60);
  double compat[2][2] = {{1.2, 0.8}, {0.8, 1.2}};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t v = 0; v + 1 < 20; ++v) {
      mrf.AddEdge(20 * c + v, 20 * c + v + 1, compat);
    }
  }
  auto engine = ShardedBpEngine::Build(BpGraph::FromMrf(mrf), Opts(3));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->plan().cut_edges, 0u);
  std::vector<double> pot(2 * 60);
  Rng rng(44);
  for (size_t v = 0; v < 60; ++v) {
    double p = 0.1 + 0.8 * rng.NextDouble();
    pot[2 * v] = 1.0 - p;
    pot[2 * v + 1] = p;
  }
  BpOptions bp;
  bp.max_iters = 100;
  ShardedBpResult r = engine->Infer(pot, bp);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.exchange_rounds, 1u);
  EXPECT_EQ(r.exchange_residual, 0.0);
}

TEST(ShardedBpEngineTest, EmptyGraph) {
  PairwiseMrf mrf(0);
  auto engine = ShardedBpEngine::Build(BpGraph::FromMrf(mrf), Opts(2));
  ASSERT_TRUE(engine.ok());
  ShardedBpResult r = engine->Infer({}, BpOptions{});
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.p_up.empty());
}

TEST(ShardedBpEngineTest, ClampedSeedsStayHardAcrossBoundaries) {
  // A clamped variable's marginal must stay exactly 0/1 even when its
  // information crosses a shard boundary through the halo.
  BpGraph g = RingGraph(64);
  auto engine = ShardedBpEngine::Build(g, Opts(4));
  ASSERT_TRUE(engine.ok());
  std::vector<double> pot(2 * 64, 1.0);
  pot[2 * 10] = 0.0;  // var 10 clamped up
  pot[2 * 10 + 1] = 1.0;
  pot[2 * 40] = 1.0;  // var 40 clamped down
  pot[2 * 40 + 1] = 0.0;
  BpOptions bp;
  bp.max_iters = 200;
  ShardedBpResult r = engine->Infer(pot, bp);
  EXPECT_DOUBLE_EQ(r.p_up[10], 1.0);
  EXPECT_DOUBLE_EQ(r.p_up[40], 0.0);
  // Neighbours of the clamped-up var lean up (associative compat).
  EXPECT_GT(r.p_up[11], 0.5);
  EXPECT_LT(r.p_up[41], 0.5);
}

// --- end-to-end: config/estimator threading --------------------------------

class ShardedServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto flat = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(flat.ok()) << flat.status().ToString();
    flat_ = new TrafficSpeedEstimator(std::move(flat).value());

    config.sharding.num_shards = 3;
    auto sharded = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(sharded.ok()) << sharded.status().ToString();
    sharded_ = new TrafficSpeedEstimator(std::move(sharded).value());

    auto seeds = flat_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> CleanObs(uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
    }
    return out;
  }

  static TrafficSpeedEstimator* flat_;
  static TrafficSpeedEstimator* sharded_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* ShardedServingTest::flat_ = nullptr;
TrafficSpeedEstimator* ShardedServingTest::sharded_ = nullptr;
std::vector<RoadId>* ShardedServingTest::seeds_ = nullptr;

TEST_F(ShardedServingTest, ConfigValidationGuardsShardingKnobs) {
  PipelineConfig config;
  config.sharding.num_shards = 2;
  EXPECT_TRUE(config.Validate().ok());
  config.trend.engine = TrendEngine::kGibbs;
  EXPECT_FALSE(config.Validate().ok());  // sharding requires BP
  config.trend.engine = TrendEngine::kBeliefPropagation;
  config.sharding.balance_slack = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST_F(ShardedServingTest, EngineOnlyBuiltWhenEnabled) {
  EXPECT_EQ(flat_->sharded_engine(), nullptr);
  ASSERT_NE(sharded_->sharded_engine(), nullptr);
  EXPECT_EQ(sharded_->sharded_engine()->num_shards(), 3u);
  EXPECT_TRUE(sharded_->sharded_engine()
                  ->plan()
                  .Validate(ds().net.num_roads())
                  .ok());
}

TEST_F(ShardedServingTest, ShardedEstimateMatchesFlatWithinTolerance) {
  uint64_t slot = ds().first_test_slot() + 3;
  auto flat_out = flat_->Estimate(slot, CleanObs(slot));
  auto sharded_out = sharded_->Estimate(slot, CleanObs(slot));
  ASSERT_TRUE(flat_out.ok());
  ASSERT_TRUE(sharded_out.ok());
  // Truncated production budget (max_iters 6): the documented contract is
  // agreement within the runs' own remaining convergence error — in
  // practice well under 0.05 probability on the tiny city. Hard decisions
  // on confident roads must agree.
  double max_gap = 0.0;
  for (size_t v = 0; v < flat_out->trends.p_up.size(); ++v) {
    max_gap = std::max(
        max_gap, std::abs(flat_out->trends.p_up[v] -
                          sharded_out->trends.p_up[v]));
    if (std::abs(flat_out->trends.p_up[v] - 0.5) > 0.1) {
      EXPECT_EQ(flat_out->trends.trend[v], sharded_out->trends.trend[v])
          << "road " << v;
    }
  }
  EXPECT_LT(max_gap, 0.05);
}

// The dedup-attribution regression (satellite bugfix): observations for a
// road whose correlation neighbours span two shards must land in exactly
// one owner shard — duplicated reports for such a road are resolved by the
// DedupPolicy exactly once, identically to the unsharded session, neither
// dropped nor double-counted.
TEST_F(ShardedServingTest, CutEdgeRoadDedupAttribution) {
  const ShardedBpEngine* engine = sharded_->sharded_engine();
  ASSERT_NE(engine, nullptr);
  const ShardPlan& plan = engine->plan();

  // Find a seed road with a correlation neighbour in another shard; fall
  // back to any cut-edge road observed at all. The tiny city's mined graph
  // is dense enough that the 3-way partition always cuts something.
  const CorrelationGraph& cg = sharded_->correlation_graph();
  RoadId cut_road = kInvalidRoad;
  for (RoadId r : *seeds_) {
    for (const CorrEdge& e : cg.Neighbors(r)) {
      if (plan.shard_of[e.neighbor] != plan.shard_of[r]) {
        cut_road = r;
        break;
      }
    }
    if (cut_road != kInvalidRoad) break;
  }
  ASSERT_GT(plan.cut_edges, 0u);
  ASSERT_NE(cut_road, kInvalidRoad)
      << "no seed road sits on a shard boundary; pick more seeds";

  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  opts.dedup = DedupPolicy::kMean;
  auto sharded_session = ServingSession::Create(sharded_, opts);
  auto flat_session = ServingSession::Create(flat_, opts);
  ASSERT_TRUE(sharded_session.ok());
  ASSERT_TRUE(flat_session.ok());

  uint64_t slot = ds().first_test_slot() + 1;
  std::vector<SeedSpeed> obs = CleanObs(slot);
  // Duplicate the cut-edge road's report (a second worker re-reporting a
  // slightly different speed) plus one malformed entry kFilter must drop.
  double base = 0.0;
  for (const SeedSpeed& s : obs) {
    if (s.road == cut_road) base = s.speed_kmh;
  }
  obs.push_back({cut_road, base + 6.0});
  obs.push_back({cut_road, std::nan("")});

  auto sr = sharded_session->Ingest(slot, obs);
  auto fr = flat_session->Ingest(slot, obs);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();
  ASSERT_TRUE(fr.ok());

  // Exactly one survivor for the duplicated road, in both worlds: the NaN
  // filtered, the duplicate deduplicated, the road itself still used.
  EXPECT_EQ(sr->observations_used, seeds_->size());
  EXPECT_EQ(sr->observations_used, fr->observations_used);
  EXPECT_EQ(sr->observations_dropped, 2u);
  ServingStats ss = sharded_session->stats();
  ServingStats fs = flat_session->stats();
  EXPECT_EQ(ss.observations_filtered, 1u);
  EXPECT_EQ(ss.observations_deduplicated, 1u);
  EXPECT_EQ(ss.observations_filtered, fs.observations_filtered);
  EXPECT_EQ(ss.observations_deduplicated, fs.observations_deduplicated);

  // And the cut-edge road's estimate agrees with the unsharded session's —
  // the observation influenced exactly one owner shard, not zero, not two.
  const auto& s_speeds = sr->monitor.estimate.speeds.speed_kmh;
  const auto& f_speeds = fr->monitor.estimate.speeds.speed_kmh;
  ASSERT_EQ(s_speeds.size(), f_speeds.size());
  EXPECT_NEAR(s_speeds[cut_road], f_speeds[cut_road],
              0.05 * f_speeds[cut_road]);
}

}  // namespace
}  // namespace trendspeed
