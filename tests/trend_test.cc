#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "test_util.h"
#include "trend/belief_propagation.h"
#include "trend/exact.h"
#include "trend/factor_graph.h"
#include "trend/gibbs.h"
#include "trend/icm.h"
#include "trend/trend_model.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

// Attractive coupling table: psi(same) = s, psi(diff) = 1/s.
void Attractive(double s, double out[2][2]) {
  out[0][0] = out[1][1] = s;
  out[0][1] = out[1][0] = 1.0 / s;
}

// Random small MRF for cross-engine comparisons.
PairwiseMrf RandomMrf(size_t n, double edge_prob, Rng* rng) {
  PairwiseMrf mrf(n);
  for (size_t v = 0; v < n; ++v) {
    mrf.SetPriorUp(v, rng->Uniform(0.2, 0.8));
  }
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (!rng->NextBool(edge_prob)) continue;
      double compat[2][2];
      Attractive(rng->Uniform(1.2, 3.0), compat);
      mrf.AddEdge(u, v, compat);
    }
  }
  return mrf;
}

TEST(PairwiseMrfTest, PotentialAndEvidence) {
  PairwiseMrf mrf(3);
  mrf.SetPriorUp(0, 0.7);
  EXPECT_NEAR(mrf.NodePotential(0, 1), 0.7, 1e-6);
  EXPECT_NEAR(mrf.NodePotential(0, 0), 0.3, 1e-6);
  EXPECT_FALSE(mrf.IsClamped(0));
  mrf.Clamp(0, 1);
  EXPECT_TRUE(mrf.IsClamped(0));
  EXPECT_EQ(mrf.ClampedState(0), 1);
  EXPECT_DOUBLE_EQ(mrf.EffectivePotential(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(mrf.EffectivePotential(0, 1), 1.0);
  EXPECT_EQ(mrf.num_clamped(), 1u);
  mrf.ClearEvidence();
  EXPECT_EQ(mrf.num_clamped(), 0u);
  EXPECT_FALSE(mrf.IsClamped(0));
}

TEST(PairwiseMrfTest, PriorClipping) {
  PairwiseMrf mrf(1);
  mrf.SetPriorUp(0, 0.0);
  EXPECT_GT(mrf.NodePotential(0, 1), 0.0);
  mrf.SetPriorUp(0, 1.0);
  EXPECT_GT(mrf.NodePotential(0, 0), 0.0);
}

TEST(PairwiseMrfTest, LogScoreMatchesHandComputation) {
  PairwiseMrf mrf(2);
  mrf.SetNodePotential(0, 0.4, 0.6);
  mrf.SetNodePotential(1, 0.5, 0.5);
  double compat[2][2];
  Attractive(2.0, compat);
  mrf.AddEdge(0, 1, compat);
  // State (1, 1): phi0(1)*phi1(1)*psi(1,1) = 0.6*0.5*2. Potentials are
  // stored as floats, hence the loose tolerance.
  EXPECT_NEAR(mrf.LogScore({1, 1}), std::log(0.6 * 0.5 * 2.0), 1e-6);
  // State (1, 0): 0.6*0.5*0.5.
  EXPECT_NEAR(mrf.LogScore({1, 0}), std::log(0.6 * 0.5 * 0.5), 1e-6);
  mrf.Clamp(0, 1);
  EXPECT_LT(mrf.LogScore({0, 1}), -1e200);  // violates evidence
}

TEST(ExactTest, SingleNodeMatchesPrior) {
  PairwiseMrf mrf(1);
  mrf.SetPriorUp(0, 0.7);
  auto p = InferMarginalsExact(mrf);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR((*p)[0], 0.7, 1e-6);
}

TEST(ExactTest, TwoNodeCoupling) {
  PairwiseMrf mrf(2);
  mrf.SetPriorUp(0, 0.5);
  mrf.SetPriorUp(1, 0.5);
  double compat[2][2];
  Attractive(3.0, compat);
  mrf.AddEdge(0, 1, compat);
  mrf.Clamp(0, 1);
  auto p = InferMarginalsExact(mrf);
  ASSERT_TRUE(p.ok());
  // P(x1 = up | x0 = up) = 3 / (3 + 1/3) = 0.9.
  EXPECT_NEAR((*p)[1], 0.9, 1e-6);
  EXPECT_DOUBLE_EQ((*p)[0], 1.0);
}

TEST(ExactTest, RejectsTooManyVariables) {
  PairwiseMrf mrf(kMaxExactVars + 1);
  EXPECT_FALSE(InferMarginalsExact(mrf).ok());
}

TEST(BpTest, ExactOnTrees) {
  // Chain of 6 with random priors/couplings: BP must match enumeration.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    PairwiseMrf mrf(6);
    for (size_t v = 0; v < 6; ++v) mrf.SetPriorUp(v, rng.Uniform(0.1, 0.9));
    for (size_t v = 0; v + 1 < 6; ++v) {
      double compat[2][2];
      Attractive(rng.Uniform(1.1, 4.0), compat);
      mrf.AddEdge(v, v + 1, compat);
    }
    mrf.Clamp(0, trial % 2);
    auto exact = InferMarginalsExact(mrf);
    ASSERT_TRUE(exact.ok());
    BpOptions full;
    full.max_iters = 200;
    full.damping = 0.0;
    full.tol = 1e-8;
    BpResult bp = InferMarginalsBp(mrf, full);
    EXPECT_TRUE(bp.converged);
    for (size_t v = 0; v < 6; ++v) {
      EXPECT_NEAR(bp.p_up[v], (*exact)[v], 1e-4) << "trial " << trial
                                                 << " var " << v;
    }
  }
}

TEST(BpTest, UsefulOnLoopyGraphs) {
  // Loopy BP is approximate and over-confident on dense attractive loops;
  // what matters downstream is that it lands on the right side of 0.5 for
  // every marginal the exact posterior is confident about, and stays within
  // a coarse band elsewhere.
  Rng rng(7);
  size_t confident = 0, agree = 0;
  for (int trial = 0; trial < 8; ++trial) {
    PairwiseMrf mrf = RandomMrf(10, 0.3, &rng);
    mrf.Clamp(0, 1);
    auto exact = InferMarginalsExact(mrf);
    ASSERT_TRUE(exact.ok());
    BpResult bp = InferMarginalsBp(mrf);
    for (size_t v = 0; v < 10; ++v) {
      EXPECT_NEAR(bp.p_up[v], (*exact)[v], 0.35) << "trial " << trial;
      if (std::fabs((*exact)[v] - 0.5) > 0.2) {
        ++confident;
        if ((bp.p_up[v] >= 0.5) == ((*exact)[v] >= 0.5)) ++agree;
      }
    }
  }
  ASSERT_GT(confident, 20u);
  EXPECT_GT(static_cast<double>(agree) / confident, 0.95);
}

TEST(BpTest, ClampedNodesReportHardMarginals) {
  Rng rng(9);
  PairwiseMrf mrf = RandomMrf(8, 0.4, &rng);
  mrf.Clamp(2, 0);
  mrf.Clamp(5, 1);
  BpResult bp = InferMarginalsBp(mrf);
  EXPECT_DOUBLE_EQ(bp.p_up[2], 0.0);
  EXPECT_DOUBLE_EQ(bp.p_up[5], 1.0);
}

TEST(BpTest, IsolatedNodeKeepsPrior) {
  PairwiseMrf mrf(2);
  mrf.SetPriorUp(0, 0.8);
  mrf.SetPriorUp(1, 0.3);
  BpResult bp = InferMarginalsBp(mrf);
  EXPECT_NEAR(bp.p_up[0], 0.8, 1e-6);
  EXPECT_NEAR(bp.p_up[1], 0.3, 1e-6);
}

TEST(BpTest, EvidencePropagatesAlongChain) {
  // Strongly coupled chain, uniform priors: clamping one end pulls all.
  PairwiseMrf mrf(5);
  for (size_t v = 0; v < 5; ++v) mrf.SetPriorUp(v, 0.5);
  double compat[2][2];
  Attractive(4.0, compat);
  for (size_t v = 0; v + 1 < 5; ++v) mrf.AddEdge(v, v + 1, compat);
  mrf.Clamp(0, 1);
  BpResult bp = InferMarginalsBp(mrf);
  double prev = 1.0;
  for (size_t v = 1; v < 5; ++v) {
    EXPECT_GT(bp.p_up[v], 0.5);
    EXPECT_LE(bp.p_up[v], prev + 1e-9);  // influence decays with distance
    prev = bp.p_up[v];
  }
}

// Effective potentials in the flat layout InferMarginalsBpFlat consumes.
std::vector<double> FlatPotentials(const PairwiseMrf& mrf) {
  std::vector<double> pot(2 * mrf.num_vars());
  for (size_t v = 0; v < mrf.num_vars(); ++v) {
    pot[2 * v] = mrf.EffectivePotential(v, 0);
    pot[2 * v + 1] = mrf.EffectivePotential(v, 1);
  }
  return pot;
}

TEST(BpWarmStartTest, FirstStatefulRunIsBitwiseColdAndSeedsState) {
  Rng rng(21);
  PairwiseMrf mrf = RandomMrf(12, 0.3, &rng);
  mrf.Clamp(0, 1);
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot = FlatPotentials(mrf);

  BpResult cold = InferMarginalsBpFlat(graph, pot);
  BpState state;
  BpResult seeded = InferMarginalsBpFlat(graph, pot, {}, &state);
  EXPECT_FALSE(seeded.warm);
  EXPECT_EQ(seeded.p_up, cold.p_up);  // bitwise
  EXPECT_EQ(seeded.iterations, cold.iterations);
  EXPECT_TRUE(state.valid);
  EXPECT_EQ(state.last_pot, pot);
}

TEST(BpWarmStartTest, UnchangedPotentialsNeedNoSweeps) {
  Rng rng(23);
  PairwiseMrf mrf = RandomMrf(12, 0.3, &rng);
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot = FlatPotentials(mrf);

  BpState state;
  BpResult cold = InferMarginalsBpFlat(graph, pot, {}, &state);
  BpResult warm = InferMarginalsBpFlat(graph, pot, {}, &state);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.active_vars, 0u);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_EQ(warm.message_updates, 0u);
  EXPECT_TRUE(warm.converged);
  // Beliefs recomputed from the stored fixed point match the cold run.
  EXPECT_EQ(warm.p_up, cold.p_up);
}

TEST(BpWarmStartTest, PerturbedPotentialsTrackColdWithinTolerance) {
  Rng rng(25);
  // The 10x-tol closeness bound is stated against a *converged* cold run;
  // the truncated production default (max_iters 6) can stop short of the
  // fixed point, and no warm schedule can match an arbitrary truncation
  // state. Give both schedules budget to converge.
  BpOptions opts;
  opts.max_iters = 200;
  for (int trial = 0; trial < 6; ++trial) {
    PairwiseMrf mrf = RandomMrf(20, 0.25, &rng);
    BpGraph graph = BpGraph::FromMrf(mrf);
    std::vector<double> pot = FlatPotentials(mrf);

    BpState state;
    InferMarginalsBpFlat(graph, pot, opts, &state);  // seed from slot t
    // Slot t+1: a handful of variables move, most stay put.
    std::vector<double> next = pot;
    for (int k = 0; k < 4; ++k) {
      size_t v = static_cast<size_t>(rng.Uniform(0.0, 20.0));
      double p = rng.Uniform(0.15, 0.85);
      next[2 * v] = 1.0 - p;
      next[2 * v + 1] = p;
    }
    BpResult cold = InferMarginalsBpFlat(graph, next, opts);
    ASSERT_TRUE(cold.converged) << "trial " << trial;
    BpResult warm = InferMarginalsBpFlat(graph, next, opts, &state);
    EXPECT_TRUE(warm.warm);
    EXPECT_LT(warm.active_vars, graph.num_vars) << "trial " << trial;
    for (size_t v = 0; v < graph.num_vars; ++v) {
      EXPECT_NEAR(warm.p_up[v], cold.p_up[v], 10.0 * opts.tol)
          << "trial " << trial << " var " << v;
    }
  }
}

TEST(BpWarmStartTest, InvalidatedStateFallsBackToBitwiseCold) {
  Rng rng(27);
  PairwiseMrf mrf = RandomMrf(12, 0.3, &rng);
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot = FlatPotentials(mrf);

  BpState state;
  InferMarginalsBpFlat(graph, pot, {}, &state);
  state.Invalidate();
  BpResult cold = InferMarginalsBpFlat(graph, pot);
  BpResult after = InferMarginalsBpFlat(graph, pot, {}, &state);
  EXPECT_FALSE(after.warm);
  EXPECT_EQ(after.p_up, cold.p_up);  // bitwise
  EXPECT_TRUE(state.valid);  // re-seeded for the next slot
}

TEST(GibbsTest, MatchesExactOnSmallGraphs) {
  Rng rng(11);
  PairwiseMrf mrf = RandomMrf(8, 0.35, &rng);
  mrf.Clamp(1, 1);
  auto exact = InferMarginalsExact(mrf);
  ASSERT_TRUE(exact.ok());
  GibbsOptions opts;
  opts.burn_in_sweeps = 500;
  opts.sample_sweeps = 6000;
  GibbsResult gibbs = InferMarginalsGibbs(mrf, opts);
  for (size_t v = 0; v < 8; ++v) {
    EXPECT_NEAR(gibbs.p_up[v], (*exact)[v], 0.05) << "var " << v;
  }
}

TEST(GibbsTest, RespectsClamps) {
  Rng rng(13);
  PairwiseMrf mrf = RandomMrf(6, 0.4, &rng);
  mrf.Clamp(0, 0);
  GibbsResult gibbs = InferMarginalsGibbs(mrf);
  EXPECT_DOUBLE_EQ(gibbs.p_up[0], 0.0);
}

TEST(IcmTest, ConvergesToLocalOptimum) {
  Rng rng(17);
  PairwiseMrf mrf = RandomMrf(12, 0.3, &rng);
  mrf.Clamp(0, 1);
  IcmResult icm = InferMapIcm(mrf);
  EXPECT_TRUE(icm.converged);
  EXPECT_EQ(icm.state[0], 1);
  // Local optimality: flipping any single free variable cannot raise the
  // joint score.
  double base = mrf.LogScore(icm.state);
  for (size_t v = 1; v < 12; ++v) {
    std::vector<int> flipped = icm.state;
    flipped[v] = 1 - flipped[v];
    EXPECT_LE(mrf.LogScore(flipped), base + 1e-9) << "var " << v;
  }
}

TEST(TrendModelTest, SeedsDriveNeighbourTrends) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions copts;
  copts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, copts);
  ASSERT_TRUE(graph.ok());
  TrendModelOptions topts;
  TrendModel model(&*graph, &db, topts);
  // Clamp several spread-out seeds to "down" — since co-trend history is
  // perfectly aligned, inferred trends should go down around them.
  std::vector<SeedTrend> seeds = {{0, -1}, {10, -1}, {20, -1}};
  auto est = model.Infer(/*slot=*/3, seeds);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], -1);
  size_t down = 0;
  for (int t : est->trend) {
    if (t == -1) ++down;
  }
  EXPECT_GT(down, net.num_roads() / 2);
}

TEST(TrendModelTest, AllEnginesAgreeOnStrongEvidence) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions copts;
  copts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, copts);
  ASSERT_TRUE(graph.ok());
  std::vector<SeedTrend> seeds = {{0, +1}, {5, +1}, {15, +1}, {30, +1}};
  std::vector<int> reference;
  for (TrendEngine engine : {TrendEngine::kBeliefPropagation,
                             TrendEngine::kGibbs, TrendEngine::kIcm}) {
    TrendModelOptions topts;
    topts.engine = engine;
    TrendModel model(&*graph, &db, topts);
    auto est = model.Infer(2, seeds);
    ASSERT_TRUE(est.ok());
    if (reference.empty()) {
      reference = est->trend;
    } else {
      size_t agree = 0;
      for (size_t v = 0; v < reference.size(); ++v) {
        if (reference[v] == est->trend[v]) ++agree;
      }
      EXPECT_GT(static_cast<double>(agree) / reference.size(), 0.9)
          << TrendEngineName(engine);
    }
  }
}

TEST(TrendModelTest, RejectsBadSeeds) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  auto graph = CorrelationGraph::Build(net, db, {});
  ASSERT_TRUE(graph.ok());
  TrendModel model(&*graph, &db, {});
  EXPECT_FALSE(model.Infer(0, {{9999, 1}}).ok());
  EXPECT_FALSE(model.Infer(0, {{0, 2}}).ok());
}

TEST(TrendModelTest, PriorOnlyIgnoresGraph) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  auto graph = CorrelationGraph::Build(net, db, {});
  ASSERT_TRUE(graph.ok());
  TrendModelOptions topts;
  topts.engine = TrendEngine::kPriorOnly;
  TrendModel model(&*graph, &db, topts);
  auto est = model.Infer(2, {{0, -1}});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[0], -1);  // the clamp itself
  // Non-seed roads follow the historical prior: slot 2 is an "up" slot in
  // the alternating history.
  EXPECT_EQ(est->trend[5], +1);
}

}  // namespace
}  // namespace trendspeed
