// Tests for the read-side product layer (src/product): the time-of-day
// profile store (fold/merge/blend/export), the version-invalidated route-ETA
// cache — including the seeded property that cached answers are bitwise
// identical to uncached FastestRoute — the CityProducts glue over a live
// ServingSession, the detached-products serving-equivalence pin, and the
// per-city isolation of products under MultiCityServer.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/multi_city.h"
#include "core/routing.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "obs/catalog.h"
#include "product/products.h"
#include "product/profile.h"
#include "product/route_eta.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;
using testing_util::SmallGrid;

ProductOptions TestOptions() {
  ProductOptions opts;
  opts.enabled = true;
  opts.profile_buckets_per_day = 24;
  opts.profile_min_samples = 2;
  opts.blend_full_stale_slots = 4;
  opts.eta_cache_capacity = 64;
  return opts;
}

SpeedSnapshot MakeSnapshot(uint64_t slot, uint64_t version,
                           uint32_t stale_slots,
                           std::vector<double> speeds) {
  SpeedSnapshot snap;
  snap.slot = slot;
  snap.version = version;
  snap.stale_slots = stale_slots;
  snap.stale = stale_slots > 0;
  snap.speed_kmh = std::move(speeds);
  snap.deviation.assign(snap.speed_kmh.size(), 0.0);
  double sum = 0.0;
  for (double v : snap.speed_kmh) sum += v;
  snap.mean_speed_kmh =
      snap.speed_kmh.empty() ? 0.0 : sum / snap.speed_kmh.size();
  return snap;
}

// ---------------------------------------------------------------------------
// SpeedProfileStore.
// ---------------------------------------------------------------------------

TEST(SpeedProfileStoreTest, CreateValidates) {
  EXPECT_FALSE(SpeedProfileStore::Create(0, 144, TestOptions()).ok());
  EXPECT_FALSE(SpeedProfileStore::Create(4, 0, TestOptions()).ok());
  ProductOptions bad = TestOptions();
  bad.profile_buckets_per_day = 0;
  EXPECT_FALSE(SpeedProfileStore::Create(4, 144, bad).ok());
  // A bucket grid finer than the slot grid can never fill.
  bad = TestOptions();
  bad.profile_buckets_per_day = 288;
  EXPECT_FALSE(SpeedProfileStore::Create(4, 144, bad).ok());
  EXPECT_TRUE(SpeedProfileStore::Create(4, 144, TestOptions()).ok());
}

TEST(SpeedProfileStoreTest, BucketOfMapsSlotOfDay) {
  auto store = SpeedProfileStore::Create(1, 144, TestOptions());
  ASSERT_TRUE(store.ok());
  // 144 slots over 24 buckets: 6 slots per bucket, wrapping daily.
  EXPECT_EQ(store->BucketOf(0), 0u);
  EXPECT_EQ(store->BucketOf(5), 0u);
  EXPECT_EQ(store->BucketOf(6), 1u);
  EXPECT_EQ(store->BucketOf(143), 23u);
  EXPECT_EQ(store->BucketOf(144), 0u);  // next day, same time-of-day
  EXPECT_EQ(store->BucketOf(144 + 6), 1u);
}

TEST(SpeedProfileStoreTest, FoldsFreshSkipsStaleAndDuplicates) {
  auto store = SpeedProfileStore::Create(2, 144, TestOptions());
  ASSERT_TRUE(store.ok());

  EXPECT_TRUE(store->Fold(MakeSnapshot(0, 1, 0, {50.0, 30.0})));
  EXPECT_EQ(store->folds(), 1u);
  // Same version again (over-polling): skipped.
  EXPECT_FALSE(store->Fold(MakeSnapshot(0, 1, 0, {50.0, 30.0})));
  EXPECT_EQ(store->folds(), 1u);
  // Stale publish: skipped and counted, but the version advances so the
  // next fresh publish still folds.
  EXPECT_FALSE(store->Fold(MakeSnapshot(1, 2, 1, {50.0, 30.0})));
  EXPECT_EQ(store->stale_skips(), 1u);
  // Same day-bucket (slot 2 is still bucket 0), fresh: running mean.
  EXPECT_TRUE(store->Fold(MakeSnapshot(2, 3, 0, {70.0, 10.0})));
  EXPECT_EQ(store->folds(), 2u);
  EXPECT_EQ(store->cell(0, 0).count, 2u);
  EXPECT_DOUBLE_EQ(store->cell(0, 0).mean_kmh, 60.0);
  EXPECT_DOUBLE_EQ(store->cell(1, 0).mean_kmh, 20.0);
  // Nothing leaked into other buckets.
  EXPECT_EQ(store->cell(0, 1).count, 0u);
  // A snapshot shaped for another network never folds.
  EXPECT_FALSE(store->Fold(MakeSnapshot(3, 4, 0, {1.0, 2.0, 3.0})));
  // An unpublished (version 0) snapshot never folds.
  EXPECT_FALSE(store->Fold(MakeSnapshot(0, 0, 0, {1.0, 2.0})));
}

TEST(SpeedProfileStoreTest, BlendQueryProvenance) {
  ProductOptions opts = TestOptions();  // min_samples=2, full ramp at 4
  auto store = SpeedProfileStore::Create(1, 144, opts);
  ASSERT_TRUE(store.ok());

  // Fresh snapshot: always the snapshot speed, kFresh, profile untouched.
  auto fresh = store->BlendQuery(MakeSnapshot(0, 1, 0, {40.0}), 0);
  EXPECT_EQ(fresh.provenance, SpeedProvenance::kFresh);
  EXPECT_DOUBLE_EQ(fresh.speed_kmh, 40.0);

  // Stale with an immature cell: carried forward as-is.
  auto cf = store->BlendQuery(MakeSnapshot(0, 2, 2, {40.0}), 0);
  EXPECT_EQ(cf.provenance, SpeedProvenance::kCarriedForward);
  EXPECT_DOUBLE_EQ(cf.speed_kmh, 40.0);

  // Mature the bucket-0 cell at 60 km/h.
  ASSERT_TRUE(store->Fold(MakeSnapshot(0, 3, 0, {60.0})));
  ASSERT_TRUE(store->Fold(MakeSnapshot(1, 4, 0, {60.0})));

  // stale_slots=2 of 4: w=0.5, halfway from snapshot (40) to profile (60).
  auto half = store->BlendQuery(MakeSnapshot(2, 5, 2, {40.0}), 0);
  EXPECT_EQ(half.provenance, SpeedProvenance::kProfileBlend);
  EXPECT_DOUBLE_EQ(half.speed_kmh, 50.0);

  // stale_slots >= ramp: the profile fully replaces the stale field.
  auto full = store->BlendQuery(MakeSnapshot(3, 6, 9, {40.0}), 0);
  EXPECT_EQ(full.provenance, SpeedProvenance::kProfileBlend);
  EXPECT_DOUBLE_EQ(full.speed_kmh, 60.0);
}

TEST(SpeedProfileStoreTest, MergeIsCountWeighted) {
  auto a = SpeedProfileStore::Create(1, 144, TestOptions());
  auto b = SpeedProfileStore::Create(1, 144, TestOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Fold(MakeSnapshot(0, 1, 0, {30.0})));
  ASSERT_TRUE(b->Fold(MakeSnapshot(1, 1, 0, {60.0})));
  ASSERT_TRUE(b->Fold(MakeSnapshot(2, 2, 0, {60.0})));
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->cell(0, 0).count, 3u);
  EXPECT_DOUBLE_EQ(a->cell(0, 0).mean_kmh, 50.0);  // (30 + 60 + 60) / 3
  EXPECT_EQ(a->folds(), 3u);

  auto other_shape = SpeedProfileStore::Create(2, 144, TestOptions());
  ASSERT_TRUE(other_shape.ok());
  EXPECT_FALSE(a->Merge(*other_shape).ok());
}

TEST(SpeedProfileStoreTest, ExportRoundTripsAndLoadsStrictly) {
  ProductOptions opts = TestOptions();
  auto store = SpeedProfileStore::Create(3, 144, opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Fold(MakeSnapshot(7, 1, 0, {30.0, 40.0, 50.0})));
  ASSERT_TRUE(store->Fold(MakeSnapshot(80, 2, 0, {35.0, 45.0, 55.0})));

  std::string bytes = EncodeSpeedProfile(*store);
  auto loaded = DecodeSpeedProfile(bytes, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_roads(), 3u);
  EXPECT_EQ(loaded->slots_per_day(), 144u);
  EXPECT_EQ(loaded->last_version(), 2u);
  EXPECT_EQ(loaded->folds(), 2u);
  for (RoadId r = 0; r < 3; ++r) {
    for (uint32_t bkt = 0; bkt < 24; ++bkt) {
      EXPECT_EQ(loaded->cell(r, bkt).count, store->cell(r, bkt).count);
      EXPECT_DOUBLE_EQ(loaded->cell(r, bkt).mean_kmh,
                       store->cell(r, bkt).mean_kmh);
    }
  }
  // A reloaded store keeps folding where the original left off.
  EXPECT_FALSE(loaded->Fold(MakeSnapshot(7, 2, 0, {1.0, 1.0, 1.0})));
  EXPECT_TRUE(loaded->Fold(MakeSnapshot(9, 3, 0, {1.0, 1.0, 1.0})));

  // Strict failures: truncation at every prefix, trailing garbage, and a
  // bucket-grid mismatch with the loading options.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    EXPECT_FALSE(DecodeSpeedProfile(bytes.substr(0, cut), opts).ok());
  }
  EXPECT_FALSE(DecodeSpeedProfile(bytes + "x", opts).ok());
  ProductOptions other = opts;
  other.profile_buckets_per_day = 12;
  EXPECT_FALSE(DecodeSpeedProfile(bytes, other).ok());
}

// ---------------------------------------------------------------------------
// RouteEtaCache.
// ---------------------------------------------------------------------------

std::vector<double> RandomSpeeds(const RoadNetwork& net, Rng* rng) {
  std::vector<double> speeds(net.num_roads());
  for (double& v : speeds) v = rng->Uniform(5.0, 90.0);
  return speeds;
}

TEST(RouteEtaCacheTest, CreateValidates) {
  RoadNetwork net = SmallGrid();
  ProductOptions opts = TestOptions();
  EXPECT_TRUE(RouteEtaCache::Create(net, opts, nullptr).ok());
  opts.eta_cache_capacity = 0;
  EXPECT_FALSE(RouteEtaCache::Create(net, opts, nullptr).ok());
  // A profile shaped for a different network is refused up front.
  auto wrong = SpeedProfileStore::Create(net.num_roads() + 1, 144,
                                         TestOptions());
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(RouteEtaCache::Create(net, TestOptions(), &*wrong).ok());
}

// The load-bearing property: for any snapshot and any endpoints, the cached
// answer (hit or miss) is bitwise identical to an uncached FastestRoute
// against the same snapshot. The cache may never change a route.
TEST(RouteEtaCacheTest, PropertyCachedEqualsUncachedBitwise) {
  RoadNetwork net = SmallGrid();
  auto cache = RouteEtaCache::Create(net, TestOptions(), nullptr);
  ASSERT_TRUE(cache.ok());
  Rng rng(20260808);

  uint64_t version = 0;
  for (int field = 0; field < 8; ++field) {
    const uint32_t stale_slots = field % 3 == 2 ? 1 + field / 3 : 0;
    SpeedSnapshot snap = MakeSnapshot(
        /*slot=*/field, ++version, stale_slots, RandomSpeeds(net, &rng));
    for (int q = 0; q < 40; ++q) {
      NodeId from = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
      NodeId to = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
      auto cached = cache->Eta(snap, from, to);
      auto direct = FastestRoute(net, snap, from, to);
      ASSERT_EQ(cached.ok(), direct.ok())
          << "field " << field << " query " << from << "->" << to;
      if (!cached.ok()) continue;
      EXPECT_EQ(cached->route.roads, direct->roads);
      // Bitwise, not approximate: both sides priced the same field.
      EXPECT_EQ(cached->route.travel_seconds, direct->travel_seconds);
      EXPECT_EQ(cached->route.length_m, direct->length_m);
      EXPECT_EQ(cached->route.stale, direct->stale);
      EXPECT_EQ(cached->route.stale_slots, direct->stale_slots);
      EXPECT_EQ(cached->route.slot, direct->slot);
      EXPECT_EQ(cached->snapshot_version, snap.version);
    }
  }
  // With 40 queries over 16 nodes per field, repeats are guaranteed.
  EXPECT_GT(cache->stats().hits, 0u);
  EXPECT_GT(cache->stats().misses, 0u);
}

TEST(RouteEtaCacheTest, HitsAreServedFromCacheAndInvalidatedByVersion) {
  RoadNetwork net = SmallGrid();
  auto cache = RouteEtaCache::Create(net, TestOptions(), nullptr);
  ASSERT_TRUE(cache.ok());
  Rng rng(7);
  SpeedSnapshot snap = MakeSnapshot(0, 1, 0, RandomSpeeds(net, &rng));

  auto miss = cache->Eta(snap, 0, 15);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->cache_hit);
  auto hit = cache->Eta(snap, 0, 15);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->route.roads, miss->route.roads);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->size(), 1u);

  // New version: the entry is dead, the query re-routes on the new field.
  SpeedSnapshot next = MakeSnapshot(1, 2, 0, RandomSpeeds(net, &rng));
  auto fresh = cache->Eta(next, 0, 15);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  EXPECT_EQ(fresh->snapshot_version, 2u);
  EXPECT_EQ(cache->stats().invalidations, 1u);
}

TEST(RouteEtaCacheTest, StaleSnapshotNeverProducesUnflaggedEta) {
  RoadNetwork net = SmallGrid();
  auto cache = RouteEtaCache::Create(net, TestOptions(), nullptr);
  ASSERT_TRUE(cache.ok());
  Rng rng(11);
  SpeedSnapshot stale = MakeSnapshot(5, 3, 2, RandomSpeeds(net, &rng));
  for (int pass = 0; pass < 2; ++pass) {  // miss, then hit
    auto eta = cache->Eta(stale, 0, 15);
    ASSERT_TRUE(eta.ok());
    EXPECT_TRUE(eta->route.stale);
    EXPECT_EQ(eta->route.stale_slots, 2u);
    EXPECT_NE(eta->provenance, SpeedProvenance::kFresh);
  }
}

TEST(RouteEtaCacheTest, DegenerateQueriesAreDefined) {
  RoadNetwork net = SmallGrid();
  auto cache = RouteEtaCache::Create(net, TestOptions(), nullptr);
  ASSERT_TRUE(cache.ok());
  SpeedSnapshot snap =
      MakeSnapshot(0, 1, 0, std::vector<double>(net.num_roads(), 40.0));
  // from == to: an empty route with zero seconds — not NaN, not an error —
  // and it caches like any other answer.
  for (int pass = 0; pass < 2; ++pass) {
    auto eta = cache->Eta(snap, 7, 7);
    ASSERT_TRUE(eta.ok());
    EXPECT_TRUE(eta->route.roads.empty());
    EXPECT_EQ(eta->route.travel_seconds, 0.0);
    EXPECT_EQ(eta->route.length_m, 0.0);
    EXPECT_TRUE(std::isfinite(eta->route.travel_seconds));
    EXPECT_EQ(pass == 1, eta->cache_hit);
  }
  // Out-of-network endpoints and empty snapshots are errors, not UB.
  EXPECT_FALSE(cache->Eta(snap, 0, 999).ok());
  SpeedSnapshot unpublished;
  EXPECT_FALSE(cache->Eta(unpublished, 0, 1).ok());
}

TEST(RouteEtaCacheTest, CapacityBoundsEntries) {
  RoadNetwork net = SmallGrid();
  ProductOptions opts = TestOptions();
  opts.eta_cache_capacity = 4;
  auto cache = RouteEtaCache::Create(net, opts, nullptr);
  ASSERT_TRUE(cache.ok());
  SpeedSnapshot snap =
      MakeSnapshot(0, 1, 0, std::vector<double>(net.num_roads(), 40.0));
  for (NodeId to = 0; to < 10; ++to) {
    ASSERT_TRUE(cache->Eta(snap, 0, to).ok());
    EXPECT_LE(cache->size(), 4u);
  }
}

TEST(RouteEtaCacheTest, BlendsStaleFieldThroughAttachedProfile) {
  RoadNetwork net = SmallGrid();
  ProductOptions opts = TestOptions();  // min_samples=2, ramp 4
  auto profile = SpeedProfileStore::Create(net.num_roads(), 144, opts);
  ASSERT_TRUE(profile.ok());
  // Mature every cell of bucket 0 at 60 km/h.
  std::vector<double> sixty(net.num_roads(), 60.0);
  ASSERT_TRUE(profile->Fold(MakeSnapshot(0, 1, 0, sixty)));
  ASSERT_TRUE(profile->Fold(MakeSnapshot(1, 2, 0, sixty)));

  auto cache = RouteEtaCache::Create(net, opts, &*profile);
  ASSERT_TRUE(cache.ok());

  // A fully-stale 30 km/h field blends to the 60 km/h profile (w=1): the
  // blended ETA must match routing on the profile speeds, and the blend is
  // flagged as such.
  SpeedSnapshot stale =
      MakeSnapshot(2, 3, 8, std::vector<double>(net.num_roads(), 30.0));
  auto blended = cache->Eta(stale, 0, 15);
  ASSERT_TRUE(blended.ok());
  EXPECT_EQ(blended->provenance, SpeedProvenance::kProfileBlend);
  EXPECT_TRUE(blended->route.stale);  // blended is still stale-derived
  auto on_profile = FastestRoute(net, sixty, 0, 15);
  ASSERT_TRUE(on_profile.ok());
  EXPECT_EQ(blended->route.roads, on_profile->roads);
  EXPECT_EQ(blended->route.travel_seconds, on_profile->travel_seconds);
}

// ---------------------------------------------------------------------------
// CityProducts over a live ServingSession.
// ---------------------------------------------------------------------------

class ProductServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> CleanObs(uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
    }
    return out;
  }

  ServingOptions ProductServingOptions() {
    ServingOptions opts;
    opts.publish_snapshots = true;
    opts.products = TestOptions();
    return opts;
  }

  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* ProductServingTest::estimator_ = nullptr;
std::vector<RoadId>* ProductServingTest::seeds_ = nullptr;

TEST_F(ProductServingTest, OptionsValidation) {
  // products.enabled without publish_snapshots: nothing to read — refused.
  ServingOptions opts;
  opts.products = TestOptions();
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts.publish_snapshots = true;
  EXPECT_TRUE(ServingSession::Create(estimator_, opts).ok());
  // Degenerate knobs are refused at the config layer.
  opts.products.profile_buckets_per_day = 0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts.products.profile_buckets_per_day = 24;
  opts.products.eta_cache_capacity = 0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  // Disabled products ignore the other knobs entirely.
  ServingOptions off;
  off.products.eta_cache_capacity = 0;
  EXPECT_TRUE(ServingSession::Create(estimator_, off).ok());
}

TEST_F(ProductServingTest, ForSessionRequiresTheSnapshotPath) {
  auto detached = ServingSession::Create(estimator_);
  ASSERT_TRUE(detached.ok());
  EXPECT_FALSE(CityProducts::ForSession(ds().net, *detached, 144).ok());

  auto session = ServingSession::Create(estimator_, ProductServingOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(CityProducts::ForSession(ds().net, *session, 144).ok());
}

TEST_F(ProductServingTest, PollFoldsAndEtaAnswersOverLiveSession) {
  obs::MetricsRegistry reg;
  auto session = ServingSession::Create(estimator_, ProductServingOptions());
  ASSERT_TRUE(session.ok());
  auto products = CityProducts::ForSession(ds().net, *session, 144);
  ASSERT_TRUE(products.ok());
  products->AttachMetrics(&reg);

  // Before the first served slot there is nothing to read.
  EXPECT_FALSE(products->Poll());
  EXPECT_FALSE(products->Eta(0, 1).ok());
  EXPECT_FALSE(products->RoadSpeed(0).ok());

  ASSERT_TRUE(session->Ingest(0, CleanObs(0)).ok());
  EXPECT_TRUE(products->Poll());
  EXPECT_EQ(products->profile().folds(), 1u);
  EXPECT_TRUE(products->Poll());  // over-polling is harmless
  EXPECT_EQ(products->profile().folds(), 1u);

  auto eta = products->Eta(0, static_cast<NodeId>(ds().net.num_nodes() - 1));
  ASSERT_TRUE(eta.ok()) << eta.status().ToString();
  EXPECT_EQ(eta->provenance, SpeedProvenance::kFresh);
  EXPECT_FALSE(eta->route.stale);
  EXPECT_GT(eta->route.travel_seconds, 0.0);

  auto speed = products->RoadSpeed(0);
  ASSERT_TRUE(speed.ok());
  EXPECT_EQ(speed->provenance, SpeedProvenance::kFresh);
  EXPECT_DOUBLE_EQ(speed->speed_kmh, products->last_snapshot().speed_kmh[0]);

  // A carried-forward slot: the ETA must arrive flagged.
  ASSERT_TRUE(session->Ingest(1, {}).ok());
  auto stale_eta =
      products->Eta(0, static_cast<NodeId>(ds().net.num_nodes() - 1));
  ASSERT_TRUE(stale_eta.ok());
  EXPECT_TRUE(stale_eta->route.stale);
  EXPECT_EQ(stale_eta->route.stale_slots, 1u);
  EXPECT_NE(stale_eta->provenance, SpeedProvenance::kFresh);

  // The catalog series saw all of it.
  EXPECT_EQ(reg.GetCounter(obs::kProductProfileFoldsTotal)->Value(),
            products->profile().folds());
  EXPECT_EQ(reg.GetCounter(obs::kProductEtaCacheMissesTotal)->Value(),
            products->eta_cache().stats().misses);
  EXPECT_GT(reg.GetHistogram(obs::kProductReadLatencyUs)->count(), 0u);
}

// The tentpole's "detached is free" claim, pinned: a session with products
// enabled and a live CityProducts reader serves — slot for slot, element
// for element — the exact bytes of a session with products off. Attaching
// the read-side layer adds zero instructions to the serving path.
TEST_F(ProductServingTest, DetachedProductsServingIsBitwiseIdentical) {
  ServingOptions plain;
  plain.publish_snapshots = true;
  auto baseline = ServingSession::Create(estimator_, plain);
  auto with_products =
      ServingSession::Create(estimator_, ProductServingOptions());
  ASSERT_TRUE(baseline.ok() && with_products.ok());
  auto products = CityProducts::ForSession(ds().net, *with_products, 144);
  ASSERT_TRUE(products.ok());

  for (uint64_t slot = 0; slot < 6; ++slot) {
    // Slot 3 carries forward on both sides.
    auto obs = slot == 3 ? std::vector<SeedSpeed>{} : CleanObs(slot);
    auto a = baseline->Ingest(slot, obs);
    auto b = with_products->Ingest(slot, obs);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->monitor.estimate.speeds.speed_kmh,
              b->monitor.estimate.speeds.speed_kmh);
    EXPECT_EQ(a->monitor.estimate.speeds.deviation,
              b->monitor.estimate.speeds.deviation);
    EXPECT_EQ(a->stale, b->stale);
    // Products actively read and route between every slot.
    products->Poll();
    auto eta = products->Eta(0, 3);
    ASSERT_TRUE(eta.ok());
  }
  SpeedSnapshot sa, sb;
  ASSERT_TRUE(baseline->snapshot_publisher()->Read(&sa));
  ASSERT_TRUE(with_products->snapshot_publisher()->Read(&sb));
  EXPECT_EQ(sa.speed_kmh, sb.speed_kmh);
  EXPECT_EQ(sa.deviation, sb.deviation);
  EXPECT_EQ(sa.version, sb.version);
  EXPECT_EQ(sa.slot, sb.slot);
}

TEST_F(ProductServingTest, MultiCityProductsStayIsolated) {
  // Two cities over the same estimator but independent sessions: each
  // city's products read its own publisher; folds and caches never mix.
  MultiCityServer::CitySpec alpha{"alpha", estimator_,
                                  ProductServingOptions()};
  MultiCityServer::CitySpec beta{"beta", estimator_, ProductServingOptions()};
  auto server = MultiCityServer::Create({alpha, beta});
  ASSERT_TRUE(server.ok());

  auto products_a = CityProducts::ForSession(ds().net, server->session(0), 144);
  auto products_b = CityProducts::ForSession(ds().net, server->session(1), 144);
  ASSERT_TRUE(products_a.ok() && products_b.ok());

  ASSERT_TRUE(server->Ingest("alpha", 0, CleanObs(0)).ok());
  EXPECT_TRUE(products_a->Poll());
  // Beta has served nothing: its products see nothing — reading another
  // city's field through a reused snapshot is exactly the stale-tail bug
  // the snapshot Read reset fixed.
  EXPECT_FALSE(products_b->Poll());
  EXPECT_FALSE(products_b->Eta(0, 1).ok());
  EXPECT_EQ(products_a->profile().folds(), 1u);
  EXPECT_EQ(products_b->profile().folds(), 0u);

  ASSERT_TRUE(server->Ingest("beta", 0, CleanObs(0)).ok());
  EXPECT_TRUE(products_b->Poll());
  EXPECT_EQ(products_b->profile().folds(), 1u);
  EXPECT_EQ(products_b->last_snapshot().version, 1u);
}

}  // namespace
}  // namespace trendspeed
