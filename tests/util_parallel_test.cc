#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace trendspeed {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t n : {0u, 1u, 15u, 16u, 1000u}) {
    for (size_t threads : {1u, 2u, 7u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      ParallelFor(
          n,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) ++hits[i];
          },
          threads);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads
                                     << " index " << i;
      }
    }
  }
}

TEST(ParallelForTest, ChunksAreDisjointAndOrderedWithinThread) {
  const size_t n = 500;
  std::vector<int> owner(n, -1);
  std::mutex mu;
  std::atomic<int> next_id{0};
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        int id = next_id++;
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = begin; i < end; ++i) {
          EXPECT_EQ(owner[i], -1) << "overlapping chunks at " << i;
          owner[i] = id;
        }
      },
      4);
  for (size_t i = 0; i < n; ++i) EXPECT_NE(owner[i], -1);
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  const size_t n = 10000;
  std::vector<double> parallel_out(n), serial_out(n);
  auto work = [](size_t i) {
    double x = static_cast<double>(i);
    return x * x - 3.0 * x + 1.0;
  };
  for (size_t i = 0; i < n; ++i) serial_out[i] = work(i);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) parallel_out[i] = work(i);
      },
      8);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(EffectiveThreadsTest, RespectsRequestAndAuto) {
  EXPECT_EQ(EffectiveThreads(3), 3u);
  EXPECT_GE(EffectiveThreads(0), 1u);
  // The auto value is resolved once and cached; repeated calls must agree.
  EXPECT_EQ(EffectiveThreads(0), EffectiveThreads(0));
}

// Regression: the seed implementation ran callbacks on bare std::threads, so
// a throwing callback hit std::terminate. The pool-backed version must
// capture the first exception and rethrow it on the calling thread.
TEST(ParallelForTest, CallbackExceptionRethrownOnCaller) {
  const size_t n = 4096;
  EXPECT_THROW(
      ParallelFor(
          n,
          [&](size_t begin, size_t) {
            if (begin > 0) throw std::runtime_error("worker boom");
          },
          4),
      std::runtime_error);
  // Throwing on the caller-executed chunk must behave identically.
  EXPECT_THROW(
      ParallelFor(
          n, [&](size_t, size_t) { throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
  // And the shared pool must remain usable afterwards.
  std::atomic<int> count{0};
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        count += static_cast<int>(end - begin);
      },
      4);
  EXPECT_EQ(count.load(), static_cast<int>(n));
}

}  // namespace
}  // namespace trendspeed
