#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trend/belief_propagation.h"
#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 8u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      pool.ParallelFor(n, grain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "n=" << n << " grain=" << grain << " index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SingleWorkerPoolStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(), 3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
  // Single-chunk regions run inline on the caller.
  std::atomic<int> count{0};
  pool.ParallelFor(5, 100, [&](size_t begin, size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  const int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ++count;
      ++done;
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000, 10,
                       [&](size_t begin, size_t) {
                         if (begin >= 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> count{0};
  pool.ParallelFor(100, 10, [&](size_t begin, size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkStealingHandlesSkewedTaskSizes) {
  // One chunk carries ~100x the work of the others; grain-1 scheduling lets
  // idle workers take the small chunks while one worker grinds the big one.
  ThreadPool pool(4);
  const size_t n = 64;
  std::vector<double> out(n, 0.0);
  pool.ParallelFor(n, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      size_t iters = (i == 0) ? 2000000 : 20000;
      double acc = 0.0;
      for (size_t t = 1; t <= iters; ++t) acc += 1.0 / static_cast<double>(t);
      out[i] = acc;
    }
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(out[i], 0.0) << "index " << i << " never ran";
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(16, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Inner region entered from a worker runs inline on that worker.
      pool.ParallelFor(16, 4, [&](size_t ib, size_t ie) {
        for (size_t j = ib; j < ie; ++j) ++hits[i * 16 + j];
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, NestedSubmitFromWorker) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  const int kOuter = 20, kInner = 10;
  for (int i = 0; i < kOuter; ++i) {
    pool.Submit([&] {
      for (int j = 0; j < kInner; ++j) {
        pool.Submit([&] { ++done; });
      }
    });
  }
  while (done.load() < kOuter * kInner) std::this_thread::yield();
  EXPECT_EQ(done.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, StressManySmallRegions) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 300; ++round) {
    pool.ParallelFor(97, 5, [&](size_t begin, size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 300L * 97L);
}

TEST(ThreadPoolTest, ParallelForChunkedIndicesAreDeterministic) {
  ThreadPool pool(4);
  const size_t n = 1003;
  const size_t chunks = 7;
  std::vector<int> owner(n, -1);
  pool.ParallelForChunked(n, chunks, [&](size_t chunk, size_t begin,
                                         size_t end) {
    for (size_t i = begin; i < end; ++i) owner[i] = static_cast<int>(chunk);
  });
  // Boundaries must be the deterministic ceil-division split, independent of
  // which worker ran which chunk.
  size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(owner[i], static_cast<int>(i / chunk_size)) << "index " << i;
  }
}

// Parallel BP must agree with serial BP. The sweep is two-phase, so the
// agreement is bitwise for *any* thread count; assert exact equality on a
// graph large enough to cross the parallel threshold.
TEST(ThreadPoolTest, ParallelBpMatchesSerialBitwise) {
  const size_t rows = 72, cols = 72;  // 5184 vars > kMinParallelVars
  const size_t n = rows * cols;
  PairwiseMrf mrf(n);
  Rng rng(99);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      size_t v = r * cols + c;
      double same = rng.Uniform(0.55, 0.9);
      double compat[2][2] = {{same, 1.0 - same}, {1.0 - same, same}};
      if (c + 1 < cols) mrf.AddEdge(v, v + 1, compat);
      if (r + 1 < rows) mrf.AddEdge(v, v + cols, compat);
    }
  }
  for (size_t v = 0; v < n; ++v) {
    mrf.SetPriorUp(v, rng.Uniform(0.1, 0.9));
  }
  BpOptions serial;
  serial.num_threads = 1;
  serial.max_iters = 8;
  BpResult want = InferMarginalsBp(mrf, serial);
  for (uint32_t threads : {2u, 3u, 8u}) {
    BpOptions opts = serial;
    opts.num_threads = threads;
    BpResult got = InferMarginalsBp(mrf, opts);
    EXPECT_EQ(got.iterations, want.iterations) << threads << " threads";
    ASSERT_EQ(got.p_up.size(), want.p_up.size());
    for (size_t v = 0; v < n; ++v) {
      ASSERT_EQ(got.p_up[v], want.p_up[v])
          << "var " << v << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace trendspeed
