#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "speed/hierarchical_model.h"
#include "speed/linear_model.h"
#include "speed/propagation.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

std::vector<RegressionSample> LineSamples(double a, double b, int t, int n,
                                          Rng* rng, double noise = 0.0) {
  std::vector<RegressionSample> out;
  for (int i = 0; i < n; ++i) {
    RegressionSample s;
    s.x = rng->Uniform(-0.5, 0.5);
    s.y = a + b * s.x + (noise > 0 ? rng->Gaussian(0.0, noise) : 0.0);
    s.t = t;
    out.push_back(s);
  }
  return out;
}

TEST(TrendLineTest, FitsPerTrendBranches) {
  Rng rng(5);
  auto up = LineSamples(0.05, 0.8, 1, 100, &rng);
  auto down = LineSamples(-0.1, 1.2, 0, 100, &rng);
  std::vector<RegressionSample> all = up;
  all.insert(all.end(), down.begin(), down.end());
  TrendLine line = FitTrendLine(all, 1e-6, 30);
  ASSERT_TRUE(line.trained[0]);
  ASSERT_TRUE(line.trained[1]);
  EXPECT_NEAR(line.a[1], 0.05, 0.01);
  EXPECT_NEAR(line.b[1], 0.8, 0.05);
  EXPECT_NEAR(line.a[0], -0.1, 0.01);
  EXPECT_NEAR(line.b[0], 1.2, 0.05);
  EXPECT_EQ(line.samples[0], 100u);
}

TEST(TrendLineTest, UntrainedBranchFallsBack) {
  Rng rng(6);
  TrendLine line = FitTrendLine(LineSamples(0.0, 2.0, 1, 100, &rng), 1e-6, 30);
  EXPECT_TRUE(line.trained[1]);
  EXPECT_FALSE(line.trained[0]);
  // Down branch reuses the up line.
  EXPECT_NEAR(line.PredictHard(0.1, 0), line.PredictHard(0.1, 1), 1e-9);
  // Fully untrained: pass-through.
  TrendLine empty = FitTrendLine({}, 1.0, 10);
  EXPECT_DOUBLE_EQ(empty.PredictHard(0.3, 1), 0.3);
}

TEST(TrendLineTest, BlendingInterpolates) {
  TrendLine line;
  line.trained[0] = line.trained[1] = true;
  line.a[0] = -0.2;
  line.b[0] = 0.0;
  line.a[1] = 0.2;
  line.b[1] = 0.0;
  EXPECT_NEAR(line.Predict(0.0, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(line.Predict(0.0, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(line.Predict(0.0, 0.75), 0.1, 1e-12);
}

TEST(TrendMeanTest, PerTrendAverages) {
  std::vector<RegressionSample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({0.0, 0.1, 1});
    samples.push_back({0.0, -0.3, 0});
  }
  TrendMean mean = FitTrendMean(samples, 20);
  EXPECT_NEAR(mean.PredictHard(1), 0.1, 1e-12);
  EXPECT_NEAR(mean.PredictHard(0), -0.3, 1e-12);
  EXPECT_NEAR(mean.Predict(0.5), -0.1, 1e-12);
  TrendMean empty = FitTrendMean({}, 5);
  EXPECT_DOUBLE_EQ(empty.PredictHard(1), 0.0);
}

class HierarchicalModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = AlternatingHistory(net_, 1008, 144, 0.25);
    CorrelationGraphOptions copts;
    copts.min_co_observed = 10;
    auto graph = CorrelationGraph::Build(net_, db_, copts);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CorrelationGraph>(std::move(graph).value());
    auto influence = InfluenceModel::Build(*graph_, db_, {});
    ASSERT_TRUE(influence.ok());
    influence_ =
        std::make_unique<InfluenceModel>(std::move(influence).value());
  }

  Result<HierarchicalSpeedModel> TrainModel(
      const HierarchicalModelOptions& opts = {}) {
    return HierarchicalSpeedModel::Train(net_, db_, *graph_, *influence_,
                                         opts);
  }

  RoadNetwork net_;
  HistoricalDb db_;
  std::unique_ptr<CorrelationGraph> graph_;
  std::unique_ptr<InfluenceModel> influence_;
};

TEST_F(HierarchicalModelTest, TrainsRoadLevelModels) {
  auto model = TrainModel();
  ASSERT_TRUE(model.ok());
  // Dense perfectly-correlated history: most roads get their own model.
  EXPECT_GT(model->num_road_models(), net_.num_roads() / 2);
  EXPECT_EQ(model->LevelFor(0, true), ModelLevel::kRoad);
}

TEST_F(HierarchicalModelTest, PredictsNeighbourDeviation) {
  auto model = TrainModel();
  ASSERT_TRUE(model.ok());
  // In the alternating history, a road's deviation equals its neighbours';
  // with a strong backing weight the prediction should track x closely.
  double d =
      model->PredictDeviation(0, 0.25, /*weight=*/2.0, /*has_x=*/true, 1.0);
  EXPECT_NEAR(d, 0.25, 0.08);
  double d2 = model->PredictDeviation(0, -0.25, 2.0, true, 0.0);
  EXPECT_NEAR(d2, -0.25, 0.08);
}

TEST_F(HierarchicalModelTest, WeightModulatesSlope) {
  auto model = TrainModel();
  ASSERT_TRUE(model.ok());
  // The global line's effective slope must not decrease with weight.
  const WeightedTrendModel& line = model->global_line();
  ASSERT_TRUE(line.trained);
  EXPECT_GE(line.SlopeAt(2.0), line.SlopeAt(0.1) - 1e-9);
}

TEST_F(HierarchicalModelTest, FallsBackThroughHierarchy) {
  HierarchicalModelOptions opts;
  opts.min_road_samples = 100000;  // untrainable at road level
  auto model = TrainModel(opts);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_road_models(), 0u);
  EXPECT_EQ(model->LevelFor(0, true), ModelLevel::kClass);
  opts.min_class_samples = 10000000;
  auto model2 = TrainModel(opts);
  ASSERT_TRUE(model2.ok());
  EXPECT_EQ(model2->LevelFor(0, true), ModelLevel::kGlobal);
  // Even the global model keeps predicting sensibly.
  double d = model2->PredictDeviation(0, 0.25, 1.5, true, 1.0);
  EXPECT_GT(d, 0.05);
}

TEST_F(HierarchicalModelTest, ClampsImplausibleDeviations) {
  auto model = TrainModel();
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->PredictDeviation(0, -100.0, 1.0, true, 0.0), -0.9);
  EXPECT_LE(model->PredictDeviation(0, 100.0, 1.0, true, 1.0), 1.5);
}

TEST_F(HierarchicalModelTest, RejectsMismatchedInputs) {
  RoadNetwork other = testing_util::PathNetwork();
  auto model =
      HierarchicalSpeedModel::Train(other, db_, *graph_, *influence_, {});
  EXPECT_FALSE(model.ok());
}

class PropagationTest : public HierarchicalModelTest {
 protected:
  void SetUp() override {
    HierarchicalModelTest::SetUp();
    auto model = TrainModel();
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<HierarchicalSpeedModel>(std::move(model).value());
  }

  TrendEstimate UniformTrends(double p_up) {
    TrendEstimate t;
    t.p_up.assign(net_.num_roads(), p_up);
    t.trend.assign(net_.num_roads(), p_up >= 0.5 ? +1 : -1);
    return t;
  }

  std::unique_ptr<HierarchicalSpeedModel> model_;
};

TEST_F(PropagationTest, SeedsKeepTheirObservedSpeed) {
  TrendEstimate trends = UniformTrends(1.0);
  std::vector<SeedSpeed> seeds = {{0, 31.5}, {7, 44.0}};
  auto est = PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds,
                             /*slot=*/2, {});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->speed_kmh[0], 31.5);
  EXPECT_DOUBLE_EQ(est->speed_kmh[7], 44.0);
  EXPECT_EQ(est->layer[0], 0u);
  EXPECT_EQ(est->layer[7], 0u);
}

TEST_F(PropagationTest, LayersGrowOutwardFromSeeds) {
  TrendEstimate trends = UniformTrends(0.5);
  std::vector<SeedSpeed> seeds = {{0, 30.0}};
  PropagationOptions popts;
  popts.max_spatial_layers = 0;  // correlation pass only
  auto est =
      PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds, 2, popts);
  ASSERT_TRUE(est.ok());
  // Layer of a road exceeds that of some correlation neighbour by exactly 1.
  for (RoadId v = 0; v < net_.num_roads(); ++v) {
    if (est->layer[v] == 0 || est->layer[v] == kUnreachedLayer) continue;
    bool has_parent = false;
    for (const CorrEdge& e : graph_->Neighbors(v)) {
      if (est->layer[e.neighbor] == est->layer[v] - 1) has_parent = true;
    }
    EXPECT_TRUE(has_parent) << "road " << v << " layer " << est->layer[v];
  }
}

TEST_F(PropagationTest, SeedDeviationPropagatesToNeighbours) {
  TrendEstimate trends = UniformTrends(0.0);  // strongly down
  // Seed far below its historical mean.
  double hist = db_.HistoricalMeanOr(0, 3, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, hist * 0.7}};
  auto est = PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds, 3, {});
  ASSERT_TRUE(est.ok());
  size_t checked = 0;
  for (const CorrEdge& e : graph_->Neighbors(0)) {
    if (est->layer[e.neighbor] != 1) continue;
    EXPECT_LT(est->deviation[e.neighbor], -0.05) << "road " << e.neighbor;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(PropagationTest, MaxLayersBoundsNeighbourEstimates) {
  TrendEstimate trends = UniformTrends(0.5);
  std::vector<SeedSpeed> seeds = {{0, 30.0}};
  PropagationOptions popts;
  popts.max_layers = 1;
  popts.max_spatial_layers = 0;
  auto est = PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds, 2,
                             popts);
  ASSERT_TRUE(est.ok());
  for (uint32_t layer : est->layer) {
    EXPECT_TRUE(layer <= 1 || layer == kUnreachedLayer);
  }
}

TEST_F(PropagationTest, SpatialFallbackReachesCorrIsolatedRoads) {
  // An empty correlation graph leaves every non-seed road unreached by the
  // correlation pass; the spatial pass must still walk road adjacency.
  CorrelationGraphOptions copts;
  copts.min_co_observed = 100000;  // impossible: graph has no edges
  auto empty_graph = CorrelationGraph::Build(net_, db_, copts);
  ASSERT_TRUE(empty_graph.ok());
  ASSERT_EQ(empty_graph->num_edges(), 0u);
  TrendEstimate trends = UniformTrends(0.0);
  double hist = db_.HistoricalMeanOr(0, 3, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, hist * 0.7}};
  auto est = PropagateSpeeds(net_, *empty_graph, db_, *model_, trends, seeds,
                             3, {});
  ASSERT_TRUE(est.ok());
  // Physically adjacent roads received spatial-layer estimates below their
  // historical mean.
  size_t spatial = 0;
  for (RoadId v = 1; v < net_.num_roads(); ++v) {
    if (est->layer[v] != kUnreachedLayer && est->layer[v] > 0) ++spatial;
  }
  EXPECT_GT(spatial, net_.num_roads() / 2);
  for (RoadId u : net_.RoadSuccessors(0)) {
    EXPECT_LT(est->deviation[u], 0.0) << "road " << u;
  }
}

TEST_F(PropagationTest, UnreachedRoadsGetPriorBasedSpeeds) {
  TrendEstimate trends = UniformTrends(0.5);
  std::vector<SeedSpeed> seeds = {{0, 30.0}};
  PropagationOptions popts;
  popts.max_layers = 1;
  auto est = PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds, 2,
                             popts);
  ASSERT_TRUE(est.ok());
  for (RoadId v = 0; v < net_.num_roads(); ++v) {
    EXPECT_GT(est->speed_kmh[v], 0.0) << "road " << v;
  }
}

TEST_F(PropagationTest, RejectsInvalidSeeds) {
  TrendEstimate trends = UniformTrends(0.5);
  EXPECT_FALSE(PropagateSpeeds(net_, *graph_, db_, *model_, trends,
                               {{99999, 30.0}}, 2, {})
                   .ok());
  EXPECT_FALSE(
      PropagateSpeeds(net_, *graph_, db_, *model_, trends, {{0, -5.0}}, 2, {})
          .ok());
}

TEST_F(PropagationTest, EstimatesAreBoundedPhysically) {
  TrendEstimate trends = UniformTrends(1.0);
  std::vector<SeedSpeed> seeds = {{0, 200.0}};  // absurd but positive
  auto est = PropagateSpeeds(net_, *graph_, db_, *model_, trends, seeds, 2, {});
  ASSERT_TRUE(est.ok());
  for (RoadId v = 1; v < net_.num_roads(); ++v) {
    EXPECT_LE(est->speed_kmh[v], net_.road(v).free_flow_kmh * 1.3 + 1e-9);
    EXPECT_GE(est->speed_kmh[v], 2.0);
  }
}

}  // namespace
}  // namespace trendspeed
