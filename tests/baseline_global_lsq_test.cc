// Tests for the global least-squares baseline (CG and direct modes).

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/global_lsq.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

class GlobalLsqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = AlternatingHistory(net_, 1008, 144, 0.25);
  }

  RoadNetwork net_;
  HistoricalDb db_;
};

TEST_F(GlobalLsqTest, NoSeedsReturnsHistoricalMeans) {
  GlobalLsqEstimator est(&net_, &db_);
  auto out = est.Estimate(4, {});
  ASSERT_TRUE(out.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    double hist = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
    EXPECT_NEAR((*out)[r], hist, 1e-6);
  }
}

TEST_F(GlobalLsqTest, SeedsEchoAndDiffuse) {
  GlobalLsqEstimator est(&net_, &db_);
  double hist = db_.HistoricalMeanOr(0, 4, net_.road(0).free_flow_kmh);
  auto out = est.Estimate(4, {{0, hist * 0.6}});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], hist * 0.6);
  // Most connected roads pulled below their norms (harmonic interpolation).
  size_t below = 0;
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    double h = db_.HistoricalMeanOr(r, 4, net_.road(r).free_flow_kmh);
    if ((*out)[r] < h - 1e-9) ++below;
  }
  EXPECT_GT(below, net_.num_roads() / 2);
  EXPECT_GT(est.last_iterations(), 3u);
}

TEST_F(GlobalLsqTest, DirectAndCgAgree) {
  GlobalLsqOptions cg_opts;
  GlobalLsqOptions direct_opts;
  direct_opts.use_direct_solver = true;
  GlobalLsqEstimator cg(&net_, &db_, cg_opts);
  GlobalLsqEstimator direct(&net_, &db_, direct_opts);
  double h0 = db_.HistoricalMeanOr(0, 4, net_.road(0).free_flow_kmh);
  double h9 = db_.HistoricalMeanOr(9, 4, net_.road(9).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, h0 * 0.7}, {9, h9 * 1.1}};
  auto a = cg.Estimate(4, seeds);
  auto b = direct.Estimate(4, seeds);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    EXPECT_NEAR((*a)[r], (*b)[r], 1e-3) << "road " << r;
  }
}

TEST_F(GlobalLsqTest, SolutionSatisfiesStationarity) {
  // At the optimum, each free variable equals the weighted mean of its
  // neighbours (shrunk by mu): check the KKT residual directly.
  GlobalLsqOptions opts;
  opts.mu = 0.01;
  GlobalLsqEstimator est(&net_, &db_, opts);
  uint64_t slot = 4;
  double h0 = db_.HistoricalMeanOr(0, slot, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, h0 * 0.7}};
  auto out = est.Estimate(slot, seeds);
  ASSERT_TRUE(out.ok());
  // Recover deviations.
  std::vector<double> d(net_.num_roads());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    double h = db_.HistoricalMeanOr(r, slot, net_.road(r).free_flow_kmh);
    d[r] = (*out)[r] / h - 1.0;
  }
  for (RoadId v = 1; v < net_.num_roads(); ++v) {
    double acc = 0.0;
    size_t deg = 0;
    for (RoadId u : net_.RoadSuccessors(v)) {
      acc += d[u];
      ++deg;
    }
    for (RoadId u : net_.RoadPredecessors(v)) {
      acc += d[u];
      ++deg;
    }
    if (deg == 0) continue;
    double residual = (static_cast<double>(deg) + opts.mu) * d[v] - acc;
    EXPECT_NEAR(residual, 0.0, 1e-4) << "road " << v;
  }
}

TEST_F(GlobalLsqTest, RejectsBadSeeds) {
  GlobalLsqEstimator est(&net_, &db_);
  EXPECT_FALSE(est.Estimate(4, {{99999, 10.0}}).ok());
}

TEST_F(GlobalLsqTest, SpeedsStayPhysical) {
  GlobalLsqEstimator est(&net_, &db_);
  auto out = est.Estimate(4, {{0, 200.0}});
  ASSERT_TRUE(out.ok());
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    EXPECT_GE((*out)[r], 2.0);
    EXPECT_LE((*out)[r], net_.road(r).free_flow_kmh * 1.3 + 1e-9);
  }
}

}  // namespace
}  // namespace trendspeed
