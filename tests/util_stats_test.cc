#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace trendspeed {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SampleVariance) {
  OnlineStats s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian(3.0, 2.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  OnlineStats before = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, IndependentNearZero) {
  Rng rng(9);
  std::vector<double> a(5000), b(5000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(a, b)), 0.05);
}

TEST(QuantileTest, InterpolatesCorrectly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({3, 1}, 0.5), 2.0);  // unsorted input
}

TEST(SpeedMetricsTest, ExactPredictionsAreZeroError) {
  std::vector<double> t = {30, 40, 50};
  SpeedMetrics m = ComputeSpeedMetrics(t, t);
  EXPECT_EQ(m.count, 3u);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
  EXPECT_DOUBLE_EQ(m.error_rate, 0.0);
}

TEST(SpeedMetricsTest, KnownValues) {
  std::vector<double> pred = {44.0, 30.0};
  std::vector<double> truth = {40.0, 40.0};
  SpeedMetrics m = ComputeSpeedMetrics(pred, truth, /*error_rate_tau=*/0.2);
  EXPECT_DOUBLE_EQ(m.mae, 7.0);                       // (4 + 10) / 2
  EXPECT_NEAR(m.rmse, std::sqrt((16 + 100) / 2.0), 1e-12);
  EXPECT_NEAR(m.mape, (0.1 + 0.25) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.error_rate, 0.5);                // only the 25% one
}

TEST(SpeedMetricsTest, SkipsNonPositiveTruth) {
  std::vector<double> pred = {10.0, 20.0};
  std::vector<double> truth = {0.0, 20.0};
  SpeedMetrics m = ComputeSpeedMetrics(pred, truth);
  EXPECT_EQ(m.count, 1u);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
}

TEST(SpeedMetricsTest, RmseAtLeastMae) {
  Rng rng(13);
  std::vector<double> pred(200), truth(200);
  for (size_t i = 0; i < 200; ++i) {
    truth[i] = rng.Uniform(10.0, 80.0);
    pred[i] = truth[i] + rng.Gaussian(0.0, 5.0);
  }
  SpeedMetrics m = ComputeSpeedMetrics(pred, truth);
  EXPECT_GE(m.rmse, m.mae);
}

TEST(TrendAccuracyTest, CountsAgreements) {
  EXPECT_DOUBLE_EQ(TrendAccuracy({1, -1, 1, -1}, {1, -1, -1, -1}), 0.75);
  EXPECT_DOUBLE_EQ(TrendAccuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(TrendAccuracy({1, 1}, {1, 1}), 1.0);
}

}  // namespace
}  // namespace trendspeed
