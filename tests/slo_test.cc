// Tests for the latency SLO engine (obs/slo.h): option validation, exact
// rolling quantiles, the multi-window burn-rate state machine at its
// boundary transitions (injected latencies, no real clock), breach/dump
// accounting, and the deterministic flight-ring dump artifact.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace trendspeed {
namespace {

uint64_t g_fake_now = 0;
uint64_t FakeClock() { return g_fake_now; }

obs::SlotCriticalPath TotalMs(uint64_t slot, double total_ms) {
  obs::SlotCriticalPath cp;
  cp.slot = slot;
  cp.total_ns = static_cast<uint64_t>(total_ms * 1e6);
  return cp;
}

TEST(SloOptionsTest, ValidatesKnobs) {
  obs::SloOptions o;
  EXPECT_EQ(o.Invalid(), nullptr);
  EXPECT_FALSE(o.enabled());  // all budgets default to 0
  o.total_budget_ms = 50.0;
  EXPECT_TRUE(o.enabled());
  EXPECT_EQ(o.Invalid(), nullptr);

  obs::SloOptions bad = o;
  bad.bp_budget_ms = -1.0;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.window_slots = 0;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.short_window_slots = 64;
  bad.long_window_slots = 8;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.long_window_slots = bad.window_slots + 1;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.error_budget = 0.0;
  EXPECT_NE(bad.Invalid(), nullptr);
  bad.error_budget = 1.5;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.warn_burn_rate = 0.0;
  EXPECT_NE(bad.Invalid(), nullptr);

  bad = o;
  bad.breach_burn_rate = 0.5 * bad.warn_burn_rate;
  EXPECT_NE(bad.Invalid(), nullptr);
}

TEST(SloEngineTest, ExactQuantilesOverTheWindow) {
  obs::SloOptions o;  // budgets all 0: quantiles still track
  obs::SloEngine engine(o, nullptr);
  for (uint64_t i = 1; i <= 100; ++i) {
    engine.ObserveSlot(TotalMs(i, static_cast<double>(i)));
  }
  EXPECT_EQ(engine.slots_observed(), 100u);
  // Exact order statistics: rank ceil(q*n) over the sorted window.
  EXPECT_DOUBLE_EQ(engine.QuantileMs(obs::SloStage::kTotal, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(engine.QuantileMs(obs::SloStage::kTotal, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(engine.QuantileMs(obs::SloStage::kTotal, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(engine.QuantileMs(obs::SloStage::kTotal, 1.00), 100.0);
  // Unfed stages read 0 across the same window.
  EXPECT_DOUBLE_EQ(engine.QuantileMs(obs::SloStage::kBp, 0.99), 0.0);
}

// The burn-rate machine at its window boundaries. error_budget 0.5 makes
// the burn rate 2x the over-budget fraction, so with short=2/long=4:
// a fully-hot short window burns at 2.0 (breach threshold) and the long
// window crosses 2.0 exactly when all 4 of its slots are over budget.
TEST(SloEngineTest, BurnRateBoundaryTransitions) {
  obs::SloOptions o;
  o.total_budget_ms = 10.0;
  o.window_slots = 8;
  o.short_window_slots = 2;
  o.long_window_slots = 4;
  o.error_budget = 0.5;
  o.warn_burn_rate = 1.0;
  o.breach_burn_rate = 2.0;
  ASSERT_EQ(o.Invalid(), nullptr);
  obs::MetricsRegistry reg;
  obs::SloEngine engine(o, nullptr);
  engine.AttachMetrics(&reg);
  const obs::SloStage st = obs::SloStage::kTotal;

  engine.ObserveSlot(TotalMs(1, 5.0));  // under budget
  EXPECT_EQ(engine.state(st), obs::SloState::kOk);

  engine.ObserveSlot(TotalMs(2, 20.0));  // short window half hot -> warn
  EXPECT_DOUBLE_EQ(engine.BurnRate(st, 2), 1.0);
  EXPECT_EQ(engine.state(st), obs::SloState::kWarn);

  engine.ObserveSlot(TotalMs(3, 20.0));  // short fully hot, long 2/3
  EXPECT_DOUBLE_EQ(engine.BurnRate(st, 2), 2.0);
  EXPECT_EQ(engine.state(st), obs::SloState::kWarn);  // long still < 2.0

  engine.ObserveSlot(TotalMs(4, 20.0));  // long 3/4 over -> burn 1.5
  EXPECT_EQ(engine.state(st), obs::SloState::kWarn);
  EXPECT_EQ(engine.breaches(), 0u);

  engine.ObserveSlot(TotalMs(5, 20.0));  // long 4/4 over -> burn 2.0: breach
  EXPECT_DOUBLE_EQ(engine.BurnRate(st, 4), 2.0);
  EXPECT_EQ(engine.state(st), obs::SloState::kBreach);
  EXPECT_EQ(engine.breaches(), 1u);
  EXPECT_EQ(reg.GetCounter(obs::kSloBreachesTotal)->Value(), 1u);
  // The into-breach transition dumped the (empty) flight ring.
  ASSERT_EQ(engine.dumps().size(), 1u);
  EXPECT_EQ(engine.dumps()[0].reason, "breach:total");
  EXPECT_EQ(engine.dumps()[0].slot, 5u);

  engine.ObserveSlot(TotalMs(6, 5.0));  // short cooling -> back to warn
  EXPECT_EQ(engine.state(st), obs::SloState::kWarn);

  engine.ObserveSlot(TotalMs(7, 5.0));  // short cold -> ok
  EXPECT_EQ(engine.state(st), obs::SloState::kOk);
  EXPECT_EQ(engine.breaches(), 1u);  // no second transition

  // State gauge mirrors the machine (2 = breach seen earlier, now 0 = ok).
  EXPECT_EQ(reg.GetGauge(obs::kSloStageState[0])->Value(), 0.0);
  EXPECT_GT(reg.GetGauge(obs::kSloStageP95Ms[0])->Value(), 0.0);
}

// Short window hot while the long window is still cool holds the previous
// state (hysteresis) instead of flapping ok -> warn -> ok on one spike.
TEST(SloEngineTest, ShortSpikeWithCoolLongWindowHoldsState) {
  obs::SloOptions o;
  o.total_budget_ms = 10.0;
  o.window_slots = 8;
  o.short_window_slots = 1;
  o.long_window_slots = 4;
  o.error_budget = 0.5;
  o.warn_burn_rate = 1.0;
  o.breach_burn_rate = 2.0;
  obs::SloEngine engine(o, nullptr);
  const obs::SloStage st = obs::SloStage::kTotal;
  engine.ObserveSlot(TotalMs(1, 5.0));
  engine.ObserveSlot(TotalMs(2, 5.0));
  engine.ObserveSlot(TotalMs(3, 5.0));
  // One spike: short burn 2.0, long burn 0.5 — neither warn (long < 1.0)
  // nor ok (short >= 1.0): the ok state holds.
  engine.ObserveSlot(TotalMs(4, 20.0));
  EXPECT_EQ(engine.state(st), obs::SloState::kOk);
  // A second spike heats the long window to 1.0 -> warn.
  engine.ObserveSlot(TotalMs(5, 20.0));
  EXPECT_EQ(engine.state(st), obs::SloState::kWarn);
}

TEST(SloEngineTest, DumpsAreRateLimitedAndDeduplicated) {
  obs::SloOptions o;
  o.total_budget_ms = 10.0;
  o.max_dumps = 2;
  obs::MetricsRegistry reg;
  obs::SloEngine engine(o, nullptr);
  engine.AttachMetrics(&reg);
  engine.NoteDegradation("estimation_failure", 3);
  engine.NoteDegradation("estimation_failure", 3);  // duplicate: suppressed
  EXPECT_EQ(engine.dumps().size(), 1u);
  engine.NoteDegradation("carry_forward", 3);  // same slot, new reason
  EXPECT_EQ(engine.dumps().size(), 2u);
  engine.NoteDegradation("estimation_failure", 4);  // over max_dumps
  EXPECT_EQ(engine.dumps().size(), 2u);
  EXPECT_EQ(reg.GetCounter(obs::kSloDumpsTotal)->Value(), 2u);
  EXPECT_EQ(engine.dumps()[0].reason, "degradation:estimation_failure");
  EXPECT_EQ(engine.dumps()[1].reason, "degradation:carry_forward");
}

// The dump artifact is a deterministic function of the recorded events
// under the injected clock: byte-exact golden.
TEST(SloEngineTest, DumpArtifactGoldenUnderInjectedClock) {
  obs::SetMonotonicClockForTest(&FakeClock);
  g_fake_now = 5'000'000;
  obs::FlightRecorder rec;
  {
    obs::FlightSpan span(&rec, 41, obs::FlightStage::kAdmission);
    g_fake_now += 1'500;
  }
  obs::SetMonotonicClockForTest(nullptr);

  obs::SloOptions o;
  o.total_budget_ms = 10.0;
  obs::SloEngine engine(o, &rec);
  engine.NoteDegradation("rejected_batch", 41);
  ASSERT_EQ(engine.dumps().size(), 1u);

  // The recording thread's process-wide dense id lands in the tid fields
  // and the default ring label; everything else is fully pinned.
  std::vector<std::pair<uint32_t, std::string>> labels = rec.ThreadLabels();
  ASSERT_EQ(labels.size(), 1u);
  std::string tid = std::to_string(labels[0].first);
  std::string expected =
      "{\"reason\":\"degradation:rejected_batch\",\"slot\":41,\"trace\":"
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
      ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread-" + tid +
      "\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid +
      ",\"cat\":\"flight\",\"name\":\"admission\",\"ts\":0.000,"
      "\"dur\":1.500,\"args\":{\"slot\":41,\"seq\":0}}\n"
      "]}}";
  EXPECT_EQ(engine.dumps()[0].json, expected);
}

}  // namespace
}  // namespace trendspeed
