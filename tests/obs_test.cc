// Tests for the observability layer (src/obs/) and its pipeline wiring:
// metric primitives, registry registration semantics, exporter goldens,
// trace ring buffer, the injected-clock regression for util/timer.h, thread
// pool instrumentation, and the ServingStats <-> registry equivalence
// contract. Run under TRENDSPEED_SANITIZE=thread to validate the lock-free
// recording paths.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serving.h"
#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

// ---------------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------------

TEST(CounterTest, AddsAccumulateAcrossCells) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.0);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  constexpr double kBounds[] = {1.0, 2.0, 5.0};
  obs::MetricDef def{"test_h", obs::MetricType::kHistogram, "h", "1", "",
                     kBounds, 3};
  obs::Histogram h(def);
  // A value lands in the first bucket with v <= bound (Prometheus `le`
  // semantics); above the last bound it lands in the +Inf overflow bucket.
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (boundary is inclusive)
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // bucket 1
  h.Observe(5.0);   // bucket 2
  h.Observe(7.0);   // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
}

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrRegisterReturnsStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter(obs::kBpRunsTotal);
  obs::Counter* b = reg.GetCounter(obs::kBpRunsTotal);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  // Same name under a different label set is a distinct series.
  obs::Counter* greedy = reg.GetCounter(obs::kSeedRunsGreedy);
  obs::Counter* lazy = reg.GetCounter(obs::kSeedRunsLazyGreedy);
  ASSERT_NE(greedy, nullptr);
  EXPECT_NE(greedy, lazy);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  obs::MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter(obs::kBpRunsTotal), nullptr);
  obs::MetricDef clash{obs::kBpRunsTotal.name, obs::MetricType::kGauge,
                       "clash", "1"};
  EXPECT_EQ(reg.GetGauge(clash), nullptr);
}

TEST(MetricsRegistryTest, NullSafeHelpersNoOpWithoutRegistry) {
  EXPECT_EQ(obs::GetCounter(nullptr, obs::kBpRunsTotal), nullptr);
  EXPECT_EQ(obs::GetGauge(nullptr, obs::kPoolWorkers), nullptr);
  EXPECT_EQ(obs::GetHistogram(nullptr, obs::kBpIterations), nullptr);
  // Recording against null handles must be a silent no-op.
  obs::Add(static_cast<obs::Counter*>(nullptr));
  obs::Set(static_cast<obs::Gauge*>(nullptr), 1.0);
  obs::Observe(static_cast<obs::Histogram*>(nullptr), 1.0);
}

TEST(MetricsRegistryTest, EveryCatalogEntryRegistersUnderItsDeclaredType) {
  obs::MetricsRegistry reg;
  for (const obs::MetricDef* def : obs::AllMetricDefs()) {
    switch (def->type) {
      case obs::MetricType::kCounter:
        EXPECT_NE(reg.GetCounter(*def), nullptr) << def->name;
        break;
      case obs::MetricType::kGauge:
        EXPECT_NE(reg.GetGauge(*def), nullptr) << def->name;
        break;
      case obs::MetricType::kHistogram:
        EXPECT_NE(reg.GetHistogram(*def), nullptr) << def->name;
        break;
    }
  }
  obs::RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.size() + snap.gauges.size() +
                snap.histograms.size(),
            obs::AllMetricDefs().size());
}

// Registration and recording from many threads at once; the assertions prove
// no update was lost, and a TRENDSPEED_SANITIZE=thread build proves the
// paths race-free.
TEST(MetricsRegistryTest, ConcurrentRegisterAndRecord) {
  obs::MetricsRegistry reg;
  ThreadPool pool(4);
  pool.AttachMetrics(&reg);  // exercise instrumented Submit concurrently
  constexpr size_t kIters = 4000;
  pool.ParallelFor(kIters, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Re-register every time: get-or-register must be thread-safe and
      // idempotent under contention.
      obs::Counter* c = reg.GetCounter(obs::kBpRunsTotal);
      obs::Gauge* g = reg.GetGauge(obs::kServingStalenessSlots);
      obs::Histogram* h = reg.GetHistogram(obs::kBpResidual);
      c->Add();
      g->Set(static_cast<double>(i));
      h->Observe(1e-5);
    }
  });
  EXPECT_EQ(reg.GetCounter(obs::kBpRunsTotal)->Value(), kIters);
  EXPECT_EQ(reg.GetHistogram(obs::kBpResidual)->count(), kIters);
}

// ---------------------------------------------------------------------------
// Exporter goldens. Custom defs with known values so the full text output is
// deterministic and asserted byte-for-byte.
// ---------------------------------------------------------------------------

constexpr double kGoldenBounds[] = {0.5, 2.0};
const obs::MetricDef kGoldenRequests{"test_requests_total",
                                     obs::MetricType::kCounter, "Requests",
                                     "1"};
const obs::MetricDef kGoldenRequests500{"test_requests_total",
                                        obs::MetricType::kCounter, "Requests",
                                        "1", "code=\"500\""};
const obs::MetricDef kGoldenTemp{"test_temp", obs::MetricType::kGauge,
                                 "Temperature", "celsius"};
const obs::MetricDef kGoldenLatency{"test_latency",
                                    obs::MetricType::kHistogram, "Latency",
                                    "ms", "", kGoldenBounds, 2};

void FillGoldenRegistry(obs::MetricsRegistry* reg) {
  reg->GetCounter(kGoldenRequests)->Add(3);
  reg->GetCounter(kGoldenRequests500)->Add(1);
  reg->GetGauge(kGoldenTemp)->Set(-3.5);
  obs::Histogram* h = reg->GetHistogram(kGoldenLatency);
  h->Observe(0.25);  // bucket le=0.5
  h->Observe(1.5);   // bucket le=2
  h->Observe(10.0);  // +Inf
}

TEST(ExportTest, JsonGolden) {
  obs::MetricsRegistry reg;
  FillGoldenRegistry(&reg);
  const std::string expected = R"({
  "counters": [
    {"name": "test_requests_total", "labels": "", "unit": "1", "value": 3},
    {"name": "test_requests_total", "labels": "code=\"500\"", "unit": "1", "value": 1}
  ],
  "gauges": [
    {"name": "test_temp", "labels": "", "unit": "celsius", "value": -3.5}
  ],
  "histograms": [
    {"name": "test_latency", "labels": "", "unit": "ms", "buckets": [{"le": "0.5", "count": 1}, {"le": "2", "count": 2}, {"le": "inf", "count": 3}], "sum": 11.75, "count": 3}
  ]
}
)";
  EXPECT_EQ(reg.ToJson(), expected);
}

TEST(ExportTest, PrometheusGolden) {
  obs::MetricsRegistry reg;
  FillGoldenRegistry(&reg);
  const std::string expected =
      "# HELP test_requests_total Requests\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n"
      "test_requests_total{code=\"500\"} 1\n"
      "# HELP test_temp Temperature (celsius)\n"
      "# TYPE test_temp gauge\n"
      "test_temp -3.5\n"
      "# HELP test_latency Latency (ms)\n"
      "# TYPE test_latency histogram\n"
      "test_latency_bucket{le=\"0.5\"} 1\n"
      "test_latency_bucket{le=\"2\"} 2\n"
      "test_latency_bucket{le=\"+Inf\"} 3\n"
      "test_latency_sum 11.75\n"
      "test_latency_count 3\n";
  EXPECT_EQ(reg.ToPrometheus(), expected);
}

// A label value and HELP text using every character the 0.0.4 exposition
// format requires escaped: backslash, double-quote, newline. The exporter
// previously emitted them raw — an unparseable scrape (a newline inside a
// label value terminates the sample line mid-series) — and %g rendered
// non-finite gauges as "inf", which Prometheus rejects.
TEST(ExportTest, HostileLabelValuesAndHelpAreEscaped) {
  // Raw value: a"b<newline>c\d  — pre-formatted as msg="a"b\nc\d".
  const obs::MetricDef kHostile{"test_hostile_total",
                                obs::MetricType::kCounter,
                                "Line one\nline \\ two", "1",
                                "msg=\"a\"b\nc\\d\""};
  const obs::MetricDef kInfGauge{"test_saturation", obs::MetricType::kGauge,
                                 "Saturation", "1"};
  obs::MetricsRegistry reg;
  reg.GetCounter(kHostile)->Add(7);
  reg.GetGauge(kInfGauge)->Set(std::numeric_limits<double>::infinity());
  const std::string expected =
      "# HELP test_hostile_total Line one\\nline \\\\ two\n"
      "# TYPE test_hostile_total counter\n"
      "test_hostile_total{msg=\"a\\\"b\\nc\\\\d\"} 7\n"
      "# HELP test_saturation Saturation\n"
      "# TYPE test_saturation gauge\n"
      "test_saturation +Inf\n";
  EXPECT_EQ(reg.ToPrometheus(), expected);

  // The JSON export of the same registry must stay parseable too: control
  // characters \u-escaped or \n-escaped, non-finite numbers quoted.
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"labels\": \"msg=\\\"a\\\"b\\nc\\\\d\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": \"+Inf\""), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("msg")), json.find("\n  ],"));
}

TEST(ExportTest, FormatMetricValueSpellsNonFinitePerExposition) {
  EXPECT_EQ(obs::FormatMetricValue(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::FormatMetricValue(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(obs::FormatMetricValue(0.25), "0.25");
}

// The +Inf bucket must equal _count in every exported snapshot, even one
// taken while producers are mid-Observe (bucket cell and total are two
// separate relaxed increments). The exporter derives _count from the
// cumulative bucket total, so a snapshot whose independently-read count
// field is stale still renders the invariant.
TEST(ExportTest, HistogramCountDerivedFromBuckets) {
  obs::RegistrySnapshot snap;
  obs::HistogramSnapshot hs;
  hs.id = obs::MetricId{"test_torn", "", "Torn", "1"};
  hs.bounds = {1.0};
  hs.counts = {2, 1};  // +Inf cumulative = 3
  hs.count = 2;        // stale separate read, one increment behind
  hs.sum = 4.0;
  snap.histograms.push_back(hs);
  const std::string prom = obs::ToPrometheusText(snap);
  EXPECT_NE(prom.find("test_torn_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("test_torn_count 3\n"), std::string::npos);
  EXPECT_NE(obs::ToJsonText(snap).find("\"count\": 3"), std::string::npos);
}

// And MetricsRegistry::Snapshot() itself keeps count consistent with the
// buckets under concurrent observation: the invariant must hold in every
// snapshot, not just at quiescence. (Run under TRENDSPEED_SANITIZE=thread
// to validate the recording paths as well.)
TEST(ExportTest, SnapshotCountMatchesBucketSumUnderConcurrentObserve) {
  obs::MetricsRegistry reg;
  std::atomic<bool> stop{false};
  ThreadPool pool(3);
  for (int t = 0; t < 3; ++t) {
    pool.Submit([&] {
      obs::Histogram* h = reg.GetHistogram(obs::kBpResidual);
      while (!stop.load(std::memory_order_relaxed)) {
        h->Observe(1e-5);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    obs::RegistrySnapshot snap = reg.Snapshot();
    for (const obs::HistogramSnapshot& hs : snap.histograms) {
      uint64_t bucket_sum = 0;
      for (uint64_t c : hs.counts) bucket_sum += c;
      EXPECT_EQ(hs.count, bucket_sum) << hs.id.name;
    }
  }
  stop.store(true);
}

TEST(ExportTest, EmptyRegistryExportsAreWellFormed) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
  EXPECT_EQ(reg.ToPrometheus(), "");
}

// ---------------------------------------------------------------------------
// Trace recorder and spans.
// ---------------------------------------------------------------------------

TEST(TraceTest, RingBufferKeepsMostRecentEvents) {
  obs::TraceRecorder rec(4);
  for (uint64_t i = 0; i < 6; ++i) {
    rec.Record("e", /*start_ns=*/i, /*duration_ns=*/1, /*depth=*/0);
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: seq 2..5.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
  }
}

TEST(TraceTest, NullRecorderSpanIsNoOp) {
  obs::ScopedSpan span(nullptr, "nothing");  // must not crash or record
}

TEST(TraceTest, NestedSpansRecordDepthAndCloseInnerFirst) {
  obs::TraceRecorder rec(16);
  {
    obs::ScopedSpan outer(&rec, "outer");
    obs::ScopedSpan inner(&rec, "inner");
  }
  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The outer span encloses the inner one on the same clock.
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_NE(rec.ToJson().find("\"name\": \"inner\""), std::string::npos);
}

// Regression (this PR's trace bugfix): events used to carry no thread id or
// parent linkage, so two pool workers' spans collapsed into one
// indistinguishable stream and nesting could not be reconstructed from a
// recorded ring. Spans now stamp (thread_id, span_id, parent_id).
TEST(TraceTest, NestedSpansCarryParentLinkage) {
  obs::TraceRecorder rec(16);
  {
    obs::ScopedSpan outer(&rec, "outer");
    obs::ScopedSpan inner(&rec, "inner");
  }
  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(outer.parent_id, 0u);  // top-level span has no parent
  EXPECT_EQ(inner.thread_id, outer.thread_id);
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"thread_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
}

TEST(TraceTest, SpansFromTwoThreadsAreSeparableByThreadId) {
  obs::TraceRecorder rec(16);
  auto record_one = [&rec](const char* name) {
    obs::ScopedSpan span(&rec, name);
  };
  std::thread a([&] { record_one("from_a"); });
  a.join();
  std::thread b([&] { record_one("from_b"); });
  b.join();
  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  uint32_t tid_a = 0;
  uint32_t tid_b = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "from_a") tid_a = e.thread_id;
    if (std::string(e.name) == "from_b") tid_b = e.thread_id;
  }
  // Each thread's spans carry its own dense id; the two must be separable.
  EXPECT_NE(tid_a, tid_b);
  // Both threads record top-level spans: thread-local nesting state keeps
  // one thread's open span from becoming another thread's parent.
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].parent_id, 0u);
}

// ---------------------------------------------------------------------------
// Monotonic clock + WallTimer regression (the injected-clock contract).
// ---------------------------------------------------------------------------

uint64_t g_fake_now = 0;
uint64_t FakeClock() { return g_fake_now; }

class InjectedClockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now = 1'000'000;
    obs::SetMonotonicClockForTest(&FakeClock);
  }
  void TearDown() override { obs::SetMonotonicClockForTest(nullptr); }
};

TEST_F(InjectedClockTest, WallTimerReadsInjectedClock) {
  WallTimer timer;
  g_fake_now += 2'500'000;  // +2.5 ms
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 2.5);
  EXPECT_DOUBLE_EQ(timer.ElapsedMicros(), 2500.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedSeconds(), 0.0025);
  timer.Restart();
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 0.0);
}

// The regression this layer exists to prevent: a clock stepping backwards
// (NTP on a wall clock, or a misbehaving injected source) must clamp to a
// zero duration, never go negative or wrap to a huge unsigned value.
TEST_F(InjectedClockTest, BackwardsClockClampsToZero) {
  WallTimer timer;          // starts at 1'000'000
  g_fake_now = 400'000;     // clock steps BACKWARDS
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 0.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedSeconds(), 0.0);
  EXPECT_EQ(obs::ElapsedNanosSince(1'000'000), 0u);
}

TEST_F(InjectedClockTest, SpansUseTheInjectedClock) {
  obs::TraceRecorder rec(4);
  {
    obs::ScopedSpan span(&rec, "fake");
    g_fake_now += 7'000;
  }
  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 1'000'000u);
  EXPECT_EQ(events[0].duration_ns, 7'000u);
}

TEST(ClockTest, RealClockIsMonotone) {
  uint64_t a = obs::MonotonicNanos();
  uint64_t b = obs::MonotonicNanos();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------------------
// Thread pool instrumentation.
// ---------------------------------------------------------------------------

TEST(PoolMetricsTest, InlinePoolRecordsDeterministically) {
  // A zero-worker pool runs every submitted task inline, so the recorded
  // counts are exact, not racy.
  obs::MetricsRegistry reg;
  ThreadPool pool(0);
  ASSERT_EQ(pool.num_workers(), 0u);
  pool.AttachMetrics(&reg);
  EXPECT_EQ(reg.GetGauge(obs::kPoolWorkers)->Value(), 0.0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(reg.GetCounter(obs::kPoolTasksTotal)->Value(), 5u);
  EXPECT_EQ(reg.GetHistogram(obs::kPoolTaskWaitUs)->count(), 5u);
  EXPECT_EQ(reg.GetHistogram(obs::kPoolTaskRunUs)->count(), 5u);
  // Detach: subsequent submissions must not record.
  pool.AttachMetrics(nullptr);
  pool.Submit([&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(reg.GetCounter(obs::kPoolTasksTotal)->Value(), 5u);
}

TEST(PoolMetricsTest, WorkerPoolCountsEveryTask) {
  obs::MetricsRegistry reg;
  constexpr size_t kTasks = 64;
  {
    ThreadPool pool(2);
    pool.AttachMetrics(&reg);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([] {});
    }
    // Destructor joins after the queues drain, so by the end of this scope
    // every task has executed and recorded.
  }
  EXPECT_EQ(reg.GetCounter(obs::kPoolTasksTotal)->Value(), kTasks);
  EXPECT_EQ(reg.GetHistogram(obs::kPoolTaskRunUs)->count(), kTasks);
  EXPECT_EQ(reg.GetGauge(obs::kPoolQueueDepth)->Value(), 0.0);
}

// ---------------------------------------------------------------------------
// Config validation of the observability knobs.
// ---------------------------------------------------------------------------

TEST(ObservabilityConfigTest, ValidatesSlowIngestAndPoolFlag) {
  PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.observability.slow_ingest_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.observability.slow_ingest_ms =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(config.Validate().ok());
  config.observability.slow_ingest_ms =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(config.Validate().ok());
  config.observability.slow_ingest_ms = 250.0;
  config.observability.instrument_thread_pool = true;  // without a registry
  EXPECT_FALSE(config.Validate().ok());
  obs::MetricsRegistry reg;
  config.observability.metrics = &reg;
  EXPECT_TRUE(config.Validate().ok());
}

// ---------------------------------------------------------------------------
// End-to-end pipeline + serving instrumentation (shared trained estimator).
// ---------------------------------------------------------------------------

class ObsPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    registry_ = new obs::MetricsRegistry();
    trace_ = new obs::TraceRecorder(256);
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    config.observability.metrics = registry_;
    config.observability.trace = trace_;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok()) << est.status().ToString();
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> CleanObs(uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
    }
    return out;
  }

  uint64_t CounterValue(const obs::MetricDef& def) {
    return registry_->GetCounter(def)->Value();
  }

  static obs::MetricsRegistry* registry_;
  static obs::TraceRecorder* trace_;
  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

obs::MetricsRegistry* ObsPipelineTest::registry_ = nullptr;
obs::TraceRecorder* ObsPipelineTest::trace_ = nullptr;
TrafficSpeedEstimator* ObsPipelineTest::estimator_ = nullptr;
std::vector<RoadId>* ObsPipelineTest::seeds_ = nullptr;

TEST_F(ObsPipelineTest, EstimateRecordsBpAndEstimatorSeries) {
  uint64_t runs_before = CounterValue(obs::kBpRunsTotal);
  uint64_t estimates_before = CounterValue(obs::kEstimatesTotal);
  auto out = estimator_->Estimate(0, CleanObs(0));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(CounterValue(obs::kEstimatesTotal), estimates_before + 1);
  EXPECT_GT(CounterValue(obs::kBpRunsTotal), runs_before);
  EXPECT_GT(CounterValue(obs::kBpSweepsTotal), runs_before);
  EXPECT_GT(registry_->GetHistogram(obs::kEstimateLatencyMs)->count(), 0u);
  EXPECT_GT(registry_->GetHistogram(obs::kBpIterations)->count(), 0u);
  // Spans from both layers appear in the trace.
  std::string trace_json = trace_->ToJson();
  EXPECT_NE(trace_json.find("estimator/estimate"), std::string::npos);
  EXPECT_NE(trace_json.find("bp/infer"), std::string::npos);
}

TEST_F(ObsPipelineTest, SeedSelectionRecordsPerAlgorithmSeries) {
  uint64_t lazy_runs = CounterValue(obs::kSeedRunsLazyGreedy);
  uint64_t lazy_evals = CounterValue(obs::kSeedGainEvalsLazyGreedy);
  uint64_t rounds = CounterValue(obs::kSeedRoundsTotal);
  auto result = estimator_->SelectSeeds(4, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CounterValue(obs::kSeedRunsLazyGreedy), lazy_runs + 1);
  EXPECT_EQ(CounterValue(obs::kSeedGainEvalsLazyGreedy),
            lazy_evals + result->gain_evaluations);
  EXPECT_EQ(CounterValue(obs::kSeedRoundsTotal),
            rounds + result->seeds.size());
  EXPECT_GE(registry_->GetHistogram(obs::kSeedMarginalGain)->count(),
            result->seeds.size());

  uint64_t sg_runs = CounterValue(obs::kSeedRunsStochasticGreedy);
  auto sg = estimator_->SelectSeeds(4, SeedStrategy::kStochasticGreedy);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(CounterValue(obs::kSeedRunsStochasticGreedy), sg_runs + 1);

  uint64_t greedy_runs = CounterValue(obs::kSeedRunsGreedy);
  auto greedy = estimator_->SelectSeeds(4, SeedStrategy::kGreedy);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(CounterValue(obs::kSeedRunsGreedy), greedy_runs + 1);
}

TEST_F(ObsPipelineTest, MetricsDoNotChangeResults) {
  // The null-handle contract, end to end: identical estimator trained
  // without observability must select the same seeds and produce the same
  // speeds.
  const Dataset& d = SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto plain = TrafficSpeedEstimator::Train(&d.net, &d.history, config);
  ASSERT_TRUE(plain.ok());
  auto plain_seeds = plain->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(plain_seeds.ok());
  EXPECT_EQ(plain_seeds->seeds, *seeds_);
  auto instrumented = estimator_->Estimate(2, CleanObs(2));
  auto uninstrumented = plain->Estimate(2, CleanObs(2));
  ASSERT_TRUE(instrumented.ok());
  ASSERT_TRUE(uninstrumented.ok());
  EXPECT_EQ(instrumented->speeds.speed_kmh, uninstrumented->speeds.speed_kmh);
}

TEST_F(ObsPipelineTest, ServingStatsMatchRegistryMirrors) {
  obs::MetricsRegistry reg;  // session-local registry, clean counters
  ServingOptions opts;
  opts.validation = ValidationPolicy::kFilter;
  opts.dedup = DedupPolicy::kReject;
  opts.observability.metrics = &reg;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(session->Ingest(0, CleanObs(0)).ok());  // fresh estimate
  ASSERT_TRUE(session->Ingest(0, CleanObs(0)).ok());  // duplicate slot
  ASSERT_TRUE(session->Ingest(1, {}).ok());           // carry-forward
  // Malformed observation under kFilter: dropped + counted, slot estimated.
  std::vector<SeedSpeed> bad = CleanObs(2);
  bad.push_back({bad[0].road, -5.0});
  ASSERT_TRUE(session->Ingest(2, bad).ok());
  EXPECT_FALSE(session->Ingest(1, CleanObs(1)).ok());  // out-of-order
  // Duplicate roads under kReject fail the whole batch.
  std::vector<SeedSpeed> dupes = CleanObs(3);
  dupes.push_back(dupes[0]);
  EXPECT_FALSE(session->Ingest(3, dupes).ok());

  const ServingStats& s = session->stats();
  EXPECT_GT(s.slots_estimated, 0u);
  EXPECT_GT(s.duplicate_slots, 0u);
  EXPECT_GT(s.slots_carried_forward, 0u);
  EXPECT_GT(s.observations_filtered, 0u);
  EXPECT_GT(s.out_of_order_slots, 0u);
  EXPECT_GT(s.rejected_batches, 0u);

  auto value = [&](const obs::MetricDef& def) {
    return reg.GetCounter(def)->Value();
  };
  EXPECT_EQ(value(obs::kServingSlotsEstimatedTotal), s.slots_estimated);
  EXPECT_EQ(value(obs::kServingSlotsCarriedForwardTotal),
            s.slots_carried_forward);
  EXPECT_EQ(value(obs::kServingDuplicateSlotsTotal), s.duplicate_slots);
  EXPECT_EQ(value(obs::kServingOutOfOrderSlotsTotal), s.out_of_order_slots);
  EXPECT_EQ(value(obs::kServingRejectedBatchesTotal), s.rejected_batches);
  EXPECT_EQ(value(obs::kServingObservationsFilteredTotal),
            s.observations_filtered);
  EXPECT_EQ(value(obs::kServingObservationsDeduplicatedTotal),
            s.observations_deduplicated);
  EXPECT_EQ(value(obs::kServingEstimationFailuresTotal),
            s.estimation_failures);
  EXPECT_EQ(reg.GetHistogram(obs::kServingIngestLatencyMs)->count(),
            s.slots_estimated + s.slots_carried_forward + s.duplicate_slots +
                s.out_of_order_slots + s.rejected_batches);
  // Staleness gauge reflects the current streak (reset by slot 2's fresh
  // estimate).
  EXPECT_EQ(reg.GetGauge(obs::kServingStalenessSlots)->Value(), 0.0);
}

TEST_F(ObsPipelineTest, ServingValidatesSlowIngestThreshold) {
  ServingOptions opts;
  opts.observability.slow_ingest_ms = -1.0;
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
}

TEST_F(ObsPipelineTest, SlowIngestCounterUsesInjectedClock) {
  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.observability.metrics = &reg;
  opts.observability.slow_ingest_ms = 1.0;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  // Fake clock: Ingest appears to take 5 ms, above the 1 ms threshold. The
  // injected clock advances on every read, which also keeps the estimator's
  // internal timers sane.
  g_fake_now = 0;
  obs::SetMonotonicClockForTest(+[]() -> uint64_t {
    g_fake_now += 2'500'000;  // each read advances 2.5 ms
    return g_fake_now;
  });
  auto report = session->Ingest(0, CleanObs(0));
  obs::SetMonotonicClockForTest(nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(reg.GetCounter(obs::kServingSlowIngestsTotal)->Value(), 1u);
}

}  // namespace
}  // namespace trendspeed
