#include <cmath>

#include <gtest/gtest.h>

#include "crowd/aggregate.h"
#include "crowd/allocation.h"
#include "crowd/campaign.h"
#include "crowd/worker.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

WorkerPool::Options CleanPoolOptions() {
  WorkerPool::Options opts;
  opts.num_workers = 50;
  opts.bias_spread_kmh = 0.0;
  opts.noise_min_kmh = 1.0;
  opts.noise_max_kmh = 1.0;
  opts.max_outlier_prob = 0.0;
  return opts;
}

TEST(WorkerPoolTest, ProfilesWithinConfiguredRanges) {
  WorkerPool::Options opts;
  opts.num_workers = 300;
  opts.bias_spread_kmh = 2.0;
  opts.noise_min_kmh = 1.0;
  opts.noise_max_kmh = 5.0;
  opts.max_outlier_prob = 0.1;
  WorkerPool pool(opts);
  EXPECT_EQ(pool.size(), 300u);
  OnlineStats bias;
  for (uint32_t w = 0; w < pool.size(); ++w) {
    const WorkerProfile& p = pool.profile(w);
    bias.Add(p.bias_kmh);
    EXPECT_GE(p.noise_kmh, 1.0);
    EXPECT_LE(p.noise_kmh, 5.0);
    EXPECT_GE(p.outlier_prob, 0.0);
    EXPECT_LE(p.outlier_prob, 0.1);
  }
  EXPECT_NEAR(bias.mean(), 0.0, 0.5);
  EXPECT_NEAR(bias.stddev(), 2.0, 0.5);
}

TEST(WorkerPoolTest, HonestAnswersCenterOnTruthPlusBias) {
  WorkerPool pool(CleanPoolOptions());
  Rng rng(1);
  OnlineStats answers;
  for (int i = 0; i < 2000; ++i) {
    answers.Add(pool.Answer(7, 50.0, &rng).speed_kmh);
  }
  EXPECT_NEAR(answers.mean(), 50.0 + pool.profile(7).bias_kmh, 0.2);
  EXPECT_NEAR(answers.stddev(), 1.0, 0.1);
}

TEST(WorkerPoolTest, AnswersFlooredAtOne) {
  WorkerPool pool(CleanPoolOptions());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(pool.Answer(0, 0.5, &rng).speed_kmh, 1.0);
  }
}

TEST(WorkerPoolTest, DrawReturnsDistinctWorkers) {
  WorkerPool pool(CleanPoolOptions());
  Rng rng(3);
  auto drawn = pool.Draw(10, &rng);
  EXPECT_EQ(drawn.size(), 10u);
  std::sort(drawn.begin(), drawn.end());
  EXPECT_TRUE(std::adjacent_find(drawn.begin(), drawn.end()) == drawn.end());
  // Asking for more than exist caps at pool size.
  EXPECT_EQ(pool.Draw(1000, &rng).size(), pool.size());
}

std::vector<WorkerAnswer> MakeAnswers(std::vector<double> values) {
  std::vector<WorkerAnswer> out;
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(WorkerAnswer{static_cast<uint32_t>(i), values[i]});
  }
  return out;
}

TEST(AggregateTest, MeanMedianTrimmed) {
  auto answers = MakeAnswers({40, 42, 44, 46, 120});  // one outlier
  AggregateOptions mean_opts;
  mean_opts.method = AggregationMethod::kMean;
  auto mean = AggregateAnswers(answers, mean_opts);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(*mean, 58.4, 1e-9);

  AggregateOptions median_opts;
  median_opts.method = AggregationMethod::kMedian;
  auto median = AggregateAnswers(answers, median_opts);
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(*median, 44.0, 1e-9);

  AggregateOptions trim_opts;
  trim_opts.method = AggregationMethod::kTrimmedMean;
  trim_opts.trim_fraction = 0.2;  // drops 1 from each end
  auto trimmed = AggregateAnswers(answers, trim_opts);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_NEAR(*trimmed, 44.0, 1e-9);
}

TEST(AggregateTest, MedianOfEvenCountInterpolates) {
  auto answers = MakeAnswers({40, 50});
  AggregateOptions opts;
  opts.method = AggregationMethod::kMedian;
  auto median = AggregateAnswers(answers, opts);
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(*median, 45.0, 1e-9);
}

TEST(AggregateTest, ValidatesInput) {
  AggregateOptions opts;
  EXPECT_FALSE(AggregateAnswers({}, opts).ok());
  opts.method = AggregationMethod::kReliabilityWeighted;
  EXPECT_FALSE(AggregateAnswers(MakeAnswers({1}), opts).ok());
  opts.method = AggregationMethod::kTrimmedMean;
  opts.trim_fraction = 0.6;
  EXPECT_FALSE(AggregateAnswers(MakeAnswers({1}), opts).ok());
}

TEST(ReliabilityTrackerTest, DownWeightsConsistentlyWrongWorkers) {
  ReliabilityTracker tracker(2);
  EXPECT_DOUBLE_EQ(tracker.WeightOf(0), 1.0);
  for (int i = 0; i < 50; ++i) {
    tracker.Record(0, 50.0, 50.0);  // always matches consensus
    tracker.Record(1, 80.0, 50.0);  // always 30 km/h off
  }
  EXPECT_GT(tracker.WeightOf(0), 0.9);
  EXPECT_LT(tracker.WeightOf(1), 0.2);
  EXPECT_NEAR(tracker.MeanAbsError(1), 30.0, 2.0);
  EXPECT_EQ(tracker.AnswerCount(0), 50u);
}

TEST(AggregateTest, ReliabilityWeightingSuppressesBadWorker) {
  ReliabilityTracker tracker(3);
  // Teach the tracker that worker 2 is unreliable.
  for (int i = 0; i < 40; ++i) {
    tracker.Record(0, 50.0, 50.0);
    tracker.Record(1, 51.0, 50.0);
    tracker.Record(2, 90.0, 50.0);
  }
  std::vector<WorkerAnswer> answers = {{0, 40.0}, {1, 42.0}, {2, 100.0}};
  AggregateOptions opts;
  opts.method = AggregationMethod::kReliabilityWeighted;
  opts.tracker = &tracker;
  auto result = AggregateAnswers(answers, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(*result, 50.0);  // far closer to the good workers than the mean
}

TEST(CampaignTest, CollectsAggregatedSeedSpeeds) {
  WorkerPool::Options popts = CleanPoolOptions();
  popts.num_workers = 100;
  WorkerPool pool(popts);
  CampaignOptions copts;
  copts.workers_per_seed = 5;
  CrowdCampaign campaign(&pool, copts);
  std::vector<double> truth = {30.0, 45.0, 60.0};
  auto obs = campaign.Collect({0, 2}, truth);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 2u);
  EXPECT_EQ((*obs)[0].road, 0u);
  EXPECT_NEAR((*obs)[0].speed_kmh, 30.0, 4.0);
  EXPECT_NEAR((*obs)[1].speed_kmh, 60.0, 4.0);
  EXPECT_EQ(campaign.answers_spent(), 10u);
}

TEST(CampaignTest, MoreWorkersReduceObservationError) {
  WorkerPool::Options popts;
  popts.num_workers = 400;
  popts.noise_min_kmh = 4.0;
  popts.noise_max_kmh = 8.0;
  popts.max_outlier_prob = 0.1;
  popts.seed = 9;
  WorkerPool pool(popts);
  auto observe_error = [&](uint32_t workers_per_seed, uint64_t seed) {
    CampaignOptions copts;
    copts.workers_per_seed = workers_per_seed;
    copts.seed = seed;
    CrowdCampaign campaign(&pool, copts);
    std::vector<double> truth(50, 40.0);
    std::vector<RoadId> roads;
    for (RoadId r = 0; r < 50; ++r) roads.push_back(r);
    OnlineStats err;
    for (int round = 0; round < 20; ++round) {
      auto obs = campaign.Collect(roads, truth);
      TS_CHECK(obs.ok());
      for (const SeedSpeed& s : *obs) err.Add(std::fabs(s.speed_kmh - 40.0));
    }
    return err.mean();
  };
  double err1 = observe_error(1, 11);
  double err7 = observe_error(7, 12);
  EXPECT_LT(err7, err1 * 0.6);
}

TEST(CampaignTest, RejectsOutOfRangeRoads) {
  WorkerPool pool(CleanPoolOptions());
  CrowdCampaign campaign(&pool, {});
  std::vector<double> truth = {30.0};
  EXPECT_FALSE(campaign.Collect({5}, truth).ok());
}

TEST(AllocationTest, ProportionalWithFloor) {
  auto alloc = AllocateAnswers({3.0, 1.0, 0.0}, 11);
  ASSERT_TRUE(alloc.ok());
  // 3 floors + 8 proportional: 6, 2, 0 -> totals 7, 3, 1.
  EXPECT_EQ((*alloc)[0], 7u);
  EXPECT_EQ((*alloc)[1], 3u);
  EXPECT_EQ((*alloc)[2], 1u);
  uint32_t sum = 0;
  for (uint32_t a : *alloc) sum += a;
  EXPECT_EQ(sum, 11u);
}

TEST(AllocationTest, ExactSumUnderFractionalShares) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.NextIndex(20);
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.Uniform(0.0, 2.0);
    uint32_t budget = static_cast<uint32_t>(n + rng.NextIndex(100));
    auto alloc = AllocateAnswers(weights, budget);
    ASSERT_TRUE(alloc.ok());
    uint32_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE((*alloc)[i], 1u);
      sum += (*alloc)[i];
    }
    EXPECT_EQ(sum, budget);
  }
}

TEST(AllocationTest, UniformWhenWeightsAllZero) {
  auto alloc = AllocateAnswers({0.0, 0.0, 0.0, 0.0}, 10);
  ASSERT_TRUE(alloc.ok());
  for (uint32_t a : *alloc) {
    EXPECT_GE(a, 2u);
    EXPECT_LE(a, 3u);
  }
}

TEST(AllocationTest, ValidatesInput) {
  EXPECT_FALSE(AllocateAnswers({}, 5).ok());
  EXPECT_FALSE(AllocateAnswers({1.0, 1.0, 1.0}, 2).ok());
  EXPECT_FALSE(AllocateAnswers({-1.0}, 5).ok());
}

TEST(CampaignTest, AllocatedCollectionSpendsExactBudget) {
  WorkerPool pool(CleanPoolOptions());
  CrowdCampaign campaign(&pool, {});
  std::vector<double> truth = {30.0, 45.0, 60.0};
  auto alloc = AllocateAnswers({2.0, 1.0, 1.0}, 9);
  ASSERT_TRUE(alloc.ok());
  auto obs = campaign.CollectAllocated({0, 1, 2}, *alloc, truth);
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(campaign.answers_spent(), 9u);
  EXPECT_EQ(obs->size(), 3u);
  EXPECT_FALSE(
      campaign.CollectAllocated({0, 1}, {1, 1, 1}, truth).ok());
  EXPECT_FALSE(campaign.CollectAllocated({0}, {0}, truth).ok());
}

}  // namespace
}  // namespace trendspeed
