#include <cmath>

#include <gtest/gtest.h>

#include "roadnet/shortest_path.h"
#include "test_util.h"
#include "traffic/disturbance.h"
#include "traffic/incidents.h"
#include "traffic/profiles.h"
#include "traffic/simulator.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

using testing_util::SmallGrid;

TEST(SlotClockTest, CalendarArithmetic) {
  SlotClock clock{144};
  EXPECT_EQ(clock.SlotOfDay(0), 0u);
  EXPECT_EQ(clock.SlotOfDay(145), 1u);
  EXPECT_EQ(clock.DayIndex(144 * 3 + 7), 3u);
  EXPECT_EQ(clock.DayOfWeek(144 * 7), 0u);     // day 7 wraps to Monday
  EXPECT_FALSE(clock.IsWeekend(0));            // Monday
  EXPECT_TRUE(clock.IsWeekend(144 * 5));       // Saturday
  EXPECT_TRUE(clock.IsWeekend(144 * 6));       // Sunday
  EXPECT_EQ(clock.SlotOfWeek(144 * 8 + 5), 144u + 5u);
  EXPECT_NEAR(clock.HourOfDay(72), 12.0, 1e-9);
}

TEST(ProfilesTest, RushHourSlowerThanNight) {
  for (RoadClass rc :
       {RoadClass::kHighway, RoadClass::kArterial, RoadClass::kLocal}) {
    double rush = BaseCongestionFactor(rc, 8.0, /*weekend=*/false);
    double night = BaseCongestionFactor(rc, 3.0, /*weekend=*/false);
    EXPECT_LT(rush, night) << RoadClassName(rc);
    EXPECT_GT(rush, 0.2);
    EXPECT_LE(night, 1.0);
  }
}

TEST(ProfilesTest, WeekendHasNoMorningRush) {
  double weekday = BaseCongestionFactor(RoadClass::kArterial, 8.0, false);
  double weekend = BaseCongestionFactor(RoadClass::kArterial, 8.0, true);
  EXPECT_GT(weekend, weekday);
}

TEST(ProfilesTest, ArterialsCongestHardest) {
  double art = BaseCongestionFactor(RoadClass::kArterial, 18.0, false);
  double local = BaseCongestionFactor(RoadClass::kLocal, 18.0, false);
  EXPECT_LT(art, local);
}

TEST(ProfilesTest, FactorAlwaysInPhysicalRange) {
  for (double h = 0.0; h < 24.0; h += 0.25) {
    for (bool weekend : {false, true}) {
      for (RoadClass rc :
           {RoadClass::kHighway, RoadClass::kArterial, RoadClass::kLocal}) {
        double f = BaseCongestionFactor(rc, h, weekend);
        EXPECT_GE(f, 0.25);
        EXPECT_LE(f, 1.0);
      }
    }
  }
}

TEST(DisturbanceTest, NeighboursCorrelateMoreThanDistantRoads) {
  RoadNetwork net = SmallGrid();
  DisturbanceOptions opts;
  opts.diffusion_rounds = 3;
  DisturbanceField field(&net, opts, Rng(5));
  // Sample a long series and compare correlation of adjacent vs far roads.
  // Pick a same-class adjacent road: corridor coupling is the strong one.
  RoadId a = 0;
  RoadId adj = kInvalidRoad;
  for (RoadId s : net.RoadSuccessors(a)) {
    if (net.road(s).road_class == net.road(a).road_class) {
      adj = s;
      break;
    }
  }
  ASSERT_NE(adj, kInvalidRoad);
  // Find a far road (max hops).
  auto dist = RoadHopDistances(net, a, 1000);
  RoadId far = a;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    if (dist[r] != kUnreachable && dist[r] > dist[far]) far = r;
  }
  std::vector<double> sa, sn, sf;
  for (int t = 0; t < 2000; ++t) {
    const auto& s = field.Step();
    sa.push_back(s[a]);
    sn.push_back(s[adj]);
    sf.push_back(s[far]);
  }
  double near_corr = PearsonCorrelation(sa, sn);
  double far_corr = PearsonCorrelation(sa, sf);
  EXPECT_GT(near_corr, 0.4);
  EXPECT_GT(near_corr, far_corr + 0.15);
}

TEST(DisturbanceTest, StationaryScale) {
  RoadNetwork net = SmallGrid();
  DisturbanceOptions opts;
  DisturbanceField field(&net, opts, Rng(6));
  OnlineStats stats;
  for (int t = 0; t < 3000; ++t) {
    for (double v : field.Step()) stats.Add(v);
  }
  // Zero-mean with bounded spread (AR(1) stationary sd is
  // sigma/sqrt(1-rho^2) before diffusion shrinks it).
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_LT(stats.stddev(), 0.3);
  EXPECT_GT(stats.stddev(), 0.02);
}

TEST(IncidentsTest, NoIncidentsAtZeroRate) {
  RoadNetwork net = SmallGrid();
  IncidentOptions opts;
  opts.rate_per_slot = 0.0;
  IncidentProcess proc(&net, opts, Rng(7));
  for (uint64_t s = 0; s < 100; ++s) {
    for (double f : proc.FactorsAt(s)) EXPECT_DOUBLE_EQ(f, 1.0);
  }
  EXPECT_TRUE(proc.history().empty());
}

TEST(IncidentsTest, IncidentSlowsRoadAndSpills) {
  RoadNetwork net = SmallGrid();
  IncidentOptions opts;
  opts.rate_per_slot = 5.0;  // force arrivals immediately
  opts.spill_hops = 2;
  IncidentProcess proc(&net, opts, Rng(8));
  const auto& factors = proc.FactorsAt(0);
  ASSERT_FALSE(proc.active().empty());
  const Incident& inc = proc.active()[0];
  EXPECT_NEAR(factors[inc.road], inc.severity, 0.35);  // maybe overlapped
  EXPECT_LT(factors[inc.road], 1.0);
  // A direct neighbour is affected but less than the incident road.
  auto succ = net.RoadSuccessors(inc.road);
  if (!succ.empty()) {
    EXPECT_LE(factors[inc.road], factors[succ[0]] + 1e-12);
  }
}

TEST(IncidentsTest, IncidentsExpire) {
  RoadNetwork net = SmallGrid();
  IncidentOptions opts;
  opts.rate_per_slot = 1.0;
  opts.duration_min = 1;
  opts.duration_max = 2;
  IncidentProcess proc(&net, opts, Rng(9));
  proc.FactorsAt(0);
  size_t spawned = proc.history().size();
  // Far in the future with rate forced to keep spawning; instead advance and
  // verify every active incident's window covers the queried slot.
  for (uint64_t s = 1; s < 50; ++s) {
    proc.FactorsAt(s);
    for (const Incident& inc : proc.active()) {
      EXPECT_GT(inc.end_slot, s);
    }
  }
  EXPECT_GE(proc.history().size(), spawned);
}

TEST(SimulatorTest, SpeedsWithinBounds) {
  RoadNetwork net = SmallGrid();
  TrafficOptions opts;
  TrafficSimulator sim(&net, opts);
  for (int t = 0; t < 500; ++t) {
    const auto& speeds = sim.Step();
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      EXPECT_GE(speeds[r], opts.min_speed_kmh);
      EXPECT_LE(speeds[r],
                net.road(r).free_flow_kmh * opts.max_over_free_flow + 1e-9);
    }
  }
  EXPECT_EQ(sim.current_slot(), 499u);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  RoadNetwork net = SmallGrid();
  TrafficOptions opts;
  opts.seed = 77;
  TrafficSimulator a(&net, opts), b(&net, opts);
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(a.Step(), b.Step());
  }
}

TEST(SimulatorTest, RushHourDipVisibleInDailyAverage) {
  RoadNetwork net = SmallGrid();
  TrafficOptions opts;
  opts.incidents.rate_per_slot = 0.0;  // isolate the profile
  auto field = GenerateSpeedField(net, opts, 7);
  ASSERT_TRUE(field.ok());
  SlotClock clock{opts.slots_per_day};
  // Average weekday speed at 08:00 vs 03:00 across all roads and days.
  OnlineStats rush, night;
  for (uint64_t slot = 0; slot < field->num_slots(); ++slot) {
    if (clock.IsWeekend(slot)) continue;
    double hour = clock.HourOfDay(slot);
    bool is_rush = std::fabs(hour - 8.0) < 0.5;
    bool is_night = std::fabs(hour - 3.0) < 0.5;
    if (!is_rush && !is_night) continue;
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      (is_rush ? rush : night).Add(field->at(slot, r));
    }
  }
  EXPECT_LT(rush.mean(), night.mean() * 0.85);
}

TEST(SimulatorTest, GenerateFieldShape) {
  RoadNetwork net = SmallGrid();
  TrafficOptions opts;
  auto field = GenerateSpeedField(net, opts, 2);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->num_slots(), 2u * opts.slots_per_day);
  EXPECT_EQ(field->num_roads(), net.num_roads());
  EXPECT_FALSE(GenerateSpeedField(net, opts, 0).ok());
}

}  // namespace
}  // namespace trendspeed
