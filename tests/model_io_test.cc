#include <cstdio>

#include <gtest/gtest.h>

#include "core/model_io.h"
#include "test_util.h"
#include "util/binary_io.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.PutTag("TEST", 3);
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(uint64_t{1} << 40);
  w.PutF64(-2.5);
  w.PutF32(1.25f);
  w.PutString("hello");
  w.PutVec(std::vector<double>{1.0, 2.0, 3.0});
  BinaryReader r(w.buffer());
  auto version = r.ExpectTag("TEST");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 3u);
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 123456u);
  EXPECT_EQ(*r.GetU64(), uint64_t{1} << 40);
  EXPECT_DOUBLE_EQ(*r.GetF64(), -2.5);
  EXPECT_FLOAT_EQ(*r.GetF32(), 1.25f);
  EXPECT_EQ(*r.GetString(), "hello");
  auto vec = r.GetVec<double>();
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->size(), 3u);
  EXPECT_DOUBLE_EQ((*vec)[2], 3.0);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncationAndBadTagFail) {
  BinaryWriter w;
  w.PutU64(1000);  // claims 1000 elements, provides none
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetVec<double>().ok());

  BinaryWriter w2;
  w2.PutTag("AAAA", 1);
  BinaryReader r2(w2.buffer());
  EXPECT_FALSE(r2.ExpectTag("BBBB").ok());

  BinaryReader r3("");
  EXPECT_FALSE(r3.GetU32().ok());
}

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
  }
  const Dataset& ds() { return SharedTinyDataset(); }
  static TrafficSpeedEstimator* estimator_;
};

TrafficSpeedEstimator* ModelIoTest::estimator_ = nullptr;

TEST_F(ModelIoTest, SerializedModelEstimatesIdentically) {
  std::string bytes = SerializeTrainedModel(*estimator_);
  EXPECT_GT(bytes.size(), 1000u);
  auto loaded = DeserializeTrainedModel(&ds().net, &ds().history, bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Seed selection and a full estimate must match bit-for-bit.
  auto s1 = estimator_->SelectSeeds(6, SeedStrategy::kGreedy);
  auto s2 = loaded->SelectSeeds(6, SeedStrategy::kGreedy);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->seeds, s2->seeds);
  EXPECT_DOUBLE_EQ(s1->objective, s2->objective);

  uint64_t slot = ds().first_test_slot() + 5;
  std::vector<SeedSpeed> obs;
  for (RoadId r : s1->seeds) obs.push_back({r, ds().truth.at(slot, r)});
  auto o1 = estimator_->Estimate(slot, obs);
  auto o2 = loaded->Estimate(slot, obs);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->speeds.speed_kmh, o2->speeds.speed_kmh);
  EXPECT_EQ(o1->trends.p_up, o2->trends.p_up);
}

TEST_F(ModelIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/trendspeed_model.bin";
  ASSERT_TRUE(SaveTrainedModel(*estimator_, path).ok());
  auto loaded = LoadTrainedModel(&ds().net, &ds().history, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->correlation_graph().num_edges(),
            estimator_->correlation_graph().num_edges());
  EXPECT_EQ(loaded->speed_model().num_road_models(),
            estimator_->speed_model().num_road_models());
  std::remove(path.c_str());
}

TEST_F(ModelIoTest, RejectsWrongNetwork) {
  std::string bytes = SerializeTrainedModel(*estimator_);
  RoadNetwork other = testing_util::PathNetwork();
  HistoricalDb other_db = testing_util::AlternatingHistory(other, 16);
  EXPECT_FALSE(DeserializeTrainedModel(&other, &other_db, bytes).ok());
}

TEST_F(ModelIoTest, RejectsCorruptBytes) {
  std::string bytes = SerializeTrainedModel(*estimator_);
  // Truncated.
  EXPECT_FALSE(DeserializeTrainedModel(&ds().net, &ds().history,
                                       bytes.substr(0, bytes.size() / 2))
                   .ok());
  // Wrong magic.
  std::string garbled = bytes;
  garbled[0] = 'X';
  EXPECT_FALSE(
      DeserializeTrainedModel(&ds().net, &ds().history, garbled).ok());
  // Empty.
  EXPECT_FALSE(DeserializeTrainedModel(&ds().net, &ds().history, "").ok());
}

TEST_F(ModelIoTest, ConfigSurvivesRoundTrip) {
  const Dataset& d = ds();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  config.trend.engine = TrendEngine::kIcm;
  config.propagation.mode = AggregationMode::kLayered;
  config.use_trend_evidence = false;
  auto est = TrafficSpeedEstimator::Train(&d.net, &d.history, config);
  ASSERT_TRUE(est.ok());
  auto loaded = DeserializeTrainedModel(&d.net, &d.history,
                                        SerializeTrainedModel(*est));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->config().trend.engine, TrendEngine::kIcm);
  EXPECT_EQ(loaded->config().propagation.mode, AggregationMode::kLayered);
  EXPECT_FALSE(loaded->config().use_trend_evidence);
}

}  // namespace
}  // namespace trendspeed
