// Cross-cutting pipeline properties: structural symmetries, graceful
// degradation, and invariance to parallelism.

#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "crowd/campaign.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

class PipelinePropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
  }
  const Dataset& ds() { return SharedTinyDataset(); }
  static TrafficSpeedEstimator* estimator_;
};

TrafficSpeedEstimator* PipelinePropertyTest::estimator_ = nullptr;

TEST_F(PipelinePropertyTest, InfluenceIsSymmetric) {
  // Best-path products over an undirected graph are symmetric in magnitude
  // and sign: w_ij == w_ji.
  const InfluenceModel& infl = estimator_->influence();
  for (RoadId i = 0; i < infl.num_roads(); ++i) {
    for (const CoverEntry& c : infl.CoverList(i)) {
      bool found = false;
      for (const CoverEntry& back : infl.CoverList(c.road)) {
        if (back.road == i) {
          found = true;
          EXPECT_NEAR(back.influence, c.influence, 1e-6)
              << "asymmetric influence " << i << " <-> " << c.road;
        }
      }
      EXPECT_TRUE(found) << "one-sided influence " << i << " -> " << c.road;
    }
  }
}

TEST_F(PipelinePropertyTest, EmptySeedSetDegradesToPrior) {
  uint64_t slot = ds().first_test_slot() + 7;
  auto out = estimator_->Estimate(slot, {});
  ASSERT_TRUE(out.ok());
  // With no observations, speeds should stay near the historical norm.
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    double hist = ds().history.HistoricalMeanOr(
        r, slot, ds().net.road(r).free_flow_kmh);
    EXPECT_GT(out->speeds.speed_kmh[r], 0.0);
    EXPECT_NEAR(out->speeds.speed_kmh[r], hist, 0.35 * hist) << "road " << r;
  }
}

TEST_F(PipelinePropertyTest, DuplicateSeedsAreHarmless) {
  uint64_t slot = ds().first_test_slot() + 3;
  std::vector<SeedSpeed> once = {{0, 30.0}, {5, 40.0}};
  std::vector<SeedSpeed> twice = {{0, 30.0}, {5, 40.0}, {0, 30.0}};
  auto a = estimator_->Estimate(slot, once);
  auto b = estimator_->Estimate(slot, twice);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    // Duplicates double the aggregation weight of seed 0 but carry the same
    // deviation, so results stay close (and seeds identical).
    EXPECT_NEAR(a->speeds.speed_kmh[r], b->speeds.speed_kmh[r], 3.0);
  }
  EXPECT_DOUBLE_EQ(b->speeds.speed_kmh[0], 30.0);
}

TEST_F(PipelinePropertyTest, TrainingInvariantToThreadCount) {
  const Dataset& d = ds();
  PipelineConfig one;
  one.corr.min_co_observed = 8;
  one.corr.num_threads = 1;
  one.speed.num_threads = 1;
  one.influence.num_threads = 1;
  PipelineConfig four = one;
  four.corr.num_threads = 4;
  four.speed.num_threads = 4;
  four.influence.num_threads = 4;
  auto est1 = TrafficSpeedEstimator::Train(&d.net, &d.history, one);
  auto est4 = TrafficSpeedEstimator::Train(&d.net, &d.history, four);
  ASSERT_TRUE(est1.ok());
  ASSERT_TRUE(est4.ok());
  EXPECT_EQ(est1->correlation_graph().num_edges(),
            est4->correlation_graph().num_edges());
  auto s1 = est1->SelectSeeds(6, SeedStrategy::kGreedy);
  auto s4 = est4->SelectSeeds(6, SeedStrategy::kGreedy);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s4.ok());
  EXPECT_EQ(s1->seeds, s4->seeds);
  uint64_t slot = d.first_test_slot();
  std::vector<SeedSpeed> obs;
  for (RoadId r : s1->seeds) obs.push_back({r, d.truth.at(slot, r)});
  auto o1 = est1->Estimate(slot, obs);
  auto o4 = est4->Estimate(slot, obs);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o4.ok());
  EXPECT_EQ(o1->speeds.speed_kmh, o4->speeds.speed_kmh);
}

TEST_F(PipelinePropertyTest, CrowdObservationsFlowThroughPipeline) {
  // End-to-end: crowd campaign -> estimator, vs perfect observations.
  auto seeds = estimator_->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  WorkerPool::Options popts;
  popts.num_workers = 100;
  popts.noise_min_kmh = 1.0;
  popts.noise_max_kmh = 3.0;
  popts.max_outlier_prob = 0.02;
  WorkerPool pool(popts);
  CampaignOptions copts;
  copts.workers_per_seed = 3;
  CrowdCampaign campaign(&pool, copts);
  uint64_t slot = ds().first_test_slot() + 11;
  auto obs = campaign.Collect(seeds->seeds, ds().truth.speeds[slot]);
  ASSERT_TRUE(obs.ok());
  auto out = estimator_->Estimate(slot, *obs);
  ASSERT_TRUE(out.ok());
  std::vector<SeedSpeed> perfect;
  for (RoadId r : seeds->seeds) perfect.push_back({r, ds().truth.at(slot, r)});
  auto out_perfect = estimator_->Estimate(slot, perfect);
  ASSERT_TRUE(out_perfect.ok());
  // Crowd-noised results stay close to the perfect-observation results.
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    EXPECT_NEAR(out->speeds.speed_kmh[r], out_perfect->speeds.speed_kmh[r],
                8.0)
        << "road " << r;
  }
}

TEST_F(PipelinePropertyTest, PUpAndTrendAreConsistent) {
  auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t slot = ds().first_test_slot() + 2;
  std::vector<SeedSpeed> obs;
  for (RoadId r : seeds->seeds) obs.push_back({r, ds().truth.at(slot, r)});
  auto out = estimator_->Estimate(slot, obs);
  ASSERT_TRUE(out.ok());
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    EXPECT_EQ(out->trends.trend[r], out->trends.p_up[r] >= 0.5 ? 1 : -1);
  }
}

}  // namespace
}  // namespace trendspeed
