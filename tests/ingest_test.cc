// Tests for the lock-free MPSC ingest front-end (core/ingest.h) and the
// bounded queue underneath it (util/mpsc_queue.h): queue semantics,
// slot-batched admission, backpressure accounting, the single-producer
// bitwise-determinism contract, and the multi-producer stats-vs-registry
// equivalence (run under TRENDSPEED_SANITIZE=thread — the regression that
// motivated making ServingStats atomic).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ingest.h"
#include "core/serving.h"
#include "obs/catalog.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

// ---------------------------------------------------------------------------
// MpscBoundedQueue primitives.
// ---------------------------------------------------------------------------

TEST(MpscQueueTest, FifoWithinCapacity) {
  MpscBoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.EmptyApprox());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));  // empty
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  MpscBoundedQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpscBoundedQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(MpscQueueTest, WrapsAroundManyTimes) {
  MpscBoundedQueue<uint64_t> q(8);
  uint64_t popped = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.TryPush(i));
    uint64_t v;
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
    ++popped;
  }
  EXPECT_EQ(popped, 1000u);
}

TEST(MpscQueueTest, DestructorReleasesUnpoppedElements) {
  // Move-only payload with no default constructor: leftover elements must
  // be destroyed in place, not popped into a scratch value.
  auto counter = std::make_shared<int>(0);
  struct Tracker {
    explicit Tracker(std::shared_ptr<int> c) : count(std::move(c)) {}
    ~Tracker() {
      if (count) ++*count;
    }
    Tracker(Tracker&&) = default;
    Tracker& operator=(Tracker&&) = default;
    std::shared_ptr<int> count;
  };
  {
    MpscBoundedQueue<Tracker> q(8);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(Tracker(counter)));
  }
  EXPECT_EQ(*counter, 5);
}

TEST(MpscQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  MpscBoundedQueue<uint64_t> q(256);
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Encode (producer, seq) so the consumer can check per-producer
        // FIFO order; spin on backpressure so nothing is dropped.
        uint64_t v = static_cast<uint64_t>(p) << 32 | i;
        while (!q.TryPush(v)) std::this_thread::yield();
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<uint64_t> next_seq(kProducers, 0);
  uint64_t drained = 0;
  while (drained < kProducers * kPerProducer) {
    uint64_t v;
    if (!q.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    uint64_t p = v >> 32;
    uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, static_cast<uint64_t>(kProducers));
    // Per-producer order must be preserved through the MPSC queue.
    EXPECT_EQ(seq, next_seq[p]);
    next_seq[p] = seq + 1;
    ++drained;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_TRUE(q.EmptyApprox());
}

// ---------------------------------------------------------------------------
// IngestFrontEnd over a real serving session.
// ---------------------------------------------------------------------------

class IngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> CleanObs(uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
    }
    return out;
  }

  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* IngestTest::estimator_ = nullptr;
std::vector<RoadId>* IngestTest::seeds_ = nullptr;

TEST_F(IngestTest, QueueOptionsValidated) {
  ServingOptions opts;
  opts.ingest_queue.capacity = (size_t{1} << 30) + 1;
  EXPECT_FALSE(opts.Validate().ok());
  EXPECT_FALSE(ServingSession::Create(estimator_, opts).ok());
  opts.ingest_queue.capacity = size_t{1} << 10;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST_F(IngestTest, CreateRefusedWhenQueueDisabled) {
  auto session = ServingSession::Create(estimator_);  // capacity 0: off
  ASSERT_TRUE(session.ok());
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_FALSE(fe.ok());
  EXPECT_NE(fe.status().ToString().find("ingest_queue"), std::string::npos);
}

// The acceptance contract of the whole front-end: with one producer and
// one drain thread (here: the same thread), the served reports and stats
// are bitwise identical to calling Ingest directly with the same per-slot
// batches — the queue is pure plumbing, never a perturbation.
TEST_F(IngestTest, SingleProducerBitwiseIdenticalToDirectIngest) {
  auto direct = ServingSession::Create(estimator_);
  ASSERT_TRUE(direct.ok());
  ServingOptions opts;
  opts.ingest_queue.capacity = 1024;
  auto queued = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(queued.ok());
  auto fe = IngestFrontEnd::Create(&*queued);
  ASSERT_TRUE(fe.ok()) << fe.status().ToString();

  for (uint64_t slot = 0; slot < 5; ++slot) {
    std::vector<SeedSpeed> obs = slot == 3
                                     ? std::vector<SeedSpeed>{}  // carry-fwd
                                     : CleanObs(slot);
    auto want = direct->Ingest(slot, obs);
    for (const SeedSpeed& s : obs) {
      ASSERT_TRUE((*fe)->Offer(slot, s));
    }
    auto got = slot == 3 ? queued->Ingest(slot, obs)  // empty batch: no
                                                      // queue traffic
                         : (*fe)->Flush();
    ASSERT_EQ(want.ok(), got.ok());
    if (!want.ok()) continue;
    EXPECT_EQ(got->slot, want->slot);
    EXPECT_EQ(got->stale, want->stale);
    EXPECT_EQ(got->observations_used, want->observations_used);
    // Bitwise: EXPECT_EQ on double vectors is exact equality.
    EXPECT_EQ(got->monitor.estimate.speeds.speed_kmh,
              want->monitor.estimate.speeds.speed_kmh);
    EXPECT_EQ(got->monitor.estimate.speeds.deviation,
              want->monitor.estimate.speeds.deviation);
    EXPECT_EQ(got->monitor.mean_speed_kmh, want->monitor.mean_speed_kmh);
  }
  ServingStats ds_ = direct->stats();
  ServingStats qs = queued->stats();
  EXPECT_EQ(qs.slots_estimated, ds_.slots_estimated);
  EXPECT_EQ(qs.slots_carried_forward, ds_.slots_carried_forward);
  EXPECT_EQ(qs.rejected_batches, ds_.rejected_batches);
  EXPECT_EQ(qs.estimation_failures, ds_.estimation_failures);
}

TEST_F(IngestTest, BackpressureDropsAndCounts) {
  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.ingest_queue.capacity = 2;
  opts.observability.metrics = &reg;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe.ok());
  EXPECT_EQ((*fe)->capacity(), 2u);

  auto obs_batch = CleanObs(0);
  ASSERT_GE(obs_batch.size(), 5u);
  size_t accepted = 0;
  for (size_t i = 0; i < 5; ++i) {
    if ((*fe)->Offer(0, obs_batch[i])) ++accepted;
  }
  EXPECT_EQ(accepted, 2u);  // ring held 2, the rest shed
  EXPECT_EQ((*fe)->queue_depth(), 2u);
  IngestStats st = (*fe)->stats();
  EXPECT_EQ(st.enqueued, 2u);
  EXPECT_EQ(st.rejected_backpressure, 3u);
  EXPECT_EQ(reg.GetCounter(obs::kServingIngestEnqueuedTotal)->Value(), 2u);
  EXPECT_EQ(
      reg.GetCounter(obs::kServingIngestRejectedBackpressureTotal)->Value(),
      3u);

  auto report = (*fe)->Flush();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->observations_used, 2u);
  EXPECT_EQ((*fe)->queue_depth(), 0u);
  EXPECT_EQ(reg.GetGauge(obs::kServingIngestQueueDepth)->Value(), 0.0);
  EXPECT_EQ((*fe)->stats().flushed_slots, 1u);
}

TEST_F(IngestTest, FlushWithNothingPendingIsNotFound) {
  ServingOptions opts;
  opts.ingest_queue.capacity = 16;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe.ok());
  auto report = (*fe)->Flush();
  EXPECT_FALSE(report.ok());
}

TEST_F(IngestTest, StragglersBehindTheWatermarkAreDropped) {
  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.ingest_queue.capacity = 64;
  opts.observability.metrics = &reg;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe.ok());

  auto s5 = CleanObs(5);
  auto s6 = CleanObs(6);
  // FIFO arrival: slot 5, then slot 6 (advances the watermark), then a
  // late slot-5 observation — behind the watermark, dropped and counted.
  for (const SeedSpeed& s : s5) ASSERT_TRUE((*fe)->Offer(5, s));
  for (const SeedSpeed& s : s6) ASSERT_TRUE((*fe)->Offer(6, s));
  ASSERT_TRUE((*fe)->Offer(5, s5[0]));

  size_t flushed = (*fe)->Drain();
  EXPECT_EQ(flushed, 1u);  // slot 5 flushed when slot 6 appeared
  IngestStats st = (*fe)->stats();
  EXPECT_EQ(st.stragglers, 1u);
  EXPECT_EQ(reg.GetCounter(obs::kServingIngestStragglersTotal)->Value(), 1u);
  auto report = (*fe)->Flush();  // slot 6, still pending
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->slot, 6u);
  EXPECT_EQ(report->observations_used, s6.size());
  EXPECT_EQ((*fe)->stats().flushed_slots, 2u);
}

// Regression (this PR's straggler-attribution bugfix): dropped stragglers
// used to vanish into one global counter, so the worst-hit slot could not
// be named when diagnosing producer skew. The front-end now attributes
// drops per slot and surfaces the worst (slot, count) pair in IngestStats
// and the registry gauges.
TEST_F(IngestTest, StragglerAttributionNamesTheWorstSlot) {
  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.ingest_queue.capacity = 64;
  opts.observability.metrics = &reg;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe.ok());

  auto s5 = CleanObs(5);
  auto s6 = CleanObs(6);
  for (const SeedSpeed& s : s5) ASSERT_TRUE((*fe)->Offer(5, s));
  for (const SeedSpeed& s : s6) ASSERT_TRUE((*fe)->Offer(6, s));
  (*fe)->Drain();  // watermark now at slot 6, slot 5 flushed
  // Two late slot-5 observations and one late slot-4 observation: slot 5
  // is the worst-hit slot with count 2.
  ASSERT_TRUE((*fe)->Offer(5, s5[0]));
  ASSERT_TRUE((*fe)->Offer(5, s5[1]));
  ASSERT_TRUE((*fe)->Offer(4, s5[0]));
  (*fe)->Drain();

  IngestStats st = (*fe)->stats();
  EXPECT_EQ(st.stragglers, 3u);
  EXPECT_EQ(st.straggler_worst_slot, 5u);
  EXPECT_EQ(st.straggler_worst_count, 2u);
  EXPECT_EQ(
      reg.GetGauge(obs::kServingIngestStragglerWorstSlot)->Value(), 5.0);
  EXPECT_EQ(
      reg.GetGauge(obs::kServingIngestStragglerWorstCount)->Value(), 2.0);
}

// The concurrency-bugfix regression (S2): N producers feeding the queue
// while a consumer drains into the session. At quiescence the ServingStats
// struct snapshot and the registry mirrors must agree exactly — with the
// pre-atomic plain-uint64 stats fields, concurrent bumps lost increments
// and the two diverged. Run under TRENDSPEED_SANITIZE=thread for the full
// data-race proof.
TEST_F(IngestTest, MultiProducerStatsMatchRegistryAtQuiescence) {
  obs::MetricsRegistry reg;
  ServingOptions opts;
  opts.ingest_queue.capacity = 256;
  opts.observability.metrics = &reg;
  opts.validation = ValidationPolicy::kFilter;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  auto fe_result = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe_result.ok());
  IngestFrontEnd* fe = fe_result->get();

  constexpr int kProducers = 4;
  constexpr uint64_t kSlots = 12;
  std::atomic<bool> producing{true};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t slot = 0; slot < kSlots; ++slot) {
        for (const SeedSpeed& s : CleanObs(slot)) {
          // Every producer offers every slot: plenty of duplicates for the
          // dedup policy, plenty of stragglers for the watermark, and an
          // occasional malformed observation for the filter counter.
          (void)fe->Offer(slot, s);
        }
        if (p == 0) {
          (void)fe->Offer(slot, SeedSpeed{0, -1.0});  // filtered (kFilter)
        }
      }
    });
  }
  // Concurrent consumer: drain while producers are still offering.
  std::thread consumer([&] {
    while (producing.load(std::memory_order_acquire)) {
      fe->Drain();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : producers) t.join();
  producing.store(false, std::memory_order_release);
  consumer.join();
  (void)fe->Flush();  // final pending batch (NotFound is fine)

  // Quiescent now: every struct field must equal its exported mirror.
  IngestStats ist = fe->stats();
  auto counter = [&](const obs::MetricDef& def) {
    return reg.GetCounter(def)->Value();
  };
  EXPECT_EQ(counter(obs::kServingIngestEnqueuedTotal), ist.enqueued);
  EXPECT_EQ(counter(obs::kServingIngestRejectedBackpressureTotal),
            ist.rejected_backpressure);
  EXPECT_EQ(counter(obs::kServingIngestFlushedSlotsTotal), ist.flushed_slots);
  EXPECT_EQ(counter(obs::kServingIngestStragglersTotal), ist.stragglers);
  EXPECT_GT(ist.enqueued, 0u);

  ServingStats s = session->stats();
  EXPECT_EQ(counter(obs::kServingSlotsEstimatedTotal), s.slots_estimated);
  EXPECT_EQ(counter(obs::kServingSlotsCarriedForwardTotal),
            s.slots_carried_forward);
  EXPECT_EQ(counter(obs::kServingDuplicateSlotsTotal), s.duplicate_slots);
  EXPECT_EQ(counter(obs::kServingOutOfOrderSlotsTotal), s.out_of_order_slots);
  EXPECT_EQ(counter(obs::kServingRejectedBatchesTotal), s.rejected_batches);
  EXPECT_EQ(counter(obs::kServingObservationsFilteredTotal),
            s.observations_filtered);
  EXPECT_EQ(counter(obs::kServingObservationsDeduplicatedTotal),
            s.observations_deduplicated);
  EXPECT_EQ(counter(obs::kServingEstimationFailuresTotal),
            s.estimation_failures);
  EXPECT_GT(s.slots_estimated, 0u);
}

}  // namespace
}  // namespace trendspeed
