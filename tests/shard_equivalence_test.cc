// Shard-equivalence property suite (docs/sharding.md tolerance contract).
//
// The sharded engine's fixed point is *identical* to unsharded BP — the
// degree-1 ghost construction reproduces the exact global messages over
// every cut edge — so with a sweep budget large enough for both sides to
// converge, sharded marginals must agree with the flat solver's within a
// small multiple of BpOptions::tol (tests pin 10x, same contract as the
// warm-start and SIMD suites), and the convergence decisions must match.
// The suite pins that over seeded random graphs at 2/4/8 shards, plus
// cross-kernel (sharded SIMD vs flat scalar) and warm-start-across-slots
// variants. tol = 1e-3 for the same residual-ambiguity reasoning as
// bp_kernel_test.cc.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_bp.h"
#include "trend/belief_propagation.h"
#include "trend/bp_kernel.h"
#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {
namespace {

double U(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

struct RandomCase {
  BpGraph graph;
  std::vector<double> pot;
};

// Random MRF + effective potentials, after bp_kernel_test.cc's generator:
// `shape` cycles sparse / dense / near-empty edge models; potentials mix
// hard 0/1 clamps, underflow-range pairs, and generic soft evidence. The
// boundary cavity computation must survive all three crossing a cut.
RandomCase MakeRandomCase(Rng& rng, int shape) {
  size_t n = 1 + rng.NextBounded(160);
  PairwiseMrf mrf(n);
  size_t edges = 0;
  switch (shape % 3) {
    case 0:
      edges = rng.NextBounded(static_cast<uint32_t>(n) + 1);
      break;
    case 1:
      edges = 2 * n + rng.NextBounded(static_cast<uint32_t>(n) + 1);
      break;
    default:
      edges = rng.NextBounded(static_cast<uint32_t>(n) + 1) / 2;
      break;
  }
  for (size_t e = 0; e < edges; ++e) {
    size_t u = rng.NextBounded(static_cast<uint32_t>(n));
    size_t v = rng.NextBounded(static_cast<uint32_t>(n));
    if (u == v) continue;
    double compat[2][2];
    for (auto& row : compat) {
      for (double& c : row) c = std::exp(U(rng, -2.0, 2.0));
    }
    mrf.AddEdge(u, v, compat);
  }
  RandomCase c;
  c.graph = BpGraph::FromMrf(mrf);
  c.pot.resize(2 * n);
  for (size_t v = 0; v < n; ++v) {
    uint32_t kind = rng.NextBounded(10);
    if (kind == 0) {
      bool up = rng.NextBounded(2) == 1;
      c.pot[2 * v] = up ? 0.0 : 1.0;
      c.pot[2 * v + 1] = up ? 1.0 : 0.0;
    } else if (kind == 1) {
      double scale = std::pow(10.0, U(rng, -300.0, -250.0));
      double r = std::exp(U(rng, -2.0, 2.0));
      c.pot[2 * v] = scale;
      c.pot[2 * v + 1] = scale * r;
    } else {
      c.pot[2 * v] = std::exp(U(rng, -4.0, 4.0));
      c.pot[2 * v + 1] = std::exp(U(rng, -4.0, 4.0));
    }
  }
  return c;
}

// Budgets generous enough for both sides to reach their fixed points: the
// contract below compares *converged* runs, not truncated ones.
BpOptions ConvergingOpts() {
  BpOptions o;
  o.max_iters = 400;
  o.tol = 1e-3;
  return o;
}

ShardingOptions ShardOpts(uint32_t shards) {
  ShardingOptions o;
  o.num_shards = shards;
  o.max_exchange_rounds = 32;
  return o;
}

double MaxGap(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double gap = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    gap = std::max(gap, std::abs(a[i] - b[i]));
  }
  return gap;
}

TEST(ShardEquivalenceTest, MarginalsMatchFlatAcrossShardCounts) {
  Rng rng(20260808);
  BpOptions opts = ConvergingOpts();
  int compared = 0;
  for (int iter = 0; iter < 36; ++iter) {
    RandomCase c = MakeRandomCase(rng, iter);
    BpResult flat = InferMarginalsBpFlat(c.graph, c.pot, opts);
    for (uint32_t shards : {2u, 4u, 8u}) {
      auto engine = ShardedBpEngine::Build(c.graph, ShardOpts(shards));
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      ShardedBpResult sharded = engine->Infer(c.pot, opts);
      ASSERT_EQ(sharded.p_up.size(), flat.p_up.size());
      // Identical convergence decision, marginals within 10x tol.
      EXPECT_EQ(sharded.converged, flat.converged)
          << "iter=" << iter << " shards=" << shards;
      if (flat.converged && sharded.converged) {
        EXPECT_LE(MaxGap(sharded.p_up, flat.p_up), 10.0 * opts.tol)
            << "iter=" << iter << " shards=" << shards;
        ++compared;
      }
      EXPECT_LE(sharded.exchange_rounds, ShardOpts(shards).max_exchange_rounds);
    }
  }
  // The suite must actually exercise the contract, not vacuously pass on
  // graphs that never converge.
  EXPECT_GT(compared, 60);
}

TEST(ShardEquivalenceTest, ClampedMarginalsStayExact) {
  Rng rng(11);
  BpOptions opts = ConvergingOpts();
  for (int iter = 0; iter < 12; ++iter) {
    RandomCase c = MakeRandomCase(rng, iter);
    auto engine = ShardedBpEngine::Build(c.graph, ShardOpts(4));
    ASSERT_TRUE(engine.ok());
    ShardedBpResult sharded = engine->Infer(c.pot, opts);
    for (size_t v = 0; v < c.graph.num_vars; ++v) {
      if (c.pot[2 * v] == 0.0) {
        EXPECT_DOUBLE_EQ(sharded.p_up[v], 1.0);
      }
      if (c.pot[2 * v + 1] == 0.0) {
        EXPECT_DOUBLE_EQ(sharded.p_up[v], 0.0);
      }
    }
  }
}

TEST(ShardEquivalenceTest, CrossKernelShardedSimdVsFlatScalar) {
  // Sharded solve on the SIMD kernel vs the flat scalar oracle: the two
  // tolerance contracts compose (sharding 10x tol, kernel a small multiple
  // of tol), so agreement within 20x tol. Where the SoA mirror is not
  // compiled in, kSimd falls back to scalar and the bound holds trivially.
  Rng rng(77);
  BpOptions scalar = ConvergingOpts();
  BpOptions simd = ConvergingOpts();
  simd.kernel = BpKernel::kSimd;
  for (int iter = 0; iter < 18; ++iter) {
    RandomCase c = MakeRandomCase(rng, iter);
    BpResult flat = InferMarginalsBpFlat(c.graph, c.pot, scalar);
    auto engine = ShardedBpEngine::Build(c.graph, ShardOpts(4));
    ASSERT_TRUE(engine.ok());
    ShardedBpResult sharded = engine->Infer(c.pot, simd);
    EXPECT_EQ(sharded.converged, flat.converged) << "iter=" << iter;
    if (flat.converged && sharded.converged) {
      EXPECT_LE(MaxGap(sharded.p_up, flat.p_up), 20.0 * scalar.tol)
          << "iter=" << iter;
    }
  }
}

TEST(ShardEquivalenceTest, WarmStartAcrossSlotsTracksCold) {
  // A serving-shaped sequence: potentials drift slot to slot, the caller
  // keeps one BpState per shard across slots (as TrendInferenceState::shard
  // does). Every slot's warm sharded marginals must track a cold flat solve
  // of the same slot within the contract, and later slots must actually
  // run warm.
  Rng rng(5150);
  RandomCase c = MakeRandomCase(rng, 1);  // dense shape: cuts guaranteed
  auto engine = ShardedBpEngine::Build(c.graph, ShardOpts(4));
  ASSERT_TRUE(engine.ok());
  BpOptions opts = ConvergingOpts();
  std::vector<BpState> states;
  std::vector<double> pot = c.pot;
  for (int slot = 0; slot < 6; ++slot) {
    // Drift ~10% of soft potentials by a modest factor.
    for (size_t v = 0; v < c.graph.num_vars; ++v) {
      if (pot[2 * v] == 0.0 || pot[2 * v + 1] == 0.0) continue;  // clamped
      if (rng.NextBounded(10) == 0) {
        pot[2 * v + rng.NextBounded(2)] *= std::exp(U(rng, -0.4, 0.4));
      }
    }
    BpResult cold = InferMarginalsBpFlat(c.graph, pot, opts);
    ShardedBpResult warm = engine->Infer(pot, opts, &states);
    EXPECT_EQ(states.size(), engine->num_shards());
    EXPECT_EQ(warm.converged, cold.converged) << "slot=" << slot;
    if (cold.converged && warm.converged) {
      EXPECT_LE(MaxGap(warm.p_up, cold.p_up), 10.0 * opts.tol)
          << "slot=" << slot;
    }
  }
  for (const BpState& s : states) {
    if (!s.msg.empty()) {
      EXPECT_TRUE(s.valid);
    }
  }
}

TEST(ShardEquivalenceTest, DeterministicAcrossRepeatedRuns) {
  // Barriered rounds + disjoint ghost writes: bitwise-identical output on
  // every run regardless of thread scheduling. (TSan robustness runs this
  // suite too, which checks the "disjoint" claim under the race detector.)
  Rng rng(31337);
  RandomCase c = MakeRandomCase(rng, 1);
  auto engine = ShardedBpEngine::Build(c.graph, ShardOpts(8));
  ASSERT_TRUE(engine.ok());
  BpOptions opts = ConvergingOpts();
  ShardedBpResult a = engine->Infer(c.pot, opts);
  for (int run = 0; run < 3; ++run) {
    ShardedBpResult b = engine->Infer(c.pot, opts);
    ASSERT_EQ(a.p_up.size(), b.p_up.size());
    for (size_t v = 0; v < a.p_up.size(); ++v) {
      ASSERT_EQ(a.p_up[v], b.p_up[v]) << "var " << v;
    }
    EXPECT_EQ(a.exchange_rounds, b.exchange_rounds);
    EXPECT_EQ(a.converged, b.converged);
  }
}

}  // namespace
}  // namespace trendspeed
