#include <gtest/gtest.h>

#include <algorithm>

#include "core/monitor.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
  }

  const Dataset& ds() { return SharedTinyDataset(); }
  static TrafficSpeedEstimator* estimator_;
};

TrafficSpeedEstimator* MonitorTest::estimator_ = nullptr;

std::vector<SeedSpeed> TrueSeeds(const Dataset& ds,
                                 const std::vector<RoadId>& roads,
                                 uint64_t slot, double factor = 1.0) {
  std::vector<SeedSpeed> out;
  for (RoadId r : roads) {
    out.push_back({r, std::max(1.0, ds.truth.at(slot, r) * factor)});
  }
  return out;
}

TEST_F(MonitorTest, ProcessesSlotsAndReports) {
  OnlineTrafficMonitor monitor(estimator_);
  auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  for (uint64_t slot = start; slot < start + 5; ++slot) {
    auto report = monitor.Process(slot, TrueSeeds(ds(), seeds->seeds, slot));
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->mean_speed_kmh, 0.0);
    EXPECT_EQ(report->estimate.speeds.speed_kmh.size(), ds().net.num_roads());
  }
  EXPECT_EQ(monitor.slots_processed(), 5u);
}

TEST_F(MonitorTest, RejectsOutOfOrderSlots) {
  OnlineTrafficMonitor monitor(estimator_);
  auto seeds = estimator_->SelectSeeds(4, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  ASSERT_TRUE(monitor.Process(start + 3, TrueSeeds(ds(), seeds->seeds,
                                                   start + 3))
                  .ok());
  EXPECT_FALSE(
      monitor.Process(start + 1, TrueSeeds(ds(), seeds->seeds, start + 1))
          .ok());
}

TEST_F(MonitorTest, SustainedSlowdownRaisesAlertThenClears) {
  MonitorOptions mopts;
  mopts.alert_deviation = -0.25;
  mopts.alert_after_slots = 2;
  mopts.clear_deviation = -0.1;
  mopts.ewma_alpha = 1.0;  // no smoothing: deterministic thresholds
  OnlineTrafficMonitor monitor(estimator_, mopts);
  auto seeds = estimator_->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();

  // Feed seeds reporting HALF their true speeds: network-wide slowdown.
  size_t raised = 0;
  for (uint64_t slot = start; slot < start + 4; ++slot) {
    auto report =
        monitor.Process(slot, TrueSeeds(ds(), seeds->seeds, slot, 0.45));
    ASSERT_TRUE(report.ok());
    for (const TrafficAlert& a : report->new_alerts) {
      if (a.raised) ++raised;
    }
  }
  EXPECT_GT(raised, 0u);
  EXPECT_FALSE(monitor.ActiveAlerts().empty());

  // Recovery: seeds report ABOVE their historical norms; alerts clear.
  size_t cleared = 0;
  for (uint64_t slot = start + 4; slot < start + 10; ++slot) {
    auto report =
        monitor.Process(slot, TrueSeeds(ds(), seeds->seeds, slot, 1.4));
    ASSERT_TRUE(report.ok());
    for (const TrafficAlert& a : report->new_alerts) {
      if (!a.raised) ++cleared;
    }
  }
  EXPECT_GT(cleared, 0u);
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
}

TEST_F(MonitorTest, DebounceSuppressesOneSlotBlips) {
  MonitorOptions mopts;
  mopts.alert_deviation = -0.25;
  mopts.alert_after_slots = 3;  // needs 3 consecutive bad slots
  mopts.ewma_alpha = 1.0;
  OnlineTrafficMonitor monitor(estimator_, mopts);
  auto seeds = estimator_->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  // One bad slot surrounded by normal slots: no alert may fire.
  auto r1 = monitor.Process(start, TrueSeeds(ds(), seeds->seeds, start));
  auto r2 =
      monitor.Process(start + 1, TrueSeeds(ds(), seeds->seeds, start + 1, 0.4));
  auto r3 = monitor.Process(start + 2, TrueSeeds(ds(), seeds->seeds, start + 2,
                                                 1.2));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r1->new_alerts.empty());
  EXPECT_TRUE(r2->new_alerts.empty());
  EXPECT_TRUE(monitor.ActiveAlerts().empty());
}

TEST_F(MonitorTest, DuplicateSlotRejectedWithoutDoubleApply) {
  OnlineTrafficMonitor monitor(estimator_);
  auto seeds = estimator_->SelectSeeds(4, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  auto obs = TrueSeeds(ds(), seeds->seeds, start, 0.5);
  ASSERT_TRUE(monitor.Process(start, obs).ok());
  RoadId probe = seeds->seeds[0];
  double dev = monitor.SmoothedDeviation(probe);

  // Re-sending the current slot must not double-apply the EWMA update or
  // the alert streaks.
  EXPECT_FALSE(monitor.Process(start, obs).ok());
  EXPECT_EQ(monitor.slots_processed(), 1u);
  EXPECT_EQ(monitor.SmoothedDeviation(probe), dev);
}

TEST_F(MonitorTest, CongestedDeviationThresholdIsConfigurable) {
  MonitorOptions loose;  // default congested_deviation = -0.15
  loose.ewma_alpha = 1.0;
  MonitorOptions tight = loose;
  tight.congested_deviation = -0.95;  // speeds would have to drop ~20x
  OnlineTrafficMonitor loose_monitor(estimator_, loose);
  OnlineTrafficMonitor tight_monitor(estimator_, tight);
  auto seeds = estimator_->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  auto obs = TrueSeeds(ds(), seeds->seeds, start, 0.45);  // heavy slowdown
  auto loose_report = loose_monitor.Process(start, obs);
  auto tight_report = tight_monitor.Process(start, obs);
  ASSERT_TRUE(loose_report.ok());
  ASSERT_TRUE(tight_report.ok());
  EXPECT_GT(loose_report->congested_roads, 0u);
  EXPECT_EQ(tight_report->congested_roads, 0u);
}

TEST_F(MonitorTest, UnobservedRoadsAreNotSeededAtFullWeight) {
  MonitorOptions mopts;
  mopts.alert_deviation = -0.3;
  mopts.alert_after_slots = 1;  // alert the moment the EWMA crosses
  mopts.ewma_alpha = 0.4;
  OnlineTrafficMonitor monitor(estimator_, mopts);
  auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  std::vector<bool> observed(ds().net.num_roads(), false);
  for (RoadId r : seeds->seeds) observed[r] = true;

  uint64_t start = ds().first_test_slot();
  auto report =
      monitor.Process(start, TrueSeeds(ds(), seeds->seeds, start, 0.45));
  ASSERT_TRUE(report.ok());

  // Precondition: the propagated slowdown pushes some *unobserved* roads
  // past the alert threshold on this very first slot (but not so far past
  // that even an alpha-weighted first step would legitimately alarm).
  size_t past_threshold = 0;
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    double d = report->estimate.speeds.deviation[r];
    if (!observed[r] && d <= mopts.alert_deviation && d > -0.7) {
      ++past_threshold;
    }
  }
  ASSERT_GT(past_threshold, 0u);

  // None of those roads may alarm: their deviation is inferred, not
  // measured, so the EWMA must accumulate from 0 (0.4 * d > -0.3 for every
  // d > -0.75) instead of being seeded at full weight on slot one (which
  // made ewma == d <= alert_deviation: an instant alert from a road nobody
  // drove down).
  for (const TrafficAlert& a : report->new_alerts) {
    if (a.raised && report->estimate.speeds.deviation[a.road] > -0.7) {
      EXPECT_TRUE(observed[a.road])
          << "unobserved road " << a.road
          << " alerted on its first, inferred-only slot";
    }
  }

  // Observed roads keep the old contract: first measured slot seeds the
  // EWMA at full weight, so smoothed == raw deviation.
  RoadId probe = seeds->seeds[0];
  EXPECT_NEAR(monitor.SmoothedDeviation(probe),
              report->estimate.speeds.deviation[probe], 1e-12);

  // Sensitivity is delayed, not lost: a *sustained* inferred slowdown still
  // walks the EWMA across the threshold within a few slots.
  std::vector<RoadId> strongly_down;
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    if (!observed[r] && report->estimate.speeds.deviation[r] <= -0.45) {
      strongly_down.push_back(r);
    }
  }
  for (uint64_t slot = start + 1; slot < start + 5; ++slot) {
    ASSERT_TRUE(
        monitor.Process(slot, TrueSeeds(ds(), seeds->seeds, slot, 0.45)).ok());
  }
  if (!strongly_down.empty()) {
    auto active = monitor.ActiveAlerts();
    bool any = false;
    for (RoadId r : strongly_down) {
      if (std::find(active.begin(), active.end(), r) != active.end()) {
        any = true;
      }
    }
    EXPECT_TRUE(any) << "sustained inferred slowdown never alerted";
  }
}

TEST_F(MonitorTest, SmoothedDeviationTracksEwma) {
  MonitorOptions mopts;
  mopts.ewma_alpha = 0.5;
  OnlineTrafficMonitor monitor(estimator_, mopts);
  auto seeds = estimator_->SelectSeeds(4, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  uint64_t start = ds().first_test_slot();
  auto r1 = monitor.Process(start, TrueSeeds(ds(), seeds->seeds, start));
  ASSERT_TRUE(r1.ok());
  // After the first slot, smoothed == raw deviation.
  RoadId probe = seeds->seeds[0];
  EXPECT_NEAR(monitor.SmoothedDeviation(probe),
              r1->estimate.speeds.deviation[probe], 1e-12);
}

}  // namespace
}  // namespace trendspeed
