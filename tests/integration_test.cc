// End-to-end integration tests exercising the full stack the way the paper's
// evaluation does: simulate a city, wrangle probe data, train, select seeds,
// estimate, and compare methods.

#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "io/dataset.h"
#include "io/serialize.h"
#include "roadnet/generators.h"
#include "test_util.h"

namespace trendspeed {
namespace {

// One moderately sized dataset built through the *full* probe pipeline
// (GPS + map matching), shared across this binary.
const Dataset& FullPipelineDataset() {
  static const Dataset* ds = [] {
    DatasetOptions opts;
    opts.history_days = 8;
    opts.test_days = 1;
    opts.use_probe_fleet = true;
    opts.fleet.trips_per_slot = 12;
    GridNetworkOptions grid;
    grid.rows = 6;
    grid.cols = 6;
    grid.arterial_every = 3;
    auto net = MakeGridNetwork(grid);
    TS_CHECK(net.ok());
    auto built = BuildDataset("FullPipe", std::move(net).value(), opts);
    TS_CHECK(built.ok()) << built.status().ToString();
    return new Dataset(std::move(built).value());
  }();
  return *ds;
}

TEST(IntegrationTest, FullProbePipelineTrainsAndEstimates) {
  const Dataset& ds = FullPipelineDataset();
  EXPECT_GT(ds.history.CoverageFraction(), 0.02);
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GT(est->correlation_graph().num_edges(), 5u);

  auto seeds = est->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  Evaluator eval(&ds);
  EvalOptions opts;
  opts.slot_stride = 8;
  auto suite = BuildMethodSuite(ds, *est, /*include_matrix_completion=*/true);
  ASSERT_TRUE(suite.ok());
  double ours = 0.0, hist = 0.0;
  for (const MethodAdapter& m : suite->methods) {
    auto r = eval.Run(m, seeds->seeds, opts);
    ASSERT_TRUE(r.ok()) << m.name;
    if (m.name == "TrendSpeed") ours = r->metrics.mape;
    if (m.name == "HistoricalMean") hist = r->metrics.mape;
  }
  EXPECT_LT(ours, hist);
}

TEST(IntegrationTest, GreedySeedsBeatRandomSeedsOnAccuracy) {
  const Dataset& ds = FullPipelineDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok());
  Evaluator eval(&ds);
  EvalOptions opts;
  opts.slot_stride = 8;
  auto suite = BuildMethodSuite(ds, *est, false);
  ASSERT_TRUE(suite.ok());
  const MethodAdapter& ours = suite->methods[0];

  auto greedy = est->SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(greedy.ok());
  auto g = eval.Run(ours, greedy->seeds, opts);
  ASSERT_TRUE(g.ok());

  // Average several random seed sets to reduce luck.
  double random_mae = 0.0;
  const int kTrials = 3;
  for (int t = 0; t < kTrials; ++t) {
    auto random = est->SelectSeeds(8, SeedStrategy::kRandom, 100 + t);
    ASSERT_TRUE(random.ok());
    auto r = eval.Run(ours, random->seeds, opts);
    ASSERT_TRUE(r.ok());
    random_mae += r->metrics.mae;
  }
  random_mae /= kTrials;
  EXPECT_LT(g->metrics.mae, random_mae * 1.05);
}

TEST(IntegrationTest, TrendStepImprovesOverPriorOnly) {
  const Dataset& ds = FullPipelineDataset();
  PipelineConfig with_bp;
  with_bp.corr.min_co_observed = 8;
  PipelineConfig prior_only = with_bp;
  prior_only.trend.engine = TrendEngine::kPriorOnly;

  auto est_bp = TrafficSpeedEstimator::Train(&ds.net, &ds.history, with_bp);
  auto est_prior =
      TrafficSpeedEstimator::Train(&ds.net, &ds.history, prior_only);
  ASSERT_TRUE(est_bp.ok());
  ASSERT_TRUE(est_prior.ok());
  auto seeds = est_bp->SelectSeeds(10, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  Evaluator eval(&ds);
  EvalOptions opts;
  opts.slot_stride = 6;
  auto acc_bp = eval.RunTrendAccuracy(*est_bp, seeds->seeds, opts);
  auto acc_prior = eval.RunTrendAccuracy(*est_prior, seeds->seeds, opts);
  ASSERT_TRUE(acc_bp.ok());
  ASSERT_TRUE(acc_prior.ok());
  EXPECT_GE(*acc_bp, *acc_prior - 0.02);
}

TEST(IntegrationTest, EstimatorIsDeterministic) {
  const Dataset& ds = testing_util::SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est1 = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  auto est2 = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est1.ok());
  ASSERT_TRUE(est2.ok());
  auto s1 = est1->SelectSeeds(5, SeedStrategy::kGreedy);
  auto s2 = est2->SelectSeeds(5, SeedStrategy::kGreedy);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->seeds, s2->seeds);
  uint64_t slot = ds.first_test_slot() + 3;
  std::vector<SeedSpeed> obs;
  for (RoadId r : s1->seeds) obs.push_back({r, ds.truth.at(slot, r)});
  auto o1 = est1->Estimate(slot, obs);
  auto o2 = est2->Estimate(slot, obs);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->speeds.speed_kmh, o2->speeds.speed_kmh);
}

TEST(IntegrationTest, SerializationRoundTripPreservesEstimates) {
  // Export the tiny dataset's network + history records, re-import, retrain,
  // and verify identical behaviour — the offline/online split a production
  // deployment would use.
  const Dataset& ds = testing_util::SharedTinyDataset();
  CsvTable nodes = NetworkNodesToCsv(ds.net);
  CsvTable roads = NetworkRoadsToCsv(ds.net);
  auto net2 = NetworkFromCsv(nodes, roads);
  ASSERT_TRUE(net2.ok());

  std::vector<RawRecord> records;
  for (RoadId r = 0; r < ds.net.num_roads(); ++r) {
    for (uint64_t s = 0; s < ds.history.num_slots(); ++s) {
      if (ds.history.HasObservation(r, s)) {
        records.push_back({r, s, ds.history.Observation(r, s)});
      }
    }
  }
  auto db2 = HistoryFromRecords(records, ds.net.num_roads(),
                                ds.history.num_slots(), 144);
  ASSERT_TRUE(db2.ok());

  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est1 = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  auto est2 = TrafficSpeedEstimator::Train(&*net2, &*db2, config);
  ASSERT_TRUE(est1.ok());
  ASSERT_TRUE(est2.ok());
  auto s1 = est1->SelectSeeds(5, SeedStrategy::kGreedy);
  auto s2 = est2->SelectSeeds(5, SeedStrategy::kGreedy);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->seeds, s2->seeds);
}

TEST(IntegrationTest, CompositeCityEndToEnd) {
  // A heterogeneous city (ring-radial core + grid suburb joined by highway
  // links) through the whole stack: simulate, collect probes, train,
  // select seeds, estimate.
  CompositeCityOptions copts;
  copts.core.num_rings = 3;
  copts.core.num_spokes = 10;
  copts.suburb.rows = 6;
  copts.suburb.cols = 6;
  copts.num_links = 2;
  auto net = MakeCompositeCity(copts);
  ASSERT_TRUE(net.ok());
  DatasetOptions dopts;
  dopts.history_days = 8;
  dopts.test_days = 1;
  dopts.use_probe_fleet = false;
  auto ds = BuildDataset("Composite", std::move(net).value(), dopts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds->net, &ds->history, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto seeds = est->SelectSeeds(12, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  Evaluator eval(&*ds);
  EvalOptions opts;
  opts.slot_stride = 12;
  auto suite = BuildMethodSuite(*ds, *est, false);
  ASSERT_TRUE(suite.ok());
  double ours = 0.0, hist = 0.0;
  for (const MethodAdapter& m : suite->methods) {
    auto r = eval.Run(m, seeds->seeds, opts);
    ASSERT_TRUE(r.ok()) << m.name;
    if (m.name == "TrendSpeed") ours = r->metrics.mape;
    if (m.name == "HistoricalMean") hist = r->metrics.mape;
  }
  EXPECT_LT(ours, hist);
}

}  // namespace
}  // namespace trendspeed
