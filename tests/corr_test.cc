#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "corr/cotrend.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::PathNetwork;
using testing_util::SmallGrid;

TEST(TrendIndexTest, RoundTrip) {
  EXPECT_EQ(TrendIndex(+1), 1);
  EXPECT_EQ(TrendIndex(-1), 0);
  EXPECT_EQ(TrendFromIndex(1), +1);
  EXPECT_EQ(TrendFromIndex(0), -1);
}

TEST(CoTrendTest, PerfectlyCorrelatedRoads) {
  RoadNetwork net = PathNetwork();
  HistoricalDb db = AlternatingHistory(net, 500);
  CoTrendStats stats = ComputeCoTrend(db, 0, 2, 60.0, 60.0);
  EXPECT_EQ(stats.co_observed, 500u);
  // Both roads are up on even slots and down on odd slots.
  EXPECT_GT(stats.SameProbability(), 0.95);
  EXPECT_GT(stats.pearson, 0.95);
  // Off-diagonal counts empty.
  EXPECT_EQ(stats.counts[0][1], 0u);
  EXPECT_EQ(stats.counts[1][0], 0u);
}

TEST(CoTrendTest, AntiCorrelatedRoads) {
  RoadNetwork net = PathNetwork();
  // Road 0 and road 2 follow exactly opposite up/down patterns.
  HistoricalDb::Builder builder(net.num_roads(), 500, 144);
  for (uint64_t s = 0; s < 500; ++s) {
    bool up = testing_util::AlternatingUp(s);
    builder.Add(0, s, 48.0 * (up ? 1.2 : 0.8));
    builder.Add(2, s, 48.0 * (up ? 0.8 : 1.2));
  }
  HistoricalDb db = builder.Finish();
  CoTrendStats stats = ComputeCoTrend(db, 0, 2, 60.0, 60.0);
  EXPECT_LT(stats.SameProbability(), 0.05);
  EXPECT_LT(stats.pearson, -0.9);
}

TEST(CoTrendTest, NoCoObservationsIsNeutral) {
  RoadNetwork net = PathNetwork();
  HistoricalDb::Builder builder(net.num_roads(), 100, 144);
  for (uint64_t s = 0; s < 100; s += 2) builder.Add(0, s, 50.0);
  for (uint64_t s = 1; s < 100; s += 2) builder.Add(2, s, 50.0);
  HistoricalDb db = builder.Finish();
  CoTrendStats stats = ComputeCoTrend(db, 0, 2, 60.0, 60.0);
  EXPECT_EQ(stats.co_observed, 0u);
  EXPECT_DOUBLE_EQ(stats.SameProbability(), 0.5);  // Laplace prior
  EXPECT_DOUBLE_EQ(stats.pearson, 0.0);
}

TEST(CoTrendTest, CompatibilityIsOneUnderIndependence) {
  CoTrendStats stats;
  stats.co_observed = 400;
  stats.counts[0][0] = stats.counts[0][1] = stats.counts[1][0] =
      stats.counts[1][1] = 100;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_NEAR(stats.Compatibility(a, b), 1.0, 0.02);
    }
  }
}

TEST(CoTrendTest, CompatibilityFavorsAgreementWhenCorrelated) {
  CoTrendStats stats;
  stats.co_observed = 400;
  stats.counts[0][0] = stats.counts[1][1] = 180;
  stats.counts[0][1] = stats.counts[1][0] = 20;
  EXPECT_GT(stats.Compatibility(0, 0), 1.2);
  EXPECT_LT(stats.Compatibility(0, 1), 0.8);
  // Clipping bounds.
  CoTrendStats extreme;
  extreme.co_observed = 10000;
  extreme.counts[0][0] = extreme.counts[1][1] = 5000;
  EXPECT_LE(extreme.Compatibility(0, 0), 8.0 + 1e-12);
  EXPECT_GE(extreme.Compatibility(0, 1), 1.0 / 8.0 - 1e-12);
}

TEST(CorrelationGraphTest, BuildsSymmetricGraphOnCorrelatedHistory) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions opts;
  opts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, opts);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_roads(), net.num_roads());
  EXPECT_GT(graph->num_edges(), 0u);
  // Symmetry: j in N(i) <=> i in N(j), with matching same_prob.
  for (RoadId i = 0; i < graph->num_roads(); ++i) {
    for (const CorrEdge& e : graph->Neighbors(i)) {
      bool found = false;
      for (const CorrEdge& back : graph->Neighbors(e.neighbor)) {
        if (back.neighbor == i) {
          found = true;
          EXPECT_FLOAT_EQ(back.same_prob, e.same_prob);
          // Transposed compatibility tables.
          for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b)
              EXPECT_FLOAT_EQ(back.compat[a][b], e.compat[b][a]);
        }
      }
      EXPECT_TRUE(found) << "edge " << i << "-" << e.neighbor
                         << " not symmetric";
    }
  }
}

TEST(CorrelationGraphTest, RespectsDegreeCapLoosely) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions opts;
  opts.min_co_observed = 10;
  opts.max_hops = 3;
  opts.max_degree = 4;
  auto graph = CorrelationGraph::Build(net, db, opts);
  ASSERT_TRUE(graph.ok());
  // Union-capping allows exceeding the per-vertex cap, but not wildly.
  for (RoadId i = 0; i < graph->num_roads(); ++i) {
    EXPECT_LE(graph->Degree(i), 10 * opts.max_degree);
  }
  EXPECT_LT(graph->average_degree(), 2.0 * opts.max_degree);
  CorrelationGraphOptions loose = opts;
  loose.max_degree = 100;
  auto big = CorrelationGraph::Build(net, db, loose);
  ASSERT_TRUE(big.ok());
  EXPECT_GE(big->num_edges(), graph->num_edges());
}

TEST(CorrelationGraphTest, ThresholdFiltersWeakPairs) {
  RoadNetwork net = SmallGrid();
  // Independent random speeds: no road pair should pass a 0.65 threshold
  // with enough co-observations.
  Rng rng(55);
  HistoricalDb::Builder builder(net.num_roads(), 1000, 144);
  for (uint64_t s = 0; s < 1000; ++s) {
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      builder.Add(r, s, 40.0 + rng.Gaussian(0.0, 8.0) + (s % 7));
    }
  }
  HistoricalDb db = builder.Finish();
  CorrelationGraphOptions opts;
  opts.min_same_prob = 0.65;
  opts.min_co_observed = 200;
  auto graph = CorrelationGraph::Build(net, db, opts);
  ASSERT_TRUE(graph.ok());
  EXPECT_LT(graph->average_degree(), 0.5);
}

TEST(CorrelationGraphTest, MinCoObservedFilters) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net, /*num_slots=*/8);
  CorrelationGraphOptions opts;
  opts.min_co_observed = 100;  // more than available
  auto graph = CorrelationGraph::Build(net, db, opts);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 0u);
  EXPECT_EQ(graph->CountIsolated(), net.num_roads());
}

TEST(CorrelationGraphTest, RejectsBadOptions) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net, 16);
  CorrelationGraphOptions opts;
  opts.min_same_prob = 0.3;
  EXPECT_FALSE(CorrelationGraph::Build(net, db, opts).ok());
  opts.min_same_prob = 0.65;
  opts.max_hops = 0;
  EXPECT_FALSE(CorrelationGraph::Build(net, db, opts).ok());
}

TEST(CorrelationGraphTest, HopsLimitCandidateRange) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions opts;
  opts.min_co_observed = 10;
  opts.max_degree = 1000;
  opts.max_hops = 1;
  auto near = CorrelationGraph::Build(net, db, opts);
  opts.max_hops = 3;
  auto far = CorrelationGraph::Build(net, db, opts);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  EXPECT_LT(near->num_edges(), far->num_edges());
}

}  // namespace
}  // namespace trendspeed
