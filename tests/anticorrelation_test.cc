// Tests for the anti-correlation pathway: downstream-starvation physics in
// the incident model, mining of anti-correlated edges, signed influence, and
// sign-correct propagation through them.

#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "seed/objective.h"
#include "speed/hierarchical_model.h"
#include "speed/propagation.h"
#include "test_util.h"
#include "traffic/incidents.h"
#include "trend/trend_model.h"

namespace trendspeed {
namespace {

using testing_util::SmallGrid;

TEST(IncidentStarvationTest, DownstreamSpeedsUpUpstreamSlowsDown) {
  RoadNetwork net = SmallGrid();
  IncidentOptions opts;
  opts.rate_per_slot = 3.0;  // force arrivals
  opts.spill_hops = 1;
  opts.starvation_hops = 1;
  opts.starvation_boost = 0.3;
  IncidentProcess proc(&net, opts, Rng(21));
  const auto& factors = proc.FactorsAt(0);
  ASSERT_FALSE(proc.active().empty());
  bool found_boost = false, found_slow = false;
  for (double f : factors) {
    if (f > 1.0) found_boost = true;
    if (f < 1.0) found_slow = true;
  }
  EXPECT_TRUE(found_slow);
  EXPECT_TRUE(found_boost);
  // The incident road itself is always slowed, never boosted.
  for (const Incident& inc : proc.active()) {
    EXPECT_LE(factors[inc.road], inc.severity + 1e-9);
  }
}

TEST(IncidentStarvationTest, ZeroBoostDisablesSpeedups) {
  RoadNetwork net = SmallGrid();
  IncidentOptions opts;
  opts.rate_per_slot = 3.0;
  opts.starvation_boost = 0.0;
  IncidentProcess proc(&net, opts, Rng(22));
  for (double f : proc.FactorsAt(0)) EXPECT_LE(f, 1.0 + 1e-12);
}

/// History where roads 0 and its corr partner are anti-correlated and all
/// other roads follow road 0.
HistoricalDb AntiHistory(const RoadNetwork& net, RoadId anti,
                         uint64_t num_slots = 1008) {
  HistoricalDb::Builder builder(net.num_roads(), num_slots, 144);
  for (uint64_t slot = 0; slot < num_slots; ++slot) {
    bool up = testing_util::AlternatingUp(slot);
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      bool road_up = (r == anti) ? !up : up;
      double factor = road_up ? 1.2 : 0.8;
      builder.Add(r, slot, net.road(r).free_flow_kmh * 0.8 * factor);
    }
  }
  return builder.Finish();
}

class AntiCorrelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    // Pick an anti road adjacent to road 0 so an edge is minable.
    anti_ = net_.RoadSuccessors(0)[0];
    db_ = AntiHistory(net_, anti_);
    CorrelationGraphOptions copts;
    copts.min_co_observed = 10;
    // Every pair in this fixture is near-perfectly (anti-)correlated; relax
    // the degree cap so tie-breaking cannot drop the edge under test.
    copts.max_degree = 100;
    auto graph = CorrelationGraph::Build(net_, db_, copts);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CorrelationGraph>(std::move(graph).value());
  }

  RoadNetwork net_;
  RoadId anti_ = 0;
  HistoricalDb db_;
  std::unique_ptr<CorrelationGraph> graph_;
};

TEST_F(AntiCorrelationTest, MinerKeepsAntiCorrelatedEdge) {
  bool found = false;
  for (const CorrEdge& e : graph_->Neighbors(0)) {
    if (e.neighbor == anti_) {
      found = true;
      EXPECT_LT(e.same_prob, 0.1f);  // strongly anti-correlated
      EXPECT_LT(e.pearson, -0.8f);
      // Compatibility favours disagreement.
      EXPECT_GT(e.compat[0][1], e.compat[0][0]);
    }
  }
  EXPECT_TRUE(found) << "anti-correlated edge 0-" << anti_ << " not mined";
}

TEST_F(AntiCorrelationTest, SignedEdgeWeightIsNegative) {
  for (const CorrEdge& e : graph_->Neighbors(0)) {
    if (e.neighbor == anti_) {
      EXPECT_LT(HierarchicalSpeedModel::EdgeWeight(e), -0.8);
    }
  }
}

TEST_F(AntiCorrelationTest, InfluenceCarriesNegativeSign) {
  auto influence = InfluenceModel::Build(*graph_, db_, {});
  ASSERT_TRUE(influence.ok());
  bool found = false;
  for (const CoverEntry& c : influence->CoverList(0)) {
    if (c.road == anti_) {
      found = true;
      EXPECT_LT(c.influence, 0.0f);
      EXPECT_GT(std::fabs(c.influence), 0.5f);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AntiCorrelationTest, MrfInfersOppositeTrendForAntiRoad) {
  TrendModelOptions topts;
  topts.edge_compat_power = 1.0;
  TrendModel model(&*graph_, &db_, topts);
  // Clamp several normal roads "down" (enough to flip the network-wide
  // belief against the mildly-up priors): the anti road must come out "up"
  // while ordinary unclamped roads come out "down".
  std::vector<SeedTrend> seeds;
  for (RoadId r : {0u, 8u, 16u, 24u, 32u}) {
    if (r != anti_) seeds.push_back({r, -1});
  }
  auto est = model.Infer(/*slot=*/2, seeds);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->trend[anti_], +1)
      << "p_up(anti) = " << est->p_up[anti_];
  // A normal unclamped neighbour of a seed follows the seeds downward.
  RoadId normal = net_.RoadSuccessors(0)[1];
  ASSERT_NE(normal, anti_);
  EXPECT_EQ(est->trend[normal], -1);
}

TEST_F(AntiCorrelationTest, AggregationFlipsSignThroughNegativeEdge) {
  auto influence = InfluenceModel::Build(*graph_, db_, {});
  ASSERT_TRUE(influence.ok());
  uint64_t slot = 4;
  double hist = db_.HistoricalMeanOr(0, slot, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, hist * 0.8}};  // seed is down 20%
  InfluenceAggregate agg =
      AggregateSeedDeviations(*influence, net_, db_, seeds, slot);
  ASSERT_GT(agg.weight[anti_], 0.0);
  // Anti-correlated road receives a POSITIVE expected deviation.
  EXPECT_GT(agg.x[anti_], 0.05);
}

}  // namespace
}  // namespace trendspeed
