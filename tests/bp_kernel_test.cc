// Scalar-oracle equivalence and structure tests for the vectorized BP
// kernel (trend/bp_kernel.h).
//
// The SIMD kernel's contract is NOT bitwise equality with the scalar path
// (it runs in single precision, reassociates the incoming-message products
// into prefix/suffix cavities, and contracts with FMAs) — it is marginal
// agreement within a small multiple of tol plus identical convergence
// decisions. The property tests here pin that contract over a few hundred
// seeded random graphs spanning the shapes the SoA layout special-cases:
// mixed degree distributions (full lockstep batches + bucket remainders),
// zero-degree variables, hubs past kMaxBatchDegree, clamped evidence, and
// underflow-range potentials.
//
// Convergence decisions: the max-residual is compared against tol in float
// (SIMD) vs double (scalar), so a residual landing within float noise
// (~1e-7) of tol could flip the decision. The tests use tol = 1e-3: the
// residual decays geometrically, so the probability that any sweep of any
// seeded graph lands inside the ~1e-7-wide ambiguity window is negligible,
// and the fixed seeds make every run reproducible either way.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "trend/belief_propagation.h"
#include "trend/bp_kernel.h"
#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {
namespace {

// Uniform in [lo, hi).
double U(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

struct RandomCase {
  BpGraph graph;
  std::vector<double> pot;
};

/// One random MRF + effective-potential vector. `shape` cycles through
/// edge models: 0 = sparse random, 1 = dense random, 2 = hub (variable 0
/// connected to everything — degree can exceed kMaxBatchDegree, exercising
/// the spill path). Potentials are supplied as the raw double vector the
/// flat API takes, so clamped (hard 0/1) pairs and subnormal-range values
/// are expressible without the MRF's float storage narrowing them.
RandomCase MakeRandomCase(Rng& rng, int shape) {
  size_t n = 1 + rng.NextBounded(120);
  PairwiseMrf mrf(n);
  size_t edges = 0;
  switch (shape % 3) {
    case 0:
      edges = rng.NextBounded(static_cast<uint32_t>(n) + 1);
      break;
    case 1:
      edges = 2 * n + rng.NextBounded(static_cast<uint32_t>(n) + 1);
      break;
    default:
      edges = rng.NextBounded(static_cast<uint32_t>(n) + 1) / 2;
      break;
  }
  for (size_t e = 0; e < edges; ++e) {
    size_t u = rng.NextBounded(static_cast<uint32_t>(n));
    size_t v = rng.NextBounded(static_cast<uint32_t>(n));
    if (u == v) continue;
    double compat[2][2];
    for (auto& row : compat) {
      for (double& c : row) c = std::exp(U(rng, -2.5, 2.5));
    }
    mrf.AddEdge(u, v, compat);
  }
  if (shape % 3 == 2 && n >= 70) {
    // Hub: drives variable 0 past kMaxBatchDegree into the spill list.
    for (size_t v = 1; v < n; ++v) {
      double compat[2][2] = {{1.2, 0.4}, {0.4, 1.2}};
      mrf.AddEdge(0, v, compat);
    }
  }

  RandomCase c;
  c.graph = BpGraph::FromMrf(mrf);
  c.pot.resize(2 * n);
  for (size_t v = 0; v < n; ++v) {
    uint32_t kind = rng.NextBounded(10);
    if (kind == 0) {
      // Hard evidence, both polarities.
      bool up = rng.NextBounded(2) == 1;
      c.pot[2 * v] = up ? 0.0 : 1.0;
      c.pot[2 * v + 1] = up ? 1.0 : 0.0;
    } else if (kind == 1) {
      // Deep under double's comfortable range; the kernel's potential
      // normalization and the scalar path's rescaled fallback must both
      // keep the 1:r ratio alive.
      double scale = std::pow(10.0, U(rng, -300.0, -250.0));
      double r = std::exp(U(rng, -2.0, 2.0));
      c.pot[2 * v] = scale;
      c.pot[2 * v + 1] = scale * r;
    } else {
      c.pot[2 * v] = std::exp(U(rng, -4.0, 4.0));
      c.pot[2 * v + 1] = std::exp(U(rng, -4.0, 4.0));
    }
  }
  return c;
}

TEST(BpKernelNameTest, RoundTrips) {
  for (BpKernel k : {BpKernel::kScalar, BpKernel::kSimd, BpKernel::kAuto}) {
    BpKernel parsed;
    ASSERT_TRUE(ParseBpKernel(BpKernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  BpKernel out;
  EXPECT_FALSE(ParseBpKernel("avx2", &out));
  EXPECT_FALSE(ParseBpKernel("", &out));
  EXPECT_FALSE(ParseBpKernel("Scalar", &out));
}

TEST(BpGraphSoaTest, BuildPartitionsEveryVariableAndEdge) {
  Rng rng(7);
  for (int shape = 0; shape < 6; ++shape) {
    RandomCase c = MakeRandomCase(rng, shape);
    BpGraphSoa soa = BpGraphSoa::Build(c.graph);
    EXPECT_EQ(soa.num_vars, c.graph.num_vars);
    EXPECT_EQ(soa.num_slots, c.graph.off[c.graph.num_vars]);
    EXPECT_EQ(soa.num_batch_vars, soa.batches.size() * BpGraphSoa::kLanes);
    EXPECT_EQ(soa.num_batch_vars + soa.spill.size(), soa.num_vars);

    // Every batch is kLanes same-degree variables on an aligned slot base.
    std::vector<char> seen(soa.num_vars, 0);
    for (size_t b = 0; b < soa.batches.size(); ++b) {
      EXPECT_EQ(soa.batches[b].slot_base % BpGraphSoa::kLanes, 0u);
      EXPECT_GE(soa.batches[b].deg, 1u);
      EXPECT_LE(soa.batches[b].deg, BpGraphSoa::kMaxBatchDegree);
      for (uint32_t lane = 0; lane < BpGraphSoa::kLanes; ++lane) {
        uint32_t v = soa.batch_var[b * BpGraphSoa::kLanes + lane];
        EXPECT_EQ(c.graph.off[v + 1] - c.graph.off[v], soa.batches[b].deg);
        EXPECT_FALSE(seen[v]);
        seen[v] = 1;
      }
    }
    for (const BpGraphSoa::SpillVar& sv : soa.spill) {
      EXPECT_EQ(c.graph.off[sv.var + 1] - c.graph.off[sv.var], sv.deg);
      EXPECT_FALSE(seen[sv.var]);
      seen[sv.var] = 1;
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
              static_cast<long>(soa.num_vars));

    // Batches precede the spill region.
    EXPECT_EQ(soa.spill_slot_base,
              soa.batches.empty()
                  ? 0u
                  : soa.batches.back().slot_base +
                        static_cast<size_t>(soa.batches.back().deg) *
                            BpGraphSoa::kLanes);
    for (const BpGraphSoa::SpillVar& sv : soa.spill) {
      EXPECT_GE(sv.slot0, soa.spill_slot_base);
    }

    // orig_slot is a bijection, rev commutes with it, and the compat
    // planes hold the row-0-normalized 3-plane form (plus the raw table
    // for the spill region) — computed in double, rounded once to float.
    std::vector<char> slot_seen(soa.num_slots, 0);
    for (size_t s = 0; s < soa.num_slots; ++s) {
      uint32_t orig = soa.orig_slot[s];
      ASSERT_LT(orig, soa.num_slots);
      EXPECT_FALSE(slot_seen[orig]);
      slot_seen[orig] = 1;
      EXPECT_EQ(soa.orig_slot[soa.rev[s]], c.graph.rev_slot[orig]);
      double c00 = c.graph.compat[4 * orig + 0];
      double c01 = c.graph.compat[4 * orig + 1];
      double c10 = c.graph.compat[4 * orig + 2];
      double c11 = c.graph.compat[4 * orig + 3];
      double r0 = c00 + c01;
      double r1 = c10 + c11;
      if (r0 > 0.0 && r1 <= r0 * BpGraphSoa::kMaxCompatRowRatio) {
        EXPECT_EQ(soa.cA[s], static_cast<float>(c00 / r0));
        EXPECT_EQ(soa.cB[s], static_cast<float>(c10 / r0));
        EXPECT_EQ(soa.cC[s], static_cast<float>((c10 + c11) / r0));
      } else {
        // Ill-conditioned tables only ever reach the spill path.
        EXPECT_GE(s, soa.spill_slot_base);
      }
      if (s >= soa.spill_slot_base) {
        size_t ci = s - soa.spill_slot_base;
        EXPECT_EQ(soa.spill_c00[ci], c.graph.compat[4 * orig + 0]);
        EXPECT_EQ(soa.spill_c01[ci], c.graph.compat[4 * orig + 1]);
        EXPECT_EQ(soa.spill_c10[ci], c.graph.compat[4 * orig + 2]);
        EXPECT_EQ(soa.spill_c11[ci], c.graph.compat[4 * orig + 3]);
      }
    }
  }
}

// A compat table whose row sums differ by more than kMaxCompatRowRatio is
// batch-ineligible (cB/cC would overflow float in the 3-plane form): both
// endpoints must land on the spill path, which keeps the raw 4-entry
// table, and SIMD inference must still track the scalar oracle.
TEST(BpGraphSoaTest, IllConditionedCompatRoutesToSpill) {
  const size_t n = 24;
  PairwiseMrf mrf(n);
  for (size_t v = 0; v < n; ++v) {
    double compat[2][2] = {{1.1, 0.9}, {0.9, 1.1}};
    mrf.AddEdge(v, (v + 1) % n, compat);
  }
  // Ill-conditioned in both directions (the reverse slot stores the
  // transpose, so the table must violate the bound row-wise AND
  // column-wise for both endpoints to spill).
  double skewed[2][2] = {{1e-35, 1e-35}, {1e-35, 1.0}};
  mrf.AddEdge(0, n / 2, skewed);
  BpGraph graph = BpGraph::FromMrf(mrf);
  BpGraphSoa soa = BpGraphSoa::Build(graph);
  bool spilled_lo = false, spilled_hi = false;
  for (const BpGraphSoa::SpillVar& sv : soa.spill) {
    spilled_lo |= sv.var == 0;
    spilled_hi |= sv.var == n / 2;
  }
  EXPECT_TRUE(spilled_lo);
  EXPECT_TRUE(spilled_hi);
  // The 22 remaining degree-2 ring variables still form two full batches.
  EXPECT_EQ(soa.num_batch_vars, 16u);

  if (!BpSimdKernelAvailable()) return;
  Rng rng(99);
  std::vector<double> pot(2 * n);
  for (size_t v = 0; v < n; ++v) {
    pot[2 * v] = U(rng, 0.2, 1.0);
    pot[2 * v + 1] = U(rng, 0.2, 1.0);
  }
  BpOptions opts;
  opts.max_iters = 25;
  opts.tol = 1e-6;
  opts.kernel = BpKernel::kScalar;
  BpResult scalar = InferMarginalsBpFlat(graph, pot, opts);
  opts.kernel = BpKernel::kSimd;
  BpResult simd = InferMarginalsBpFlat(graph, pot, opts);
  ASSERT_EQ(scalar.p_up.size(), simd.p_up.size());
  for (size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(scalar.p_up[v], simd.p_up[v], 1e-3) << "var " << v;
  }
}

TEST(BpKernelDispatchTest, ScalarRequestNeverRunsSimd) {
  obs::MetricsRegistry reg;
  Rng rng(11);
  RandomCase c = MakeRandomCase(rng, 1);
  BpOptions opts;
  opts.kernel = BpKernel::kScalar;
  opts.metrics = &reg;
  InferMarginalsBpFlat(c.graph, c.pot, opts);
  EXPECT_EQ(reg.GetCounter(obs::kBpKernelRunsScalar)->Value(), 1u);
  EXPECT_EQ(reg.GetCounter(obs::kBpKernelRunsSimd)->Value(), 0u);
  EXPECT_EQ(reg.GetCounter(obs::kBpKernelSimdFallbacksTotal)->Value(), 0u);
}

TEST(BpKernelDispatchTest, AutoResolvesToAvailableKernel) {
  obs::MetricsRegistry reg;
  Rng rng(13);
  RandomCase c = MakeRandomCase(rng, 0);
  BpOptions opts;
  opts.kernel = BpKernel::kAuto;
  opts.metrics = &reg;
  InferMarginalsBpFlat(c.graph, c.pot, opts);
  if (BpSimdKernelAvailable()) {
    EXPECT_EQ(ResolveBpKernel(BpKernel::kAuto), BpKernel::kSimd);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelRunsSimd)->Value(), 1u);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelSimdFallbacksTotal)->Value(), 0u);
  } else {
    EXPECT_EQ(ResolveBpKernel(BpKernel::kAuto), BpKernel::kScalar);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelRunsScalar)->Value(), 1u);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelSimdFallbacksTotal)->Value(), 1u);
  }
}

// Satellite regression for the scalar cavity/belief underflow fix: a
// degree-60 star whose center potential pair sits so low that the belief
// product (pot x 0.5^60) flushes to zero in double. Pre-fix, both belief
// factors flushed, the z <= 0 guard fired, and the center marginal came
// back 0.5; the rescaled products keep the 1:3 ratio alive. Uniform
// compatibilities keep every message at exactly (0.5, 0.5), so the true
// marginal is pot1 / (pot0 + pot1) = 0.75 — and the fallback cavity path
// (in_prod underflows with every factor comfortably above the old 1e-30
// per-message check) must not disturb the messages on the way.
TEST(BpScalarUnderflowTest, NearZeroPotentialsKeepTheirRatio) {
  const size_t kDeg = 60;
  PairwiseMrf mrf(kDeg + 1);
  for (size_t v = 1; v <= kDeg; ++v) {
    double compat[2][2] = {{1.0, 1.0}, {1.0, 1.0}};
    mrf.AddEdge(0, v, compat);
  }
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot(2 * (kDeg + 1), 1.0);
  pot[0] = 1e-310;
  pot[1] = 3e-310;

  BpOptions opts;
  opts.kernel = BpKernel::kScalar;
  opts.max_iters = 4;
  BpResult r = InferMarginalsBpFlat(graph, pot, opts);
  EXPECT_NEAR(r.p_up[0], 0.75, 1e-9);
  // Leaves (degree 1, cavity = the center's near-zero potential alone)
  // see a symmetric 1:3 belief weighting through the uniform edges, which
  // normalizes away: their marginal stays 0.5.
  EXPECT_NEAR(r.p_up[1], 0.5, 1e-9);

  // The same case through the SIMD kernel, whose potential normalization
  // sidesteps the underflow entirely.
  if (BpSimdKernelAvailable()) {
    opts.kernel = BpKernel::kSimd;
    BpResult rs = InferMarginalsBpFlat(graph, pot, opts);
    EXPECT_NEAR(rs.p_up[0], 0.75, 1e-5);
  }
}

TEST(BpKernelPropertyTest, SimdMatchesScalarOnRandomGraphs) {
  if (!BpSimdKernelAvailable()) {
    GTEST_SKIP() << "SIMD kernel not compiled in or not runnable here";
  }
  Rng rng(20260808);
  const int kGraphs = 220;
  int converged_runs = 0;
  for (int g = 0; g < kGraphs; ++g) {
    RandomCase c = MakeRandomCase(rng, g);
    BpOptions opts;
    opts.max_iters = 1 + rng.NextBounded(12);
    opts.tol = 1e-3;  // see file comment on decision robustness
    opts.damping = 0.15 * rng.NextBounded(3);
    opts.num_threads = 1;

    opts.kernel = BpKernel::kScalar;
    BpResult scalar = InferMarginalsBpFlat(c.graph, c.pot, opts);
    opts.kernel = BpKernel::kSimd;
    BpResult simd = InferMarginalsBpFlat(c.graph, c.pot, opts);

    ASSERT_EQ(scalar.p_up.size(), simd.p_up.size());
    EXPECT_EQ(scalar.converged, simd.converged) << "graph " << g;
    EXPECT_EQ(scalar.iterations, simd.iterations) << "graph " << g;
    converged_runs += scalar.converged ? 1 : 0;
    for (size_t v = 0; v < scalar.p_up.size(); ++v) {
      EXPECT_NEAR(scalar.p_up[v], simd.p_up[v], 1e-3)
          << "graph " << g << " var " << v;
    }
  }
  // The sweep must exercise both outcomes or the decision check is vacuous.
  EXPECT_GT(converged_runs, 10);
  EXPECT_LT(converged_runs, kGraphs - 10);
}

/// Warm-start interchange: a BpState seeded by one kernel must be
/// continuable by the other, in both directions, with marginals agreeing
/// with a from-scratch cold run on the new potentials.
TEST(BpKernelWarmTest, WarmStateInteroperatesAcrossKernels) {
  if (!BpSimdKernelAvailable()) {
    GTEST_SKIP() << "SIMD kernel not compiled in or not runnable here";
  }
  Rng rng(424242);
  size_t n = 400;
  PairwiseMrf mrf(n);
  for (size_t v = 0; v + 1 < n; ++v) {
    double compat[2][2] = {{1.4, 0.6}, {0.6, 1.4}};
    mrf.AddEdge(v, v + 1, compat);
  }
  for (size_t e = 0; e < n; ++e) {
    size_t u = rng.NextBounded(static_cast<uint32_t>(n));
    size_t v = rng.NextBounded(static_cast<uint32_t>(n));
    if (u == v) continue;
    double compat[2][2] = {{1.2, 0.8}, {0.8, 1.2}};
    mrf.AddEdge(u, v, compat);
  }
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot(2 * n);
  for (size_t v = 0; v < n; ++v) {
    pot[2 * v] = std::exp(U(rng, -1.0, 1.0));
    pot[2 * v + 1] = std::exp(U(rng, -1.0, 1.0));
  }
  // Drift 30% of the variables — above the 10% dense crossover, so the
  // simd-continued warm run takes the dense vectorized schedule.
  std::vector<double> pot2 = pot;
  for (size_t v = 0; v < n; ++v) {
    if (rng.NextBounded(10) < 3) {
      pot2[2 * v] *= std::exp(U(rng, -0.5, 0.5));
      pot2[2 * v + 1] *= std::exp(U(rng, -0.5, 0.5));
    }
  }

  // Tight tol: the per-sweep residual understates the remaining distance
  // to the fixed point by the contraction factor, so stopping at 1e-5
  // keeps every run (cold ref, dense warm, active-set warm) within ~1e-4
  // of the true fixed point and the cross-run comparison meaningful.
  BpOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-5;

  opts.kernel = BpKernel::kScalar;
  BpResult cold_ref = InferMarginalsBpFlat(graph, pot2, opts);

  // Direction 1: scalar cold seeds the state, SIMD continues warm.
  {
    obs::MetricsRegistry reg;
    BpState state;
    opts.kernel = BpKernel::kScalar;
    opts.metrics = nullptr;
    InferMarginalsBpFlat(graph, pot, opts, &state);
    opts.kernel = BpKernel::kSimd;
    opts.metrics = &reg;
    BpResult warm = InferMarginalsBpFlat(graph, pot2, opts, &state);
    EXPECT_TRUE(warm.warm);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelWarmDenseTotal)->Value(), 1u);
    for (size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(warm.p_up[v], cold_ref.p_up[v], 1e-3) << "var " << v;
    }
  }

  // Direction 2: SIMD cold seeds the state, scalar continues warm.
  {
    obs::MetricsRegistry reg;
    BpState state;
    opts.kernel = BpKernel::kSimd;
    opts.metrics = nullptr;
    InferMarginalsBpFlat(graph, pot, opts, &state);
    opts.kernel = BpKernel::kScalar;
    opts.metrics = &reg;
    BpResult warm = InferMarginalsBpFlat(graph, pot2, opts, &state);
    EXPECT_TRUE(warm.warm);
    EXPECT_EQ(reg.GetCounter(obs::kBpKernelWarmDenseTotal)->Value(), 0u);
    // Looser than direction 1: the scalar warm path truncates by active
    // set (contract: a few multiples of tol from the cold fixed point —
    // observed ~12x here) on top of the float-precision seed.
    for (size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(warm.p_up[v], cold_ref.p_up[v], 5e-3) << "var " << v;
    }
  }
}

/// Below the density crossover a SIMD-kernel warm run must keep the sparse
/// scalar active-set schedule (sweeping the whole graph densely for a
/// 2-variable drift would throw away the warm-start win).
TEST(BpKernelWarmTest, SparseWarmRunStaysOnActiveSetSchedule) {
  if (!BpSimdKernelAvailable()) {
    GTEST_SKIP() << "SIMD kernel not compiled in or not runnable here";
  }
  size_t n = 300;
  PairwiseMrf mrf(n);
  for (size_t v = 0; v + 1 < n; ++v) {
    double compat[2][2] = {{1.3, 0.7}, {0.7, 1.3}};
    mrf.AddEdge(v, v + 1, compat);
  }
  BpGraph graph = BpGraph::FromMrf(mrf);
  std::vector<double> pot(2 * n, 1.0);

  obs::MetricsRegistry reg;
  BpOptions opts;
  opts.kernel = BpKernel::kSimd;
  opts.metrics = &reg;
  BpState state;
  InferMarginalsBpFlat(graph, pot, opts, &state);

  std::vector<double> pot2 = pot;
  pot2[2 * 150] = 3.0;  // one drifted variable out of 300
  BpResult warm = InferMarginalsBpFlat(graph, pot2, opts, &state);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.active_vars, 1u);
  EXPECT_EQ(reg.GetCounter(obs::kBpKernelWarmDenseTotal)->Value(), 0u);
  // The dense schedule would have recomputed every directed edge each
  // sweep; the active-set schedule touches a neighbourhood.
  EXPECT_LT(warm.message_updates,
            static_cast<uint64_t>(graph.off[n]));
}

TEST(BpKernelEdgeCaseTest, EmptyAndIsolatedGraphs) {
  // Zero variables.
  PairwiseMrf empty(0);
  BpGraph g0 = BpGraph::FromMrf(empty);
  BpOptions opts;
  opts.kernel = BpKernel::kAuto;
  BpResult r0 = InferMarginalsBpFlat(g0, {}, opts);
  EXPECT_TRUE(r0.p_up.empty());

  // All variables isolated (every one lands in the spill list with
  // degree 0): marginals are the normalized potentials.
  PairwiseMrf iso(5);
  BpGraph g5 = BpGraph::FromMrf(iso);
  std::vector<double> pot = {1.0, 3.0, 1.0, 1.0, 0.0, 1.0, 2.0, 2.0,
                             5.0, 1.0};
  BpResult r5 = InferMarginalsBpFlat(g5, pot, opts);
  ASSERT_EQ(r5.p_up.size(), 5u);
  EXPECT_NEAR(r5.p_up[0], 0.75, 1e-6);
  EXPECT_NEAR(r5.p_up[1], 0.5, 1e-6);
  EXPECT_NEAR(r5.p_up[2], 1.0, 1e-6);  // hard up-evidence stays hard
  EXPECT_NEAR(r5.p_up[3], 0.5, 1e-6);
  EXPECT_NEAR(r5.p_up[4], 1.0 / 6.0, 1e-6);
}

}  // namespace
}  // namespace trendspeed
