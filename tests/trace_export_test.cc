// Tests for the Chrome trace-event JSON exporter (obs/trace_export.h):
// byte-exact goldens for flight and span exports, and a schema check over
// a real sharded serving replay — the trace a breach dump or --trace-out
// bench run would hand to chrome://tracing must stay loadable.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ingest.h"
#include "core/serving.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

uint64_t g_fake_now = 0;
uint64_t FakeClock() { return g_fake_now; }

TEST(TraceExportTest, EmptyInputsExportAnEmptyTrace) {
  std::string json = obs::ToChromeTraceJson(std::vector<obs::FlightEvent>{},
                                            {});
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  EXPECT_EQ(obs::ToChromeTraceJson(std::vector<obs::TraceEvent>{}), json);
}

TEST(TraceExportTest, FlightEventsGolden) {
  obs::FlightEvent queue;
  queue.slot = 12;
  queue.start_ns = 2'000;
  queue.duration_ns = 1'500;
  queue.thread_id = 3;
  queue.stage = obs::FlightStage::kQueueWait;
  queue.path_seq = 1;
  obs::FlightEvent shard;
  shard.slot = 12;
  shard.start_ns = 4'500;
  shard.duration_ns = 250;
  shard.thread_id = 7;
  shard.shard = 1;
  shard.stage = obs::FlightStage::kShardSolve;
  shard.path_seq = 0;
  // Deliberately out of start order: the exporter sorts.
  std::vector<obs::FlightEvent> events = {shard, queue};
  std::vector<std::pair<uint32_t, std::string>> threads = {
      {7, "pool-0"}, {3, "serving"}};

  std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"serving\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":7,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"pool-0\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":3,\"cat\":\"flight\","
      "\"name\":\"queue_wait\",\"ts\":0.000,\"dur\":1.500,"
      "\"args\":{\"slot\":12,\"seq\":1}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":7,\"cat\":\"flight\","
      "\"name\":\"shard_solve\",\"ts\":2.500,\"dur\":0.250,"
      "\"args\":{\"slot\":12,\"shard\":1,\"seq\":0}}\n"
      "]}";
  EXPECT_EQ(obs::ToChromeTraceJson(events, threads), expected);
}

TEST(TraceExportTest, SpanRecorderGoldenUnderInjectedClock) {
  obs::SetMonotonicClockForTest(&FakeClock);
  g_fake_now = 9'000'000;
  obs::TraceRecorder rec(8);
  {
    obs::ScopedSpan outer(&rec, "outer");
    g_fake_now += 1'000;
    {
      obs::ScopedSpan inner(&rec, "inner");
      g_fake_now += 2'000;
    }
    g_fake_now += 500;
  }
  obs::SetMonotonicClockForTest(nullptr);

  std::vector<obs::TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  const uint32_t tid = events[0].thread_id;
  const uint64_t outer_id = events[1].span_id;
  const uint64_t inner_id = events[0].span_id;
  std::string t = std::to_string(tid);
  std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":" + t +
      ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread-" + t +
      "\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":" + t +
      ",\"cat\":\"span\",\"name\":\"outer\",\"ts\":0.000,\"dur\":3.500,"
      "\"args\":{\"depth\":0,\"span\":" + std::to_string(outer_id) +
      ",\"parent\":0,\"seq\":1}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":" + t +
      ",\"cat\":\"span\",\"name\":\"inner\",\"ts\":1.000,\"dur\":2.000,"
      "\"args\":{\"depth\":1,\"span\":" + std::to_string(inner_id) +
      ",\"parent\":" + std::to_string(outer_id) + ",\"seq\":0}}\n"
      "]}";
  EXPECT_EQ(obs::ToChromeTraceJson(rec), expected);
}

TEST(TraceExportTest, HostileSpanNamesAreEscaped) {
  obs::TraceRecorder rec(4);
  rec.Record("a\"b\\c\n", /*start_ns=*/10, /*duration_ns=*/5, /*depth=*/0);
  std::string json = obs::ToChromeTraceJson(rec);
  EXPECT_NE(json.find("a\\\"b\\\\c\\u000a"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Schema check over a real sharded serving replay (the CI tier-1 step).
// ---------------------------------------------------------------------------

// Minimal structural validator: balanced {}/[] outside strings, plus the
// keys catapult's legacy loader needs on every event line.
void CheckChromeTraceSchema(const std::string& json) {
  int depth = 0;
  int bracket_depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    ASSERT_GE(depth, 0);
    ASSERT_GE(bracket_depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(bracket_depth, 0);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  // Every complete event carries ph/pid/tid/name/ts/dur.
  size_t pos = 0;
  size_t complete_events = 0;
  while ((pos = json.find("{\"ph\":\"X\"", pos)) != std::string::npos) {
    size_t line_end = json.find('\n', pos);
    std::string line = json.substr(pos, line_end - pos);
    for (const char* key :
         {"\"pid\":", "\"tid\":", "\"name\":", "\"ts\":", "\"dur\":",
          "\"args\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << line;
    }
    ++complete_events;
    pos += 1;
  }
  EXPECT_GT(complete_events, 0u);
}

TEST(TraceExportTest, ShardedServingReplayExportsLoadableTrace) {
  const Dataset& ds = SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  config.sharding.num_shards = 2;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto seeds = est->SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());

  obs::FlightRecorder flight;
  ServingOptions opts;
  opts.ingest_queue.capacity = 256;
  opts.publish_snapshots = true;  // the replay must reach the publish stage
  opts.observability.flight = &flight;
  opts.observability.slo.total_budget_ms = 1e6;  // never breaches
  auto session = ServingSession::Create(&*est, opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto fe = IngestFrontEnd::Create(&*session);
  ASSERT_TRUE(fe.ok());

  for (uint64_t slot = 0; slot < 3; ++slot) {
    for (RoadId r : seeds->seeds) {
      ASSERT_TRUE(
          (*fe)->Offer(slot, {r, std::max(1.0, ds.truth.at(slot, r))}));
    }
    auto report = (*fe)->Flush();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  std::string json = obs::ToChromeTraceJson(flight);
  CheckChromeTraceSchema(json);
  // The full causal backbone shows up in the trace.
  for (const char* stage :
       {"queue_wait", "ingest", "admission", "estimate", "bp_solve",
        "shard_solve", "exchange", "publish"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + stage + "\""),
              std::string::npos)
        << stage;
  }
  // Every slot produced a critical-path decomposition for the SLO engine.
  ASSERT_NE(session->slo(), nullptr);
  EXPECT_EQ(session->slo()->slots_observed(), 3u);
  EXPECT_EQ(session->slo()->state(obs::SloStage::kTotal),
            obs::SloState::kOk);
}

}  // namespace
}  // namespace trendspeed
