// Tests for the seqlock SpeedSnapshotPublisher (core/snapshot.h): basic
// publish/read semantics, the writer-vs-many-readers torture test (no torn
// reads — run under TRENDSPEED_SANITIZE=thread to also prove the payload
// path race-free), and the ServingSession integration that publishes every
// served slot.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/serving.h"
#include "core/snapshot.h"
#include "obs/catalog.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

TEST(SnapshotTest, ReadBeforeFirstPublishReturnsFalse) {
  SpeedSnapshotPublisher pub(4);
  SpeedSnapshot snap;
  EXPECT_FALSE(pub.Read(&snap));
  EXPECT_EQ(pub.publishes(), 0u);
}

TEST(SnapshotTest, PublishThenReadRoundTrips) {
  SpeedSnapshotPublisher pub(3);
  std::vector<double> speeds = {50.0, 30.5, 80.25};
  std::vector<double> devs = {-0.1, 0.0, 0.2};
  pub.Publish(7, speeds, devs, 0, 53.583333);
  SpeedSnapshot snap;
  ASSERT_TRUE(pub.Read(&snap));
  EXPECT_EQ(snap.slot, 7u);
  EXPECT_EQ(snap.version, 1u);
  EXPECT_EQ(snap.speed_kmh, speeds);
  EXPECT_EQ(snap.deviation, devs);
  EXPECT_FALSE(snap.stale);
  EXPECT_EQ(snap.stale_slots, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_speed_kmh, 53.583333);

  // A second publish bumps the version and replaces the payload wholesale;
  // a reused SpeedSnapshot is overwritten, not appended to.
  std::vector<double> speeds2 = {10.0, 20.0, 30.0};
  pub.Publish(8, speeds2, devs, 2, 20.0);
  ASSERT_TRUE(pub.Read(&snap));
  EXPECT_EQ(snap.slot, 8u);
  EXPECT_EQ(snap.version, 2u);
  EXPECT_EQ(snap.speed_kmh, speeds2);
  EXPECT_TRUE(snap.stale);
  EXPECT_EQ(snap.stale_slots, 2u);
  EXPECT_EQ(pub.publishes(), 2u);
}

// Regression for the stale-tail bug: a SpeedSnapshot reused across
// publishers (the multi-city poller pattern — one buffer, N cities) must
// never present a previous publisher's payload under a new publisher's
// identity. Before the fix, Read() on an unpublished publisher returned
// false but left the previous city's slot/version/speeds in *out; a poller
// that only checked `snap.version != last_seen` then served city A's field
// as city B's.
TEST(SnapshotTest, ReusedSnapshotIsResetByFailedRead) {
  SpeedSnapshotPublisher city_a(3);
  city_a.Publish(9, {50.0, 60.0, 70.0}, {0.1, 0.2, 0.3}, 0, 60.0);
  SpeedSnapshot snap;
  ASSERT_TRUE(city_a.Read(&snap));
  ASSERT_EQ(snap.version, 1u);

  // Same buffer against a city that has served nothing yet.
  SpeedSnapshotPublisher city_b(5);
  EXPECT_FALSE(city_b.Read(&snap));
  EXPECT_EQ(snap.version, 0u);  // no identity survives the failed read
  EXPECT_EQ(snap.slot, 0u);
  EXPECT_TRUE(snap.speed_kmh.empty());
  EXPECT_TRUE(snap.deviation.empty());
  EXPECT_FALSE(snap.stale);
  EXPECT_EQ(snap.stale_slots, 0u);
  EXPECT_EQ(snap.mean_speed_kmh, 0.0);

  // And a successful read against a *smaller* publisher must shrink the
  // reused vectors, never leave a stale tail from the larger city.
  SpeedSnapshotPublisher city_c(2);
  ASSERT_TRUE(city_a.Read(&snap));  // re-inflate to 3 roads
  city_c.Publish(1, {10.0, 20.0}, {0.0, 0.0}, 0, 15.0);
  ASSERT_TRUE(city_c.Read(&snap));
  EXPECT_EQ(snap.speed_kmh.size(), 2u);
  EXPECT_EQ(snap.deviation.size(), 2u);
  EXPECT_EQ(snap.speed_kmh, (std::vector<double>{10.0, 20.0}));
}

// The seqlock torture test: one writer publishing at full speed, several
// readers hammering Read. Every payload cell of publish v is a pure
// function of v, so any torn mix of two publishes is detectable in a
// single read. Failure mode being guarded: a reader observing
// slot/speeds/staleness from different publishes.
TEST(SnapshotTest, TortureOneWriterManyReadersNoTornReads) {
  constexpr size_t kRoads = 64;
  constexpr uint64_t kPublishes = 2000;
  constexpr int kReaders = 4;
  obs::MetricsRegistry reg;
  SpeedSnapshotPublisher pub(kRoads);
  pub.AttachMetrics(&reg);

  auto expect_speed = [](uint64_t slot, size_t i) {
    return static_cast<double>(slot * 1000 + i);
  };
  auto expect_dev = [](uint64_t slot, size_t i) {
    return -static_cast<double>(slot + i) / 1024.0;
  };

  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reads_ok{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      SpeedSnapshot snap;  // reused: allocation-free after first Read
      // One extra pass after `done`: on a single-CPU host the writer can
      // finish before this thread is first scheduled, and the test must
      // still verify at least one (now quiescent) read per reader.
      bool last_pass = false;
      while (!last_pass) {
        last_pass = done.load(std::memory_order_acquire);
        if (!pub.Read(&snap)) continue;
        bool consistent = snap.slot >= 1 && snap.slot <= kPublishes &&
                          snap.speed_kmh.size() == kRoads &&
                          snap.deviation.size() == kRoads &&
                          snap.stale_slots == snap.slot % 5 &&
                          snap.stale == (snap.stale_slots > 0) &&
                          snap.mean_speed_kmh ==
                              static_cast<double>(snap.slot) * 2.0;
        for (size_t i = 0; consistent && i < kRoads; ++i) {
          consistent = snap.speed_kmh[i] == expect_speed(snap.slot, i) &&
                       snap.deviation[i] == expect_dev(snap.slot, i);
        }
        if (consistent) {
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<double> speeds(kRoads), devs(kRoads);
  for (uint64_t slot = 1; slot <= kPublishes; ++slot) {
    for (size_t i = 0; i < kRoads; ++i) {
      speeds[i] = expect_speed(slot, i);
      devs[i] = expect_dev(slot, i);
    }
    pub.Publish(slot, speeds, devs, static_cast<uint32_t>(slot % 5),
                static_cast<double>(slot) * 2.0);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_EQ(pub.publishes(), kPublishes);
  EXPECT_EQ(reg.GetCounter(obs::kSnapshotPublishesTotal)->Value(), kPublishes);
  // Retries are possible (writer overlap) but every one must be counted,
  // never looped on forever — reaching this line at all proves progress.
  EXPECT_GE(reg.GetHistogram(obs::kSnapshotReadLatencyUs)->count(), 0u);
}

// ---------------------------------------------------------------------------
// ServingSession integration.
// ---------------------------------------------------------------------------

class SnapshotServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok());
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
    auto seeds = estimator_->SelectSeeds(6, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    seeds_ = new std::vector<RoadId>(seeds->seeds);
  }

  const Dataset& ds() { return SharedTinyDataset(); }

  std::vector<SeedSpeed> CleanObs(uint64_t slot) {
    std::vector<SeedSpeed> out;
    for (RoadId r : *seeds_) {
      out.push_back({r, std::max(1.0, ds().truth.at(slot, r))});
    }
    return out;
  }

  static TrafficSpeedEstimator* estimator_;
  static std::vector<RoadId>* seeds_;
};

TrafficSpeedEstimator* SnapshotServingTest::estimator_ = nullptr;
std::vector<RoadId>* SnapshotServingTest::seeds_ = nullptr;

TEST_F(SnapshotServingTest, OffByDefault) {
  auto session = ServingSession::Create(estimator_);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->snapshot_publisher(), nullptr);
}

TEST_F(SnapshotServingTest, EveryServedSlotIsPublished) {
  ServingOptions opts;
  opts.publish_snapshots = true;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  const SpeedSnapshotPublisher* pub = session->snapshot_publisher();
  ASSERT_NE(pub, nullptr);
  SpeedSnapshot snap;
  EXPECT_FALSE(pub->Read(&snap));  // nothing served yet

  auto report = session->Ingest(0, CleanObs(0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(pub->Read(&snap));
  EXPECT_EQ(snap.slot, 0u);
  EXPECT_EQ(snap.version, 1u);
  EXPECT_FALSE(snap.stale);
  // The snapshot is the served estimate, element for element.
  EXPECT_EQ(snap.speed_kmh, report->monitor.estimate.speeds.speed_kmh);
  EXPECT_EQ(snap.deviation, report->monitor.estimate.speeds.deviation);
  EXPECT_DOUBLE_EQ(snap.mean_speed_kmh, report->monitor.mean_speed_kmh);

  // A carried-forward slot republishes the same field with the staleness
  // flag so pollers can tell "old but served" from "fresh".
  auto stale_report = session->Ingest(1, {});
  ASSERT_TRUE(stale_report.ok());
  ASSERT_TRUE(pub->Read(&snap));
  EXPECT_EQ(snap.slot, 1u);
  EXPECT_EQ(snap.version, 2u);
  EXPECT_TRUE(snap.stale);
  EXPECT_EQ(snap.stale_slots, 1u);
  EXPECT_EQ(snap.speed_kmh, report->monitor.estimate.speeds.speed_kmh);

  // Rejected ingests (out-of-order here) publish nothing.
  EXPECT_FALSE(session->Ingest(0, CleanObs(0)).ok());
  EXPECT_EQ(pub->publishes(), 2u);
}

TEST_F(SnapshotServingTest, DuplicateSlotKeepsSnapshotConsistent) {
  ServingOptions opts;
  opts.publish_snapshots = true;
  auto session = ServingSession::Create(estimator_, opts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Ingest(0, CleanObs(0)).ok());
  const SpeedSnapshotPublisher* pub = session->snapshot_publisher();
  uint64_t before = pub->publishes();
  // Idempotent duplicate: served from the cached report, which is exactly
  // what the snapshot already holds — readers see no spurious version bump.
  auto dup = session->Ingest(0, CleanObs(0));
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup->duplicate);
  SpeedSnapshot snap;
  ASSERT_TRUE(pub->Read(&snap));
  EXPECT_EQ(snap.slot, 0u);
  EXPECT_EQ(snap.speed_kmh, dup->monitor.estimate.speeds.speed_kmh);
  EXPECT_EQ(pub->publishes(), before);
}

}  // namespace
}  // namespace trendspeed
