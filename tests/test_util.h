// Shared fixtures for the trendspeed test suites.

#ifndef TRENDSPEED_TESTS_TEST_UTIL_H_
#define TRENDSPEED_TESTS_TEST_UTIL_H_

#include <memory>

#include "io/dataset.h"
#include "probe/history.h"
#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "util/logging.h"

namespace trendspeed {
namespace testing_util {

/// A 4x4 grid network (48 directed roads) for structural tests.
inline RoadNetwork SmallGrid() {
  GridNetworkOptions opts;
  opts.rows = 4;
  opts.cols = 4;
  opts.arterial_every = 2;
  auto net = MakeGridNetwork(opts);
  TS_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

/// A 3-node path network: A -> B -> C with two-way roads (4 segments).
inline RoadNetwork PathNetwork() {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId m = b.AddNode(500, 0);
  NodeId c = b.AddNode(1000, 0);
  b.AddTwoWay(a, m, RoadClass::kArterial, 60.0);
  b.AddTwoWay(m, c, RoadClass::kArterial, 60.0);
  auto net = b.Finish();
  TS_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

/// Parity of the shared up/down pattern used by AlternatingHistory: depends
/// on slot-of-day AND day so that a (slot-of-day, weekend) history bucket
/// mixes up and down days — observations then genuinely deviate from their
/// bucket mean.
inline bool AlternatingUp(uint64_t slot, uint32_t slots_per_day = 144) {
  return (slot % slots_per_day + slot / slots_per_day) % 2 == 0;
}

/// Dense synthetic history where all roads follow one shared deviation
/// pattern: on "up" slots every road runs above its bucket norm, on "down"
/// slots below. Perfect co-trends, useful for deterministic correlation and
/// trend tests.
inline HistoricalDb AlternatingHistory(const RoadNetwork& net,
                                       uint64_t num_slots = 1008,
                                       uint32_t slots_per_day = 144,
                                       double swing = 0.2) {
  HistoricalDb::Builder builder(net.num_roads(), num_slots, slots_per_day);
  for (uint64_t slot = 0; slot < num_slots; ++slot) {
    double factor =
        AlternatingUp(slot, slots_per_day) ? 1.0 + swing : 1.0 - swing;
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      builder.Add(r, slot, net.road(r).free_flow_kmh * 0.8 * factor);
    }
  }
  return builder.Finish();
}

/// Cached tiny dataset shared by the heavier suites (built once per test
/// binary; building one takes a couple hundred ms).
inline const Dataset& SharedTinyDataset() {
  static const Dataset* dataset = [] {
    auto ds = BuildTinyCity();
    TS_CHECK(ds.ok()) << ds.status().ToString();
    return new Dataset(std::move(ds).value());
  }();
  return *dataset;
}

}  // namespace testing_util
}  // namespace trendspeed

#endif  // TRENDSPEED_TESTS_TEST_UTIL_H_
