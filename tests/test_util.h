// Shared fixtures for the trendspeed test suites.

#ifndef TRENDSPEED_TESTS_TEST_UTIL_H_
#define TRENDSPEED_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "io/dataset.h"
#include "probe/history.h"
#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/logging.h"
#include "util/random.h"

namespace trendspeed {
namespace testing_util {

/// A 4x4 grid network (48 directed roads) for structural tests.
inline RoadNetwork SmallGrid() {
  GridNetworkOptions opts;
  opts.rows = 4;
  opts.cols = 4;
  opts.arterial_every = 2;
  auto net = MakeGridNetwork(opts);
  TS_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

/// A 3-node path network: A -> B -> C with two-way roads (4 segments).
inline RoadNetwork PathNetwork() {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId m = b.AddNode(500, 0);
  NodeId c = b.AddNode(1000, 0);
  b.AddTwoWay(a, m, RoadClass::kArterial, 60.0);
  b.AddTwoWay(m, c, RoadClass::kArterial, 60.0);
  auto net = b.Finish();
  TS_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

/// Parity of the shared up/down pattern used by AlternatingHistory: depends
/// on slot-of-day AND day so that a (slot-of-day, weekend) history bucket
/// mixes up and down days — observations then genuinely deviate from their
/// bucket mean.
inline bool AlternatingUp(uint64_t slot, uint32_t slots_per_day = 144) {
  return (slot % slots_per_day + slot / slots_per_day) % 2 == 0;
}

/// Dense synthetic history where all roads follow one shared deviation
/// pattern: on "up" slots every road runs above its bucket norm, on "down"
/// slots below. Perfect co-trends, useful for deterministic correlation and
/// trend tests.
inline HistoricalDb AlternatingHistory(const RoadNetwork& net,
                                       uint64_t num_slots = 1008,
                                       uint32_t slots_per_day = 144,
                                       double swing = 0.2) {
  HistoricalDb::Builder builder(net.num_roads(), num_slots, slots_per_day);
  for (uint64_t slot = 0; slot < num_slots; ++slot) {
    double factor =
        AlternatingUp(slot, slots_per_day) ? 1.0 + swing : 1.0 - swing;
    for (RoadId r = 0; r < net.num_roads(); ++r) {
      builder.Add(r, slot, net.road(r).free_flow_kmh * 0.8 * factor);
    }
  }
  return builder.Finish();
}

/// Cached tiny dataset shared by the heavier suites (built once per test
/// binary; building one takes a couple hundred ms).
inline const Dataset& SharedTinyDataset() {
  static const Dataset* dataset = [] {
    auto ds = BuildTinyCity();
    TS_CHECK(ds.ok()) << ds.status().ToString();
    return new Dataset(std::move(ds).value());
  }();
  return *dataset;
}

/// Fault mix applied by FaultyObservationSource. Probabilities are
/// independent per delivery (or per observation for corrupt_prob).
struct FaultPlan {
  double drop_prob = 0.0;       ///< slot never delivered
  double duplicate_prob = 0.0;  ///< slot delivered twice back-to-back
  double empty_prob = 0.0;      ///< batch replaced by an empty one
  double corrupt_prob = 0.0;    ///< per-observation speed corruption
  /// Deliveries are shuffled within consecutive windows of this size
  /// (> 1 produces out-of-order and therefore effectively dropped slots).
  size_t reorder_window = 0;
  uint64_t seed = 7;
};

/// Deterministic fault injector for serving-path robustness tests: takes the
/// clean per-slot delivery schedule and returns a corrupted one (dropped,
/// duplicated, reordered, emptied deliveries; NaN/negative/zero/absurd
/// speeds). Same plan + same input => same faults.
class FaultyObservationSource {
 public:
  struct Delivery {
    uint64_t slot = 0;
    std::vector<SeedSpeed> observations;
  };

  explicit FaultyObservationSource(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  std::vector<Delivery> Corrupt(const std::vector<Delivery>& clean) {
    std::vector<Delivery> out;
    out.reserve(clean.size());
    for (const Delivery& d : clean) {
      if (rng_.NextBool(plan_.drop_prob)) continue;
      Delivery faulty = d;
      if (rng_.NextBool(plan_.empty_prob)) faulty.observations.clear();
      for (SeedSpeed& s : faulty.observations) {
        if (rng_.NextBool(plan_.corrupt_prob)) {
          s.speed_kmh = NextCorruptSpeed();
        }
      }
      out.push_back(faulty);
      if (rng_.NextBool(plan_.duplicate_prob)) out.push_back(faulty);
    }
    if (plan_.reorder_window > 1) {
      for (size_t begin = 0; begin < out.size();
           begin += plan_.reorder_window) {
        size_t end = std::min(begin + plan_.reorder_window, out.size());
        std::vector<Delivery> window(out.begin() + begin, out.begin() + end);
        rng_.Shuffle(&window);
        std::copy(window.begin(), window.end(), out.begin() + begin);
      }
    }
    return out;
  }

 private:
  /// Cycles through every malformed-speed class the serving layer must
  /// reject: NaN, negative, +/-inf, unit-mistake huge, and zero.
  double NextCorruptSpeed() {
    static constexpr double kInf = std::numeric_limits<double>::infinity();
    const double kinds[] = {std::numeric_limits<double>::quiet_NaN(),
                            -20.0, kInf, 1.0e7, 0.0, -kInf};
    return kinds[next_corrupt_++ % 6];
  }

  FaultPlan plan_;
  Rng rng_;
  size_t next_corrupt_ = 0;
};

}  // namespace testing_util
}  // namespace trendspeed

#endif  // TRENDSPEED_TESTS_TEST_UTIL_H_
