#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::PathNetwork;
using testing_util::SmallGrid;

TEST(RoadNetworkBuilderTest, BuildsValidNetwork) {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(300, 400);
  RoadId r = b.AddRoad(a, c, RoadClass::kLocal, 40.0);
  auto net = b.Finish();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 2u);
  EXPECT_EQ(net->num_roads(), 1u);
  EXPECT_DOUBLE_EQ(net->road(r).length_m, 500.0);  // 3-4-5 triangle
}

TEST(RoadNetworkBuilderTest, RejectsSelfLoop) {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  b.AddNode(1, 1);
  b.AddRoad(a, a, RoadClass::kLocal, 40.0);
  EXPECT_EQ(b.Finish().status().code(), StatusCode::kInvalidArgument);
}

TEST(RoadNetworkBuilderTest, RejectsNonPositiveSpeed) {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(1, 0);
  b.AddRoad(a, c, RoadClass::kLocal, 0.0);
  EXPECT_EQ(b.Finish().status().code(), StatusCode::kInvalidArgument);
}

TEST(RoadNetworkTest, TwoWayCreatesTwinPair) {
  RoadNetwork net = PathNetwork();
  // Roads 0/1 are the A<->B pair; 2/3 the B<->C pair.
  EXPECT_EQ(net.road(0).from, net.road(1).to);
  EXPECT_EQ(net.road(0).to, net.road(1).from);
}

TEST(RoadNetworkTest, RoadAdjacencyExcludesReverseTwin) {
  RoadNetwork net = PathNetwork();
  // Road 0 (A->B): successors should include B->C (road 2) but not B->A
  // (road 1, its reverse twin).
  auto succ = net.RoadSuccessors(0);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), RoadId{2}) != succ.end());
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), RoadId{1}) == succ.end());
}

TEST(RoadNetworkTest, SuccessorsAndPredecessorsAreConsistent) {
  RoadNetwork net = SmallGrid();
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    for (RoadId s : net.RoadSuccessors(r)) {
      auto preds = net.RoadPredecessors(s);
      EXPECT_TRUE(std::find(preds.begin(), preds.end(), r) != preds.end())
          << "succ " << s << " of " << r << " missing reverse link";
    }
  }
}

TEST(RoadNetworkTest, NodeInOutRoads) {
  RoadNetwork net = PathNetwork();
  // Middle node (id 1) has 2 outgoing (B->A, B->C) and 2 incoming roads.
  EXPECT_EQ(net.OutRoads(1).size(), 2u);
  EXPECT_EQ(net.InRoads(1).size(), 2u);
}

TEST(RoadNetworkTest, FreeFlowSecondsAndMidpoint) {
  RoadNetwork net = PathNetwork();
  // 500 m at 60 km/h = 30 s.
  EXPECT_NEAR(net.FreeFlowSeconds(0), 30.0, 1e-9);
  Node mid = net.Midpoint(0);
  EXPECT_DOUBLE_EQ(mid.x, 250.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
}

TEST(GridGeneratorTest, NodeAndRoadCounts) {
  GridNetworkOptions opts;
  opts.rows = 3;
  opts.cols = 4;
  opts.arterial_every = 0;
  opts.dropout = 0.0;
  auto net = MakeGridNetwork(opts);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 12u);
  // Edges: 3*3 horizontal + 2*4 vertical = 17 two-way = 34 directed.
  EXPECT_EQ(net->num_roads(), 34u);
  EXPECT_TRUE(IsRoadGraphConnected(*net));
}

TEST(GridGeneratorTest, DropoutKeepsConnectivity) {
  GridNetworkOptions opts;
  opts.rows = 12;
  opts.cols = 12;
  opts.dropout = 0.3;
  opts.seed = 99;
  auto net = MakeGridNetwork(opts);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(IsRoadGraphConnected(*net));
  GridNetworkOptions dense = opts;
  dense.dropout = 0.0;
  auto full = MakeGridNetwork(dense);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(net->num_roads(), full->num_roads());
}

TEST(GridGeneratorTest, ArterialsPresent) {
  auto net = MakeGridNetwork({});
  ASSERT_TRUE(net.ok());
  auto counts = net->CountByClass();
  EXPECT_GT(counts[static_cast<size_t>(RoadClass::kArterial)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(RoadClass::kLocal)], 0u);
}

TEST(GridGeneratorTest, RejectsBadOptions) {
  GridNetworkOptions opts;
  opts.rows = 1;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
  opts.rows = 5;
  opts.dropout = 0.9;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
}

TEST(RingRadialGeneratorTest, StructureAndConnectivity) {
  RingRadialOptions opts;
  opts.num_rings = 4;
  opts.num_spokes = 8;
  auto net = MakeRingRadialNetwork(opts);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 1u + 4u * 8u);
  EXPECT_TRUE(IsRoadGraphConnected(*net));
  auto counts = net->CountByClass();
  EXPECT_GT(counts[static_cast<size_t>(RoadClass::kHighway)], 0u);
}

TEST(RingRadialGeneratorTest, RejectsDegenerate) {
  RingRadialOptions opts;
  opts.num_spokes = 2;
  EXPECT_FALSE(MakeRingRadialNetwork(opts).ok());
}

TEST(RandomPlanarGeneratorTest, ConnectedAndSized) {
  RandomPlanarOptions opts;
  opts.num_nodes = 80;
  opts.k_nearest = 3;
  auto net = MakeRandomPlanarNetwork(opts);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 80u);
  EXPECT_GT(net->num_roads(), 160u);  // at least the spanning chain * 2
  EXPECT_TRUE(IsRoadGraphConnected(*net));
}

TEST(ShortestPathTest, HopDistancesOnPath) {
  RoadNetwork net = PathNetwork();
  // From road 0 (A->B): road 2 (B->C) is 1 hop, road 3 (C->B) is 2 hops
  // through the undirected adjacency; road 1 (B->A, reverse twin) is
  // reachable only through other roads.
  auto dist = RoadHopDistances(net, 0, 10);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[2], 1u);
  ASSERT_NE(dist[3], kUnreachable);
  EXPECT_LE(dist[3], 2u);
}

TEST(ShortestPathTest, TruncationAtMaxHops) {
  RoadNetwork net = SmallGrid();
  auto d1 = RoadHopDistances(net, 0, 1);
  auto dinf = RoadHopDistances(net, 0, 1000);
  size_t reach1 = 0, reach_all = 0;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    if (d1[r] != kUnreachable) {
      ++reach1;
      EXPECT_LE(d1[r], 1u);
    }
    if (dinf[r] != kUnreachable) ++reach_all;
  }
  EXPECT_LT(reach1, reach_all);
  EXPECT_EQ(reach_all, net.num_roads());  // grid is connected
}

TEST(ShortestPathTest, MultiSourceTakesNearest) {
  RoadNetwork net = SmallGrid();
  auto d0 = RoadHopDistances(net, 0, 1000);
  auto d5 = RoadHopDistances(net, 5, 1000);
  auto multi = RoadHopDistancesMulti(net, {0, 5}, 1000);
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    EXPECT_EQ(multi[r], std::min(d0[r], d5[r]));
  }
}

TEST(ShortestPathTest, RoadsWithinHopsSortedAndBounded) {
  RoadNetwork net = SmallGrid();
  auto hops = RoadsWithinHops(net, 3, 2);
  uint32_t prev = 0;
  std::set<RoadId> seen;
  for (const RoadHop& h : hops) {
    EXPECT_GE(h.hops, prev);
    EXPECT_LE(h.hops, 2u);
    EXPECT_NE(h.road, 3u);
    EXPECT_TRUE(seen.insert(h.road).second) << "duplicate road";
    prev = h.hops;
  }
}

TEST(FastestPathTest, FindsDirectPath) {
  RoadNetwork net = PathNetwork();
  auto path = FastestPath(net, 0, 2);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ(net.road((*path)[0]).from, 0u);
  EXPECT_EQ(net.road((*path)[1]).to, 2u);
}

TEST(FastestPathTest, PrefersFasterRoute) {
  // Two routes A->B: direct slow local road vs detour via fast highway.
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(1000, 0);
  NodeId via = b.AddNode(500, 100);
  RoadId slow = b.AddRoad(a, c, RoadClass::kLocal, 10.0);
  b.AddRoad(a, via, RoadClass::kHighway, 100.0);
  b.AddRoad(via, c, RoadClass::kHighway, 100.0);
  auto net = b.Finish();
  ASSERT_TRUE(net.ok());
  auto path = FastestPath(*net, a, c);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 2u);
  EXPECT_TRUE(std::find(path->begin(), path->end(), slow) == path->end());
}

TEST(FastestPathTest, UnreachableIsNotFound) {
  RoadNetwork::Builder b;
  NodeId a = b.AddNode(0, 0);
  NodeId c = b.AddNode(100, 0);
  NodeId d = b.AddNode(200, 0);
  NodeId e = b.AddNode(300, 0);
  b.AddTwoWay(a, c, RoadClass::kLocal, 40.0);
  b.AddTwoWay(d, e, RoadClass::kLocal, 40.0);
  auto net = b.Finish();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(FastestPath(*net, a, e).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(IsRoadGraphConnected(*net));
}

TEST(FastestPathTest, RejectsOutOfRangeNodes) {
  RoadNetwork net = PathNetwork();
  EXPECT_EQ(FastestPath(net, 0, 99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompositeCityTest, DistrictsConnectedByHighwayLinks) {
  CompositeCityOptions opts;
  opts.core.num_rings = 3;
  opts.core.num_spokes = 8;
  opts.suburb.rows = 5;
  opts.suburb.cols = 5;
  opts.num_links = 2;
  auto net = MakeCompositeCity(opts);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // Node/road counts are the districts' sums plus the links.
  auto core = MakeRingRadialNetwork(opts.core);
  auto suburb = MakeGridNetwork(opts.suburb);
  ASSERT_TRUE(core.ok());
  ASSERT_TRUE(suburb.ok());
  EXPECT_EQ(net->num_nodes(), core->num_nodes() + suburb->num_nodes());
  EXPECT_EQ(net->num_roads(),
            core->num_roads() + suburb->num_roads() + 2 * opts.num_links);
  // One connected city.
  EXPECT_TRUE(IsRoadGraphConnected(*net));
  // The links are highways and actually bridge the districts.
  size_t bridges = 0;
  for (RoadId r = 0; r < net->num_roads(); ++r) {
    bool from_core = net->road(r).from < core->num_nodes();
    bool to_core = net->road(r).to < core->num_nodes();
    if (from_core != to_core) {
      ++bridges;
      EXPECT_EQ(net->road(r).road_class, RoadClass::kHighway);
    }
  }
  EXPECT_EQ(bridges, 2 * opts.num_links);
}

TEST(CompositeCityTest, RejectsZeroLinks) {
  CompositeCityOptions opts;
  opts.num_links = 0;
  EXPECT_FALSE(MakeCompositeCity(opts).ok());
}

}  // namespace
}  // namespace trendspeed
