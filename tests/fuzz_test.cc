// Robustness "fuzz-lite" suites: hostile inputs must produce clean Status
// errors (or correct parses), never crashes or silent corruption.

#include <gtest/gtest.h>

#include "core/model_io.h"
#include "io/serialize.h"
#include "test_util.h"
#include "util/binary_io.h"
#include "util/csv.h"
#include "util/random.h"

namespace trendspeed {
namespace {

TEST(CsvFuzzTest, RandomBytesNeverCrash) {
  Rng rng(42);
  const char alphabet[] = "abc,\"\n\r\\0123 \t;";
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = rng.NextIndex(200);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextIndex(sizeof(alphabet) - 1)];
    }
    auto result = ParseCsv(input);  // must not crash; ok or error both fine
    if (result.ok()) {
      // Parsed tables must be rectangular.
      for (const auto& row : result->rows) {
        EXPECT_EQ(row.size(), result->header.size());
      }
    }
  }
}

TEST(CsvFuzzTest, RoundTripRandomTables) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    CsvTable t;
    size_t cols = 1 + rng.NextIndex(5);
    for (size_t c = 0; c < cols; ++c) {
      t.header.push_back("col" + std::to_string(c));
    }
    size_t rows = rng.NextIndex(10);
    const char alphabet[] = "ab,\"\nx 1.5-";
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols; ++c) {
        std::string field;
        size_t len = rng.NextIndex(12);
        for (size_t i = 0; i < len; ++i) {
          field += alphabet[rng.NextIndex(sizeof(alphabet) - 1)];
        }
        row.push_back(field);
      }
      t.rows.push_back(row);
    }
    auto parsed = ParseCsv(WriteCsv(t));
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    EXPECT_EQ(parsed->header, t.header);
    EXPECT_EQ(parsed->rows, t.rows);
  }
}

TEST(BinaryFuzzTest, TruncatedModelsFailCleanly) {
  const Dataset& ds = testing_util::SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok());
  std::string bytes = SerializeTrainedModel(*est);
  Rng rng(44);
  for (int trial = 0; trial < 60; ++trial) {
    size_t cut = rng.NextIndex(bytes.size());
    auto loaded =
        DeserializeTrainedModel(&ds.net, &ds.history, bytes.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut << " was accepted";
  }
}

TEST(BinaryFuzzTest, BitFlippedModelsNeverCrash) {
  const Dataset& ds = testing_util::SharedTinyDataset();
  PipelineConfig config;
  config.corr.min_co_observed = 8;
  auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
  ASSERT_TRUE(est.ok());
  std::string bytes = SerializeTrainedModel(*est);
  Rng rng(45);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = bytes;
    // Flip a few random bits in the header/metadata region, where structure
    // lives (payload flips mostly just change float values).
    for (int f = 0; f < 4; ++f) {
      size_t pos = rng.NextIndex(std::min<size_t>(mutated.size(), 256));
      mutated[pos] = static_cast<char>(mutated[pos] ^
                                       (1 << rng.NextIndex(8)));
    }
    // Must not crash. Either a clean error or, if the flip was benign, a
    // loadable model.
    auto loaded = DeserializeTrainedModel(&ds.net, &ds.history, mutated);
    (void)loaded;
  }
}

TEST(RecordsFuzzTest, GarbageCsvRecordsRejected) {
  CsvTable t;
  t.header = {"road", "slot", "speed_kmh"};
  t.rows = {{"abc", "1", "40"}};
  EXPECT_FALSE(RecordsFromCsv(t).ok());
  t.rows = {{"1", "-2", "40"}};
  EXPECT_FALSE(RecordsFromCsv(t).ok());
  t.rows = {{"1", "2", "fast"}};
  EXPECT_FALSE(RecordsFromCsv(t).ok());
  t.rows = {{"1", "2", "40"}, {"1", "2", ""}};
  EXPECT_FALSE(RecordsFromCsv(t).ok());
}

}  // namespace
}  // namespace trendspeed
