#include "util/status.h"

#include <gtest/gtest.h>

namespace trendspeed {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusNormalizedToInternalError) {
  Result<int> r = []() -> Result<int> { return Status::OK(); }();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  TS_ASSIGN_OR_RETURN(int h, Half(x));
  TS_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 2);
  Status bad = UseMacros(6, &out);  // 6/2 = 3 -> second Half fails
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace trendspeed
