// Tests for the weight-aware speed model, logistic evidence calibration,
// influence aggregation, and influence-mode estimation.

#include <cmath>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "speed/hierarchical_model.h"
#include "speed/linear_model.h"
#include "speed/propagation.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

TEST(FitTrendAffineTest, RecoversSharedSlopeAndShift) {
  // y = 0.1 + 0.8x + 0.15t.
  Rng rng(3);
  std::vector<RegressionSample> samples;
  for (int i = 0; i < 400; ++i) {
    RegressionSample s;
    s.x = rng.Uniform(-0.5, 0.5);
    s.t = rng.NextBool(0.5) ? 1 : 0;
    s.y = 0.1 + 0.8 * s.x + 0.15 * (s.t == 1 ? 1.0 : -1.0) +
          rng.Gaussian(0.0, 0.02);
    samples.push_back(s);
  }
  TrendLine line = FitTrendAffine(samples, 1e-6, 50);
  ASSERT_TRUE(line.trained[0]);
  ASSERT_TRUE(line.trained[1]);
  EXPECT_NEAR(line.b[0], 0.8, 0.03);
  EXPECT_NEAR(line.b[1], 0.8, 0.03);  // shared slope
  EXPECT_NEAR(line.a[1] - line.a[0], 0.3, 0.03);  // 2c
  EXPECT_NEAR(line.a[1], 0.25, 0.03);
}

TEST(FitTrendAffineTest, SingleTrendFallsBackToPlainLine) {
  Rng rng(5);
  std::vector<RegressionSample> samples;
  for (int i = 0; i < 100; ++i) {
    RegressionSample s;
    s.x = rng.Uniform(-0.5, 0.5);
    s.t = 1;  // only "up" samples
    s.y = 0.5 * s.x;
    samples.push_back(s);
  }
  TrendLine line = FitTrendAffine(samples, 1e-6, 50);
  ASSERT_TRUE(line.trained[0]);
  EXPECT_NEAR(line.a[0], line.a[1], 1e-9);  // no trend shift learnable
  EXPECT_NEAR(line.b[1], 0.5, 0.02);
}

TEST(FitTrendAffineTest, UntrainedBelowMinSamples) {
  std::vector<RegressionSample> samples(5);
  TrendLine line = FitTrendAffine(samples, 1.0, 50);
  EXPECT_FALSE(line.any_trained());
}

TEST(FitLogisticTest, RecoversSigmoidParameters) {
  Rng rng(7);
  std::vector<RegressionSample> samples;
  const double kBias = 0.3, kGamma = 4.0;
  for (int i = 0; i < 5000; ++i) {
    RegressionSample s;
    s.x = rng.Uniform(-1.0, 1.0);
    double p = 1.0 / (1.0 + std::exp(-(kBias + kGamma * s.x)));
    s.t = rng.NextBool(p) ? 1 : 0;
    samples.push_back(s);
  }
  LogisticCalibration cal = FitLogistic(samples);
  ASSERT_TRUE(cal.trained);
  EXPECT_NEAR(cal.bias, kBias, 0.15);
  EXPECT_NEAR(cal.gamma, kGamma, 0.4);
  EXPECT_GT(cal.LogOdds(1.0), cal.LogOdds(-1.0));
}

TEST(FitLogisticTest, UntrainedOnTinySamples) {
  LogisticCalibration cal = FitLogistic({}, 50);
  EXPECT_FALSE(cal.trained);
  EXPECT_DOUBLE_EQ(cal.LogOdds(5.0), 0.0);
}

TEST(FitLogisticTest, SeparableDataStaysFinite) {
  // Perfectly separable data would push gamma to infinity without the
  // ridge; verify it stays finite and correctly oriented.
  std::vector<RegressionSample> samples;
  for (int i = 0; i < 200; ++i) {
    RegressionSample s;
    s.x = (i % 2 == 0) ? 0.5 : -0.5;
    s.t = (i % 2 == 0) ? 1 : 0;
    samples.push_back(s);
  }
  LogisticCalibration cal = FitLogistic(samples);
  ASSERT_TRUE(cal.trained);
  EXPECT_TRUE(std::isfinite(cal.gamma));
  EXPECT_GT(cal.gamma, 0.0);
}

TEST(WeightedTrendModelTest, FitRecoversWeightInteraction) {
  // y = (0.3 + 0.3*min(w,2)) * x + 0.1*t.
  Rng rng(11);
  std::vector<RegressionSample> samples;
  for (int i = 0; i < 2000; ++i) {
    RegressionSample s;
    s.x = rng.Uniform(-0.5, 0.5);
    s.w = rng.Uniform(0.0, 3.0);
    s.t = rng.NextBool(0.5) ? 1 : 0;
    double wc = std::min(s.w, 2.0);
    s.y = (0.3 + 0.3 * wc) * s.x + 0.1 * (s.t == 1 ? 1 : -1) +
          rng.Gaussian(0.0, 0.02);
    samples.push_back(s);
  }
  WeightedTrendModel m = FitWeightedTrendModel(samples, 1e-6, 100);
  ASSERT_TRUE(m.trained);
  EXPECT_NEAR(m.b0, 0.3, 0.05);
  EXPECT_NEAR(m.b1, 0.3, 0.05);
  EXPECT_NEAR(m.c, 0.1, 0.02);
  // Slope saturates at the cap.
  EXPECT_NEAR(m.SlopeAt(2.0), m.SlopeAt(5.0), 1e-12);
}

TEST(WeightedTrendModelTest, UntrainedIsPassThrough) {
  WeightedTrendModel m;
  EXPECT_DOUBLE_EQ(m.Predict(0.4, 1.0, 0.5), 0.4);
}

TEST(WeightedTrendModelTest, BlendingMovesWithPosterior) {
  WeightedTrendModel m;
  m.trained = true;
  m.a = 0.0;
  m.c = 0.2;
  m.b0 = 1.0;
  m.b1 = 0.0;
  EXPECT_NEAR(m.Predict(0.0, 1.0, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(m.Predict(0.0, 1.0, 0.0), -0.2, 1e-12);
  EXPECT_NEAR(m.Predict(0.0, 1.0, 0.5), 0.0, 1e-12);
}

class InfluenceAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = SmallGrid();
    db_ = AlternatingHistory(net_, 1008, 144, 0.25);
    CorrelationGraphOptions copts;
    copts.min_co_observed = 10;
    auto graph = CorrelationGraph::Build(net_, db_, copts);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CorrelationGraph>(std::move(graph).value());
    auto influence = InfluenceModel::Build(*graph_, db_, {});
    ASSERT_TRUE(influence.ok());
    influence_ =
        std::make_unique<InfluenceModel>(std::move(influence).value());
  }

  RoadNetwork net_;
  HistoricalDb db_;
  std::unique_ptr<CorrelationGraph> graph_;
  std::unique_ptr<InfluenceModel> influence_;
};

TEST_F(InfluenceAggregationTest, SeedDeviationReachesCoveredRoads) {
  uint64_t slot = 4;
  double hist = db_.HistoricalMeanOr(0, slot, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, hist * 0.8}};  // -20% deviation
  InfluenceAggregate agg =
      AggregateSeedDeviations(*influence_, net_, db_, seeds, slot);
  // The seed covers itself with weight 1 and exact deviation.
  EXPECT_NEAR(agg.weight[0], 1.0, 1e-6);
  EXPECT_NEAR(agg.x[0], -0.2, 1e-6);
  // Covered roads carry the (possibly attenuated) negative signal.
  size_t covered = 0;
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    if (agg.weight[r] > 0.0) {
      ++covered;
      EXPECT_LT(agg.x[r], 0.0) << "road " << r;
    }
  }
  EXPECT_GT(covered, 3u);
}

TEST_F(InfluenceAggregationTest, MultipleSeedsAverageByWeight) {
  uint64_t slot = 4;
  // Two seeds with opposite deviations: covered roads land in between.
  double h0 = db_.HistoricalMeanOr(0, slot, net_.road(0).free_flow_kmh);
  double h9 = db_.HistoricalMeanOr(9, slot, net_.road(9).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, h0 * 0.8}, {9, h9 * 1.2}};
  InfluenceAggregate agg =
      AggregateSeedDeviations(*influence_, net_, db_, seeds, slot);
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    if (agg.weight[r] > 0.0) {
      EXPECT_GE(agg.x[r], -0.2 - 1e-6);
      EXPECT_LE(agg.x[r], 0.2 + 1e-6);
    }
  }
}

TEST_F(InfluenceAggregationTest, InfluenceEstimationCoversEveryRoad) {
  auto model = HierarchicalSpeedModel::Train(net_, db_, *graph_, *influence_,
                                             {});
  ASSERT_TRUE(model.ok());
  TrendEstimate trends;
  trends.p_up.assign(net_.num_roads(), 0.5);
  trends.trend.assign(net_.num_roads(), 1);
  uint64_t slot = 4;
  double hist = db_.HistoricalMeanOr(0, slot, net_.road(0).free_flow_kmh);
  std::vector<SeedSpeed> seeds = {{0, hist * 0.8}};
  InfluenceAggregate agg =
      AggregateSeedDeviations(*influence_, net_, db_, seeds, slot);
  auto est = EstimateSpeedsInfluence(net_, *influence_, db_, *model, trends,
                                     seeds, agg, slot, {});
  ASSERT_TRUE(est.ok());
  for (RoadId r = 0; r < net_.num_roads(); ++r) {
    EXPECT_GT(est->speed_kmh[r], 0.0);
  }
  EXPECT_DOUBLE_EQ(est->speed_kmh[0], hist * 0.8);
  EXPECT_EQ(est->layer[0], 0u);
  // Covered roads are layer 1.
  for (RoadId r = 1; r < net_.num_roads(); ++r) {
    if (agg.weight[r] > 0.0) {
      EXPECT_EQ(est->layer[r], 1u);
    }
  }
}

TEST_F(InfluenceAggregationTest, EstimationValidatesInput) {
  auto model = HierarchicalSpeedModel::Train(net_, db_, *graph_, *influence_,
                                             {});
  ASSERT_TRUE(model.ok());
  TrendEstimate trends;
  trends.p_up.assign(net_.num_roads(), 0.5);
  trends.trend.assign(net_.num_roads(), 1);
  InfluenceAggregate agg =
      AggregateSeedDeviations(*influence_, net_, db_, {}, 0);
  EXPECT_FALSE(EstimateSpeedsInfluence(net_, *influence_, db_, *model, trends,
                                       {{99999, 10.0}}, agg, 0, {})
                   .ok());
  TrendEstimate bad;
  bad.p_up.assign(3, 0.5);
  EXPECT_FALSE(EstimateSpeedsInfluence(net_, *influence_, db_, *model, bad,
                                       {}, agg, 0, {})
                   .ok());
}

}  // namespace
}  // namespace trendspeed
