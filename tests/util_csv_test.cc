#include "util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace trendspeed {
namespace {

TEST(CsvParseTest, SimpleTable) {
  auto t = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][2], "6");
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][1], "2");
}

TEST(CsvParseTest, QuotedFields) {
  auto t = ParseCsv("name,desc\nx,\"a, b\"\ny,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][1], "a, b");
  EXPECT_EQ(t->rows[1][1], "say \"hi\"");
}

TEST(CsvParseTest, QuotedNewline) {
  auto t = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLf) {
  auto t = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "1");
}

TEST(CsvParseTest, EmptyFields) {
  auto t = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(t->rows[0][0], "");
  EXPECT_EQ(t->rows[0][2], "");
}

TEST(CsvParseTest, RejectsRaggedRows) {
  auto t = ParseCsv("a,b\n1,2,3\n");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  auto t = ParseCsv("a\n\"oops\n");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvWriteTest, RoundTripWithQuoting) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"plain", "with,comma"}, {"q\"uote", "multi\nline"}};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, t.header);
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTableTest, ColumnIndex) {
  CsvTable t;
  t.header = {"x", "y"};
  auto idx = t.ColumnIndex("y");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(t.ColumnIndex("z").status().code(), StatusCode::kNotFound);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/ts_csv_test.csv";
  CsvTable t;
  t.header = {"a"};
  t.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/dir/file.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace trendspeed
