// Tests for the compact binary observation wire format (io/obs_wire.h):
// round trips, strict decode failures, and interop with the CSV loaders.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "io/obs_wire.h"
#include "io/serialize.h"

namespace trendspeed {
namespace {

// Record i of a batch starts at byte 24 + 8*i (tag 4, version 4, slot 8,
// count 8); its f32 speed at +4 within the record.
constexpr size_t kBatchHeaderBytes = 24;

ObservationBatch MakeBatch(uint64_t slot) {
  ObservationBatch b;
  b.slot = slot;
  // Speeds exactly representable in f32, so decode returns them bit-exact.
  b.observations.push_back(SeedSpeed{0, 55.5});
  b.observations.push_back(SeedSpeed{3, 12.25});
  b.observations.push_back(SeedSpeed{7, 120.0});
  return b;
}

TEST(ObsWireTest, BatchRoundTrips) {
  ObservationBatch batch = MakeBatch(42);
  std::string bytes = EncodeObservationBatch(batch);
  EXPECT_EQ(bytes.size(), kBatchHeaderBytes + 8 * batch.observations.size());
  auto decoded = DecodeObservationBatch(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->slot, 42u);
  ASSERT_EQ(decoded->observations.size(), batch.observations.size());
  for (size_t i = 0; i < batch.observations.size(); ++i) {
    EXPECT_EQ(decoded->observations[i].road, batch.observations[i].road);
    EXPECT_EQ(decoded->observations[i].speed_kmh,
              batch.observations[i].speed_kmh);
  }
  // encode(decode(bytes)) is byte-exact.
  EXPECT_EQ(EncodeObservationBatch(*decoded), bytes);
}

TEST(ObsWireTest, EmptyBatchRoundTrips) {
  ObservationBatch batch;
  batch.slot = 9;
  auto decoded = DecodeObservationBatch(EncodeObservationBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->slot, 9u);
  EXPECT_TRUE(decoded->observations.empty());
}

TEST(ObsWireTest, LogRoundTrips) {
  std::vector<ObservationBatch> log = {MakeBatch(1), MakeBatch(2),
                                       MakeBatch(5)};
  std::string bytes = EncodeObservationLog(log);
  auto decoded = DecodeObservationLog(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[2].slot, 5u);
  EXPECT_EQ((*decoded)[2].observations.size(), 3u);
  EXPECT_EQ(EncodeObservationLog(*decoded), bytes);
}

TEST(ObsWireTest, RejectsBadTag) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  bytes[0] = 'X';
  EXPECT_FALSE(DecodeObservationBatch(bytes).ok());
}

TEST(ObsWireTest, RejectsUnsupportedVersion) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  bytes[4] = 99;  // version field, little-endian low byte
  auto decoded = DecodeObservationBatch(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos);
}

TEST(ObsWireTest, RejectsTruncation) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  for (size_t cut : {bytes.size() - 1, bytes.size() - 5, kBatchHeaderBytes - 3,
                     size_t{2}}) {
    EXPECT_FALSE(DecodeObservationBatch(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ObsWireTest, RejectsTrailingGarbage) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  EXPECT_FALSE(DecodeObservationBatch(bytes + "x").ok());
  std::string log_bytes = EncodeObservationLog({MakeBatch(1)});
  EXPECT_FALSE(DecodeObservationLog(log_bytes + "x").ok());
}

TEST(ObsWireTest, RejectsAbsurdCountBeforeAllocating) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  // Count field at bytes 16..23: claim ~2^64 records in a 48-byte buffer.
  for (size_t i = 16; i < 24; ++i) bytes[i] = '\xff';
  auto decoded = DecodeObservationBatch(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("corrupt"), std::string::npos);
}

TEST(ObsWireTest, RejectsNonFiniteSpeedOnTheWire) {
  std::string bytes = EncodeObservationBatch(MakeBatch(1));
  const uint32_t nan_bits = 0x7fc00000u;  // quiet NaN
  std::memcpy(&bytes[kBatchHeaderBytes + 4], &nan_bits, 4);
  EXPECT_FALSE(DecodeObservationBatch(bytes).ok());
}

TEST(ObsWireTest, RejectsNonFiniteRecordSpeed) {
  std::vector<RawRecord> records = {
      {0, 1, std::numeric_limits<double>::infinity()}};
  EXPECT_FALSE(ObservationLogFromRecords(records).ok());
}

TEST(ObsWireTest, GroupsRecordsIntoAscendingSlotBatches) {
  // Interleaved slots, non-contiguous; within-slot order must be preserved.
  std::vector<RawRecord> records = {
      {4, 7, 30.0}, {1, 2, 50.0}, {2, 7, 40.0}, {9, 2, 60.0}, {5, 7, 20.0}};
  auto log = ObservationLogFromRecords(records);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 2u);
  EXPECT_EQ((*log)[0].slot, 2u);
  ASSERT_EQ((*log)[0].observations.size(), 2u);
  EXPECT_EQ((*log)[0].observations[0].road, 1u);
  EXPECT_EQ((*log)[0].observations[1].road, 9u);
  EXPECT_EQ((*log)[1].slot, 7u);
  ASSERT_EQ((*log)[1].observations.size(), 3u);
  EXPECT_EQ((*log)[1].observations[0].road, 4u);
  EXPECT_EQ((*log)[1].observations[2].road, 5u);

  // Flattening back yields slot-major records with order preserved.
  std::vector<RawRecord> flat = RecordsFromObservationLog(*log);
  ASSERT_EQ(flat.size(), records.size());
  EXPECT_EQ(flat[0].road, 1u);
  EXPECT_EQ(flat[0].slot, 2u);
  EXPECT_EQ(flat[2].road, 4u);
  EXPECT_EQ(flat[4].road, 5u);
}

TEST(ObsWireTest, CsvArchiveInteropWithinF32Tolerance) {
  // CSV (text, %.6g) and the wire (f32) are both lossy but far below
  // sensor noise; a CSV archive pushed through the wire and back must
  // agree to ~1e-4 relative.
  std::vector<RawRecord> records = {
      {0, 3, 53.123456}, {1, 3, 12.7}, {2, 4, 88.88}};
  auto from_csv = RecordsFromCsv(RecordsToCsv(records));
  ASSERT_TRUE(from_csv.ok());
  auto log = ObservationLogFromRecords(*from_csv);
  ASSERT_TRUE(log.ok());
  auto wired = DecodeObservationLog(EncodeObservationLog(*log));
  ASSERT_TRUE(wired.ok());
  std::vector<RawRecord> out = RecordsFromObservationLog(*wired);
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out[i].road, records[i].road);
    EXPECT_EQ(out[i].slot, records[i].slot);
    EXPECT_NEAR(out[i].speed_kmh, records[i].speed_kmh,
                1e-4 * records[i].speed_kmh);
  }
}

}  // namespace
}  // namespace trendspeed
