#include <cmath>

#include <gtest/gtest.h>

#include "probe/gps.h"
#include "probe/hmm_matching.h"
#include "probe/map_matching.h"
#include "probe/trips.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::PathNetwork;
using testing_util::SmallGrid;

TEST(HmmMatchingTest, NoiselessTraceMatchesExactly) {
  RoadNetwork net = PathNetwork();
  TripPlan trip;
  trip.roads = {0, 2};  // A->B, B->C
  std::vector<double> speeds(net.num_roads(), 36.0);
  GpsOptions gopts;
  gopts.sample_interval_s = 10.0;
  gopts.position_noise_m = 0.0;
  Rng rng(1);
  GpsTrace trace = DriveTrip(net, trip, speeds, gopts, 600.0, 0, &rng);
  SegmentIndex index(&net);
  std::vector<RoadId> matched = MatchTraceHmm(index, trace.points);
  ASSERT_EQ(matched.size(), trace.points.size());
  size_t correct = 0;
  for (size_t i = 0; i < matched.size(); ++i) {
    // Noiseless fixes lie exactly on the overlapping two-way street; either
    // direction is geometrically valid, so accept the twin as well.
    if (matched[i] == trace.true_roads[i] ||
        matched[i] == net.ReverseTwin(trace.true_roads[i])) {
      ++correct;
    }
  }
  // A fix landing exactly on the shared intersection is equidistant to all
  // four incident segments — allow one genuinely ambiguous point.
  EXPECT_GE(correct + 1, matched.size());
}

TEST(HmmMatchingTest, EmptyTrace) {
  RoadNetwork net = PathNetwork();
  SegmentIndex index(&net);
  EXPECT_TRUE(MatchTraceHmm(index, {}).empty());
}

TEST(HmmMatchingTest, OffNetworkFixesAreUnmatched) {
  RoadNetwork net = PathNetwork();
  SegmentIndex index(&net, 250.0, 40.0);
  std::vector<GpsPoint> pts(3);
  pts[0].x = 100;
  pts[0].y = 0;   // on road 0
  pts[1].x = 5000;
  pts[1].y = 5000;  // nowhere
  pts[2].x = 300;
  pts[2].y = 0;   // on road 0
  pts[1].t_seconds = 10;
  pts[2].t_seconds = 20;
  auto matched = MatchTraceHmm(index, pts);
  EXPECT_NE(matched[0], kInvalidRoad);
  EXPECT_EQ(matched[1], kInvalidRoad);
  EXPECT_NE(matched[2], kInvalidRoad);
}

double MatchAccuracy(const RoadNetwork& net, double noise_m, bool hmm,
                     uint64_t seed) {
  TripGenerator gen(&net, {});
  SegmentIndex index(&net);
  std::vector<double> speeds(net.num_roads(), 40.0);
  GpsOptions gopts;
  gopts.sample_interval_s = 15.0;
  gopts.position_noise_m = noise_m;
  Rng rng(seed);
  size_t total = 0, correct = 0;
  for (int t = 0; t < 25; ++t) {
    auto trip = gen.Next();
    TS_CHECK(trip.ok());
    GpsTrace trace = DriveTrip(net, *trip, speeds, gopts, 600.0,
                               static_cast<uint32_t>(t), &rng);
    std::vector<RoadId> matched = hmm ? MatchTraceHmm(index, trace.points)
                                      : MatchTrace(index, trace.points);
    for (size_t i = 0; i < matched.size(); ++i) {
      ++total;
      if (matched[i] == trace.true_roads[i] ||
          matched[i] == net.ReverseTwin(trace.true_roads[i])) {
        ++correct;
      }
    }
  }
  TS_CHECK_GT(total, 100u);
  return static_cast<double>(correct) / static_cast<double>(total);
}

TEST(HmmMatchingTest, RobustUnderHeavyNoise) {
  RoadNetwork net = SmallGrid();
  // Under heavy noise the Viterbi decoder must stay usable; segment-level
  // accuracy (either direction of the street) stays high.
  double hmm = MatchAccuracy(net, 25.0, /*hmm=*/true, 5);
  EXPECT_GT(hmm, 0.75);
}

TEST(HmmMatchingTest, ComparableToGreedyOnModerateNoise) {
  RoadNetwork net = SmallGrid();
  double hmm = MatchAccuracy(net, 10.0, true, 7);
  double greedy = MatchAccuracy(net, 10.0, false, 7);
  EXPECT_GT(hmm, 0.8);
  // Same ballpark as the heading-aware greedy matcher (the greedy matcher
  // uses heading, which disambiguates direction; HMM trades that for joint
  // spatial consistency).
  EXPECT_GT(hmm, greedy - 0.15);
}

TEST(HmmMatchingTest, FleetPipelineWorksWithHmm) {
  RoadNetwork net = SmallGrid();
  TrafficOptions topts;
  auto field = GenerateSpeedField(net, topts, 1);
  ASSERT_TRUE(field.ok());
  ProbeFleetOptions fleet;
  fleet.trips_per_slot = 3;
  fleet.use_hmm_matching = true;
  auto db = CollectProbeHistory(net, *field, fleet);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(db->TotalObservations(), 20u);
}

}  // namespace
}  // namespace trendspeed
