// One-writer / N-reader torture for the read-side product layer: a
// publisher thread publishing at full speed while reader threads fold
// profiles and answer cached route ETAs from their own Read() loops.
//
// What this proves (run under TRENDSPEED_SANITIZE=thread for the full
// claim): product reads never block or race the publisher — the only
// shared surface is the seqlock, the products' own state is per-reader —
// and every ETA a reader produces is internally consistent with the
// snapshot version it was priced on. The writer side asserts progress: all
// publishes complete while readers hammer the lock.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/routing.h"
#include "core/snapshot.h"
#include "product/profile.h"
#include "product/route_eta.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::SmallGrid;

TEST(ProductTortureTest, FoldingAndRoutingReadersNeverBlockThePublisher) {
  const RoadNetwork net = SmallGrid();
  const size_t kRoads = net.num_roads();
  constexpr uint64_t kPublishes = 400;
  constexpr int kReaders = 3;
  constexpr uint32_t kSlotsPerDay = 144;

  ProductOptions opts;
  opts.enabled = true;
  opts.profile_buckets_per_day = 24;
  opts.profile_min_samples = 2;
  opts.blend_full_stale_slots = 4;
  opts.eta_cache_capacity = 32;

  SpeedSnapshotPublisher pub(kRoads);
  // Speeds are a pure function of the publish version so readers can verify
  // the field they priced was internally consistent.
  auto speed_of = [](uint64_t version, size_t road) {
    return 20.0 + static_cast<double>((version + road) % 50);
  };

  std::atomic<bool> done{false};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> etas_ok{0};
  std::atomic<uint64_t> folds_total{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Per-reader products: the seqlock is the only shared surface.
      auto profile = SpeedProfileStore::Create(kRoads, kSlotsPerDay, opts);
      TS_CHECK(profile.ok());
      auto cache = RouteEtaCache::Create(net, opts, &*profile);
      TS_CHECK(cache.ok());
      Rng rng(1000 + static_cast<uint64_t>(t));
      SpeedSnapshot snap;  // reused read buffer
      bool last_pass = false;
      while (!last_pass) {
        last_pass = done.load(std::memory_order_acquire);
        if (!pub.Read(&snap)) continue;
        profile->Fold(snap);
        NodeId from = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
        NodeId to = static_cast<NodeId>(rng.NextIndex(net.num_nodes()));
        auto eta = cache->Eta(snap, from, to);
        if (!eta.ok()) continue;  // NotFound is legitimate on a grid corner
        // The answer must be priced on exactly the field it claims: since
        // the snapshot was consistent (seqlock) and fresh fields are pure
        // functions of the version, re-pricing the route must reproduce
        // the travel time bit for bit.
        bool consistent = eta->snapshot_version == snap.version &&
                          eta->route.slot == snap.slot;
        if (consistent && !snap.stale && !eta->route.roads.empty()) {
          double seconds = 0.0;
          for (RoadId r : eta->route.roads) {
            seconds += net.road(r).length_m /
                       (speed_of(snap.version, r) / 3.6);
          }
          consistent = seconds == eta->route.travel_seconds;
        }
        if (consistent) {
          etas_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
      folds_total.fetch_add(profile->folds(), std::memory_order_relaxed);
    });
  }

  std::vector<double> speeds(kRoads), devs(kRoads, 0.0);
  for (uint64_t v = 1; v <= kPublishes; ++v) {
    for (size_t r = 0; r < kRoads; ++r) speeds[r] = speed_of(v, r);
    // Every 5th publish is a carry-forward so readers also exercise the
    // stale/blend path under contention. The cadence keeps the final
    // publish fresh: on a single-CPU host the readers may be scheduled
    // only after the writer finishes, and their one guaranteed read (the
    // quiescent last pass) must still be able to fold.
    pub.Publish(v, speeds, devs, static_cast<uint32_t>(v % 5 == 3), 40.0);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  // Progress on both sides, zero cross-publish mixtures.
  EXPECT_EQ(pub.publishes(), kPublishes);
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(etas_ok.load(), 0u);
  EXPECT_GT(folds_total.load(), 0u);
}

}  // namespace
}  // namespace trendspeed
