#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "corr/correlation_graph.h"
#include "seed/exact.h"
#include "seed/greedy.h"
#include "seed/heuristics.h"
#include "seed/lazy_greedy.h"
#include "seed/objective.h"
#include "seed/stochastic_greedy.h"
#include "test_util.h"
#include "util/random.h"

namespace trendspeed {
namespace {

using testing_util::AlternatingHistory;
using testing_util::SmallGrid;

/// Max-Cover embedding: element roads have empty cover lists and sigma 1;
/// set roads cover their elements with influence 1.
InfluenceModel MaxCoverInstance(
    size_t num_elements, const std::vector<std::vector<RoadId>>& sets) {
  size_t n = num_elements + sets.size();
  std::vector<std::vector<CoverEntry>> covers(n);
  std::vector<double> sigma(n, 0.0);
  for (size_t e = 0; e < num_elements; ++e) sigma[e] = 1.0;
  for (size_t s = 0; s < sets.size(); ++s) {
    for (RoadId e : sets[s]) {
      covers[num_elements + s].push_back(CoverEntry{e, 1.0f});
    }
  }
  return InfluenceModel::FromCoverLists(n, std::move(covers),
                                        std::move(sigma));
}

/// Random weighted instance for property checks.
InfluenceModel RandomInstance(size_t n, Rng* rng) {
  std::vector<std::vector<CoverEntry>> covers(n);
  std::vector<double> sigma(n);
  for (size_t i = 0; i < n; ++i) {
    sigma[i] = rng->Uniform(0.1, 2.0);
    covers[i].push_back(CoverEntry{static_cast<RoadId>(i), 1.0f});
    size_t extra = rng->NextIndex(5);
    for (size_t k = 0; k < extra; ++k) {
      covers[i].push_back(
          CoverEntry{static_cast<RoadId>(rng->NextIndex(n)),
                     static_cast<float>(rng->Uniform(0.05, 0.95))});
    }
  }
  return InfluenceModel::FromCoverLists(n, std::move(covers),
                                        std::move(sigma));
}

TEST(ObjectiveTest, ValueMatchesDefinition) {
  // 3 roads; road 2 covers 0 and 1 with weight 0.5; sigmas 1, 2, 4.
  std::vector<std::vector<CoverEntry>> covers(3);
  covers[2] = {{0, 0.5f}, {1, 0.5f}, {2, 1.0f}};
  covers[0] = {{0, 1.0f}};
  covers[1] = {{1, 1.0f}};
  InfluenceModel model =
      InfluenceModel::FromCoverLists(3, std::move(covers), {1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ObjectiveValue(model, {2}), 0.5 * 1 + 0.5 * 2 + 1.0 * 4);
  EXPECT_DOUBLE_EQ(ObjectiveValue(model, {0}), 1.0);
  // Adding road 0 after 2 upgrades its coverage from 0.5 to 1.0.
  EXPECT_DOUBLE_EQ(ObjectiveValue(model, {2, 0}),
                   ObjectiveValue(model, {2}) + 0.5 * 1.0);
}

TEST(ObjectiveTest, IncrementalStateMatchesScratch) {
  Rng rng(3);
  InfluenceModel model = RandomInstance(40, &rng);
  ObjectiveState state(&model);
  std::vector<RoadId> chosen;
  for (int i = 0; i < 10; ++i) {
    RoadId j = static_cast<RoadId>(rng.NextIndex(40));
    double gain = state.GainOf(j);
    double before = state.value();
    state.Add(j);
    chosen.push_back(j);
    EXPECT_NEAR(state.value(), before + gain, 1e-9);
    EXPECT_NEAR(state.value(), ObjectiveValue(model, chosen), 1e-9);
  }
}

TEST(ObjectiveTest, MonotoneAndSubmodularOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    InfluenceModel model = RandomInstance(25, &rng);
    // Random nested sets S ⊂ T and an element j ∉ T.
    std::vector<RoadId> perm(25);
    for (size_t i = 0; i < 25; ++i) perm[i] = static_cast<RoadId>(i);
    rng.Shuffle(&perm);
    size_t s_size = 1 + rng.NextIndex(8);
    size_t t_size = s_size + 1 + rng.NextIndex(8);
    RoadId j = perm[t_size];  // outside both
    ObjectiveState small(&model), large(&model);
    for (size_t i = 0; i < s_size; ++i) small.Add(perm[i]);
    for (size_t i = 0; i < t_size; ++i) large.Add(perm[i]);
    // Monotonicity.
    EXPECT_GE(large.value(), small.value() - 1e-12);
    EXPECT_GE(small.GainOf(j), -1e-12);
    // Submodularity: gain shrinks on the larger set.
    EXPECT_GE(small.GainOf(j), large.GainOf(j) - 1e-12);
  }
}

TEST(GreedyTest, SolvesMaxCoverGreedily) {
  // Elements 0..5; set A covers {0,1,2}, B {2,3}, C {4}, D {3,4,5}.
  InfluenceModel model =
      MaxCoverInstance(6, {{0, 1, 2}, {2, 3}, {4}, {3, 4, 5}});
  auto result = SelectSeedsGreedy(model, 2);
  ASSERT_TRUE(result.ok());
  // Greedy picks A (3 elements) then D (+3): covers everything.
  std::set<RoadId> seeds(result->seeds.begin(), result->seeds.end());
  EXPECT_TRUE(seeds.count(6));  // set A
  EXPECT_TRUE(seeds.count(9));  // set D
  EXPECT_DOUBLE_EQ(result->objective, 6.0);
}

TEST(GreedyTest, RejectsBadK) {
  Rng rng(9);
  InfluenceModel model = RandomInstance(10, &rng);
  EXPECT_FALSE(SelectSeedsGreedy(model, 0).ok());
  EXPECT_FALSE(SelectSeedsGreedy(model, 11).ok());
}

TEST(LazyGreedyTest, MatchesPlainGreedyExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    InfluenceModel model = RandomInstance(60, &rng);
    for (size_t k : {1u, 3u, 8u}) {
      auto plain = SelectSeedsGreedy(model, k);
      auto lazy = SelectSeedsLazyGreedy(model, k);
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE(lazy.ok());
      EXPECT_NEAR(plain->objective, lazy->objective, 1e-9)
          << "trial " << trial << " k " << k;
      EXPECT_EQ(plain->seeds, lazy->seeds);
    }
  }
}

TEST(LazyGreedyTest, FarFewerEvaluationsThanPlain) {
  Rng rng(13);
  InfluenceModel model = RandomInstance(300, &rng);
  auto plain = SelectSeedsGreedy(model, 20);
  auto lazy = SelectSeedsLazyGreedy(model, 20);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_LT(lazy->gain_evaluations, plain->gain_evaluations / 2);
}

TEST(StochasticGreedyTest, NearGreedyQuality) {
  Rng rng(17);
  InfluenceModel model = RandomInstance(200, &rng);
  auto plain = SelectSeedsGreedy(model, 15);
  ASSERT_TRUE(plain.ok());
  StochasticGreedyOptions opts;
  opts.epsilon = 0.05;
  auto sto = SelectSeedsStochasticGreedy(model, 15, opts);
  ASSERT_TRUE(sto.ok());
  EXPECT_EQ(sto->seeds.size(), 15u);
  EXPECT_GT(sto->objective, 0.8 * plain->objective);
  EXPECT_FALSE(SelectSeedsStochasticGreedy(model, 15, {1.5, 1}).ok());
}

TEST(StochasticGreedyTest, SeedsAreDistinct) {
  Rng rng(19);
  InfluenceModel model = RandomInstance(50, &rng);
  auto sto = SelectSeedsStochasticGreedy(model, 20);
  ASSERT_TRUE(sto.ok());
  std::set<RoadId> uniq(sto->seeds.begin(), sto->seeds.end());
  EXPECT_EQ(uniq.size(), 20u);
}

TEST(ExactTest, OptimalOnMaxCover) {
  // Greedy is suboptimal here: elements {0..3}; A={0,1}, B={1,2,3}, C={0},
  // D={2,3}. Optimum of size 2 is {A, D} (4) or {B, C} (4); greedy picks B
  // first (3) then A (+1) = 4 too — craft a harder one:
  // A={0,1,2} (3), B={0,1}, C={2,3}, D={4,5}, E={3,4,5}.
  // Greedy: A(3) then E(+3)=6 -> optimal anyway. Verify exact >= greedy on
  // random instances instead, plus equality of value on this instance.
  InfluenceModel model =
      MaxCoverInstance(6, {{0, 1, 2}, {0, 1}, {2, 3}, {4, 5}, {3, 4, 5}});
  auto exact = SelectSeedsExact(model, 2);
  auto greedy = SelectSeedsGreedy(model, 2);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(exact->objective, greedy->objective - 1e-12);
  EXPECT_DOUBLE_EQ(exact->objective, 6.0);
}

TEST(ExactTest, GreedyWithinOneMinusOneOverE) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    InfluenceModel model = RandomInstance(14, &rng);
    for (size_t k : {2u, 4u}) {
      auto exact = SelectSeedsExact(model, k);
      auto greedy = SelectSeedsGreedy(model, k);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(greedy.ok());
      EXPECT_GE(exact->objective, greedy->objective - 1e-9);
      EXPECT_GE(greedy->objective, (1.0 - 1.0 / M_E) * exact->objective - 1e-9)
          << "approximation guarantee violated, trial " << trial;
    }
  }
}

TEST(ExactTest, RejectsLargeInstances) {
  Rng rng(29);
  InfluenceModel model = RandomInstance(kMaxExactCandidates + 1, &rng);
  EXPECT_FALSE(SelectSeedsExact(model, 2).ok());
}

TEST(HeuristicsTest, AllReturnDistinctSeedsOfSizeK) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions copts;
  copts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, copts);
  ASSERT_TRUE(graph.ok());
  auto influence = InfluenceModel::Build(*graph, db, {});
  ASSERT_TRUE(influence.ok());
  const size_t k = 6;
  std::vector<Result<SeedSelectionResult>> results;
  results.push_back(SelectSeedsRandom(*influence, k, 1));
  results.push_back(SelectSeedsTopDegree(*influence, *graph, k));
  results.push_back(SelectSeedsTopVariance(*influence, k));
  results.push_back(SelectSeedsPageRank(*influence, *graph, k));
  results.push_back(SelectSeedsKCenter(*influence, *graph, k, 1));
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->seeds.size(), k);
    std::set<RoadId> uniq(r->seeds.begin(), r->seeds.end());
    EXPECT_EQ(uniq.size(), k);
    EXPECT_GE(r->objective, 0.0);
  }
}

TEST(HeuristicsTest, GreedyBeatsRandomOnInfluence) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions copts;
  copts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, copts);
  ASSERT_TRUE(graph.ok());
  auto influence = InfluenceModel::Build(*graph, db, {});
  ASSERT_TRUE(influence.ok());
  auto greedy = SelectSeedsGreedy(*influence, 5);
  ASSERT_TRUE(greedy.ok());
  double random_avg = 0.0;
  for (uint64_t s = 0; s < 10; ++s) {
    auto r = SelectSeedsRandom(*influence, 5, s);
    ASSERT_TRUE(r.ok());
    random_avg += r->objective;
  }
  random_avg /= 10.0;
  EXPECT_GT(greedy->objective, random_avg);
}

TEST(InfluenceModelTest, BuildsSelfCoverAndDecays) {
  RoadNetwork net = SmallGrid();
  HistoricalDb db = AlternatingHistory(net);
  CorrelationGraphOptions copts;
  copts.min_co_observed = 10;
  auto graph = CorrelationGraph::Build(net, db, copts);
  ASSERT_TRUE(graph.ok());
  InfluenceOptions iopts;
  iopts.max_hops = 2;
  auto influence = InfluenceModel::Build(*graph, db, iopts);
  ASSERT_TRUE(influence.ok());
  for (RoadId j = 0; j < influence->num_roads(); ++j) {
    bool self = false;
    for (const CoverEntry& c : influence->CoverList(j)) {
      EXPECT_GE(c.influence, iopts.min_influence);
      EXPECT_LE(c.influence, 1.0f);
      if (c.road == j) {
        self = true;
        EXPECT_FLOAT_EQ(c.influence, 1.0f);
      }
    }
    EXPECT_TRUE(self) << "road " << j << " does not cover itself";
  }
  EXPECT_GT(influence->AverageCoverSize(), 1.0);
  // Larger horizon -> no smaller covers.
  InfluenceOptions wide = iopts;
  wide.max_hops = 4;
  auto influence2 = InfluenceModel::Build(*graph, db, wide);
  ASSERT_TRUE(influence2.ok());
  EXPECT_GE(influence2->AverageCoverSize(), influence->AverageCoverSize());
}

}  // namespace
}  // namespace trendspeed
