// Parameterized property-style suites sweeping configurations and random
// instances for the library's key invariants.

#include <cmath>

#include <gtest/gtest.h>

#include "seed/greedy.h"
#include "seed/lazy_greedy.h"
#include "seed/objective.h"
#include "test_util.h"
#include "trend/belief_propagation.h"
#include "trend/exact.h"
#include "trend/factor_graph.h"
#include "trend/gibbs.h"
#include "util/random.h"
#include "util/stats.h"

namespace trendspeed {
namespace {

// ---------------------------------------------------------------------------
// BP is exact on random trees of any shape and coupling strength.
// ---------------------------------------------------------------------------

struct TreeCase {
  size_t num_vars;
  double coupling;  // psi(same); psi(diff) = 1/coupling
  uint64_t seed;
};

class BpTreeExactness : public ::testing::TestWithParam<TreeCase> {};

TEST_P(BpTreeExactness, MatchesEnumeration) {
  TreeCase param = GetParam();
  Rng rng(param.seed);
  PairwiseMrf mrf(param.num_vars);
  for (size_t v = 0; v < param.num_vars; ++v) {
    mrf.SetPriorUp(v, rng.Uniform(0.1, 0.9));
  }
  // Random tree: each node v > 0 attaches to a random earlier node.
  for (size_t v = 1; v < param.num_vars; ++v) {
    size_t parent = rng.NextIndex(v);
    double s = param.coupling * rng.Uniform(0.8, 1.2);
    double compat[2][2] = {{s, 1.0 / s}, {1.0 / s, s}};
    mrf.AddEdge(parent, v, compat);
  }
  // Clamp one random variable.
  mrf.Clamp(rng.NextIndex(param.num_vars), rng.NextBool(0.5) ? 1 : 0);
  auto exact = InferMarginalsExact(mrf);
  ASSERT_TRUE(exact.ok());
  BpOptions opts;
  opts.max_iters = 200;
  opts.damping = 0.0;  // trees need no damping
  BpResult bp = InferMarginalsBp(mrf, opts);
  EXPECT_TRUE(bp.converged);
  for (size_t v = 0; v < param.num_vars; ++v) {
    EXPECT_NEAR(bp.p_up[v], (*exact)[v], 1e-5) << "var " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BpTreeExactness,
    ::testing::Values(TreeCase{4, 1.5, 1}, TreeCase{8, 2.0, 2},
                      TreeCase{12, 3.0, 3}, TreeCase{16, 1.2, 4},
                      TreeCase{16, 5.0, 5}, TreeCase{20, 2.5, 6},
                      TreeCase{10, 8.0, 7}, TreeCase{6, 1.05, 8}));

// ---------------------------------------------------------------------------
// Gibbs converges to exact marginals as sample count grows.
// ---------------------------------------------------------------------------

class GibbsConvergence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GibbsConvergence, ErrorShrinksWithMoreSamples) {
  Rng rng(GetParam());
  PairwiseMrf mrf(8);
  for (size_t v = 0; v < 8; ++v) mrf.SetPriorUp(v, rng.Uniform(0.25, 0.75));
  for (size_t u = 0; u < 8; ++u) {
    for (size_t v = u + 1; v < 8; ++v) {
      if (!rng.NextBool(0.3)) continue;
      double s = rng.Uniform(1.2, 2.5);
      double compat[2][2] = {{s, 1.0 / s}, {1.0 / s, s}};
      mrf.AddEdge(u, v, compat);
    }
  }
  auto exact = InferMarginalsExact(mrf);
  ASSERT_TRUE(exact.ok());
  auto max_err = [&](uint32_t sweeps) {
    GibbsOptions opts;
    opts.burn_in_sweeps = 200;
    opts.sample_sweeps = sweeps;
    opts.seed = GetParam() * 31 + 7;
    GibbsResult g = InferMarginalsGibbs(mrf, opts);
    double err = 0.0;
    for (size_t v = 0; v < 8; ++v) {
      err = std::max(err, std::fabs(g.p_up[v] - (*exact)[v]));
    }
    return err;
  };
  EXPECT_LT(max_err(8000), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GibbsConvergence,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Greedy == lazy greedy across instance sizes and K.
// ---------------------------------------------------------------------------

struct GreedyCase {
  size_t n;
  size_t k;
  uint64_t seed;
};

class GreedyEquivalence : public ::testing::TestWithParam<GreedyCase> {};

InfluenceModel RandomInstance(size_t n, Rng* rng) {
  std::vector<std::vector<CoverEntry>> covers(n);
  std::vector<double> sigma(n);
  for (size_t i = 0; i < n; ++i) {
    sigma[i] = rng->Uniform(0.05, 3.0);
    covers[i].push_back(CoverEntry{static_cast<RoadId>(i), 1.0f});
    size_t extra = rng->NextIndex(8);
    for (size_t e = 0; e < extra; ++e) {
      covers[i].push_back(
          CoverEntry{static_cast<RoadId>(rng->NextIndex(n)),
                     static_cast<float>(rng->Uniform(0.02, 0.98))});
    }
  }
  return InfluenceModel::FromCoverLists(n, std::move(covers), std::move(sigma));
}

TEST_P(GreedyEquivalence, SameSeedsAndObjective) {
  GreedyCase param = GetParam();
  Rng rng(param.seed);
  InfluenceModel model = RandomInstance(param.n, &rng);
  auto plain = SelectSeedsGreedy(model, param.k);
  auto lazy = SelectSeedsLazyGreedy(model, param.k);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(plain->seeds, lazy->seeds);
  EXPECT_NEAR(plain->objective, lazy->objective, 1e-9);
  // Objective is reported consistently with a scratch evaluation.
  EXPECT_NEAR(plain->objective, ObjectiveValue(model, plain->seeds), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyEquivalence,
    ::testing::Values(GreedyCase{10, 2, 1}, GreedyCase{50, 5, 2},
                      GreedyCase{50, 25, 3}, GreedyCase{120, 10, 4},
                      GreedyCase{120, 40, 5}, GreedyCase{250, 12, 6},
                      GreedyCase{33, 33, 7}));

// ---------------------------------------------------------------------------
// Greedy objective is monotone in K (diminishing but non-negative returns).
// ---------------------------------------------------------------------------

class GreedyMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyMonotonicity, ValueRisesGainsFall) {
  Rng rng(GetParam());
  InfluenceModel model = RandomInstance(80, &rng);
  ObjectiveState state(&model);
  double prev_value = 0.0;
  double prev_gain = 1e18;
  for (size_t round = 0; round < 20; ++round) {
    double best_gain = -1.0;
    RoadId best = kInvalidRoad;
    for (RoadId j = 0; j < 80; ++j) {
      double gain = state.GainOf(j);
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    state.Add(best);
    EXPECT_GE(state.value(), prev_value - 1e-12);
    EXPECT_LE(best_gain, prev_gain + 1e-9)
        << "greedy gains must be non-increasing";
    prev_value = state.value();
    prev_gain = best_gain;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyMonotonicity,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Metrics invariants under random prediction/truth pairs.
// ---------------------------------------------------------------------------

class MetricsInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsInvariants, Hold) {
  Rng rng(GetParam());
  size_t n = 50 + rng.NextIndex(200);
  std::vector<double> truth(n), pred(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = rng.Uniform(5.0, 100.0);
    pred[i] = std::max(0.5, truth[i] + rng.Gaussian(0.0, 8.0));
  }
  SpeedMetrics m = ComputeSpeedMetrics(pred, truth, 0.2);
  EXPECT_EQ(m.count, n);
  EXPECT_GE(m.rmse, m.mae);          // Jensen
  EXPECT_GE(m.mae, 0.0);
  EXPECT_GE(m.error_rate, 0.0);
  EXPECT_LE(m.error_rate, 1.0);
  // Scaling both truth and prediction leaves MAPE and error rate unchanged.
  std::vector<double> truth2(n), pred2(n);
  for (size_t i = 0; i < n; ++i) {
    truth2[i] = truth[i] * 3.0;
    pred2[i] = pred[i] * 3.0;
  }
  SpeedMetrics m2 = ComputeSpeedMetrics(pred2, truth2, 0.2);
  EXPECT_NEAR(m2.mape, m.mape, 1e-12);
  EXPECT_NEAR(m2.error_rate, m.error_rate, 1e-12);
  EXPECT_NEAR(m2.mae, 3.0 * m.mae, 1e-9);
  // Identical prediction is a fixed point.
  SpeedMetrics zero = ComputeSpeedMetrics(truth, truth, 0.2);
  EXPECT_DOUBLE_EQ(zero.mae, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MetricsInvariants,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

// ---------------------------------------------------------------------------
// Historical DB: averaging and bucket means are order-independent.
// ---------------------------------------------------------------------------

class HistoryOrderIndependence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistoryOrderIndependence, ShuffledInsertsGiveSameDb) {
  Rng rng(GetParam());
  struct Rec {
    RoadId road;
    uint64_t slot;
    double speed;
  };
  std::vector<Rec> recs;
  for (int i = 0; i < 500; ++i) {
    recs.push_back(Rec{static_cast<RoadId>(rng.NextIndex(5)),
                       rng.NextIndex(288), rng.Uniform(10.0, 80.0)});
  }
  HistoricalDb::Builder b1(5, 288, 144);
  for (const Rec& r : recs) b1.Add(r.road, r.slot, r.speed);
  HistoricalDb db1 = b1.Finish();
  rng.Shuffle(&recs);
  HistoricalDb::Builder b2(5, 288, 144);
  for (const Rec& r : recs) b2.Add(r.road, r.slot, r.speed);
  HistoricalDb db2 = b2.Finish();
  for (RoadId road = 0; road < 5; ++road) {
    EXPECT_EQ(db1.CoverageCount(road), db2.CoverageCount(road));
    for (uint64_t slot = 0; slot < 288; ++slot) {
      ASSERT_EQ(db1.HasObservation(road, slot),
                db2.HasObservation(road, slot));
      if (db1.HasObservation(road, slot)) {
        EXPECT_NEAR(db1.Observation(road, slot), db2.Observation(road, slot),
                    1e-3);
      }
      EXPECT_NEAR(db1.HistoricalMeanOr(road, slot, 1.0),
                  db2.HistoricalMeanOr(road, slot, 1.0), 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistoryOrderIndependence,
                         ::testing::Values(3, 13, 23));

}  // namespace
}  // namespace trendspeed
