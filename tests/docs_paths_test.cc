// Machine-checks that the documentation references real files: every
// path-like token in docs/*.md (and README.md / EXPERIMENTS.md /
// ROADMAP.md) must resolve inside the repository. Docs rotted silently as
// the tree grew — architecture.md's layering diagram predated whole
// subsystems — so the CI docs-consistency leg runs this alongside
// metrics_docs_test.
//
// Contract for doc authors:
//   * backticked tokens containing '/' and a known source extension are
//     checked: `core/serving.h` resolves via src/, `tests/foo_test.cc`,
//     `docs/sharding.md`, `.github/workflows/ci.yml` via the repo root;
//   * markdown link targets that are relative paths are checked relative
//     to the linking document's directory;
//   * tokens with glob/placeholder characters (*, <, {) and runtime
//     artifacts under build/ are exempt.
//
// The repo root comes from the TRENDSPEED_SOURCE_DIR compile definition,
// same as metrics_docs_test.cc.

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace trendspeed {
namespace {

namespace fs = std::filesystem;

const fs::path& Root() {
  static const fs::path root(TRENDSPEED_SOURCE_DIR);
  return root;
}

std::vector<fs::path> DocFiles() {
  std::vector<fs::path> docs;
  for (const auto& entry : fs::directory_iterator(Root() / "docs")) {
    if (entry.path().extension() == ".md") docs.push_back(entry.path());
  }
  for (const char* top : {"README.md", "EXPERIMENTS.md", "ROADMAP.md"}) {
    if (fs::exists(Root() / top)) docs.push_back(Root() / top);
  }
  return docs;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool HasKnownExtension(const std::string& token) {
  static const std::set<std::string> kExts = {
      ".h", ".cc", ".md", ".txt", ".cmake", ".yml", ".yaml", ".json", ".sh"};
  fs::path p(token);
  return kExts.count(p.extension().string()) > 0;
}

bool Exempt(const std::string& token) {
  return token.find('*') != std::string::npos ||
         token.find('<') != std::string::npos ||
         token.find('{') != std::string::npos ||
         token.find("://") != std::string::npos ||
         token.rfind("build/", 0) == 0 || token.rfind("./build", 0) == 0;
}

/// A repo path token resolves against the repo root or, for include-style
/// references like `core/serving.h`, against src/.
bool Resolves(const std::string& token) {
  return fs::exists(Root() / token) || fs::exists(Root() / "src" / token);
}

TEST(DocsPathsTest, EveryBacktickedPathResolves) {
  const std::regex span("`([^`\n]+)`");
  for (const fs::path& doc : DocFiles()) {
    const std::string text = ReadFile(doc);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), span);
         it != std::sregex_iterator(); ++it) {
      const std::string token = (*it)[1].str();
      // Only single path-like tokens: no spaces (those are commands), a
      // directory separator, a known extension, no globs/placeholders.
      if (token.find(' ') != std::string::npos) continue;
      if (token.find('/') == std::string::npos) continue;
      if (Exempt(token) || !HasKnownExtension(token)) continue;
      EXPECT_TRUE(Resolves(token))
          << doc.filename().string() << " references `" << token
          << "` which does not exist (tried <root>/" << token
          << " and <root>/src/" << token << ")";
    }
  }
}

TEST(DocsPathsTest, EveryRelativeMarkdownLinkResolves) {
  const std::regex link(R"(\]\(([^)#\s]+)(#[^)\s]*)?\))");
  for (const fs::path& doc : DocFiles()) {
    const std::string text = ReadFile(doc);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), link);
         it != std::sregex_iterator(); ++it) {
      const std::string target = (*it)[1].str();
      if (Exempt(target)) continue;  // external URLs etc.
      EXPECT_TRUE(fs::exists(doc.parent_path() / target) ||
                  Resolves(target))
          << doc.filename().string() << " links to " << target
          << " which does not exist";
    }
  }
}

TEST(DocsPathsTest, CoreDocsExist) {
  // The documentation set the README table of contents promises.
  for (const char* name :
       {"architecture.md", "algorithms.md", "observability.md",
        "performance.md", "serving.md", "sharding.md"}) {
    EXPECT_TRUE(fs::exists(Root() / "docs" / name)) << name;
  }
}

}  // namespace
}  // namespace trendspeed
