#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "test_util.h"

namespace trendspeed {
namespace {

using testing_util::SharedTinyDataset;

class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset& ds = SharedTinyDataset();
    PipelineConfig config;
    config.corr.min_co_observed = 8;
    auto est = TrafficSpeedEstimator::Train(&ds.net, &ds.history, config);
    TS_CHECK(est.ok()) << est.status().ToString();
    estimator_ = new TrafficSpeedEstimator(std::move(est).value());
  }

  const Dataset& ds() { return SharedTinyDataset(); }
  const TrafficSpeedEstimator& est() { return *estimator_; }

  static TrafficSpeedEstimator* estimator_;
};

TrafficSpeedEstimator* CoreTest::estimator_ = nullptr;

TEST_F(CoreTest, TrainBuildsAllComponents) {
  EXPECT_EQ(est().correlation_graph().num_roads(), ds().net.num_roads());
  EXPECT_GT(est().correlation_graph().num_edges(), 0u);
  EXPECT_EQ(est().influence().num_roads(), ds().net.num_roads());
}

TEST_F(CoreTest, TrainRejectsInvalidConfig) {
  PipelineConfig bad;
  bad.corr.min_same_prob = 0.2;
  EXPECT_FALSE(
      TrafficSpeedEstimator::Train(&ds().net, &ds().history, bad).ok());
  EXPECT_FALSE(TrafficSpeedEstimator::Train(nullptr, &ds().history, {}).ok());
}

TEST_F(CoreTest, SeedStrategiesAllWork) {
  for (SeedStrategy strategy :
       {SeedStrategy::kGreedy, SeedStrategy::kLazyGreedy,
        SeedStrategy::kStochasticGreedy, SeedStrategy::kRandom,
        SeedStrategy::kTopDegree, SeedStrategy::kTopVariance,
        SeedStrategy::kPageRank, SeedStrategy::kKCenter}) {
    auto result = est().SelectSeeds(5, strategy);
    ASSERT_TRUE(result.ok()) << SeedStrategyName(strategy);
    EXPECT_EQ(result->seeds.size(), 5u) << SeedStrategyName(strategy);
    std::set<RoadId> uniq(result->seeds.begin(), result->seeds.end());
    EXPECT_EQ(uniq.size(), 5u);
  }
}

TEST_F(CoreTest, GreedyEqualsLazyGreedy) {
  auto g = est().SelectSeeds(8, SeedStrategy::kGreedy);
  auto l = est().SelectSeeds(8, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(g->seeds, l->seeds);
  EXPECT_LE(l->gain_evaluations, g->gain_evaluations);
}

TEST_F(CoreTest, EstimateProducesFullCoverage) {
  auto seeds_result = est().SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds_result.ok());
  Evaluator eval(&ds());
  Rng rng(5);
  uint64_t slot = ds().first_test_slot() + 10;
  auto obs = eval.ObserveSeeds(slot, seeds_result->seeds, 0.0, &rng);
  auto out = est().Estimate(slot, obs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->speeds.speed_kmh.size(), ds().net.num_roads());
  EXPECT_EQ(out->trends.trend.size(), ds().net.num_roads());
  for (RoadId r = 0; r < ds().net.num_roads(); ++r) {
    EXPECT_GT(out->speeds.speed_kmh[r], 0.0);
    EXPECT_TRUE(out->trends.trend[r] == 1 || out->trends.trend[r] == -1);
    EXPECT_GE(out->trends.p_up[r], 0.0);
    EXPECT_LE(out->trends.p_up[r], 1.0);
  }
  // Seeds echo their observations.
  for (const SeedSpeed& s : obs) {
    EXPECT_DOUBLE_EQ(out->speeds.speed_kmh[s.road], s.speed_kmh);
  }
}

TEST_F(CoreTest, EstimateRejectsBadSeeds) {
  EXPECT_FALSE(est().Estimate(0, {{99999, 30.0}}).ok());
}

// Regression: Estimate used to accept NaN/inf/non-positive seed speeds and
// silently poison every interpolated road (log of a non-positive speed, NaN
// spreading through the propagation weights). They must be rejected at the
// API boundary instead.
TEST_F(CoreTest, EstimateRejectsNonFiniteAndNonPositiveSeedSpeeds) {
  const RoadId road = 0;
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(), 0.0, -12.5}) {
    auto out = est().Estimate(0, {{road, bad}});
    EXPECT_FALSE(out.ok()) << "speed " << bad << " was accepted";
  }
  // A plausible speed on the same road still works.
  EXPECT_TRUE(est().Estimate(0, {{road, 30.0}}).ok());
}

TEST_F(CoreTest, EvaluatorTestSlotsHonourStride) {
  Evaluator eval(&ds());
  auto all = eval.TestSlots(1);
  auto strided = eval.TestSlots(4);
  EXPECT_EQ(all.size(), ds().test_days * 144u);
  EXPECT_EQ(strided.size(), (all.size() + 3) / 4);
  EXPECT_EQ(all.front(), ds().first_test_slot());
}

TEST_F(CoreTest, ObserveSeedsAddsBoundedNoise) {
  Evaluator eval(&ds());
  Rng rng(7);
  std::vector<RoadId> seeds = {0, 1, 2};
  uint64_t slot = ds().first_test_slot();
  auto clean = eval.ObserveSeeds(slot, seeds, 0.0, &rng);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean[i].speed_kmh, ds().truth.at(slot, seeds[i]));
  }
  auto noisy = eval.ObserveSeeds(slot, seeds, 2.0, &rng);
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_GT(noisy[i].speed_kmh, 0.0);
    EXPECT_NEAR(noisy[i].speed_kmh, clean[i].speed_kmh, 10.0);
  }
}

TEST_F(CoreTest, RunProducesMetricsAndTiming) {
  auto seeds = est().SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  auto suite = BuildMethodSuite(ds(), est(), /*include_mc=*/false);
  ASSERT_TRUE(suite.ok());
  Evaluator eval(&ds());
  EvalOptions opts;
  opts.slot_stride = 12;
  for (const MethodAdapter& method : suite->methods) {
    auto result = eval.Run(method, seeds->seeds, opts);
    ASSERT_TRUE(result.ok()) << method.name;
    EXPECT_GT(result->slots, 0u);
    EXPECT_GT(result->metrics.count, 0u);
    EXPECT_GT(result->metrics.mae, 0.0) << method.name;
    EXPECT_LT(result->metrics.mape, 1.0) << method.name;
    EXPECT_GE(result->ms_per_slot, 0.0);
  }
}

TEST_F(CoreTest, PipelineBeatsHistoricalMean) {
  auto seeds = est().SelectSeeds(10, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  auto suite = BuildMethodSuite(ds(), est(), false);
  ASSERT_TRUE(suite.ok());
  Evaluator eval(&ds());
  EvalOptions opts;
  opts.slot_stride = 6;
  double ours = 0.0, hist = 0.0;
  for (const MethodAdapter& method : suite->methods) {
    auto result = eval.Run(method, seeds->seeds, opts);
    ASSERT_TRUE(result.ok());
    if (method.name == "TrendSpeed") ours = result->metrics.mae;
    if (method.name == "HistoricalMean") hist = result->metrics.mae;
  }
  ASSERT_GT(ours, 0.0);
  ASSERT_GT(hist, 0.0);
  EXPECT_LT(ours, hist);
}

TEST_F(CoreTest, TrendAccuracyAboveMajorityBaseline) {
  auto seeds = est().SelectSeeds(10, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  Evaluator eval(&ds());
  EvalOptions opts;
  opts.slot_stride = 6;
  auto acc = eval.RunTrendAccuracy(est(), seeds->seeds, opts);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.55);
  EXPECT_LE(*acc, 1.0);
}

TEST_F(CoreTest, MoreSeedsNeverHurtMuch) {
  Evaluator eval(&ds());
  EvalOptions opts;
  opts.slot_stride = 12;
  auto run_k = [&](size_t k) {
    auto seeds = est().SelectSeeds(k, SeedStrategy::kLazyGreedy);
    TS_CHECK(seeds.ok());
    auto suite = BuildMethodSuite(ds(), est(), false);
    TS_CHECK(suite.ok());
    auto result = eval.Run(suite->methods[0], seeds->seeds, opts);
    TS_CHECK(result.ok());
    return result->metrics.mae;
  };
  double mae_small = run_k(2);
  double mae_large = run_k(16);
  EXPECT_LT(mae_large, mae_small * 1.1);
}

TEST_F(CoreTest, RunRepeatedReportsSpread) {
  auto seeds = est().SelectSeeds(6, SeedStrategy::kLazyGreedy);
  ASSERT_TRUE(seeds.ok());
  auto suite = BuildMethodSuite(ds(), est(), false);
  ASSERT_TRUE(suite.ok());
  Evaluator eval(&ds());
  EvalOptions opts;
  opts.slot_stride = 24;
  auto rep = eval.RunRepeated(suite->methods[0], seeds->seeds, opts, 4);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->repetitions, 4u);
  EXPECT_GT(rep->mae_mean, 0.0);
  // Different noise draws -> nonzero but small spread relative to the mean.
  EXPECT_GT(rep->mae_stddev, 0.0);
  EXPECT_LT(rep->mae_stddev, rep->mae_mean * 0.5);
  EXPECT_FALSE(
      eval.RunRepeated(suite->methods[0], seeds->seeds, opts, 0).ok());
}

TEST(SeedStrategyNameTest, AllNamed) {
  EXPECT_STREQ(SeedStrategyName(SeedStrategy::kGreedy), "greedy");
  EXPECT_STREQ(SeedStrategyName(SeedStrategy::kKCenter), "k-center");
}

}  // namespace
}  // namespace trendspeed
