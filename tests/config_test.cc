#include <limits>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/serving.h"

namespace trendspeed {
namespace {

TEST(ConfigTest, DefaultsValidate) {
  PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadCorrThreshold) {
  PipelineConfig config;
  config.corr.min_same_prob = 0.4;
  EXPECT_FALSE(config.Validate().ok());
  config.corr.min_same_prob = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsZeroHops) {
  PipelineConfig config;
  config.corr.max_hops = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.influence.max_hops = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadInfluenceThreshold) {
  PipelineConfig config;
  config.influence.min_influence = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.influence.min_influence = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadPropagation) {
  PipelineConfig config;
  config.propagation.max_layers = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeRidge) {
  PipelineConfig config;
  config.speed.ridge_lambda = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadDamping) {
  PipelineConfig config;
  config.trend.bp.damping = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.damping = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadBpKnobs) {
  PipelineConfig config;
  config.trend.bp.max_iters = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.trend.bp.tol = -1e-4;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.trend.bp.num_threads = 100000;  // units mistake, not a machine
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.num_threads = 8;
  EXPECT_TRUE(config.Validate().ok());
}

// Regression: the 3-hop backfill cap and 0.6 damping used to be magic
// numbers inside the estimator; now they are validated config fields.
TEST(ConfigTest, RejectsBadEvidenceBackfillKnobs) {
  PipelineConfig config;
  config.evidence_backfill_hops = 1000;  // beyond any plausible diameter
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.evidence_backfill_hops = 0;  // disables backfill: valid
  EXPECT_TRUE(config.Validate().ok());
  config = PipelineConfig{};
  config.evidence_backfill_damping = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.evidence_backfill_damping = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.evidence_backfill_damping = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.evidence_backfill_damping = 1.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadWarmThreshold) {
  PipelineConfig config;
  config.trend.bp.warm_threshold = -1e-6;
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.warm_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.warm_threshold = 0.0;  // always re-activate: valid
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsOutOfRangeBpKernel) {
  PipelineConfig config;
  // Simulates a config assembled from a raw int (deserialization, FFI)
  // carrying a value outside the declared enumerators.
  config.trend.bp.kernel = static_cast<BpKernel>(42);
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.kernel = BpKernel::kAuto;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadSeedSelectionKnobs) {
  PipelineConfig config;
  config.seed_selection.num_threads = 100000;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.seed_selection.batch = size_t{1} << 30;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.seed_selection.min_parallel_candidates = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.seed_selection.num_threads = 4;
  config.seed_selection.batch = 64;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ServingOptionsTest, DefaultsValidate) {
  ServingOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(ServingOptionsTest, RejectsBadMonitorOptions) {
  ServingOptions opts;
  opts.monitor.ewma_alpha = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.monitor.ewma_alpha = 1.5;
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.monitor.alert_deviation = -0.1;  // above clear_deviation
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.monitor.congested_deviation = 0.1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.monitor.alert_after_slots = 0;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(ServingOptionsTest, RejectsBadServingKnobs) {
  ServingOptions opts;
  opts.max_speed_kmh = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.max_speed_kmh = -10.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.max_speed_kmh = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.max_speed_kmh = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(opts.Validate().ok());
  opts = ServingOptions{};
  opts.monitor.ewma_alpha = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(opts.Validate().ok());
}

}  // namespace
}  // namespace trendspeed
