#include <gtest/gtest.h>

#include "core/config.h"

namespace trendspeed {
namespace {

TEST(ConfigTest, DefaultsValidate) {
  PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadCorrThreshold) {
  PipelineConfig config;
  config.corr.min_same_prob = 0.4;
  EXPECT_FALSE(config.Validate().ok());
  config.corr.min_same_prob = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsZeroHops) {
  PipelineConfig config;
  config.corr.max_hops = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PipelineConfig{};
  config.influence.max_hops = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadInfluenceThreshold) {
  PipelineConfig config;
  config.influence.min_influence = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.influence.min_influence = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadPropagation) {
  PipelineConfig config;
  config.propagation.max_layers = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeRidge) {
  PipelineConfig config;
  config.speed.ridge_lambda = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadDamping) {
  PipelineConfig config;
  config.trend.bp.damping = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.trend.bp.damping = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace trendspeed
