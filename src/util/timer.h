// Wall-clock timing helper for the efficiency experiments and the
// observability layer's latency histograms.
//
// All readings go through obs::MonotonicNanos (steady_clock-backed), the
// same clock ScopedSpan uses, so an NTP step on the host can never produce
// a negative or wildly wrong duration anywhere timing is measured. Elapsed
// values are additionally clamped at zero — the injected test clock
// (obs::SetMonotonicClockForTest) is the only source that can run
// backwards, and tests/obs_test.cc pins that contract.

#ifndef TRENDSPEED_UTIL_TIMER_H_
#define TRENDSPEED_UTIL_TIMER_H_

#include "obs/clock.h"

namespace trendspeed {

/// Monotonic stopwatch; starts at construction.
class WallTimer {
 public:
  WallTimer() : start_ns_(obs::MonotonicNanos()) {}

  void Restart() { start_ns_ = obs::MonotonicNanos(); }

  double ElapsedSeconds() const {
    return obs::NanosToSeconds(obs::ElapsedNanosSince(start_ns_));
  }
  double ElapsedMillis() const {
    return obs::NanosToMillis(obs::ElapsedNanosSince(start_ns_));
  }
  double ElapsedMicros() const {
    return static_cast<double>(obs::ElapsedNanosSince(start_ns_)) * 1e-3;
  }

 private:
  uint64_t start_ns_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_TIMER_H_
