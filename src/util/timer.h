// Wall-clock timing helper for the efficiency experiments.

#ifndef TRENDSPEED_UTIL_TIMER_H_
#define TRENDSPEED_UTIL_TIMER_H_

#include <chrono>

namespace trendspeed {

/// Monotonic stopwatch; starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_TIMER_H_
