#include "util/status.h"

namespace trendspeed {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace trendspeed
