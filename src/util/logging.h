// Minimal leveled logging plus CHECK assertions for programming errors.
//
// TS_CHECK* abort the process with a diagnostic; they guard invariants, not
// expected runtime failures (those go through Status, see status.h).

#ifndef TRENDSPEED_UTIL_LOGGING_H_
#define TRENDSPEED_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace trendspeed {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log-message builder; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace trendspeed

#define TS_LOG(level)                                                  \
  ::trendspeed::internal::LogMessage(::trendspeed::LogLevel::k##level, \
                                     __FILE__, __LINE__)

#define TS_CHECK(cond)                                                       \
  if (!(cond))                                                               \
  ::trendspeed::internal::LogMessage(::trendspeed::LogLevel::kError,         \
                                     __FILE__, __LINE__, /*fatal=*/true)     \
      << "Check failed: " #cond " "

#define TS_CHECK_OP(a, b, op) TS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define TS_CHECK_EQ(a, b) TS_CHECK_OP(a, b, ==)
#define TS_CHECK_NE(a, b) TS_CHECK_OP(a, b, !=)
#define TS_CHECK_LT(a, b) TS_CHECK_OP(a, b, <)
#define TS_CHECK_LE(a, b) TS_CHECK_OP(a, b, <=)
#define TS_CHECK_GT(a, b) TS_CHECK_OP(a, b, >)
#define TS_CHECK_GE(a, b) TS_CHECK_OP(a, b, >=)

/// Aborts if `expr` yields a non-OK Status.
#define TS_CHECK_OK(expr)                               \
  do {                                                  \
    ::trendspeed::Status _st = (expr);                  \
    TS_CHECK(_st.ok()) << _st.ToString();               \
  } while (false)

#endif  // TRENDSPEED_UTIL_LOGGING_H_
