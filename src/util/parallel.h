// Deterministic data-parallel helpers for the offline (training) phase.
//
// ParallelFor splits [0, n) into contiguous chunks across worker threads.
// Work items must be independent; given per-index determinism, results are
// identical for any thread count — training stays reproducible.

#ifndef TRENDSPEED_UTIL_PARALLEL_H_
#define TRENDSPEED_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace trendspeed {

/// Number of workers used when `requested` is 0 (hardware concurrency,
/// at least 1).
size_t EffectiveThreads(size_t requested);

/// Runs fn(begin, end) over disjoint chunks covering [0, n), on
/// EffectiveThreads(num_threads) threads (inline when 1 or n is small).
/// Blocks until all chunks complete. Exceptions escaping `fn` terminate.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t num_threads = 0);

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_PARALLEL_H_
