// Deterministic data-parallel helpers.
//
// ParallelFor splits [0, n) into contiguous chunks across the process-wide
// persistent thread pool (util/thread_pool.h) — thread startup is amortized
// across all parallel regions in the process. Work items must be
// independent; given per-index determinism, results are identical for any
// thread count — training stays reproducible.

#ifndef TRENDSPEED_UTIL_PARALLEL_H_
#define TRENDSPEED_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace trendspeed {

/// Number of workers used when `requested` is 0: the TRENDSPEED_NUM_THREADS
/// environment variable when set to a positive integer (reproducible
/// benchmarking), otherwise hardware concurrency, at least 1. The fallback
/// is resolved once and cached (hardware_concurrency is a syscall on some
/// platforms and this is called on hot paths).
size_t EffectiveThreads(size_t requested);

/// Runs fn(begin, end) over disjoint chunks covering [0, n), with at most
/// EffectiveThreads(num_threads) chunks in flight (inline when 1 or n is
/// small). Chunk boundaries depend only on n and num_threads. Blocks until
/// all chunks complete. The first exception escaping `fn` is rethrown on
/// the calling thread after the region drains.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t num_threads = 0);

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_PARALLEL_H_
