// Tiny CSV reader/writer for dataset import/export and experiment output.
//
// Supports the subset of RFC 4180 this project emits: comma separation,
// double-quote quoting with "" escapes, \n or \r\n row terminators.

#ifndef TRENDSPEED_UTIL_CSV_H_
#define TRENDSPEED_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace trendspeed {

/// One parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for `name`, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;
};

/// Parses CSV text. Fails on ragged rows or unterminated quotes.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table; quotes fields containing separators/quotes/newlines.
std::string WriteCsv(const CsvTable& table);

/// Writes a table to a file (overwrites).
Status WriteCsvFile(const std::string& path, const CsvTable& table);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (overwrites).
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_CSV_H_
