// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// Library code never throws for expected failures; fallible functions return
// Status (no payload) or Result<T> (payload or error). Programming errors are
// caught by TS_CHECK-style assertions in logging.h.

#ifndef TRENDSPEED_UTIL_STATUS_H_
#define TRENDSPEED_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace trendspeed {

/// Machine-readable error category carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// Returns the canonical lower-case name of a status code ("invalid-argument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: an OK singleton or a code + message.
///
/// Cheap to copy in the OK case (no allocation); error construction allocates
/// the message. Follows the RocksDB convention that a Status must be checked
/// by the caller (enforced socially, not at runtime).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class Result {
 public:
  /// Implicit from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (the common error-forwarding path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    // An OK status without a value is a programming error; normalize it to an
    // Internal error rather than invent a default value.
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK() when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace trendspeed

/// Propagates a non-OK Status to the caller.
#define TS_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::trendspeed::Status _st = (expr);        \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`. `lhs` may include a declaration.
#define TS_ASSIGN_OR_RETURN(lhs, rexpr)           \
  TS_ASSIGN_OR_RETURN_IMPL(                       \
      TS_STATUS_MACROS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define TS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).value()

#define TS_STATUS_MACROS_CONCAT(x, y) TS_STATUS_MACROS_CONCAT_IMPL(x, y)
#define TS_STATUS_MACROS_CONCAT_IMPL(x, y) x##y

#endif  // TRENDSPEED_UTIL_STATUS_H_
