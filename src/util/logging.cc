#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace trendspeed {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (fatal_ || level_ >= GetLogLevel()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace trendspeed
