#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "util/parallel.h"

namespace trendspeed {

namespace {

// Identifies the pool (if any) the current thread is a worker of, so
// parallel regions entered from inside a worker run inline instead of
// blocking a cooperating runner, and nested submissions land on the
// worker's own queue.
thread_local ThreadPool* tl_worker_pool = nullptr;
thread_local size_t tl_worker_index = 0;

// Shared bookkeeping of one blocking parallel region. Runners claim chunk
// indices from `cursor`; every claimed chunk is counted in `done` whether it
// ran or was abandoned after a failure, so the caller's wait on
// done == num_chunks guarantees no runner will touch `fn` afterwards (which
// is why storing a pointer to the caller's std::function is safe).
struct RegionState {
  const std::function<void(size_t chunk, size_t begin, size_t end)>* fn;
  size_t n = 0;
  size_t chunk_size = 0;
  size_t num_chunks = 0;
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex mu;
  std::condition_variable cv;
};

void RunRegion(const std::shared_ptr<RegionState>& state) {
  for (;;) {
    size_t c = state->cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    if (!state->failed.load(std::memory_order_acquire)) {
      size_t begin = c * state->chunk_size;
      size_t end = std::min(state->n, begin + state->chunk_size);
      try {
        (*state->fn)(c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) state->first_error = std::current_exception();
        state->failed.store(true, std::memory_order_release);
      }
    }
    size_t finished = state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == state->num_chunks) {
      // Lock pairs with the caller's predicate check so the final notify
      // cannot slip between its predicate test and its wait.
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) {
    size_t hw = EffectiveThreads(0);
    num_workers = hw > 0 ? hw - 1 : 0;
  }
  queues_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

bool ThreadPool::InWorker() const { return tl_worker_pool == this; }

void ThreadPool::AttachMetrics(obs::MetricsRegistry* registry) {
  // Null registry clears every handle via the null-safe Get* helpers.
  if (registry != nullptr) {
    obs::Set(registry->GetGauge(obs::kPoolWorkers),
             static_cast<double>(workers_.size()));
  }
  m_tasks_.store(obs::GetCounter(registry, obs::kPoolTasksTotal),
                 std::memory_order_release);
  m_steals_.store(obs::GetCounter(registry, obs::kPoolStealsTotal),
                  std::memory_order_release);
  m_queue_depth_.store(obs::GetGauge(registry, obs::kPoolQueueDepth),
                       std::memory_order_release);
  m_task_wait_us_.store(obs::GetHistogram(registry, obs::kPoolTaskWaitUs),
                        std::memory_order_release);
  m_task_run_us_.store(obs::GetHistogram(registry, obs::kPoolTaskRunUs),
                       std::memory_order_release);
}

void ThreadPool::Submit(std::function<void()> task) {
  // Instrumented only while a registry is attached: the wrapper allocation
  // and clock reads never touch the detached path.
  obs::Counter* tasks = m_tasks_.load(std::memory_order_relaxed);
  obs::Histogram* wait_us = m_task_wait_us_.load(std::memory_order_relaxed);
  obs::Histogram* run_us = m_task_run_us_.load(std::memory_order_relaxed);
  if (tasks != nullptr || wait_us != nullptr || run_us != nullptr) {
    uint64_t enqueue_ns = obs::MonotonicNanos();
    task = [tasks, wait_us, run_us, enqueue_ns,
            inner = std::move(task)] {
      obs::Add(tasks);
      obs::Observe(wait_us, static_cast<double>(obs::ElapsedNanosSince(
                                enqueue_ns)) * 1e-3);
      uint64_t start_ns = obs::MonotonicNanos();
      inner();
      obs::Observe(run_us, static_cast<double>(obs::ElapsedNanosSince(
                               start_ns)) * 1e-3);
    };
  }
  if (workers_.empty()) {
    task();
    return;
  }
  // Nested submission lands on the submitting worker's own queue (idle
  // siblings steal it if this worker stays busy); external submission
  // round-robins across queues.
  size_t q = tl_worker_pool == this
                 ? tl_worker_index
                 : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    depth = ++pending_;
  }
  obs::Set(m_queue_depth_.load(std::memory_order_relaxed),
           static_cast<double>(depth));
  sleep_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(size_t self) {
  std::function<void()> task;
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());  // LIFO: cache-warm
      own.tasks.pop_back();
    }
  }
  if (!task) {
    size_t count = queues_.size();
    for (size_t i = 1; i < count && !task; ++i) {
      Queue& victim = *queues_[(self + i) % count];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());  // FIFO: steal the oldest
        victim.tasks.pop_front();
      }
    }
    if (task) obs::Add(m_steals_.load(std::memory_order_relaxed));
  }
  if (!task) return false;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    depth = --pending_;
  }
  obs::Set(m_queue_depth_.load(std::memory_order_relaxed),
           static_cast<double>(depth));
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tl_worker_pool = this;
  tl_worker_index = self;
  // Name this worker's flight-recorder ring (and its Chrome-trace thread
  // row) after its pool slot, before any task can record a span from here.
  char label[32];
  std::snprintf(label, sizeof(label), "pool-%zu", self);
  obs::SetFlightThreadLabel(label);
  for (;;) {
    if (TryRunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t max_concurrency) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::function<void(size_t, size_t, size_t)> chunked =
      [&fn](size_t, size_t begin, size_t end) { fn(begin, end); };
  RunChunked(n, grain, (n + grain - 1) / grain, chunked, max_concurrency);
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t num_chunks,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  num_chunks = std::max<size_t>(1, std::min(num_chunks, n));
  size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  // Ceil division can leave trailing empty chunks (e.g. n=10, chunks=7 ->
  // size 2, only 5 non-empty); recompute so every chunk is non-empty.
  num_chunks = (n + chunk_size - 1) / chunk_size;
  RunChunked(n, chunk_size, num_chunks, fn, 0);
}

void ThreadPool::RunChunked(
    size_t n, size_t chunk_size, size_t num_chunks,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& fn,
    size_t max_concurrency) {
  if (num_chunks <= 1 || workers_.empty() || InWorker()) {
    // Inline: single chunk, no workers to hand off to, or we *are* a worker
    // (blocking here would deadlock the outer region's runner set).
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t begin = c * chunk_size;
      fn(c, begin, std::min(n, begin + chunk_size));
    }
    return;
  }
  auto state = std::make_shared<RegionState>();
  state->fn = &fn;
  state->n = n;
  state->chunk_size = chunk_size;
  state->num_chunks = num_chunks;
  size_t helpers = std::min(workers_.size(), num_chunks - 1);
  if (max_concurrency > 0) {
    helpers = std::min(helpers, max_concurrency - 1);
  }
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { RunRegion(state); });
  }
  RunRegion(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->num_chunks;
    });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace trendspeed
