// Bounds-checked little-endian binary serialization primitives for model
// files. Format discipline: every section starts with a 4-byte tag and a
// u32 version; readers fail with Status instead of reading garbage.

#ifndef TRENDSPEED_UTIL_BINARY_IO_H_
#define TRENDSPEED_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace trendspeed {

/// Append-only buffer writer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI8(int8_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  /// 4-character section tag + version.
  void PutTag(const char tag[4], uint32_t version) {
    PutRaw(tag, 4);
    PutU32(version);
  }
  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buf_; }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Cursor-based reader over an in-memory buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  Result<uint8_t> GetU8() { return Get<uint8_t>(); }
  Result<uint32_t> GetU32() { return Get<uint32_t>(); }
  Result<uint64_t> GetU64() { return Get<uint64_t>(); }
  Result<int8_t> GetI8() { return Get<int8_t>(); }
  Result<float> GetF32() { return Get<float>(); }
  Result<double> GetF64() { return Get<double>(); }

  Result<std::string> GetString() {
    TS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (pos_ + len > data_.size()) return Truncated();
    std::string out = data_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  /// Verifies a section tag; returns its version.
  Result<uint32_t> ExpectTag(const char tag[4]) {
    if (pos_ + 4 > data_.size()) return Truncated();
    if (std::memcmp(data_.data() + pos_, tag, 4) != 0) {
      return Status::InvalidArgument(
          std::string("bad section tag, expected ") + std::string(tag, 4));
    }
    pos_ += 4;
    return GetU32();
  }

  template <typename T>
  Result<std::vector<T>> GetVec(uint64_t max_elems = UINT64_MAX) {
    static_assert(std::is_trivially_copyable_v<T>);
    TS_ASSIGN_OR_RETURN(uint64_t n, GetU64());
    if (n > max_elems || pos_ + n * sizeof(T) > data_.size()) {
      return Truncated();
    }
    std::vector<T> out(n);
    std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) return Truncated();
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  static Status Truncated() {
    return Status::InvalidArgument("binary input truncated or corrupt");
  }

  std::string data_;
  size_t pos_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_BINARY_IO_H_
