#include "util/matrix.h"

#include <cmath>

namespace trendspeed {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TS_CHECK_EQ(rows[r].size(), m.cols_) << "ragged row " << r;
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  TS_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    for (size_t a = 0; a < cols_; ++a) {
      double ra = row[a];
      if (ra == 0.0) continue;
      for (size_t b = a; b < cols_; ++b) {
        g(a, b) += ra * row[b];
      }
    }
  }
  for (size_t a = 0; a < cols_; ++a)
    for (size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& y) const {
  TS_CHECK_EQ(y.size(), rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double yi = y[i];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * yi;
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& x) const {
  TS_CHECK_EQ(x.size(), cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[i] = acc;
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  TS_CHECK_EQ(rows_, other.rows_);
  TS_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("CholeskySolve: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: rhs size mismatch");
  }
  // Lower-triangular factor L with A = L L^T, computed into a local copy.
  Matrix l = a;
  for (size_t j = 0; j < n; ++j) {
    double diag = l(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "CholeskySolve: matrix not positive definite");
    }
    double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double v = l(i, j);
      for (size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) v -= l(i, k) * z[k];
    z[i] = v / l(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double v = z[i];
    for (size_t k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

Result<std::vector<double>> GaussianSolve(const Matrix& a,
                                          const std::vector<double>& b) {
  size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("GaussianSolve: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("GaussianSolve: rhs size mismatch");
  }
  Matrix m = a;
  std::vector<double> rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: largest magnitude in column at or below the diagonal.
    size_t pivot = col;
    double best = std::fabs(m(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(m(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("GaussianSolve: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(m(col, c), m(pivot, c));
      std::swap(rhs[col], rhs[pivot]);
    }
    double inv = 1.0 / m(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = m(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) m(r, c) -= factor * m(col, c);
      rhs[r] -= factor * rhs[col];
    }
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double v = rhs[i];
    for (size_t c = i + 1; c < n; ++c) v -= m(i, c) * x[c];
    x[i] = v / m(i, i);
  }
  return x;
}

Result<std::vector<double>> RidgeRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            double lambda) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("RidgeRegression: X/y row mismatch");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("RidgeRegression: empty design matrix");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("RidgeRegression: negative lambda");
  }
  Matrix gram = x.Gram();
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  std::vector<double> xty = x.TransposeTimes(y);
  auto solved = CholeskySolve(gram, xty);
  if (solved.ok()) return solved;
  // Collinear + lambda==0 falls through to the pivoting solver for a best
  // effort answer before reporting failure.
  return GaussianSolve(gram, xty);
}

}  // namespace trendspeed
