// Small dense linear algebra: column-major Matrix, linear solvers, and
// ridge-regularized ordinary least squares.
//
// Sized for the model-fitting workloads in this library (design matrices with
// tens of columns); no BLAS, no SIMD heroics, just cache-friendly loops.

#ifndef TRENDSPEED_UTIL_MATRIX_H_
#define TRENDSPEED_UTIL_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace trendspeed {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer-style data; all rows must have equal size.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    TS_CHECK_LT(r, rows_);
    TS_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    TS_CHECK_LT(r, rows_);
    TS_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;

  /// this^T * this, the Gram matrix (symmetric positive semidefinite).
  Matrix Gram() const;

  /// this^T * y for a vector y with rows() entries.
  std::vector<double> TransposeTimes(const std::vector<double>& y) const;

  /// this * x for a vector x with cols() entries.
  std::vector<double> Times(const std::vector<double>& x) const;

  /// Max absolute entry difference; both must have identical shapes.
  double MaxAbsDiff(const Matrix& other) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive definite A via Cholesky (in-place
/// copy). Fails with InvalidArgument on shape mismatch and FailedPrecondition
/// when A is not positive definite.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Solves A x = b for a general square A via Gaussian elimination with partial
/// pivoting. Fails with FailedPrecondition when A is (numerically) singular.
Result<std::vector<double>> GaussianSolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Fits ridge regression: argmin_w ||X w - y||^2 + lambda ||w||^2.
///
/// X is n x p (n observations), y has n entries, lambda >= 0. With lambda > 0
/// the normal equations are always positive definite, so this cannot fail for
/// well-shaped input. lambda == 0 degrades to OLS and may fail on collinear
/// designs.
Result<std::vector<double>> RidgeRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            double lambda);

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_MATRIX_H_
