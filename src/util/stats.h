// Streaming statistics and the evaluation metrics used across the paper's
// experiments (MAE, RMSE, MAPE, error rate, trend accuracy).

#ifndef TRENDSPEED_UTIL_STATS_H_
#define TRENDSPEED_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace trendspeed {

/// Welford single-pass accumulator for mean/variance/min/max.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 when count < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const OnlineStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation of two equal-length series; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Quantile of a copy of `v` (linear interpolation), q in [0,1].
double Quantile(std::vector<double> v, double q);

/// Error metrics between predicted and true speeds.
struct SpeedMetrics {
  double mae = 0.0;    ///< mean absolute error (speed units)
  double rmse = 0.0;   ///< root mean squared error
  double mape = 0.0;   ///< mean absolute percentage error, in [0, ...)
  /// Fraction of predictions whose relative error exceeds `error_rate_tau`
  /// (paper-style "error rate"; tau defaults to 0.2).
  double error_rate = 0.0;
  size_t count = 0;

  std::string ToString() const;
};

/// Computes SpeedMetrics over aligned vectors. Entries with non-positive truth
/// are skipped (no meaningful relative error).
SpeedMetrics ComputeSpeedMetrics(const std::vector<double>& predicted,
                                 const std::vector<double>& truth,
                                 double error_rate_tau = 0.2);

/// Fraction of positions where the two sign sequences agree (+1/-1).
double TrendAccuracy(const std::vector<int>& predicted,
                     const std::vector<int>& truth);

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_STATS_H_
