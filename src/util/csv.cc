#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace trendspeed {

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("csv column not found: " + name);
}

Result<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // handled by the following \n (or ignored, lone \r)
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("csv: unterminated quote");
  if (field_started || !field.empty() || !row.empty()) end_row();

  if (rows.empty()) return Status::InvalidArgument("csv: empty input");
  CsvTable table;
  table.header = std::move(rows.front());
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != table.header.size()) {
      return Status::InvalidArgument("csv: ragged row " + std::to_string(i));
    }
    table.rows.push_back(std::move(rows[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  TS_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text);
}

namespace {
void AppendField(const std::string& f, std::string* out) {
  bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    *out += f;
    return;
  }
  *out += '"';
  for (char c : f) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

void AppendRow(const std::vector<std::string>& row, std::string* out) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) *out += ',';
    AppendField(row[i], out);
  }
  *out += '\n';
}
}  // namespace

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  AppendRow(table.header, &out);
  for (const auto& row : table.rows) AppendRow(row, &out);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  return WriteStringToFile(path, WriteCsv(table));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace trendspeed
