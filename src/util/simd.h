// Portable 8-lane single-precision SIMD wrapper.
//
// One fixed batch shape — F32x8, eight floats — with three implementations
// selected at compile time of the *including translation unit*:
//
//   * x86-64 + GCC/Clang: AVX2 + FMA intrinsics. Every wrapper function
//     carries __attribute__((target("avx2,fma"))), so AVX2 instructions are
//     emitted only inside functions that explicitly opted in via
//     TS_SIMD_INLINE — the surrounding TU (and every header-inline it
//     instantiates) stays baseline-ISA. That is what makes runtime dispatch
//     safe: no -mavx2 compile flag ever leaks AVX2 code into a symbol the
//     linker might pick for a non-AVX2 host (the classic fat-TU ODR trap).
//     Callers must themselves be TS_SIMD_INLINE/TS_SIMD_TARGET functions and
//     must only run after a runtime __builtin_cpu_supports("avx2") check
//     (see trend/bp_kernel.h BpSimdKernelAvailable).
//   * aarch64: NEON (baseline ISA there — no attribute, no dispatch needed),
//     as a pair of float32x4_t.
//   * anything else: a plain float[8] struct with scalar loops; correct
//     everywhere, and simple enough that optimizers commonly vectorize it.
//
// The wrapper deliberately exposes only what the BP kernel needs: aligned
// load/store, broadcast, +-*/ and FMA, min/max/abs, a gather, a >-mask with
// blend, an any-lane-below test, and a horizontal max. Semantics notes:
//   * Blend(mask, a, b) takes the *a* lane where the mask is set.
//   * CmpGt builds a full-lane mask (all bits set where a > b); with NaN the
//     comparison is false, so NaN z-values fall to the blend's b-side — the
//     property the kernel's z > 0 guard relies on.

#ifndef TRENDSPEED_UTIL_SIMD_H_
#define TRENDSPEED_UTIL_SIMD_H_

#include <bit>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TRENDSPEED_SIMD_ARCH_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define TRENDSPEED_SIMD_ARCH_NEON 1
#include <arm_neon.h>
#else
#define TRENDSPEED_SIMD_ARCH_GENERIC 1
#endif

#if TRENDSPEED_SIMD_ARCH_AVX2
// Functions containing AVX2/FMA intrinsics (and everything inlined into
// them) must carry this attribute; always_inline turns a missed inline into
// a compile error instead of a silent baseline-ISA call into AVX2 code.
#define TS_SIMD_TARGET __attribute__((target("avx2,fma")))
#define TS_SIMD_INLINE TS_SIMD_TARGET __attribute__((always_inline)) inline
#else
#define TS_SIMD_TARGET
#define TS_SIMD_INLINE inline
#endif

namespace trendspeed {
namespace simd {

inline constexpr int kLanes = 8;

#if TRENDSPEED_SIMD_ARCH_AVX2

inline constexpr const char* kArchName = "avx2";

using F32x8 = __m256;

TS_SIMD_INLINE F32x8 Load(const float* p) { return _mm256_load_ps(p); }
TS_SIMD_INLINE void Store(float* p, F32x8 v) { _mm256_store_ps(p, v); }
TS_SIMD_INLINE F32x8 Broadcast(float x) { return _mm256_set1_ps(x); }
TS_SIMD_INLINE F32x8 Zero() { return _mm256_setzero_ps(); }
/// v[i] = base[idx[i]]; idx must hold 8 contiguous uint32 indices.
TS_SIMD_INLINE F32x8 Gather(const float* base, const uint32_t* idx) {
  __m256i vidx =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(idx));
  return _mm256_i32gather_ps(base, vidx, 4);
}
TS_SIMD_INLINE F32x8 Add(F32x8 a, F32x8 b) { return _mm256_add_ps(a, b); }
TS_SIMD_INLINE F32x8 Sub(F32x8 a, F32x8 b) { return _mm256_sub_ps(a, b); }
TS_SIMD_INLINE F32x8 Mul(F32x8 a, F32x8 b) { return _mm256_mul_ps(a, b); }
TS_SIMD_INLINE F32x8 Div(F32x8 a, F32x8 b) { return _mm256_div_ps(a, b); }
/// a * b + c.
TS_SIMD_INLINE F32x8 Fma(F32x8 a, F32x8 b, F32x8 c) {
  return _mm256_fmadd_ps(a, b, c);
}
TS_SIMD_INLINE F32x8 Min(F32x8 a, F32x8 b) { return _mm256_min_ps(a, b); }
TS_SIMD_INLINE F32x8 Max(F32x8 a, F32x8 b) { return _mm256_max_ps(a, b); }
TS_SIMD_INLINE F32x8 Abs(F32x8 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}
/// All-bits lane mask, set where a > b (false for NaN operands).
TS_SIMD_INLINE F32x8 CmpGt(F32x8 a, F32x8 b) {
  return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
}
/// mask-set lanes take a, the rest take b.
TS_SIMD_INLINE F32x8 Blend(F32x8 mask, F32x8 a, F32x8 b) {
  return _mm256_blendv_ps(b, a, mask);
}
/// True when any lane of v is below `bound` (NaN lanes excluded).
TS_SIMD_INLINE bool AnyLt(F32x8 v, float bound) {
  __m256 m = _mm256_cmp_ps(v, _mm256_set1_ps(bound), _CMP_LT_OQ);
  return _mm256_movemask_ps(m) != 0;
}
TS_SIMD_INLINE float HorizontalMax(F32x8 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

#elif TRENDSPEED_SIMD_ARCH_NEON

inline constexpr const char* kArchName = "neon";

struct F32x8 {
  float32x4_t lo, hi;
};

TS_SIMD_INLINE F32x8 Load(const float* p) {
  return {vld1q_f32(p), vld1q_f32(p + 4)};
}
TS_SIMD_INLINE void Store(float* p, F32x8 v) {
  vst1q_f32(p, v.lo);
  vst1q_f32(p + 4, v.hi);
}
TS_SIMD_INLINE F32x8 Broadcast(float x) {
  return {vdupq_n_f32(x), vdupq_n_f32(x)};
}
TS_SIMD_INLINE F32x8 Zero() { return Broadcast(0.0f); }
TS_SIMD_INLINE F32x8 Gather(const float* base, const uint32_t* idx) {
  float tmp[8];
  for (int i = 0; i < 8; ++i) tmp[i] = base[idx[i]];
  return {vld1q_f32(tmp), vld1q_f32(tmp + 4)};
}
TS_SIMD_INLINE F32x8 Add(F32x8 a, F32x8 b) {
  return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Sub(F32x8 a, F32x8 b) {
  return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Mul(F32x8 a, F32x8 b) {
  return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Div(F32x8 a, F32x8 b) {
  return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Fma(F32x8 a, F32x8 b, F32x8 c) {
  return {vfmaq_f32(c.lo, a.lo, b.lo), vfmaq_f32(c.hi, a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Min(F32x8 a, F32x8 b) {
  return {vminq_f32(a.lo, b.lo), vminq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Max(F32x8 a, F32x8 b) {
  return {vmaxq_f32(a.lo, b.lo), vmaxq_f32(a.hi, b.hi)};
}
TS_SIMD_INLINE F32x8 Abs(F32x8 v) {
  return {vabsq_f32(v.lo), vabsq_f32(v.hi)};
}
TS_SIMD_INLINE F32x8 CmpGt(F32x8 a, F32x8 b) {
  return {vreinterpretq_f32_u32(vcgtq_f32(a.lo, b.lo)),
          vreinterpretq_f32_u32(vcgtq_f32(a.hi, b.hi))};
}
TS_SIMD_INLINE F32x8 Blend(F32x8 mask, F32x8 a, F32x8 b) {
  return {vbslq_f32(vreinterpretq_u32_f32(mask.lo), a.lo, b.lo),
          vbslq_f32(vreinterpretq_u32_f32(mask.hi), a.hi, b.hi)};
}
TS_SIMD_INLINE bool AnyLt(F32x8 v, float bound) {
  float32x4_t b = vdupq_n_f32(bound);
  uint32x4_t m = vorrq_u32(vcltq_f32(v.lo, b), vcltq_f32(v.hi, b));
  return vmaxvq_u32(m) != 0;
}
TS_SIMD_INLINE float HorizontalMax(F32x8 v) {
  return vmaxvq_f32(vmaxq_f32(v.lo, v.hi));
}

#else  // generic fallback

inline constexpr const char* kArchName = "generic";

struct F32x8 {
  float v[8];
};

TS_SIMD_INLINE F32x8 Load(const float* p) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = p[i];
  return r;
}
TS_SIMD_INLINE void Store(float* p, F32x8 a) {
  for (int i = 0; i < 8; ++i) p[i] = a.v[i];
}
TS_SIMD_INLINE F32x8 Broadcast(float x) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = x;
  return r;
}
TS_SIMD_INLINE F32x8 Zero() { return Broadcast(0.0f); }
TS_SIMD_INLINE F32x8 Gather(const float* base, const uint32_t* idx) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = base[idx[i]];
  return r;
}
TS_SIMD_INLINE F32x8 Add(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Sub(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Mul(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Div(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Fma(F32x8 a, F32x8 b, F32x8 c) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Min(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Max(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
TS_SIMD_INLINE F32x8 Abs(F32x8 a) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = a.v[i] < 0.0f ? -a.v[i] : a.v[i];
  return r;
}
namespace detail {
TS_SIMD_INLINE float MaskBits(bool set) {
  return std::bit_cast<float>(set ? 0xffffffffu : 0u);
}
TS_SIMD_INLINE bool MaskSet(float lane) {
  return std::bit_cast<uint32_t>(lane) != 0u;
}
}  // namespace detail
TS_SIMD_INLINE F32x8 CmpGt(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) r.v[i] = detail::MaskBits(a.v[i] > b.v[i]);
  return r;
}
TS_SIMD_INLINE F32x8 Blend(F32x8 mask, F32x8 a, F32x8 b) {
  F32x8 r;
  for (int i = 0; i < 8; ++i) {
    r.v[i] = detail::MaskSet(mask.v[i]) ? a.v[i] : b.v[i];
  }
  return r;
}
TS_SIMD_INLINE bool AnyLt(F32x8 a, float bound) {
  for (int i = 0; i < 8; ++i) {
    if (a.v[i] < bound) return true;
  }
  return false;
}
TS_SIMD_INLINE float HorizontalMax(F32x8 a) {
  float m = a.v[0];
  for (int i = 1; i < 8; ++i) {
    if (a.v[i] > m) m = a.v[i];
  }
  return m;
}

#endif

}  // namespace simd
}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_SIMD_H_
