#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace trendspeed {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  TS_CHECK_EQ(a.size(), b.size());
  size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = a[i] - ma;
    double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double Quantile(std::vector<double> v, double q) {
  TS_CHECK(!v.empty());
  TS_CHECK_GE(q, 0.0);
  TS_CHECK_LE(q, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

std::string SpeedMetrics::ToString() const {
  std::ostringstream os;
  os << "MAE=" << mae << " RMSE=" << rmse << " MAPE=" << mape * 100.0
     << "% ER=" << error_rate * 100.0 << "% n=" << count;
  return os.str();
}

SpeedMetrics ComputeSpeedMetrics(const std::vector<double>& predicted,
                                 const std::vector<double>& truth,
                                 double error_rate_tau) {
  TS_CHECK_EQ(predicted.size(), truth.size());
  SpeedMetrics m;
  double se = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] <= 0.0) continue;
    double err = predicted[i] - truth[i];
    double abs_err = std::fabs(err);
    double rel = abs_err / truth[i];
    m.mae += abs_err;
    se += err * err;
    m.mape += rel;
    if (rel > error_rate_tau) m.error_rate += 1.0;
    ++m.count;
  }
  if (m.count > 0) {
    double n = static_cast<double>(m.count);
    m.mae /= n;
    m.rmse = std::sqrt(se / n);
    m.mape /= n;
    m.error_rate /= n;
  }
  return m;
}

double TrendAccuracy(const std::vector<int>& predicted,
                     const std::vector<int>& truth) {
  TS_CHECK_EQ(predicted.size(), truth.size());
  if (truth.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == truth[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(truth.size());
}

}  // namespace trendspeed
