#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace trendspeed {

size_t EffectiveThreads(size_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  size_t workers = std::min(EffectiveThreads(num_threads), n);
  // Small jobs or single-threaded: run inline (no spawn overhead, easier
  // debugging).
  if (workers <= 1 || n < 16) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    if (begin >= n) break;
    size_t end = std::min(n, begin + chunk);
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace trendspeed
