#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "util/thread_pool.h"

namespace trendspeed {

size_t EffectiveThreads(size_t requested) {
  if (requested > 0) return requested;
  static const size_t cached = [] {
    if (const char* env = std::getenv("TRENDSPEED_NUM_THREADS")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 4096) {
        return static_cast<size_t>(v);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw > 0 ? hw : 1);
  }();
  return cached;
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  size_t workers = std::min(EffectiveThreads(num_threads), n);
  // Small jobs or single-threaded: run inline (no handoff overhead, easier
  // debugging).
  if (workers <= 1 || n < 16) {
    fn(0, n);
    return;
  }
  ThreadPool::Global().ParallelForChunked(
      n, workers, [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace trendspeed
