// MpscBoundedQueue: a bounded lock-free multi-producer single-consumer
// queue for the ingest front-end (core/ingest.h).
//
// Design: Vyukov-style bounded ring of cells, each carrying a sequence
// number that encodes whose turn the cell is on. Producers claim a cell
// with one fetch_add on the (cache-line-padded) tail and publish the
// payload by bumping the cell sequence; the consumer mirrors the dance on
// the head. Push and pop are therefore wait-free in the common case (one
// RMW + one store), there are no locks anywhere, and a full queue is
// reported to the producer as `false` — backpressure, never blocking.
//
// Contract:
//   * TryPush  — any number of threads.
//   * TryPop   — exactly ONE consumer thread at a time (the serving
//     drain loop). Multiple concurrent consumers are NOT supported.
//   * Elements pushed by one producer pop in that producer's order
//     (per-producer FIFO); cross-producer interleaving is arbitrary.
//   * capacity() is the usable bound: a TryPush that would exceed it
//     fails. Requested capacities are rounded up to a power of two so
//     index masking stays one AND.
//
// std-atomics only; T must be nothrow-move-constructible so a pop can
// never tear the ring state by throwing mid-transfer.

#ifndef TRENDSPEED_UTIL_MPSC_QUEUE_H_
#define TRENDSPEED_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/logging.h"

namespace trendspeed {

template <typename T>
class MpscBoundedQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "queue elements must be nothrow-movable");

 public:
  /// Usable capacity is `capacity` rounded up to a power of two, min 2.
  explicit MpscBoundedQueue(size_t capacity)
      : mask_(RoundUpPow2(capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscBoundedQueue(const MpscBoundedQueue&) = delete;
  MpscBoundedQueue& operator=(const MpscBoundedQueue&) = delete;

  /// Producer side. Returns false when the queue is full (backpressure);
  /// the element is untouched in that case.
  bool TryPush(T v) {
    Cell* cell;
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      uint64_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        // The cell is free for round `pos`; try to claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        // The cell still holds an element from `capacity` rounds ago:
        // the ring is full.
        return false;
      } else {
        // Another producer claimed `pos`; reload and retry.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    new (&cell->storage) T(std::move(v));
    // Publishing store: pairs with the consumer's acquire load of seq.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (single consumer only). Returns false when empty.
  bool TryPop(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell = &cells_[pos & mask_];
    uint64_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // cell not yet published: empty (or producer mid-push)
    }
    T* elem = reinterpret_cast<T*>(&cell->storage);
    *out = std::move(*elem);
    elem->~T();
    // Hand the cell to producers for the round one lap ahead.
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Racy size estimate for gauges/backpressure heuristics; exact only at
  /// quiescence.
  size_t SizeApprox() const {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  ~MpscBoundedQueue() {
    // Destroy leftovers in place so non-trivial T destructors run.
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell* cell = &cells_[pos & mask_];
      if (cell->seq.load(std::memory_order_relaxed) != pos + 1) break;
      reinterpret_cast<T*>(&cell->storage)->~T();
      ++pos;
    }
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  static size_t RoundUpPow2(size_t v) {
    TS_CHECK_LE(v, size_t{1} << 30);
    size_t p = 2;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Head and tail on their own cache lines so producers hammering the tail
  // never invalidate the consumer's head line (and vice versa).
  alignas(64) std::atomic<uint64_t> tail_{0};  // producers
  alignas(64) std::atomic<uint64_t> head_{0};  // the single consumer
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_MPSC_QUEUE_H_
