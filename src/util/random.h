// Deterministic pseudo-random number generation (PCG32).
//
// Every stochastic component in the library takes an explicit Rng (or seed) so
// datasets, simulations, and experiments are bit-for-bit reproducible.

#ifndef TRENDSPEED_UTIL_RANDOM_H_
#define TRENDSPEED_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace trendspeed {

/// PCG32 (Melissa O'Neill's pcg32_random_r), a small fast statistically solid
/// generator. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  /// Uniform in [0, bound). Precondition: bound > 0. Uses rejection sampling
  /// to avoid modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    TS_CHECK_GT(bound, 0u);
    uint32_t threshold = -bound % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform index in [0, n).
  size_t NextIndex(size_t n) { return NextBounded(static_cast<uint32_t>(n)); }

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian() {
    double u1;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential with the given rate (lambda).
  double NextExponential(double rate) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 1e-12);
    return -std::log(u) / rate;
  }

  /// Poisson(lambda) via Knuth's method (fine for lambda up to a few hundred).
  int NextPoisson(double lambda) {
    double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }

  /// Fisher-Yates in-place shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[NextIndex(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    TS_CHECK_LE(k, n);
    // Floyd's algorithm: O(k) expected memory & time.
    std::vector<size_t> out;
    out.reserve(k);
    std::vector<bool> taken(n, false);
    for (size_t j = n - k; j < n; ++j) {
      size_t t = NextIndex(j + 1);
      if (taken[t]) t = j;
      taken[t] = true;
      out.push_back(t);
    }
    return out;
  }

  /// Forks an independent child generator (distinct stream).
  Rng Fork() { return Rng(NextU32() | (uint64_t{NextU32()} << 32), NextU32()); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_RANDOM_H_
