// Persistent work-stealing thread pool — the process-wide parallel runtime.
//
// The seed implementation spawned and joined fresh std::threads on every
// ParallelFor call, which costs ~10-100us per call and dominates short
// data-parallel regions (one BP sweep over a city graph is itself only a few
// hundred microseconds). This pool is created once, its workers sleep when
// idle, and a parallel region costs two atomic counters plus one wakeup.
//
// Design:
//   * One deque of tasks per worker, each guarded by its own mutex. Submit
//     from outside round-robins across queues; submit from a worker pushes
//     to that worker's own queue (cheap nested submission).
//   * Workers pop their own queue LIFO (cache-warm), steal FIFO from other
//     queues when theirs runs dry, and park on a condition variable when a
//     full sweep finds nothing.
//   * ParallelFor does not enqueue one task per chunk. It enqueues one
//     self-scheduling "runner" per worker; runners (and the calling thread,
//     which always participates) claim chunks from a shared atomic cursor.
//     Chunk boundaries depend only on (n, grain), never on timing, so any
//     per-index-deterministic callback yields identical results for every
//     thread count and every interleaving.
//   * The first exception thrown by a callback is captured, remaining chunks
//     are abandoned (claimed but not executed), and the exception is
//     rethrown on the calling thread once the region completes.
//
// Blocking a worker thread on an inner ParallelFor would deadlock a pool of
// cooperating runners, so parallel regions entered from inside a worker run
// inline on that worker (the outer region already owns the parallelism).

#ifndef TRENDSPEED_UTIL_THREAD_POOL_H_
#define TRENDSPEED_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace trendspeed {

class ThreadPool {
 public:
  /// Creates `num_workers` worker threads. 0 means EffectiveThreads(0) - 1
  /// (the calling thread participates in every parallel region, so hardware
  /// concurrency is reached without oversubscription). A pool with zero
  /// workers is valid: everything runs inline on the caller.
  explicit ThreadPool(size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Process-wide pool, created on first use with the default worker count
  /// (honours TRENDSPEED_NUM_THREADS, see EffectiveThreads).
  static ThreadPool& Global();

  /// Enqueues a fire-and-forget task. Safe to call from worker threads
  /// (nested submission). Tasks must not throw; use ParallelFor for
  /// exception-propagating regions.
  void Submit(std::function<void()> task);

  /// Runs fn(begin, end) over contiguous chunks of ~`grain` indices covering
  /// [0, n). Blocks until every chunk completed; the calling thread works
  /// too. Concurrency is additionally capped at `max_concurrency` chunks in
  /// flight (0 = no cap beyond the worker count). Rethrows the first
  /// exception a callback threw.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn,
                   size_t max_concurrency = 0);

  /// Runs fn(chunk, begin, end) over exactly min(num_chunks, n) equal
  /// contiguous chunks. The chunk index is deterministic (chunk boundaries
  /// depend only on n and num_chunks), which lets callers do ordered
  /// per-chunk reductions — e.g. argmax with lowest-index tie-breaking.
  void ParallelForChunked(
      size_t n, size_t num_chunks,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn);

  /// True when called from one of this pool's worker threads.
  bool InWorker() const;

  /// Attaches (or, with nullptr, detaches) a metrics registry. Registers the
  /// trendspeed_pool_* series (obs/catalog.h) and starts recording task
  /// counts, steals, queue depth, and task wait/run latency histograms.
  /// Detached (the default) the hot paths pay one relaxed load + branch per
  /// record site. Safe to call while tasks are in flight; the registry must
  /// outlive the pool or a subsequent Detach.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  bool TryRunOneTask(size_t self);
  void RunChunked(
      size_t n, size_t chunk_size, size_t num_chunks,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn,
      size_t max_concurrency);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  size_t pending_ = 0;  // queued tasks, guarded by sleep_mu_
  bool stop_ = false;   // guarded by sleep_mu_
  std::atomic<size_t> next_queue_{0};

  // Metric handles; all null while no registry is attached. Individually
  // atomic so AttachMetrics is safe concurrently with running tasks.
  std::atomic<obs::Counter*> m_tasks_{nullptr};
  std::atomic<obs::Counter*> m_steals_{nullptr};
  std::atomic<obs::Gauge*> m_queue_depth_{nullptr};
  std::atomic<obs::Histogram*> m_task_wait_us_{nullptr};
  std::atomic<obs::Histogram*> m_task_run_us_{nullptr};
};

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_THREAD_POOL_H_
