// Cache-line / SIMD-register aligned storage.
//
// The SoA belief-propagation kernel (trend/bp_kernel.h) keeps its message
// planes in 64-byte-aligned vectors so every batch load/store is an aligned
// vector access and no plane ever straddles a cache line it did not have to.
// std::vector's default allocator only guarantees alignof(std::max_align_t)
// (16 on common ABIs), hence this allocator.

#ifndef TRENDSPEED_UTIL_ALIGNED_H_
#define TRENDSPEED_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace trendspeed {

/// Minimal C++17 aligned allocator. Alignment must be a power of two and at
/// least alignof(T); 64 covers a cache line and every vector width up to
/// AVX-512.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned vector: the storage type of every SoA kernel plane.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace trendspeed

#endif  // TRENDSPEED_UTIL_ALIGNED_H_
