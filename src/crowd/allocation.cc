#include "crowd/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trendspeed {

Result<std::vector<uint32_t>> AllocateAnswers(
    const std::vector<double>& weights, uint32_t total_answers) {
  size_t n = weights.size();
  if (n == 0) return Status::InvalidArgument("no seeds to allocate to");
  if (total_answers < n) {
    return Status::InvalidArgument(
        "budget smaller than one answer per seed");
  }
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
  }
  std::vector<uint32_t> alloc(n, 1);
  uint32_t remaining = total_answers - static_cast<uint32_t>(n);
  double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (remaining == 0) return alloc;
  if (wsum <= 0.0) {
    // Uninformative weights: spread the remainder round-robin.
    for (uint32_t i = 0; i < remaining; ++i) ++alloc[i % n];
    return alloc;
  }
  // Largest-remainder apportionment of the remaining answers.
  std::vector<double> exact(n);
  std::vector<uint32_t> floor_alloc(n);
  uint32_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    exact[i] = static_cast<double>(remaining) * weights[i] / wsum;
    floor_alloc[i] = static_cast<uint32_t>(std::floor(exact[i]));
    used += floor_alloc[i];
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = exact[a] - std::floor(exact[a]);
    double rb = exact[b] - std::floor(exact[b]);
    return ra != rb ? ra > rb : a < b;
  });
  for (size_t k = 0; k < remaining - used; ++k) {
    ++floor_alloc[order[k % n]];
  }
  for (size_t i = 0; i < n; ++i) alloc[i] += floor_alloc[i];
  return alloc;
}

}  // namespace trendspeed
