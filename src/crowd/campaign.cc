#include "crowd/campaign.h"

#include "util/logging.h"

namespace trendspeed {

CrowdCampaign::CrowdCampaign(const WorkerPool* pool,
                             const CampaignOptions& opts)
    : pool_(pool), opts_(opts), rng_(opts.seed), tracker_(pool->size()) {
  TS_CHECK(pool != nullptr);
  TS_CHECK_GE(opts.workers_per_seed, 1u);
}

Result<std::vector<SeedSpeed>> CrowdCampaign::Collect(
    const std::vector<RoadId>& seed_roads,
    const std::vector<double>& true_speeds) {
  std::vector<uint32_t> per_seed(seed_roads.size(), opts_.workers_per_seed);
  return CollectAllocated(seed_roads, per_seed, true_speeds);
}

Result<std::vector<SeedSpeed>> CrowdCampaign::CollectAllocated(
    const std::vector<RoadId>& seed_roads,
    const std::vector<uint32_t>& answers_per_seed,
    const std::vector<double>& true_speeds) {
  if (answers_per_seed.size() != seed_roads.size()) {
    return Status::InvalidArgument("allocation / seed count mismatch");
  }
  std::vector<SeedSpeed> out;
  out.reserve(seed_roads.size());
  for (size_t i = 0; i < seed_roads.size(); ++i) {
    RoadId road = seed_roads[i];
    if (road >= true_speeds.size()) {
      return Status::InvalidArgument("seed road out of range");
    }
    if (answers_per_seed[i] == 0) {
      return Status::InvalidArgument("every seed needs >= 1 answer");
    }
    std::vector<uint32_t> workers = pool_->Draw(answers_per_seed[i], &rng_);
    std::vector<WorkerAnswer> answers;
    answers.reserve(workers.size());
    for (uint32_t w : workers) {
      answers.push_back(pool_->Answer(w, true_speeds[road], &rng_));
    }
    answers_spent_ += answers.size();
    AggregateOptions agg;
    agg.method = opts_.aggregation;
    agg.trim_fraction = opts_.trim_fraction;
    agg.tracker = &tracker_;
    TS_ASSIGN_OR_RETURN(double speed, AggregateAnswers(answers, agg));
    out.push_back(SeedSpeed{road, std::max(1.0, speed)});
  }
  return out;
}

}  // namespace trendspeed
