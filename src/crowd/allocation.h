// Answer-budget allocation across seed roads.
//
// A campaign buys `total_answers` worker answers per slot. Spending them
// uniformly wastes redundancy on placid roads; the optimal split for
// minimizing total observation variance puts answer counts proportional to
// each road's observation noise-to-importance profile. We allocate
// proportionally to the seeds' historical deviation variability sigma
// (important, volatile seeds get more answers), with a floor of one answer
// per seed.

#ifndef TRENDSPEED_CROWD_ALLOCATION_H_
#define TRENDSPEED_CROWD_ALLOCATION_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/status.h"

namespace trendspeed {

/// Splits `total_answers` across seeds proportionally to `weights`
/// (>= 0, typically per-seed sigma), at least one per seed. The result sums
/// to exactly total_answers. Largest-remainder rounding keeps the split
/// deterministic and fair. Fails when total_answers < seeds or inputs are
/// inconsistent.
Result<std::vector<uint32_t>> AllocateAnswers(
    const std::vector<double>& weights, uint32_t total_answers);

}  // namespace trendspeed

#endif  // TRENDSPEED_CROWD_ALLOCATION_H_
