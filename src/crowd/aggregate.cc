#include "crowd/aggregate.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trendspeed {

const char* AggregationMethodName(AggregationMethod method) {
  switch (method) {
    case AggregationMethod::kMean:
      return "mean";
    case AggregationMethod::kMedian:
      return "median";
    case AggregationMethod::kTrimmedMean:
      return "trimmed-mean";
    case AggregationMethod::kReliabilityWeighted:
      return "reliability";
  }
  return "?";
}

ReliabilityTracker::ReliabilityTracker(size_t num_workers)
    : abs_err_ewma_(num_workers, 0.0), counts_(num_workers, 0) {}

double ReliabilityTracker::WeightOf(uint32_t worker) const {
  TS_CHECK_LT(worker, abs_err_ewma_.size());
  if (counts_[worker] == 0) return 1.0;
  // Soft inverse-error weighting: 3 km/h of average consensus error halves
  // the weight.
  return 1.0 / (1.0 + abs_err_ewma_[worker] / 3.0);
}

void ReliabilityTracker::Record(uint32_t worker, double answer,
                                double consensus) {
  TS_CHECK_LT(worker, abs_err_ewma_.size());
  double err = std::fabs(answer - consensus);
  const double kAlpha = 0.1;
  if (counts_[worker] == 0) {
    abs_err_ewma_[worker] = err;
  } else {
    abs_err_ewma_[worker] =
        (1.0 - kAlpha) * abs_err_ewma_[worker] + kAlpha * err;
  }
  ++counts_[worker];
}

double ReliabilityTracker::MeanAbsError(uint32_t worker) const {
  TS_CHECK_LT(worker, abs_err_ewma_.size());
  return abs_err_ewma_[worker];
}

namespace {

double Median(std::vector<double> v) {
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace

Result<double> AggregateAnswers(const std::vector<WorkerAnswer>& answers,
                                const AggregateOptions& opts) {
  if (answers.empty()) {
    return Status::InvalidArgument("no answers to aggregate");
  }
  if (opts.method == AggregationMethod::kReliabilityWeighted &&
      opts.tracker == nullptr) {
    return Status::InvalidArgument(
        "reliability-weighted aggregation requires a tracker");
  }
  if (opts.trim_fraction < 0.0 || opts.trim_fraction >= 0.5) {
    return Status::InvalidArgument("trim_fraction must be in [0, 0.5)");
  }
  std::vector<double> values;
  values.reserve(answers.size());
  for (const WorkerAnswer& a : answers) values.push_back(a.speed_kmh);

  double result = 0.0;
  switch (opts.method) {
    case AggregationMethod::kMean: {
      double sum = 0.0;
      for (double v : values) sum += v;
      result = sum / static_cast<double>(values.size());
      break;
    }
    case AggregationMethod::kMedian:
      result = Median(values);
      break;
    case AggregationMethod::kTrimmedMean: {
      std::sort(values.begin(), values.end());
      size_t drop = static_cast<size_t>(
          std::floor(opts.trim_fraction * static_cast<double>(values.size())));
      double sum = 0.0;
      size_t n = 0;
      for (size_t i = drop; i + drop < values.size(); ++i) {
        sum += values[i];
        ++n;
      }
      result = n > 0 ? sum / static_cast<double>(n) : Median(values);
      break;
    }
    case AggregationMethod::kReliabilityWeighted: {
      double wsum = 0.0, acc = 0.0;
      for (const WorkerAnswer& a : answers) {
        double w = opts.tracker->WeightOf(a.worker);
        wsum += w;
        acc += w * a.speed_kmh;
      }
      result = wsum > 0.0 ? acc / wsum
                          : values[0];  // all-zero weights cannot happen
      break;
    }
  }
  // Online quality control: score every worker against the consensus.
  if (opts.tracker != nullptr) {
    for (const WorkerAnswer& a : answers) {
      opts.tracker->Record(a.worker, a.speed_kmh, result);
    }
  }
  return result;
}

}  // namespace trendspeed
