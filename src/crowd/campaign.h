// Crowdsourcing campaign: per time slot, collect worker answers for every
// seed road and aggregate them into the SeedSpeed observations the
// estimation pipeline consumes. Tracks the answer budget spent and runs the
// online reliability quality control.

#ifndef TRENDSPEED_CROWD_CAMPAIGN_H_
#define TRENDSPEED_CROWD_CAMPAIGN_H_

#include <vector>

#include "crowd/aggregate.h"
#include "crowd/worker.h"
#include "roadnet/road_network.h"
#include "speed/propagation.h"
#include "util/random.h"
#include "util/status.h"

namespace trendspeed {

struct CampaignOptions {
  /// Workers asked per seed road per slot.
  uint32_t workers_per_seed = 3;
  AggregationMethod aggregation = AggregationMethod::kMedian;
  double trim_fraction = 0.2;
  uint64_t seed = 777;
};

/// Runs the per-slot collection loop against a worker pool.
class CrowdCampaign {
 public:
  /// The pool must outlive the campaign.
  CrowdCampaign(const WorkerPool* pool, const CampaignOptions& opts);

  /// Collects answers for `seed_roads` whose true speeds are given by
  /// `true_speeds` (indexed by road id), returning the aggregated
  /// observations.
  Result<std::vector<SeedSpeed>> Collect(
      const std::vector<RoadId>& seed_roads,
      const std::vector<double>& true_speeds);

  /// Same, with an explicit per-seed answer count (see crowd/allocation.h)
  /// instead of the uniform workers_per_seed.
  Result<std::vector<SeedSpeed>> CollectAllocated(
      const std::vector<RoadId>& seed_roads,
      const std::vector<uint32_t>& answers_per_seed,
      const std::vector<double>& true_speeds);

  /// Total worker answers purchased so far.
  uint64_t answers_spent() const { return answers_spent_; }

  const ReliabilityTracker& reliability() const { return tracker_; }

 private:
  const WorkerPool* pool_;
  CampaignOptions opts_;
  Rng rng_;
  ReliabilityTracker tracker_;
  uint64_t answers_spent_ = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CROWD_CAMPAIGN_H_
