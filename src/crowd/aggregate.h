// Answer aggregation: turning several noisy worker answers for one road
// into a single speed estimate, with optional reliability weighting.

#ifndef TRENDSPEED_CROWD_AGGREGATE_H_
#define TRENDSPEED_CROWD_AGGREGATE_H_

#include <vector>

#include "crowd/worker.h"
#include "util/status.h"

namespace trendspeed {

enum class AggregationMethod {
  kMean,
  kMedian,
  /// Mean after discarding the lowest and highest `trim_fraction` answers.
  kTrimmedMean,
  /// Weight each answer by the worker's tracked reliability.
  kReliabilityWeighted,
};

const char* AggregationMethodName(AggregationMethod method);

/// Running per-worker reliability estimates, updated from each answer's
/// agreement with the consensus (simple online quality control: workers
/// whose answers repeatedly sit far from consensus are down-weighted).
class ReliabilityTracker {
 public:
  explicit ReliabilityTracker(size_t num_workers);

  /// Weight in (0, 1]; new workers start at 1.
  double WeightOf(uint32_t worker) const;

  /// Records one answer against the consensus value for that road.
  void Record(uint32_t worker, double answer, double consensus);

  /// Mean absolute consensus error tracked for a worker (diagnostics).
  double MeanAbsError(uint32_t worker) const;
  size_t AnswerCount(uint32_t worker) const { return counts_[worker]; }

 private:
  std::vector<double> abs_err_ewma_;
  std::vector<size_t> counts_;
};

struct AggregateOptions {
  AggregationMethod method = AggregationMethod::kMedian;
  double trim_fraction = 0.2;
  /// Optional tracker (required for kReliabilityWeighted; updated as a side
  /// effect for every method when provided).
  ReliabilityTracker* tracker = nullptr;
};

/// Aggregates one road's answers. Fails on an empty answer set, or when
/// kReliabilityWeighted is requested without a tracker.
Result<double> AggregateAnswers(const std::vector<WorkerAnswer>& answers,
                                const AggregateOptions& opts);

}  // namespace trendspeed

#endif  // TRENDSPEED_CROWD_AGGREGATE_H_
