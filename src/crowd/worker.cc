#include "crowd/worker.h"

#include <algorithm>

#include "util/logging.h"

namespace trendspeed {

WorkerPool::WorkerPool(const Options& opts) {
  TS_CHECK_GT(opts.num_workers, 0u);
  TS_CHECK_LE(opts.noise_min_kmh, opts.noise_max_kmh);
  Rng rng(opts.seed);
  profiles_.resize(opts.num_workers);
  for (WorkerProfile& p : profiles_) {
    p.bias_kmh = rng.Gaussian(0.0, opts.bias_spread_kmh);
    p.noise_kmh = rng.Uniform(opts.noise_min_kmh, opts.noise_max_kmh);
    p.outlier_prob = rng.Uniform(0.0, opts.max_outlier_prob);
  }
}

WorkerAnswer WorkerPool::Answer(uint32_t worker, double true_speed_kmh,
                                Rng* rng) const {
  TS_CHECK_LT(worker, profiles_.size());
  TS_CHECK(rng != nullptr);
  const WorkerProfile& p = profiles_[worker];
  WorkerAnswer answer;
  answer.worker = worker;
  if (rng->NextBool(p.outlier_prob)) {
    // Garbage: unrelated to the truth.
    answer.speed_kmh = rng->Uniform(1.0, 120.0);
  } else {
    answer.speed_kmh =
        true_speed_kmh + p.bias_kmh + rng->Gaussian(0.0, p.noise_kmh);
  }
  answer.speed_kmh = std::max(1.0, answer.speed_kmh);
  return answer;
}

std::vector<uint32_t> WorkerPool::Draw(size_t k, Rng* rng) const {
  TS_CHECK(rng != nullptr);
  k = std::min(k, profiles_.size());
  std::vector<uint32_t> out;
  out.reserve(k);
  for (size_t idx : rng->SampleWithoutReplacement(profiles_.size(), k)) {
    out.push_back(static_cast<uint32_t>(idx));
  }
  return out;
}

}  // namespace trendspeed
