// Crowd worker response model.
//
// The paper obtains seed speeds "using crowdsourcing": human reporters (or
// probe drivers) answer "how fast is traffic moving on road r right now?".
// Workers are imperfect in three distinct ways the aggregation layer must
// survive: a per-worker systematic bias (pessimists / optimists), zero-mean
// reporting noise, and occasional outright garbage (mistaken road, stale
// answer, spam).

#ifndef TRENDSPEED_CROWD_WORKER_H_
#define TRENDSPEED_CROWD_WORKER_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace trendspeed {

/// Latent quality parameters of one worker.
struct WorkerProfile {
  /// Systematic additive bias (km/h); negative workers under-report.
  double bias_kmh = 0.0;
  /// Standard deviation of honest reporting noise (km/h).
  double noise_kmh = 3.0;
  /// Probability a given answer is garbage (uniform in a wide range).
  double outlier_prob = 0.02;
};

/// One submitted answer.
struct WorkerAnswer {
  uint32_t worker = 0;
  double speed_kmh = 0.0;
};

/// A fixed population of workers with heterogeneous quality.
class WorkerPool {
 public:
  struct Options {
    size_t num_workers = 200;
    /// Bias drawn N(0, bias_spread); noise U(min,max); outlier U(0,max).
    double bias_spread_kmh = 2.0;
    double noise_min_kmh = 1.0;
    double noise_max_kmh = 6.0;
    double max_outlier_prob = 0.08;
    uint64_t seed = 555;
  };

  explicit WorkerPool(const Options& opts);

  size_t size() const { return profiles_.size(); }
  const WorkerProfile& profile(uint32_t worker) const {
    return profiles_[worker];
  }

  /// One answer from `worker` observing a road whose true speed is
  /// `true_speed_kmh`. Answers are floored at 1 km/h.
  WorkerAnswer Answer(uint32_t worker, double true_speed_kmh, Rng* rng) const;

  /// Draws `k` distinct workers.
  std::vector<uint32_t> Draw(size_t k, Rng* rng) const;

 private:
  std::vector<WorkerProfile> profiles_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CROWD_WORKER_H_
