// Synthetic urban road network generators.
//
// These stand in for the paper's two city maps: RingRadial approximates a
// Beijing-style ring-road city ("CityA"), Grid approximates a Manhattan-style
// grid ("CityB"), and RandomPlanar provides irregular suburban sprawl for
// robustness tests.

#ifndef TRENDSPEED_ROADNET_GENERATORS_H_
#define TRENDSPEED_ROADNET_GENERATORS_H_

#include "roadnet/road_network.h"
#include "util/random.h"
#include "util/status.h"

namespace trendspeed {

struct GridNetworkOptions {
  size_t rows = 10;
  size_t cols = 10;
  double spacing_m = 400.0;
  /// Every k-th row/column is an arterial (faster, higher capacity).
  size_t arterial_every = 4;
  /// Fraction of interior edges randomly removed (irregular city blocks).
  double dropout = 0.0;
  uint64_t seed = 7;
};

/// Builds a rows x cols two-way street grid.
Result<RoadNetwork> MakeGridNetwork(const GridNetworkOptions& opts);

struct RingRadialOptions {
  size_t num_rings = 5;
  size_t num_spokes = 12;
  double inner_radius_m = 800.0;
  double ring_gap_m = 700.0;
  /// Outermost ring(s) are highways; inner rings arterials.
  size_t highway_rings = 2;
  /// Adds local connector roads between adjacent ring/spoke cells.
  bool with_connectors = true;
  uint64_t seed = 11;
};

/// Builds a ring-and-spoke network (concentric ring roads + radial avenues).
Result<RoadNetwork> MakeRingRadialNetwork(const RingRadialOptions& opts);

struct RandomPlanarOptions {
  size_t num_nodes = 200;
  double extent_m = 6000.0;
  /// Each node connects to its k nearest neighbours (two-way).
  size_t k_nearest = 3;
  uint64_t seed = 13;
};

/// Builds an irregular planar-ish network via k-nearest-neighbour linking.
/// The result is connected (a spanning chain is forced).
Result<RoadNetwork> MakeRandomPlanarNetwork(const RandomPlanarOptions& opts);

struct CompositeCityOptions {
  RingRadialOptions core;
  GridNetworkOptions suburb;
  /// Distance from the core's outer ring to the suburb grid's near corner.
  double suburb_gap_m = 900.0;
  /// Number of highway links connecting the core to the suburb.
  size_t num_links = 2;
};

/// Builds a realistic composite city: a ring-radial core with a grid suburb
/// to its east, joined by a few highway links. Exercises topologies where
/// different districts have different structure (and where the cross-town
/// links are the critical, high-variability roads seed selection should
/// find).
Result<RoadNetwork> MakeCompositeCity(const CompositeCityOptions& opts);

}  // namespace trendspeed

#endif  // TRENDSPEED_ROADNET_GENERATORS_H_
