#include "roadnet/stats.h"

#include <algorithm>

#include "roadnet/shortest_path.h"

namespace trendspeed {

NetworkStats ComputeNetworkStats(const RoadNetwork& net) {
  NetworkStats stats;
  stats.num_nodes = net.num_nodes();
  stats.num_roads = net.num_roads();
  if (net.num_roads() == 0) return stats;
  size_t degree_sum = 0;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    const Road& road = net.road(r);
    ++stats.roads_by_class[static_cast<size_t>(road.road_class)];
    stats.total_length_km += road.length_m / 1000.0;
    size_t deg = net.RoadSuccessors(r).size() + net.RoadPredecessors(r).size();
    degree_sum += deg;
    stats.max_degree = std::max(stats.max_degree, deg);
  }
  stats.avg_road_length_m =
      stats.total_length_km * 1000.0 / static_cast<double>(net.num_roads());
  stats.avg_degree =
      static_cast<double>(degree_sum) / static_cast<double>(net.num_roads());
  // Double-sweep: BFS from road 0 to the farthest road, then from there —
  // the classic diameter lower bound.
  auto d0 = RoadHopDistances(net, 0, UINT32_MAX - 1);
  RoadId far = 0;
  bool connected = true;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    if (d0[r] == kUnreachable) {
      connected = false;
    } else if (d0[r] > d0[far]) {
      far = r;
    }
  }
  auto d1 = RoadHopDistances(net, far, UINT32_MAX - 1);
  for (uint32_t d : d1) {
    if (d != kUnreachable) {
      stats.diameter_lower_bound = std::max(stats.diameter_lower_bound, d);
    }
  }
  stats.connected = connected;
  return stats;
}

}  // namespace trendspeed
