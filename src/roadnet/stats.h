// Network structural statistics for the dataset tables and diagnostics.

#ifndef TRENDSPEED_ROADNET_STATS_H_
#define TRENDSPEED_ROADNET_STATS_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace trendspeed {

struct NetworkStats {
  size_t num_nodes = 0;
  size_t num_roads = 0;
  size_t roads_by_class[3] = {0, 0, 0};
  double total_length_km = 0.0;
  double avg_road_length_m = 0.0;
  /// Road-adjacency degree (successors + predecessors) distribution.
  double avg_degree = 0.0;
  size_t max_degree = 0;
  /// Eccentricity of road 0 over undirected road adjacency — a cheap
  /// diameter lower bound.
  uint32_t diameter_lower_bound = 0;
  bool connected = false;
};

NetworkStats ComputeNetworkStats(const RoadNetwork& net);

}  // namespace trendspeed

#endif  // TRENDSPEED_ROADNET_STATS_H_
