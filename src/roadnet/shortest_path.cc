#include "roadnet/shortest_path.h"

#include <algorithm>
#include <queue>

namespace trendspeed {

namespace {

// Shared BFS over undirected road adjacency from multiple sources.
std::vector<uint32_t> RoadBfs(const RoadNetwork& net,
                              const std::vector<RoadId>& sources,
                              uint32_t max_hops) {
  std::vector<uint32_t> dist(net.num_roads(), kUnreachable);
  std::queue<RoadId> queue;
  for (RoadId s : sources) {
    if (dist[s] != kUnreachable) continue;
    dist[s] = 0;
    queue.push(s);
  }
  while (!queue.empty()) {
    RoadId u = queue.front();
    queue.pop();
    if (dist[u] >= max_hops) continue;
    auto visit = [&](RoadId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    };
    for (RoadId v : net.RoadSuccessors(u)) visit(v);
    for (RoadId v : net.RoadPredecessors(u)) visit(v);
    // The reverse twin is the same physical street; spatially 1 hop.
    RoadId twin = net.ReverseTwin(u);
    if (twin != kInvalidRoad) visit(twin);
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> RoadHopDistances(const RoadNetwork& net, RoadId source,
                                       uint32_t max_hops) {
  return RoadBfs(net, {source}, max_hops);
}

std::vector<uint32_t> RoadHopDistancesMulti(const RoadNetwork& net,
                                            const std::vector<RoadId>& sources,
                                            uint32_t max_hops) {
  return RoadBfs(net, sources, max_hops);
}

std::vector<RoadHop> RoadsWithinHops(const RoadNetwork& net, RoadId source,
                                     uint32_t max_hops) {
  std::vector<uint32_t> dist = RoadBfs(net, {source}, max_hops);
  std::vector<RoadHop> out;
  for (RoadId r = 0; r < net.num_roads(); ++r) {
    if (r != source && dist[r] != kUnreachable) {
      out.push_back(RoadHop{r, dist[r]});
    }
  }
  std::sort(out.begin(), out.end(), [](const RoadHop& a, const RoadHop& b) {
    return a.hops != b.hops ? a.hops < b.hops : a.road < b.road;
  });
  return out;
}

Result<std::vector<RoadId>> FastestPath(const RoadNetwork& net, NodeId from,
                                        NodeId to) {
  if (from >= net.num_nodes() || to >= net.num_nodes()) {
    return Status::InvalidArgument("FastestPath: node out of range");
  }
  const double kInf = 1e300;
  std::vector<double> dist(net.num_nodes(), kInf);
  std::vector<RoadId> via(net.num_nodes(), kInvalidRoad);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (RoadId r : net.OutRoads(u)) {
      NodeId v = net.road(r).to;
      double nd = d + net.FreeFlowSeconds(r);
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = r;
        pq.emplace(nd, v);
      }
    }
  }
  if (dist[to] >= kInf) {
    return Status::NotFound("FastestPath: target unreachable");
  }
  std::vector<RoadId> path;
  NodeId cur = to;
  while (cur != from) {
    RoadId r = via[cur];
    path.push_back(r);
    cur = net.road(r).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool IsRoadGraphConnected(const RoadNetwork& net) {
  if (net.num_roads() == 0) return true;
  std::vector<uint32_t> dist = RoadHopDistances(net, 0, kUnreachable - 1);
  return std::all_of(dist.begin(), dist.end(),
                     [](uint32_t d) { return d != kUnreachable; });
}

}  // namespace trendspeed
