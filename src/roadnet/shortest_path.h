// Graph traversals over the road network: road-level hop BFS (spatial
// locality for correlation mining / kNN / k-center) and node-level Dijkstra
// (trip routing for the probe fleet).

#ifndef TRENDSPEED_ROADNET_SHORTEST_PATH_H_
#define TRENDSPEED_ROADNET_SHORTEST_PATH_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"

namespace trendspeed {

inline constexpr uint32_t kUnreachable = UINT32_MAX;

/// Hop distances from `source` over the *undirected* road-adjacency graph
/// (successors + predecessors), truncated at `max_hops`. Entries beyond
/// max_hops are kUnreachable. O(V+E) within the horizon.
std::vector<uint32_t> RoadHopDistances(const RoadNetwork& net, RoadId source,
                                       uint32_t max_hops);

/// Multi-source variant: distance to the nearest of `sources`.
std::vector<uint32_t> RoadHopDistancesMulti(const RoadNetwork& net,
                                            const std::vector<RoadId>& sources,
                                            uint32_t max_hops);

/// All roads within `max_hops` of `source` (excluding source), with their
/// hop distance, in BFS order.
struct RoadHop {
  RoadId road;
  uint32_t hops;
};
std::vector<RoadHop> RoadsWithinHops(const RoadNetwork& net, RoadId source,
                                     uint32_t max_hops);

/// Node-level Dijkstra on free-flow travel time. Returns the sequence of
/// *roads* on the fastest path from `from` to `to`, or NotFound when
/// disconnected.
Result<std::vector<RoadId>> FastestPath(const RoadNetwork& net, NodeId from,
                                        NodeId to);

/// True when every road can reach every other road over undirected
/// road-adjacency (sanity check for generators).
bool IsRoadGraphConnected(const RoadNetwork& net);

}  // namespace trendspeed

#endif  // TRENDSPEED_ROADNET_SHORTEST_PATH_H_
