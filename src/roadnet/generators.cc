#include "roadnet/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace trendspeed {

namespace {
constexpr double kPi = 3.14159265358979323846;

double ClassSpeed(RoadClass c) {
  switch (c) {
    case RoadClass::kHighway:
      return 90.0;
    case RoadClass::kArterial:
      return 60.0;
    case RoadClass::kLocal:
      return 40.0;
  }
  return 40.0;
}
}  // namespace

Result<RoadNetwork> MakeGridNetwork(const GridNetworkOptions& opts) {
  if (opts.rows < 2 || opts.cols < 2) {
    return Status::InvalidArgument("grid needs at least 2x2 nodes");
  }
  if (opts.dropout < 0.0 || opts.dropout >= 0.5) {
    return Status::InvalidArgument("grid dropout must be in [0, 0.5)");
  }
  Rng rng(opts.seed);
  RoadNetwork::Builder b;
  auto node_id = [&](size_t r, size_t c) {
    return static_cast<NodeId>(r * opts.cols + c);
  };
  for (size_t r = 0; r < opts.rows; ++r) {
    for (size_t c = 0; c < opts.cols; ++c) {
      b.AddNode(static_cast<double>(c) * opts.spacing_m,
                static_cast<double>(r) * opts.spacing_m);
    }
  }
  auto is_arterial_row = [&](size_t r) {
    return opts.arterial_every > 0 && r % opts.arterial_every == 0;
  };
  for (size_t r = 0; r < opts.rows; ++r) {
    for (size_t c = 0; c < opts.cols; ++c) {
      // Horizontal edge to (r, c+1).
      if (c + 1 < opts.cols) {
        RoadClass rc =
            is_arterial_row(r) ? RoadClass::kArterial : RoadClass::kLocal;
        // Keep the frame (boundary + arterials) intact so the network stays
        // connected under dropout.
        bool droppable = !is_arterial_row(r) && r > 0 && r + 1 < opts.rows;
        if (!droppable || !rng.NextBool(opts.dropout)) {
          b.AddTwoWay(node_id(r, c), node_id(r, c + 1), rc, ClassSpeed(rc));
        }
      }
      // Vertical edge to (r+1, c).
      if (r + 1 < opts.rows) {
        bool art = opts.arterial_every > 0 && c % opts.arterial_every == 0;
        RoadClass rc = art ? RoadClass::kArterial : RoadClass::kLocal;
        bool droppable = !art && c > 0 && c + 1 < opts.cols;
        if (!droppable || !rng.NextBool(opts.dropout)) {
          b.AddTwoWay(node_id(r, c), node_id(r + 1, c), rc, ClassSpeed(rc));
        }
      }
    }
  }
  return b.Finish();
}

Result<RoadNetwork> MakeRingRadialNetwork(const RingRadialOptions& opts) {
  if (opts.num_rings < 1 || opts.num_spokes < 3) {
    return Status::InvalidArgument(
        "ring-radial needs >=1 ring and >=3 spokes");
  }
  RoadNetwork::Builder b;
  // Center node plus num_rings * num_spokes ring nodes.
  NodeId center = b.AddNode(0.0, 0.0);
  auto ring_node = [&](size_t ring, size_t spoke) {
    return static_cast<NodeId>(1 + ring * opts.num_spokes +
                               (spoke % opts.num_spokes));
  };
  for (size_t ring = 0; ring < opts.num_rings; ++ring) {
    double radius =
        opts.inner_radius_m + static_cast<double>(ring) * opts.ring_gap_m;
    for (size_t s = 0; s < opts.num_spokes; ++s) {
      double theta =
          2.0 * kPi * static_cast<double>(s) / static_cast<double>(opts.num_spokes);
      b.AddNode(radius * std::cos(theta), radius * std::sin(theta));
    }
  }
  // Ring roads: outermost `highway_rings` are highways, rest arterials.
  for (size_t ring = 0; ring < opts.num_rings; ++ring) {
    bool highway = ring + opts.highway_rings >= opts.num_rings;
    RoadClass rc = highway ? RoadClass::kHighway : RoadClass::kArterial;
    for (size_t s = 0; s < opts.num_spokes; ++s) {
      b.AddTwoWay(ring_node(ring, s), ring_node(ring, s + 1), rc,
                  ClassSpeed(rc));
    }
  }
  // Radial spokes: center -> ring0 arterial, then local/arterial outward.
  for (size_t s = 0; s < opts.num_spokes; ++s) {
    b.AddTwoWay(center, ring_node(0, s), RoadClass::kArterial,
                ClassSpeed(RoadClass::kArterial));
    for (size_t ring = 0; ring + 1 < opts.num_rings; ++ring) {
      RoadClass rc =
          (s % 2 == 0) ? RoadClass::kArterial : RoadClass::kLocal;
      b.AddTwoWay(ring_node(ring, s), ring_node(ring + 1, s), rc,
                  ClassSpeed(rc));
    }
  }
  // Diagonal connectors inside every other cell add local-street texture.
  if (opts.with_connectors) {
    Rng rng(opts.seed);
    for (size_t ring = 0; ring + 1 < opts.num_rings; ++ring) {
      for (size_t s = 0; s < opts.num_spokes; s += 2) {
        if (rng.NextBool(0.7)) {
          b.AddTwoWay(ring_node(ring, s), ring_node(ring + 1, s + 1),
                      RoadClass::kLocal, ClassSpeed(RoadClass::kLocal));
        }
      }
    }
  }
  return b.Finish();
}

Result<RoadNetwork> MakeCompositeCity(const CompositeCityOptions& opts) {
  // Build the two districts standalone first (validating their options),
  // then replay them into one builder with the suburb translated east.
  TS_ASSIGN_OR_RETURN(RoadNetwork core, MakeRingRadialNetwork(opts.core));
  TS_ASSIGN_OR_RETURN(RoadNetwork suburb, MakeGridNetwork(opts.suburb));
  if (opts.num_links == 0) {
    return Status::InvalidArgument("composite city needs >= 1 link");
  }

  double core_radius =
      opts.core.inner_radius_m +
      static_cast<double>(opts.core.num_rings - 1) * opts.core.ring_gap_m;
  double offset_x = core_radius + opts.suburb_gap_m;
  // Center the suburb vertically on the core.
  double suburb_height =
      static_cast<double>(opts.suburb.rows - 1) * opts.suburb.spacing_m;
  double offset_y = -suburb_height / 2.0;

  RoadNetwork::Builder b;
  for (NodeId i = 0; i < core.num_nodes(); ++i) {
    b.AddNode(core.node(i).x, core.node(i).y);
  }
  NodeId suburb_base = static_cast<NodeId>(core.num_nodes());
  for (NodeId i = 0; i < suburb.num_nodes(); ++i) {
    b.AddNode(suburb.node(i).x + offset_x, suburb.node(i).y + offset_y);
  }
  for (RoadId r = 0; r < core.num_roads(); ++r) {
    const Road& road = core.road(r);
    b.AddRoad(road.from, road.to, road.road_class, road.free_flow_kmh);
  }
  for (RoadId r = 0; r < suburb.num_roads(); ++r) {
    const Road& road = suburb.road(r);
    b.AddRoad(suburb_base + road.from, suburb_base + road.to, road.road_class,
              road.free_flow_kmh);
  }
  // Highway links: eastmost core nodes to the suburb's west-column nodes,
  // spread vertically.
  for (size_t link = 0; link < opts.num_links; ++link) {
    // Suburb west column, rows spread across the grid.
    size_t row = opts.suburb.rows == 1
                     ? 0
                     : link * (opts.suburb.rows - 1) /
                           std::max<size_t>(1, opts.num_links - 1);
    NodeId west = suburb_base + static_cast<NodeId>(row * opts.suburb.cols);
    // Closest core node to that suburb gate.
    NodeId gate = 0;
    double best = 1e300;
    for (NodeId i = 0; i < core.num_nodes(); ++i) {
      double dx = core.node(i).x - (0.0 + offset_x);
      double dy = core.node(i).y -
                  (static_cast<double>(row) * opts.suburb.spacing_m + offset_y);
      double d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        gate = i;
      }
    }
    b.AddTwoWay(gate, west, RoadClass::kHighway, 90.0);
  }
  return b.Finish();
}

Result<RoadNetwork> MakeRandomPlanarNetwork(const RandomPlanarOptions& opts) {
  if (opts.num_nodes < 2) {
    return Status::InvalidArgument("random network needs >=2 nodes");
  }
  if (opts.k_nearest < 1) {
    return Status::InvalidArgument("k_nearest must be >=1");
  }
  Rng rng(opts.seed);
  std::vector<Node> pts(opts.num_nodes);
  for (auto& p : pts) {
    p.x = rng.Uniform(0.0, opts.extent_m);
    p.y = rng.Uniform(0.0, opts.extent_m);
  }
  RoadNetwork::Builder b;
  for (const auto& p : pts) b.AddNode(p.x, p.y);

  auto dist2 = [&](size_t i, size_t j) {
    double dx = pts[i].x - pts[j].x;
    double dy = pts[i].y - pts[j].y;
    return dx * dx + dy * dy;
  };
  // Deduplicate undirected pairs so AddTwoWay runs once per pair.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < opts.num_nodes; ++i) {
    std::vector<size_t> order;
    order.reserve(opts.num_nodes - 1);
    for (size_t j = 0; j < opts.num_nodes; ++j) {
      if (j != i) order.push_back(j);
    }
    size_t k = std::min(opts.k_nearest, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(),
                      [&](size_t a, size_t c) { return dist2(i, a) < dist2(i, c); });
    for (size_t t = 0; t < k; ++t) {
      uint32_t a = static_cast<uint32_t>(std::min(i, order[t]));
      uint32_t c = static_cast<uint32_t>(std::max(i, order[t]));
      pairs.emplace_back(a, c);
    }
  }
  // Spanning chain over an x-sorted order keeps the graph connected.
  std::vector<size_t> xorder(opts.num_nodes);
  for (size_t i = 0; i < opts.num_nodes; ++i) xorder[i] = i;
  std::sort(xorder.begin(), xorder.end(),
            [&](size_t a, size_t c) { return pts[a].x < pts[c].x; });
  for (size_t i = 0; i + 1 < xorder.size(); ++i) {
    uint32_t a = static_cast<uint32_t>(std::min(xorder[i], xorder[i + 1]));
    uint32_t c = static_cast<uint32_t>(std::max(xorder[i], xorder[i + 1]));
    pairs.emplace_back(a, c);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, c] : pairs) {
    RoadClass rc = rng.NextBool(0.2) ? RoadClass::kArterial : RoadClass::kLocal;
    b.AddTwoWay(a, c, rc, ClassSpeed(rc));
  }
  return b.Finish();
}

}  // namespace trendspeed
