// Road network model: intersections (nodes) and directed road segments, with
// CSR adjacency over both nodes and roads.
//
// The inference stack works at the *road* granularity: two roads are adjacent
// when one can be driven immediately after the other (head of one is the tail
// of the next). Road-level hop distance over that adjacency is the spatial
// locality notion used by correlation mining, kNN, and seed selection.

#ifndef TRENDSPEED_ROADNET_ROAD_NETWORK_H_
#define TRENDSPEED_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace trendspeed {

using NodeId = uint32_t;
using RoadId = uint32_t;

inline constexpr RoadId kInvalidRoad = UINT32_MAX;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Functional class of a road segment; drives free-flow speed and congestion
/// profile defaults.
enum class RoadClass : uint8_t { kHighway = 0, kArterial = 1, kLocal = 2 };

const char* RoadClassName(RoadClass c);

/// Planar intersection position (meters, local tangent plane).
struct Node {
  double x = 0.0;
  double y = 0.0;
};

/// One directed road segment.
struct Road {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double length_m = 0.0;
  double free_flow_kmh = 50.0;
  RoadClass road_class = RoadClass::kLocal;
};

/// Immutable road network; construct through Builder. Default-constructed
/// instances are empty and only useful as assignment targets.
class RoadNetwork {
 public:
  RoadNetwork() = default;
  /// Incremental construction helper; Finish() validates and freezes.
  class Builder {
   public:
    NodeId AddNode(double x, double y);
    RoadId AddRoad(NodeId from, NodeId to, RoadClass road_class,
                   double free_flow_kmh);
    /// Adds both directions; returns the forward id (reverse is id+1).
    RoadId AddTwoWay(NodeId a, NodeId b, RoadClass road_class,
                     double free_flow_kmh);

    size_t num_nodes() const { return nodes_.size(); }
    size_t num_roads() const { return roads_.size(); }

    /// Validates endpoints and builds adjacency indexes. The builder is left
    /// empty afterwards.
    Result<RoadNetwork> Finish();

   private:
    std::vector<Node> nodes_;
    std::vector<Road> roads_;
  };

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_roads() const { return roads_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Road& road(RoadId id) const { return roads_[id]; }
  const std::vector<Road>& roads() const { return roads_; }

  /// Roads leaving `node`.
  std::span<const RoadId> OutRoads(NodeId node) const;
  /// Roads entering `node`.
  std::span<const RoadId> InRoads(NodeId node) const;

  /// Roads drivable immediately after `road` (successors) and immediately
  /// before it (predecessors) — the directed road-adjacency used by the
  /// correlation graph. Excludes the exact reverse twin of `road`, which
  /// shares both endpoints but is not a continuation.
  std::span<const RoadId> RoadSuccessors(RoadId road) const;
  std::span<const RoadId> RoadPredecessors(RoadId road) const;

  /// The opposite direction of the same physical street (same endpoints,
  /// swapped), or kInvalidRoad for one-way segments. Twins are excluded
  /// from successor/predecessor lists but are spatially coincident, so
  /// hop-distance searches treat them as adjacent.
  RoadId ReverseTwin(RoadId id) const { return twin_[id]; }

  /// Free-flow traversal time in seconds.
  double FreeFlowSeconds(RoadId id) const;

  /// Euclidean midpoint of the segment (for kNN-style geometric queries).
  Node Midpoint(RoadId id) const;

  /// Number of roads per class, indexed by static_cast<size_t>(RoadClass).
  std::vector<size_t> CountByClass() const;

 private:
  friend class Builder;

  struct Csr {
    std::vector<uint32_t> offsets;  // size+1 entries
    std::vector<RoadId> targets;
    std::span<const RoadId> Row(size_t i) const {
      return {targets.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }
  };

  std::vector<Node> nodes_;
  std::vector<Road> roads_;
  std::vector<RoadId> twin_;
  Csr node_out_;
  Csr node_in_;
  Csr road_succ_;
  Csr road_pred_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_ROADNET_ROAD_NETWORK_H_
