#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trendspeed {

const char* RoadClassName(RoadClass c) {
  switch (c) {
    case RoadClass::kHighway:
      return "highway";
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kLocal:
      return "local";
  }
  return "?";
}

NodeId RoadNetwork::Builder::AddNode(double x, double y) {
  nodes_.push_back(Node{x, y});
  return static_cast<NodeId>(nodes_.size() - 1);
}

RoadId RoadNetwork::Builder::AddRoad(NodeId from, NodeId to,
                                     RoadClass road_class,
                                     double free_flow_kmh) {
  TS_CHECK_LT(from, nodes_.size());
  TS_CHECK_LT(to, nodes_.size());
  double dx = nodes_[to].x - nodes_[from].x;
  double dy = nodes_[to].y - nodes_[from].y;
  Road r;
  r.from = from;
  r.to = to;
  r.length_m = std::sqrt(dx * dx + dy * dy);
  r.road_class = road_class;
  r.free_flow_kmh = free_flow_kmh;
  roads_.push_back(r);
  return static_cast<RoadId>(roads_.size() - 1);
}

RoadId RoadNetwork::Builder::AddTwoWay(NodeId a, NodeId b,
                                       RoadClass road_class,
                                       double free_flow_kmh) {
  RoadId fwd = AddRoad(a, b, road_class, free_flow_kmh);
  AddRoad(b, a, road_class, free_flow_kmh);
  return fwd;
}

namespace {

// Builds a CSR from (source, target) pairs with `n` sources.
void BuildCsr(size_t n, const std::vector<std::pair<uint32_t, RoadId>>& edges,
              std::vector<uint32_t>* offsets, std::vector<RoadId>* targets) {
  offsets->assign(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++(*offsets)[src + 1];
  }
  for (size_t i = 1; i <= n; ++i) (*offsets)[i] += (*offsets)[i - 1];
  targets->resize(edges.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const auto& [src, dst] : edges) {
    (*targets)[cursor[src]++] = dst;
  }
}

}  // namespace

Result<RoadNetwork> RoadNetwork::Builder::Finish() {
  for (size_t i = 0; i < roads_.size(); ++i) {
    const Road& r = roads_[i];
    if (r.from >= nodes_.size() || r.to >= nodes_.size()) {
      return Status::InvalidArgument("road " + std::to_string(i) +
                                     " references missing node");
    }
    if (r.from == r.to) {
      return Status::InvalidArgument("road " + std::to_string(i) +
                                     " is a self-loop");
    }
    if (r.free_flow_kmh <= 0.0) {
      return Status::InvalidArgument("road " + std::to_string(i) +
                                     " has non-positive free-flow speed");
    }
  }

  RoadNetwork net;
  net.nodes_ = std::move(nodes_);
  net.roads_ = std::move(roads_);
  nodes_.clear();
  roads_.clear();

  std::vector<std::pair<uint32_t, RoadId>> out_edges, in_edges;
  out_edges.reserve(net.roads_.size());
  in_edges.reserve(net.roads_.size());
  for (RoadId i = 0; i < net.roads_.size(); ++i) {
    out_edges.emplace_back(net.roads_[i].from, i);
    in_edges.emplace_back(net.roads_[i].to, i);
  }
  BuildCsr(net.nodes_.size(), out_edges, &net.node_out_.offsets,
           &net.node_out_.targets);
  BuildCsr(net.nodes_.size(), in_edges, &net.node_in_.offsets,
           &net.node_in_.targets);

  // Reverse-twin lookup (first matching opposite road wins).
  net.twin_.assign(net.roads_.size(), kInvalidRoad);
  for (RoadId i = 0; i < net.roads_.size(); ++i) {
    if (net.twin_[i] != kInvalidRoad) continue;
    const Road& r = net.roads_[i];
    for (RoadId j : net.node_out_.Row(r.to)) {
      if (j != i && net.roads_[j].to == r.from &&
          net.twin_[j] == kInvalidRoad) {
        net.twin_[i] = j;
        net.twin_[j] = i;
        break;
      }
    }
  }

  // Road adjacency: successor roads start where this road ends; skip the
  // reverse twin (same endpoints swapped), which would make every two-way
  // street its own neighbour.
  std::vector<std::pair<uint32_t, RoadId>> succ_edges, pred_edges;
  for (RoadId i = 0; i < net.roads_.size(); ++i) {
    const Road& r = net.roads_[i];
    for (RoadId j : net.node_out_.Row(r.to)) {
      const Road& s = net.roads_[j];
      if (s.to == r.from && s.from == r.to) continue;  // reverse twin
      succ_edges.emplace_back(i, j);
      pred_edges.emplace_back(j, i);
    }
  }
  BuildCsr(net.roads_.size(), succ_edges, &net.road_succ_.offsets,
           &net.road_succ_.targets);
  BuildCsr(net.roads_.size(), pred_edges, &net.road_pred_.offsets,
           &net.road_pred_.targets);
  return net;
}

std::span<const RoadId> RoadNetwork::OutRoads(NodeId node) const {
  TS_CHECK_LT(node, nodes_.size());
  return node_out_.Row(node);
}

std::span<const RoadId> RoadNetwork::InRoads(NodeId node) const {
  TS_CHECK_LT(node, nodes_.size());
  return node_in_.Row(node);
}

std::span<const RoadId> RoadNetwork::RoadSuccessors(RoadId road) const {
  TS_CHECK_LT(road, roads_.size());
  return road_succ_.Row(road);
}

std::span<const RoadId> RoadNetwork::RoadPredecessors(RoadId road) const {
  TS_CHECK_LT(road, roads_.size());
  return road_pred_.Row(road);
}

double RoadNetwork::FreeFlowSeconds(RoadId id) const {
  const Road& r = road(id);
  return r.length_m / (r.free_flow_kmh / 3.6);
}

Node RoadNetwork::Midpoint(RoadId id) const {
  const Road& r = road(id);
  const Node& a = node(r.from);
  const Node& b = node(r.to);
  return Node{(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

std::vector<size_t> RoadNetwork::CountByClass() const {
  std::vector<size_t> counts(3, 0);
  for (const Road& r : roads_) ++counts[static_cast<size_t>(r.road_class)];
  return counts;
}

}  // namespace trendspeed
