// Graph partitioning for the sharded metropolitan-scale BP engine.
//
// A metropolitan correlation graph is naturally district-shaped: dense
// correlation inside a district, a thin band of cut edges where arterials
// cross district boundaries, and whole disconnected components for
// satellite towns. ShardPlan exploits that shape: connected components are
// kept intact wherever they fit a shard, oversized components are split by
// BFS growth into contiguous pieces, and a greedy Kernighan-Lin-style
// refinement then moves individual boundary vertices to reduce the number
// of cut edges under a balance constraint.
//
// The plan is a *total function* from variables to shards — every road is
// owned by exactly one shard (ShardPlan::Validate enforces it). This is
// what makes per-road attribution unambiguous downstream: an observation
// for a road whose correlation neighbours span two shards still lands in
// exactly one owner shard, so serving-layer dedup (DedupPolicy) never
// drops or double-counts a cut-edge road. docs/sharding.md documents the
// algorithm and the protocol built on top of this plan.

#ifndef TRENDSPEED_SHARD_SHARDING_H_
#define TRENDSPEED_SHARD_SHARDING_H_

#include <cstdint>
#include <vector>

#include "corr/correlation_graph.h"
#include "trend/belief_propagation.h"
#include "util/status.h"

namespace trendspeed {

/// Knobs for the sharded BP engine (validated; docs/sharding.md has the
/// full reference). Default-constructed options disable sharding entirely:
/// the estimator then runs the flat single-graph BP path bit for bit.
struct ShardingOptions {
  /// Number of district shards to partition the correlation graph into.
  /// 0 and 1 both mean "sharding off" (the flat path); >= 2 enables the
  /// sharded engine. Clamped to the variable count at build time.
  uint32_t num_shards = 0;
  /// Upper bound on boundary-message exchange rounds per slot. Each round
  /// is one concurrent per-shard BP solve followed by a halo exchange;
  /// rounds after the first warm-start from the shard's own fixed point
  /// and touch mostly the boundary halo. The loop exits early once the
  /// exchange residual falls below the tolerance.
  uint32_t max_exchange_rounds = 8;
  /// Convergence threshold on the halo exchange: the largest change of any
  /// ghost potential entry between rounds. 0 (default) inherits
  /// BpOptions::tol at inference time.
  double exchange_tol = 0.0;
  /// Balance slack: no shard may own more than
  /// ceil(n / num_shards) * (1 + balance_slack) variables. In [0, 1].
  double balance_slack = 0.2;
  /// Greedy boundary-refinement passes over all vertices (0 disables
  /// refinement; the component/BFS split is then final).
  uint32_t refine_passes = 2;

  bool enabled() const { return num_shards >= 2; }
  Status Validate() const;
};

/// The partition: an owner shard per variable plus its inverse and the
/// edge-cut statistics. Immutable once built.
struct ShardPlan {
  /// Effective shard count (requested count clamped to the variable count;
  /// at least 1).
  uint32_t num_shards = 1;
  /// Owner shard per variable — a total function: every variable appears
  /// in exactly one shard's member list.
  std::vector<uint32_t> shard_of;
  /// Inverse mapping; members[s] is sorted ascending by global id.
  std::vector<std::vector<uint32_t>> members;
  /// Undirected edges whose endpoints land in different shards.
  size_t cut_edges = 0;
  /// All undirected edges.
  size_t total_edges = 0;

  double CutEdgeFraction() const {
    return total_edges == 0
               ? 0.0
               : static_cast<double>(cut_edges) /
                     static_cast<double>(total_edges);
  }
  size_t LargestShard() const;

  /// Checks the total-function invariant (shard_of sized to `num_vars`,
  /// every entry < num_shards, members consistent with shard_of).
  Status Validate(size_t num_vars) const;

  /// Partitions the flattened BP structure (the exact topology inference
  /// runs on). `opts` must validate.
  static ShardPlan Build(const BpGraph& graph, const ShardingOptions& opts);
  /// Convenience overload: partitions the correlation graph directly (same
  /// topology as the BP structure built from it).
  static ShardPlan Build(const CorrelationGraph& graph,
                         const ShardingOptions& opts);
};

}  // namespace trendspeed

#endif  // TRENDSPEED_SHARD_SHARDING_H_
