// ShardedBpEngine: per-district BP with a boundary halo of ghost variables.
//
// The flat BP path solves one city-sized message-passing problem per slot;
// its latency is bounded by the whole graph. This engine splits the graph
// by a ShardPlan, builds an independent BpGraph per shard (each with its
// own CSR and, when compiled in, SoA mirror — the same layouts the flat
// kernels consume), and solves the shards concurrently on the process-wide
// ThreadPool. Per-slot latency is then bounded by the largest shard plus
// a few cheap boundary-exchange rounds.
//
// Halo protocol (docs/sharding.md): every directed cut edge u -> v (u and
// v owned by different shards) materializes a degree-1 *ghost* of u inside
// v's shard, carrying the original edge compatibility. Because the ghost
// has exactly one neighbour, its outgoing message is determined entirely
// by its node potential — so after each round the owning shard computes
// u's *cavity belief* with respect to that edge (potential times all
// incoming messages except the one arriving over the cut edge) and writes
// it into the ghost's potential slot. The ghost's locally computed message
// then equals the exact global BP message, which makes the fixed point of
// the sharded system identical to unsharded BP; truncated runs agree
// within the documented tolerance instead (see docs/sharding.md).
//
// Rounds are barriered and ghost writes are disjoint, so results are
// deterministic for every thread count. Rounds after the first reuse each
// shard's own BpState: only the halo changed, so they are warm runs whose
// active set is the boundary neighbourhood. Caller-provided states extend
// the same warm start across slots.

#ifndef TRENDSPEED_SHARD_SHARDED_BP_H_
#define TRENDSPEED_SHARD_SHARDED_BP_H_

#include <cstdint>
#include <vector>

#include "obs/flight.h"
#include "shard/sharding.h"
#include "trend/belief_propagation.h"
#include "util/status.h"

namespace trendspeed {

struct ShardedBpResult {
  /// Marginal P(x_v = up) per global variable, assembled from the owner
  /// shards (every variable has exactly one).
  std::vector<double> p_up;
  /// All shards converged in the final round AND the halo-exchange
  /// residual fell below the exchange tolerance.
  bool converged = false;
  /// Boundary-exchange rounds executed (>= 1; 1 when the partition has no
  /// cut edges or the halo settled immediately).
  uint32_t exchange_rounds = 0;
  /// Largest change of any ghost potential entry in the final exchange.
  double exchange_residual = 0.0;
  /// Sums over all shards and rounds (same semantics as BpResult).
  size_t active_vars = 0;
  uint64_t message_updates = 0;
  /// Wall time each shard spent in its BP solves, summed over rounds. The
  /// max entry is the per-slot critical path on a machine with >= one core
  /// per shard.
  std::vector<double> shard_sweep_ms;

  double LargestShardSweepMs() const {
    double largest = 0.0;
    for (double ms : shard_sweep_ms) largest = std::max(largest, ms);
    return largest;
  }
};

class ShardedBpEngine {
 public:
  /// Partitions `graph` and builds the per-shard structures (own CSR + SoA
  /// per shard, ghosts appended after the owned variables). `opts` must
  /// validate and have num_shards >= 2. The source graph is only read
  /// during Build.
  static Result<ShardedBpEngine> Build(const BpGraph& graph,
                                       const ShardingOptions& opts);

  /// One sharded inference. `pot` is the global effective-potential vector
  /// (2 per variable, exactly what InferMarginalsBpFlat consumes).
  /// `states` (optional) carries per-shard warm-start state across slots:
  /// resized to num_shards() on first use, invalid entries run cold —
  /// identical contract to the flat stateful overload, per shard. Pass
  /// null for slot-independent runs. `opts.metrics`/`opts.trace` record
  /// the trendspeed_shard_* series and a "shard/infer" span. `flight` (the
  /// serving slot's flight-recorder hookup, default detached) additionally
  /// records per-round `bp_solve` / `exchange` spans on the calling thread
  /// and one `shard_solve` span per shard on whichever pool worker ran it.
  ShardedBpResult Infer(const std::vector<double>& pot, const BpOptions& opts,
                        std::vector<BpState>* states = nullptr,
                        const obs::FlightSink& flight = {}) const;

  const ShardPlan& plan() const { return plan_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_vars() const { return num_vars_; }
  /// Per-shard structure (owned variables first, then ghosts) — exposed
  /// for tests and benches.
  const BpGraph& shard_graph(size_t s) const { return shards_[s].graph; }
  size_t shard_owned(size_t s) const { return shards_[s].owned.size(); }
  size_t shard_ghosts(size_t s) const {
    return shards_[s].graph.num_vars - shards_[s].owned.size();
  }

 private:
  struct Shard {
    /// Local structure: variables [0, owned.size()) are the owned globals
    /// (sorted ascending), [owned.size(), num_vars) are ghosts.
    BpGraph graph;
    /// Global id per owned local variable.
    std::vector<uint32_t> owned;
    /// Global id of the remote owner behind each ghost (indexed from 0 =
    /// first ghost). Used to seed ghost potentials from the global prior.
    std::vector<uint32_t> ghost_source;
  };

  /// One directed cut edge u -> v: the producer (u's shard) computes u's
  /// cavity belief excluding this edge; the consumer (v's shard) receives
  /// it as the potential of u's ghost.
  struct CutLink {
    uint32_t src_shard = 0;
    uint32_t src_local = 0;  ///< u's local index in src_shard
    uint32_t src_slot = 0;   ///< directed slot u -> ghost(v) in src_shard
    uint32_t dst_shard = 0;
    uint32_t dst_ghost = 0;  ///< ghost(u)'s local index in dst_shard
  };

  ShardedBpEngine() = default;

  size_t num_vars_ = 0;
  ShardPlan plan_;
  std::vector<Shard> shards_;
  std::vector<CutLink> links_;
  ShardingOptions opts_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_SHARD_SHARDED_BP_H_
