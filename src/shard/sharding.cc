#include "shard/sharding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trendspeed {

Status ShardingOptions::Validate() const {
  // A shard count beyond any plausible machine is a units mistake, not a
  // 100k-district metropolis.
  constexpr uint32_t kMaxShards = 4096;
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument("sharding.num_shards implausibly large");
  }
  if (enabled() && max_exchange_rounds == 0) {
    return Status::InvalidArgument(
        "sharding.max_exchange_rounds must be positive");
  }
  if (!(exchange_tol >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("sharding.exchange_tol must be >= 0");
  }
  if (!(balance_slack >= 0.0) || !(balance_slack <= 1.0)) {  // rejects NaN
    return Status::InvalidArgument("sharding.balance_slack must be in [0, 1]");
  }
  constexpr uint32_t kMaxRefinePasses = 64;
  if (refine_passes > kMaxRefinePasses) {
    return Status::InvalidArgument("sharding.refine_passes implausibly large");
  }
  return Status::OK();
}

size_t ShardPlan::LargestShard() const {
  size_t largest = 0;
  for (const std::vector<uint32_t>& m : members) {
    largest = std::max(largest, m.size());
  }
  return largest;
}

Status ShardPlan::Validate(size_t num_vars) const {
  if (num_shards == 0) {
    return Status::Internal("shard plan has zero shards");
  }
  if (shard_of.size() != num_vars) {
    return Status::Internal("shard plan size mismatch");
  }
  if (members.size() != num_shards) {
    return Status::Internal("shard plan member-list count mismatch");
  }
  // Total-function check: every variable owned exactly once, and the
  // inverse mapping agrees. `seen` catches both drops and double counts.
  std::vector<uint8_t> seen(num_vars, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    for (uint32_t v : members[s]) {
      if (v >= num_vars) {
        return Status::Internal("shard member out of range");
      }
      if (seen[v]) {
        return Status::Internal("variable owned by two shards");
      }
      seen[v] = 1;
      if (shard_of[v] != s) {
        return Status::Internal("shard_of / members disagree");
      }
    }
  }
  for (size_t v = 0; v < num_vars; ++v) {
    if (!seen[v]) {
      return Status::Internal("variable owned by no shard");
    }
  }
  return Status::OK();
}

namespace {

// Adjacency view over either source graph: n vertices, CSR neighbour
// lists. Both overloads of Build flatten into this before partitioning so
// the algorithm exists once.
struct Adjacency {
  size_t n = 0;
  std::vector<size_t> off;
  std::vector<uint32_t> to;
};

Adjacency FromBpGraph(const BpGraph& g) {
  Adjacency a;
  a.n = g.num_vars;
  a.off = g.off;
  a.to = g.to;
  return a;
}

Adjacency FromCorrGraph(const CorrelationGraph& g) {
  Adjacency a;
  a.n = g.num_roads();
  a.off.assign(a.n + 1, 0);
  for (RoadId v = 0; v < a.n; ++v) {
    a.off[v + 1] = a.off[v] + g.Neighbors(v).size();
  }
  a.to.reserve(a.off[a.n]);
  for (RoadId v = 0; v < a.n; ++v) {
    for (const CorrEdge& e : g.Neighbors(v)) {
      a.to.push_back(e.neighbor);
    }
  }
  return a;
}

ShardPlan BuildFromAdjacency(const Adjacency& adj,
                             const ShardingOptions& opts) {
  ShardPlan plan;
  size_t n = adj.n;
  uint32_t shards = std::max<uint32_t>(opts.num_shards, 1);
  if (n > 0) {
    shards = static_cast<uint32_t>(
        std::min<size_t>(shards, n));
  }
  plan.num_shards = shards;
  plan.shard_of.assign(n, 0);
  plan.members.assign(shards, {});
  plan.total_edges = adj.off.empty() ? 0 : adj.off[n] / 2;
  if (n == 0 || shards == 1) {
    for (size_t v = 0; v < n; ++v) {
      plan.members[0].push_back(static_cast<uint32_t>(v));
    }
    return plan;
  }

  size_t ideal = (n + shards - 1) / shards;
  // Capacity every stage respects; >= ideal so a perfectly balanced
  // assignment is always feasible even at slack 0.
  size_t cap = std::max<size_t>(
      ideal, static_cast<size_t>(std::ceil(
                 static_cast<double>(ideal) * (1.0 + opts.balance_slack))));

  // Stage 1: contiguous pieces. Each connected component that fits the
  // target piece size stays whole; larger ones are grown breadth-first
  // into pieces of ~ideal vertices, so the split follows the district
  // geometry instead of cutting randomly.
  std::vector<uint32_t> piece_of(n, UINT32_MAX);
  std::vector<std::vector<uint32_t>> pieces;
  std::vector<uint32_t> queue;
  for (size_t root = 0; root < n; ++root) {
    if (piece_of[root] != UINT32_MAX) continue;
    // BFS one whole component from `root`, slicing it into pieces as the
    // frontier advances. Deterministic: neighbour order is the CSR order.
    uint32_t piece = static_cast<uint32_t>(pieces.size());
    pieces.emplace_back();
    queue.clear();
    queue.push_back(static_cast<uint32_t>(root));
    piece_of[root] = piece;
    size_t head = 0;
    while (head < queue.size()) {
      uint32_t v = queue[head++];
      if (pieces[piece].size() >= ideal) {
        piece = static_cast<uint32_t>(pieces.size());
        pieces.emplace_back();
      }
      piece_of[v] = piece;
      pieces[piece].push_back(v);
      for (size_t k = adj.off[v]; k < adj.off[v + 1]; ++k) {
        uint32_t u = adj.to[k];
        if (piece_of[u] == UINT32_MAX) {
          piece_of[u] = piece;  // reserved; final piece set on dequeue
          queue.push_back(u);
        }
      }
    }
  }

  // Stage 2: pack pieces onto shards, largest first into the least-loaded
  // shard (ties broken toward the lowest shard id — deterministic).
  std::vector<uint32_t> order(pieces.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pieces[a].size() > pieces[b].size();
  });
  std::vector<size_t> load(shards, 0);
  for (uint32_t p : order) {
    uint32_t best = 0;
    for (uint32_t s = 1; s < shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    load[best] += pieces[p].size();
    for (uint32_t v : pieces[p]) {
      plan.shard_of[v] = best;
    }
  }

  // Stage 3: greedy boundary refinement (single-vertex KL-style moves).
  // A vertex moves to the neighbouring shard holding most of its edges
  // when that strictly reduces the cut and respects the balance cap.
  std::vector<size_t> cnt(shards, 0);
  for (uint32_t pass = 0; pass < opts.refine_passes; ++pass) {
    bool moved = false;
    for (size_t v = 0; v < n; ++v) {
      size_t deg = adj.off[v + 1] - adj.off[v];
      if (deg == 0) continue;
      uint32_t s = plan.shard_of[v];
      if (load[s] <= 1) continue;  // never empty a shard
      std::fill(cnt.begin(), cnt.end(), 0);
      bool boundary = false;
      for (size_t k = adj.off[v]; k < adj.off[v + 1]; ++k) {
        uint32_t t = plan.shard_of[adj.to[k]];
        ++cnt[t];
        boundary |= (t != s);
      }
      if (!boundary) continue;
      uint32_t best = s;
      size_t best_cnt = cnt[s];
      for (uint32_t t = 0; t < shards; ++t) {
        if (t == s || load[t] + 1 > cap) continue;
        if (cnt[t] > best_cnt) {  // strict: ties stay put (deterministic)
          best = t;
          best_cnt = cnt[t];
        }
      }
      if (best != s) {
        plan.shard_of[v] = best;
        --load[s];
        ++load[best];
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Finalize the inverse mapping and the edge-cut statistics.
  for (size_t v = 0; v < n; ++v) {
    plan.members[plan.shard_of[v]].push_back(static_cast<uint32_t>(v));
  }
  size_t cut_dir = 0;
  for (size_t v = 0; v < n; ++v) {
    for (size_t k = adj.off[v]; k < adj.off[v + 1]; ++k) {
      if (plan.shard_of[adj.to[k]] != plan.shard_of[v]) ++cut_dir;
    }
  }
  plan.cut_edges = cut_dir / 2;
  return plan;
}

}  // namespace

ShardPlan ShardPlan::Build(const BpGraph& graph, const ShardingOptions& opts) {
  return BuildFromAdjacency(FromBpGraph(graph), opts);
}

ShardPlan ShardPlan::Build(const CorrelationGraph& graph,
                           const ShardingOptions& opts) {
  return BuildFromAdjacency(FromCorrGraph(graph), opts);
}

}  // namespace trendspeed
