#include "shard/sharded_bp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/catalog.h"
#include "trend/factor_graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace trendspeed {

namespace {

// Same power-of-two rescale band the flat BP cavity computation uses
// (trend/belief_propagation.cc): incoming messages are normalized (<= 1),
// so long products only ever shrink; rescaling both entries by 2^256
// whenever both drop below 2^-256 preserves their ratio exactly.
constexpr double kRescaleLo = 0x1p-256;
constexpr double kRescaleUp = 0x1p+256;

// Normalizes (c0, c1) into a probability pair; degenerate inputs (all-zero
// or non-finite) fall back to uniform like the flat path's belief guard.
inline void NormalizePair(double* c0, double* c1) {
  double z = *c0 + *c1;
  if (z > 0.0 && std::isfinite(z)) {
    *c0 /= z;
    *c1 /= z;
  } else {
    *c0 = 0.5;
    *c1 = 0.5;
  }
}

}  // namespace

Result<ShardedBpEngine> ShardedBpEngine::Build(const BpGraph& graph,
                                               const ShardingOptions& opts) {
  TS_RETURN_NOT_OK(opts.Validate());
  if (!opts.enabled()) {
    return Status::InvalidArgument(
        "sharded BP engine requires sharding.num_shards >= 2");
  }
  ShardedBpEngine engine;
  engine.num_vars_ = graph.num_vars;
  engine.opts_ = opts;
  engine.plan_ = ShardPlan::Build(graph, opts);
  TS_RETURN_NOT_OK(engine.plan_.Validate(graph.num_vars));

  const ShardPlan& plan = engine.plan_;
  size_t shards = plan.num_shards;
  engine.shards_.resize(shards);

  // Global -> shard-local index for owned variables.
  std::vector<uint32_t> local_of(graph.num_vars, 0);
  for (size_t s = 0; s < shards; ++s) {
    engine.shards_[s].owned = plan.members[s];
    for (size_t i = 0; i < plan.members[s].size(); ++i) {
      local_of[plan.members[s][i]] = static_cast<uint32_t>(i);
    }
  }

  // Ghost enumeration: one ghost per directed cut edge u -> v, living in
  // v's shard. Indexed by the *global* slot of the v -> u half so both
  // halves of an undirected cut edge can find each other's ghost below.
  size_t dir_edges = graph.to.size();
  std::vector<uint32_t> ghost_of_slot(dir_edges, UINT32_MAX);
  for (size_t s = 0; s < shards; ++s) {
    Shard& shard = engine.shards_[s];
    size_t owned = shard.owned.size();
    for (uint32_t v : shard.owned) {
      for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
        uint32_t u = graph.to[k];
        if (plan.shard_of[u] == s) continue;
        ghost_of_slot[k] =
            static_cast<uint32_t>(owned + shard.ghost_source.size());
        shard.ghost_source.push_back(u);
      }
    }
  }

  // Per-shard MRF: owned variables, ghosts, internal edges, halo edges.
  // FromMrf then derives the CSR and (when compiled in) the SoA mirror —
  // the identical layouts the flat kernels run on.
  for (size_t s = 0; s < shards; ++s) {
    Shard& shard = engine.shards_[s];
    size_t owned = shard.owned.size();
    PairwiseMrf mrf(owned + shard.ghost_source.size());
    for (uint32_t v : shard.owned) {
      for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
        uint32_t u = graph.to[k];
        // compat[4k..] is psi[x_v][x_u] — exactly AddEdge's orientation
        // for (local v, local u / ghost of u).
        double compat[2][2] = {
            {graph.compat[4 * k + 0], graph.compat[4 * k + 1]},
            {graph.compat[4 * k + 2], graph.compat[4 * k + 3]}};
        if (plan.shard_of[u] == s) {
          if (u < v) continue;  // internal edges added once
          mrf.AddEdge(local_of[v], local_of[u], compat);
        } else {
          mrf.AddEdge(local_of[v], ghost_of_slot[k], compat);
        }
      }
    }
    shard.graph = BpGraph::FromMrf(mrf);
  }

  // Cut links: for the ghost created from global slot k (v -> u, consumer
  // side), the producer is u's shard, where v appears as the ghost built
  // from the reverse slot. Find the producer's directed slot
  // u_local -> ghost(v) by scanning u's (small, degree-capped) edge list.
  for (size_t s = 0; s < shards; ++s) {
    const Shard& shard = engine.shards_[s];
    for (uint32_t v : shard.owned) {
      for (size_t k = graph.off[v]; k < graph.off[v + 1]; ++k) {
        if (ghost_of_slot[k] == UINT32_MAX) continue;
        uint32_t u = graph.to[k];
        CutLink link;
        link.dst_shard = static_cast<uint32_t>(s);
        link.dst_ghost = ghost_of_slot[k];
        link.src_shard = plan.shard_of[u];
        link.src_local = local_of[u];
        uint32_t ghost_v = ghost_of_slot[graph.rev_slot[k]];
        const BpGraph& sg = engine.shards_[link.src_shard].graph;
        uint32_t slot = UINT32_MAX;
        for (size_t j = sg.off[link.src_local];
             j < sg.off[link.src_local + 1]; ++j) {
          if (sg.to[j] == ghost_v) {
            slot = static_cast<uint32_t>(j);
            break;
          }
        }
        if (slot == UINT32_MAX) {
          return Status::Internal("cut-link producer slot not found");
        }
        link.src_slot = slot;
        engine.links_.push_back(link);
      }
    }
  }
  return engine;
}

ShardedBpResult ShardedBpEngine::Infer(const std::vector<double>& pot,
                                       const BpOptions& opts,
                                       std::vector<BpState>* states,
                                       const obs::FlightSink& flight) const {
  obs::ScopedSpan span(opts.trace, "shard/infer");
  size_t shards = shards_.size();
  ShardedBpResult result;
  result.p_up.assign(num_vars_, 0.5);
  result.shard_sweep_ms.assign(shards, 0.0);
  if (num_vars_ == 0) {
    result.converged = true;
    result.exchange_rounds = 1;
    return result;
  }

  // Warm-start states: caller-provided persists across slots; otherwise a
  // per-call scratch vector (still needed — the exchange reads the final
  // messages out of each shard's BpState).
  std::vector<BpState> scratch;
  std::vector<BpState>* st = states;
  if (st == nullptr) {
    scratch.resize(shards);
    st = &scratch;
  } else if (st->size() != shards) {
    st->clear();
    st->resize(shards);
  }

  // Per-shard potential vectors: owned entries copied from the global
  // vector, ghost entries seeded from the remote owner's normalized
  // potential (its prior belief — for clamped seeds the hard 0/1 pair, so
  // seed information crosses the boundary in round one already).
  std::vector<std::vector<double>> spot(shards);
  for (size_t s = 0; s < shards; ++s) {
    const Shard& shard = shards_[s];
    spot[s].resize(2 * shard.graph.num_vars);
    size_t owned = shard.owned.size();
    for (size_t i = 0; i < owned; ++i) {
      spot[s][2 * i] = pot[2 * shard.owned[i]];
      spot[s][2 * i + 1] = pot[2 * shard.owned[i] + 1];
    }
    for (size_t g = 0; g < shard.ghost_source.size(); ++g) {
      double c0 = pot[2 * shard.ghost_source[g]];
      double c1 = pot[2 * shard.ghost_source[g] + 1];
      NormalizePair(&c0, &c1);
      spot[s][2 * (owned + g)] = c0;
      spot[s][2 * (owned + g) + 1] = c1;
    }
  }

  double xtol = opts_.exchange_tol > 0.0 ? opts_.exchange_tol : opts.tol;
  BpOptions local_opts = opts;
  // Halo updates below the warm activation threshold would never re-enter
  // the active set, so the exchange could spin without progress; keep the
  // threshold under the exchange tolerance. (Lowering it is conservative:
  // it only ever activates more variables.)
  local_opts.warm_threshold = std::min(opts.warm_threshold, 0.5 * xtol);

  std::vector<BpResult> rr(shards);
  uint32_t max_rounds = std::max<uint32_t>(opts_.max_exchange_rounds, 1);
  double residual = 0.0;
  bool all_converged = false;
  uint32_t round = 0;
  ThreadPool& pool = ThreadPool::Global();
  while (round < max_rounds) {
    // Barriered concurrent solves: one chunk per shard; deterministic
    // because shard problems are independent and ghost writes between
    // rounds are disjoint.
    {
      // bp_solve envelopes the whole barriered region on the calling
      // thread; the per-shard spans land on whichever worker ran them and
      // stay out of the slot's causal sequence (no ctx -> path_seq 0).
      obs::FlightSpan bp_span(flight.recorder, flight.slot,
                              obs::FlightStage::kBpSolve, obs::kNoShard,
                              flight.ctx);
      pool.ParallelForChunked(
          shards, shards, [&](size_t, size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
              if (shards_[s].graph.num_vars == 0) {
                rr[s] = BpResult{};
                rr[s].converged = true;
                continue;
              }
              obs::FlightSpan shard_span(flight.recorder, flight.slot,
                                         obs::FlightStage::kShardSolve,
                                         static_cast<uint32_t>(s));
              WallTimer timer;
              rr[s] = InferMarginalsBpFlat(shards_[s].graph, spot[s],
                                           local_opts, &(*st)[s]);
              result.shard_sweep_ms[s] += timer.ElapsedMillis();
            }
          });
    }
    ++round;
    all_converged = true;
    for (size_t s = 0; s < shards; ++s) {
      all_converged &= rr[s].converged;
      result.active_vars += rr[s].active_vars;
      result.message_updates += rr[s].message_updates;
    }
    if (links_.empty()) {
      residual = 0.0;
      break;
    }
    // Halo exchange: each producer's cavity belief (potential times all
    // incoming messages except the cut edge's) becomes the consumer-side
    // ghost potential. Serial and in deterministic link order.
    obs::FlightSpan exchange_span(flight.recorder, flight.slot,
                                  obs::FlightStage::kExchange, obs::kNoShard,
                                  flight.ctx);
    residual = 0.0;
    for (const CutLink& link : links_) {
      const BpGraph& sg = shards_[link.src_shard].graph;
      const std::vector<double>& msg = (*st)[link.src_shard].msg;
      const std::vector<double>& sp = spot[link.src_shard];
      double c0 = sp[2 * link.src_local];
      double c1 = sp[2 * link.src_local + 1];
      for (size_t k = sg.off[link.src_local];
           k < sg.off[link.src_local + 1]; ++k) {
        if (k == link.src_slot) continue;
        uint32_t r = sg.rev_slot[k];
        c0 *= msg[2 * r];
        c1 *= msg[2 * r + 1];
        if (std::max(c0, c1) < kRescaleLo && std::max(c0, c1) > 0.0) {
          c0 *= kRescaleUp;
          c1 *= kRescaleUp;
        }
      }
      NormalizePair(&c0, &c1);
      std::vector<double>& dp = spot[link.dst_shard];
      size_t g = 2 * static_cast<size_t>(link.dst_ghost);
      residual = std::max(residual, std::abs(c0 - dp[g]));
      residual = std::max(residual, std::abs(c1 - dp[g + 1]));
      dp[g] = c0;
      dp[g + 1] = c1;
    }
    if (residual <= xtol) break;
  }

  result.exchange_rounds = round;
  result.exchange_residual = residual;
  result.converged = all_converged && residual <= xtol;
  for (size_t s = 0; s < shards; ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < shard.owned.size(); ++i) {
      result.p_up[shard.owned[i]] = rr[s].p_up[i];
    }
  }

  if (opts.metrics != nullptr) {
    obs::Set(obs::GetGauge(opts.metrics, obs::kShardCount),
             static_cast<double>(shards));
    obs::Set(obs::GetGauge(opts.metrics, obs::kShardCutEdgeFraction),
             plan_.CutEdgeFraction());
    obs::Observe(obs::GetHistogram(opts.metrics, obs::kShardExchangeRounds),
                 static_cast<double>(round));
    obs::Observe(obs::GetHistogram(opts.metrics, obs::kShardLargestSweepMs),
                 result.LargestShardSweepMs());
  }
  return result;
}

}  // namespace trendspeed
