// Pairwise co-trend statistics mined from the historical database.
//
// For two roads i and j, the statistics are computed over the slots where
// both were observed: the 2x2 joint distribution of their trends, the
// probability that their trends agree, and the Pearson correlation of their
// relative deviations. These numbers quantify the paper's core observation —
// correlated roads rise and fall together relative to their own norms.

#ifndef TRENDSPEED_CORR_COTREND_H_
#define TRENDSPEED_CORR_COTREND_H_

#include <cstdint>

#include "probe/history.h"
#include "roadnet/road_network.h"

namespace trendspeed {

/// Index into trend tables: 0 = down (-1), 1 = up (+1).
inline int TrendIndex(int trend) { return trend > 0 ? 1 : 0; }
inline int TrendFromIndex(int idx) { return idx == 1 ? +1 : -1; }

/// Co-trend statistics for an (i, j) road pair.
struct CoTrendStats {
  uint32_t co_observed = 0;
  /// counts[a][b]: slots with trend_i = a, trend_j = b (0=down, 1=up).
  uint32_t counts[2][2] = {{0, 0}, {0, 0}};
  /// Pearson correlation of relative deviations over co-observed slots.
  double pearson = 0.0;

  uint32_t SameCount() const { return counts[0][0] + counts[1][1]; }

  /// Laplace-smoothed P(trend_i == trend_j).
  double SameProbability() const {
    return (static_cast<double>(SameCount()) + 1.0) /
           (static_cast<double>(co_observed) + 2.0);
  }

  /// Smoothed joint P(trend_i = a, trend_j = b).
  double Joint(int a, int b) const {
    return (static_cast<double>(counts[a][b]) + 0.5) /
           (static_cast<double>(co_observed) + 2.0);
  }

  /// MRF edge compatibility psi(a, b) = joint / (marginal_a * marginal_b),
  /// clipped to [1/clip, clip]; equals 1 under independence.
  double Compatibility(int a, int b, double clip = 8.0) const;
};

/// Computes co-trend statistics for (i, j). `fallback_i`/`fallback_j` are
/// the historical-mean fallbacks (typically free-flow speed) used when a
/// bucket has no history. O(num_slots).
CoTrendStats ComputeCoTrend(const HistoricalDb& db, RoadId i, RoadId j,
                            double fallback_i, double fallback_j);

}  // namespace trendspeed

#endif  // TRENDSPEED_CORR_COTREND_H_
