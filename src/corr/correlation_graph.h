// The correlation graph: roads as vertices, strong co-trend relations as
// edges. This is the structure both inference steps and seed selection
// operate on.
//
// Construction (offline, from history): for every road, examine candidates
// within `max_hops` road-adjacency hops; keep pairs with enough co-observed
// slots and a same-trend probability above threshold; cap each vertex's
// degree by keeping its strongest edges (union over both endpoints, so the
// graph stays symmetric).

#ifndef TRENDSPEED_CORR_CORRELATION_GRAPH_H_
#define TRENDSPEED_CORR_CORRELATION_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corr/cotrend.h"
#include "probe/history.h"
#include "roadnet/road_network.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trendspeed {

struct CorrelationGraphOptions {
  /// Spatial candidate horizon over road adjacency.
  uint32_t max_hops = 2;
  /// Minimum Laplace-smoothed trend association for an edge:
  /// max(P(same), 1 - P(same)) must reach this. Values below 0.5 of
  /// P(same) denote *anti-correlated* pairs (e.g. a bottleneck and its
  /// starved downstream roads), which are just as informative as positive
  /// ones and are kept as edges with same_prob < 0.5.
  double min_same_prob = 0.62;
  /// Minimum co-observed slots for an edge to be trusted.
  uint32_t min_co_observed = 12;
  /// Per-vertex cap on incident edges (strongest kept).
  uint32_t max_degree = 10;
  /// Worker threads for mining (0 = hardware concurrency). Results are
  /// identical for any value.
  uint32_t num_threads = 0;
};

/// One directed half of an undirected correlation edge, stored per vertex.
struct CorrEdge {
  RoadId neighbor = kInvalidRoad;
  float same_prob = 0.5f;   ///< P(trend_self == trend_neighbor)
  float pearson = 0.0f;     ///< deviation correlation
  /// MRF compatibility psi[self trend][neighbor trend], 0=down 1=up.
  float compat[2][2] = {{1.f, 1.f}, {1.f, 1.f}};
};

/// Immutable symmetric correlation graph (CSR).
class CorrelationGraph {
 public:
  /// Mines the graph from history. O(n * candidates * num_slots).
  static Result<CorrelationGraph> Build(const RoadNetwork& net,
                                        const HistoricalDb& db,
                                        const CorrelationGraphOptions& opts);

  size_t num_roads() const { return offsets_.size() - 1; }
  /// Undirected edge count.
  size_t num_edges() const { return edges_.size() / 2; }
  double average_degree() const {
    return num_roads() == 0
               ? 0.0
               : static_cast<double>(edges_.size()) /
                     static_cast<double>(num_roads());
  }

  std::span<const CorrEdge> Neighbors(RoadId road) const {
    return {edges_.data() + offsets_[road],
            offsets_[road + 1] - offsets_[road]};
  }

  size_t Degree(RoadId road) const {
    return offsets_[road + 1] - offsets_[road];
  }

  /// Number of isolated vertices (no correlation edges).
  size_t CountIsolated() const;

  const CorrelationGraphOptions& options() const { return opts_; }

  /// Binary (de)serialization for trained-model files.
  void Serialize(BinaryWriter* writer) const;
  static Result<CorrelationGraph> Deserialize(BinaryReader* reader);

 private:
  CorrelationGraph() = default;

  CorrelationGraphOptions opts_;
  std::vector<uint32_t> offsets_;
  std::vector<CorrEdge> edges_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_CORR_CORRELATION_GRAPH_H_
