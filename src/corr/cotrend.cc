#include "corr/cotrend.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.h"

namespace trendspeed {

double CoTrendStats::Compatibility(int a, int b, double clip) const {
  double joint = Joint(a, b);
  double mi = Joint(a, 0) + Joint(a, 1);
  double mj = Joint(0, b) + Joint(1, b);
  double psi = joint / (mi * mj);
  return std::clamp(psi, 1.0 / clip, clip);
}

CoTrendStats ComputeCoTrend(const HistoricalDb& db, RoadId i, RoadId j,
                            double fallback_i, double fallback_j) {
  CoTrendStats stats;
  std::vector<double> dev_i, dev_j;
  for (uint64_t slot = 0; slot < db.num_slots(); ++slot) {
    if (!db.HasObservation(i, slot) || !db.HasObservation(j, slot)) continue;
    double vi = db.Observation(i, slot);
    double vj = db.Observation(j, slot);
    int ti = db.TrendOf(i, slot, vi, fallback_i);
    int tj = db.TrendOf(j, slot, vj, fallback_j);
    ++stats.counts[TrendIndex(ti)][TrendIndex(tj)];
    ++stats.co_observed;
    dev_i.push_back(db.DeviationOf(i, slot, vi));
    dev_j.push_back(db.DeviationOf(j, slot, vj));
  }
  stats.pearson = PearsonCorrelation(dev_i, dev_j);
  return stats;
}

}  // namespace trendspeed
