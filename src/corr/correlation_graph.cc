#include "corr/correlation_graph.h"

#include <algorithm>

#include "roadnet/shortest_path.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trendspeed {

namespace {

struct PairStat {
  RoadId i;
  RoadId j;
  CoTrendStats stats;
};

}  // namespace

Result<CorrelationGraph> CorrelationGraph::Build(
    const RoadNetwork& net, const HistoricalDb& db,
    const CorrelationGraphOptions& opts) {
  if (db.num_roads() != net.num_roads()) {
    return Status::InvalidArgument("history / network road count mismatch");
  }
  if (opts.min_same_prob < 0.5 || opts.min_same_prob >= 1.0) {
    return Status::InvalidArgument("min_same_prob must be in [0.5, 1)");
  }
  if (opts.max_hops == 0 || opts.max_degree == 0) {
    return Status::InvalidArgument("max_hops and max_degree must be positive");
  }
  size_t n = net.num_roads();
  // Mine candidate pairs in parallel, bucketed per source road so the final
  // pair order (and therefore the graph) is independent of thread count.
  std::vector<std::vector<PairStat>> per_source(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (RoadId i = static_cast<RoadId>(begin); i < end; ++i) {
          if (db.CoverageCount(i) == 0) continue;
          for (const RoadHop& hop : RoadsWithinHops(net, i, opts.max_hops)) {
            RoadId j = hop.road;
            if (j <= i) continue;  // unordered pair once
            if (db.CoverageCount(j) == 0) continue;
            CoTrendStats stats =
                ComputeCoTrend(db, i, j, net.road(i).free_flow_kmh,
                               net.road(j).free_flow_kmh);
            if (stats.co_observed < opts.min_co_observed) continue;
            double p = stats.SameProbability();
            if (std::max(p, 1.0 - p) < opts.min_same_prob) continue;
            per_source[i].push_back(PairStat{i, j, stats});
          }
        }
      },
      opts.num_threads);
  std::vector<PairStat> pairs;
  for (auto& bucket : per_source) {
    pairs.insert(pairs.end(), bucket.begin(), bucket.end());
    bucket.clear();
    bucket.shrink_to_fit();
  }
  // Degree capping: an edge survives when it ranks within the top
  // `max_degree` strongest edges of *either* endpoint (union keeps the
  // graph symmetric).
  std::vector<std::vector<std::pair<double, size_t>>> incident(n);
  for (size_t e = 0; e < pairs.size(); ++e) {
    double p = pairs[e].stats.SameProbability();
    double strength = std::max(p, 1.0 - p);
    incident[pairs[e].i].emplace_back(strength, e);
    incident[pairs[e].j].emplace_back(strength, e);
  }
  std::vector<bool> keep(pairs.size(), false);
  for (RoadId v = 0; v < n; ++v) {
    auto& inc = incident[v];
    size_t cap = std::min<size_t>(opts.max_degree, inc.size());
    std::partial_sort(inc.begin(), inc.begin() + static_cast<long>(cap),
                      inc.end(), std::greater<>());
    for (size_t k = 0; k < cap; ++k) keep[inc[k].second] = true;
  }

  CorrelationGraph g;
  g.opts_ = opts;
  g.offsets_.assign(n + 1, 0);
  for (size_t e = 0; e < pairs.size(); ++e) {
    if (!keep[e]) continue;
    ++g.offsets_[pairs[e].i + 1];
    ++g.offsets_[pairs[e].j + 1];
  }
  for (size_t v = 1; v <= n; ++v) g.offsets_[v] += g.offsets_[v - 1];
  g.edges_.resize(g.offsets_[n]);
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t e = 0; e < pairs.size(); ++e) {
    if (!keep[e]) continue;
    const PairStat& p = pairs[e];
    CorrEdge fwd;  // stored at i, pointing to j
    fwd.neighbor = p.j;
    fwd.same_prob = static_cast<float>(p.stats.SameProbability());
    fwd.pearson = static_cast<float>(p.stats.pearson);
    CorrEdge bwd = fwd;  // stored at j, pointing to i (transposed table)
    bwd.neighbor = p.i;
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        float psi = static_cast<float>(p.stats.Compatibility(a, b));
        fwd.compat[a][b] = psi;
        bwd.compat[b][a] = psi;
      }
    }
    g.edges_[cursor[p.i]++] = fwd;
    g.edges_[cursor[p.j]++] = bwd;
  }
  return g;
}

void CorrelationGraph::Serialize(BinaryWriter* writer) const {
  writer->PutTag("CORR", 1);
  writer->PutU32(opts_.max_hops);
  writer->PutF64(opts_.min_same_prob);
  writer->PutU32(opts_.min_co_observed);
  writer->PutU32(opts_.max_degree);
  writer->PutVec(offsets_);
  writer->PutVec(edges_);
}

Result<CorrelationGraph> CorrelationGraph::Deserialize(BinaryReader* reader) {
  TS_ASSIGN_OR_RETURN(uint32_t version, reader->ExpectTag("CORR"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported correlation-graph version");
  }
  CorrelationGraph g;
  TS_ASSIGN_OR_RETURN(g.opts_.max_hops, reader->GetU32());
  TS_ASSIGN_OR_RETURN(g.opts_.min_same_prob, reader->GetF64());
  TS_ASSIGN_OR_RETURN(g.opts_.min_co_observed, reader->GetU32());
  TS_ASSIGN_OR_RETURN(g.opts_.max_degree, reader->GetU32());
  TS_ASSIGN_OR_RETURN(g.offsets_, reader->GetVec<uint32_t>());
  TS_ASSIGN_OR_RETURN(g.edges_, reader->GetVec<CorrEdge>());
  if (g.offsets_.empty() || g.offsets_.front() != 0 ||
      g.offsets_.back() != g.edges_.size()) {
    return Status::InvalidArgument("corrupt correlation graph offsets");
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    if (g.offsets_[i] < g.offsets_[i - 1]) {
      return Status::InvalidArgument(
          "corrupt correlation graph: non-monotonic offsets");
    }
  }
  for (const CorrEdge& e : g.edges_) {
    if (e.neighbor >= g.num_roads()) {
      return Status::InvalidArgument("corrupt correlation graph edge");
    }
  }
  return g;
}

size_t CorrelationGraph::CountIsolated() const {
  size_t isolated = 0;
  for (size_t v = 0; v + 1 < offsets_.size(); ++v) {
    if (offsets_[v + 1] == offsets_[v]) ++isolated;
  }
  return isolated;
}

}  // namespace trendspeed
