// Step 2 of the paper's estimator: the hierarchical linear model that turns
// inferred trends plus an influence-weighted seed-deviation aggregate into
// speeds.
//
// Hierarchy (most to least specific, each level consulted only when the
// previous lacks training data):
//   1. road level  — per-road affine trend model d = a + b*x + c*t
//   2. class level — shared per road class (highway / arterial / local)
//   3. global level — one model for the whole network
//
// Two prediction regimes per level: with neighbour information (x = the
// signed-influence-weighted deviation of known roads) and without (the
// trend-conditioned mean deviation). Training also fits the logistic
// calibration P(trend = up | x) used as soft evidence by the trend MRF.

#ifndef TRENDSPEED_SPEED_HIERARCHICAL_MODEL_H_
#define TRENDSPEED_SPEED_HIERARCHICAL_MODEL_H_

#include <vector>

#include "corr/correlation_graph.h"
#include "probe/history.h"
#include "roadnet/road_network.h"
#include "seed/objective.h"
#include "speed/linear_model.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trendspeed {

struct HierarchicalModelOptions {
  double ridge_lambda = 1.0;
  /// Minimum samples to train a road-level model.
  uint32_t min_road_samples = 25;
  /// Minimum samples to train a class-level model.
  uint32_t min_class_samples = 50;
  /// Influence magnitude below which a neighbour is ignored when forming x.
  double min_neighbor_weight = 0.03;
  /// Training-time neighbour sparsification: each sample keeps each
  /// neighbour with a probability drawn uniformly from
  /// [min_keep_prob, 1], so the fitted weight-interaction covers the sparse
  /// regimes online estimation actually sees (only K seeds are observed).
  double min_keep_prob = 0.08;
  uint64_t dropout_seed = 77;
  /// Worker threads for training (0 = hardware concurrency). Per-road RNG
  /// streams keep results identical for any value.
  uint32_t num_threads = 0;
};

/// Which level of the hierarchy served a prediction.
enum class ModelLevel { kRoad = 0, kClass = 1, kGlobal = 2 };
const char* ModelLevelName(ModelLevel level);

class HierarchicalSpeedModel {
 public:
  /// Trains all levels from history. For each road and each historical slot
  /// where the road and at least one influence-connected neighbour were
  /// observed, a sample (x = signed-influence-weighted neighbour deviation,
  /// y = own deviation, t = own trend) feeds the road's model and is pooled
  /// upward into the class and global models.
  static Result<HierarchicalSpeedModel> Train(
      const RoadNetwork& net, const HistoricalDb& db,
      const CorrelationGraph& graph, const InfluenceModel& influence,
      const HierarchicalModelOptions& opts);

  /// Predicts the relative deviation of `road`. `x` is the signed-influence
  /// weighted mean deviation of its known neighbours and `weight` the total
  /// influence magnitude backing it; pass `has_x = false` when no neighbour
  /// information is available. `p_up` is the trend posterior.
  double PredictDeviation(RoadId road, double x, double weight, bool has_x,
                          double p_up) const;

  /// The level PredictDeviation would use.
  ModelLevel LevelFor(RoadId road, bool has_x) const;

  /// Signed 1-hop correlation weight (kept for the layered propagation
  /// mode): +1 perfectly co-trending, -1 perfectly anti-correlated.
  static double EdgeWeight(const CorrEdge& e) {
    return 2.0 * static_cast<double>(e.same_prob) - 1.0;
  }

  /// Logistic calibration P(trend up | x) for MRF soft evidence.
  const LogisticCalibration& evidence() const { return evidence_; }

  /// Number of roads with a trained road-level model.
  size_t num_road_models() const;

  /// Global weight-aware line (diagnostics / tests).
  const WeightedTrendModel& global_line() const { return global_line_; }

  /// Binary (de)serialization for trained-model files.
  void Serialize(BinaryWriter* writer) const;
  static Result<HierarchicalSpeedModel> Deserialize(BinaryReader* reader);

  const HierarchicalModelOptions& options() const { return opts_; }

 private:
  HierarchicalSpeedModel() = default;

  HierarchicalModelOptions opts_;
  std::vector<RoadClass> road_class_;
  std::vector<WeightedTrendModel> road_lines_;
  std::vector<TrendMean> road_means_;
  WeightedTrendModel class_lines_[3];
  TrendMean class_means_[3];
  WeightedTrendModel global_line_;
  TrendMean global_mean_;
  LogisticCalibration evidence_;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_SPEED_HIERARCHICAL_MODEL_H_
