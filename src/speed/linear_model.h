// Trend-conditioned linear regression primitives for the speed model.
//
// All regressions live in relative-deviation space (d = v / historical_mean
// - 1) and are conditioned on the road's trend: congestion ("down") episodes
// and free-flowing ("up") episodes follow visibly different lines, which is
// why the trend step feeds the speed step.

#ifndef TRENDSPEED_SPEED_LINEAR_MODEL_H_
#define TRENDSPEED_SPEED_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace trendspeed {

/// d ≈ a[t] + b[t] * x, one line per trend index t (0 = down, 1 = up),
/// where x is the correlation-weighted mean deviation of the road's known
/// neighbours. Untrained trend branches fall back to the other branch or to
/// the pass-through line (a=0, b=1).
struct TrendLine {
  double a[2] = {0.0, 0.0};
  double b[2] = {1.0, 1.0};
  uint32_t samples[2] = {0, 0};
  bool trained[2] = {false, false};

  bool any_trained() const { return trained[0] || trained[1]; }

  /// Predicts d from x for a hard trend index.
  double PredictHard(double x, int t) const;

  /// Blends the two branches by the trend posterior P(up).
  double Predict(double x, double p_up) const {
    return (1.0 - p_up) * PredictHard(x, 0) + p_up * PredictHard(x, 1);
  }
};

/// Per-trend intercept-only model: the mean deviation given the trend. Used
/// when no neighbour information is available at prediction time.
struct TrendMean {
  double mean[2] = {0.0, 0.0};
  uint32_t samples[2] = {0, 0};
  bool trained[2] = {false, false};

  bool any_trained() const { return trained[0] || trained[1]; }
  double PredictHard(int t) const;
  double Predict(double p_up) const {
    return (1.0 - p_up) * PredictHard(0) + p_up * PredictHard(1);
  }
};

/// One training sample: neighbour-summary deviation x, own deviation y,
/// own trend index t, and the total influence weight w backing x (how much
/// signal the summary aggregates — 0 means x is meaningless).
struct RegressionSample {
  double x = 0.0;
  double y = 0.0;
  int t = 0;
  double w = 0.0;
};

/// Weight-aware affine trend model:
///     d = a + c*t + (b0 + b1 * min(w, kWeightCap)) * x
/// The effective slope grows with the influence weight backing x: a
/// weakly-supported summary is shrunk hard, a strongly-supported one passes
/// nearly through. Calibrated by training on randomly sparsified neighbour
/// sets so every weight regime is represented.
struct WeightedTrendModel {
  static constexpr double kWeightCap = 2.0;

  double a = 0.0;
  double c = 0.0;
  double b0 = 1.0;
  double b1 = 0.0;
  uint32_t samples = 0;
  bool trained = false;

  double SlopeAt(double w) const {
    double wc = w < kWeightCap ? w : kWeightCap;
    return b0 + b1 * wc;
  }
  /// Blends the trend shift by the posterior P(up).
  double Predict(double x, double w, double p_up) const {
    double t = 2.0 * p_up - 1.0;
    if (!trained) return x;  // pass-through fallback
    return a + c * t + SlopeAt(w) * x;
  }
};

/// Fits a WeightedTrendModel with ridge regularization; stays untrained
/// below `min_samples` or when only one trend is present.
WeightedTrendModel FitWeightedTrendModel(
    const std::vector<RegressionSample>& samples, double ridge_lambda,
    uint32_t min_samples);

/// Fits a TrendLine over the samples with ridge regularization; branches
/// with fewer than `min_samples` observations stay untrained. Each branch
/// gets its own slope and intercept.
TrendLine FitTrendLine(const std::vector<RegressionSample>& samples,
                       double ridge_lambda, uint32_t min_samples);

/// Fits the *affine trend* form d = a + b*x + c*t (t = -1/+1): a shared
/// slope with a trend-shifted intercept, returned as a TrendLine with
/// a[0] = a - c, a[1] = a + c, b[0] = b[1] = b. More robust than two
/// independent branches when one trend is underrepresented, and blending by
/// P(up) degrades gracefully (the slope never changes, only the shift).
/// Requires `min_samples` TOTAL samples with both trends present.
TrendLine FitTrendAffine(const std::vector<RegressionSample>& samples,
                         double ridge_lambda, uint32_t min_samples);

/// 1-D logistic calibration P(t = up | x) = sigmoid(bias + gamma * x),
/// fit by Newton's method. Used to convert the influence-weighted seed
/// deviation into soft trend evidence for the MRF.
struct LogisticCalibration {
  double bias = 0.0;
  double gamma = 0.0;
  bool trained = false;

  /// Log-odds of "up" given x (0 when untrained).
  double LogOdds(double x) const { return trained ? bias + gamma * x : 0.0; }
};

LogisticCalibration FitLogistic(const std::vector<RegressionSample>& samples,
                                uint32_t min_samples = 50,
                                uint32_t newton_iters = 12);

/// Fits a TrendMean (per-trend average of y).
TrendMean FitTrendMean(const std::vector<RegressionSample>& samples,
                       uint32_t min_samples);

}  // namespace trendspeed

#endif  // TRENDSPEED_SPEED_LINEAR_MODEL_H_
