// Online speed estimation from seed observations — Step 2's runtime.
//
// Two aggregation modes:
//
// kInfluence (default): one-shot aggregation — every road combines the
// deviations of ALL seeds within its influence neighbourhood (precomputed
// signed best-path products), then the hierarchical model maps (x, trend
// posterior) to a deviation. No estimate feeds another estimate, so there is
// no compounding shrinkage, and the pass is O(K * avg cover + V).
//
// kLayered: the BFS-layer cascade (layer 1 estimated from seeds, layer 2
// from layer 1, ...). Kept as the ablation comparison point.
//
// Both modes share the fallbacks: roads with no influence/correlation link
// to any seed get a discounted spatial pass over physical road adjacency,
// and roads beyond that get the trend-adjusted historical prior.

#ifndef TRENDSPEED_SPEED_PROPAGATION_H_
#define TRENDSPEED_SPEED_PROPAGATION_H_

#include <vector>

#include "corr/correlation_graph.h"
#include "probe/history.h"
#include "roadnet/road_network.h"
#include "seed/objective.h"
#include "speed/hierarchical_model.h"
#include "trend/trend_model.h"
#include "util/status.h"

namespace trendspeed {

/// A crowdsourced seed observation: the true current speed of one road.
struct SeedSpeed {
  RoadId road = kInvalidRoad;
  double speed_kmh = 0.0;
};

enum class AggregationMode { kInfluence, kLayered };

struct PropagationOptions {
  AggregationMode mode = AggregationMode::kInfluence;
  /// kLayered only: maximum BFS layers away from a seed.
  uint32_t max_layers = 8;
  /// Extra spatial-fallback layers over physical road adjacency for roads
  /// no seed influence reaches. 0 disables the fallback.
  uint32_t max_spatial_layers = 6;
  /// Deviations entering the spatial pass are discounted by this factor per
  /// physical hop.
  double spatial_discount = 0.7;
};

/// Layer marker for roads never reached from any seed.
inline constexpr uint32_t kUnreachedLayer = UINT32_MAX;

struct SpeedEstimateResult {
  std::vector<double> speed_kmh;   ///< final estimate per road
  std::vector<double> deviation;   ///< relative deviation used
  std::vector<uint32_t> layer;     ///< 0 = seed, k = k-th estimation wave
};

/// Signed-influence-weighted aggregate of the seed deviations: x[v] is the
/// weighted mean deviation the seeds imply for road v, weight[v] the total
/// influence magnitude backing it (0 = no seed reaches v). Shared between
/// the trend evidence and the speed prediction.
struct InfluenceAggregate {
  std::vector<double> x;
  std::vector<double> weight;
};

InfluenceAggregate AggregateSeedDeviations(const InfluenceModel& influence,
                                           const RoadNetwork& net,
                                           const HistoricalDb& db,
                                           const std::vector<SeedSpeed>& seeds,
                                           uint64_t slot);

/// One-shot influence-mode estimation (see file comment). `aggregate` must
/// come from AggregateSeedDeviations over the same seeds and slot.
Result<SpeedEstimateResult> EstimateSpeedsInfluence(
    const RoadNetwork& net, const InfluenceModel& influence,
    const HistoricalDb& db, const HierarchicalSpeedModel& model,
    const TrendEstimate& trends, const std::vector<SeedSpeed>& seeds,
    const InfluenceAggregate& aggregate, uint64_t slot,
    const PropagationOptions& opts = {});

/// Layered (BFS cascade) estimation over the correlation graph.
Result<SpeedEstimateResult> PropagateSpeeds(
    const RoadNetwork& net, const CorrelationGraph& graph,
    const HistoricalDb& db, const HierarchicalSpeedModel& model,
    const TrendEstimate& trends, const std::vector<SeedSpeed>& seeds,
    uint64_t slot, const PropagationOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_SPEED_PROPAGATION_H_
