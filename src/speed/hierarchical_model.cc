#include "speed/hierarchical_model.h"

#include <algorithm>
#include <cmath>

#include "corr/cotrend.h"
#include "util/parallel.h"
#include "util/logging.h"

namespace trendspeed {

const char* ModelLevelName(ModelLevel level) {
  switch (level) {
    case ModelLevel::kRoad:
      return "road";
    case ModelLevel::kClass:
      return "class";
    case ModelLevel::kGlobal:
      return "global";
  }
  return "?";
}

Result<HierarchicalSpeedModel> HierarchicalSpeedModel::Train(
    const RoadNetwork& net, const HistoricalDb& db,
    const CorrelationGraph& graph, const InfluenceModel& influence,
    const HierarchicalModelOptions& opts) {
  if (net.num_roads() != db.num_roads() ||
      net.num_roads() != graph.num_roads() ||
      net.num_roads() != influence.num_roads()) {
    return Status::InvalidArgument(
        "network / history / graph / influence size mismatch");
  }
  HierarchicalSpeedModel model;
  model.opts_ = opts;
  size_t n = net.num_roads();
  model.road_class_.resize(n);
  model.road_lines_.resize(n);
  model.road_means_.resize(n);

  // Per-road training in parallel; pooled samples are kept per road and
  // merged afterwards so results are independent of thread count.
  std::vector<std::vector<RegressionSample>> pooled(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (RoadId i = static_cast<RoadId>(begin); i < end; ++i) {
          model.road_class_[i] = net.road(i).road_class;
          double fallback = net.road(i).free_flow_kmh;
          // Independent per-road stream keeps training deterministic under
          // any parallelism.
          Rng rng(opts.dropout_seed +
                  0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(i) + 1));
          std::vector<RegressionSample> samples;
          // Incoming influence list: symmetric, so road i's cover list
          // holds the (j, w_ij) pairs of every road whose observation
          // informs i.
          auto cover = influence.CoverList(i);
          for (uint64_t slot = 0; slot < db.num_slots(); ++slot) {
            if (!db.HasObservation(i, slot)) continue;
            double vi = db.Observation(i, slot);
            double y = db.DeviationOf(i, slot, vi);
            int t = TrendIndex(db.TrendOf(i, slot, vi, fallback));
            // Randomly sparsify the neighbour set so the fitted weight
            // interaction covers the regimes online estimation sees, where
            // only the K seeds are observed.
            double keep = rng.Uniform(opts.min_keep_prob, 1.0);
            double wsum = 0.0, xsum = 0.0;
            for (const CoverEntry& c : cover) {
              if (c.road == i) continue;
              double mag = std::fabs(c.influence);
              if (mag < opts.min_neighbor_weight) continue;
              if (!db.HasObservation(c.road, slot)) continue;
              if (!rng.NextBool(keep)) continue;
              double dj =
                  db.DeviationOf(c.road, slot, db.Observation(c.road, slot));
              // Anti-correlated neighbours contribute with flipped sign.
              wsum += mag;
              xsum += c.influence * dj;
            }
            RegressionSample s;
            s.y = y;
            s.t = t;
            if (wsum > 0.0) {
              s.x = xsum / wsum;
              s.w = wsum;
              samples.push_back(s);
              pooled[i].push_back(s);
            } else {
              // No neighbour info: still useful for the mean models.
              s.x = 0.0;
              samples.push_back(s);
            }
          }
          model.road_lines_[i] = FitWeightedTrendModel(
              samples, opts.ridge_lambda, opts.min_road_samples);
          model.road_means_[i] = FitTrendMean(samples, opts.min_road_samples);
        }
      },
      opts.num_threads);

  std::vector<RegressionSample> class_samples[3];
  std::vector<RegressionSample> global_samples;
  for (RoadId i = 0; i < n; ++i) {
    size_t cls = static_cast<size_t>(model.road_class_[i]);
    class_samples[cls].insert(class_samples[cls].end(), pooled[i].begin(),
                              pooled[i].end());
    global_samples.insert(global_samples.end(), pooled[i].begin(),
                          pooled[i].end());
    pooled[i].clear();
    pooled[i].shrink_to_fit();
  }
  for (int c = 0; c < 3; ++c) {
    model.class_lines_[c] = FitWeightedTrendModel(
        class_samples[c], opts.ridge_lambda, opts.min_class_samples);
    model.class_means_[c] =
        FitTrendMean(class_samples[c], opts.min_class_samples);
  }
  model.global_line_ =
      FitWeightedTrendModel(global_samples, opts.ridge_lambda, 10);
  model.global_mean_ = FitTrendMean(global_samples, 10);
  model.evidence_ = FitLogistic(global_samples);
  return model;
}

ModelLevel HierarchicalSpeedModel::LevelFor(RoadId road, bool has_x) const {
  if (has_x) {
    if (road_lines_[road].trained) return ModelLevel::kRoad;
    if (class_lines_[static_cast<size_t>(road_class_[road])].trained) {
      return ModelLevel::kClass;
    }
    return ModelLevel::kGlobal;
  }
  if (road_means_[road].any_trained()) return ModelLevel::kRoad;
  if (class_means_[static_cast<size_t>(road_class_[road])].any_trained()) {
    return ModelLevel::kClass;
  }
  return ModelLevel::kGlobal;
}

double HierarchicalSpeedModel::PredictDeviation(RoadId road, double x,
                                                double weight, bool has_x,
                                                double p_up) const {
  TS_CHECK_LT(road, road_lines_.size());
  size_t c = static_cast<size_t>(road_class_[road]);
  double d;
  if (has_x) {
    switch (LevelFor(road, true)) {
      case ModelLevel::kRoad:
        d = road_lines_[road].Predict(x, weight, p_up);
        break;
      case ModelLevel::kClass:
        d = class_lines_[c].Predict(x, weight, p_up);
        break;
      default:
        d = global_line_.Predict(x, weight, p_up);
    }
  } else {
    switch (LevelFor(road, false)) {
      case ModelLevel::kRoad:
        d = road_means_[road].Predict(p_up);
        break;
      case ModelLevel::kClass:
        d = class_means_[c].Predict(p_up);
        break;
      default:
        d = global_mean_.Predict(p_up);
    }
  }
  // Deviations beyond [-0.9, +1.5] are physically implausible on urban
  // roads; clamping keeps a bad regression from predicting negative speed.
  return std::clamp(d, -0.9, 1.5);
}

size_t HierarchicalSpeedModel::num_road_models() const {
  size_t count = 0;
  for (const WeightedTrendModel& line : road_lines_) {
    if (line.trained) ++count;
  }
  return count;
}

void HierarchicalSpeedModel::Serialize(BinaryWriter* writer) const {
  writer->PutTag("HSPD", 1);
  writer->PutF64(opts_.ridge_lambda);
  writer->PutU32(opts_.min_road_samples);
  writer->PutU32(opts_.min_class_samples);
  writer->PutF64(opts_.min_neighbor_weight);
  writer->PutF64(opts_.min_keep_prob);
  writer->PutU64(opts_.dropout_seed);
  writer->PutVec(road_class_);
  writer->PutVec(road_lines_);
  writer->PutVec(road_means_);
  for (int c = 0; c < 3; ++c) {
    writer->PutVec(std::vector<WeightedTrendModel>{class_lines_[c]});
    writer->PutVec(std::vector<TrendMean>{class_means_[c]});
  }
  writer->PutVec(std::vector<WeightedTrendModel>{global_line_});
  writer->PutVec(std::vector<TrendMean>{global_mean_});
  writer->PutF64(evidence_.bias);
  writer->PutF64(evidence_.gamma);
  writer->PutU8(evidence_.trained ? 1 : 0);
}

Result<HierarchicalSpeedModel> HierarchicalSpeedModel::Deserialize(
    BinaryReader* reader) {
  TS_ASSIGN_OR_RETURN(uint32_t version, reader->ExpectTag("HSPD"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported speed-model version");
  }
  HierarchicalSpeedModel model;
  TS_ASSIGN_OR_RETURN(model.opts_.ridge_lambda, reader->GetF64());
  TS_ASSIGN_OR_RETURN(model.opts_.min_road_samples, reader->GetU32());
  TS_ASSIGN_OR_RETURN(model.opts_.min_class_samples, reader->GetU32());
  TS_ASSIGN_OR_RETURN(model.opts_.min_neighbor_weight, reader->GetF64());
  TS_ASSIGN_OR_RETURN(model.opts_.min_keep_prob, reader->GetF64());
  TS_ASSIGN_OR_RETURN(model.opts_.dropout_seed, reader->GetU64());
  TS_ASSIGN_OR_RETURN(model.road_class_, reader->GetVec<RoadClass>());
  TS_ASSIGN_OR_RETURN(model.road_lines_,
                      reader->GetVec<WeightedTrendModel>());
  TS_ASSIGN_OR_RETURN(model.road_means_, reader->GetVec<TrendMean>());
  size_t n = model.road_class_.size();
  if (model.road_lines_.size() != n || model.road_means_.size() != n) {
    return Status::InvalidArgument("corrupt speed model: size mismatch");
  }
  auto one = [&](auto* out) -> Status {
    using T = std::remove_pointer_t<decltype(out)>;
    auto vec = reader->template GetVec<T>();
    if (!vec.ok()) return vec.status();
    if (vec->size() != 1) {
      return Status::InvalidArgument("corrupt speed model: bad scalar vec");
    }
    *out = (*vec)[0];
    return Status::OK();
  };
  for (int c = 0; c < 3; ++c) {
    TS_RETURN_NOT_OK(one(&model.class_lines_[c]));
    TS_RETURN_NOT_OK(one(&model.class_means_[c]));
  }
  TS_RETURN_NOT_OK(one(&model.global_line_));
  TS_RETURN_NOT_OK(one(&model.global_mean_));
  TS_ASSIGN_OR_RETURN(model.evidence_.bias, reader->GetF64());
  TS_ASSIGN_OR_RETURN(model.evidence_.gamma, reader->GetF64());
  TS_ASSIGN_OR_RETURN(uint8_t trained, reader->GetU8());
  model.evidence_.trained = trained != 0;
  return model;
}

}  // namespace trendspeed
