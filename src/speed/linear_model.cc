#include "speed/linear_model.h"

#include <algorithm>
#include <cmath>

#include "util/matrix.h"

namespace trendspeed {

double TrendLine::PredictHard(double x, int t) const {
  if (trained[t]) return a[t] + b[t] * x;
  int other = 1 - t;
  if (trained[other]) return a[other] + b[other] * x;
  return x;  // pass-through: assume the road deviates like its neighbours
}

double TrendMean::PredictHard(int t) const {
  if (trained[t]) return mean[t];
  int other = 1 - t;
  if (trained[other]) return mean[other];
  return 0.0;  // no information: no deviation from the historical mean
}

TrendLine FitTrendLine(const std::vector<RegressionSample>& samples,
                       double ridge_lambda, uint32_t min_samples) {
  TrendLine line;
  for (int t = 0; t < 2; ++t) {
    std::vector<std::vector<double>> design;
    std::vector<double> targets;
    for (const RegressionSample& s : samples) {
      if (s.t != t) continue;
      design.push_back({1.0, s.x});
      targets.push_back(s.y);
    }
    line.samples[t] = static_cast<uint32_t>(targets.size());
    if (targets.size() < min_samples) continue;
    auto fit = RidgeRegression(Matrix::FromRows(design), targets, ridge_lambda);
    if (!fit.ok()) continue;
    line.a[t] = (*fit)[0];
    line.b[t] = (*fit)[1];
    line.trained[t] = true;
  }
  return line;
}

TrendLine FitTrendAffine(const std::vector<RegressionSample>& samples,
                         double ridge_lambda, uint32_t min_samples) {
  TrendLine line;
  uint32_t per_trend[2] = {0, 0};
  for (const RegressionSample& s : samples) ++per_trend[s.t];
  line.samples[0] = per_trend[0];
  line.samples[1] = per_trend[1];
  if (samples.size() < min_samples || per_trend[0] == 0 || per_trend[1] == 0) {
    // Not enough mixed data for the trend shift: fall back to a plain line.
    if (samples.size() >= min_samples) {
      std::vector<std::vector<double>> design;
      std::vector<double> targets;
      for (const RegressionSample& s : samples) {
        design.push_back({1.0, s.x});
        targets.push_back(s.y);
      }
      auto fit =
          RidgeRegression(Matrix::FromRows(design), targets, ridge_lambda);
      if (fit.ok()) {
        line.a[0] = line.a[1] = (*fit)[0];
        line.b[0] = line.b[1] = (*fit)[1];
        line.trained[0] = line.trained[1] = true;
      }
    }
    return line;
  }
  std::vector<std::vector<double>> design;
  std::vector<double> targets;
  for (const RegressionSample& s : samples) {
    design.push_back({1.0, s.x, s.t == 1 ? 1.0 : -1.0});
    targets.push_back(s.y);
  }
  auto fit = RidgeRegression(Matrix::FromRows(design), targets, ridge_lambda);
  if (!fit.ok()) return line;
  double a = (*fit)[0];
  double b = (*fit)[1];
  double c = (*fit)[2];
  line.a[0] = a - c;
  line.a[1] = a + c;
  line.b[0] = line.b[1] = b;
  line.trained[0] = line.trained[1] = true;
  return line;
}

WeightedTrendModel FitWeightedTrendModel(
    const std::vector<RegressionSample>& samples, double ridge_lambda,
    uint32_t min_samples) {
  WeightedTrendModel model;
  uint32_t per_trend[2] = {0, 0};
  for (const RegressionSample& s : samples) ++per_trend[s.t];
  model.samples = static_cast<uint32_t>(samples.size());
  if (samples.size() < min_samples || per_trend[0] == 0 ||
      per_trend[1] == 0) {
    return model;
  }
  std::vector<std::vector<double>> design;
  std::vector<double> targets;
  design.reserve(samples.size());
  for (const RegressionSample& s : samples) {
    double wc = std::min(s.w, WeightedTrendModel::kWeightCap);
    design.push_back({1.0, s.t == 1 ? 1.0 : -1.0, s.x, s.x * wc});
    targets.push_back(s.y);
  }
  auto fit = RidgeRegression(Matrix::FromRows(design), targets, ridge_lambda);
  if (!fit.ok()) return model;
  model.a = (*fit)[0];
  model.c = (*fit)[1];
  model.b0 = (*fit)[2];
  model.b1 = (*fit)[3];
  model.trained = true;
  return model;
}

LogisticCalibration FitLogistic(const std::vector<RegressionSample>& samples,
                                uint32_t min_samples, uint32_t newton_iters) {
  LogisticCalibration cal;
  if (samples.size() < min_samples) return cal;
  double w0 = 0.0, w1 = 0.0;  // bias, gamma
  for (uint32_t iter = 0; iter < newton_iters; ++iter) {
    // Gradient and Hessian of the negative log likelihood (+ tiny ridge).
    double g0 = 1e-6 * w0, g1 = 1e-6 * w1;
    double h00 = 1e-6, h01 = 0.0, h11 = 1e-6;
    for (const RegressionSample& s : samples) {
      double z = w0 + w1 * s.x;
      double p = 1.0 / (1.0 + std::exp(-z));
      double y = s.t == 1 ? 1.0 : 0.0;
      double diff = p - y;
      g0 += diff;
      g1 += diff * s.x;
      double v = p * (1.0 - p);
      h00 += v;
      h01 += v * s.x;
      h11 += v * s.x * s.x;
    }
    double det = h00 * h11 - h01 * h01;
    if (std::fabs(det) < 1e-12) break;
    double d0 = (h11 * g0 - h01 * g1) / det;
    double d1 = (h00 * g1 - h01 * g0) / det;
    w0 -= d0;
    w1 -= d1;
    if (std::fabs(d0) + std::fabs(d1) < 1e-10) break;
  }
  cal.bias = w0;
  cal.gamma = w1;
  cal.trained = true;
  return cal;
}

TrendMean FitTrendMean(const std::vector<RegressionSample>& samples,
                       uint32_t min_samples) {
  TrendMean out;
  double sum[2] = {0.0, 0.0};
  for (const RegressionSample& s : samples) {
    sum[s.t] += s.y;
    ++out.samples[s.t];
  }
  for (int t = 0; t < 2; ++t) {
    if (out.samples[t] >= min_samples) {
      out.mean[t] = sum[t] / out.samples[t];
      out.trained[t] = true;
    }
  }
  return out;
}

}  // namespace trendspeed
