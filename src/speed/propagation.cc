#include "speed/propagation.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace trendspeed {

namespace {

Status ValidateSeeds(const std::vector<SeedSpeed>& seeds, size_t n) {
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) return Status::InvalidArgument("seed road out of range");
    if (s.speed_kmh <= 0.0) {
      return Status::InvalidArgument("seed speed must be positive");
    }
  }
  return Status::OK();
}

double SeedDeviation(const RoadNetwork& net, const HistoricalDb& db,
                     const SeedSpeed& s, uint64_t slot) {
  double hist =
      db.HistoricalMeanOr(s.road, slot, net.road(s.road).free_flow_kmh);
  return hist > 0.0 ? s.speed_kmh / hist - 1.0 : 0.0;
}

// Installs seed deviations/speeds as layer 0 of `out`.
void SeedLayer(const RoadNetwork& net, const HistoricalDb& db,
               const std::vector<SeedSpeed>& seeds, uint64_t slot,
               SpeedEstimateResult* out) {
  for (const SeedSpeed& s : seeds) {
    out->deviation[s.road] = SeedDeviation(net, db, s, slot);
    out->speed_kmh[s.road] = s.speed_kmh;
    out->layer[s.road] = 0;
  }
}

// Spatial fallback + prior fallback + deviation->speed conversion, shared
// by both aggregation modes. `base_layer` is the first layer id the spatial
// pass may assign.
void FinishEstimate(const RoadNetwork& net, const HistoricalDb& db,
                    const HierarchicalSpeedModel& model,
                    const TrendEstimate& trends,
                    const PropagationOptions& opts, uint32_t base_layer,
                    uint64_t slot, SpeedEstimateResult* out) {
  size_t n = net.num_roads();
  // Spatial fallback: unreached roads borrow a discounted deviation from
  // physically adjacent known roads, layer by layer over road adjacency.
  if (opts.max_spatial_layers > 0) {
    std::vector<RoadId> frontier;
    for (RoadId v = 0; v < n; ++v) {
      if (out->layer[v] != kUnreachedLayer) frontier.push_back(v);
    }
    for (uint32_t step = 0;
         step < opts.max_spatial_layers && !frontier.empty(); ++step) {
      uint32_t layer = base_layer + step;
      std::vector<RoadId> candidates;
      auto consider = [&](RoadId u) {
        if (out->layer[u] == kUnreachedLayer) {
          out->layer[u] = layer;
          candidates.push_back(u);
        }
      };
      for (RoadId u : frontier) {
        for (RoadId v : net.RoadSuccessors(u)) consider(v);
        for (RoadId v : net.RoadPredecessors(u)) consider(v);
        RoadId twin = net.ReverseTwin(u);
        if (twin != kInvalidRoad) consider(twin);
      }
      for (RoadId v : candidates) {
        double sum = 0.0;
        size_t cnt = 0;
        auto take = [&](RoadId u) {
          if (out->layer[u] < layer) {
            sum += out->deviation[u];
            ++cnt;
          }
        };
        for (RoadId u : net.RoadSuccessors(v)) take(u);
        for (RoadId u : net.RoadPredecessors(v)) take(u);
        RoadId twin = net.ReverseTwin(v);
        if (twin != kInvalidRoad) take(twin);
        double x = cnt > 0
                       ? opts.spatial_discount * sum / static_cast<double>(cnt)
                       : 0.0;
        // Spatial adjacency is weak signal: a small fixed weight keeps the
        // effective slope conservative.
        out->deviation[v] = model.PredictDeviation(v, x, /*weight=*/0.3,
                                                   /*has_x=*/cnt > 0,
                                                   trends.p_up[v]);
      }
      frontier = std::move(candidates);
    }
  }
  // Roads never reached by any pass: trend-adjusted historical prior.
  for (RoadId v = 0; v < n; ++v) {
    if (out->layer[v] == kUnreachedLayer) {
      out->deviation[v] = model.PredictDeviation(v, 0.0, /*weight=*/0.0,
                                                 /*has_x=*/false,
                                                 trends.p_up[v]);
    }
  }
  // Deviation -> speed, with physical clamps (seeds keep their speed).
  for (RoadId v = 0; v < n; ++v) {
    if (out->layer[v] == 0) continue;
    double free_flow = net.road(v).free_flow_kmh;
    double hist = db.HistoricalMeanOr(v, slot, free_flow);
    double speed = hist * (1.0 + out->deviation[v]);
    out->speed_kmh[v] = std::clamp(speed, 2.0, free_flow * 1.3);
  }
}

}  // namespace

InfluenceAggregate AggregateSeedDeviations(const InfluenceModel& influence,
                                           const RoadNetwork& net,
                                           const HistoricalDb& db,
                                           const std::vector<SeedSpeed>& seeds,
                                           uint64_t slot) {
  size_t n = influence.num_roads();
  InfluenceAggregate agg;
  agg.x.assign(n, 0.0);
  agg.weight.assign(n, 0.0);
  std::vector<double> xsum(n, 0.0);
  for (const SeedSpeed& s : seeds) {
    if (s.road >= n) continue;  // validated by the caller
    double dev = SeedDeviation(net, db, s, slot);
    for (const CoverEntry& c : influence.CoverList(s.road)) {
      xsum[c.road] += static_cast<double>(c.influence) * dev;
      agg.weight[c.road] += std::fabs(static_cast<double>(c.influence));
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (agg.weight[v] > 0.0) agg.x[v] = xsum[v] / agg.weight[v];
  }
  return agg;
}

Result<SpeedEstimateResult> EstimateSpeedsInfluence(
    const RoadNetwork& net, const InfluenceModel& influence,
    const HistoricalDb& db, const HierarchicalSpeedModel& model,
    const TrendEstimate& trends, const std::vector<SeedSpeed>& seeds,
    const InfluenceAggregate& aggregate, uint64_t slot,
    const PropagationOptions& opts) {
  size_t n = net.num_roads();
  if (influence.num_roads() != n || db.num_roads() != n ||
      trends.p_up.size() != n || aggregate.x.size() != n) {
    return Status::InvalidArgument("influence estimation size mismatch");
  }
  TS_RETURN_NOT_OK(ValidateSeeds(seeds, n));
  SpeedEstimateResult out;
  out.speed_kmh.assign(n, 0.0);
  out.deviation.assign(n, 0.0);
  out.layer.assign(n, kUnreachedLayer);
  SeedLayer(net, db, seeds, slot, &out);
  for (RoadId v = 0; v < n; ++v) {
    if (out.layer[v] == 0) continue;
    if (aggregate.weight[v] <= 0.0) continue;  // spatial fallback later
    out.deviation[v] =
        model.PredictDeviation(v, aggregate.x[v], aggregate.weight[v],
                               /*has_x=*/true, trends.p_up[v]);
    out.layer[v] = 1;
  }
  FinishEstimate(net, db, model, trends, opts, /*base_layer=*/2, slot, &out);
  return out;
}

Result<SpeedEstimateResult> PropagateSpeeds(
    const RoadNetwork& net, const CorrelationGraph& graph,
    const HistoricalDb& db, const HierarchicalSpeedModel& model,
    const TrendEstimate& trends, const std::vector<SeedSpeed>& seeds,
    uint64_t slot, const PropagationOptions& opts) {
  size_t n = net.num_roads();
  if (graph.num_roads() != n || db.num_roads() != n ||
      trends.p_up.size() != n) {
    return Status::InvalidArgument("propagation input size mismatch");
  }
  TS_RETURN_NOT_OK(ValidateSeeds(seeds, n));
  SpeedEstimateResult out;
  out.speed_kmh.assign(n, 0.0);
  out.deviation.assign(n, 0.0);
  out.layer.assign(n, kUnreachedLayer);

  std::vector<RoadId> frontier;
  SeedLayer(net, db, seeds, slot, &out);
  for (const SeedSpeed& s : seeds) frontier.push_back(s.road);

  // BFS layers over the correlation graph.
  for (uint32_t layer = 1; layer <= opts.max_layers && !frontier.empty();
       ++layer) {
    // Candidates: unvisited neighbours of the current frontier.
    std::vector<RoadId> candidates;
    for (RoadId u : frontier) {
      for (const CorrEdge& e : graph.Neighbors(u)) {
        if (out.layer[e.neighbor] == kUnreachedLayer) {
          out.layer[e.neighbor] = layer;  // tentative; estimates set below
          candidates.push_back(e.neighbor);
        }
      }
    }
    // Estimate every candidate from its already-known neighbours (all
    // candidates of this layer see only layers < layer, keeping the result
    // independent of intra-layer ordering).
    for (RoadId v : candidates) {
      double wsum = 0.0, xsum = 0.0;
      for (const CorrEdge& e : graph.Neighbors(v)) {
        if (out.layer[e.neighbor] >= layer) continue;  // not yet final
        double w = HierarchicalSpeedModel::EdgeWeight(e);
        if (w == 0.0) continue;
        wsum += std::fabs(w);
        xsum += w * out.deviation[e.neighbor];
      }
      double p_up = trends.p_up[v];
      double d;
      if (wsum > 0.0) {
        d = model.PredictDeviation(v, xsum / wsum, wsum, /*has_x=*/true,
                                   p_up);
      } else {
        d = model.PredictDeviation(v, 0.0, 0.0, /*has_x=*/false, p_up);
      }
      out.deviation[v] = d;
    }
    frontier = std::move(candidates);
  }

  FinishEstimate(net, db, model, trends, opts,
                 /*base_layer=*/opts.max_layers + 1, slot, &out);
  return out;
}

}  // namespace trendspeed
