#include "seed/exact.h"

#include <algorithm>
#include <vector>

namespace trendspeed {

namespace {

struct BnbContext {
  const InfluenceModel* model;
  size_t k;
  double best_value = -1.0;
  std::vector<RoadId> best_seeds;
  uint64_t evaluations = 0;
};

// Explores candidates with ids >= `next`, extending `state`.
void Recurse(BnbContext* ctx, ObjectiveState* state, RoadId next) {
  size_t n = ctx->model->num_roads();
  if (state->seeds().size() == ctx->k) {
    if (state->value() > ctx->best_value) {
      ctx->best_value = state->value();
      ctx->best_seeds = state->seeds();
    }
    return;
  }
  size_t remaining = ctx->k - state->seeds().size();
  if (n - next < remaining) return;  // not enough candidates left

  // Upper bound: current value + top `remaining` marginal gains among the
  // remaining candidates (valid by submodularity).
  std::vector<double> gains;
  gains.reserve(n - next);
  for (RoadId j = next; j < n; ++j) {
    gains.push_back(state->GainOf(j));
    ++ctx->evaluations;
  }
  std::vector<double> sorted = gains;
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<long>(remaining),
                    sorted.end(), std::greater<>());
  double bound = state->value();
  for (size_t i = 0; i < remaining; ++i) bound += sorted[i];
  if (bound <= ctx->best_value) return;

  for (RoadId j = next; j < n; ++j) {
    if (n - j < remaining) break;
    // Re-branch: copy the state (cover arrays are small on exact-sized
    // instances) and descend.
    ObjectiveState child = *state;
    child.Add(j);
    Recurse(ctx, &child, j + 1);
  }
}

}  // namespace

Result<SeedSelectionResult> SelectSeedsExact(const InfluenceModel& model,
                                             size_t k) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  if (n > kMaxExactCandidates) {
    return Status::InvalidArgument(
        "exact selection limited to " + std::to_string(kMaxExactCandidates) +
        " candidates");
  }
  BnbContext ctx;
  ctx.model = &model;
  ctx.k = k;
  ObjectiveState root(&model);
  Recurse(&ctx, &root, 0);
  SeedSelectionResult result;
  result.seeds = ctx.best_seeds;
  result.objective = ctx.best_value;
  result.gain_evaluations = ctx.evaluations;
  return result;
}

}  // namespace trendspeed
