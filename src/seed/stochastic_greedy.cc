#include "seed/stochastic_greedy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/catalog.h"

namespace trendspeed {

Result<SeedSelectionResult> SelectSeedsStochasticGreedy(
    const InfluenceModel& model, size_t k,
    const StochasticGreedyOptions& opts) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  if (opts.epsilon <= 0.0 || opts.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  Rng rng(opts.seed);
  SeedSelectionResult result;
  ObjectiveState state(&model);
  std::vector<bool> selected(n, false);

  obs::ScopedSpan span(opts.trace, "seed/stochastic_greedy");
  obs::Counter* m_rounds = obs::GetCounter(opts.metrics, obs::kSeedRoundsTotal);
  obs::Histogram* m_gain =
      obs::GetHistogram(opts.metrics, obs::kSeedMarginalGain);
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedRunsStochasticGreedy));

  size_t sample_size = static_cast<size_t>(
      std::ceil(static_cast<double>(n) / static_cast<double>(k) *
                std::log(1.0 / opts.epsilon)));
  sample_size = std::clamp<size_t>(sample_size, 1, n);

  std::vector<RoadId> pool(n);
  for (RoadId j = 0; j < n; ++j) pool[j] = j;

  for (size_t round = 0; round < k; ++round) {
    // Sample from the not-yet-selected pool (swap-to-front partial shuffle).
    double best_gain = -1.0;
    RoadId best = kInvalidRoad;
    size_t available = pool.size();
    size_t take = std::min(sample_size, available);
    for (size_t t = 0; t < take; ++t) {
      size_t pick = t + rng.NextIndex(available - t);
      std::swap(pool[t], pool[pick]);
      RoadId j = pool[t];
      double gain = state.GainOf(j);
      ++result.gain_evaluations;
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    if (best == kInvalidRoad) break;
    state.Add(best);
    selected[best] = true;
    pool.erase(std::find(pool.begin(), pool.end(), best));
    obs::Add(m_rounds);
    obs::Observe(m_gain, best_gain);
  }
  result.seeds = state.seeds();
  result.objective = state.value();
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedGainEvalsStochasticGreedy),
           result.gain_evaluations);
  return result;
}

}  // namespace trendspeed
