#include "seed/adaptive.h"

#include <algorithm>
#include <cmath>

#include "seed/lazy_greedy.h"
#include "util/logging.h"
#include "util/stats.h"

namespace trendspeed {

std::vector<double> PeriodSigma(const HistoricalDb& db, double begin_h,
                                double end_h) {
  const SlotClock& clock = db.clock();
  auto in_period = [&](uint64_t slot) {
    double h = clock.HourOfDay(slot);
    if (begin_h <= end_h) return h >= begin_h && h < end_h;
    return h >= begin_h || h < end_h;  // wraps midnight
  };
  std::vector<double> sigma(db.num_roads(), 0.0);
  for (RoadId r = 0; r < db.num_roads(); ++r) {
    OnlineStats dev;
    for (uint64_t slot = 0; slot < db.num_slots(); ++slot) {
      if (!in_period(slot) || !db.HasObservation(r, slot)) continue;
      dev.Add(db.DeviationOf(r, slot, db.Observation(r, slot)));
    }
    sigma[r] = dev.stddev();
  }
  return sigma;
}

Result<AdaptiveSeedPlan> AdaptiveSeedPlan::Build(
    const CorrelationGraph& graph, const HistoricalDb& db, size_t k,
    const AdaptivePlanOptions& opts) {
  if (opts.period_boundaries_h.size() < 2) {
    return Status::InvalidArgument("need at least 2 period boundaries");
  }
  if (!std::is_sorted(opts.period_boundaries_h.begin(),
                      opts.period_boundaries_h.end())) {
    return Status::InvalidArgument("period boundaries must be ascending");
  }
  for (double h : opts.period_boundaries_h) {
    if (h < 0.0 || h >= 24.0) {
      return Status::InvalidArgument("boundaries must be in [0, 24)");
    }
  }
  AdaptiveSeedPlan plan;
  plan.clock_ = db.clock();
  plan.boundaries_h_ = opts.period_boundaries_h;
  size_t periods = opts.period_boundaries_h.size();
  plan.seeds_.resize(periods);
  for (size_t p = 0; p < periods; ++p) {
    double begin_h = opts.period_boundaries_h[p];
    double end_h = opts.period_boundaries_h[(p + 1) % periods];
    std::vector<double> sigma = PeriodSigma(db, begin_h, end_h);
    // Reuse the influence structure (correlations are mined over the whole
    // history) but weight coverage by the period's variability.
    TS_ASSIGN_OR_RETURN(InfluenceModel base,
                        InfluenceModel::Build(graph, db, opts.influence));
    std::vector<std::vector<CoverEntry>> covers;
    covers.reserve(base.num_roads());
    for (RoadId j = 0; j < base.num_roads(); ++j) {
      covers.emplace_back(base.CoverList(j).begin(),
                          base.CoverList(j).end());
    }
    InfluenceModel weighted = InfluenceModel::FromCoverLists(
        base.num_roads(), std::move(covers), std::move(sigma));
    TS_ASSIGN_OR_RETURN(SeedSelectionResult selected,
                        SelectSeedsLazyGreedy(weighted, k));
    plan.seeds_[p] = std::move(selected.seeds);
  }
  return plan;
}

size_t AdaptiveSeedPlan::PeriodOf(uint64_t slot) const {
  double h = clock_.HourOfDay(slot);
  size_t periods = boundaries_h_.size();
  // Period p spans [boundary[p], boundary[p+1]) with the last wrapping.
  for (size_t p = 0; p + 1 < periods; ++p) {
    if (h >= boundaries_h_[p] && h < boundaries_h_[p + 1]) return p;
  }
  return periods - 1;  // the wrapping period
}

double AdaptiveSeedPlan::OverlapFraction(size_t period_a,
                                         size_t period_b) const {
  TS_CHECK_LT(period_a, seeds_.size());
  TS_CHECK_LT(period_b, seeds_.size());
  const auto& a = seeds_[period_a];
  const auto& b = seeds_[period_b];
  if (a.empty()) return 0.0;
  size_t shared = 0;
  for (RoadId r : a) {
    if (std::find(b.begin(), b.end(), r) != b.end()) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(a.size());
}

}  // namespace trendspeed
