// Stochastic greedy (Mirzasoleiman et al.): per round, evaluate only a
// random sample of (n/k) * ln(1/epsilon) candidates. Expected approximation
// (1 - 1/e - epsilon); total evaluations O(n ln(1/epsilon)) independent of K.
// The scalable variant for city-scale candidate sets.

#ifndef TRENDSPEED_SEED_STOCHASTIC_GREEDY_H_
#define TRENDSPEED_SEED_STOCHASTIC_GREEDY_H_

#include "seed/objective.h"
#include "util/random.h"

namespace trendspeed {

struct StochasticGreedyOptions {
  /// Approximation slack: guarantee becomes (1 - 1/e - epsilon).
  double epsilon = 0.1;
  uint64_t seed = 17;
  /// Observability hooks, same contract as SeedSelectionOptions: null
  /// (default) records nothing; never affects the sampled candidate
  /// sequence or the selected set.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Selects k seeds; each round evaluates only a random candidate sample.
Result<SeedSelectionResult> SelectSeedsStochasticGreedy(
    const InfluenceModel& model, size_t k,
    const StochasticGreedyOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_STOCHASTIC_GREEDY_H_
