// Exact seed selection by branch and bound. Exponential; used to measure the
// greedy algorithms' empirical approximation ratio on small instances
// (experiment T2) and in tests of the (1 - 1/e) guarantee.

#ifndef TRENDSPEED_SEED_EXACT_H_
#define TRENDSPEED_SEED_EXACT_H_

#include "seed/objective.h"

namespace trendspeed {

/// Maximum candidate count the exact solver accepts.
inline constexpr size_t kMaxExactCandidates = 30;

/// Finds the optimal size-k seed set. Prunes with the submodular upper
/// bound f(S) + sum of the (k - |S|) largest remaining marginal gains.
Result<SeedSelectionResult> SelectSeedsExact(const InfluenceModel& model,
                                             size_t k);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_EXACT_H_
