// The seed-selection objective.
//
// Influence w_ij in [0, 1]: how well seed j's observation determines road
// i's state — the best path product of edge strengths (2 * same_prob - 1)
// over correlation-graph paths of at most `max_hops` edges (w_jj = 1).
// Variability sigma_i >= 0: the historical stddev of road i's relative
// deviation (roads that never deviate are trivially predictable and worth
// little coverage).
//
// Objective (monotone submodular):
//     f(S) = sum_i sigma_i * max_{j in S} w_ij
// Maximizing f under |S| <= K generalizes weighted Max-Cover (take w in
// {0, 1}), hence is NP-hard; the greedy algorithms in this module carry the
// classic (1 - 1/e) guarantee. tests/seed_objective_test.cc exercises the
// Max-Cover embedding and the submodularity property directly.

#ifndef TRENDSPEED_SEED_OBJECTIVE_H_
#define TRENDSPEED_SEED_OBJECTIVE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corr/correlation_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "probe/history.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace trendspeed {

/// One (covered road, influence) entry of a candidate's cover list.
/// Influence is *signed*: negative when the best path has an odd number of
/// anti-correlated edges (the roads move in opposite trend directions).
/// Selection cares about |influence|; the speed model uses the sign.
struct CoverEntry {
  RoadId road = kInvalidRoad;
  float influence = 0.0f;
};

struct InfluenceOptions {
  /// Maximum path length (edges) influence may travel.
  uint32_t max_hops = 4;
  /// Influence magnitude below this is dropped from cover lists.
  double min_influence = 0.03;
  /// Worker threads for precomputation (0 = hardware concurrency).
  uint32_t num_threads = 0;
};

/// Precomputed influence structure: per candidate seed, the roads it covers.
class InfluenceModel {
 public:
  /// Derives influence from the correlation graph and variability weights
  /// from history. O(n * local neighbourhood * log).
  static Result<InfluenceModel> Build(const CorrelationGraph& graph,
                                      const HistoricalDb& db,
                                      const InfluenceOptions& opts);

  /// Builds directly from explicit cover lists and weights (tests,
  /// synthetic Max-Cover instances).
  static InfluenceModel FromCoverLists(
      size_t num_roads, std::vector<std::vector<CoverEntry>> covers,
      std::vector<double> sigma);

  size_t num_roads() const { return covers_.size(); }
  std::span<const CoverEntry> CoverList(RoadId j) const {
    return covers_[j];
  }
  double sigma(RoadId i) const { return sigma_[i]; }
  const std::vector<double>& sigmas() const { return sigma_; }

  /// Average cover-list length (density diagnostic).
  double AverageCoverSize() const;

  /// Binary (de)serialization for trained-model files.
  void Serialize(BinaryWriter* writer) const;
  static Result<InfluenceModel> Deserialize(BinaryReader* reader);

 private:
  InfluenceModel() = default;
  std::vector<std::vector<CoverEntry>> covers_;
  std::vector<double> sigma_;
};

/// Tuning knobs shared by the greedy selection algorithms. Defaults leave
/// results identical to the serial algorithms on any machine; parallelism
/// only changes wall time (gain evaluations may be batched speculatively in
/// lazy greedy, so its evaluation *count* can grow slightly).
struct SeedSelectionOptions {
  /// Worker threads for batched gain evaluation (0 = EffectiveThreads).
  uint32_t num_threads = 0;
  /// Candidate pools smaller than this are evaluated serially — gain
  /// evaluation is O(|cover|), so tiny rounds don't amortize pool handoff.
  size_t min_parallel_candidates = 2048;
  /// Lazy greedy: stale heap entries re-evaluated concurrently per sweep
  /// (0 = effective thread count). 1 reproduces the serial CELF evaluation
  /// schedule exactly.
  size_t batch = 0;
  /// Observability hooks (docs/observability.md): when attached, each run
  /// records the trendspeed_seed_* series (runs and gain evaluations per
  /// algorithm label, committed rounds, marginal-gain histogram, CELF
  /// re-pops) and a "seed/<algorithm>" span. Null (default) records
  /// nothing; the selected set is identical either way. Both must outlive
  /// the selection call.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Incremental evaluator of f(S); the workhorse of all greedy variants.
class ObjectiveState {
 public:
  explicit ObjectiveState(const InfluenceModel* model);

  /// f(current S).
  double value() const { return value_; }

  /// Marginal gain f(S + j) - f(S). O(|cover(j)|).
  double GainOf(RoadId j) const;

  /// Adds j to S.
  void Add(RoadId j);

  /// Current best influence covering road i.
  double BestCover(RoadId i) const { return best_[i]; }

  const std::vector<RoadId>& seeds() const { return seeds_; }

 private:
  const InfluenceModel* model_;
  std::vector<double> best_;
  std::vector<RoadId> seeds_;
  double value_ = 0.0;
};

/// Evaluates f(S) from scratch (reference implementation for tests).
double ObjectiveValue(const InfluenceModel& model,
                      const std::vector<RoadId>& seeds);

/// Outcome of any selection algorithm, with the bookkeeping the efficiency
/// experiments report.
struct SeedSelectionResult {
  std::vector<RoadId> seeds;
  double objective = 0.0;
  /// Number of GainOf evaluations performed (greedy-family cost metric).
  uint64_t gain_evaluations = 0;
};

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_OBJECTIVE_H_
