// Non-greedy seed-selection baselines used in the evaluation's comparison:
// random, top-degree, top-variability, weighted PageRank, and k-center.

#ifndef TRENDSPEED_SEED_HEURISTICS_H_
#define TRENDSPEED_SEED_HEURISTICS_H_

#include "corr/correlation_graph.h"
#include "roadnet/road_network.h"
#include "seed/objective.h"
#include "util/random.h"

namespace trendspeed {

/// Uniform random K roads.
Result<SeedSelectionResult> SelectSeedsRandom(const InfluenceModel& model,
                                              size_t k, uint64_t seed);

/// The K roads with the most correlation-graph edges.
Result<SeedSelectionResult> SelectSeedsTopDegree(const InfluenceModel& model,
                                                 const CorrelationGraph& graph,
                                                 size_t k);

/// The K roads with the largest historical deviation variability sigma.
Result<SeedSelectionResult> SelectSeedsTopVariance(const InfluenceModel& model,
                                                   size_t k);

/// The K roads with the highest PageRank on the same-prob-weighted
/// correlation graph.
struct PageRankOptions {
  double damping = 0.85;
  uint32_t iterations = 40;
};
Result<SeedSelectionResult> SelectSeedsPageRank(const InfluenceModel& model,
                                                const CorrelationGraph& graph,
                                                size_t k,
                                                const PageRankOptions& opts = {});

/// Farthest-point k-center over correlation-graph hop distance: spreads
/// seeds spatially with no regard to influence strength.
Result<SeedSelectionResult> SelectSeedsKCenter(const InfluenceModel& model,
                                               const CorrelationGraph& graph,
                                               size_t k, uint64_t seed);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_HEURISTICS_H_
