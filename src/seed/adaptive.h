// Time-adaptive seed planning (the paper's "traffic changes dynamically"
// observation, applied to the *selection* side).
//
// A road that is volatile during rush hours can be placid at night; a
// single all-day seed set over-pays for quiet periods. The adaptive plan
// partitions the day into periods, re-derives the per-road variability
// sigma from history restricted to each period, and selects an independent
// seed set per period. At runtime SeedsFor(slot) returns the set active at
// that slot.

#ifndef TRENDSPEED_SEED_ADAPTIVE_H_
#define TRENDSPEED_SEED_ADAPTIVE_H_

#include <vector>

#include "corr/correlation_graph.h"
#include "probe/history.h"
#include "seed/objective.h"
#include "traffic/profiles.h"
#include "util/status.h"

namespace trendspeed {

struct AdaptivePlanOptions {
  /// Day partition boundaries in hours, ascending, implicitly wrapping:
  /// {6, 10, 16, 20} = night[20..6), am[6..10), midday[10..16), pm[16..20).
  std::vector<double> period_boundaries_h = {6.0, 10.0, 16.0, 20.0};
  InfluenceOptions influence;
};

/// Per-period seed sets selected by lazy greedy on period-specific
/// influence models.
class AdaptiveSeedPlan {
 public:
  /// Builds the plan: one greedy selection per period with sigma computed
  /// from observations falling inside that period only.
  static Result<AdaptiveSeedPlan> Build(const CorrelationGraph& graph,
                                        const HistoricalDb& db, size_t k,
                                        const AdaptivePlanOptions& opts);

  size_t num_periods() const { return seeds_.size(); }

  /// Index of the period containing `slot`.
  size_t PeriodOf(uint64_t slot) const;

  /// The seed set active at `slot`.
  const std::vector<RoadId>& SeedsFor(uint64_t slot) const {
    return seeds_[PeriodOf(slot)];
  }

  const std::vector<RoadId>& seeds_of_period(size_t period) const {
    return seeds_[period];
  }

  /// Fraction of seed slots shared between two periods (how much the sets
  /// overlap; diagnostics for the ablation).
  double OverlapFraction(size_t period_a, size_t period_b) const;

 private:
  AdaptiveSeedPlan() = default;

  SlotClock clock_;
  std::vector<double> boundaries_h_;
  std::vector<std::vector<RoadId>> seeds_;
};

/// Sigma (deviation variability) per road computed over observations whose
/// hour of day lies in [begin_h, end_h) — wrapping across midnight when
/// begin_h > end_h. Exposed for tests and custom objectives.
std::vector<double> PeriodSigma(const HistoricalDb& db, double begin_h,
                                double end_h);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_ADAPTIVE_H_
