#include "seed/lazy_greedy.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/catalog.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace trendspeed {

Result<SeedSelectionResult> SelectSeedsLazyGreedy(
    const InfluenceModel& model, size_t k, const SeedSelectionOptions& opts) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  SeedSelectionResult result;
  ObjectiveState state(&model);

  obs::ScopedSpan span(opts.trace, "seed/lazy_greedy");
  obs::Counter* m_rounds = obs::GetCounter(opts.metrics, obs::kSeedRoundsTotal);
  obs::Counter* m_repops =
      obs::GetCounter(opts.metrics, obs::kSeedLazyRepopsTotal);
  obs::Histogram* m_gain =
      obs::GetHistogram(opts.metrics, obs::kSeedMarginalGain);
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedRunsLazyGreedy));

  struct QEntry {
    double gain;
    RoadId road;
    uint32_t round;  // round the gain was computed in
    // Total order (lower road wins gain ties) so the pop sequence — and
    // with it the selected set — is identical however entries were pushed,
    // serially or from a parallel batch.
    bool operator<(const QEntry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return road > other.road;
    }
  };
  std::priority_queue<QEntry> pq;
  // Initial gains are computed against the empty set, which is exactly the
  // state of round 1, so they enter the queue fresh. This scan is the
  // single biggest evaluation block in CELF; batch it across the pool.
  {
    std::vector<double> init_gain(n);
    ParallelFor(
        n,
        [&](size_t begin, size_t end) {
          for (RoadId j = static_cast<RoadId>(begin); j < end; ++j) {
            init_gain[j] = state.GainOf(j);
          }
        },
        opts.num_threads);
    for (RoadId j = 0; j < n; ++j) {
      pq.push(QEntry{init_gain[j], j, 1});
      ++result.gain_evaluations;
    }
  }

  size_t batch = opts.batch > 0
                     ? opts.batch
                     : static_cast<size_t>(EffectiveThreads(opts.num_threads));
  std::vector<QEntry> stale;
  stale.reserve(batch);
  for (uint32_t round = 1; round <= k && !pq.empty();) {
    QEntry top = pq.top();
    pq.pop();
    if (top.round == round) {
      // Fresh for this round: submodularity guarantees no other candidate
      // can beat it, so commit.
      state.Add(top.road);
      obs::Add(m_rounds);
      obs::Observe(m_gain, top.gain);
      ++round;
      continue;
    }
    // Speculatively refresh up to `batch` stale entries from the top of the
    // heap in one parallel region. Every refreshed gain is exact for the
    // current state, so pushing them back with this round's stamp preserves
    // the CELF invariant (an entry commits only when its gain is fresh) and
    // hence the exact greedy seed set; with batch == 1 the evaluation
    // schedule is byte-for-byte the serial one.
    stale.clear();
    stale.push_back(top);
    while (stale.size() < batch && !pq.empty() && pq.top().round != round) {
      stale.push_back(pq.top());
      pq.pop();
    }
    if (stale.size() > 1) {
      // Grain 1: each entry is one O(|cover|) evaluation, heavy enough to
      // hand off individually (the legacy ParallelFor would inline a batch
      // this small).
      ThreadPool::Global().ParallelFor(
          stale.size(), 1,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              stale[i].gain = state.GainOf(stale[i].road);
              stale[i].round = round;
            }
          },
          EffectiveThreads(opts.num_threads));
    } else {
      stale[0].gain = state.GainOf(stale[0].road);
      stale[0].round = round;
    }
    result.gain_evaluations += stale.size();
    obs::Add(m_repops, stale.size());
    for (const QEntry& e : stale) pq.push(e);
  }
  result.seeds = state.seeds();
  result.objective = state.value();
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedGainEvalsLazyGreedy),
           result.gain_evaluations);
  return result;
}

Result<SeedSelectionResult> SelectSeedsLazyGreedy(const InfluenceModel& model,
                                                  size_t k) {
  return SelectSeedsLazyGreedy(model, k, SeedSelectionOptions{});
}

}  // namespace trendspeed
