#include "seed/lazy_greedy.h"

#include <queue>
#include <vector>

namespace trendspeed {

Result<SeedSelectionResult> SelectSeedsLazyGreedy(const InfluenceModel& model,
                                                  size_t k) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  SeedSelectionResult result;
  ObjectiveState state(&model);

  struct QEntry {
    double gain;
    RoadId road;
    uint32_t round;  // round the gain was computed in
    bool operator<(const QEntry& other) const { return gain < other.gain; }
  };
  std::priority_queue<QEntry> pq;
  // Initial gains are computed against the empty set, which is exactly the
  // state of round 1, so they enter the queue fresh.
  for (RoadId j = 0; j < n; ++j) {
    pq.push(QEntry{state.GainOf(j), j, 1});
    ++result.gain_evaluations;
  }
  for (uint32_t round = 1; round <= k && !pq.empty();) {
    QEntry top = pq.top();
    pq.pop();
    if (top.round == round) {
      // Fresh for this round: submodularity guarantees no other candidate
      // can beat it, so commit.
      state.Add(top.road);
      ++round;
    } else {
      top.gain = state.GainOf(top.road);
      ++result.gain_evaluations;
      top.round = round;
      pq.push(top);
    }
  }
  result.seeds = state.seeds();
  result.objective = state.value();
  return result;
}

}  // namespace trendspeed
