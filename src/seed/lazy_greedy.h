// Lazy greedy (CELF): identical output to plain greedy, far fewer gain
// evaluations.
//
// Submodularity makes cached marginal gains upper bounds: a candidate whose
// stale gain already trails the current best fresh gain can be skipped
// without evaluation. In practice this cuts evaluations by 1-2 orders of
// magnitude — the seed-selection half of the paper's efficiency story.

#ifndef TRENDSPEED_SEED_LAZY_GREEDY_H_
#define TRENDSPEED_SEED_LAZY_GREEDY_H_

#include "seed/objective.h"

namespace trendspeed {

/// CELF selection; returns exactly the plain-greedy solution. Stale heap
/// entries are re-evaluated in parallel batches of opts.batch (speculative:
/// the seed set is unchanged, but the evaluation count can exceed the
/// serial schedule's when later batch members would have been skipped).
Result<SeedSelectionResult> SelectSeedsLazyGreedy(
    const InfluenceModel& model, size_t k, const SeedSelectionOptions& opts);
/// Overload with default options (kept separate so the function's address
/// stays compatible with two-argument selection tables in the benches).
Result<SeedSelectionResult> SelectSeedsLazyGreedy(const InfluenceModel& model,
                                                  size_t k);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_LAZY_GREEDY_H_
