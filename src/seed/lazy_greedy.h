// Lazy greedy (CELF): identical output to plain greedy, far fewer gain
// evaluations.
//
// Submodularity makes cached marginal gains upper bounds: a candidate whose
// stale gain already trails the current best fresh gain can be skipped
// without evaluation. In practice this cuts evaluations by 1-2 orders of
// magnitude — the seed-selection half of the paper's efficiency story.

#ifndef TRENDSPEED_SEED_LAZY_GREEDY_H_
#define TRENDSPEED_SEED_LAZY_GREEDY_H_

#include "seed/objective.h"

namespace trendspeed {

/// CELF selection; returns exactly the plain-greedy solution.
Result<SeedSelectionResult> SelectSeedsLazyGreedy(const InfluenceModel& model,
                                                  size_t k);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_LAZY_GREEDY_H_
