#include "seed/heuristics.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace trendspeed {

namespace {

Status CheckK(size_t k, size_t n) {
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  return Status::OK();
}

/// Packages a fixed seed list with its objective value.
SeedSelectionResult Finish(const InfluenceModel& model,
                           std::vector<RoadId> seeds) {
  SeedSelectionResult result;
  result.objective = ObjectiveValue(model, seeds);
  result.seeds = std::move(seeds);
  return result;
}

/// Selects the K roads with the largest score (ties by id).
std::vector<RoadId> TopK(const std::vector<double>& score, size_t k) {
  std::vector<RoadId> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](RoadId a, RoadId b) {
                      return score[a] != score[b] ? score[a] > score[b]
                                                  : a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace

Result<SeedSelectionResult> SelectSeedsRandom(const InfluenceModel& model,
                                              size_t k, uint64_t seed) {
  TS_RETURN_NOT_OK(CheckK(k, model.num_roads()));
  Rng rng(seed);
  std::vector<RoadId> seeds;
  for (size_t idx : rng.SampleWithoutReplacement(model.num_roads(), k)) {
    seeds.push_back(static_cast<RoadId>(idx));
  }
  return Finish(model, std::move(seeds));
}

Result<SeedSelectionResult> SelectSeedsTopDegree(const InfluenceModel& model,
                                                 const CorrelationGraph& graph,
                                                 size_t k) {
  TS_RETURN_NOT_OK(CheckK(k, model.num_roads()));
  std::vector<double> score(model.num_roads());
  for (RoadId j = 0; j < model.num_roads(); ++j) {
    score[j] = static_cast<double>(graph.Degree(j));
  }
  return Finish(model, TopK(score, k));
}

Result<SeedSelectionResult> SelectSeedsTopVariance(const InfluenceModel& model,
                                                   size_t k) {
  TS_RETURN_NOT_OK(CheckK(k, model.num_roads()));
  return Finish(model, TopK(model.sigmas(), k));
}

Result<SeedSelectionResult> SelectSeedsPageRank(
    const InfluenceModel& model, const CorrelationGraph& graph, size_t k,
    const PageRankOptions& opts) {
  TS_RETURN_NOT_OK(CheckK(k, model.num_roads()));
  size_t n = graph.num_roads();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  std::vector<double> out_weight(n, 0.0);
  for (RoadId v = 0; v < n; ++v) {
    for (const CorrEdge& e : graph.Neighbors(v)) {
      out_weight[v] += e.same_prob;
    }
  }
  for (uint32_t it = 0; it < opts.iterations; ++it) {
    double teleport = (1.0 - opts.damping) / static_cast<double>(n);
    // Rank of dangling (isolated) vertices is redistributed uniformly.
    double dangling = 0.0;
    for (RoadId v = 0; v < n; ++v) {
      if (out_weight[v] <= 0.0) dangling += rank[v];
    }
    std::fill(next.begin(), next.end(),
              teleport + opts.damping * dangling / static_cast<double>(n));
    for (RoadId v = 0; v < n; ++v) {
      if (out_weight[v] <= 0.0) continue;
      double share = opts.damping * rank[v] / out_weight[v];
      for (const CorrEdge& e : graph.Neighbors(v)) {
        next[e.neighbor] += share * e.same_prob;
      }
    }
    rank.swap(next);
  }
  return Finish(model, TopK(rank, k));
}

Result<SeedSelectionResult> SelectSeedsKCenter(const InfluenceModel& model,
                                               const CorrelationGraph& graph,
                                               size_t k, uint64_t seed) {
  TS_RETURN_NOT_OK(CheckK(k, model.num_roads()));
  size_t n = graph.num_roads();
  Rng rng(seed);
  std::vector<RoadId> seeds;
  seeds.push_back(static_cast<RoadId>(rng.NextIndex(n)));
  // dist[i]: hop distance to the nearest chosen seed.
  std::vector<uint32_t> dist(n, UINT32_MAX);
  auto relax_from = [&](RoadId s) {
    std::queue<RoadId> q;
    if (dist[s] != 0) {
      dist[s] = 0;
      q.push(s);
    }
    while (!q.empty()) {
      RoadId u = q.front();
      q.pop();
      for (const CorrEdge& e : graph.Neighbors(u)) {
        if (dist[u] + 1 < dist[e.neighbor]) {
          dist[e.neighbor] = dist[u] + 1;
          q.push(e.neighbor);
        }
      }
    }
  };
  relax_from(seeds[0]);
  while (seeds.size() < k) {
    // Farthest road from the current seed set; unreachable roads first.
    RoadId far = kInvalidRoad;
    uint32_t far_d = 0;
    for (RoadId v = 0; v < n; ++v) {
      if (dist[v] > far_d &&
          std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
        far_d = dist[v];
        far = v;
      }
    }
    if (far == kInvalidRoad) {
      // Everything is at distance 0 (degenerate); fill randomly.
      for (RoadId v = 0; v < n && seeds.size() < k; ++v) {
        if (std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
          seeds.push_back(v);
        }
      }
      break;
    }
    seeds.push_back(far);
    relax_from(far);
  }
  return Finish(model, std::move(seeds));
}

}  // namespace trendspeed
