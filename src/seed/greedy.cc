#include "seed/greedy.h"

#include <vector>

namespace trendspeed {

Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  SeedSelectionResult result;
  ObjectiveState state(&model);
  std::vector<bool> selected(n, false);
  for (size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    RoadId best = kInvalidRoad;
    for (RoadId j = 0; j < n; ++j) {
      if (selected[j]) continue;
      double gain = state.GainOf(j);
      ++result.gain_evaluations;
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    if (best == kInvalidRoad) break;
    state.Add(best);
    selected[best] = true;
  }
  result.seeds = state.seeds();
  result.objective = state.value();
  return result;
}

}  // namespace trendspeed
