#include "seed/greedy.h"

#include <algorithm>
#include <vector>

#include "obs/catalog.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace trendspeed {

Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k,
                                              const SeedSelectionOptions& opts) {
  size_t n = model.num_roads();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_roads]");
  }
  SeedSelectionResult result;
  ObjectiveState state(&model);
  std::vector<bool> selected(n, false);

  obs::ScopedSpan span(opts.trace, "seed/greedy");
  obs::Counter* m_rounds = obs::GetCounter(opts.metrics, obs::kSeedRoundsTotal);
  obs::Histogram* m_gain =
      obs::GetHistogram(opts.metrics, obs::kSeedMarginalGain);
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedRunsGreedy));

  size_t threads = std::min<size_t>(EffectiveThreads(opts.num_threads), n);
  bool parallel = threads > 1 && n >= opts.min_parallel_candidates;
  // Per-chunk argmax slots; chunks are reduced in index order below, so the
  // tie-break (strictly-greater, lowest road wins) matches the serial scan.
  std::vector<double> chunk_gain(parallel ? threads : 0);
  std::vector<RoadId> chunk_best(parallel ? threads : 0);

  for (size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    RoadId best = kInvalidRoad;
    if (!parallel) {
      for (RoadId j = 0; j < n; ++j) {
        if (selected[j]) continue;
        double gain = state.GainOf(j);
        ++result.gain_evaluations;
        if (gain > best_gain) {
          best_gain = gain;
          best = j;
        }
      }
    } else {
      // ParallelForChunked may merge trailing chunks (ceil division), so
      // reset every slot; unwritten ones must lose the reduction.
      std::fill(chunk_gain.begin(), chunk_gain.end(), -1.0);
      std::fill(chunk_best.begin(), chunk_best.end(), kInvalidRoad);
      ThreadPool::Global().ParallelForChunked(
          n, threads, [&](size_t chunk, size_t begin, size_t end) {
            double local_gain = -1.0;
            RoadId local_best = kInvalidRoad;
            for (RoadId j = static_cast<RoadId>(begin); j < end; ++j) {
              if (selected[j]) continue;
              double gain = state.GainOf(j);
              if (gain > local_gain) {
                local_gain = gain;
                local_best = j;
              }
            }
            chunk_gain[chunk] = local_gain;
            chunk_best[chunk] = local_best;
          });
      result.gain_evaluations += n - round;
      for (size_t c = 0; c < chunk_gain.size(); ++c) {
        if (chunk_best[c] != kInvalidRoad && chunk_gain[c] > best_gain) {
          best_gain = chunk_gain[c];
          best = chunk_best[c];
        }
      }
    }
    if (best == kInvalidRoad) break;
    state.Add(best);
    selected[best] = true;
    obs::Add(m_rounds);
    obs::Observe(m_gain, best_gain);
  }
  result.seeds = state.seeds();
  result.objective = state.value();
  obs::Add(obs::GetCounter(opts.metrics, obs::kSeedGainEvalsGreedy),
           result.gain_evaluations);
  return result;
}

Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k) {
  return SelectSeedsGreedy(model, k, SeedSelectionOptions{});
}

}  // namespace trendspeed
