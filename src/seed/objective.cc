#include "seed/objective.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "speed/hierarchical_model.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace trendspeed {

Result<InfluenceModel> InfluenceModel::Build(const CorrelationGraph& graph,
                                             const HistoricalDb& db,
                                             const InfluenceOptions& opts) {
  if (graph.num_roads() != db.num_roads()) {
    return Status::InvalidArgument("graph / history size mismatch");
  }
  if (opts.min_influence <= 0.0 || opts.min_influence >= 1.0) {
    return Status::InvalidArgument("min_influence must be in (0, 1)");
  }
  size_t n = graph.num_roads();
  InfluenceModel model;
  model.covers_.resize(n);
  model.sigma_.resize(n);
  for (RoadId i = 0; i < n; ++i) {
    model.sigma_[i] = db.DeviationStddev(i);
  }

  // Best path product from each source via a local Dijkstra (products of
  // |weights| in (0,1] are maximized, so a max-heap on magnitude works
  // without log transforms). Hop-bounded, so each search touches a small
  // ball. The sign of the best path (product of edge-weight signs) rides
  // along: influence through anti-correlated edges flips sign but carries
  // just as much information.
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        // Thread-local search scratch.
        std::vector<double> best(n, 0.0);
        std::vector<int8_t> sign(n, 1);
        std::vector<uint32_t> hops(n, 0);
        std::vector<RoadId> touched;
        for (RoadId src = static_cast<RoadId>(begin); src < end; ++src) {
          using Entry = std::pair<double, RoadId>;  // (|product|, road)
          std::priority_queue<Entry> pq;
          best[src] = 1.0;
          sign[src] = 1;
          hops[src] = 0;
          touched.push_back(src);
          pq.emplace(1.0, src);
          while (!pq.empty()) {
            auto [p, u] = pq.top();
            pq.pop();
            if (p < best[u]) continue;  // stale entry
            if (hops[u] >= opts.max_hops) continue;
            for (const CorrEdge& e : graph.Neighbors(u)) {
              double w = HierarchicalSpeedModel::EdgeWeight(e);
              double np = p * std::fabs(w);
              if (np < opts.min_influence) continue;
              if (np > best[e.neighbor]) {
                if (best[e.neighbor] == 0.0) touched.push_back(e.neighbor);
                best[e.neighbor] = np;
                sign[e.neighbor] =
                    static_cast<int8_t>(w < 0.0 ? -sign[u] : sign[u]);
                hops[e.neighbor] = hops[u] + 1;
                pq.emplace(np, e.neighbor);
              }
            }
          }
          auto& cover = model.covers_[src];
          cover.reserve(touched.size());
          for (RoadId r : touched) {
            cover.push_back(
                CoverEntry{r, static_cast<float>(best[r] * sign[r])});
            best[r] = 0.0;  // reset for the next source
            sign[r] = 1;
          }
          std::sort(cover.begin(), cover.end(),
                    [](const CoverEntry& a, const CoverEntry& b) {
                      return a.road < b.road;
                    });
          touched.clear();
        }
      },
      opts.num_threads);
  return model;
}

InfluenceModel InfluenceModel::FromCoverLists(
    size_t num_roads, std::vector<std::vector<CoverEntry>> covers,
    std::vector<double> sigma) {
  TS_CHECK_EQ(covers.size(), num_roads);
  TS_CHECK_EQ(sigma.size(), num_roads);
  InfluenceModel model;
  model.covers_ = std::move(covers);
  model.sigma_ = std::move(sigma);
  // ObjectiveState requires each road to appear at most once per cover
  // list; dedupe keeping the strongest influence magnitude.
  for (auto& cover : model.covers_) {
    std::sort(cover.begin(), cover.end(),
              [](const CoverEntry& a, const CoverEntry& b) {
                return a.road != b.road
                           ? a.road < b.road
                           : std::fabs(a.influence) > std::fabs(b.influence);
              });
    cover.erase(std::unique(cover.begin(), cover.end(),
                            [](const CoverEntry& a, const CoverEntry& b) {
                              return a.road == b.road;
                            }),
                cover.end());
  }
  return model;
}

void InfluenceModel::Serialize(BinaryWriter* writer) const {
  writer->PutTag("INFL", 1);
  writer->PutU64(covers_.size());
  for (const auto& cover : covers_) writer->PutVec(cover);
  writer->PutVec(sigma_);
}

Result<InfluenceModel> InfluenceModel::Deserialize(BinaryReader* reader) {
  TS_ASSIGN_OR_RETURN(uint32_t version, reader->ExpectTag("INFL"));
  if (version != 1) {
    return Status::InvalidArgument("unsupported influence-model version");
  }
  InfluenceModel model;
  TS_ASSIGN_OR_RETURN(uint64_t n, reader->GetU64());
  if (n > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("corrupt influence model size");
  }
  model.covers_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    TS_ASSIGN_OR_RETURN(model.covers_[i], reader->GetVec<CoverEntry>());
    for (const CoverEntry& c : model.covers_[i]) {
      if (c.road >= n) {
        return Status::InvalidArgument("corrupt influence cover entry");
      }
    }
  }
  TS_ASSIGN_OR_RETURN(model.sigma_, reader->GetVec<double>());
  if (model.sigma_.size() != n) {
    return Status::InvalidArgument("corrupt influence sigma size");
  }
  return model;
}

double InfluenceModel::AverageCoverSize() const {
  if (covers_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& c : covers_) total += c.size();
  return static_cast<double>(total) / static_cast<double>(covers_.size());
}

ObjectiveState::ObjectiveState(const InfluenceModel* model)
    : model_(model), best_(model->num_roads(), 0.0) {
  TS_CHECK(model != nullptr);
}

double ObjectiveState::GainOf(RoadId j) const {
  double gain = 0.0;
  for (const CoverEntry& c : model_->CoverList(j)) {
    double w = std::fabs(c.influence);
    if (w > best_[c.road]) {
      gain += model_->sigma(c.road) * (w - best_[c.road]);
    }
  }
  return gain;
}

void ObjectiveState::Add(RoadId j) {
  for (const CoverEntry& c : model_->CoverList(j)) {
    double w = std::fabs(c.influence);
    if (w > best_[c.road]) {
      value_ += model_->sigma(c.road) * (w - best_[c.road]);
      best_[c.road] = w;
    }
  }
  seeds_.push_back(j);
}

double ObjectiveValue(const InfluenceModel& model,
                      const std::vector<RoadId>& seeds) {
  ObjectiveState state(&model);
  for (RoadId j : seeds) state.Add(j);
  return state.value();
}

}  // namespace trendspeed
