// Plain greedy seed selection with the (1 - 1/e) guarantee.

#ifndef TRENDSPEED_SEED_GREEDY_H_
#define TRENDSPEED_SEED_GREEDY_H_

#include "seed/objective.h"

namespace trendspeed {

/// Repeatedly adds the candidate with the largest marginal gain.
/// O(K * n * avg_cover) gain evaluations. Each round's candidate scan is
/// batched across the thread pool (chunk-ordered argmax reduction keeps the
/// selected set identical to the serial scan).
Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k,
                                              const SeedSelectionOptions& opts);
/// Overload with default options (kept separate so the function's address
/// stays compatible with two-argument selection tables in the benches).
Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_GREEDY_H_
