// Plain greedy seed selection with the (1 - 1/e) guarantee.

#ifndef TRENDSPEED_SEED_GREEDY_H_
#define TRENDSPEED_SEED_GREEDY_H_

#include "seed/objective.h"

namespace trendspeed {

/// Repeatedly adds the candidate with the largest marginal gain.
/// O(K * n * avg_cover) gain evaluations.
Result<SeedSelectionResult> SelectSeedsGreedy(const InfluenceModel& model,
                                              size_t k);

}  // namespace trendspeed

#endif  // TRENDSPEED_SEED_GREEDY_H_
