// Chrome trace-event JSON export (catapult / chrome://tracing / Perfetto
// legacy loader) for the flight recorder and the span TraceRecorder.
//
// Output contract (tested byte-exact against goldens in
// tests/trace_export_test.cc):
//
//   * top level `{"displayTimeUnit":"ms","traceEvents":[...]}`;
//   * one JSON object per line inside traceEvents;
//   * per-thread `ph:"M" thread_name` metadata first, sorted by tid;
//   * then `ph:"X"` complete events sorted by (start_ns, thread id, record
//     index) — a total order, so equal timestamps cannot reorder between
//     runs;
//   * `ts`/`dur` in microseconds, printed as %.3f, rebased so the earliest
//     event starts at ts 0.000 (absolute monotonic origins differ per run;
//     rebasing keeps goldens stable under the injected clock).
//
// Everything here is a pure function of already-collected events — no
// clock reads, no recorder mutation — so exports are safe while writers
// are live (Collect() snapshots via the per-cell seqlocks).

#ifndef TRENDSPEED_OBS_TRACE_EXPORT_H_
#define TRENDSPEED_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "obs/trace.h"

namespace trendspeed {
namespace obs {

/// Flight events (any order) + thread labels -> Chrome trace JSON. Events
/// carry cat "flight", the FlightStageName as the event name, and args
/// {"slot":N[,"shard":S],"seq":P} (shard only for shard-scoped events, seq
/// = causal path position, 0 = off-path).
std::string ToChromeTraceJson(
    const std::vector<FlightEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& threads);

/// Collect() + ThreadLabels() of a live recorder, exported.
std::string ToChromeTraceJson(const FlightRecorder& recorder);

/// Span-recorder events -> Chrome trace JSON: cat "span", args
/// {"depth":D,"span":I,"parent":P,"seq":S}; thread rows are synthesized as
/// "thread-<id>" from the ids present.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

/// Events() of a live TraceRecorder, exported.
std::string ToChromeTraceJson(const TraceRecorder& recorder);

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_TRACE_EXPORT_H_
