// MetricsRegistry: pre-registered counters, gauges, and fixed-bucket
// histograms for the pipeline hot paths.
//
// The contract that keeps instrumentation out of the profile:
//
//   * Handles are registered once (mutex-guarded, lock-sharded by metric
//     name) and are stable pointers for the registry's lifetime; hot-path
//     code holds the pointer, never the name.
//   * Recording against a handle is a relaxed atomic add (counters shard
//     their cells across cache lines so concurrent writers don't ping-pong
//     one line). No locks, no allocation, no syscalls.
//   * Recording against a *null* handle is a single predicted branch — the
//     universal "registry not attached" representation. Every instrumented
//     call site uses the null-safe free functions below, so a pipeline with
//     no registry attached pays one branch per record site and nothing else
//     (bench_observability_overhead measures this).
//
// Metric identities come from the central catalog (obs/catalog.h); the
// catalog is what docs/observability.md is verified against.
//
// Exporters (JSON snapshot, Prometheus text) live in obs/export.h.

#ifndef TRENDSPEED_OBS_METRICS_H_
#define TRENDSPEED_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace trendspeed {
namespace obs {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Static identity of one metric. Instances are intended to be `constexpr`
/// catalog entries; the strings must outlive every registry using them.
struct MetricDef {
  const char* name;   ///< Prometheus-style, e.g. "trendspeed_bp_sweeps_total"
  MetricType type;
  const char* help;   ///< one-line description for exporters and the catalog
  const char* unit;   ///< "1", "ms", "us", "slots", ...
  /// Pre-baked label set, e.g. `algorithm="greedy"`, or "" for none. Labels
  /// are fixed at registration; the same name may be registered repeatedly
  /// with different label sets (one time series each).
  const char* labels = "";
  /// Histograms: strictly increasing finite upper bounds. A value v lands in
  /// the first bucket with v <= bound; larger values land in the implicit
  /// +Inf overflow bucket. Ignored for counters/gauges.
  const double* bucket_bounds = nullptr;
  size_t num_buckets = 0;
};

/// Monotone counter. Adds are relaxed; cells are sharded across cache lines
/// so concurrent hot-path writers don't contend.
class Counter {
 public:
  void Add(uint64_t v = 1) {
    cells_[CellIndex()].v.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t CellIndex();
  std::array<Cell, kCells> cells_;
};

/// Last-write-wins double value (queue depth, staleness, worker count).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: per-bucket relaxed atomic counts plus a CAS-added
/// sum. Bucket layout is fixed at registration (from the MetricDef), so
/// Observe is a short linear scan + one relaxed increment.
class Histogram {
 public:
  explicit Histogram(const MetricDef& def);

  void Observe(double v);

  size_t num_buckets() const { return bounds_.size(); }
  double bound(size_t i) const { return bounds_[i]; }
  /// Count of values in bucket i (NOT cumulative); index num_buckets() is
  /// the +Inf overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Snapshots (point-in-time copies for the exporters and tests).
// ---------------------------------------------------------------------------

struct MetricId {
  std::string name;
  std::string labels;
  std::string help;
  std::string unit;
};

struct CounterSnapshot {
  MetricId id;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  MetricId id;
  double value = 0.0;
};

struct HistogramSnapshot {
  MetricId id;
  std::vector<double> bounds;    ///< finite upper bounds
  std::vector<uint64_t> counts;  ///< per-bucket (bounds.size() + 1, last = +Inf)
  uint64_t count = 0;
  double sum = 0.0;
};

struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;      ///< sorted by (name, labels)
  std::vector<GaugeSnapshot> gauges;          ///< sorted by (name, labels)
  std::vector<HistogramSnapshot> histograms;  ///< sorted by (name, labels)
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-register. The returned pointer is stable for the registry's
  /// lifetime. Returns nullptr if (name, labels) was already registered
  /// with a different metric type — the one registration error; everything
  /// else is idempotent.
  Counter* GetCounter(const MetricDef& def);
  Gauge* GetGauge(const MetricDef& def);
  Histogram* GetHistogram(const MetricDef& def);

  /// Point-in-time copy of every registered series, sorted for
  /// deterministic export.
  RegistrySnapshot Snapshot() const;

  /// Convenience: Snapshot() through the exporters (obs/export.h).
  std::string ToJson() const;
  std::string ToPrometheus() const;

 private:
  struct Entry {
    MetricDef def;  // strings are catalog literals; see MetricDef contract
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  // Registration is lock-sharded by metric name so concurrent component
  // attach (e.g. many sessions starting at once) doesn't serialize on one
  // mutex. Recording never touches these locks.
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;  // key: name + '\0' + labels
  };
  Shard& ShardFor(const MetricDef& def);
  Entry* GetEntry(const MetricDef& def);

  std::array<Shard, kShards> shards_;
};

// ---------------------------------------------------------------------------
// Null-safe helpers: the canonical hot-path record idiom. With no registry
// attached every handle is nullptr and a record site is one branch.
// ---------------------------------------------------------------------------

inline Counter* GetCounter(MetricsRegistry* reg, const MetricDef& def) {
  return reg != nullptr ? reg->GetCounter(def) : nullptr;
}
inline Gauge* GetGauge(MetricsRegistry* reg, const MetricDef& def) {
  return reg != nullptr ? reg->GetGauge(def) : nullptr;
}
inline Histogram* GetHistogram(MetricsRegistry* reg, const MetricDef& def) {
  return reg != nullptr ? reg->GetHistogram(def) : nullptr;
}

inline void Add(Counter* c, uint64_t v = 1) {
  if (c != nullptr) c->Add(v);
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_METRICS_H_
