#include "obs/catalog.h"

namespace trendspeed {
namespace obs {

namespace {

// Shared bucket layouts. Latencies are long-tailed, so bounds are roughly
// geometric; BP residuals span decades, so decades it is.
constexpr double kLatencyMsBounds[] = {0.05, 0.1,  0.25, 0.5, 1.0,  2.5, 5.0,
                                       10.0, 25.0, 50.0, 100, 250,  1000};
constexpr double kMicrosBounds[] = {1,    2,    5,     10,    25,    50,
                                    100,  250,  1000,  5000,  25000, 100000};
constexpr double kIterationBounds[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64};
constexpr double kResidualBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                      1e-2, 0.1,  0.5,  1.0};
constexpr double kGainBounds[] = {0.01, 0.05, 0.1, 0.25, 0.5, 1,
                                  2,    4,    8,   16,   32,  64};
constexpr double kActiveVarBounds[] = {1,    4,    16,    64,    256,
                                       1024, 4096, 16384, 65536, 262144};

constexpr size_t N(auto& a) { return sizeof(a) / sizeof(a[0]); }

}  // namespace

// --- BP --------------------------------------------------------------------
const MetricDef kBpRunsTotal = {
    "trendspeed_bp_runs_total", MetricType::kCounter,
    "Belief-propagation inference runs", "1"};
const MetricDef kBpConvergedTotal = {
    "trendspeed_bp_converged_total", MetricType::kCounter,
    "BP runs whose max message change fell below tol", "1"};
const MetricDef kBpSweepsTotal = {
    "trendspeed_bp_sweeps_total", MetricType::kCounter,
    "Jacobi message half-sweeps executed", "1"};
const MetricDef kBpMessageUpdatesTotal = {
    "trendspeed_bp_message_updates_total", MetricType::kCounter,
    "Directed-edge message updates", "1"};
const MetricDef kBpIterations = {
    "trendspeed_bp_iterations", MetricType::kHistogram,
    "Sweeps needed per BP run", "iterations", "",
    kIterationBounds, N(kIterationBounds)};
const MetricDef kBpResidual = {
    "trendspeed_bp_residual", MetricType::kHistogram,
    "Max message change per sweep (convergence residual)", "delta", "",
    kResidualBounds, N(kResidualBounds)};
const MetricDef kBpWarmStartsTotal = {
    "trendspeed_bp_warm_starts_total", MetricType::kCounter,
    "BP runs seeded from a previous slot's fixed point", "1"};
const MetricDef kBpActiveVars = {
    "trendspeed_bp_active_vars", MetricType::kHistogram,
    "Variables in the initial warm-start active set", "variables", "",
    kActiveVarBounds, N(kActiveVarBounds)};
const MetricDef kBpSweepsSaved = {
    "trendspeed_bp_sweeps_saved", MetricType::kHistogram,
    "Sweeps avoided vs the max_iters budget on a warm run", "sweeps", "",
    kIterationBounds, N(kIterationBounds)};
const MetricDef kBpKernelRunsScalar = {
    "trendspeed_bp_kernel_runs_total", MetricType::kCounter,
    "BP runs by executing message-update kernel", "1", "kernel=\"scalar\""};
const MetricDef kBpKernelRunsSimd = {
    "trendspeed_bp_kernel_runs_total", MetricType::kCounter,
    "BP runs by executing message-update kernel", "1", "kernel=\"simd\""};
const MetricDef kBpKernelSimdFallbacksTotal = {
    "trendspeed_bp_kernel_simd_fallbacks_total", MetricType::kCounter,
    "Runs that requested the SIMD kernel but executed scalar (kernel not "
    "compiled in, or CPU lacks the ISA)", "1"};
const MetricDef kBpKernelWarmDenseTotal = {
    "trendspeed_bp_kernel_warm_dense_total", MetricType::kCounter,
    "Warm runs routed to dense vectorized sweeps by the active-set density "
    "crossover", "1"};

// --- seed selection --------------------------------------------------------
const MetricDef kSeedRunsGreedy = {
    "trendspeed_seed_runs_total", MetricType::kCounter,
    "Seed-selection invocations", "1", "algorithm=\"greedy\""};
const MetricDef kSeedRunsLazyGreedy = {
    "trendspeed_seed_runs_total", MetricType::kCounter,
    "Seed-selection invocations", "1", "algorithm=\"lazy_greedy\""};
const MetricDef kSeedRunsStochasticGreedy = {
    "trendspeed_seed_runs_total", MetricType::kCounter,
    "Seed-selection invocations", "1", "algorithm=\"stochastic_greedy\""};
const MetricDef kSeedGainEvalsGreedy = {
    "trendspeed_seed_gain_evaluations_total", MetricType::kCounter,
    "Marginal-gain (GainOf) evaluations", "1", "algorithm=\"greedy\""};
const MetricDef kSeedGainEvalsLazyGreedy = {
    "trendspeed_seed_gain_evaluations_total", MetricType::kCounter,
    "Marginal-gain (GainOf) evaluations", "1", "algorithm=\"lazy_greedy\""};
const MetricDef kSeedGainEvalsStochasticGreedy = {
    "trendspeed_seed_gain_evaluations_total", MetricType::kCounter,
    "Marginal-gain (GainOf) evaluations", "1",
    "algorithm=\"stochastic_greedy\""};
const MetricDef kSeedRoundsTotal = {
    "trendspeed_seed_rounds_total", MetricType::kCounter,
    "Seeds committed across all greedy-family runs", "1"};
const MetricDef kSeedLazyRepopsTotal = {
    "trendspeed_seed_lazy_repops_total", MetricType::kCounter,
    "Stale CELF heap entries re-popped for re-evaluation", "1"};
const MetricDef kSeedMarginalGain = {
    "trendspeed_seed_marginal_gain", MetricType::kHistogram,
    "Marginal gain of each committed seed", "gain", "",
    kGainBounds, N(kGainBounds)};

// --- thread pool -----------------------------------------------------------
const MetricDef kPoolTasksTotal = {
    "trendspeed_pool_tasks_total", MetricType::kCounter,
    "Tasks executed by pool workers", "1"};
const MetricDef kPoolStealsTotal = {
    "trendspeed_pool_steals_total", MetricType::kCounter,
    "Tasks stolen from a sibling worker's queue", "1"};
const MetricDef kPoolQueueDepth = {
    "trendspeed_pool_queue_depth", MetricType::kGauge,
    "Tasks queued but not yet started", "tasks"};
const MetricDef kPoolWorkers = {
    "trendspeed_pool_workers", MetricType::kGauge,
    "Worker threads in the pool", "threads"};
const MetricDef kPoolTaskWaitUs = {
    "trendspeed_pool_task_wait_us", MetricType::kHistogram,
    "Queue wait: task submit to execution start", "us", "",
    kMicrosBounds, N(kMicrosBounds)};
const MetricDef kPoolTaskRunUs = {
    "trendspeed_pool_task_run_us", MetricType::kHistogram,
    "Task execution time", "us", "",
    kMicrosBounds, N(kMicrosBounds)};

// --- estimator -------------------------------------------------------------
const MetricDef kEstimatesTotal = {
    "trendspeed_estimates_total", MetricType::kCounter,
    "Full-network Estimate() calls", "1"};
const MetricDef kEstimateLatencyMs = {
    "trendspeed_estimate_latency_ms", MetricType::kHistogram,
    "Wall time of one Estimate() call", "ms", "",
    kLatencyMsBounds, N(kLatencyMsBounds)};

// --- serving ---------------------------------------------------------------
const MetricDef kServingIngestLatencyMs = {
    "trendspeed_serving_ingest_latency_ms", MetricType::kHistogram,
    "Wall time of one ServingSession::Ingest call", "ms", "",
    kLatencyMsBounds, N(kLatencyMsBounds)};
const MetricDef kServingStalenessSlots = {
    "trendspeed_serving_staleness_slots", MetricType::kGauge,
    "Current consecutive carried-forward slot streak", "slots"};
const MetricDef kServingSlowIngestsTotal = {
    "trendspeed_serving_slow_ingests_total", MetricType::kCounter,
    "Ingest calls slower than ObservabilityOptions::slow_ingest_ms", "1"};
const MetricDef kServingSlotsEstimatedTotal = {
    "trendspeed_serving_slots_estimated_total", MetricType::kCounter,
    "Fresh estimates served", "1"};
const MetricDef kServingSlotsCarriedForwardTotal = {
    "trendspeed_serving_slots_carried_forward_total", MetricType::kCounter,
    "Stale re-serves of the last good estimate", "1"};
const MetricDef kServingDuplicateSlotsTotal = {
    "trendspeed_serving_duplicate_slots_total", MetricType::kCounter,
    "Idempotent duplicate-slot re-deliveries", "1"};
const MetricDef kServingOutOfOrderSlotsTotal = {
    "trendspeed_serving_out_of_order_slots_total", MetricType::kCounter,
    "Stale (out-of-order) slot arrivals rejected", "1"};
const MetricDef kServingRejectedBatchesTotal = {
    "trendspeed_serving_rejected_batches_total", MetricType::kCounter,
    "Batches failed by validation or dedup policy", "1"};
const MetricDef kServingObservationsFilteredTotal = {
    "trendspeed_serving_observations_filtered_total", MetricType::kCounter,
    "Malformed observations dropped under ValidationPolicy::kFilter", "1"};
const MetricDef kServingObservationsDeduplicatedTotal = {
    "trendspeed_serving_observations_deduplicated_total", MetricType::kCounter,
    "Duplicate road observations resolved by the DedupPolicy", "1"};
const MetricDef kServingEstimationFailuresTotal = {
    "trendspeed_serving_estimation_failures_total", MetricType::kCounter,
    "Estimator/monitor errors absorbed by carry-forward", "1"};

// --- ingest front-end (core/ingest.cc) -------------------------------------
const MetricDef kServingIngestEnqueuedTotal = {
    "trendspeed_serving_ingest_enqueued_total", MetricType::kCounter,
    "Observations accepted into the MPSC ingest queue", "1"};
const MetricDef kServingIngestRejectedBackpressureTotal = {
    "trendspeed_serving_ingest_rejected_backpressure_total",
    MetricType::kCounter,
    "Observations refused because the ingest queue was full", "1"};
const MetricDef kServingIngestQueueDepth = {
    "trendspeed_serving_ingest_queue_depth", MetricType::kGauge,
    "Observations queued but not yet drained", "observations"};
const MetricDef kServingIngestFlushedSlotsTotal = {
    "trendspeed_serving_ingest_flushed_slots_total", MetricType::kCounter,
    "Slot batches the drain loop handed to ServingSession::Ingest", "1"};
const MetricDef kServingIngestStragglersTotal = {
    "trendspeed_serving_ingest_stragglers_total", MetricType::kCounter,
    "Observations dropped because their slot batch was already flushed",
    "1"};

// --- speed snapshot (core/snapshot.cc) -------------------------------------
const MetricDef kSnapshotPublishesTotal = {
    "trendspeed_snapshot_publishes_total", MetricType::kCounter,
    "Speed-field snapshots published (one per served slot)", "1"};
const MetricDef kSnapshotReadRetriesTotal = {
    "trendspeed_snapshot_read_retries_total", MetricType::kCounter,
    "Seqlock reader retries caused by a concurrent publish", "1"};
const MetricDef kSnapshotReadLatencyUs = {
    "trendspeed_snapshot_read_latency_us", MetricType::kHistogram,
    "Wall time of one consistent SpeedSnapshot read", "us", "",
    kMicrosBounds, N(kMicrosBounds)};

// --- sharded BP engine (shard/sharded_bp.cc) -------------------------------
const MetricDef kShardCount = {
    "trendspeed_shard_count", MetricType::kGauge,
    "District shards in the active partition plan", "shards"};
const MetricDef kShardCutEdgeFraction = {
    "trendspeed_shard_cut_edge_fraction", MetricType::kGauge,
    "Fraction of correlation edges crossing a shard boundary", "ratio"};
const MetricDef kShardExchangeRounds = {
    "trendspeed_shard_exchange_rounds", MetricType::kHistogram,
    "Boundary-halo exchange rounds per sharded inference", "rounds", "",
    kIterationBounds, N(kIterationBounds)};
const MetricDef kShardLargestSweepMs = {
    "trendspeed_shard_largest_sweep_ms", MetricType::kHistogram,
    "Largest per-shard BP solve time in one sharded inference (the "
    "per-slot critical path with one core per shard)", "ms", "",
    kLatencyMsBounds, N(kLatencyMsBounds)};

// --- ingest straggler attribution (core/ingest.cc) -------------------------
const MetricDef kServingIngestStragglerWorstSlot = {
    "trendspeed_serving_ingest_straggler_worst_slot", MetricType::kGauge,
    "Slot id that has lost the most observations behind the flush watermark",
    "slot"};
const MetricDef kServingIngestStragglerWorstCount = {
    "trendspeed_serving_ingest_straggler_worst_count", MetricType::kGauge,
    "Straggler observations lost by that worst slot", "observations"};

// --- flight recorder (obs/flight.cc) ---------------------------------------
const MetricDef kFlightEventsRecordedTotal = {
    "trendspeed_flight_events_recorded_total", MetricType::kCounter,
    "Stage events written into the per-thread flight rings", "1"};
const MetricDef kFlightEventsDroppedTotal = {
    "trendspeed_flight_events_dropped_total", MetricType::kCounter,
    "Flight events lost to ring overwrites or the writer-thread cap", "1"};
const MetricDef kFlightThreads = {
    "trendspeed_flight_threads", MetricType::kGauge,
    "Writer threads with a registered flight ring", "threads"};

// --- read-side products (product/{profile,route_eta}.cc) -------------------
const MetricDef kProductProfileFoldsTotal = {
    "trendspeed_product_profile_folds_total", MetricType::kCounter,
    "Fresh snapshots folded into a time-of-day speed profile", "1"};
const MetricDef kProductProfileStaleSkipsTotal = {
    "trendspeed_product_profile_stale_skips_total", MetricType::kCounter,
    "Stale snapshots skipped by profile folding (carried-forward fields are "
    "not independent evidence)", "1"};
const MetricDef kProductEtaCacheHitsTotal = {
    "trendspeed_product_eta_cache_hits_total", MetricType::kCounter,
    "Route-ETA queries answered from a cache entry matching the current "
    "snapshot version", "1"};
const MetricDef kProductEtaCacheMissesTotal = {
    "trendspeed_product_eta_cache_misses_total", MetricType::kCounter,
    "Route-ETA queries that ran a fresh FastestRoute search", "1"};
const MetricDef kProductEtaCacheInvalidationsTotal = {
    "trendspeed_product_eta_cache_invalidations_total", MetricType::kCounter,
    "Cache entries discarded because the snapshot version moved on", "1"};
const MetricDef kProductBlendActivationsTotal = {
    "trendspeed_product_blend_activations_total", MetricType::kCounter,
    "Product reads that blended a stale snapshot toward the historical "
    "profile", "1"};
const MetricDef kProductReadLatencyUs = {
    "trendspeed_product_read_latency_us", MetricType::kHistogram,
    "Wall time of one product-layer read (snapshot read + ETA answer)", "us",
    "", kMicrosBounds, N(kMicrosBounds)};

// --- latency SLO engine (obs/slo.cc) ---------------------------------------
const MetricDef kSloBreachesTotal = {
    "trendspeed_slo_breaches_total", MetricType::kCounter,
    "Stage burn-rate transitions into the breach state", "1"};
const MetricDef kSloDumpsTotal = {
    "trendspeed_slo_dumps_total", MetricType::kCounter,
    "Flight-ring JSON artifacts dumped (breach or degradation)", "1"};

#define TRENDSPEED_SLO_STAGE_SERIES(name, help, unit)                         \
  {                                                                           \
    {name, MetricType::kGauge, help, unit, "stage=\"total\""},                \
        {name, MetricType::kGauge, help, unit, "stage=\"queue_wait\""},       \
        {name, MetricType::kGauge, help, unit, "stage=\"admission\""},        \
        {name, MetricType::kGauge, help, unit, "stage=\"bp\""},               \
        {name, MetricType::kGauge, help, unit, "stage=\"exchange\""},         \
        {name, MetricType::kGauge, help, unit, "stage=\"publish\""},          \
  }

const MetricDef kSloStageState[6] = TRENDSPEED_SLO_STAGE_SERIES(
    "trendspeed_slo_stage_state",
    "Burn-rate state of the stage's latency SLO (0 ok, 1 warn, 2 breach)",
    "state");
const MetricDef kSloStageP50Ms[6] = TRENDSPEED_SLO_STAGE_SERIES(
    "trendspeed_slo_stage_p50_ms",
    "Exact rolling-window median of the stage's per-slot latency", "ms");
const MetricDef kSloStageP95Ms[6] = TRENDSPEED_SLO_STAGE_SERIES(
    "trendspeed_slo_stage_p95_ms",
    "Exact rolling-window p95 of the stage's per-slot latency", "ms");
const MetricDef kSloStageP99Ms[6] = TRENDSPEED_SLO_STAGE_SERIES(
    "trendspeed_slo_stage_p99_ms",
    "Exact rolling-window p99 of the stage's per-slot latency", "ms");

#undef TRENDSPEED_SLO_STAGE_SERIES

const std::vector<const MetricDef*>& AllMetricDefs() {
  static const std::vector<const MetricDef*> all = {
      &kBpRunsTotal,
      &kBpConvergedTotal,
      &kBpSweepsTotal,
      &kBpMessageUpdatesTotal,
      &kBpIterations,
      &kBpResidual,
      &kBpWarmStartsTotal,
      &kBpActiveVars,
      &kBpSweepsSaved,
      &kBpKernelRunsScalar,
      &kBpKernelRunsSimd,
      &kBpKernelSimdFallbacksTotal,
      &kBpKernelWarmDenseTotal,
      &kSeedRunsGreedy,
      &kSeedRunsLazyGreedy,
      &kSeedRunsStochasticGreedy,
      &kSeedGainEvalsGreedy,
      &kSeedGainEvalsLazyGreedy,
      &kSeedGainEvalsStochasticGreedy,
      &kSeedRoundsTotal,
      &kSeedLazyRepopsTotal,
      &kSeedMarginalGain,
      &kPoolTasksTotal,
      &kPoolStealsTotal,
      &kPoolQueueDepth,
      &kPoolWorkers,
      &kPoolTaskWaitUs,
      &kPoolTaskRunUs,
      &kEstimatesTotal,
      &kEstimateLatencyMs,
      &kServingIngestLatencyMs,
      &kServingStalenessSlots,
      &kServingSlowIngestsTotal,
      &kServingSlotsEstimatedTotal,
      &kServingSlotsCarriedForwardTotal,
      &kServingDuplicateSlotsTotal,
      &kServingOutOfOrderSlotsTotal,
      &kServingRejectedBatchesTotal,
      &kServingObservationsFilteredTotal,
      &kServingObservationsDeduplicatedTotal,
      &kServingEstimationFailuresTotal,
      &kServingIngestEnqueuedTotal,
      &kServingIngestRejectedBackpressureTotal,
      &kServingIngestQueueDepth,
      &kServingIngestFlushedSlotsTotal,
      &kServingIngestStragglersTotal,
      &kSnapshotPublishesTotal,
      &kSnapshotReadRetriesTotal,
      &kSnapshotReadLatencyUs,
      &kShardCount,
      &kShardCutEdgeFraction,
      &kShardExchangeRounds,
      &kShardLargestSweepMs,
      &kServingIngestStragglerWorstSlot,
      &kServingIngestStragglerWorstCount,
      &kFlightEventsRecordedTotal,
      &kFlightEventsDroppedTotal,
      &kFlightThreads,
      &kProductProfileFoldsTotal,
      &kProductProfileStaleSkipsTotal,
      &kProductEtaCacheHitsTotal,
      &kProductEtaCacheMissesTotal,
      &kProductEtaCacheInvalidationsTotal,
      &kProductBlendActivationsTotal,
      &kProductReadLatencyUs,
      &kSloBreachesTotal,
      &kSloDumpsTotal,
      &kSloStageState[0],
      &kSloStageState[1],
      &kSloStageState[2],
      &kSloStageState[3],
      &kSloStageState[4],
      &kSloStageState[5],
      &kSloStageP50Ms[0],
      &kSloStageP50Ms[1],
      &kSloStageP50Ms[2],
      &kSloStageP50Ms[3],
      &kSloStageP50Ms[4],
      &kSloStageP50Ms[5],
      &kSloStageP95Ms[0],
      &kSloStageP95Ms[1],
      &kSloStageP95Ms[2],
      &kSloStageP95Ms[3],
      &kSloStageP95Ms[4],
      &kSloStageP95Ms[5],
      &kSloStageP99Ms[0],
      &kSloStageP99Ms[1],
      &kSloStageP99Ms[2],
      &kSloStageP99Ms[3],
      &kSloStageP99Ms[4],
      &kSloStageP99Ms[5],
  };
  return all;
}

}  // namespace obs
}  // namespace trendspeed
