// Monotonic clock for every span / latency measurement in the tree.
//
// All observability timing (ScopedSpan, WallTimer, histogram latencies) goes
// through MonotonicNanos so the same guarantee holds everywhere: the reading
// is steady_clock-backed and never runs backwards, so an NTP step on the
// host cannot produce a negative duration. ElapsedNanosSince additionally
// clamps at zero, which keeps durations sane even under the injected test
// clock (the only way a reading can decrease).
//
// `obs` is the bottom layer of the library: it depends on nothing but the
// standard library, so util/ (thread pool, timer) can build on it.

#ifndef TRENDSPEED_OBS_CLOCK_H_
#define TRENDSPEED_OBS_CLOCK_H_

#include <cstdint>

namespace trendspeed {
namespace obs {

/// Nanoseconds on std::chrono::steady_clock since an arbitrary epoch.
uint64_t MonotonicNanos();

/// Test hook: replaces the clock source process-wide (nullptr restores the
/// real steady clock). Intended for single-threaded test setup only.
using ClockFn = uint64_t (*)();
void SetMonotonicClockForTest(ClockFn fn);

/// now - start_ns, clamped at 0 so a misbehaving (injected) clock can never
/// yield a negative duration.
uint64_t ElapsedNanosSince(uint64_t start_ns);

inline double NanosToMillis(uint64_t ns) {
  return static_cast<double>(ns) * 1e-6;
}
inline double NanosToSeconds(uint64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_CLOCK_H_
