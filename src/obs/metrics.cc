#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <string_view>

#include "obs/export.h"

namespace trendspeed {
namespace obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

size_t Counter::CellIndex() {
  // One cell per thread (mod kCells); the slot is assigned once per thread,
  // so a thread's adds always hit the same cache line and two threads
  // rarely share one.
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % kCells;
}

Histogram::Histogram(const MetricDef& def) {
  bounds_.assign(def.bucket_bounds, def.bucket_bounds + def.num_buckets);
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

namespace {

std::string EntryKey(const MetricDef& def) {
  std::string key(def.name);
  key.push_back('\0');
  key += def.labels;
  return key;
}

MetricId MakeId(const MetricDef& def) {
  return MetricId{def.name, def.labels, def.help, def.unit};
}

}  // namespace

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const MetricDef& def) {
  return shards_[std::hash<std::string_view>{}(def.name) % kShards];
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const MetricDef& def) {
  Shard& shard = ShardFor(def);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.entries.try_emplace(EntryKey(def));
  Entry& entry = it->second;
  if (inserted) {
    entry.def = def;
    switch (def.type) {
      case MetricType::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        entry.histogram = std::make_unique<Histogram>(def);
        break;
    }
  } else if (entry.def.type != def.type) {
    return nullptr;  // same series registered under two types
  }
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const MetricDef& def) {
  Entry* e = GetEntry(def);
  return e != nullptr ? e->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const MetricDef& def) {
  Entry* e = GetEntry(def);
  return e != nullptr ? e->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const MetricDef& def) {
  Entry* e = GetEntry(def);
  return e != nullptr ? e->histogram.get() : nullptr;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      switch (entry.def.type) {
        case MetricType::kCounter:
          snap.counters.push_back(
              CounterSnapshot{MakeId(entry.def), entry.counter->Value()});
          break;
        case MetricType::kGauge:
          snap.gauges.push_back(
              GaugeSnapshot{MakeId(entry.def), entry.gauge->Value()});
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *entry.histogram;
          HistogramSnapshot hs;
          hs.id = MakeId(entry.def);
          hs.bounds.reserve(h.num_buckets());
          for (size_t i = 0; i < h.num_buckets(); ++i) {
            hs.bounds.push_back(h.bound(i));
          }
          hs.counts.reserve(h.num_buckets() + 1);
          // Derive the total from the same per-bucket reads that feed the
          // cumulative series. Observe() bumps the bucket cell and the
          // separate total as two relaxed ops, so reading h.count()
          // independently can disagree with the bucket sum mid-scrape —
          // which breaks the 0.0.4 invariant that `_bucket{le="+Inf"}`
          // equals `_count`.
          hs.count = 0;
          for (size_t i = 0; i <= h.num_buckets(); ++i) {
            uint64_t c = h.bucket_count(i);
            hs.counts.push_back(c);
            hs.count += c;
          }
          hs.sum = h.sum();
          snap.histograms.push_back(std::move(hs));
          break;
        }
      }
    }
  }
  auto by_id = [](const auto& a, const auto& b) {
    if (a.id.name != b.id.name) return a.id.name < b.id.name;
    return a.id.labels < b.id.labels;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_id);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_id);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_id);
  return snap;
}

std::string MetricsRegistry::ToJson() const { return ToJsonText(Snapshot()); }

std::string MetricsRegistry::ToPrometheus() const {
  return ToPrometheusText(Snapshot());
}

}  // namespace obs
}  // namespace trendspeed
