#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace trendspeed {
namespace obs {

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<ClockFn> g_clock_override{nullptr};

}  // namespace

uint64_t MonotonicNanos() {
  ClockFn fn = g_clock_override.load(std::memory_order_acquire);
  return fn != nullptr ? fn() : SteadyNanos();
}

void SetMonotonicClockForTest(ClockFn fn) {
  g_clock_override.store(fn, std::memory_order_release);
}

uint64_t ElapsedNanosSince(uint64_t start_ns) {
  uint64_t now = MonotonicNanos();
  return now >= start_ns ? now - start_ns : 0;
}

}  // namespace obs
}  // namespace trendspeed
