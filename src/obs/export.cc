#include "obs/export.h"

#include <cstdio>

namespace trendspeed {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void AppendIdFields(const MetricId& id, std::string* out) {
  *out += "\"name\": \"" + JsonEscape(id.name) + "\"";
  *out += ", \"labels\": \"" + JsonEscape(id.labels) + "\"";
  *out += ", \"unit\": \"" + JsonEscape(id.unit) + "\"";
}

/// `name{labels}` or just `name`; extra ("le=...") is appended to the label
/// set when non-empty.
std::string Series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  return all.empty() ? name : name + "{" + all + "}";
}

void AppendHeader(const MetricId& id, const char* type, std::string* out,
                  std::string* last_name) {
  if (id.name == *last_name) return;  // one HELP/TYPE per name
  *last_name = id.name;
  *out += "# HELP " + id.name + " " + id.help;
  if (!id.unit.empty() && id.unit != "1") *out += " (" + id.unit + ")";
  *out += "\n# TYPE " + id.name + " " + type + "\n";
}

}  // namespace

std::string FormatMetricValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string ToJsonText(const RegistrySnapshot& snap) {
  std::string out = "{\n  \"counters\": [";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    const CounterSnapshot& c = snap.counters[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(c.id, &out);
    out += ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += snap.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const GaugeSnapshot& g = snap.gauges[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(g.id, &out);
    out += ", \"value\": " + FormatMetricValue(g.value) + "}";
  }
  out += snap.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(h.id, &out);
    out += ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      out += b > 0 ? ", " : "";
      out += "{\"le\": \"";
      out += b < h.bounds.size() ? FormatMetricValue(h.bounds[b]) : "inf";
      out += "\", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "], \"sum\": " + FormatMetricValue(h.sum);
    out += ", \"count\": " + std::to_string(h.count) + "}";
  }
  out += snap.histograms.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string ToPrometheusText(const RegistrySnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const CounterSnapshot& c : snap.counters) {
    AppendHeader(c.id, "counter", &out, &last_name);
    out += Series(c.id.name, c.id.labels) + " " + std::to_string(c.value) +
           "\n";
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    AppendHeader(g.id, "gauge", &out, &last_name);
    out += Series(g.id.name, g.id.labels) + " " + FormatMetricValue(g.value) +
           "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    AppendHeader(h.id, "histogram", &out, &last_name);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      std::string le = b < h.bounds.size() ? FormatMetricValue(h.bounds[b])
                                           : "+Inf";
      out += Series(h.id.name + "_bucket", h.id.labels, "le=\"" + le + "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += Series(h.id.name + "_sum", h.id.labels) + " " +
           FormatMetricValue(h.sum) + "\n";
    out += Series(h.id.name + "_count", h.id.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace trendspeed
