#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace trendspeed {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters are illegal raw inside a JSON
        // string; \u-encode them so a hostile label value can't produce
        // an unparseable document.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Label sets arrive pre-formatted as `key="value",key="value"`. The 0.0.4
// exposition format requires backslash, double-quote, and newline escaped
// inside label values, but MetricDef authors write raw values — so rewrite
// just the quoted spans. A '"' followed by ',' or the end of the list
// closes a value; any other '"' belongs to it. Already-simple label sets
// (every committed catalog entry) pass through byte-identical, keeping the
// existing goldens stable.
std::string EscapeLabelValues(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_value = false;
  for (size_t i = 0; i < labels.size(); ++i) {
    char c = labels[i];
    if (!in_value) {
      out.push_back(c);
      if (c == '"') in_value = true;
      continue;
    }
    if (c == '"' && (i + 1 == labels.size() || labels[i + 1] == ',')) {
      out.push_back('"');
      in_value = false;
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// HELP text: 0.0.4 requires '\\' and newline escaped (quotes are legal raw
// in HELP, unlike label values).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// JSON has no literal for non-finite numbers; render them as the quoted
// Prometheus spelling so the document stays parseable.
std::string JsonNumber(double v) {
  std::string s = FormatMetricValue(v);
  return std::isfinite(v) ? s : "\"" + s + "\"";
}

void AppendIdFields(const MetricId& id, std::string* out) {
  *out += "\"name\": \"" + JsonEscape(id.name) + "\"";
  *out += ", \"labels\": \"" + JsonEscape(id.labels) + "\"";
  *out += ", \"unit\": \"" + JsonEscape(id.unit) + "\"";
}

/// `name{labels}` or just `name`; extra ("le=...") is appended to the label
/// set when non-empty.
std::string Series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  std::string all = EscapeLabelValues(labels);
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  return all.empty() ? name : name + "{" + all + "}";
}

void AppendHeader(const MetricId& id, const char* type, std::string* out,
                  std::string* last_name) {
  if (id.name == *last_name) return;  // one HELP/TYPE per name
  *last_name = id.name;
  *out += "# HELP " + id.name + " " + EscapeHelp(id.help);
  if (!id.unit.empty() && id.unit != "1") *out += " (" + id.unit + ")";
  *out += "\n# TYPE " + id.name + " " + type + "\n";
}

}  // namespace

std::string FormatMetricValue(double v) {
  // %g renders non-finite doubles as "inf"/"-inf"/"nan", which the 0.0.4
  // exposition format does not accept; it wants "+Inf"/"-Inf"/"NaN".
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string ToJsonText(const RegistrySnapshot& snap) {
  std::string out = "{\n  \"counters\": [";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    const CounterSnapshot& c = snap.counters[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(c.id, &out);
    out += ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += snap.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const GaugeSnapshot& g = snap.gauges[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(g.id, &out);
    out += ", \"value\": " + JsonNumber(g.value) + "}";
  }
  out += snap.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    out += i > 0 ? "," : "";
    out += "\n    {";
    AppendIdFields(h.id, &out);
    out += ", \"buckets\": [";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      out += b > 0 ? ", " : "";
      out += "{\"le\": \"";
      out += b < h.bounds.size() ? FormatMetricValue(h.bounds[b]) : "inf";
      out += "\", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "], \"sum\": " + JsonNumber(h.sum);
    // Total derived from the buckets just rendered, not the separately-read
    // h.count: the exposition invariant is +Inf bucket == count, and only
    // the bucket sum is guaranteed consistent with the bucket lines.
    out += ", \"count\": " + std::to_string(cumulative) + "}";
  }
  out += snap.histograms.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string ToPrometheusText(const RegistrySnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const CounterSnapshot& c : snap.counters) {
    AppendHeader(c.id, "counter", &out, &last_name);
    out += Series(c.id.name, c.id.labels) + " " + std::to_string(c.value) +
           "\n";
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    AppendHeader(g.id, "gauge", &out, &last_name);
    out += Series(g.id.name, g.id.labels) + " " + FormatMetricValue(g.value) +
           "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    AppendHeader(h.id, "histogram", &out, &last_name);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      std::string le = b < h.bounds.size() ? FormatMetricValue(h.bounds[b])
                                           : "+Inf";
      out += Series(h.id.name + "_bucket", h.id.labels, "le=\"" + le + "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += Series(h.id.name + "_sum", h.id.labels) + " " +
           FormatMetricValue(h.sum) + "\n";
    // 0.0.4 requires `_count` == `_bucket{le="+Inf"}`; derive it from the
    // cumulative total actually emitted above so the two lines can never
    // disagree, even for a snapshot whose count field was read mid-update.
    out += Series(h.id.name + "_count", h.id.labels) + " " +
           std::to_string(cumulative) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace trendspeed
