#include "obs/trace.h"

#include <algorithm>

#include "obs/clock.h"

namespace trendspeed {
namespace obs {

namespace {
// Per-thread nesting depth; spans on different threads are independent
// trees, which matches how the pool executes parallel regions.
thread_local uint32_t tl_span_depth = 0;
// Innermost open ScopedSpan on this thread — the parent for the next one.
thread_local uint64_t tl_current_span = 0;
}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(std::max<size_t>(1, capacity)) {}

void TraceRecorder::Record(const char* name, uint64_t start_ns,
                           uint64_t duration_ns, uint32_t depth,
                           uint32_t thread_id, uint64_t span_id,
                           uint64_t parent_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = TraceEvent{name,   start_ns, duration_ns, depth,
                            total_, thread_id, span_id,    parent_id};
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  size_t n = std::min<uint64_t>(total_, ring_.size());
  out.reserve(n);
  // Oldest retained event sits at head_ when the ring has wrapped.
  size_t start = total_ > ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\": \"";
    out += e.name;
    out += "\", \"start_ns\": " + std::to_string(e.start_ns);
    out += ", \"duration_ns\": " + std::to_string(e.duration_ns);
    out += ", \"depth\": " + std::to_string(e.depth);
    out += ", \"seq\": " + std::to_string(e.seq);
    out += ", \"thread_id\": " + std::to_string(e.thread_id);
    out += ", \"span\": " + std::to_string(e.span_id);
    out += ", \"parent\": " + std::to_string(e.parent_id) + "}";
  }
  out += events.empty() ? "]" : "\n]";
  return out;
}

ScopedSpan::ScopedSpan(TraceRecorder* recorder, const char* name)
    : recorder_(recorder), name_(name) {
  if (recorder_ == nullptr) return;
  depth_ = tl_span_depth++;
  span_id_ = recorder_->NextSpanId();
  parent_id_ = tl_current_span;
  tl_current_span = span_id_;
  start_ns_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  --tl_span_depth;
  tl_current_span = parent_id_;
  recorder_->Record(name_, start_ns_, ElapsedNanosSince(start_ns_), depth_,
                    CurrentThreadId(), span_id_, parent_id_);
}

}  // namespace obs
}  // namespace trendspeed
