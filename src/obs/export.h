// Exporters over RegistrySnapshot: JSON (benches, tests, log lines) and
// Prometheus text exposition format (scraping).
//
// Both are deterministic for a given snapshot: series are pre-sorted by
// (name, labels) in MetricsRegistry::Snapshot() and numbers are formatted
// with a fixed shortest-round-trip format, so goldens in tests/obs_test.cc
// stay stable across platforms.

#ifndef TRENDSPEED_OBS_EXPORT_H_
#define TRENDSPEED_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace trendspeed {
namespace obs {

/// One JSON object: {"counters": [...], "gauges": [...], "histograms":
/// [...]}. Histogram buckets are cumulative with an explicit "inf" bucket,
/// mirroring the Prometheus exposition so the two exports agree.
std::string ToJsonText(const RegistrySnapshot& snap);

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// comments, one sample line per series, histograms expanded into
/// `_bucket{le="..."}` / `_sum` / `_count`.
std::string ToPrometheusText(const RegistrySnapshot& snap);

/// Shortest %g-style rendering shared by both exporters ("5", "0.25",
/// "1e+06"); exposed for golden tests.
std::string FormatMetricValue(double v);

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_EXPORT_H_
