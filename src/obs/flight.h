// Slot-causal flight recorder: per-thread bounded event rings merged into
// per-slot causal timelines with critical-path attribution.
//
// Motivation (docs/observability.md "Flight recorder"): once a slot's life
// spans the MPSC ingest queue, concurrent per-shard BP solves on the thread
// pool, and the seqlock snapshot publish, flat counters cannot answer "why
// was slot 1041 slow?". The flight recorder threads a SlotTraceContext
// through the serving pipeline — IngestFrontEnd admission -> Ingest ->
// Estimate -> per-shard solves -> snapshot publish — so the collector can
// reassemble one slot's stage timeline across every participating thread.
//
// Concurrency design:
//
//   * One bounded ring per writer thread, single-writer by construction
//     (lazily registered on first Record, cached in TLS keyed by a
//     recorder generation id so a destroyed recorder can never be written
//     through a stale cache entry).
//   * Each ring cell is an independent seqlock (same fence protocol as
//     core/snapshot.cc): the writer bumps the cell sequence odd, stores the
//     payload relaxed, bumps it even with release; the collector skips
//     cells it catches mid-write or unwritten. Collection never blocks a
//     writer and writers never wait — an overwritten cell is a counted
//     drop, not a stall.
//   * Cells carry only trivially-copyable fields (no strings, no
//     allocation on the record path).
//
// Detached contract (the PR 3 rule): every record site is null-handle
// gated. `FlightSpan span(nullptr, ...)` costs two predicted branches and
// no clock reads; a pipeline with no recorder attached is bitwise identical
// to an uninstrumented one (bench_observability_overhead gates this).

#ifndef TRENDSPEED_OBS_FLIGHT_H_
#define TRENDSPEED_OBS_FLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trendspeed {
namespace obs {

class Counter;
class Gauge;
class MetricsRegistry;

/// Pipeline stages a slot passes through. kQueueWait/kIngest/kAdmission/
/// kBpSolve/kExchange/kPublish sit on the causal backbone (serially ordered
/// per slot); kEstimate is an envelope containing kBpSolve, and kShardSolve
/// events are the concurrent per-shard solves inside a barriered kBpSolve
/// round — both are informational and excluded from critical-path sums.
enum class FlightStage : uint8_t {
  kQueueWait = 0,  ///< first enqueue of the slot's batch -> admission
  kIngest,         ///< whole ServingSession::Ingest call
  kAdmission,      ///< sanitize/dedup of the offered batch
  kEstimate,       ///< Estimator::Estimate envelope (contains kBpSolve)
  kBpSolve,        ///< one barriered solve region (all shards, or flat BP)
  kShardSolve,     ///< one shard's solve inside a kBpSolve round
  kExchange,       ///< serial boundary-halo exchange after a round
  kPublish,        ///< seqlock snapshot publish
};
constexpr size_t kNumFlightStages = 8;

/// Stable lower_snake_case stage name ("queue_wait", "bp_solve", ...), used
/// verbatim by the Chrome trace exporter.
const char* FlightStageName(FlightStage stage);

/// Shard tag for events that are not shard-scoped.
constexpr uint32_t kNoShard = 0xffffffffu;

/// One recorded stage occurrence, as returned by the collector.
struct FlightEvent {
  uint64_t slot = 0;
  uint64_t start_ns = 0;     ///< MonotonicNanos at stage entry
  uint64_t duration_ns = 0;  ///< clamped >= 0 (obs/clock.h contract)
  uint64_t index = 0;        ///< per-thread record order (0-based)
  uint32_t thread_id = 0;    ///< dense process-wide id (obs::CurrentThreadId)
  uint32_t shard = kNoShard; ///< shard id for kShardSolve, else kNoShard
  FlightStage stage = FlightStage::kQueueWait;
  /// 1-based position on the slot's causal backbone (assigned from the
  /// SlotTraceContext stage sequence); 0 = off-path (kShardSolve, or an
  /// event recorded without a context).
  uint32_t path_seq = 0;
};

/// Carried through the pipeline alongside one slot's batch so every stage
/// records against the same slot identity and causal order. Created at
/// admission (or at Ingest entry for direct calls) only when a recorder is
/// attached; detached pipelines pass nullptr everywhere.
struct SlotTraceContext {
  uint64_t slot = 0;
  uint64_t origin_ns = 0;   ///< monotonic timestamp of the slot's first enqueue
  uint32_t stage_seq = 0;   ///< bumped by each on-path FlightSpan
};

class FlightRecorder {
 public:
  /// `events_per_thread` bounds each writer ring (rounded up to >= 8);
  /// `max_threads` bounds how many distinct writer threads may register —
  /// later threads' events are counted as drops rather than recorded.
  explicit FlightRecorder(size_t events_per_thread = 4096,
                          size_t max_threads = 256);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one completed stage. Thread-safe, lock-free after the calling
  /// thread's first Record (which registers its ring under a mutex).
  void Record(uint64_t slot, FlightStage stage, uint64_t start_ns,
              uint64_t duration_ns, uint32_t shard = kNoShard,
              uint32_t path_seq = 0);

  /// Merged snapshot of every thread ring, sorted by (start_ns, thread_id,
  /// index). Cells caught mid-write are skipped, never torn. Safe to call
  /// concurrently with writers.
  std::vector<FlightEvent> Collect() const;

  /// Collect() filtered to one slot.
  std::vector<FlightEvent> CollectSlot(uint64_t slot) const;

  /// (thread_id, label) for every registered writer ring, sorted by id.
  /// Labels come from SetFlightThreadLabel ("pool-3" for pool workers),
  /// defaulting to "thread-<id>".
  std::vector<std::pair<uint32_t, std::string>> ThreadLabels() const;

  /// Mirrors recorder activity into the registry (trendspeed_flight_*).
  /// Call before recording starts; null detaches.
  void AttachMetrics(MetricsRegistry* registry);

  /// Events recorded over the recorder's lifetime (retained + overwritten).
  uint64_t total_recorded() const;
  /// Events lost to ring overwrites or the max_threads bound.
  uint64_t dropped() const;
  size_t events_per_thread() const { return events_per_thread_; }
  /// Writer rings registered so far.
  size_t num_threads() const;

 private:
  // One ring cell: an independent seqlock over a trivially-copyable
  // payload. seq 0 = never written, odd = write in progress.
  struct Cell {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint32_t> thread_id{0};
    std::atomic<uint32_t> shard{0};
    std::atomic<uint32_t> stage_and_path{0};  // stage in low 8, path_seq << 8
    std::atomic<uint64_t> slot{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> index{0};
  };
  struct ThreadRing {
    explicit ThreadRing(size_t capacity) : cells(capacity) {}
    uint32_t thread_id = 0;
    std::string label;
    std::atomic<uint64_t> count{0};  // events ever written into this ring
    std::vector<Cell> cells;
  };

  ThreadRing* RingForThisThread();

  const size_t events_per_thread_;
  const size_t max_threads_;
  const uint64_t generation_;  // process-unique id for the TLS ring cache

  mutable std::mutex mu_;  // guards rings_ growth only
  std::vector<std::unique_ptr<ThreadRing>> rings_;

  std::atomic<uint64_t> total_recorded_{0};
  std::atomic<uint64_t> dropped_unregistered_{0};

  Counter* m_recorded_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Gauge* m_threads_ = nullptr;
};

/// Labels the calling thread's flight ring (and Chrome-trace thread row).
/// Pool workers call this once at startup ("pool-<i>"); the label applies
/// to rings registered after the call. Pass "" to restore the default.
void SetFlightThreadLabel(const char* label);

/// RAII stage span. A null recorder makes the whole object two predicted
/// branches: no clock reads, no context mutation (so a detached run's
/// SlotTraceContext — if one even exists — is bitwise untouched).
class FlightSpan {
 public:
  FlightSpan(FlightRecorder* recorder, uint64_t slot, FlightStage stage,
             uint32_t shard = kNoShard, SlotTraceContext* ctx = nullptr)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    slot_ = slot;
    stage_ = stage;
    shard_ = shard;
    path_seq_ = ctx != nullptr ? ++ctx->stage_seq : 0;
    start_ns_ = Now();
  }
  ~FlightSpan() {
    if (recorder_ == nullptr) return;
    End();
  }

  FlightSpan(const FlightSpan&) = delete;
  FlightSpan& operator=(const FlightSpan&) = delete;

 private:
  static uint64_t Now();  // MonotonicNanos, kept out of the header
  void End();

  FlightRecorder* recorder_;
  uint64_t slot_ = 0;
  uint64_t start_ns_ = 0;
  uint32_t shard_ = kNoShard;
  uint32_t path_seq_ = 0;
  FlightStage stage_ = FlightStage::kQueueWait;
};

/// Bundles the recorder + slot identity + causal context for APIs below the
/// serving layer (ShardedBpEngine::Infer takes one by value; the default
/// instance is fully detached).
struct FlightSink {
  FlightRecorder* recorder = nullptr;
  uint64_t slot = 0;
  SlotTraceContext* ctx = nullptr;
};

/// Per-slot critical-path decomposition over one slot's collected events.
/// total = queue-wait + the Ingest envelope; the attributed stages
/// (admission / BP / exchange / publish) partition the envelope, and
/// whatever the envelope spent outside them (trend monitor, regression
/// Step 2, sanitizer bookkeeping) lands in other_ns.
struct SlotCriticalPath {
  uint64_t slot = 0;
  uint64_t total_ns = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t admission_ns = 0;
  uint64_t bp_ns = 0;        ///< barriered solve regions (all rounds)
  uint64_t exchange_ns = 0;  ///< serial halo-exchange rounds
  uint64_t publish_ns = 0;
  uint64_t other_ns = 0;     ///< Ingest envelope time outside the stages above
  size_t events = 0;         ///< events considered (all stages, incl. off-path)

  /// Fraction of total_ns attributed to a named stage (1.0 when total is 0).
  double AttributedFraction() const;
};

/// Computes the decomposition for `slot` from collected events (typically
/// FlightRecorder::CollectSlot output; events for other slots are ignored).
SlotCriticalPath ComputeSlotCriticalPath(const std::vector<FlightEvent>& events,
                                         uint64_t slot);

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_FLIGHT_H_
