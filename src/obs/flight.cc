#include "obs/flight.h"

#include <algorithm>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"  // CurrentThreadId is declared there, defined here

namespace trendspeed {
namespace obs {

namespace {

// Process-unique recorder generation ids (never reused), so a TLS ring
// cache entry from a destroyed recorder can never alias a new one.
std::atomic<uint64_t> g_next_generation{1};

// Dense process-wide thread ids shared with TraceRecorder (obs/trace.h).
constexpr uint32_t kUnassignedThreadId = 0xffffffffu;
std::atomic<uint32_t> g_next_thread_id{0};
thread_local uint32_t tl_thread_id = kUnassignedThreadId;

thread_local std::string tl_flight_label;

struct RingCache {
  uint64_t generation = 0;
  void* ring = nullptr;  // FlightRecorder::ThreadRing*, cached per recorder
};
thread_local RingCache tl_ring_cache;

}  // namespace

uint32_t CurrentThreadId() {
  if (tl_thread_id == kUnassignedThreadId) {
    tl_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_thread_id;
}

const char* FlightStageName(FlightStage stage) {
  switch (stage) {
    case FlightStage::kQueueWait:
      return "queue_wait";
    case FlightStage::kIngest:
      return "ingest";
    case FlightStage::kAdmission:
      return "admission";
    case FlightStage::kEstimate:
      return "estimate";
    case FlightStage::kBpSolve:
      return "bp_solve";
    case FlightStage::kShardSolve:
      return "shard_solve";
    case FlightStage::kExchange:
      return "exchange";
    case FlightStage::kPublish:
      return "publish";
  }
  return "unknown";
}

void SetFlightThreadLabel(const char* label) {
  tl_flight_label = label != nullptr ? label : "";
}

FlightRecorder::FlightRecorder(size_t events_per_thread, size_t max_threads)
    : events_per_thread_(std::max<size_t>(8, events_per_thread)),
      max_threads_(std::max<size_t>(1, max_threads)),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  if (tl_ring_cache.generation == generation_) {
    return static_cast<ThreadRing*>(tl_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ThreadRing* ring = nullptr;
  if (rings_.size() < max_threads_) {
    rings_.push_back(std::make_unique<ThreadRing>(events_per_thread_));
    ring = rings_.back().get();
    ring->thread_id = CurrentThreadId();
    ring->label = tl_flight_label.empty()
                      ? "thread-" + std::to_string(ring->thread_id)
                      : tl_flight_label;
    Set(m_threads_, static_cast<double>(rings_.size()));
  }
  // Cache even the nullptr result: a thread past the max_threads bound
  // stays on the cheap drop path instead of retaking the mutex per event.
  tl_ring_cache.generation = generation_;
  tl_ring_cache.ring = ring;
  return ring;
}

void FlightRecorder::Record(uint64_t slot, FlightStage stage, uint64_t start_ns,
                            uint64_t duration_ns, uint32_t shard,
                            uint32_t path_seq) {
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) {
    dropped_unregistered_.fetch_add(1, std::memory_order_relaxed);
    Add(m_dropped_);
    return;
  }
  uint64_t n = ring->count.load(std::memory_order_relaxed);
  Cell& cell = ring->cells[n % events_per_thread_];
  // Single writer per ring; the seqlock below only defends the collector.
  // Same fence protocol as the snapshot publisher (core/snapshot.cc).
  uint32_t s = cell.seq.load(std::memory_order_relaxed);
  cell.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  cell.thread_id.store(ring->thread_id, std::memory_order_relaxed);
  cell.shard.store(shard, std::memory_order_relaxed);
  cell.stage_and_path.store(
      static_cast<uint32_t>(stage) | (path_seq << 8), std::memory_order_relaxed);
  cell.slot.store(slot, std::memory_order_relaxed);
  cell.start_ns.store(start_ns, std::memory_order_relaxed);
  cell.duration_ns.store(duration_ns, std::memory_order_relaxed);
  cell.index.store(n, std::memory_order_relaxed);
  cell.seq.store(s + 2, std::memory_order_release);
  ring->count.store(n + 1, std::memory_order_release);
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
  Add(m_recorded_);
  if (n >= events_per_thread_) Add(m_dropped_);  // overwrote a live cell
}

std::vector<FlightEvent> FlightRecorder::Collect() const {
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<FlightEvent> out;
  for (ThreadRing* ring : rings) {
    uint64_t n = ring->count.load(std::memory_order_acquire);
    size_t filled = static_cast<size_t>(
        std::min<uint64_t>(n, events_per_thread_));
    for (size_t i = 0; i < filled; ++i) {
      const Cell& cell = ring->cells[i];
      uint32_t s1 = cell.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // unwritten or mid-write
      FlightEvent e;
      e.thread_id = cell.thread_id.load(std::memory_order_relaxed);
      e.shard = cell.shard.load(std::memory_order_relaxed);
      uint32_t sp = cell.stage_and_path.load(std::memory_order_relaxed);
      e.stage = static_cast<FlightStage>(sp & 0xff);
      e.path_seq = sp >> 8;
      e.slot = cell.slot.load(std::memory_order_relaxed);
      e.start_ns = cell.start_ns.load(std::memory_order_relaxed);
      e.duration_ns = cell.duration_ns.load(std::memory_order_relaxed);
      e.index = cell.index.load(std::memory_order_relaxed);
      // Pairs with the writer's release fence: if any payload load above
      // raced an in-flight overwrite, the seq re-read sees its odd store.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (cell.seq.load(std::memory_order_relaxed) != s1) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              return a.index < b.index;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::CollectSlot(uint64_t slot) const {
  std::vector<FlightEvent> all = Collect();
  std::vector<FlightEvent> out;
  out.reserve(all.size());
  for (const FlightEvent& e : all) {
    if (e.slot == slot) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<uint32_t, std::string>> FlightRecorder::ThreadLabels()
    const {
  std::vector<std::pair<uint32_t, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(rings_.size());
    for (const auto& r : rings_) out.emplace_back(r->thread_id, r->label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlightRecorder::AttachMetrics(MetricsRegistry* registry) {
  m_recorded_ = GetCounter(registry, kFlightEventsRecordedTotal);
  m_dropped_ = GetCounter(registry, kFlightEventsDroppedTotal);
  m_threads_ = GetGauge(registry, kFlightThreads);
  std::lock_guard<std::mutex> lock(mu_);
  Set(m_threads_, static_cast<double>(rings_.size()));
}

uint64_t FlightRecorder::total_recorded() const {
  return total_recorded_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::dropped() const {
  uint64_t d = dropped_unregistered_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    uint64_t n = r->count.load(std::memory_order_relaxed);
    if (n > events_per_thread_) d += n - events_per_thread_;
  }
  return d;
}

size_t FlightRecorder::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

uint64_t FlightSpan::Now() { return MonotonicNanos(); }

void FlightSpan::End() {
  recorder_->Record(slot_, stage_, start_ns_, ElapsedNanosSince(start_ns_),
                    shard_, path_seq_);
}

double SlotCriticalPath::AttributedFraction() const {
  if (total_ns == 0) return 1.0;
  return 1.0 - static_cast<double>(other_ns) / static_cast<double>(total_ns);
}

SlotCriticalPath ComputeSlotCriticalPath(const std::vector<FlightEvent>& events,
                                         uint64_t slot) {
  SlotCriticalPath cp;
  cp.slot = slot;
  uint64_t ingest_ns = 0;
  for (const FlightEvent& e : events) {
    if (e.slot != slot) continue;
    ++cp.events;
    switch (e.stage) {
      case FlightStage::kQueueWait:
        cp.queue_wait_ns += e.duration_ns;
        break;
      case FlightStage::kIngest:
        ingest_ns += e.duration_ns;
        break;
      case FlightStage::kAdmission:
        cp.admission_ns += e.duration_ns;
        break;
      case FlightStage::kBpSolve:
        cp.bp_ns += e.duration_ns;
        break;
      case FlightStage::kExchange:
        cp.exchange_ns += e.duration_ns;
        break;
      case FlightStage::kPublish:
        cp.publish_ns += e.duration_ns;
        break;
      case FlightStage::kEstimate:
      case FlightStage::kShardSolve:
        // Envelope / concurrent-inner stages: already covered by kBpSolve
        // (barriered) on the backbone; counting them would double-book.
        break;
    }
  }
  cp.total_ns = cp.queue_wait_ns + ingest_ns;
  uint64_t attributed =
      cp.admission_ns + cp.bp_ns + cp.exchange_ns + cp.publish_ns;
  cp.other_ns = ingest_ns > attributed ? ingest_ns - attributed : 0;
  return cp;
}

}  // namespace obs
}  // namespace trendspeed
