#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/catalog.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace trendspeed {
namespace obs {

const char* SloStageName(SloStage stage) {
  switch (stage) {
    case SloStage::kTotal:
      return "total";
    case SloStage::kQueueWait:
      return "queue_wait";
    case SloStage::kAdmission:
      return "admission";
    case SloStage::kBp:
      return "bp";
    case SloStage::kExchange:
      return "exchange";
    case SloStage::kPublish:
      return "publish";
  }
  return "unknown";
}

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarn:
      return "warn";
    case SloState::kBreach:
      return "breach";
  }
  return "unknown";
}

double SloOptions::BudgetMs(SloStage stage) const {
  switch (stage) {
    case SloStage::kTotal:
      return total_budget_ms;
    case SloStage::kQueueWait:
      return queue_wait_budget_ms;
    case SloStage::kAdmission:
      return admission_budget_ms;
    case SloStage::kBp:
      return bp_budget_ms;
    case SloStage::kExchange:
      return exchange_budget_ms;
    case SloStage::kPublish:
      return publish_budget_ms;
  }
  return 0.0;
}

const char* SloOptions::Invalid() const {
  for (size_t i = 0; i < kNumSloStages; ++i) {
    double b = BudgetMs(static_cast<SloStage>(i));
    if (!(b >= 0.0) || !std::isfinite(b)) {
      return "slo stage budgets must be finite and >= 0 ms";
    }
  }
  if (window_slots == 0) return "slo window_slots must be >= 1";
  if (short_window_slots == 0) return "slo short_window_slots must be >= 1";
  if (short_window_slots > long_window_slots) {
    return "slo short_window_slots must be <= long_window_slots";
  }
  if (long_window_slots > window_slots) {
    return "slo long_window_slots must be <= window_slots";
  }
  if (!(error_budget > 0.0) || !(error_budget <= 1.0)) {
    return "slo error_budget must be in (0, 1]";
  }
  if (!(warn_burn_rate > 0.0) || !std::isfinite(warn_burn_rate)) {
    return "slo warn_burn_rate must be finite and > 0";
  }
  if (!(breach_burn_rate >= warn_burn_rate) ||
      !std::isfinite(breach_burn_rate)) {
    return "slo breach_burn_rate must be finite and >= warn_burn_rate";
  }
  return nullptr;
}

SloEngine::SloEngine(const SloOptions& options, const FlightRecorder* flight)
    : opts_(options), flight_(flight) {
  for (StageTrack& t : tracks_) t.window.assign(opts_.window_slots, 0.0);
}

void SloEngine::AttachMetrics(MetricsRegistry* registry) {
  m_breaches_ = GetCounter(registry, kSloBreachesTotal);
  m_dumps_ = GetCounter(registry, kSloDumpsTotal);
  for (size_t i = 0; i < kNumSloStages; ++i) {
    StageTrack& t = tracks_[i];
    t.g_state = GetGauge(registry, kSloStageState[i]);
    t.g_p50 = GetGauge(registry, kSloStageP50Ms[i]);
    t.g_p95 = GetGauge(registry, kSloStageP95Ms[i]);
    t.g_p99 = GetGauge(registry, kSloStageP99Ms[i]);
  }
}

size_t SloEngine::WindowFill() const {
  return static_cast<size_t>(
      std::min<uint64_t>(slots_observed_, opts_.window_slots));
}

double SloEngine::QuantileMs(SloStage stage, double q) const {
  size_t n = WindowFill();
  if (n == 0) return 0.0;
  const std::vector<double>& w = tracks_[static_cast<size_t>(stage)].window;
  std::vector<double> sorted(w.begin(), w.begin() + static_cast<long>(n));
  std::sort(sorted.begin(), sorted.end());
  // Exact order statistic: the smallest x with at least ceil(q*n) samples
  // <= x. Deterministic, no interpolation.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

double SloEngine::BurnRate(SloStage stage, uint32_t k) const {
  double budget = opts_.BudgetMs(stage);
  if (budget <= 0.0) return 0.0;
  size_t n = std::min<size_t>(WindowFill(), k);
  if (n == 0) return 0.0;
  const std::vector<double>& w = tracks_[static_cast<size_t>(stage)].window;
  size_t over = 0;
  for (size_t i = 0; i < n; ++i) {
    // Walk backwards from the most recent observation.
    size_t idx = static_cast<size_t>((slots_observed_ - 1 - i) %
                                     opts_.window_slots);
    if (w[idx] > budget) ++over;
  }
  double frac = static_cast<double>(over) / static_cast<double>(n);
  return frac / opts_.error_budget;
}

void SloEngine::ObserveSlot(const SlotCriticalPath& cp) {
  const double vals[kNumSloStages] = {
      NanosToMillis(cp.total_ns),    NanosToMillis(cp.queue_wait_ns),
      NanosToMillis(cp.admission_ns), NanosToMillis(cp.bp_ns),
      NanosToMillis(cp.exchange_ns),  NanosToMillis(cp.publish_ns)};
  size_t write_idx =
      static_cast<size_t>(slots_observed_ % opts_.window_slots);
  ++slots_observed_;
  bool entered_breach = false;
  SloStage breach_stage = SloStage::kTotal;
  for (size_t i = 0; i < kNumSloStages; ++i) {
    SloStage stage = static_cast<SloStage>(i);
    StageTrack& t = tracks_[i];
    t.window[write_idx] = vals[i];
    Set(t.g_p50, QuantileMs(stage, 0.50));
    Set(t.g_p95, QuantileMs(stage, 0.95));
    Set(t.g_p99, QuantileMs(stage, 0.99));
    if (opts_.BudgetMs(stage) <= 0.0) continue;
    double short_burn = BurnRate(stage, opts_.short_window_slots);
    double long_burn = BurnRate(stage, opts_.long_window_slots);
    SloState next = t.state;
    if (short_burn >= opts_.breach_burn_rate &&
        long_burn >= opts_.breach_burn_rate) {
      next = SloState::kBreach;
    } else if (short_burn >= opts_.warn_burn_rate &&
               long_burn >= opts_.warn_burn_rate) {
      next = SloState::kWarn;
    } else if (short_burn < opts_.warn_burn_rate) {
      next = SloState::kOk;
    }  // else: short window hot, long window cool — hold the previous state
    if (next == SloState::kBreach && t.state != SloState::kBreach) {
      ++breaches_;
      Add(m_breaches_);
      if (!entered_breach) {
        entered_breach = true;
        breach_stage = stage;
      }
    }
    t.state = next;
    Set(t.g_state, static_cast<double>(next));
  }
  if (entered_breach) {
    DumpRing(std::string("breach:") + SloStageName(breach_stage), cp.slot);
  }
}

void SloEngine::NoteDegradation(const char* reason, uint64_t slot) {
  DumpRing(std::string("degradation:") +
               (reason != nullptr ? reason : "unknown"),
           slot);
}

void SloEngine::DumpRing(const std::string& reason, uint64_t slot) {
  if (dumps_.size() >= opts_.max_dumps) return;
  // A slot that both degrades and breaches would otherwise burn two of the
  // max_dumps quota on near-identical ring contents.
  if (!dumps_.empty() && dumps_.back().slot == slot &&
      dumps_.back().reason == reason) {
    return;
  }
  Dump d;
  d.reason = reason;
  d.slot = slot;
  std::string trace =
      flight_ != nullptr
          ? ToChromeTraceJson(*flight_)
          : std::string("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  d.json = "{\"reason\":\"" + reason + "\",\"slot\":" + std::to_string(slot) +
           ",\"trace\":" + trace + "}";
  if (!opts_.dump_dir.empty()) {
    std::ofstream f(opts_.dump_dir + "/slo_dump_" +
                    std::to_string(dumps_.size()) + ".json");
    if (f.good()) f << d.json << "\n";
  }
  dumps_.push_back(std::move(d));
  Add(m_dumps_);
}

SloState SloEngine::state(SloStage stage) const {
  return tracks_[static_cast<size_t>(stage)].state;
}

}  // namespace obs
}  // namespace trendspeed
