// The metric catalog: every metric the pipeline can emit, declared in one
// place.
//
// Instrumented code registers handles through these MetricDef constants —
// never through ad-hoc string literals — so the full set of emittable
// series is enumerable at compile time. AllMetricDefs() returns that set;
// tests/metrics_docs_test.cc diffs it against docs/observability.md in both
// directions, which is what keeps the documented catalog from rotting.
//
// Naming: Prometheus conventions — `trendspeed_<subsystem>_<what>[_total]`,
// `_total` suffix for monotone counters, base unit in the name for
// histograms (`_ms`, `_us`). Some names are registered under several fixed
// label sets (e.g. `algorithm="greedy|lazy_greedy|stochastic_greedy"`);
// each is one time series.

#ifndef TRENDSPEED_OBS_CATALOG_H_
#define TRENDSPEED_OBS_CATALOG_H_

#include <vector>

#include "obs/metrics.h"

namespace trendspeed {
namespace obs {

// --- trend/belief_propagation.cc -------------------------------------------
extern const MetricDef kBpRunsTotal;            ///< BP inference invocations
extern const MetricDef kBpConvergedTotal;       ///< runs that met tol
extern const MetricDef kBpSweepsTotal;          ///< message half-sweeps
extern const MetricDef kBpMessageUpdatesTotal;  ///< directed-edge messages
extern const MetricDef kBpIterations;           ///< histogram: iters per run
extern const MetricDef kBpResidual;             ///< histogram: per-sweep max delta
extern const MetricDef kBpWarmStartsTotal;      ///< runs seeded from a BpState
extern const MetricDef kBpActiveVars;           ///< histogram: warm active set
extern const MetricDef kBpSweepsSaved;          ///< histogram: max_iters - iters
extern const MetricDef kBpKernelRunsScalar;     ///< runs on the scalar kernel
extern const MetricDef kBpKernelRunsSimd;       ///< runs on the SIMD kernel
extern const MetricDef kBpKernelSimdFallbacksTotal;  ///< simd asked, scalar ran
extern const MetricDef kBpKernelWarmDenseTotal;      ///< dense-crossover warms

// --- seed/{greedy,lazy_greedy,stochastic_greedy}.cc ------------------------
extern const MetricDef kSeedRunsGreedy;
extern const MetricDef kSeedRunsLazyGreedy;
extern const MetricDef kSeedRunsStochasticGreedy;
extern const MetricDef kSeedGainEvalsGreedy;
extern const MetricDef kSeedGainEvalsLazyGreedy;
extern const MetricDef kSeedGainEvalsStochasticGreedy;
extern const MetricDef kSeedRoundsTotal;      ///< committed seeds, all algos
extern const MetricDef kSeedLazyRepopsTotal;  ///< stale CELF heap re-pops
extern const MetricDef kSeedMarginalGain;     ///< histogram: committed gains

// --- util/thread_pool.cc ---------------------------------------------------
extern const MetricDef kPoolTasksTotal;   ///< tasks executed by workers
extern const MetricDef kPoolStealsTotal;  ///< tasks taken from a sibling queue
extern const MetricDef kPoolQueueDepth;   ///< gauge: queued-but-unstarted tasks
extern const MetricDef kPoolWorkers;      ///< gauge: worker thread count
extern const MetricDef kPoolTaskWaitUs;   ///< histogram: submit -> start
extern const MetricDef kPoolTaskRunUs;    ///< histogram: task execution time

// --- core/estimator.cc -----------------------------------------------------
extern const MetricDef kEstimatesTotal;
extern const MetricDef kEstimateLatencyMs;

// --- core/serving.cc -------------------------------------------------------
extern const MetricDef kServingIngestLatencyMs;
extern const MetricDef kServingStalenessSlots;  ///< gauge: current streak
extern const MetricDef kServingSlowIngestsTotal;
// Registry mirrors of the ServingStats counters (same semantics, same
// values; see the ServingStats <-> registry equivalence test).
extern const MetricDef kServingSlotsEstimatedTotal;
extern const MetricDef kServingSlotsCarriedForwardTotal;
extern const MetricDef kServingDuplicateSlotsTotal;
extern const MetricDef kServingOutOfOrderSlotsTotal;
extern const MetricDef kServingRejectedBatchesTotal;
extern const MetricDef kServingObservationsFilteredTotal;
extern const MetricDef kServingObservationsDeduplicatedTotal;
extern const MetricDef kServingEstimationFailuresTotal;

// --- core/ingest.cc (lock-free MPSC ingest front-end) ----------------------
extern const MetricDef kServingIngestEnqueuedTotal;
extern const MetricDef kServingIngestRejectedBackpressureTotal;
extern const MetricDef kServingIngestQueueDepth;       ///< gauge
extern const MetricDef kServingIngestFlushedSlotsTotal;
extern const MetricDef kServingIngestStragglersTotal;

// --- core/snapshot.cc (seqlock speed snapshots) -----------------------------
extern const MetricDef kSnapshotPublishesTotal;
extern const MetricDef kSnapshotReadRetriesTotal;
extern const MetricDef kSnapshotReadLatencyUs;  ///< histogram

// --- shard/sharded_bp.cc (sharded metropolitan BP engine) -------------------
extern const MetricDef kShardCount;             ///< gauge: shards in the plan
extern const MetricDef kShardCutEdgeFraction;   ///< gauge: cut / total edges
extern const MetricDef kShardExchangeRounds;    ///< histogram: rounds per slot
extern const MetricDef kShardLargestSweepMs;    ///< histogram: critical path

// --- core/ingest.cc (per-slot straggler attribution) ------------------------
extern const MetricDef kServingIngestStragglerWorstSlot;   ///< gauge
extern const MetricDef kServingIngestStragglerWorstCount;  ///< gauge

// --- obs/flight.cc (slot-causal flight recorder) ----------------------------
extern const MetricDef kFlightEventsRecordedTotal;
extern const MetricDef kFlightEventsDroppedTotal;
extern const MetricDef kFlightThreads;  ///< gauge: registered writer rings

// --- product/{profile,route_eta}.cc (read-side product layer) ---------------
extern const MetricDef kProductProfileFoldsTotal;
extern const MetricDef kProductProfileStaleSkipsTotal;
extern const MetricDef kProductEtaCacheHitsTotal;
extern const MetricDef kProductEtaCacheMissesTotal;
extern const MetricDef kProductEtaCacheInvalidationsTotal;
extern const MetricDef kProductBlendActivationsTotal;
extern const MetricDef kProductReadLatencyUs;  ///< histogram

// --- obs/slo.cc (latency SLO engine) ----------------------------------------
extern const MetricDef kSloBreachesTotal;
extern const MetricDef kSloDumpsTotal;
/// Per-stage series, indexed by obs::SloStage (6 stages: total, queue_wait,
/// admission, bp, exchange, publish — one `stage="..."` label set each).
extern const MetricDef kSloStageState[6];  ///< gauge: 0 ok / 1 warn / 2 breach
extern const MetricDef kSloStageP50Ms[6];  ///< gauge: rolling exact p50
extern const MetricDef kSloStageP95Ms[6];  ///< gauge: rolling exact p95
extern const MetricDef kSloStageP99Ms[6];  ///< gauge: rolling exact p99

/// Every catalog entry (one per (name, labels) series). Names may repeat
/// across label sets.
const std::vector<const MetricDef*>& AllMetricDefs();

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_CATALOG_H_
