// Scoped wall-clock tracing with a bounded ring buffer.
//
// A ScopedSpan measures one nested region (construction to destruction) on
// the monotonic clock (obs/clock.h) and records it into a TraceRecorder.
// The recorder keeps the most recent `capacity` events in a fixed ring —
// tracing a long-running serving session is O(capacity) memory forever, and
// a trace dump is "the last N things the pipeline did", which is what you
// want when diagnosing a latency spike.
//
// Like metrics handles, a null recorder disables a span site entirely:
// `ScopedSpan span(nullptr, "bp/infer")` costs two branches and no clock
// reads, so untraced builds stay at full speed.
//
// Span names are expected to be string literals ("subsystem/action"); the
// recorder stores the pointer, not a copy.

#ifndef TRENDSPEED_OBS_TRACE_H_
#define TRENDSPEED_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace trendspeed {
namespace obs {

struct TraceEvent {
  const char* name = "";
  uint64_t start_ns = 0;     ///< MonotonicNanos at span entry
  uint64_t duration_ns = 0;  ///< clamped >= 0 (obs/clock.h contract)
  uint32_t depth = 0;        ///< nesting depth at entry (0 = root span)
  uint64_t seq = 0;          ///< global record order (monotone)
  /// Recording thread (dense process-wide id, obs::CurrentThreadId). With
  /// the pool running per-shard solves concurrently, depth alone cannot
  /// separate interleaved spans; (thread_id, span_id, parent_id) can.
  uint32_t thread_id = 0;
  uint64_t span_id = 0;    ///< recorder-unique id (1-based; 0 = none)
  uint64_t parent_id = 0;  ///< enclosing span on the same thread (0 = root)
};

/// Dense process-wide id of the calling thread (0, 1, 2, ... in first-use
/// order; assigned lazily, stable for the thread's lifetime). Shared by
/// TraceRecorder and FlightRecorder so one "thread" means one row across
/// every exporter.
uint32_t CurrentThreadId();

class TraceRecorder {
 public:
  /// Keeps the most recent `capacity` events (>= 1 enforced).
  explicit TraceRecorder(size_t capacity = 1024);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records one completed span. Thread-safe. The identity fields default
  /// to "unattributed" so direct Record calls (tests, ad-hoc probes) stay
  /// source-compatible; ScopedSpan fills all three.
  void Record(const char* name, uint64_t start_ns, uint64_t duration_ns,
              uint32_t depth, uint32_t thread_id = 0, uint64_t span_id = 0,
              uint64_t parent_id = 0);

  /// Allocates a recorder-unique span id (1-based). Used by ScopedSpan.
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Events recorded over the recorder's lifetime (retained + overwritten).
  uint64_t total_recorded() const;
  /// Events lost to the ring bound so far.
  uint64_t dropped() const;
  size_t capacity() const { return ring_.size(); }

  /// Deterministic JSON dump of Events() — `[{"name":...,"start_ns":...,
  /// "duration_ns":...,"depth":...,"seq":...,"thread_id":...,"span":...,
  /// "parent":...}, ...]`.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;      // next write position
  uint64_t total_ = 0;   // lifetime events
  std::atomic<uint64_t> next_span_id_{1};
};

/// RAII span. A null recorder makes the whole object a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_TRACE_H_
