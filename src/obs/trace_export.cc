#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

namespace trendspeed {
namespace obs {

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

/// Microseconds as %.3f, rebased to `base_ns`.
void AppendMicros(std::string* out, uint64_t ns, uint64_t base_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns - base_ns) / 1000.0);
  out->append(buf);
}

void AppendThreadMeta(std::string* out, uint32_t tid, const std::string& name,
                      bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("{\"ph\":\"M\",\"pid\":1,\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
  AppendEscaped(out, name.c_str());
  out->append("\"}}");
}

void CloseTrace(std::string* out, bool empty) {
  out->append(empty ? "]}" : "\n]}");
}

constexpr const char kHeader[] = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

}  // namespace

std::string ToChromeTraceJson(
    const std::vector<FlightEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& threads) {
  std::vector<FlightEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              return a.index < b.index;
            });
  std::vector<std::pair<uint32_t, std::string>> meta = threads;
  std::sort(meta.begin(), meta.end());
  uint64_t base_ns = sorted.empty() ? 0 : sorted.front().start_ns;

  std::string out = kHeader;
  bool first = true;
  if (!sorted.empty() || !meta.empty()) out.append("\n");
  for (const auto& t : meta) AppendThreadMeta(&out, t.first, t.second, &first);
  for (const FlightEvent& e : sorted) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"ph\":\"X\",\"pid\":1,\"tid\":");
    out.append(std::to_string(e.thread_id));
    out.append(",\"cat\":\"flight\",\"name\":\"");
    out.append(FlightStageName(e.stage));
    out.append("\",\"ts\":");
    AppendMicros(&out, e.start_ns, base_ns);
    out.append(",\"dur\":");
    AppendMicros(&out, e.duration_ns, 0);
    out.append(",\"args\":{\"slot\":");
    out.append(std::to_string(e.slot));
    if (e.shard != kNoShard) {
      out.append(",\"shard\":");
      out.append(std::to_string(e.shard));
    }
    out.append(",\"seq\":");
    out.append(std::to_string(e.path_seq));
    out.append("}}");
  }
  CloseTrace(&out, first);
  return out;
}

std::string ToChromeTraceJson(const FlightRecorder& recorder) {
  return ToChromeTraceJson(recorder.Collect(), recorder.ThreadLabels());
}

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              return a.seq < b.seq;
            });
  std::set<uint32_t> tids;
  for (const TraceEvent& e : sorted) tids.insert(e.thread_id);
  uint64_t base_ns = sorted.empty() ? 0 : sorted.front().start_ns;

  std::string out = kHeader;
  bool first = true;
  if (!sorted.empty()) out.append("\n");
  for (uint32_t tid : tids) {
    AppendThreadMeta(&out, tid, "thread-" + std::to_string(tid), &first);
  }
  for (const TraceEvent& e : sorted) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"ph\":\"X\",\"pid\":1,\"tid\":");
    out.append(std::to_string(e.thread_id));
    out.append(",\"cat\":\"span\",\"name\":\"");
    AppendEscaped(&out, e.name);
    out.append("\",\"ts\":");
    AppendMicros(&out, e.start_ns, base_ns);
    out.append(",\"dur\":");
    AppendMicros(&out, e.duration_ns, 0);
    out.append(",\"args\":{\"depth\":");
    out.append(std::to_string(e.depth));
    out.append(",\"span\":");
    out.append(std::to_string(e.span_id));
    out.append(",\"parent\":");
    out.append(std::to_string(e.parent_id));
    out.append(",\"seq\":");
    out.append(std::to_string(e.seq));
    out.append("}}");
  }
  CloseTrace(&out, first);
  return out;
}

std::string ToChromeTraceJson(const TraceRecorder& recorder) {
  return ToChromeTraceJson(recorder.Events());
}

}  // namespace obs
}  // namespace trendspeed
