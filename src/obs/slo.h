// Latency SLO engine over per-slot critical-path decompositions.
//
// Each served slot yields one SlotCriticalPath (obs/flight.h); the engine
// folds it into per-stage rolling windows and drives, per stage with a
// declared budget:
//
//   * exact rolling p50/p95/p99 gauges (sorted-copy quantiles over the last
//     window_slots observations — exact, not histogram-interpolated, so the
//     goldens are byte-stable);
//   * a multi-window burn-rate state machine. The burn rate over the last k
//     slots is (fraction of slots over budget) / error_budget; the state is
//
//       breach  when short- AND long-window burn >= breach_burn_rate
//       warn    when short- AND long-window burn >= warn_burn_rate
//       ok      when the short-window burn drops below warn_burn_rate
//       (otherwise the previous state holds — hysteresis while the long
//        window is still hot but the short window is cooling)
//
//     Windows shorter than their nominal size (start-up) use every
//     observation so far, so the machine is deterministic from slot 1.
//
// On an ok->breach transition — or whenever the serving layer reports a
// degradation counter firing (NoteDegradation) — the engine dumps the
// always-on flight-recorder ring as a deterministic JSON artifact
// ({"reason":...,"slot":...,"trace":<Chrome trace JSON>}), capped at
// max_dumps per engine and optionally mirrored to dump_dir.
//
// Windows are slot-count driven, not wall-clock driven: the engine needs no
// clock of its own, which keeps every test a pure function of the fed
// latencies. Single-threaded consumer contract: ObserveSlot/NoteDegradation
// are called from the serving thread only (same thread that runs Ingest);
// accessors are safe from that thread.

#ifndef TRENDSPEED_OBS_SLO_H_
#define TRENDSPEED_OBS_SLO_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace trendspeed {
namespace obs {

class Counter;
class Gauge;
class MetricsRegistry;

/// Stages with independently budgetable latency. kTotal is the end-to-end
/// slot latency (queue-wait + Ingest envelope); the rest are the
/// critical-path components from SlotCriticalPath.
enum class SloStage : uint8_t {
  kTotal = 0,
  kQueueWait,
  kAdmission,
  kBp,
  kExchange,
  kPublish,
};
constexpr size_t kNumSloStages = 6;

/// Stable lower_snake_case stage name, also the `stage` label value on the
/// trendspeed_slo_* gauges ("total", "queue_wait", ...).
const char* SloStageName(SloStage stage);

enum class SloState : uint8_t { kOk = 0, kWarn = 1, kBreach = 2 };
const char* SloStateName(SloState state);

/// Declared in ObservabilityOptions::slo and validated with the pipeline
/// config. A budget of 0 leaves that stage untracked (quantile gauges still
/// update); the engine is enabled iff any budget is positive.
struct SloOptions {
  double total_budget_ms = 0.0;
  double queue_wait_budget_ms = 0.0;
  double admission_budget_ms = 0.0;
  double bp_budget_ms = 0.0;
  double exchange_budget_ms = 0.0;
  double publish_budget_ms = 0.0;

  /// Rolling window for the quantile gauges (and the upper bound for the
  /// burn-rate windows below).
  uint32_t window_slots = 128;
  uint32_t short_window_slots = 8;
  uint32_t long_window_slots = 64;

  /// Fraction of slots allowed over budget at burn rate 1.0.
  double error_budget = 0.05;
  double warn_burn_rate = 1.0;
  double breach_burn_rate = 4.0;

  /// Flight-ring dump artifacts retained per engine (breaches past the cap
  /// still count and still flip state; they just stop dumping).
  size_t max_dumps = 4;
  /// When non-empty, each dump is also written to
  /// `<dump_dir>/slo_dump_<n>.json` (write errors are ignored — dumping is
  /// diagnostics, never a serving failure).
  std::string dump_dir;

  bool enabled() const {
    return total_budget_ms > 0.0 || queue_wait_budget_ms > 0.0 ||
           admission_budget_ms > 0.0 || bp_budget_ms > 0.0 ||
           exchange_budget_ms > 0.0 || publish_budget_ms > 0.0;
  }
  double BudgetMs(SloStage stage) const;

  /// Static English reason the options are invalid, or nullptr when valid.
  /// (obs is the bottom layer and cannot return util/status.h Status; the
  /// config layer wraps this into Status::InvalidArgument.)
  const char* Invalid() const;
};

class SloEngine {
 public:
  /// `flight` may be null (dumps then carry an empty trace); options must
  /// satisfy Invalid() == nullptr.
  SloEngine(const SloOptions& options, const FlightRecorder* flight);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Mirrors state/quantiles/breach counts into the registry
  /// (trendspeed_slo_*). Call before the first ObserveSlot; null detaches.
  void AttachMetrics(MetricsRegistry* registry);

  /// Folds one served slot's decomposition into every stage window and
  /// advances the burn-rate machine. Dumps the flight ring on an
  /// into-breach transition.
  void ObserveSlot(const SlotCriticalPath& cp);

  /// Serving-layer degradation hook (out-of-order slot, rejected batch,
  /// estimation failure, carry-forward): dumps the flight ring immediately
  /// with reason "degradation:<reason>", independent of latency state.
  void NoteDegradation(const char* reason, uint64_t slot);

  SloState state(SloStage stage) const;
  /// Exact q-quantile (0 < q <= 1) over the stage's current window; 0 when
  /// nothing observed yet.
  double QuantileMs(SloStage stage, double q) const;
  /// Burn rate over the last min(k, observed) slots for a budgeted stage;
  /// 0 for unbudgeted stages.
  double BurnRate(SloStage stage, uint32_t k) const;

  uint64_t slots_observed() const { return slots_observed_; }
  uint64_t breaches() const { return breaches_; }

  struct Dump {
    std::string reason;
    uint64_t slot = 0;
    std::string json;
  };
  const std::vector<Dump>& dumps() const { return dumps_; }

  const SloOptions& options() const { return opts_; }

 private:
  struct StageTrack {
    std::vector<double> window;  // circular, indexed by slots_observed_
    SloState state = SloState::kOk;
    Gauge* g_state = nullptr;
    Gauge* g_p50 = nullptr;
    Gauge* g_p95 = nullptr;
    Gauge* g_p99 = nullptr;
  };

  size_t WindowFill() const;
  void DumpRing(const std::string& reason, uint64_t slot);

  const SloOptions opts_;
  const FlightRecorder* flight_;
  std::array<StageTrack, kNumSloStages> tracks_;
  uint64_t slots_observed_ = 0;
  uint64_t breaches_ = 0;
  std::vector<Dump> dumps_;
  Counter* m_breaches_ = nullptr;
  Counter* m_dumps_ = nullptr;
};

}  // namespace obs
}  // namespace trendspeed

#endif  // TRENDSPEED_OBS_SLO_H_
