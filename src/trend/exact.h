// Exact marginal computation by enumeration. Test oracle for the approximate
// engines; limited to small numbers of free variables.

#ifndef TRENDSPEED_TREND_EXACT_H_
#define TRENDSPEED_TREND_EXACT_H_

#include <vector>

#include "trend/factor_graph.h"
#include "util/status.h"

namespace trendspeed {

/// Maximum free (unclamped) variables exact enumeration accepts.
inline constexpr size_t kMaxExactVars = 25;

/// Exact marginals P(x_v = up | evidence). O(2^free * (V + E)).
/// Fails with InvalidArgument when there are more than kMaxExactVars free
/// variables.
Result<std::vector<double>> InferMarginalsExact(const PairwiseMrf& mrf);

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_EXACT_H_
