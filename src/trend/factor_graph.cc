#include "trend/factor_graph.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace trendspeed {

PairwiseMrf::PairwiseMrf(size_t num_vars)
    : phi_(2 * num_vars, 1.0f),
      adj_(std::make_shared<std::vector<std::vector<MrfEdge>>>(num_vars)),
      clamped_(num_vars, -1) {}

PairwiseMrf PairwiseMrf::FromCorrelationGraph(const CorrelationGraph& graph) {
  PairwiseMrf mrf(graph.num_roads());
  for (RoadId v = 0; v < graph.num_roads(); ++v) {
    for (const CorrEdge& e : graph.Neighbors(v)) {
      if (e.neighbor <= v) continue;  // insert each undirected edge once
      double compat[2][2];
      for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) compat[a][b] = e.compat[a][b];
      mrf.AddEdge(v, e.neighbor, compat);
    }
  }
  return mrf;
}

void PairwiseMrf::SetNodePotential(size_t v, double phi_down, double phi_up) {
  TS_CHECK_GT(phi_down, 0.0);
  TS_CHECK_GT(phi_up, 0.0);
  phi_[2 * v] = static_cast<float>(phi_down);
  phi_[2 * v + 1] = static_cast<float>(phi_up);
}

void PairwiseMrf::SetPriorUp(size_t v, double p_up) {
  double p = std::clamp(p_up, 0.02, 0.98);
  SetNodePotential(v, 1.0 - p, p);
}

void PairwiseMrf::AddEdge(size_t u, size_t v, const double compat[2][2]) {
  TS_CHECK_NE(u, v);
  TS_CHECK_LT(u, adj_->size());
  TS_CHECK_LT(v, adj_->size());
  TS_CHECK_EQ(adj_.use_count(), 1)
      << "AddEdge on an MRF whose structure is shared with copies";
  auto& adj = *adj_;
  uint32_t id = static_cast<uint32_t>(num_edges_++);
  MrfEdge at_u;
  at_u.to = static_cast<uint32_t>(v);
  at_u.edge_id = id;
  at_u.rev = static_cast<uint32_t>(adj[v].size());
  MrfEdge at_v;
  at_v.to = static_cast<uint32_t>(u);
  at_v.edge_id = id;
  at_v.rev = static_cast<uint32_t>(adj[u].size());
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      TS_CHECK_GT(compat[a][b], 0.0);
      at_u.compat[a][b] = static_cast<float>(compat[a][b]);
      at_v.compat[b][a] = static_cast<float>(compat[a][b]);
    }
  }
  adj[u].push_back(at_u);
  adj[v].push_back(at_v);
}

void PairwiseMrf::Clamp(size_t v, int state) {
  TS_CHECK(state == 0 || state == 1);
  if (clamped_[v] < 0) ++num_clamped_;
  clamped_[v] = static_cast<int8_t>(state);
}

void PairwiseMrf::ClearEvidence() {
  std::fill(clamped_.begin(), clamped_.end(), int8_t{-1});
  num_clamped_ = 0;
}

double PairwiseMrf::LogScore(const std::vector<int>& states) const {
  TS_CHECK_EQ(states.size(), num_vars());
  double log_score = 0.0;
  for (size_t v = 0; v < num_vars(); ++v) {
    double p = EffectivePotential(v, states[v]);
    if (p <= 0.0) return -1e300;  // violates evidence
    log_score += std::log(p);
    for (const MrfEdge& e : (*adj_)[v]) {
      if (e.to < v) continue;  // count each edge once
      log_score += std::log(e.compat[states[v]][states[e.to]]);
    }
  }
  return log_score;
}

}  // namespace trendspeed
