// Gibbs-sampling marginal estimation on a PairwiseMrf.
//
// Reference sampler used to validate loopy BP and as a slower, asymptotically
// exact inference alternative in the evaluation.

#ifndef TRENDSPEED_TREND_GIBBS_H_
#define TRENDSPEED_TREND_GIBBS_H_

#include <vector>

#include "trend/factor_graph.h"
#include "util/random.h"

namespace trendspeed {

struct GibbsOptions {
  uint32_t burn_in_sweeps = 100;
  uint32_t sample_sweeps = 400;
  uint64_t seed = 7;
};

struct GibbsResult {
  std::vector<double> p_up;
  uint32_t total_sweeps = 0;
};

/// Runs single-site Gibbs sampling; clamped variables never move.
GibbsResult InferMarginalsGibbs(const PairwiseMrf& mrf,
                                const GibbsOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_GIBBS_H_
