// Iterated conditional modes: fast greedy MAP-style trend assignment.
//
// Each sweep sets every free variable to its locally most probable state
// given its neighbours; converges to a local optimum of the joint. Used as
// the cheap deterministic baseline among the inference engines.

#ifndef TRENDSPEED_TREND_ICM_H_
#define TRENDSPEED_TREND_ICM_H_

#include <vector>

#include "trend/factor_graph.h"

namespace trendspeed {

struct IcmOptions {
  uint32_t max_sweeps = 50;
};

struct IcmResult {
  /// Hard state per variable (0 = down, 1 = up).
  std::vector<int> state;
  uint32_t sweeps = 0;
  bool converged = false;
};

/// Runs ICM from the prior-argmax initialization.
IcmResult InferMapIcm(const PairwiseMrf& mrf, const IcmOptions& opts = {});

}  // namespace trendspeed

#endif  // TRENDSPEED_TREND_ICM_H_
